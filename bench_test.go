// Package orchestra_bench regenerates every table and figure of the
// paper's evaluation (§5) as Go benchmarks, plus the ablations DESIGN.md
// calls out. Each benchmark prints the regenerated rows/series through
// b.Log and reports domain metrics (simulated speedup and efficiency)
// via b.ReportMetric, so `go test -bench . -benchmem` reproduces the
// whole evaluation.
//
// Mapping:
//
//	BenchmarkFig6Psirrfan*     — Figure 6 (speedup vs processors, three configurations)
//	BenchmarkTable1Climate*    — in-text climate measurements (512/1024, ±split)
//	BenchmarkTable2Doubling    — in-text doubling claim (5–15% efficiency loss)
//	BenchmarkAblation*         — design-choice ablations
//	BenchmarkNativeBackend     — wall-clock execution on the goroutine backend
//	BenchmarkCompiler*         — compiler-side throughput (analysis + split)
package orchestra_bench

import (
	"fmt"
	"runtime"
	"strings"
	"testing"

	"orchestra/internal/analysis"
	"orchestra/internal/compile"
	"orchestra/internal/experiment"
	"orchestra/internal/machine"
	"orchestra/internal/native"
	"orchestra/internal/obs"
	"orchestra/internal/rts"
	"orchestra/internal/sched"
	"orchestra/internal/source"
	"orchestra/internal/split"
	"orchestra/internal/trace"
	"orchestra/internal/workload"
)

const (
	benchSeed = 7
	fig6N     = 4096
	climateN  = 3200 // the paper: "about 3200 latitude-longitude grid cells"
)

// reportRun reports the simulated metrics of one execution.
func reportRun(b *testing.B, r trace.Result) {
	b.ReportMetric(r.Speedup(), "speedup")
	b.ReportMetric(100*r.Efficiency(), "eff%")
}

// benchMode runs one Figure 6 configuration at one processor count.
func benchMode(b *testing.B, p int, mode rts.Mode) {
	var last trace.Result
	for i := 0; i < b.N; i++ {
		app := workload.Psirrfan(workload.Config{N: fig6N, Seed: benchSeed})
		last = experiment.RunApp(app, p, mode)
	}
	reportRun(b, last)
}

// BenchmarkFig6Psirrfan regenerates the three curves of Figure 6 at the
// paper's processor counts.
func BenchmarkFig6Psirrfan(b *testing.B) {
	for _, mode := range []rts.Mode{rts.ModeStatic, rts.ModeTaper, rts.ModeSplit} {
		for _, p := range []int{128, 256, 512, 768, 1024, 1280} {
			b.Run(fmt.Sprintf("%s/p=%d", mode, p), func(b *testing.B) {
				benchMode(b, p, mode)
			})
		}
	}
}

// BenchmarkFig6Series prints the complete Figure 6 table once per run.
func BenchmarkFig6Series(b *testing.B) {
	var series []*trace.Series
	for i := 0; i < b.N; i++ {
		series = experiment.Figure6(fig6N, benchSeed,
			[]int{128, 256, 512, 768, 1024, 1280})
	}
	b.Log("\n" + trace.Table("Figure 6: Psirrfan", "procs", series,
		trace.Result.Speedup, "speedup"))
}

// BenchmarkTable1Climate regenerates the climate-model rows. Paper
// values: TAPER@512 87% (445), TAPER@1024 57% (581), split@1024 83%
// (850).
func BenchmarkTable1Climate(b *testing.B) {
	configs := []struct {
		name string
		p    int
		mode rts.Mode
	}{
		{"TAPER/p=512", 512, rts.ModeTaper},
		{"TAPER/p=1024", 1024, rts.ModeTaper},
		{"TAPER+split/p=1024", 1024, rts.ModeSplit},
	}
	for _, c := range configs {
		b.Run(c.name, func(b *testing.B) {
			var last trace.Result
			for i := 0; i < b.N; i++ {
				app := workload.Climate(workload.Config{N: climateN, Seed: benchSeed})
				last = experiment.RunApp(app, c.p, c.mode)
			}
			reportRun(b, last)
		})
	}
}

// BenchmarkTable2Doubling regenerates the doubling table: with split,
// doubling the processors loses only five to fifteen percent
// efficiency on each application.
func BenchmarkTable2Doubling(b *testing.B) {
	var rows []experiment.Table2Row
	for i := 0; i < b.N; i++ {
		rows = experiment.Table2(climateN, benchSeed, 512)
	}
	b.Log("\n" + experiment.FormatTable2(rows))
	for _, r := range rows {
		b.ReportMetric(r.LossPoints, r.App+"-loss-pts")
	}
}

// BenchmarkAblationCostFunction measures the s = μg/μc chunk scaling
// on the spatially clustered vortex velocity operation.
func BenchmarkAblationCostFunction(b *testing.B) {
	var with, without trace.Result
	for i := 0; i < b.N; i++ {
		with, without = experiment.AblationCostFunction(fig6N, 256, benchSeed)
	}
	b.ReportMetric(with.Makespan, "with-makespan")
	b.ReportMetric(without.Makespan, "without-makespan")
}

// BenchmarkAblationAllocation compares the iterative processor
// allocation against a naive half/half division.
func BenchmarkAblationAllocation(b *testing.B) {
	var iterative, naive trace.Result
	for i := 0; i < b.N; i++ {
		iterative, naive = experiment.AblationAllocation(climateN, 512, benchSeed)
	}
	b.ReportMetric(iterative.Makespan, "iterative-makespan")
	b.ReportMetric(naive.Makespan, "naive-makespan")
}

// BenchmarkAblationDistributed compares the distributed token-tree
// scheme against a centralized task queue.
func BenchmarkAblationDistributed(b *testing.B) {
	var dist, central trace.Result
	for i := 0; i < b.N; i++ {
		dist, central = experiment.AblationDistributed(fig6N, 512, benchSeed)
	}
	b.ReportMetric(dist.Makespan, "distributed-makespan")
	b.ReportMetric(central.Makespan, "central-makespan")
	b.ReportMetric(float64(dist.Messages), "distributed-msgs")
	b.ReportMetric(float64(central.Messages), "central-msgs")
}

// BenchmarkAblationMaxCount sweeps the allocation iteration bound (the
// paper: "a max_count of four has been sufficient").
func BenchmarkAblationMaxCount(b *testing.B) {
	for _, mc := range []int{0, 1, 2, 4, 8} {
		b.Run(fmt.Sprintf("max_count=%d", mc), func(b *testing.B) {
			var rs []trace.Result
			for i := 0; i < b.N; i++ {
				rs = experiment.AblationMaxCount(climateN, 512, benchSeed, []int{mc})
			}
			b.ReportMetric(rs[0].Makespan, "makespan")
		})
	}
}

// BenchmarkSchedulerPolicies compares the loop schedulers on one
// irregular operation (an extension beyond the paper's figures: SS,
// GSS, factoring, TAPER under the same distributed executor).
func BenchmarkSchedulerPolicies(b *testing.B) {
	app := workload.Psirrfan(workload.Config{N: fig6N, Seed: benchSeed})
	spec := app.Bind("update")
	spec.Op.Hint = nil // cold run: policies differ most without hints
	cfg := machine.DefaultConfig(512)
	procs := make([]int, 512)
	for i := range procs {
		procs[i] = i
	}
	policies := []struct {
		name    string
		factory sched.Factory
	}{
		{"SS", func() sched.Policy { return sched.SelfSched{} }},
		{"GSS", func() sched.Policy { return sched.GSS{} }},
		{"factoring", func() sched.Policy { return &sched.Factoring{} }},
		{"TAPER", func() sched.Policy { return &sched.Taper{} }},
		{"TAPER+costfn", func() sched.Policy { return &sched.Taper{UseCostFunction: true} }},
	}
	for _, pol := range policies {
		b.Run(pol.name, func(b *testing.B) {
			var last trace.Result
			for i := 0; i < b.N; i++ {
				last = sched.ExecuteDistributed(cfg, spec.Op, procs, pol.factory, obs.OpObs{})
			}
			b.ReportMetric(last.Makespan, "makespan")
			b.ReportMetric(float64(last.Chunks), "chunks")
		})
	}
}

// BenchmarkNativeBackend runs the compiled running example on the
// native goroutine backend with real array kernels — wall-clock
// execution, not simulation — comparing the three modes. The reported
// speedup/eff% are measured against the backend's own sequential-work
// accounting; on a multi-core host the adaptive modes should approach
// the core count.
func BenchmarkNativeBackend(b *testing.B) {
	out, err := compile.Compile(mustParse(b, benchProgram), compile.DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	const n, work = 4000, 120
	workers := runtime.GOMAXPROCS(0)
	for _, mode := range []rts.Mode{rts.ModeStatic, rts.ModeTaper, rts.ModeSplit} {
		b.Run(fmt.Sprintf("%s/p=%d", mode, workers), func(b *testing.B) {
			var last trace.Result
			for i := 0; i < b.N; i++ {
				bind, _, err := native.ArrayKernels(out.Graph, n, work)
				if err != nil {
					b.Fatal(err)
				}
				last, err = native.Backend{}.Run(out.Graph, rts.BindClosure(bind),
					rts.RunOpts{Processors: workers, Mode: mode})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(last.Makespan*1e3, "makespan-ms")
			b.ReportMetric(last.Speedup(), "speedup")
			b.ReportMetric(float64(last.Chunks), "chunks")
			b.ReportMetric(float64(last.Steals), "steals")
		})
	}
}

// BenchmarkHotpathSimEvents measures the simulator's steady-state event
// loop through the allocation-free AfterFn path: 64 concurrent event
// chains, one event per iteration. After the warm-up grows the arena
// and heap to their peak, the loop must report 0 allocs/op.
func BenchmarkHotpathSimEvents(b *testing.B) {
	sim := machine.NewSim(machine.DefaultConfig(64))
	const chains = 64
	left := 0
	var tick func(int)
	tick = func(j int) {
		if left > 0 {
			left--
			sim.AfterFn(0.5, tick, j)
		}
	}
	run := func(events int) {
		left = events - chains
		for j := 0; j < chains; j++ {
			sim.AfterFn(float64(j)/float64(chains), tick, j)
		}
		sim.Run()
	}
	run(10_000) // reach the steady state: arena and heap at peak size
	b.ReportAllocs()
	b.ResetTimer()
	run(b.N + chains)
}

func mustParse(b *testing.B, text string) *source.Program {
	b.Helper()
	prog, err := source.Parse(text)
	if err != nil {
		b.Fatal(err)
	}
	return prog
}

const benchProgram = `
program sample
  integer n
  integer mask(n)
  real result(n), q(n, n), output(n, n), w(n)

  do col = 1, n where (mask(col) != 0)
    do i = 1, n
      result(i) = 0
      do j = 1, n
        result(i) = result(i) + q(j, i) * w(j)
      end do
    end do
    do i = 1, n
      q(i, col) = result(i)
    end do
  end do

  do i = 1, n
    do j = 1, n
      output(j, i) = f(q(j, i))
    end do
  end do
end
`

// BenchmarkCompilerAnalysis measures the symbolic analysis pipeline.
func BenchmarkCompilerAnalysis(b *testing.B) {
	prog, err := source.Parse(benchProgram)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := analysis.Analyze(prog)
		loopA := prog.Body[0].(*source.Do)
		_ = r.DescribeLoop(loopA)
	}
}

// BenchmarkCompilerSplit measures the full split+pipeline compilation
// of the paper's running example.
func BenchmarkCompilerSplit(b *testing.B) {
	prog, err := source.Parse(benchProgram)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := compile.Compile(prog, compile.DefaultOptions()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSplitTransform measures the split transformation alone on
// Figure 4 (reduction splitting).
func BenchmarkSplitTransform(b *testing.B) {
	prog, err := source.Parse(`
program fig4
  integer n, a
  real x(n, n), y(n), sum
  do i = 1, n
    x(a, i) = x(a, i) + y(i)
  end do
  do i = 1, n
    do j = 1, n
      sum = sum + x(i, j)
    end do
  end do
end
`)
	if err != nil {
		b.Fatal(err)
	}
	r := analysis.Analyze(prog)
	g := prog.Body[0].(*source.Do)
	h := prog.Body[1].(*source.Do)
	dg := r.DescribeLoop(g)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := split.Split(r, []source.Stmt{h}, dg, nil, split.DefaultOptions())
		if !res.Applied() {
			b.Fatal("split not applied")
		}
	}
}

// BenchmarkCompilerManyPhases measures compilation of a program with
// many interacting phases (stressing the O(n²) categorization).
func BenchmarkCompilerManyPhases(b *testing.B) {
	var sb strings.Builder
	sb.WriteString("program big\n  integer n\n  integer mask(n)\n  real q(n, n), acc(n)\n")
	for i := 0; i < 24; i++ {
		op := "!="
		if i%2 == 0 {
			op = "=="
		}
		fmt.Fprintf(&sb, "  do c%d = 2, n - 1 where (mask(c%d) %s 0)\n    do r%d = 2, n - 1\n      q(r%d, c%d) = q(r%d, c%d) + 1\n    end do\n  end do\n",
			i, i, op, i, i, i, i, i)
		fmt.Fprintf(&sb, "  do k%d = 2, n - 1\n    acc(k%d) = q(2, k%d)\n  end do\n", i, i, i)
	}
	sb.WriteString("end\n")
	prog, err := source.Parse(sb.String())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := compile.Compile(prog, compile.DefaultOptions()); err != nil {
			b.Fatal(err)
		}
	}
}
