// Package machine simulates a distributed-memory multiprocessor in the
// style of the Ncube-2 the paper evaluates on: a hypercube of
// processors with per-message software overhead, per-hop latency, and
// per-byte transfer cost, driven by a discrete-event core.
//
// The simulator substitutes for the paper's hardware testbed. The
// evaluation depends on relative scheduling behaviour — load imbalance,
// communication and scheduling overhead as the processor count grows —
// which the cost model reproduces; absolute times are arbitrary units
// (one unit ≈ the cost of a small task).
//
// The event core is allocation-free in steady state: events live in a
// pooled arena with free-list reuse, ordered by an intrusive 4-ary
// indexed heap, and the AtFn/AfterFn scheduling path takes a reusable
// func(int) plus an integer argument so callers need not box a fresh
// closure per event. After the arena reaches the peak number of
// outstanding events, scheduling and running events performs no heap
// allocation at all.
package machine

import (
	"fmt"
	"math"
	"math/bits"
)

// SimUnitMicroseconds maps the simulator's clock onto the trace
// exporters' timeline: one simulated time unit renders as this many
// microseconds in a Chrome trace-event file. The simulator's units are
// arbitrary (one unit ≈ a small task), so the mapping only fixes a
// readable zoom level in Perfetto — spans keep their relative lengths
// under any choice.
const SimUnitMicroseconds = 1.0

// Config describes the simulated machine.
type Config struct {
	Processors int
	// MsgOverhead is the fixed software cost of one message
	// (send + receive processing).
	MsgOverhead float64
	// HopLatency is the network latency per hypercube hop.
	HopLatency float64
	// ByteCost is the transfer time per byte.
	ByteCost float64
	// SchedOverhead is the cost of one scheduling event (dispatching a
	// chunk from a task queue).
	SchedOverhead float64
	// MsgPerturb, when non-nil, rewrites every non-local message cost
	// before MsgTime/BroadcastTime return it — the hook fault injection
	// uses to model link delay and lossy retransmission without the
	// executors knowing. Nil means the cost model is exact.
	MsgPerturb func(float64) float64
}

// DefaultConfig models an Ncube-2-like machine in task-time units,
// calibrated so that a typical application task (a few units) costs an
// order of magnitude more than a message — the regime of the paper's
// coarse-grained applications, whose cells/columns/gates each
// represent substantial computation.
func DefaultConfig(p int) Config {
	return Config{
		Processors:    p,
		MsgOverhead:   0.05,
		HopLatency:    0.005,
		ByteCost:      0.000125,
		SchedOverhead: 0.025,
	}
}

// Hops returns the hypercube distance between two processors.
func Hops(a, b int) int { return bits.OnesCount(uint(a ^ b)) }

// MsgTime reports the cost of sending bytes from processor a to b.
// Local "messages" are free.
func (c Config) MsgTime(a, b int, bytes int64) float64 {
	if a == b {
		return 0
	}
	t := c.MsgOverhead + float64(Hops(a, b))*c.HopLatency + float64(bytes)*c.ByteCost
	if c.MsgPerturb != nil {
		t = c.MsgPerturb(t)
	}
	return t
}

// BroadcastTime reports the cost of a tree broadcast (or reduction)
// over p processors: log2(p) sequential message steps.
func (c Config) BroadcastTime(p int, bytes int64) float64 {
	if p <= 1 {
		return 0
	}
	depth := math.Ceil(math.Log2(float64(p)))
	t := depth * (c.MsgOverhead + c.HopLatency + float64(bytes)*c.ByteCost)
	if c.MsgPerturb != nil {
		t = c.MsgPerturb(t)
	}
	return t
}

// event is one scheduled callback, pooled in the Sim's arena. Exactly
// one of fn and cfn is set. The next field threads the free list.
type event struct {
	time float64
	seq  int64
	fn   func()
	cfn  func(int)
	arg  int
	next int32
}

// nilEvent marks the end of the free list.
const nilEvent = int32(-1)

// Sim is a discrete-event simulator. The zero value is not usable; use
// NewSim.
type Sim struct {
	cfg Config
	// arena pools every event ever scheduled; freed slots are chained
	// through event.next and reused, so steady-state scheduling does
	// not allocate.
	arena []event
	free  int32
	// heap is a 4-ary min-heap of arena indices ordered by (time, seq).
	// 4-ary halves the tree depth vs binary, trading slightly more
	// comparisons per level for fewer cache lines touched per sift —
	// the usual win for simulation event loops.
	heap []int32
	now  float64
	seq  int64
	ran  int64
}

// NewSim creates a simulator over the given machine.
func NewSim(cfg Config) *Sim {
	if cfg.Processors < 1 {
		panic("machine: need at least one processor")
	}
	return &Sim{cfg: cfg, free: nilEvent}
}

// Config returns the machine description.
func (s *Sim) Config() Config { return s.cfg }

// Now reports the current simulation time.
func (s *Sim) Now() float64 { return s.now }

// Events reports how many events have executed.
func (s *Sim) Events() int64 { return s.ran }

// Pending reports how many events are currently scheduled.
func (s *Sim) Pending() int { return len(s.heap) }

// alloc takes an event slot off the free list, growing the arena only
// when no freed slot is available.
func (s *Sim) alloc(t float64) int32 {
	if t < s.now {
		panic(fmt.Sprintf("machine: scheduling into the past (%g < %g)", t, s.now))
	}
	s.seq++
	var id int32
	if s.free != nilEvent {
		id = s.free
		s.free = s.arena[id].next
	} else {
		s.arena = append(s.arena, event{})
		id = int32(len(s.arena) - 1)
	}
	e := &s.arena[id]
	e.time = t
	e.seq = s.seq
	return id
}

// release returns an event slot to the free list, dropping callback
// references so the arena does not pin dead closures.
func (s *Sim) release(id int32) {
	e := &s.arena[id]
	e.fn = nil
	e.cfn = nil
	e.next = s.free
	s.free = id
}

// At schedules fn at absolute time t (>= Now). Events at equal times
// run in scheduling order, keeping the simulation deterministic.
// Each call boxes the supplied closure; hot paths that would otherwise
// create a fresh closure per event should use AtFn.
func (s *Sim) At(t float64, fn func()) {
	id := s.alloc(t)
	s.arena[id].fn = fn
	s.push(id)
}

// After schedules fn delay units from now.
func (s *Sim) After(delay float64, fn func()) { s.At(s.now+delay, fn) }

// AtFn schedules fn(arg) at absolute time t (>= Now). Unlike At, the
// callback is a long-lived function value plus an integer argument
// (typically a processor id), so scheduling allocates nothing: callers
// build one callback per purpose and reuse it for every event.
func (s *Sim) AtFn(t float64, fn func(int), arg int) {
	id := s.alloc(t)
	e := &s.arena[id]
	e.cfn = fn
	e.arg = arg
	s.push(id)
}

// AfterFn schedules fn(arg) delay units from now, allocation-free.
func (s *Sim) AfterFn(delay float64, fn func(int), arg int) { s.AtFn(s.now+delay, fn, arg) }

// less orders events by (time, seq): deterministic FIFO at equal times.
func (s *Sim) less(a, b int32) bool {
	ea, eb := &s.arena[a], &s.arena[b]
	if ea.time != eb.time {
		return ea.time < eb.time
	}
	return ea.seq < eb.seq
}

// push inserts an arena index into the 4-ary heap.
func (s *Sim) push(id int32) {
	s.heap = append(s.heap, id)
	i := len(s.heap) - 1
	for i > 0 {
		parent := (i - 1) / 4
		if !s.less(s.heap[i], s.heap[parent]) {
			break
		}
		s.heap[i], s.heap[parent] = s.heap[parent], s.heap[i]
		i = parent
	}
}

// popMin removes and returns the earliest event's arena index.
func (s *Sim) popMin() int32 {
	h := s.heap
	top := h[0]
	last := len(h) - 1
	h[0] = h[last]
	s.heap = h[:last]
	h = s.heap
	// Sift down: promote the smallest of up to four children.
	i := 0
	for {
		first := 4*i + 1
		if first >= last {
			break
		}
		min := first
		end := first + 4
		if end > last {
			end = last
		}
		for c := first + 1; c < end; c++ {
			if s.less(h[c], h[min]) {
				min = c
			}
		}
		if !s.less(h[min], h[i]) {
			break
		}
		h[i], h[min] = h[min], h[i]
		i = min
	}
	return top
}

// dispatch pops the earliest event, recycles its slot, and runs it.
// The slot is freed before the callback executes, so an event that
// schedules a successor reuses its own slot — the steady-state regime
// where the arena stops growing entirely.
func (s *Sim) dispatch() {
	id := s.popMin()
	e := &s.arena[id]
	s.now = e.time
	s.ran++
	fn, cfn, arg := e.fn, e.cfn, e.arg
	s.release(id)
	if cfn != nil {
		cfn(arg)
	} else {
		fn()
	}
}

// Run executes events until none remain, returning the final time.
func (s *Sim) Run() float64 {
	for len(s.heap) > 0 {
		s.dispatch()
	}
	return s.now
}

// Step executes a single event; it reports false when none remain.
func (s *Sim) Step() bool {
	if len(s.heap) == 0 {
		return false
	}
	s.dispatch()
	return true
}
