// Package machine simulates a distributed-memory multiprocessor in the
// style of the Ncube-2 the paper evaluates on: a hypercube of
// processors with per-message software overhead, per-hop latency, and
// per-byte transfer cost, driven by a discrete-event core.
//
// The simulator substitutes for the paper's hardware testbed. The
// evaluation depends on relative scheduling behaviour — load imbalance,
// communication and scheduling overhead as the processor count grows —
// which the cost model reproduces; absolute times are arbitrary units
// (one unit ≈ the cost of a small task).
package machine

import (
	"container/heap"
	"fmt"
	"math"
	"math/bits"
)

// Config describes the simulated machine.
type Config struct {
	Processors int
	// MsgOverhead is the fixed software cost of one message
	// (send + receive processing).
	MsgOverhead float64
	// HopLatency is the network latency per hypercube hop.
	HopLatency float64
	// ByteCost is the transfer time per byte.
	ByteCost float64
	// SchedOverhead is the cost of one scheduling event (dispatching a
	// chunk from a task queue).
	SchedOverhead float64
}

// DefaultConfig models an Ncube-2-like machine in task-time units,
// calibrated so that a typical application task (a few units) costs an
// order of magnitude more than a message — the regime of the paper's
// coarse-grained applications, whose cells/columns/gates each
// represent substantial computation.
func DefaultConfig(p int) Config {
	return Config{
		Processors:    p,
		MsgOverhead:   0.05,
		HopLatency:    0.005,
		ByteCost:      0.000125,
		SchedOverhead: 0.025,
	}
}

// Hops returns the hypercube distance between two processors.
func Hops(a, b int) int { return bits.OnesCount(uint(a ^ b)) }

// MsgTime reports the cost of sending bytes from processor a to b.
// Local "messages" are free.
func (c Config) MsgTime(a, b int, bytes int64) float64 {
	if a == b {
		return 0
	}
	return c.MsgOverhead + float64(Hops(a, b))*c.HopLatency + float64(bytes)*c.ByteCost
}

// BroadcastTime reports the cost of a tree broadcast (or reduction)
// over p processors: log2(p) sequential message steps.
func (c Config) BroadcastTime(p int, bytes int64) float64 {
	if p <= 1 {
		return 0
	}
	depth := math.Ceil(math.Log2(float64(p)))
	return depth * (c.MsgOverhead + c.HopLatency + float64(bytes)*c.ByteCost)
}

// event is one scheduled callback.
type event struct {
	time float64
	seq  int64
	fn   func()
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].time != h[j].time {
		return h[i].time < h[j].time
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// Sim is a discrete-event simulator. The zero value is not usable; use
// NewSim.
type Sim struct {
	cfg    Config
	events eventHeap
	now    float64
	seq    int64
	ran    int64
}

// NewSim creates a simulator over the given machine.
func NewSim(cfg Config) *Sim {
	if cfg.Processors < 1 {
		panic("machine: need at least one processor")
	}
	return &Sim{cfg: cfg}
}

// Config returns the machine description.
func (s *Sim) Config() Config { return s.cfg }

// Now reports the current simulation time.
func (s *Sim) Now() float64 { return s.now }

// Events reports how many events have executed.
func (s *Sim) Events() int64 { return s.ran }

// At schedules fn at absolute time t (>= Now). Events at equal times
// run in scheduling order, keeping the simulation deterministic.
func (s *Sim) At(t float64, fn func()) {
	if t < s.now {
		panic(fmt.Sprintf("machine: scheduling into the past (%g < %g)", t, s.now))
	}
	s.seq++
	heap.Push(&s.events, &event{time: t, seq: s.seq, fn: fn})
}

// After schedules fn delay units from now.
func (s *Sim) After(delay float64, fn func()) { s.At(s.now+delay, fn) }

// Run executes events until none remain, returning the final time.
func (s *Sim) Run() float64 {
	for len(s.events) > 0 {
		e := heap.Pop(&s.events).(*event)
		s.now = e.time
		s.ran++
		e.fn()
	}
	return s.now
}

// Step executes a single event; it reports false when none remain.
func (s *Sim) Step() bool {
	if len(s.events) == 0 {
		return false
	}
	e := heap.Pop(&s.events).(*event)
	s.now = e.time
	s.ran++
	e.fn()
	return true
}
