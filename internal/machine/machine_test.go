package machine

import (
	"fmt"
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestHops(t *testing.T) {
	cases := []struct {
		a, b, want int
	}{{0, 0, 0}, {0, 1, 1}, {0, 3, 2}, {5, 6, 2}, {0, 1023, 10}}
	for _, c := range cases {
		if got := Hops(c.a, c.b); got != c.want {
			t.Errorf("Hops(%d,%d) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestMsgTime(t *testing.T) {
	cfg := DefaultConfig(16)
	if cfg.MsgTime(3, 3, 100) != 0 {
		t.Fatal("local message should be free")
	}
	m := cfg.MsgTime(0, 1, 0)
	if m != cfg.MsgOverhead+cfg.HopLatency {
		t.Fatalf("one-hop empty message = %v", m)
	}
	// More bytes cost more; more hops cost more.
	if cfg.MsgTime(0, 1, 1000) <= m {
		t.Fatal("bytes should add cost")
	}
	if cfg.MsgTime(0, 7, 0) <= cfg.MsgTime(0, 1, 0) {
		t.Fatal("hops should add cost")
	}
}

func TestBroadcastTime(t *testing.T) {
	cfg := DefaultConfig(64)
	if cfg.BroadcastTime(1, 8) != 0 {
		t.Fatal("broadcast to one processor is free")
	}
	b64 := cfg.BroadcastTime(64, 8)
	b1024 := cfg.BroadcastTime(1024, 8)
	if b1024 <= b64 {
		t.Fatal("larger machine must broadcast slower")
	}
	// log2(64) = 6 steps exactly.
	want := 6 * (cfg.MsgOverhead + cfg.HopLatency + 8*cfg.ByteCost)
	if math.Abs(b64-want) > 1e-9 {
		t.Fatalf("b64 = %v, want %v", b64, want)
	}
}

func TestSimOrdering(t *testing.T) {
	s := NewSim(DefaultConfig(4))
	var order []int
	s.At(5, func() { order = append(order, 2) })
	s.At(1, func() { order = append(order, 0) })
	s.At(3, func() { order = append(order, 1) })
	end := s.Run()
	if end != 5 {
		t.Fatalf("end = %v", end)
	}
	if len(order) != 3 || order[0] != 0 || order[1] != 1 || order[2] != 2 {
		t.Fatalf("order = %v", order)
	}
}

func TestSimTieBreakDeterministic(t *testing.T) {
	run := func() []int {
		s := NewSim(DefaultConfig(4))
		var order []int
		for i := 0; i < 10; i++ {
			i := i
			s.At(1.0, func() { order = append(order, i) })
		}
		s.Run()
		return order
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("nondeterministic tie-break: %v vs %v", a, b)
		}
	}
	if !sort.IntsAreSorted(a) {
		t.Fatalf("ties should run in scheduling order: %v", a)
	}
}

func TestSimNestedScheduling(t *testing.T) {
	s := NewSim(DefaultConfig(4))
	hits := 0
	s.At(1, func() {
		s.After(2, func() {
			hits++
			if s.Now() != 3 {
				t.Errorf("nested event at %v, want 3", s.Now())
			}
		})
	})
	s.Run()
	if hits != 1 {
		t.Fatal("nested event did not run")
	}
}

func TestSimPanicsOnPast(t *testing.T) {
	s := NewSim(DefaultConfig(2))
	s.At(10, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling into the past did not panic")
			}
		}()
		s.At(5, func() {})
	})
	s.Run()
}

func TestSimStep(t *testing.T) {
	s := NewSim(DefaultConfig(2))
	s.At(1, func() {})
	s.At(2, func() {})
	if !s.Step() || s.Now() != 1 {
		t.Fatal("first step")
	}
	if !s.Step() || s.Now() != 2 {
		t.Fatal("second step")
	}
	if s.Step() {
		t.Fatal("step past end")
	}
	if s.Events() != 2 {
		t.Fatalf("events = %d", s.Events())
	}
}

func TestSimAtFnOrdering(t *testing.T) {
	s := NewSim(DefaultConfig(4))
	var order []int
	rec := func(i int) { order = append(order, i) }
	s.AtFn(5, rec, 2)
	s.AtFn(1, rec, 0)
	s.AtFn(3, rec, 1)
	if end := s.Run(); end != 5 {
		t.Fatalf("end = %v", end)
	}
	if len(order) != 3 || order[0] != 0 || order[1] != 1 || order[2] != 2 {
		t.Fatalf("order = %v", order)
	}
}

// TestSimMixedEventKinds interleaves closure events (At) with
// callback+arg events (AtFn) so freed arena slots are reused across
// the two kinds; release must have cleared the other kind's callback.
func TestSimMixedEventKinds(t *testing.T) {
	s := NewSim(DefaultConfig(2))
	var got []int
	s.At(1, func() { got = append(got, -1) })
	s.Run()
	s.AtFn(2, func(i int) { got = append(got, i) }, 7)
	s.Run()
	s.At(3, func() { got = append(got, -2) })
	s.Run()
	if len(got) != 3 || got[0] != -1 || got[1] != 7 || got[2] != -2 {
		t.Fatalf("got = %v", got)
	}
}

// TestSimSteadyStateAllocFree checks the arena/free-list contract: once
// the arena has grown to the peak number of outstanding events, running
// any number of further events through the AfterFn path allocates
// nothing.
func TestSimSteadyStateAllocFree(t *testing.T) {
	s := NewSim(DefaultConfig(4))
	const chains = 32
	left := 0
	var tick func(int)
	tick = func(j int) {
		if left > 0 {
			left--
			s.AfterFn(1, tick, j)
		}
	}
	run := func() {
		left = 1000
		for j := 0; j < chains; j++ {
			s.AfterFn(float64(j)/float64(chains), tick, j)
		}
		s.Run()
	}
	run() // grow the arena and heap to their peak
	if allocs := testing.AllocsPerRun(5, run); allocs != 0 {
		t.Errorf("steady-state events allocated %v per run, want 0", allocs)
	}
}

func TestMsgTimeSymmetry(t *testing.T) {
	cfg := DefaultConfig(256)
	if err := quick.Check(func(a, b uint8, bytes uint16) bool {
		x := cfg.MsgTime(int(a), int(b), int64(bytes))
		y := cfg.MsgTime(int(b), int(a), int64(bytes))
		return x == y && x >= 0
	}, nil); err != nil {
		t.Fatal(err)
	}
}

// TestSimSlotReuseSameTime pins the dispatch/release protocol around
// arena slot reuse. dispatch recycles an event's slot before running
// its callback, so a callback that schedules a successor at the current
// time writes the successor into the very slot the running event
// occupied. That is only sound because dispatch copies fn/cfn/arg out
// of the arena first — a dispatcher reading the slot after release
// would fire the successor's callback (or a cleared one) in place of
// the original's. The test drives that exact interleaving with both
// callback kinds and checks order, arguments, and that reuse actually
// happened (the arena must not grow for the successors).
func TestSimSlotReuseSameTime(t *testing.T) {
	s := NewSim(DefaultConfig(4))
	var order []string
	tick := func(arg int) {
		order = append(order, fmt.Sprintf("fn(%d)", arg))
	}
	s.At(1, func() {
		order = append(order, "a")
		// Same-time successor of the opposite kind: reuses slot 0,
		// which held a plain fn until a moment ago.
		s.AtFn(1, tick, 7)
	})
	s.At(1, func() {
		order = append(order, "b")
		// And the symmetric case into slot 1: a plain fn over a slot
		// that never held one.
		s.At(1, func() { order = append(order, "c") })
	})
	grown := 0
	s.At(1, func() { grown = len(s.arena) })
	s.Run()
	want := []string{"a", "b", "fn(7)", "c"}
	if len(order) != len(want) {
		t.Fatalf("order = %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
	if grown != 3 {
		t.Errorf("arena grew to %d slots for same-time successors, want 3 (slot reuse)", grown)
	}
}

// TestSimReleaseClearsCallbacks: recycled slots must not pin dead
// closures — the arena lives as long as the simulation, and a retained
// fn keeps its whole capture set reachable.
func TestSimReleaseClearsCallbacks(t *testing.T) {
	s := NewSim(DefaultConfig(4))
	for i := 0; i < 8; i++ {
		big := make([]byte, 1<<16)
		s.At(float64(i), func() { _ = big })
	}
	s.Run()
	for id := s.free; id != nilEvent; id = s.arena[id].next {
		if s.arena[id].fn != nil || s.arena[id].cfn != nil {
			t.Fatalf("freed slot %d retains a callback", id)
		}
	}
}

// TestMsgPerturb checks the fault-injection hook: a non-nil MsgPerturb
// rewrites non-local message and broadcast costs, local messages stay
// free, and a nil hook leaves the cost model exact.
func TestMsgPerturb(t *testing.T) {
	base := DefaultConfig(8)
	perturbed := base
	perturbed.MsgPerturb = func(v float64) float64 { return 2 * v }
	if got := perturbed.MsgTime(0, 0, 100); got != 0 {
		t.Fatalf("local message perturbed: %v", got)
	}
	want := 2 * base.MsgTime(0, 3, 100)
	if got := perturbed.MsgTime(0, 3, 100); got != want {
		t.Fatalf("MsgTime = %v, want %v", got, want)
	}
	wantB := 2 * base.BroadcastTime(8, 64)
	if got := perturbed.BroadcastTime(8, 64); got != wantB {
		t.Fatalf("BroadcastTime = %v, want %v", got, wantB)
	}
	if got := perturbed.BroadcastTime(1, 64); got != 0 {
		t.Fatalf("single-processor broadcast perturbed: %v", got)
	}
}
