package experiment

import (
	"fmt"
	"strings"

	"orchestra/internal/native"
	"orchestra/internal/rts"
	"orchestra/internal/trace"
	"orchestra/internal/workload"
)

// SpinBinding names the "spin" registry kernel with the parameters the
// native and dist sweeps share: n resolves each node's tasks="n"
// annotation, cv/seed draw the log-normal task times, unitwork scales
// one drawn time unit to CPU iterations.
func SpinBinding(tasks int, cv float64, seed uint64, unitWork int) rts.Binding {
	params := rts.KernelParams{}
	params.SetInt("n", tasks)
	params.SetInt("tasks", tasks)
	params.SetFloat("cv", cv)
	params.SetUint64("seed", seed)
	params.SetInt("unitwork", unitWork)
	return rts.NamedBinding("spin", params)
}

// NativePoint is one measurement of the native-backend sweep:
// real wall-clock execution of a paper workload's graph topology with
// CPU-spinning tasks, on goroutine workers. The measurement itself is
// the embedded trace.Result (versioned wire encoding); App, Mode and
// Workers identify the configuration that produced it.
type NativePoint struct {
	App     string       `json:"app"`
	Mode    string       `json:"mode"`
	Workers int          `json:"workers"`
	Result  trace.Result `json:"result"`
}

// NativeSweep runs the Psirrfan graph topology on the native goroutine
// backend across modes and worker counts. Tasks are real CPU spinning
// (unitWork floating-point iterations per drawn time unit) with the
// same log-normal irregularity (cv 1) the simulated evaluation uses,
// so TAPER's measured-time statistics face the same imbalance — but
// here makespan, speedup, and steals are wall-clock measurements, not
// simulator outputs.
// A nil modes slice sweeps all three modes.
func NativeSweep(tasks int, seed uint64, workers []int, unitWork int, modes []rts.Mode) []NativePoint {
	if modes == nil {
		modes = []rts.Mode{rts.ModeStatic, rts.ModeTaper, rts.ModeSplit}
	}
	app := workload.Psirrfan(workload.Config{N: tasks, Seed: seed})
	binding := SpinBinding(tasks, 1.0, seed, unitWork)
	var out []NativePoint
	for _, mode := range modes {
		for _, w := range workers {
			// Graph selection is per worker count: split's transformed
			// graph only pays off when it has workers to overlap on (see
			// workload.App.GraphFor).
			g := app.GraphFor(mode, w)
			bound, err := rts.Bind(g, binding)
			if err != nil {
				panic(fmt.Sprintf("experiment: bind %v/p=%d: %v", mode, w, err))
			}
			r, err := native.Backend{}.Run(g, bound, rts.RunOpts{Processors: w, Mode: mode})
			if err != nil {
				panic(fmt.Sprintf("experiment: native %v/p=%d: %v", mode, w, err))
			}
			out = append(out, NativePoint{
				App:     "psirrfan",
				Mode:    mode.String(),
				Workers: w,
				Result:  r,
			})
		}
	}
	return out
}

// FormatNative renders the sweep as an aligned table with wall-clock
// units.
func FormatNative(points []NativePoint) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-12s %8s %12s %9s %12s %8s %8s\n",
		"mode", "workers", "makespan(s)", "speedup", "efficiency%", "chunks", "steals")
	for _, p := range points {
		r := p.Result
		fmt.Fprintf(&b, "%-12s %8d %12.4f %9.2f %12.1f %8d %8d\n",
			p.Mode, p.Workers, r.Makespan, r.Speedup(), 100*r.Efficiency(), r.Chunks, r.Steals)
	}
	return b.String()
}
