package experiment

import (
	"fmt"
	"strings"

	"orchestra/internal/delirium"
	"orchestra/internal/native"
	"orchestra/internal/rts"
	"orchestra/internal/workload"
)

// NativePoint is one measurement of the native-backend sweep:
// real wall-clock execution of a paper workload's graph topology with
// CPU-spinning tasks, on goroutine workers.
type NativePoint struct {
	App        string  `json:"app"`
	Mode       string  `json:"mode"`
	Workers    int     `json:"workers"`
	Makespan   float64 `json:"makespan_s"`
	SeqTime    float64 `json:"seq_time_s"`
	Speedup    float64 `json:"speedup"`
	Efficiency float64 `json:"efficiency"`
	Chunks     int     `json:"chunks"`
	Steals     int     `json:"steals"`
	Messages   int     `json:"messages"`
}

// NativeSweep runs the Psirrfan graph topology on the native goroutine
// backend across modes and worker counts. Tasks are real CPU spinning
// (unitWork floating-point iterations per drawn time unit) with the
// same log-normal irregularity (cv 1) the simulated evaluation uses,
// so TAPER's measured-time statistics face the same imbalance — but
// here makespan, speedup, and steals are wall-clock measurements, not
// simulator outputs.
func NativeSweep(tasks int, seed uint64, workers []int, unitWork int) []NativePoint {
	app := workload.Psirrfan(workload.Config{N: tasks, Seed: seed})
	count := func(*delirium.Node) int { return tasks }
	var out []NativePoint
	for _, mode := range []rts.Mode{rts.ModeStatic, rts.ModeTaper, rts.ModeSplit} {
		g := app.SeqGraph
		if mode == rts.ModeSplit {
			g = app.SplitGraph
		}
		bind := native.SpinBinder(g, count, 1.0, seed, unitWork)
		for _, w := range workers {
			be := &native.Backend{Workers: w}
			r, err := be.Execute(g, bind, w, mode)
			if err != nil {
				panic(fmt.Sprintf("experiment: native %v/p=%d: %v", mode, w, err))
			}
			out = append(out, NativePoint{
				App:        "psirrfan",
				Mode:       mode.String(),
				Workers:    w,
				Makespan:   r.Makespan,
				SeqTime:    r.SeqTime,
				Speedup:    r.Speedup(),
				Efficiency: r.Efficiency(),
				Chunks:     r.Chunks,
				Steals:     r.Steals,
				Messages:   r.Messages,
			})
		}
	}
	return out
}

// FormatNative renders the sweep as an aligned table with wall-clock
// units.
func FormatNative(points []NativePoint) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-12s %8s %12s %9s %12s %8s %8s\n",
		"mode", "workers", "makespan(s)", "speedup", "efficiency%", "chunks", "steals")
	for _, p := range points {
		fmt.Fprintf(&b, "%-12s %8d %12.4f %9.2f %12.1f %8d %8d\n",
			p.Mode, p.Workers, p.Makespan, p.Speedup, 100*p.Efficiency, p.Chunks, p.Steals)
	}
	return b.String()
}
