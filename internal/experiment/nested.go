package experiment

import (
	"fmt"
	"strings"

	"orchestra/internal/compile"
	"orchestra/internal/machine"
	"orchestra/internal/native"
	"orchestra/internal/rts"
	"orchestra/internal/trace"
	"orchestra/internal/workload"
)

// The nested-dataflow sweep: the divide-and-conquer and adaptive
// vortex-refinement workloads, each executed twice per configuration —
// once with runtime expansion (the Exp nodes materialize their
// sub-graphs mid-run, feeding new tasks to the same work-stealing
// deques) and once as the statically-unrolled flat equivalent (the dc
// flat form from compile.Unroll, the data-dependent vortex flat form
// from workload.VortexFlat). Both runs compute the same durable
// arrays, so the Digest columns prove — bitwise — that expanding at
// runtime changes scheduling only, never results. The Steals column of
// the nested runs is the cross-level work-stealing evidence: stolen
// chunks include tasks that did not exist when the run began.

// NestedPoint is one measurement of the nested sweep.
type NestedPoint struct {
	Workload   string `json:"workload"`
	Backend    string `json:"backend"`
	Mode       string `json:"mode"`
	Processors int    `json:"processors"`
	// Nested is the runtime-expansion run; Flat is the statically
	// unrolled reference of the same configuration.
	Nested trace.Result `json:"nested"`
	Flat   trace.Result `json:"flat"`
	// NestedDigest and FlatDigest fingerprint the two runs' final
	// memory images; equality means runtime expansion produced bitwise
	// the statically-unrolled results.
	NestedDigest string `json:"nested_digest"`
	FlatDigest   string `json:"flat_digest"`
}

// NestedReport is the BENCH_nested.json payload.
type NestedReport struct {
	Points []NestedPoint `json:"points"`
}

// DigestsAgree reports whether every point's nested digest matches its
// statically-unrolled one.
func (r NestedReport) DigestsAgree() bool {
	for _, p := range r.Points {
		if p.NestedDigest == "" || p.NestedDigest != p.FlatDigest {
			return false
		}
	}
	return true
}

// nestedVariant builds one fresh (instance, graph, binder) pair of a
// workload: nested or flat. Instances are single-use, so every run
// builds anew.
func nestedVariant(wl string, flat bool, cfg workload.NestedConfig) (*workload.NestedInstance, error) {
	switch wl {
	case "dc":
		in, err := workload.NewDC(cfg)
		if err != nil {
			return nil, err
		}
		if flat {
			fg, fb, err := compile.Unroll(in.Graph, in.Binder())
			if err != nil {
				return nil, err
			}
			in.Graph = fg
			in.SetBinder(fb)
		}
		return in, nil
	case "vortex":
		if flat {
			return workload.VortexFlat(cfg)
		}
		return workload.NewVortex(cfg)
	}
	return nil, fmt.Errorf("unknown nested workload %q", wl)
}

// NestedSweep measures both nested workloads across backends × modes ×
// processor counts. A nil modes slice sweeps all three modes.
func NestedSweep(n int, procs []int, modes []rts.Mode) NestedReport {
	if modes == nil {
		modes = []rts.Mode{rts.ModeStatic, rts.ModeTaper, rts.ModeSplit}
	}
	cfg := workload.NestedConfig{N: n, Branch: 3, Leaf: maxInt(8, n/16), Cells: 8, Threshold: 0.5}
	run := func(wl string, flat bool, backend string, mode rts.Mode, p int) (trace.Result, string) {
		in, err := nestedVariant(wl, flat, cfg)
		if err != nil {
			panic(fmt.Sprintf("experiment: nested %s (flat=%v): %v", wl, flat, err))
		}
		var be rts.Backend
		if backend == "sim" {
			be = rts.NewSimBackend(machine.DefaultConfig(p))
		} else {
			be = native.Backend{}
		}
		r, err := be.Run(in.Graph, rts.BindClosure(in.Binder()), rts.RunOpts{Processors: p, Mode: mode})
		if err != nil {
			panic(fmt.Sprintf("experiment: nested %s/%s/%v/p=%d (flat=%v): %v", wl, backend, mode, p, flat, err))
		}
		return r, in.Digest()
	}
	var rep NestedReport
	for _, wl := range []string{"dc", "vortex"} {
		for _, backend := range []string{"sim", "native"} {
			for _, mode := range modes {
				for _, p := range procs {
					pt := NestedPoint{Workload: wl, Backend: backend, Mode: mode.String(), Processors: p}
					pt.Nested, pt.NestedDigest = run(wl, false, backend, mode, p)
					pt.Flat, pt.FlatDigest = run(wl, true, backend, mode, p)
					rep.Points = append(rep.Points, pt)
				}
			}
		}
	}
	return rep
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// FormatNested renders the sweep as an aligned table: nested vs flat
// makespan, the nested run's steal count (cross-level stealing shows
// up here), and the digest verdict.
func FormatNested(rep NestedReport) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-8s %-7s %-8s %5s %12s %12s %7s %7s  %s\n",
		"workload", "backend", "mode", "procs", "nested-mk", "flat-mk", "chunks", "steals", "digest")
	for _, p := range rep.Points {
		verdict := "MISMATCH"
		if p.NestedDigest != "" && p.NestedDigest == p.FlatDigest {
			verdict = "ok " + p.NestedDigest[:12]
		}
		fmt.Fprintf(&b, "%-8s %-7s %-8s %5d %12.4f %12.4f %7d %7d  %s\n",
			p.Workload, p.Backend, p.Mode, p.Processors,
			p.Nested.Makespan, p.Flat.Makespan, p.Nested.Chunks, p.Nested.Steals, verdict)
	}
	return b.String()
}
