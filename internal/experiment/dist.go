package experiment

import (
	"fmt"
	"strings"

	"orchestra/internal/delirium"
	"orchestra/internal/dist"
	"orchestra/internal/machine"
	"orchestra/internal/native"
	"orchestra/internal/rts"
	"orchestra/internal/trace"
	"orchestra/internal/workload"
)

// The distributed-backend sweep: the same Psirrfan/climate graph
// topologies as the native experiment, but on forked worker processes
// talking to the coordinator over Unix-domain sockets. Every process
// boundary the simulator only models is real here — the kernel binding
// travels by name, segment results travel as byte blobs, and the
// reported comm column is measured wall-clock protocol overhead, which
// the table sets beside what the simulator's Ncube-2 cost model
// (machine.DefaultConfig) predicts for the same message mix.
//
// Each spin-kernel timing point is paired with an "array"-kernel run
// of the same configuration on both the dist and native backends: the
// array kernels produce durable numeric results and a digest, so the
// Digest/NativeDigest columns prove the multi-process schedule moved
// real bytes correctly — bitwise — not just on time.

// DistPoint is one measurement of the distributed sweep.
type DistPoint struct {
	App     string       `json:"app"`
	Mode    string       `json:"mode"`
	Workers int          `json:"workers"`
	Result  trace.Result `json:"result"`
	// ModelCommS is the simulator cost model's prediction for the same
	// message mix (Chunks grant/done round trips, CommBytes of payload),
	// converted to seconds with the run's own measured seconds-per-task-
	// unit — comparable with Result.Comm.
	ModelCommS float64 `json:"model_comm_s"`
	// Digest and NativeDigest fingerprint the array-kernel run of this
	// configuration on the dist and native backends; equality means the
	// distributed execution produced bitwise the in-process results.
	Digest       string `json:"digest"`
	NativeDigest string `json:"native_digest"`
}

// DistReport is the BENCH_dist.json payload.
type DistReport struct {
	Points []DistPoint `json:"points"`
}

// DigestsAgree reports whether every point's distributed array-kernel
// digest matches its native one.
func (r DistReport) DigestsAgree() bool {
	for _, p := range r.Points {
		if p.Digest == "" || p.Digest != p.NativeDigest {
			return false
		}
	}
	return true
}

// DistSweep measures the distributed backend across apps × modes ×
// worker counts. The caller's binary must route forked workers with
// dist.MaybeWorker at the top of main (or TestMain).
// A nil modes slice sweeps all three modes.
func DistSweep(tasks int, seed uint64, workers []int, unitWork int, modes []rts.Mode) DistReport {
	if modes == nil {
		modes = []rts.Mode{rts.ModeStatic, rts.ModeTaper, rts.ModeSplit}
	}
	apps := []*workload.App{
		workload.Psirrfan(workload.Config{N: tasks, Seed: seed}),
		workload.Climate(workload.Config{N: tasks, Seed: seed}),
	}
	spin := SpinBinding(tasks, 1.0, seed, unitWork)
	var rep DistReport
	for _, app := range apps {
		for _, mode := range modes {
			for _, w := range workers {
				g := app.GraphFor(mode, w)
				opts := rts.RunOpts{Processors: w, Mode: mode}

				bound, err := rts.Bind(g, spin)
				if err != nil {
					panic(fmt.Sprintf("experiment: dist bind %s/%v/p=%d: %v", app.Name, mode, w, err))
				}
				r, err := (dist.Backend{}).Run(g, bound, opts)
				if err != nil {
					panic(fmt.Sprintf("experiment: dist %s/%v/p=%d: %v", app.Name, mode, w, err))
				}

				pt := DistPoint{
					App:        app.Name,
					Mode:       mode.String(),
					Workers:    w,
					Result:     r,
					ModelCommS: modelComm(g, tasks, seed, r),
				}
				pt.Digest, pt.NativeDigest = distDigests(g, tasks, opts)
				rep.Points = append(rep.Points, pt)
			}
		}
	}
	return rep
}

// modelComm converts the run's message mix into the simulator cost
// model's prediction, in seconds. The model charges per-message
// software overhead plus per-hop latency plus per-byte transfer, in
// task-time units; a chunk costs one grant/done round trip (two
// messages, one hop each on the coordinator star) and its done blob's
// bytes. Task-time units become seconds through the run itself: the
// spin kernels' drawn task times sum to seqUnits task units, and the
// run measured those same draws as Result.SeqTime seconds of
// execution, so seconds-per-unit needs no calibration constant.
func modelComm(g *delirium.Graph, tasks int, seed uint64, r trace.Result) float64 {
	params := rts.KernelParams{}
	params.SetInt("n", tasks)
	params.SetInt("tasks", tasks)
	params.SetFloat("cv", 1.0)
	params.SetUint64("seed", seed)
	bound, err := rts.Bind(g, rts.NamedBinding("lognormal", params))
	if err != nil {
		return 0
	}
	seqUnits := 0.0
	for _, nd := range g.Nodes {
		seqUnits += bound.Spec(nd.Name).Op.TotalTime()
	}
	if seqUnits <= 0 || r.SeqTime <= 0 {
		return 0
	}
	m := machine.DefaultConfig(r.Processors)
	units := float64(r.Chunks)*2*(m.MsgOverhead+m.HopLatency) + m.ByteCost*float64(r.CommBytes)
	return units * (r.SeqTime / seqUnits)
}

// distDigests runs the array kernels of one configuration on the dist
// and native backends and returns both digests. Failures surface as
// empty digests (rendered MISMATCH) rather than aborting the sweep.
func distDigests(g *delirium.Graph, n int, opts rts.RunOpts) (distDigest, nativeDigest string) {
	params := rts.KernelParams{}
	params.SetInt("n", n)
	params.SetInt("work", 1)
	binding := rts.NamedBinding("array", params)
	run := func(be rts.Backend) string {
		bound, err := rts.Bind(g, binding) // fresh zeroed arrays per run
		if err != nil {
			return ""
		}
		if _, err := be.Run(g, bound, opts); err != nil {
			return ""
		}
		d, _ := bound.Digest()
		return d
	}
	return run(dist.Backend{}), run(native.Backend{})
}

// FormatDist renders the sweep as an aligned table: wall-clock
// measurements, measured vs modeled comm, and the digest verdict.
func FormatDist(rep DistReport) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-10s %-8s %7s %12s %8s %7s %8s %11s %11s  %s\n",
		"app", "mode", "workers", "makespan(s)", "speedup", "chunks", "msgs", "comm(s)", "model(s)", "digest")
	for _, p := range rep.Points {
		r := p.Result
		verdict := "MISMATCH"
		if p.Digest != "" && p.Digest == p.NativeDigest {
			verdict = "ok " + p.Digest[:12]
		}
		fmt.Fprintf(&b, "%-10s %-8s %7d %12.4f %8.2f %7d %8d %11.4f %11.4f  %s\n",
			p.App, p.Mode, p.Workers, r.Makespan, r.Speedup(), r.Chunks, r.Messages,
			r.Comm, p.ModelCommS, verdict)
	}
	return b.String()
}
