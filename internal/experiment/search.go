package experiment

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"sort"
	"strings"
	"sync/atomic"

	"orchestra/internal/native"
	"orchestra/internal/obs"
	"orchestra/internal/rts"
	"orchestra/internal/search"
	"orchestra/internal/trace"
	"orchestra/internal/workload"
)

// This file is the profile-guided split-search benchmark: for every
// paper workload and worker count it measures always-sequential,
// always-split (the transformed graph applied wholesale, bypassing the
// workload.GraphFor one-worker guard), and the program the search
// emits from a profile of the split run. Tasks burn real CPU
// proportional to the workload's drawn task times, and — unlike
// NativeSweep's SpinBinder — the binder conserves work across graphs:
// a part operator spins exactly the partitioned times of its original
// phase, so seq, split and every hybrid execute the same total work
// and differ only in orchestration. A coverage digest per run proves
// each original task executed exactly once regardless of which graph
// ran it.

// Coverage counts executions of every original task of an application
// across whatever graph is running. Part operators map their task
// indices back to the original phase through the workload's part
// metadata, so structurally different graphs fill the same counters.
type Coverage struct {
	phases []string
	counts map[string][]int64
}

// NewCoverage allocates counters for every task of every original
// phase.
func NewCoverage(app *workload.App) *Coverage {
	c := &Coverage{counts: map[string][]int64{}}
	for _, ph := range app.Phases() {
		c.phases = append(c.phases, ph)
		c.counts[ph] = make([]int64, app.Bind(ph).Op.N)
	}
	return c
}

// Err reports the first original task not executed exactly once, nil
// when coverage is exact.
func (c *Coverage) Err() error {
	for _, ph := range c.phases {
		for i, n := range c.counts[ph] {
			if n != 1 {
				return fmt.Errorf("task %s[%d] executed %d times, want 1", ph, i, n)
			}
		}
	}
	return nil
}

// Digest fingerprints the coverage: SHA-256 over every phase's name,
// length and counters. Two runs digest identically iff they executed
// the same multiset of original tasks — the cross-graph conformance
// check the benchmark's digest column reports.
func (c *Coverage) Digest() string {
	h := sha256.New()
	var buf [8]byte
	for _, ph := range c.phases {
		h.Write([]byte(ph))
		h.Write([]byte{0})
		cnt := c.counts[ph]
		binary.LittleEndian.PutUint64(buf[:], uint64(len(cnt)))
		h.Write(buf[:])
		for _, n := range cnt {
			binary.LittleEndian.PutUint64(buf[:], uint64(n))
			h.Write(buf[:])
		}
	}
	return hex.EncodeToString(h.Sum(nil))
}

// conservingBinder wraps the application's operation specs so each
// task spins unitWork iterations per drawn time unit and records its
// original task in cov. Statistics (μ, σ, hints) stay the workload's
// precomputed values; only the execution body changes.
func conservingBinder(app *workload.App, cov *Coverage, unitWork int) rts.Binder {
	if unitWork < 1 {
		unitWork = 1
	}
	return func(name string) rts.OpSpec {
		spec := app.Bind(name)
		part, ok := app.PartOrigin(name)
		if !ok {
			part = workload.Part{Phase: name}
		}
		counts := cov.counts[part.Phase]
		idx := part.Index
		base := spec.Op.Time
		uw := float64(unitWork)
		record := func(i int) float64 {
			t := base(i)
			native.Spin(int(t * uw))
			o := i
			if idx != nil {
				o = idx[i]
			}
			atomic.AddInt64(&counts[o], 1)
			return t
		}
		spec.Op.Time = record
		spec.Op.TimeRange = func(lo, hi int) float64 {
			sum := 0.0
			for i := lo; i < hi; i++ {
				sum += record(i)
			}
			return sum
		}
		return spec
	}
}

// SearchPoint is one (application, worker count) cell of the search
// benchmark.
type SearchPoint struct {
	App     string `json:"app"`
	Workers int    `json:"workers"`
	// Seq, Split and Searched are the measured runs (best of repeats)
	// of the three programs; Searched aliases Seq or Split when the
	// search emitted a baseline, so equal plans report equal numbers.
	Seq      trace.Result `json:"seq"`
	Split    trace.Result `json:"split"`
	Searched trace.Result `json:"searched"`
	// Plan is the searched candidate's ID ("seq", "split", or a hybrid
	// description); Scores is the full ranked evidence.
	Plan   string         `json:"plan"`
	Scores []search.Score `json:"scores"`
	// SeqDigest/SplitDigest/SearchedDigest are coverage digests: equal
	// digests prove every original task executed exactly once under
	// every program.
	SeqDigest      string `json:"seq_digest"`
	SplitDigest    string `json:"split_digest"`
	SearchedDigest string `json:"searched_digest"`
}

// DigestsMatch reports whether all three programs covered the original
// tasks identically.
func (pt SearchPoint) DigestsMatch() bool {
	return pt.SeqDigest == pt.SplitDigest && pt.SplitDigest == pt.SearchedDigest
}

// SearchReport is the search benchmark's full result set.
type SearchReport struct {
	Tasks    int           `json:"tasks"`
	Seed     uint64        `json:"seed"`
	UnitWork int           `json:"unit_work"`
	Repeats  int           `json:"repeats"`
	Points   []SearchPoint `json:"points"`
}

// DigestsAgree reports whether every cell's three programs produced
// identical coverage.
func (r SearchReport) DigestsAgree() bool {
	for _, pt := range r.Points {
		if !pt.DigestsMatch() {
			return false
		}
	}
	return true
}

// Search runs the profile-guided split-search benchmark: for each
// application and worker count, measure always-seq and always-split,
// profile the split run, search the hybrid space with measured
// validation (finalists are actually run; baselines reuse their
// measured numbers), and measure the emitted program. Epsilon is
// effectively zero here — the benchmark adopts the measured best, and
// ties still break toward the less-transformed program — so the
// searched makespan is the minimum over every validated candidate by
// construction.
func Search(n int, seed uint64, workers []int, unitWork, repeats int) SearchReport {
	if repeats < 1 {
		repeats = 1
	}
	rep := SearchReport{Tasks: n, Seed: seed, UnitWork: unitWork, Repeats: repeats}
	for _, app := range workload.All(n, seed) {
		origin := func(part string) string {
			if p, ok := app.PartOrigin(part); ok {
				return p.Phase
			}
			return part
		}
		parts := map[string][]string{}
		for _, nd := range app.SplitGraph.Nodes {
			if p, ok := app.PartOrigin(nd.Name); ok && p.Phase != nd.Name {
				parts[p.Phase] = append(parts[p.Phase], nd.Name)
			}
		}
		cands, err := search.HybridCandidates(app.SeqGraph, app.SplitGraph, origin)
		if err != nil {
			panic(fmt.Sprintf("experiment: search candidates for %s: %v", app.Name, err))
		}
		for _, w := range workers {
			r := repeats
			if w == 1 {
				// One-worker cells differ only by orchestration overhead,
				// deep in the noise floor of a wall-clock run; extra
				// repeats push the best-of minimum toward the true floor,
				// where the least-overhead program wins.
				r = repeats + 4
			}
			pt := searchPoint(app, cands, parts, w, unitWork, r)
			rep.Points = append(rep.Points, pt)
		}
	}
	return rep
}

// measured is one candidate's best-of-repeats native run.
type measured struct {
	res    trace.Result
	digest string
	cov    error
}

func searchPoint(app *workload.App, cands []search.Candidate, parts map[string][]string, w, unitWork, repeats int) SearchPoint {
	// Every program runs under the split-mode executor (TAPER chunking
	// plus dataflow gates) so the cells compare graphs, not scheduler
	// modes; on a chain graph the gates are trivially open and the
	// executor degrades to plain TAPER.
	runOnce := func(c search.Candidate, sink obs.Sink) measured {
		cov := NewCoverage(app)
		bind := rts.BindClosure(conservingBinder(app, cov, unitWork))
		res, err := native.Backend{}.Run(c.Graph, bind, rts.RunOpts{
			Processors: w, Mode: rts.ModeSplit, Sink: sink,
		})
		if err != nil {
			panic(fmt.Sprintf("experiment: search %s/%s/p=%d: %v", app.Name, c.ID, w, err))
		}
		return measured{res: res, digest: cov.Digest(), cov: cov.Err()}
	}
	run := func(c search.Candidate, sink obs.Sink) measured {
		best := runOnce(c, sink)
		for r := 1; r < repeats; r++ {
			m := runOnce(c, nil)
			if m.res.Makespan < best.res.Makespan {
				best.res = m.res
			}
		}
		return best
	}

	var seqC, splitC search.Candidate
	for _, c := range cands {
		if c.ID == "seq" {
			seqC = c
		}
		if c.ID == "split" {
			splitC = c
		}
	}

	// The split run doubles as the profiling run.
	var col obs.Collector
	byID := map[string]measured{
		"split": run(splitC, &col),
		"seq":   run(seqC, nil),
	}
	prof, err := search.FromTrace(col.Trace, 0)
	if err != nil {
		panic(fmt.Sprintf("experiment: search profile %s/p=%d: %v", app.Name, w, err))
	}

	validate := func(c search.Candidate) (float64, error) {
		m, ok := byID[c.ID]
		if !ok {
			m = run(c, nil)
			byID[c.ID] = m
		}
		return m.res.Makespan, nil
	}
	// With more than one worker the benchmark adopts the measured best
	// outright (epsilon ~0), so the searched makespan cannot lose to a
	// baseline. On one worker nothing overlaps and the programs differ
	// only by orchestration overhead, well inside measurement noise —
	// there the adoption margin does its real job and the tie goes to
	// the sequential program.
	eps := 1e-9
	if w == 1 {
		eps = search.DefaultEpsilon
	}
	plan, err := search.Run(prof, cands, search.Options{
		P: w, Parts: parts, Epsilon: eps, Validate: validate,
	})
	if err != nil {
		panic(fmt.Sprintf("experiment: search %s/p=%d: %v", app.Name, w, err))
	}

	// Measurement gets the last word: if a baseline's best-of minimum
	// beats the emitted plan's, re-measure the two head-to-head with
	// alternating runs (immune to clock-speed drift between the earlier
	// measurement blocks) and adopt the baseline if it still wins. The
	// emitted program is the profitable subset — when measurement says
	// a transformation does not pay, the subset shrinks to the
	// baseline.
	planID := plan.Best.ID
	candByID := map[string]search.Candidate{}
	for _, c := range cands {
		candByID[c.ID] = c
	}
	playoff := func(aID, bID string) {
		for r := 0; r < repeats+2; r++ {
			for _, id := range []string{aID, bID} {
				m := runOnce(candByID[id], nil)
				if cur := byID[id]; m.res.Makespan < cur.res.Makespan {
					cur.res = m.res
					byID[id] = cur
				}
			}
		}
	}
	for _, bid := range []string{"seq", "split"} {
		if bid != planID && byID[bid].res.Makespan < byID[planID].res.Makespan {
			playoff(planID, bid)
		}
	}
	for _, bid := range []string{"seq", "split"} {
		if byID[bid].res.Makespan < byID[planID].res.Makespan {
			planID = bid
		}
	}
	for i := range plan.Scores {
		plan.Scores[i].Chosen = plan.Scores[i].ID == planID
	}

	chosen := byID[planID]
	for id, m := range byID {
		if m.cov != nil {
			panic(fmt.Sprintf("experiment: search %s/%s/p=%d coverage: %v", app.Name, id, w, m.cov))
		}
	}
	return SearchPoint{
		App:            app.Name,
		Workers:        w,
		Seq:            byID["seq"].res,
		Split:          byID["split"].res,
		Searched:       chosen.res,
		Plan:           planID,
		Scores:         plan.Scores,
		SeqDigest:      byID["seq"].digest,
		SplitDigest:    byID["split"].digest,
		SearchedDigest: chosen.digest,
	}
}

// FormatSearch renders the benchmark as an aligned table.
func FormatSearch(r SearchReport) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-9s %3s %10s %10s %10s  %-7s %-40s %s\n",
		"app", "p", "seq(s)", "split(s)", "searched", "vs best", "plan", "digest")
	pts := append([]SearchPoint(nil), r.Points...)
	sort.SliceStable(pts, func(i, j int) bool {
		if pts[i].App != pts[j].App {
			return pts[i].App < pts[j].App
		}
		return pts[i].Workers < pts[j].Workers
	})
	for _, pt := range pts {
		best := pt.Seq.Makespan
		if pt.Split.Makespan < best {
			best = pt.Split.Makespan
		}
		digest := "MATCH"
		if !pt.DigestsMatch() {
			digest = "MISMATCH"
		}
		fmt.Fprintf(&b, "%-9s %3d %10.4f %10.4f %10.4f  %6.2f%% %-40s %s\n",
			pt.App, pt.Workers, pt.Seq.Makespan, pt.Split.Makespan, pt.Searched.Makespan,
			100*(best-pt.Searched.Makespan)/best, pt.Plan, digest)
	}
	return b.String()
}
