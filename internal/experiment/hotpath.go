package experiment

import (
	"fmt"
	"runtime"
	"strings"
	"time"

	"orchestra/internal/machine"
)

// SimEventStats is one measurement of the simulator's event-loop
// throughput: wall-clock nanoseconds and heap allocations per executed
// event, over a run large enough to reach the arena's steady state.
type SimEventStats struct {
	Events         int64   `json:"events"`
	NsPerEvent     float64 `json:"ns_per_event"`
	AllocsPerEvent float64 `json:"allocs_per_event"`
}

// HotpathReport bundles the two wall-clock measurements the hot-path
// work targets: the native backend's makespans and the simulator's
// event-loop throughput. orchbench writes a before/after pair of these
// to BENCH_hotpath.json.
type HotpathReport struct {
	Native    []NativePoint `json:"native"`
	SimEvents SimEventStats `json:"sim_events"`
}

// Hotpath runs the hot-path measurement suite: the native Psirrfan
// sweep (real CPU-spinning tasks on goroutine workers) plus a
// simEvents-event simulator run driven through the allocation-free
// AfterFn path. Every point is the fastest of three runs — the usual
// guard against OS-scheduler noise in wall-clock microbenchmarks —
// so before/after series taken on the same host are comparable.
func Hotpath(tasks int, seed uint64, workers []int, unitWork, simEvents int) HotpathReport {
	const repeats = 3
	var rep HotpathReport
	for r := 0; r < repeats; r++ {
		pts := NativeSweep(tasks, seed, workers, unitWork, nil)
		sim := MeasureSimEvents(simEvents)
		if r == 0 {
			rep = HotpathReport{Native: pts, SimEvents: sim}
			continue
		}
		for i := range pts {
			if pts[i].Result.Makespan < rep.Native[i].Result.Makespan {
				rep.Native[i] = pts[i]
			}
		}
		if sim.NsPerEvent < rep.SimEvents.NsPerEvent {
			rep.SimEvents = sim
		}
	}
	return rep
}

// MeasureSimEvents times a simulator run of approximately the given
// number of events: 64 self-rescheduling callbacks (one per simulated
// processor) that each re-arm until the budget is spent — the same
// shape as a steady-state executor, so the measurement reflects the
// event loop, not setup.
func MeasureSimEvents(events int) SimEventStats {
	const procs = 64
	sim := machine.NewSim(machine.DefaultConfig(procs))
	left := events
	var tick func(int)
	tick = func(j int) {
		if left > 0 {
			left--
			sim.AfterFn(1, tick, j)
		}
	}
	var ms0, ms1 runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&ms0)
	t0 := time.Now()
	for j := 0; j < procs; j++ {
		sim.AfterFn(1, tick, j)
	}
	sim.Run()
	elapsed := time.Since(t0)
	runtime.ReadMemStats(&ms1)
	n := sim.Events()
	return SimEventStats{
		Events:         n,
		NsPerEvent:     float64(elapsed.Nanoseconds()) / float64(n),
		AllocsPerEvent: float64(ms1.Mallocs-ms0.Mallocs) / float64(n),
	}
}

// FormatHotpathDelta renders a before/after comparison: per-mode native
// makespan change and the sim event-loop change. Negative percentages
// are improvements.
func FormatHotpathDelta(before, after HotpathReport) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-14s %8s %14s %14s %8s\n", "mode", "workers", "before(s)", "after(s)", "delta")
	for _, ap := range after.Native {
		for _, bp := range before.Native {
			if bp.Mode == ap.Mode && bp.Workers == ap.Workers {
				d := 100 * (ap.Result.Makespan - bp.Result.Makespan) / bp.Result.Makespan
				fmt.Fprintf(&b, "%-14s %8d %14.6f %14.6f %+7.1f%%\n",
					ap.Mode, ap.Workers, bp.Result.Makespan, ap.Result.Makespan, d)
			}
		}
	}
	sb, sa := before.SimEvents, after.SimEvents
	if sb.Events > 0 && sa.Events > 0 {
		fmt.Fprintf(&b, "sim events: %.1f -> %.1f ns/event (%+.1f%%), %.3f -> %.3f allocs/event\n",
			sb.NsPerEvent, sa.NsPerEvent, 100*(sa.NsPerEvent-sb.NsPerEvent)/sb.NsPerEvent,
			sb.AllocsPerEvent, sa.AllocsPerEvent)
	}
	return b.String()
}
