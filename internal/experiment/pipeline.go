package experiment

import (
	"fmt"
	"strings"

	"orchestra/internal/native"
	"orchestra/internal/rts"
	"orchestra/internal/trace"
	"orchestra/internal/workload"
)

// PipelinePoint is one measurement of the cache-chain benchmark: the
// MemChain bandwidth workload executed natively at one worker count,
// with the chain scheduler on or off. Digest fingerprints the final
// memory image, so a report proves the two schedules produced
// identical bits alongside their makespans.
type PipelinePoint struct {
	Workers int          `json:"workers"`
	Chain   bool         `json:"chain"`
	Result  trace.Result `json:"result"`
	Digest  string       `json:"digest"`
}

// PipelineReport is what orchbench writes to BENCH_pipeline.json: the
// chained/unchained sweep over worker counts on the memory-bound
// operator chain, plus the problem size that produced it.
type PipelineReport struct {
	Tasks  int             `json:"tasks"`
	Points []PipelinePoint `json:"points"`
}

// Pipeline measures cache chaining on the MemChain workload: for each
// worker count, split-mode runs with the chain scheduler enabled and
// disabled, each the fastest of `repeats` runs (wall-clock benchmarks
// on shared hosts need a min, not a mean). tasks should put each array
// well past the last-level cache (the default benchmark uses 1<<22
// elements = 32 MB per array) — at smaller sizes the whole working set
// is cache-resident either way and chaining can only show its
// scheduling overhead.
func Pipeline(tasks int, seed uint64, workers []int, repeats int) PipelineReport {
	if repeats < 1 {
		repeats = 1
	}
	rep := PipelineReport{Tasks: tasks}
	for _, w := range workers {
		for _, chain := range []rts.ChainPolicy{rts.ChainOff, rts.ChainAuto} {
			var best PipelinePoint
			for r := 0; r < repeats; r++ {
				app, st := workload.MemChain(workload.Config{N: tasks, Seed: seed})
				g := app.GraphFor(rts.ModeSplit, w)
				res, err := (native.Backend{}).Run(g, rts.BindClosure(app.Bind), rts.RunOpts{
					Processors: w, Mode: rts.ModeSplit, Chain: chain,
				})
				if err != nil {
					panic(fmt.Sprintf("experiment: pipeline p=%d chain=%v: %v", w, chain, err))
				}
				p := PipelinePoint{Workers: w, Chain: chain == rts.ChainAuto,
					Result: res, Digest: native.StateDigest(st)}
				if r == 0 || p.Result.Makespan < best.Result.Makespan {
					best = p
				}
			}
			rep.Points = append(rep.Points, best)
		}
	}
	return rep
}

// Speedups returns, per worker count, the unchained/chained makespan
// ratio (>1 means chaining is faster) and whether the two runs'
// digests agree.
func (r PipelineReport) Speedups() map[int]float64 {
	off := map[int]float64{}
	out := map[int]float64{}
	for _, p := range r.Points {
		if !p.Chain {
			off[p.Workers] = p.Result.Makespan
		}
	}
	for _, p := range r.Points {
		if p.Chain && off[p.Workers] > 0 && p.Result.Makespan > 0 {
			out[p.Workers] = off[p.Workers] / p.Result.Makespan
		}
	}
	return out
}

// DigestsAgree reports whether every chained run produced the same
// memory image as its unchained counterpart.
func (r PipelineReport) DigestsAgree() bool {
	d := map[int]string{}
	for _, p := range r.Points {
		if !p.Chain {
			d[p.Workers] = p.Digest
		}
	}
	for _, p := range r.Points {
		if p.Chain && p.Digest != d[p.Workers] {
			return false
		}
	}
	return true
}

// FormatPipeline renders the sweep as an aligned table: makespans,
// the chained speedup, chain-path counters, and digest agreement.
func FormatPipeline(r PipelineReport) string {
	var b strings.Builder
	fmt.Fprintf(&b, "memchain n=%d (native split mode, chained vs unchained)\n", r.Tasks)
	fmt.Fprintf(&b, "%8s %14s %14s %8s %8s %8s %8s %8s\n",
		"workers", "unchained(s)", "chained(s)", "speedup", "hits", "spills", "fallbk", "digest")
	sp := r.Speedups()
	off := map[int]PipelinePoint{}
	for _, p := range r.Points {
		if !p.Chain {
			off[p.Workers] = p
		}
	}
	for _, p := range r.Points {
		if !p.Chain {
			continue
		}
		o := off[p.Workers]
		agree := "MATCH"
		if p.Digest != o.Digest {
			agree = "DIFFER"
		}
		fmt.Fprintf(&b, "%8d %14.6f %14.6f %7.2fx %8d %8d %8d %8s\n",
			p.Workers, o.Result.Makespan, p.Result.Makespan, sp[p.Workers],
			p.Result.ChainHits, p.Result.ChainSpills, p.Result.ChainFallbacks, agree)
	}
	return b.String()
}
