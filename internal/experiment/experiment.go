// Package experiment regenerates the paper's evaluation (§5): the
// Figure 6 processor sweep for Psirrfan, the in-text climate-model
// measurements (Table 1), and the processor-doubling table (Table 2),
// plus the ablations DESIGN.md lists. cmd/orchbench and the repository
// benchmarks both drive these entry points.
package experiment

import (
	"fmt"
	"strings"

	"orchestra/internal/machine"
	"orchestra/internal/obs"
	"orchestra/internal/rts"
	"orchestra/internal/sched"
	"orchestra/internal/trace"
	"orchestra/internal/workload"
)

// RunApp executes one application at one processor count under one
// mode. Speedup and efficiency are measured against the original
// (unsplit) program's sequential work, as the paper defines
// efficiency.
func RunApp(app *workload.App, p int, mode rts.Mode) trace.Result {
	cfg := machine.DefaultConfig(p)
	g := app.GraphFor(mode, p)
	r, err := rts.RunGraph(cfg, g, app.Bind, rts.RunOpts{Processors: p, Mode: mode})
	if err != nil {
		panic(fmt.Sprintf("experiment: %s/%v: %v", app.Name, mode, err))
	}
	r.SeqTime = app.SeqTime()
	r.Name = fmt.Sprintf("%s/%s", mode, app.Name)
	return r
}

// Figure6 sweeps Psirrfan over processor counts for the three
// configurations of the paper's Figure 6: static, TAPER, and TAPER
// with split.
func Figure6(n int, seed uint64, procs []int) []*trace.Series {
	modes := []rts.Mode{rts.ModeStatic, rts.ModeTaper, rts.ModeSplit}
	series := make([]*trace.Series, len(modes))
	for mi, mode := range modes {
		series[mi] = &trace.Series{Label: mode.String()}
		for _, p := range procs {
			app := workload.Psirrfan(workload.Config{N: n, Seed: seed})
			series[mi].Add(float64(p), RunApp(app, p, mode))
		}
	}
	return series
}

// Table1Row is one line of the climate-model comparison.
type Table1Row struct {
	Config string
	Result trace.Result
	// Paper's reported values for the corresponding configuration.
	PaperEff     float64
	PaperSpeedup float64
}

// Table1 reproduces the in-text climate-model measurements: TAPER on
// 512 processors (paper: 87% efficiency, speedup 445), TAPER on 1024
// (57%, 581), and TAPER+split on 1024 (83%, 850), on ~3200 grid cells.
func Table1(n int, seed uint64) []Table1Row {
	mk := func() *workload.App { return workload.Climate(workload.Config{N: n, Seed: seed}) }
	return []Table1Row{
		{Config: "TAPER p=512", Result: RunApp(mk(), 512, rts.ModeTaper), PaperEff: 0.87, PaperSpeedup: 445},
		{Config: "TAPER p=1024", Result: RunApp(mk(), 1024, rts.ModeTaper), PaperEff: 0.57, PaperSpeedup: 581},
		{Config: "TAPER+split p=1024", Result: RunApp(mk(), 1024, rts.ModeSplit), PaperEff: 0.83, PaperSpeedup: 850},
	}
}

// Table2Row is one line of the processor-doubling table.
type Table2Row struct {
	App        string
	P          int
	EffAtP     float64
	EffAt2P    float64
	LossPoints float64 // efficiency percentage points lost by doubling
}

// Table2 reproduces the claim that with split, doubling the processor
// count costs only five to fifteen percent efficiency, for each of the
// four applications.
func Table2(n int, seed uint64, p int) []Table2Row {
	var rows []Table2Row
	for _, mk := range []func() *workload.App{
		func() *workload.App { return workload.Psirrfan(workload.Config{N: n, Seed: seed}) },
		func() *workload.App { return workload.Climate(workload.Config{N: n, Seed: seed}) },
		func() *workload.App { return workload.EMU(workload.Config{N: n, Seed: seed}) },
		func() *workload.App { return workload.Vortex(workload.Config{N: n, Seed: seed}) },
	} {
		a := mk()
		e1 := RunApp(a, p, rts.ModeSplit).Efficiency()
		e2 := RunApp(mk(), 2*p, rts.ModeSplit).Efficiency()
		rows = append(rows, Table2Row{
			App:        a.Name,
			P:          p,
			EffAtP:     e1,
			EffAt2P:    e2,
			LossPoints: 100 * (e1 - e2),
		})
	}
	return rows
}

// AblationCostFunction compares TAPER with and without the learned
// cost function (§4.1.1: the runtime "does additional sampling of task
// costs to build a cost function") on one irregular operation: with it,
// the decomposition is cost-balanced, chunks are budgeted in time, and
// stragglers start early; without it the runtime sees only task counts.
func AblationCostFunction(n, p int, seed uint64) (with, without trace.Result) {
	app := workload.Vortex(workload.Config{N: n, Seed: seed})
	spec := app.Bind("vel")
	cold := spec.Op
	cold.Hint = nil
	cfg := machine.DefaultConfig(p)
	procs := idents(p)
	factory := func() sched.Policy { return &sched.Taper{UseCostFunction: true} }
	with = sched.ExecuteDistributed(cfg, spec.Op, procs, factory, obs.OpObs{})
	without = sched.ExecuteDistributed(cfg, cold, procs,
		func() sched.Policy { return &sched.Taper{UseCostFunction: false} }, obs.OpObs{})
	return with, without
}

// AblationAllocation compares the iterative processor-allocation
// algorithm against a naive half/half division for a concurrent
// irregular/regular pair.
func AblationAllocation(n, p int, seed uint64) (iterative, naive trace.Result) {
	app := workload.Climate(workload.Config{N: n, Seed: seed})
	specs := []rts.OpSpec{app.Bind("cloud"), app.Bind("radI")}
	cfg := machine.DefaultConfig(p)
	factory := func() sched.Policy { return &sched.Taper{UseCostFunction: true} }
	alloc := rts.AllocateMany(cfg, specs, p, nil)
	iterative = rts.ExecuteConcurrent(cfg, specs, alloc, factory)
	naive = rts.ExecuteConcurrent(cfg, specs, []int{p / 2, p - p/2}, factory)
	return iterative, naive
}

// AblationDistributed compares the distributed (owner-computes +
// re-assignment) execution against the centralized queue for the same
// TAPER policy.
func AblationDistributed(n, p int, seed uint64) (distributed, central trace.Result) {
	app := workload.Psirrfan(workload.Config{N: n, Seed: seed})
	spec := app.Bind("update")
	cfg := machine.DefaultConfig(p)
	factory := func() sched.Policy { return &sched.Taper{UseCostFunction: true} }
	distributed = sched.ExecuteDistributed(cfg, spec.Op, idents(p), factory, obs.OpObs{})
	central = sched.ExecuteCentral(cfg, spec.Op, idents(p), factory, obs.OpObs{})
	return distributed, central
}

// AblationMaxCount sweeps the allocation iteration bound, reporting
// the concurrent makespan for each setting (the paper: "using a
// max_count of four has been sufficient").
func AblationMaxCount(n, p int, seed uint64, counts []int) []trace.Result {
	app := workload.Climate(workload.Config{N: n, Seed: seed})
	a, b := app.Bind("cloud"), app.Bind("radI")
	cfg := machine.DefaultConfig(p)
	factory := func() sched.Policy { return &sched.Taper{UseCostFunction: true} }
	var out []trace.Result
	for _, mc := range counts {
		p1, p2 := rts.Allocate(
			func(q int) float64 { return rts.FinishEstimate(cfg, a, q).Total() },
			func(q int) float64 { return rts.FinishEstimate(cfg, b, q).Total() },
			p, mc, rts.DefaultEpsilon)
		r := rts.ExecuteConcurrent(cfg, []rts.OpSpec{a, b}, []int{p1, p2}, factory)
		r.Name = fmt.Sprintf("max_count=%d", mc)
		out = append(out, r)
	}
	return out
}

// Iterated compares K timesteps of an application executed three ways:
// per-step barriers with TAPER, per-step split (barrier between steps),
// and the fully unrolled K-step dataflow graph with no barriers at all
// — the cross-timestep extension of the paper's pipelining, natural for
// its iterative applications.
func Iterated(app *workload.App, k, p int) (perStepTaper, perStepSplit, unrolled trace.Result) {
	cfg := machine.DefaultConfig(p)
	seq := app.SeqTime() * float64(k)

	stepTaper := RunApp(app, p, rts.ModeTaper)
	perStepTaper = trace.Result{
		Name: "taper-steps", Processors: p,
		Makespan: stepTaper.Makespan * float64(k), SeqTime: seq,
	}
	stepSplit := RunApp(app, p, rts.ModeSplit)
	perStepSplit = trace.Result{
		Name: "split-steps", Processors: p,
		Makespan: stepSplit.Makespan * float64(k), SeqTime: seq,
	}

	g, bind, err := app.Unrolled(k)
	if err != nil {
		panic(fmt.Sprintf("experiment: unroll: %v", err))
	}
	unrolled, err = rts.ExecuteDAG(cfg, g, bind, rts.RunOpts{Processors: p})
	if err != nil {
		panic(fmt.Sprintf("experiment: unrolled run: %v", err))
	}
	unrolled.Name = "unrolled"
	unrolled.SeqTime = seq
	return perStepTaper, perStepSplit, unrolled
}

// PolicyRow is one line of the scheduler-policy comparison.
type PolicyRow struct {
	Policy string
	Result trace.Result
}

// Policies compares the loop schedulers the paper builds on and cites —
// self-scheduling, guided self-scheduling [Polychronopoulos & Kuck],
// factoring [Hummel et al.], and TAPER [Lucco] with and without the
// cost function — on the psirrfan update operation, cold (no learned
// hints), where the policies differ most.
func Policies(n, p int, seed uint64) []PolicyRow {
	app := workload.Psirrfan(workload.Config{N: n, Seed: seed})
	spec := app.Bind("update")
	spec.Op.Hint = nil
	cfg := machine.DefaultConfig(p)
	procs := idents(p)
	rows := []struct {
		name    string
		factory sched.Factory
	}{
		{"static", nil},
		{"SS", func() sched.Policy { return sched.SelfSched{} }},
		{"GSS", func() sched.Policy { return sched.GSS{} }},
		{"factoring", func() sched.Policy { return &sched.Factoring{} }},
		{"TAPER", func() sched.Policy { return &sched.Taper{} }},
		{"TAPER+costfn", func() sched.Policy { return &sched.Taper{UseCostFunction: true} }},
	}
	var out []PolicyRow
	for _, r := range rows {
		var res trace.Result
		if r.factory == nil {
			res = sched.ExecuteStatic(cfg, spec.Op, procs, obs.OpObs{})
		} else {
			res = sched.ExecuteDistributed(cfg, spec.Op, procs, r.factory, obs.OpObs{})
		}
		out = append(out, PolicyRow{Policy: r.name, Result: res})
	}
	return out
}

// FormatPolicies renders the policy comparison.
func FormatPolicies(rows []PolicyRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-14s %10s %10s %8s %8s\n", "policy", "makespan", "eff", "chunks", "steals")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-14s %10.1f %9.1f%% %8d %8d\n",
			r.Policy, r.Result.Makespan, 100*r.Result.Efficiency(),
			r.Result.Chunks, r.Result.Steals)
	}
	return b.String()
}

// FormatTable1 renders Table1 rows with paper-vs-measured columns.
func FormatTable1(rows []Table1Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-22s %12s %12s %14s %14s\n",
		"config", "paper eff", "measured", "paper speedup", "measured")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-22s %11.0f%% %11.1f%% %14.0f %14.1f\n",
			r.Config, 100*r.PaperEff, 100*r.Result.Efficiency(),
			r.PaperSpeedup, r.Result.Speedup())
	}
	return b.String()
}

// FormatTable2 renders Table2 rows.
func FormatTable2(rows []Table2Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-10s %8s %10s %10s %12s\n", "app", "p->2p", "eff@p", "eff@2p", "loss(pts)")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-10s %4d->%-4d %9.1f%% %9.1f%% %12.1f\n",
			r.App, r.P, 2*r.P, 100*r.EffAtP, 100*r.EffAt2P, r.LossPoints)
	}
	return b.String()
}

func idents(p int) []int {
	out := make([]int, p)
	for i := range out {
		out[i] = i
	}
	return out
}
