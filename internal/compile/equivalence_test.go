package compile

import (
	"math"
	"testing"

	"orchestra/internal/interp"
	"orchestra/internal/source"
	"orchestra/internal/stats"
)

// The strongest validation of split: the transformed program, executed
// sequentially in emitted order (CI; CD; CM and the re-wrapped
// pipelined loops), must compute exactly what the original computes.
// These tests run both on identical random inputs and compare final
// memory.

// buildState allocates and randomly initializes memory for a program.
// Integer arrays whose name contains "mask" are filled with 0/1 so that
// guards exercise both branches; extents are evaluated with n bound.
func buildState(t *testing.T, p *source.Program, n int, seed uint64) *interp.State {
	t.Helper()
	st := interp.NewState()
	st.Scalars["n"] = float64(n)
	rng := stats.NewRNG(seed)
	// First pass: scalars (so extents can reference them).
	for _, d := range p.Decls {
		if d.IsArray() {
			continue
		}
		switch d.Name {
		case "n":
		case "a":
			// A split point used by the Figure 4 family: keep it in
			// range.
			st.Scalars["a"] = float64(1 + rng.Intn(n))
		default:
			st.Scalars[d.Name] = rng.Uniform(-1, 1)
		}
	}
	evalExtent := func(e source.Expr) int {
		// Extents are simple expressions over scalars; reuse the
		// interpreter via a trivial program? Direct evaluation through
		// a scratch assignment keeps this simple.
		scratch, err := source.Parse("program s\n integer v\n v = 1\nend\n")
		if err != nil {
			t.Fatal(err)
		}
		scratch.Body[0].(*source.Assign).RHS = e
		tmp := interp.NewState()
		for k, v := range st.Scalars {
			tmp.Scalars[k] = v
		}
		if err := interp.Run(scratch, tmp); err != nil {
			t.Fatalf("extent: %v", err)
		}
		return int(tmp.Scalars["v"])
	}
	for _, d := range p.Decls {
		if !d.IsArray() {
			continue
		}
		dims := make([]int, len(d.Dims))
		for i, e := range d.Dims {
			dims[i] = evalExtent(e)
		}
		st.Alloc(d.Name, dims...)
		arr := st.Arrays[d.Name]
		if d.Type == source.Integer {
			for i := range arr {
				if rng.Bernoulli(0.4) {
					arr[i] = 1
				}
			}
		} else {
			for i := range arr {
				arr[i] = rng.Uniform(-2, 2)
			}
		}
	}
	return st
}

// cloneInto copies the original state's variables into a state prepared
// for the transformed program (which may declare extra variables).
func cloneInto(t *testing.T, orig *interp.State, tp *source.Program, n int) *interp.State {
	t.Helper()
	st := interp.NewState()
	for k, v := range orig.Scalars {
		st.Scalars[k] = v
	}
	for k, v := range orig.Arrays {
		st.Arrays[k] = append([]float64{}, v...)
		st.Dims[k] = append([]int{}, orig.Dims[k]...)
	}
	// Allocate the transformation-introduced declarations.
	for _, d := range tp.Decls {
		if d.IsArray() {
			if _, ok := st.Arrays[d.Name]; !ok {
				dims := make([]int, len(d.Dims))
				for i := range d.Dims {
					// New arrays clone an existing array's extents
					// (privatized copies share their original's shape);
					// extents are scalar expressions, evaluated against
					// the current scalars.
					dims[i] = extentOf(t, st, d.Dims[i])
				}
				st.Alloc(d.Name, dims...)
			}
		} else if _, ok := st.Scalars[d.Name]; !ok {
			st.Scalars[d.Name] = 0
		}
	}
	return st
}

func extentOf(t *testing.T, st *interp.State, e source.Expr) int {
	t.Helper()
	scratch, err := source.Parse("program s\n integer v\n v = 1\nend\n")
	if err != nil {
		t.Fatal(err)
	}
	scratch.Body[0].(*source.Assign).RHS = e
	tmp := interp.NewState()
	for k, v := range st.Scalars {
		tmp.Scalars[k] = v
	}
	if err := interp.Run(scratch, tmp); err != nil {
		t.Fatalf("extent: %v", err)
	}
	return int(tmp.Scalars["v"])
}

// checkEquivalent compiles src with opts and verifies the transformed
// program computes the same values for the observed variables. It
// returns the compilation output so callers can assert the transforms
// actually fired.
func checkEquivalent(t *testing.T, src string, n int, seed uint64, opts Options, arrays, scalars []string) *Output {
	t.Helper()
	prog, err := source.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	out, err := Compile(prog, opts)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}

	st1 := buildState(t, prog, n, seed)
	st2 := cloneInto(t, st1, out.Program, n)

	if err := interp.Run(prog, st1); err != nil {
		t.Fatalf("original run: %v", err)
	}
	if err := interp.Run(out.Program, st2); err != nil {
		t.Fatalf("transformed run: %v\nprogram:\n%s", err, source.Format(out.Program))
	}

	const tol = 1e-9
	for _, a := range arrays {
		x, y := st1.Arrays[a], st2.Arrays[a]
		if len(x) != len(y) {
			t.Fatalf("array %s sizes differ", a)
		}
		for i := range x {
			if math.Abs(x[i]-y[i]) > tol*(1+math.Abs(x[i])) {
				t.Fatalf("array %s differs at %d: %v vs %v (seed %d)\nreport: %v\nprogram:\n%s",
					a, i, x[i], y[i], seed, out.Report, source.Format(out.Program))
			}
		}
	}
	for _, s := range scalars {
		x, y := st1.Scalars[s], st2.Scalars[s]
		if math.Abs(x-y) > 1e-6*(1+math.Abs(x)) {
			t.Fatalf("scalar %s differs: %v vs %v (seed %d)\nprogram:\n%s",
				s, x, y, seed, source.Format(out.Program))
		}
	}
	return out
}

func TestEquivalenceFigure1(t *testing.T) {
	for seed := uint64(1); seed <= 8; seed++ {
		out := checkEquivalent(t, figure1, 12, seed, DefaultOptions(),
			[]string{"q", "output"}, nil)
		if len(out.Report) < 2 {
			t.Fatalf("expected split and pipeline to fire: %v", out.Report)
		}
	}
}

func TestEquivalenceFigure1SplitOnly(t *testing.T) {
	opts := DefaultOptions()
	opts.EnablePipeline = false
	for seed := uint64(1); seed <= 5; seed++ {
		checkEquivalent(t, figure1, 10, seed, opts, []string{"q", "output"}, nil)
	}
}

const figure4Src = `
program fig4
  integer n, a
  real x(n, n), y(n), sum

  do i = 1, n
    x(a, i) = x(a, i) + y(i)
  end do

  do i = 1, n
    do j = 1, n
      sum = sum + x(i, j)
    end do
  end do
end
`

func TestEquivalenceFigure4(t *testing.T) {
	// Reduction replication reassociates the sum, so compare with the
	// scalar tolerance.
	for seed := uint64(1); seed <= 8; seed++ {
		out := checkEquivalent(t, figure4Src, 9, seed, DefaultOptions(),
			[]string{"x"}, []string{"sum"})
		if len(out.Report) == 0 {
			t.Fatal("expected the Figure 4 split to fire")
		}
	}
}

func TestEquivalenceMaskedConsumer(t *testing.T) {
	src := `
program masked
  integer n
  integer mask(n)
  real q(n, n), output(n, n)

  do col = 1, n where (mask(col) != 0)
    do i = 1, n
      q(i, col) = q(i, col) * 2 + 1
    end do
  end do

  do i = 1, n
    do j = 1, n
      output(j, i) = q(j, i) + 3
    end do
  end do
end
`
	for seed := uint64(1); seed <= 8; seed++ {
		out := checkEquivalent(t, src, 11, seed, DefaultOptions(),
			[]string{"q", "output"}, nil)
		if len(out.Report) == 0 {
			t.Fatal("expected the masked consumer to split")
		}
	}
}

func TestEquivalenceIndependentPhases(t *testing.T) {
	src := `
program indep
  integer n
  real a(n), b(n)
  do i = 1, n
    a(i) = i * 2
  end do
  do i = 1, n
    b(i) = i + 1
  end do
end
`
	checkEquivalent(t, src, 16, 1, DefaultOptions(), []string{"a", "b"}, nil)
}

func TestEquivalenceChainOfThree(t *testing.T) {
	src := `
program chain3
  integer n, a
  real x(n, n), y(n), s1, s2

  do i = 1, n
    x(a, i) = x(a, i) + y(i)
  end do

  do i = 1, n
    do j = 1, n
      s1 = s1 + x(i, j)
    end do
  end do

  do i = 1, n
    y(i) = y(i) * 2
  end do
end
`
	for seed := uint64(1); seed <= 5; seed++ {
		checkEquivalent(t, src, 8, seed, DefaultOptions(),
			[]string{"x", "y"}, []string{"s1"})
	}
}

func TestEquivalenceNoTransformNeeded(t *testing.T) {
	// A fully dependent chain must pass through untouched and still be
	// equivalent.
	src := `
program dep
  integer n
  real x(n)
  do i = 1, n
    x(i) = x(i) + 1
  end do
  do i = 1, n
    x(i) = x(i) * 2
  end do
end
`
	checkEquivalent(t, src, 10, 2, DefaultOptions(), []string{"x"}, nil)
}
