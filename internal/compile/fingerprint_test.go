package compile

import (
	"strings"
	"testing"
)

func TestFingerprintStability(t *testing.T) {
	src := "program p\n integer n\nend\n"
	a := Fingerprint(src, DefaultOptions())
	b := Fingerprint(src, DefaultOptions())
	if a != b {
		t.Fatalf("same source+options fingerprint differs: %s vs %s", a, b)
	}
	if len(a) != 64 || strings.Trim(a, "0123456789abcdef") != "" {
		t.Fatalf("fingerprint %q is not hex sha256", a)
	}
}

func TestFingerprintSensitivity(t *testing.T) {
	src := "program p\n integer n\nend\n"
	base := Fingerprint(src, DefaultOptions())
	seen := map[string]string{base: "base"}
	add := func(label, fp string) {
		if prev, dup := seen[fp]; dup {
			t.Errorf("%s collides with %s", label, prev)
		}
		seen[fp] = label
	}
	add("source change", Fingerprint(src+" ", DefaultOptions()))

	o := DefaultOptions()
	o.EnableSplit = false
	add("split off", Fingerprint(src, o))

	o = DefaultOptions()
	o.EnablePipeline = false
	add("pipeline off", Fingerprint(src, o))

	o = DefaultOptions()
	o.PipelineDepth = 2
	add("depth 2", Fingerprint(src, o))

	o = DefaultOptions()
	o.EnableFusion = true
	add("fusion on", Fingerprint(src, o))

	o = DefaultOptions()
	o.Split.ReplicationThreshold++
	add("replication threshold", Fingerprint(src, o))

	o = DefaultOptions()
	o.Split.BlockRenames = map[string]string{"a": "b"}
	add("renames", Fingerprint(src, o))
}

func TestFingerprintRenameOrderIndependent(t *testing.T) {
	src := "x"
	a := DefaultOptions()
	a.Split.BlockRenames = map[string]string{"a": "1", "b": "2", "c": "3"}
	b := DefaultOptions()
	b.Split.BlockRenames = map[string]string{"c": "3", "b": "2", "a": "1"}
	if Fingerprint(src, a) != Fingerprint(src, b) {
		t.Fatal("map iteration order leaked into the fingerprint")
	}
	// Key/value boundary must matter: {"ab":"c"} vs {"a":"bc"}.
	a.Split.BlockRenames = map[string]string{"ab": "c"}
	b.Split.BlockRenames = map[string]string{"a": "bc"}
	if Fingerprint(src, a) == Fingerprint(src, b) {
		t.Fatal("rename key/value boundary is ambiguous")
	}
}

func TestGraphFingerprintDistinctSpace(t *testing.T) {
	if GraphFingerprint("x") == GraphFingerprint("y") {
		t.Fatal("different graphs share a fingerprint")
	}
	// A graph submission never collides with a program submission of
	// identical text.
	if GraphFingerprint("text") == Fingerprint("text", Options{}) {
		t.Fatal("graph and program key spaces collide")
	}
}
