package compile

import (
	"fmt"
	"strings"
	"testing"

	"orchestra/internal/machine"
	"orchestra/internal/rts"
	"orchestra/internal/sched"
	"orchestra/internal/source"
	"orchestra/internal/stats"
)

// Randomized end-to-end correctness: generate random well-formed
// programs, compile them with every transformation enabled, and check
// the transformed program computes exactly what the original does.
// The generator produces the constructs the transformations act on —
// masked loops, affine subscripts, reductions, adjacent phases over
// shared arrays — while keeping subscripts provably in bounds.

// progGen builds a random program over a fixed set of declarations.
type progGen struct {
	rng    *stats.RNG
	arrays []string // 1-D real arrays
	mats   []string // 2-D real arrays
	sums   []string // reduction scalars
	nextID int
}

func newProgGen(rng *stats.RNG) *progGen {
	return &progGen{
		rng:    rng,
		arrays: []string{"u", "v", "w"},
		mats:   []string{"q", "r"},
		sums:   []string{"s1", "s2"},
	}
}

func (g *progGen) decls() string {
	return `  integer n
  integer mask(n)
  real ` + strings.Join(g.arrays, "(n), ") + `(n)
  real ` + strings.Join(g.mats, "(n, n), ") + `(n, n)
  real ` + strings.Join(g.sums, ", ")
}

// subscript yields an in-bounds index expression for induction var iv
// ranging over [2, n-1].
func (g *progGen) subscript(iv string) string {
	switch g.rng.Intn(4) {
	case 0:
		return iv
	case 1:
		return iv + " - 1"
	case 2:
		return iv + " + 1"
	default:
		return fmt.Sprintf("%d", 1+g.rng.Intn(3))
	}
}

// valueExpr yields a RHS reading from the arrays.
func (g *progGen) valueExpr(iv string) string {
	terms := []string{}
	for k := 0; k < 1+g.rng.Intn(2); k++ {
		switch g.rng.Intn(3) {
		case 0:
			terms = append(terms, fmt.Sprintf("%s(%s)",
				g.arrays[g.rng.Intn(len(g.arrays))], g.subscript(iv)))
		case 1:
			terms = append(terms, fmt.Sprintf("%s(%s, %s)",
				g.mats[g.rng.Intn(len(g.mats))], g.subscript(iv), g.subscript(iv)))
		default:
			terms = append(terms, fmt.Sprintf("%d", 1+g.rng.Intn(5)))
		}
	}
	return strings.Join(terms, " + ")
}

// loop yields one random top-level loop.
func (g *progGen) loop() string {
	g.nextID++
	iv := fmt.Sprintf("i%d", g.nextID)
	guard := ""
	if g.rng.Bernoulli(0.4) {
		op := "!="
		if g.rng.Bernoulli(0.5) {
			op = "=="
		}
		guard = fmt.Sprintf(" where (mask(%s) %s 0)", iv, op)
	}
	var body string
	switch g.rng.Intn(4) {
	case 0: // 1-D update
		body = fmt.Sprintf("    %s(%s) = %s\n",
			g.arrays[g.rng.Intn(len(g.arrays))], iv, g.valueExpr(iv))
	case 1: // column update of a matrix
		g.nextID++
		jv := fmt.Sprintf("i%d", g.nextID)
		body = fmt.Sprintf("    do %s = 2, n - 1\n      %s(%s, %s) = %s\n    end do\n",
			jv, g.mats[g.rng.Intn(len(g.mats))], jv, iv, g.valueExpr(jv))
	case 2: // reduction
		body = fmt.Sprintf("    %s = %s + %s\n",
			g.sums[g.rng.Intn(len(g.sums))], g.sums[g.rng.Intn(len(g.sums))], g.valueExpr(iv))
		// Ensure a well-formed self-update (s = s + e).
		s := g.sums[g.rng.Intn(len(g.sums))]
		body = fmt.Sprintf("    %s = %s + %s\n", s, s, g.valueExpr(iv))
	default: // conditional update
		body = fmt.Sprintf("    if (%s > 3) then\n      %s(%s) = 1\n    else\n      %s(%s) = 2\n    end if\n",
			iv, g.arrays[g.rng.Intn(len(g.arrays))], iv,
			g.arrays[g.rng.Intn(len(g.arrays))], iv)
	}
	return fmt.Sprintf("  do %s = 2, n - 1%s\n%s  end do\n", iv, guard, body)
}

// phasePair yields a masked producer updating one matrix column per
// iteration followed by a consumer reading the matrix — the shape the
// split transformation acts on (Figures 1–2).
func (g *progGen) phasePair() string {
	mat := g.mats[g.rng.Intn(len(g.mats))]
	dst := g.arrays[g.rng.Intn(len(g.arrays))]
	g.nextID++
	cv := fmt.Sprintf("i%d", g.nextID)
	g.nextID++
	rv := fmt.Sprintf("i%d", g.nextID)
	g.nextID++
	kv := fmt.Sprintf("i%d", g.nextID)
	op := "!="
	if g.rng.Bernoulli(0.5) {
		op = "=="
	}
	producer := fmt.Sprintf(
		"  do %s = 2, n - 1 where (mask(%s) %s 0)\n    do %s = 2, n - 1\n      %s(%s, %s) = %s\n    end do\n  end do\n",
		cv, cv, op, rv, mat, rv, cv, g.valueExpr(rv))
	consumer := fmt.Sprintf(
		"  do %s = 2, n - 1\n    %s(%s) = %s(2, %s) + %s(%s, %s)\n  end do\n",
		kv, dst, kv, mat, kv, mat, kv, kv)
	return producer + consumer
}

func (g *progGen) program(loops int) string {
	var b strings.Builder
	b.WriteString("program fuzz\n")
	b.WriteString(g.decls())
	b.WriteString("\n")
	// At least one split-friendly producer/consumer pair, then filler.
	b.WriteString(g.phasePair())
	for i := 0; i < loops; i++ {
		if g.rng.Bernoulli(0.35) {
			b.WriteString(g.phasePair())
		} else {
			b.WriteString(g.loop())
		}
	}
	b.WriteString("end\n")
	return b.String()
}

func TestFuzzEquivalence(t *testing.T) {
	const trials = 60
	transforms := 0
	for trial := 0; trial < trials; trial++ {
		rng := stats.NewRNG(uint64(trial) * 7919)
		gen := newProgGen(rng)
		src := gen.program(2 + rng.Intn(3))

		if _, err := source.Parse(src); err != nil {
			t.Fatalf("trial %d: generated invalid program: %v\n%s", trial, err, src)
		}
		// Observed variables: everything the original program declares.
		arrays := append(append([]string{}, gen.arrays...), gen.mats...)
		arrays = append(arrays, "mask")
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("trial %d: panic: %v\n%s", trial, r, src)
				}
			}()
			out := checkEquivalent(t, src, 9, uint64(trial), DefaultOptions(), arrays, gen.sums)
			transforms += len(out.Report)
		}()
		if t.Failed() {
			t.Fatalf("trial %d failed; program:\n%s", trial, src)
		}
	}
	// The fuzz must actually exercise the transformations, not just
	// pass programs through.
	if transforms < trials/3 {
		t.Fatalf("only %d transformations across %d trials; fuzz too tame", transforms, trials)
	}
}

func TestFuzzWithFusion(t *testing.T) {
	opts := DefaultOptions()
	opts.EnableFusion = true
	for trial := 0; trial < 30; trial++ {
		rng := stats.NewRNG(uint64(trial)*104729 + 5)
		gen := newProgGen(rng)
		src := gen.program(3)
		arrays := append(append([]string{}, gen.arrays...), gen.mats...)
		checkEquivalent(t, src, 8, uint64(trial), opts, arrays, gen.sums)
		if t.Failed() {
			t.Fatalf("trial %d failed; program:\n%s", trial, src)
		}
	}
}

func TestFuzzGraphsExecute(t *testing.T) {
	// Tier 2: the compiled dataflow graphs of random programs must
	// validate and execute to completion on the simulated machine.
	for trial := 0; trial < 12; trial++ {
		rng := stats.NewRNG(uint64(trial)*31337 + 11)
		gen := newProgGen(rng)
		srcText := gen.program(2 + rng.Intn(2))
		out := compileSrc(t, srcText, DefaultOptions())
		if err := out.Graph.Validate(); err != nil {
			t.Fatalf("trial %d: invalid graph: %v", trial, err)
		}
		bind := func(string) rts.OpSpec {
			spec := rts.OpSpec{Op: sched.Op{
				N: 256, Bytes: 16,
				Time: func(int) float64 { return 1 },
				Hint: func(int) float64 { return 1 },
			}}
			spec.SampleStats(16)
			return spec
		}
		r, err := rts.ExecuteDAG(machine.DefaultConfig(32), out.Graph, bind, rts.RunOpts{Processors: 32})
		if err != nil {
			t.Fatalf("trial %d: execution: %v\ngraph:\n%s", trial, err, out.Graph.Encode())
		}
		if r.Makespan <= 0 {
			t.Fatalf("trial %d: empty result", trial)
		}
	}
}
