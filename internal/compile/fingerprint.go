package compile

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"sort"
)

// Fingerprint is the content address of one compilation: SHA-256 over
// the source text and every option that can change the compiler's
// output, canonically encoded. Equal fingerprints mean Compile would
// produce the same graph, which is what makes a compile-once/run-many
// graph cache sound: the serve daemon keys its cache on this, so
// resubmitting a program (even under a different job name) reuses the
// compiled graph, while flipping any transformation knob misses.
//
// One caveat is deliberate: a custom Split.Weight function contributes
// only its presence (it is code, not data). Callers installing custom
// weight functions must not share a cache across different ones; the
// serve daemon never sets one.
func Fingerprint(src string, opts Options) string {
	h := sha256.New()
	writeStr := func(s string) {
		var n [8]byte
		binary.LittleEndian.PutUint64(n[:], uint64(len(s)))
		h.Write(n[:])
		h.Write([]byte(s))
	}
	writeStr("orchestra/compile/v1")
	writeStr(src)
	writeStr(fmt.Sprintf("fusion=%t split=%t pipeline=%t depth=%d",
		opts.EnableFusion, opts.EnableSplit, opts.EnablePipeline, opts.PipelineDepth))
	writeStr(fmt.Sprintf("mrl=%t rt=%d wt=%g weightfn=%t",
		opts.Split.MoveReadLinked, opts.Split.ReplicationThreshold,
		opts.Split.WeightThreshold, opts.Split.Weight != nil))
	renames := make([]string, 0, len(opts.Split.BlockRenames))
	for k, v := range opts.Split.BlockRenames {
		renames = append(renames, k+"\x00"+v)
	}
	sort.Strings(renames)
	for _, r := range renames {
		writeStr(r)
	}
	return hex.EncodeToString(h.Sum(nil))
}

// GraphFingerprint is the content address of a raw Delirium graph
// submission (no compilation involved): the same cache can hold both
// compiled programs and directly submitted graphs without the two key
// spaces colliding.
func GraphFingerprint(text string) string {
	h := sha256.New()
	h.Write([]byte("orchestra/graph/v1\x00"))
	h.Write([]byte(text))
	return hex.EncodeToString(h.Sum(nil))
}
