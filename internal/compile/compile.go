// Package compile is the top of the compiler half of the system: it
// takes a parsed mini-Fortran program through the analysis pipeline,
// applies the split transformation between interfering top-level
// computations and the pipelining transformation to loops, and emits
// the two outputs the paper's compiler produces (§3.4): a transformed
// program (the FORTRAN-with-library-calls output) and a coarse-grained
// dataflow graph in the Delirium coordination language.
package compile

import (
	"fmt"
	"strings"

	"orchestra/internal/analysis"
	"orchestra/internal/delirium"
	"orchestra/internal/descriptor"
	"orchestra/internal/source"
	"orchestra/internal/split"
	"orchestra/internal/symbolic"
	"orchestra/internal/xform"
)

// Options controls the transformations.
type Options struct {
	// EnableFusion fuses legally fusable adjacent top-level loops
	// before splitting (the paper combines split with loop fusion and
	// interchange). Off by default: fusion can merge computations that
	// split would otherwise overlap.
	EnableFusion bool
	// EnableSplit applies split between interfering top-level
	// computations.
	EnableSplit bool
	// EnablePipeline applies the pipelining form of split to top-level
	// loops whose iterations are serialized by a carried dependence.
	EnablePipeline bool
	// PipelineDepth is the pipelining depth (default 1).
	PipelineDepth int
	// Split tunes the split transformation itself.
	Split split.Options
}

// DefaultOptions enables everything.
func DefaultOptions() Options {
	return Options{
		EnableSplit:    true,
		EnablePipeline: true,
		PipelineDepth:  1,
		Split:          split.DefaultOptions(),
	}
}

// Unit is one schedulable computation of the output program.
type Unit struct {
	Name  string
	Stmts []source.Stmt
	Desc  descriptor.Descriptor
	// Role records provenance: "", "CI", "CD", "CM", "AI", "AD", "AM".
	Role string
	// Pipelined is set on the AD part of a pipelined loop: it carries
	// a dependence on its own previous activation.
	Pipelined bool
	// pipelineFrom names the computation this CD unit was split
	// against: its iterations correspond pointwise to that producer's,
	// so the dataflow edge between them may be pipelined (the paper's
	// third transformation: "pipeline iterations of A with
	// corresponding iterations of BD").
	pipelineFrom string
	// Tasks is the unit's symbolic trip count when it is (or derives
	// from) a loop, e.g. "n" or "n - 2"; empty when unknown.
	Tasks string
	// emit, when non-nil, is what the unit contributes to the
	// transformed source program instead of Stmts (the AI/AD/AM parts
	// of a pipelined loop are per-iteration operators in the graph but
	// must be re-wrapped into their loop in the source output).
	emit []source.Stmt
}

// Emit reports what the unit contributes to the transformed source
// program: its emit override when set (the AI part of a pipelined loop
// re-wraps the divided body into the original loop statement, while the
// AD/AM parts contribute nothing), else its statements. Runtime
// binders use the AI unit's emitted loop to recover the iteration
// space shared by all three parts of a pipelined loop.
func (u Unit) Emit() []source.Stmt {
	if u.emit != nil {
		return u.emit
	}
	return u.Stmts
}

// Output is the compilation result.
type Output struct {
	Program *source.Program
	Units   []Unit
	Graph   *delirium.Graph
	// Report logs the transformations applied, for humans.
	Report []string
}

// Compile runs the full pipeline over a program.
func Compile(p *source.Program, opts Options) (*Output, error) {
	if opts.PipelineDepth < 1 {
		opts.PipelineDepth = 1
	}
	out := &Output{}
	r := analysis.Analyze(p)
	if opts.EnableFusion {
		fused, n := xform.FuseAdjacent(r, p.Body)
		if n > 0 {
			out.Report = append(out.Report, fmt.Sprintf("fused %d adjacent loop pair(s)", n))
			// The fused program needs fresh analysis records.
			reparsed, err := source.Parse(source.Format(&source.Program{
				Name: p.Name, Decls: p.Decls, Body: fused}))
			if err != nil {
				return nil, fmt.Errorf("compile: refused to reparse after fusion: %v", err)
			}
			p = reparsed
			r = analysis.Analyze(p)
		}
	}
	prims := split.Decompose(r, p.Body)
	var newDecls []*source.Decl

	// Name the primitive computations C1..Cn (loops get their
	// induction variable in the name for readability) and annotate
	// loops with their symbolic trip counts — the §3.4 size annotations
	// the Delirium compiler turns into communication-cost code.
	units := make([]Unit, len(prims))
	for i, pr := range prims {
		name := fmt.Sprintf("c%d", i+1)
		tasks := ""
		if pr.IsLoop {
			name = fmt.Sprintf("c%d_%s", i+1, pr.Loop().Var)
			tasks = tripCount(r, pr.Loop())
		}
		units[i] = Unit{Name: name, Stmts: pr.Stmts, Desc: pr.Desc, Tasks: tasks}
	}

	// Split each computation against its interfering predecessor.
	if opts.EnableSplit {
		var result []Unit
		for i := 0; i < len(units); i++ {
			u := units[i]
			if len(result) == 0 {
				result = append(result, u)
				continue
			}
			prev := result[len(result)-1]
			if prev.Role == "CM" && len(result) >= 3 {
				// Compare against the dependent part of the previous
				// split rather than its merge.
				prev = result[len(result)-2]
			}
			if !descriptor.Interferes(prev.Desc, u.Desc, nil) {
				result = append(result, u)
				continue
			}
			res := split.Split(r, u.Stmts, prev.Desc, r.SSA.Ctx[u.Stmts[0]], opts.Split)
			if !res.Applied() {
				result = append(result, u)
				continue
			}
			newDecls = append(newDecls, res.NewDecls...)
			out.Report = append(out.Report, fmt.Sprintf(
				"split %s against %s: %d loop split(s), categories %v",
				u.Name, prev.Name, res.LoopSplits, res.Categories))
			result = append(result,
				Unit{Name: u.Name + "_i", Stmts: res.Independent, Desc: res.IndependentDesc,
					Role: "CI", Tasks: u.Tasks},
				Unit{Name: u.Name + "_d", Stmts: res.Dependent, Desc: res.DependentDesc,
					Role: "CD", Tasks: u.Tasks, pipelineFrom: baseName(prev.Name)})
			if len(res.Merge) > 0 {
				result = append(result, Unit{Name: u.Name + "_m", Stmts: res.Merge,
					Desc: mergeDesc(r, res.Merge), Role: "CM"})
			}
		}
		units = result
	}

	// Pipeline the loops that remain whole.
	if opts.EnablePipeline {
		var result []Unit
		for _, u := range units {
			loop, ok := singleLoop(u)
			if !ok || u.Role != "" {
				result = append(result, u)
				continue
			}
			pres, ok := split.Pipeline(r, loop, opts.PipelineDepth, opts.Split)
			if !ok {
				result = append(result, u)
				continue
			}
			newDecls = append(newDecls, pres.NewDecls...)
			out.Report = append(out.Report, fmt.Sprintf(
				"pipeline %s at depth %d: privatized %v, %d inner loop split(s)",
				u.Name, pres.Depth, pres.Privatized, pres.LoopSplits))
			// The pipelined loop is re-emitted with its body divided
			// into AI / AD / AM, wrapped back into the loop for the
			// transformed source; the graph records the carried
			// dependence on AD. The loop statement itself is attached
			// to the AI unit's source contribution.
			body := append(append(append([]source.Stmt{}, pres.AI...), pres.AD...), pres.AM...)
			newLoop := source.CloneStmt(loop).(*source.Do)
			newLoop.Body = body
			result = append(result,
				Unit{Name: u.Name + "_ai", Stmts: pres.AI, Desc: u.Desc, Role: "AI",
					Tasks: u.Tasks, emit: []source.Stmt{newLoop}},
				Unit{Name: u.Name + "_ad", Stmts: pres.AD, Desc: u.Desc, Role: "AD",
					Tasks: u.Tasks, Pipelined: true, emit: []source.Stmt{}},
				Unit{Name: u.Name + "_am", Stmts: append([]source.Stmt{}, pres.AM...),
					Desc: u.Desc, Role: "AM", Tasks: u.Tasks, emit: []source.Stmt{}})
		}
		units = result
	}
	out.Units = units

	// Transformed program: units in order, plus the declarations the
	// transformations introduced.
	tp := &source.Program{Name: p.Name}
	tp.Decls = append(tp.Decls, p.Decls...)
	tp.Decls = append(tp.Decls, newDecls...)
	for _, u := range units {
		if u.emit != nil {
			tp.Body = append(tp.Body, u.emit...)
			continue
		}
		tp.Body = append(tp.Body, u.Stmts...)
	}
	out.Program = tp

	// Dataflow graph: one node per unit; an edge wherever an earlier
	// unit's writes may reach a later unit (flow interference), which
	// both orders them and annotates the communication.
	g := delirium.NewGraph(p.Name)
	for _, u := range units {
		node := &delirium.Node{Name: u.Name, Kind: delirium.Par, Tasks: u.Tasks, Comment: u.Role}
		if err := g.AddNode(node); err != nil {
			return nil, err
		}
	}
	for i := range units {
		for j := i + 1; j < len(units); j++ {
			if sameSplitGroup(units[i], units[j]) &&
				((units[i].Role == "CI" && units[j].Role == "CD") ||
					(units[i].Role == "AI" && units[j].Role == "AD")) {
				// The independent and dependent halves of a split run
				// concurrently by construction; their ordering is
				// resolved through the merge part.
				continue
			}
			flow := descriptor.FlowInterferes(units[i].Desc, units[j].Desc, nil)
			anti := !flow && descriptor.Interferes(units[i].Desc, units[j].Desc, nil)
			if flow || anti {
				pipelined := units[j].Pipelined && sameSplitGroup(units[i], units[j])
				// The third transformation: a CD unit consumes its
				// producer's per-iteration output incrementally. The
				// split records only that the units interfere; the edge
				// may be pipelined only when the consumer's accesses are
				// provably pointwise against the producer's writes —
				// e.g. a consumer that reads the producer's whole output
				// vector in every iteration must wait for all of it.
				chain := false
				if units[j].pipelineFrom != "" && units[j].pipelineFrom == baseName(units[i].Name) &&
					pointwisePipelined(units[i], units[j]) {
					pipelined = true
					// The stronger proof — every consumer access at exactly
					// the current index, no backward offsets — additionally
					// licenses cache chaining (the runtime may run consumer
					// task i immediately after producer task i).
					chain = pointwiseChain(units[i], units[j])
				}
				g.AddEdge(&delirium.Edge{
					From: units[i].Name, To: units[j].Name,
					Bytes: int64(sharedBytes(units[i].Desc, units[j].Desc)), PerTask: true,
					Pipelined: pipelined, Chain: chain,
				})
			}
		}
		if units[i].Pipelined {
			g.AddEdge(&delirium.Edge{From: units[i].Name, To: units[i].Name, Carried: true})
		}
	}
	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("compile: generated graph invalid: %v", err)
	}
	out.Graph = g
	return out, nil
}

// pointwisePipelined verifies the claim a pipelined edge makes: that
// task t of the consumer needs data only from tasks <= t of the
// producer, so the runtime may dispatch the consumer against a partial
// prefix of the producer's output. The check is structural and
// conservative. Both units must be single loops over identical
// iteration spaces; the producer must write no scalars; every producer
// write to an array must index one fixed dimension with exactly the
// producer's induction variable; and every consumer access to such an
// array must index that same dimension with the consumer's induction
// variable or that variable minus a non-negative constant. Anything
// else — a whole-array read under an inner loop, a forward offset, a
// computed subscript, a subroutine call — means prefix delivery could
// hand the consumer elements the producer has not written yet, so the
// edge stays an ordinary fully-ordered one.
func pointwisePipelined(prod, cons Unit) bool {
	return pointwiseAccess(prod, cons, prefixSafeIndex)
}

// pointwiseChain is pointwisePipelined's strict form: every consumer
// access to a produced array must sit at exactly the current index
// (iv, not iv - c), so consumer task i depends on producer task i
// alone. That is the proof delirium.Edge.Chain carries: the runtime
// may execute consumer chunk i immediately after producer chunk i on
// the same worker, while the produced elements are cache-resident. A
// backward offset is still prefix-safe — the edge pipelines — but
// chunk i would need elements of earlier chunks, which may already
// have left cache and, at chunk granularity, may not even be complete,
// so such edges stay on the prefix gate.
func pointwiseChain(prod, cons Unit) bool {
	return pointwiseAccess(prod, cons, exactIndex)
}

// pointwiseAccess is the shared walker behind pointwisePipelined and
// pointwiseChain; idxOK decides which consumer subscript forms are
// acceptable against the producer's induction dimension.
func pointwiseAccess(prod, cons Unit, idxOK func(source.Expr, string) bool) bool {
	pl, okp := singleLoop(prod)
	cl, okc := singleLoop(cons)
	if !okp || !okc || !sameIterSpace(pl, cl) {
		return false
	}
	// Producer side: map each written array to the dimension indexed by
	// the loop variable in all of its writes.
	prodDim := map[string]int{}
	safe := true
	source.WalkStmts(pl.Body, func(s source.Stmt) {
		switch s := s.(type) {
		case *source.Assign:
			switch lhs := s.LHS.(type) {
			case *source.Ident:
				// A scalar has no prefix: any consumer of it needs the
				// final value.
				safe = false
			case *source.ArrayRef:
				d := -1
				for k, ix := range lhs.Index {
					if id, ok := ix.(*source.Ident); ok && id.Name == pl.Var {
						d = k
						break
					}
				}
				if prev, seen := prodDim[lhs.Name]; d < 0 || (seen && prev != d) {
					safe = false
				} else {
					prodDim[lhs.Name] = d
				}
			}
		case *source.Do:
			if s.Var == pl.Var {
				safe = false // rebinding makes the subscript match meaningless
			}
		case *source.CallStmt:
			safe = false
		}
	})
	if !safe || len(prodDim) == 0 {
		return false
	}
	// Consumer side: every reference to a produced array, anywhere an
	// expression can appear (assignments, guards, conditions, inner
	// loop bounds), must stay at or behind the current iteration.
	check := func(e source.Expr) {
		source.WalkExpr(e, func(x source.Expr) {
			ar, ok := x.(*source.ArrayRef)
			if !ok {
				return
			}
			d, tracked := prodDim[ar.Name]
			if !tracked {
				return
			}
			if d >= len(ar.Index) || !idxOK(ar.Index[d], cl.Var) {
				safe = false
			}
		})
	}
	if cl.Where != nil {
		check(cl.Where)
	}
	source.WalkStmts(cl.Body, func(s source.Stmt) {
		switch s := s.(type) {
		case *source.Assign:
			check(s.LHS)
			check(s.RHS)
		case *source.Do:
			if s.Var == cl.Var {
				safe = false
			}
			for _, r := range s.Ranges {
				check(r.Lo)
				check(r.Hi)
				if r.Step != nil {
					check(r.Step)
				}
			}
			if s.Where != nil {
				check(s.Where)
			}
		case *source.If:
			check(s.Cond)
		case *source.CallStmt:
			safe = false
		}
	})
	return safe
}

// prefixSafeIndex reports whether a subscript expression is iv or
// iv - c for a non-negative integer constant c: the accessed element is
// then produced by a task at or before the same position.
func prefixSafeIndex(e source.Expr, iv string) bool {
	if id, ok := e.(*source.Ident); ok {
		return id.Name == iv
	}
	b, ok := e.(*source.Bin)
	if !ok || b.Op != "-" {
		return false
	}
	id, ok := b.L.(*source.Ident)
	if !ok || id.Name != iv {
		return false
	}
	n, ok := b.R.(*source.Num)
	return ok && !n.IsReal && n.Int >= 0
}

// exactIndex reports whether a subscript is exactly the induction
// variable: the strict form pointwiseChain requires.
func exactIndex(e source.Expr, iv string) bool {
	id, ok := e.(*source.Ident)
	return ok && id.Name == iv
}

// sameIterSpace reports whether two loops have structurally identical
// iteration spaces, so task t of one corresponds to task t of the
// other.
func sameIterSpace(a, b *source.Do) bool {
	if len(a.Ranges) != len(b.Ranges) {
		return false
	}
	for i := range a.Ranges {
		ra, rb := a.Ranges[i], b.Ranges[i]
		if !boundEqual(ra.Lo, rb.Lo) || !boundEqual(ra.Hi, rb.Hi) {
			return false
		}
		sa, sb := ra.Step, rb.Step
		if (sa == nil) != (sb == nil) || (sa != nil && !boundEqual(sa, sb)) {
			return false
		}
	}
	return true
}

// boundEqual is structural equality over the scalar expressions loop
// bounds are built from; any node kind it does not recognize compares
// unequal (conservative).
func boundEqual(a, b source.Expr) bool {
	switch a := a.(type) {
	case *source.Num:
		bn, ok := b.(*source.Num)
		if !ok || a.IsReal != bn.IsReal {
			return false
		}
		if a.IsReal {
			return a.Text == bn.Text
		}
		return a.Int == bn.Int
	case *source.Ident:
		bi, ok := b.(*source.Ident)
		return ok && a.Name == bi.Name
	case *source.Bin:
		bb, ok := b.(*source.Bin)
		return ok && a.Op == bb.Op && boundEqual(a.L, bb.L) && boundEqual(a.R, bb.R)
	case *source.Un:
		bu, ok := b.(*source.Un)
		return ok && a.Op == bu.Op && boundEqual(a.X, bu.X)
	}
	return false
}

// singleLoop reports whether a unit is exactly one do-loop.
func singleLoop(u Unit) (*source.Do, bool) {
	if len(u.Stmts) != 1 {
		return nil, false
	}
	d, ok := u.Stmts[0].(*source.Do)
	return d, ok
}

// baseName strips a split-part suffix (_i/_d/_m/_ai/_ad/_am).
func baseName(n string) string {
	if i := strings.LastIndex(n, "_"); i > 0 {
		switch n[i+1:] {
		case "i", "d", "m", "ai", "ad", "am":
			return n[:i]
		}
	}
	return n
}

// sameSplitGroup reports whether two units came from splitting the same
// original computation (cN_i / cN_d / cN_m or _ai/_ad/_am).
func sameSplitGroup(a, b Unit) bool {
	return baseName(a.Name) == baseName(b.Name) && baseName(a.Name) != a.Name
}

// sharedBytes estimates the per-task data volume flowing between two
// units: 8 bytes per shared block (a coarse annotation; the Delirium
// compiler's runtime code refines it with runtime parameters).
func sharedBytes(a, b descriptor.Descriptor) int {
	shared := 0
	bBlocks := b.Blocks()
	for _, w := range a.Writes {
		if bBlocks[w.Block] {
			shared++
		}
	}
	if shared == 0 {
		shared = 1
	}
	return 8 * shared
}

// tripCount renders a loop's symbolic trip count in source terms, or
// "" when it involves synthetic names or strides.
func tripCount(r *analysis.Result, loop *source.Do) string {
	env := r.SSA.InsideLoop[loop]
	def := r.SSA.Defs[env[loop.Var]]
	if def == nil || len(def.Ranges) == 0 {
		return ""
	}
	total := symbolic.Const(0)
	for _, rg := range def.Ranges {
		if rg.Skip != 1 {
			return ""
		}
		total = total.Add(rg.End.Sub(rg.Start).AddConst(1))
	}
	// Render over program variable names.
	out := ""
	for _, nm := range total.Names() {
		d := r.SSA.Defs[nm]
		if d == nil || strings.HasPrefix(d.Var, "$") {
			return ""
		}
		coef := total.Coef(nm)
		term := d.Var
		if coef != 1 && coef != -1 {
			term = fmt.Sprintf("%d*%s", abs64c(coef), d.Var)
		}
		// Rendered without spaces: the annotation must survive the
		// whitespace-delimited graph encoding.
		switch {
		case out == "" && coef < 0:
			out = "-" + term
		case out == "":
			out = term
		case coef < 0:
			out += "-" + term
		default:
			out += "+" + term
		}
	}
	c := total.ConstPart()
	switch {
	case out == "":
		out = fmt.Sprintf("%d", c)
	case c > 0:
		out += fmt.Sprintf("+%d", c)
	case c < 0:
		out += fmt.Sprintf("-%d", c*-1)
	}
	return out
}

func abs64c(x int64) int64 {
	if x < 0 {
		return -x
	}
	return x
}

// mergeDesc conservatively describes generated merge statements.
func mergeDesc(r *analysis.Result, stmts []source.Stmt) descriptor.Descriptor {
	var d descriptor.Descriptor
	source.WalkStmts(stmts, func(s source.Stmt) {
		if as, ok := s.(*source.Assign); ok {
			switch lhs := as.LHS.(type) {
			case *source.Ident:
				d.AddWrite(descriptor.ScalarTriple(symbolic.Name(lhs.Name)))
			case *source.ArrayRef:
				d.AddWrite(descriptor.ScalarTriple(symbolic.Name(lhs.Name)))
			}
			source.WalkExpr(as.RHS, func(x source.Expr) {
				switch x := x.(type) {
				case *source.Ident:
					d.AddRead(descriptor.ScalarTriple(symbolic.Name(x.Name)))
				case *source.ArrayRef:
					d.AddRead(descriptor.ScalarTriple(symbolic.Name(x.Name)))
				}
			})
		}
	})
	return d
}
