package compile

import (
	"strings"
	"testing"

	"orchestra/internal/delirium"
	"orchestra/internal/rts"
	"orchestra/internal/sched"
)

func unrollSpec(name string, n int) rts.OpSpec {
	return rts.OpSpec{Op: sched.Op{Name: name, N: n, Time: func(int) float64 { return 1 }}, Mu: 1}
}

// unrollGraph is the fork-join shape: a → x (exp) → out.
func unrollGraph(t *testing.T) *delirium.Graph {
	t.Helper()
	g := delirium.NewGraph("unroll")
	nodes := []*delirium.Node{
		{Name: "a", Kind: delirium.Par, Tasks: "4"},
		{Name: "x", Kind: delirium.Exp, Tasks: "1", Rule: "fj"},
		{Name: "out", Kind: delirium.Par, Tasks: "4"},
	}
	for _, nd := range nodes {
		if err := g.AddNode(nd); err != nil {
			t.Fatal(err)
		}
	}
	g.AddEdge(&delirium.Edge{From: "a", To: "x", Bytes: 8, PerTask: true})
	g.AddEdge(&delirium.Edge{From: "x", To: "out", Bytes: 8, PerTask: true})
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	return g
}

// TestUnrollForkJoin: a one-level expansion must flatten to a graph
// with the sub-operators materialized, no expandable nodes left, the
// expanded operator reduced to its single-task join (Expand stripped),
// and the parent's in-edges anchored at the sub-graph's sources so
// ordering is preserved.
func TestUnrollForkJoin(t *testing.T) {
	g := unrollGraph(t)
	bind := func(name string) rts.OpSpec {
		if name != "x" {
			return unrollSpec(name, 4)
		}
		spec := unrollSpec(name, 1)
		spec.Expand = func(depth int) (*rts.Expansion, error) {
			sub := delirium.NewGraph("x")
			sub.AddNode(&delirium.Node{Name: "x/0", Kind: delirium.Par, Tasks: "8"})
			sub.AddNode(&delirium.Node{Name: "x/1", Kind: delirium.Par, Tasks: "8"})
			return &rts.Expansion{Graph: sub, Bind: func(nm string) rts.OpSpec { return unrollSpec(nm, 8) }}, nil
		}
		return spec
	}
	flat, fbind, err := Unroll(g, bind)
	if err != nil {
		t.Fatal(err)
	}
	if flat.HasExpansions() {
		t.Fatal("unrolled graph still has expandable nodes")
	}
	if err := flat.Validate(); err != nil {
		t.Fatalf("unrolled graph does not validate: %v", err)
	}
	for _, name := range []string{"a", "x", "x/0", "x/1", "out"} {
		if flat.Node(name) == nil {
			t.Fatalf("unrolled graph lost operator %q", name)
		}
	}
	spec := fbind("x")
	if spec.Expand != nil {
		t.Fatal("flat binder kept the Expand rule on the join")
	}
	if spec.Op.N != 1 {
		t.Fatalf("join task count = %d, want 1", spec.Op.N)
	}
	// The parent's in-edge must be anchored at the sub-sources: each
	// sub-operator is ordered after a, and the join after both.
	for _, sub := range []string{"x/0", "x/1"} {
		if !hasEdge(flat, "a", sub) {
			t.Fatalf("no edge a → %s: parent in-edge not anchored at sub-source", sub)
		}
		if !hasEdge(flat, sub, "x") {
			t.Fatalf("no edge %s → x: join not ordered behind sub-sink", sub)
		}
	}
}

// TestUnrollBaseCase: a nil expansion degenerates the operator to just
// its join, with the original edges intact.
func TestUnrollBaseCase(t *testing.T) {
	g := unrollGraph(t)
	bind := func(name string) rts.OpSpec {
		if name != "x" {
			return unrollSpec(name, 4)
		}
		spec := unrollSpec(name, 1)
		spec.Expand = func(depth int) (*rts.Expansion, error) { return nil, nil }
		return spec
	}
	flat, fbind, err := Unroll(g, bind)
	if err != nil {
		t.Fatal(err)
	}
	if flat.HasExpansions() {
		t.Fatal("base-case unroll left expandable nodes")
	}
	if len(flat.Nodes) != 3 {
		t.Fatalf("base-case unroll has %d nodes, want 3", len(flat.Nodes))
	}
	if !hasEdge(flat, "a", "x") || !hasEdge(flat, "x", "out") {
		t.Fatal("base-case unroll lost the original edges")
	}
	if spec := fbind("x"); spec.Op.N != 1 || spec.Expand != nil {
		t.Fatalf("base-case join spec = {N:%d Expand:%v}, want join form", spec.Op.N, spec.Expand != nil)
	}
}

// TestUnrollDepthBound: a rule with no base case must hit the shared
// depth bound instead of recursing forever.
func TestUnrollDepthBound(t *testing.T) {
	g := unrollGraph(t)
	var rec func(name string) rts.OpSpec
	rec = func(name string) rts.OpSpec {
		spec := unrollSpec(name, 1)
		spec.Expand = func(depth int) (*rts.Expansion, error) {
			sub := delirium.NewGraph(name)
			sub.AddNode(&delirium.Node{Name: name + "/x", Kind: delirium.Exp, Tasks: "1", Rule: "rec"})
			return &rts.Expansion{Graph: sub, Bind: rec}, nil
		}
		return spec
	}
	bind := func(name string) rts.OpSpec {
		if name == "x" {
			return rec(name)
		}
		return unrollSpec(name, 4)
	}
	_, _, err := Unroll(g, bind)
	if err == nil || !strings.Contains(err.Error(), "depth bound") {
		t.Fatalf("error = %v, want one mentioning the depth bound", err)
	}
}

// TestUnrollRedeclaredOperator: an expansion colliding with an
// existing operator name must fail the unroll.
func TestUnrollRedeclaredOperator(t *testing.T) {
	g := unrollGraph(t)
	bind := func(name string) rts.OpSpec {
		if name != "x" {
			return unrollSpec(name, 4)
		}
		spec := unrollSpec(name, 1)
		spec.Expand = func(depth int) (*rts.Expansion, error) {
			sub := delirium.NewGraph("x")
			sub.AddNode(&delirium.Node{Name: "a", Kind: delirium.Par, Tasks: "4"})
			return &rts.Expansion{Graph: sub, Bind: func(nm string) rts.OpSpec { return unrollSpec(nm, 4) }}, nil
		}
		return spec
	}
	_, _, err := Unroll(g, bind)
	if err == nil || !strings.Contains(err.Error(), "redeclares") {
		t.Fatalf("error = %v, want a redeclaration error", err)
	}
}

func hasEdge(g *delirium.Graph, from, to string) bool {
	for _, e := range g.Edges {
		if e.From == from && e.To == to {
			return true
		}
	}
	return false
}
