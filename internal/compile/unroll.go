package compile

import (
	"fmt"

	"orchestra/internal/delirium"
	"orchestra/internal/rts"
)

// This file is the compiler's side of nested dataflow: static
// unrolling. A graph whose Exp nodes carry data-independent expansion
// rules can be expanded ahead of time into the flat graph the runtime
// would have materialized piecewise — every Exp node is replaced by
// its (recursively unrolled) sub-graph followed by the node itself as
// a one-task join. The unrolled graph admits only schedules the nested
// graph also admits, so a run of the flat graph is the reference a
// nested run must match bitwise: orchbench's nested experiment and the
// fuzzer's nested rung both check against it.
//
// Unrolling calls each ExpandFunc eagerly, before any operator has
// executed. Rules that inspect predecessor data at runtime (adaptive
// refinement) are therefore outside its contract; callers that need a
// flat reference for such a workload must construct it from the
// workload's own parameters.

// flatExp records how an expanded operator was flattened: the names of
// its sub-graph's sources and sinks (empty for a base-case expansion),
// used to rewire the parent graph's edges around the splice.
type flatExp struct {
	base    bool
	sources []string
	sinks   []string
}

type unroller struct {
	out   *delirium.Graph
	specs map[string]rts.OpSpec
	exp   map[string]*flatExp
}

// Unroll statically expands every Exp node of g, recursively, and
// returns the flat graph plus a binder for it. The returned binder
// resolves sub-operators through the binders their expansions
// supplied, and resolves each expanded operator itself to its join
// form (rts.JoinSpec) with the Expand rule stripped — the flat graph
// has no expandable nodes left. The same depth bound the runtimes
// enforce (rts.MaxExpandDepth) applies.
func Unroll(g *delirium.Graph, bind rts.Binder) (*delirium.Graph, rts.Binder, error) {
	if err := g.Validate(); err != nil {
		return nil, nil, err
	}
	u := &unroller{
		out:   delirium.NewGraph(g.Name),
		specs: map[string]rts.OpSpec{},
		exp:   map[string]*flatExp{},
	}
	if err := u.flatten(g, bind, 0); err != nil {
		return nil, nil, err
	}
	if err := u.out.Validate(); err != nil {
		return nil, nil, fmt.Errorf("compile: unrolled graph invalid: %w", err)
	}
	specs := u.specs
	return u.out, func(name string) rts.OpSpec { return specs[name] }, nil
}

// flatten adds g2's operators (recursing into expansions) and then
// g2's edges, rewired around the splices, to the output graph.
func (u *unroller) flatten(g2 *delirium.Graph, bind2 rts.Binder, depth int) error {
	order, err := g2.TopoOrder()
	if err != nil {
		return err
	}
	for _, nd := range order {
		spec := bind2(nd.Name)
		if nd.Kind == delirium.Exp && spec.Expand == nil {
			return fmt.Errorf("compile: operator %s is expandable (kind=exp) but its binding has no Expand rule", nd.Name)
		}
		if nd.Kind != delirium.Exp && spec.Expand != nil {
			return fmt.Errorf("compile: binding provides an Expand rule for non-expandable operator %s (kind=%s)", nd.Name, nd.Kind)
		}
		if spec.Expand == nil {
			if err := u.out.AddNode(&delirium.Node{Name: nd.Name, Kind: nd.Kind, Tasks: nd.Tasks, Comment: nd.Comment}); err != nil {
				return err
			}
			u.specs[nd.Name] = spec
			continue
		}
		exp, err := spec.Expand(depth)
		if err != nil {
			return fmt.Errorf("compile: expanding %s: %w", nd.Name, err)
		}
		fe := &flatExp{base: exp == nil}
		if exp != nil {
			if err := rts.ValidateExpansion(nd.Name, depth, exp, func(nm string) bool {
				return u.out.Node(nm) != nil || g2.Node(nm) != nil
			}); err != nil {
				return err
			}
			if err := u.flatten(exp.Graph, exp.Bind, depth+1); err != nil {
				return err
			}
			fe.sources, fe.sinks = boundary(exp.Graph)
		}
		// The operator itself survives as its one-task join, gated on
		// the sub-graph's sinks.
		if err := u.out.AddNode(&delirium.Node{Name: nd.Name, Kind: delirium.Par, Tasks: "1", Comment: nd.Comment}); err != nil {
			return err
		}
		join := rts.JoinSpec(spec)
		join.Expand = nil
		u.specs[nd.Name] = join
		u.exp[nd.Name] = fe
		for _, t := range fe.sinks {
			u.out.AddEdge(&delirium.Edge{From: t, To: nd.Name})
		}
	}
	for _, e := range g2.Edges {
		if e.Carried {
			// A carried self-loop is an annotation on the operator, not
			// a dependence to rewire; an expanded operator's join has no
			// iteration space left to carry it.
			if u.exp[e.From] == nil {
				u.out.AddEdge(&delirium.Edge{From: e.From, To: e.To, Carried: true})
			}
			continue
		}
		// The runtime barrier-converts every edge adjacent to an
		// expandable endpoint; the flat graph encodes the same gating.
		pip := e.Pipelined && u.exp[e.From] == nil && u.exp[e.To] == nil
		for _, t := range u.anchors(e.To) {
			u.out.AddEdge(&delirium.Edge{
				From: e.From, To: t,
				Bytes: e.Bytes, PerTask: e.PerTask,
				Pipelined: pip, Chain: e.Chain && pip,
			})
		}
	}
	return nil
}

// anchors resolves the flat consumers of an edge into name: the node
// itself for ordinary operators and base-case expansions (the join is
// all that remains), or — for a materialized expansion — the sub-
// graph's sources, recursively, since the runtime releases those when
// the operator's predecessors complete. The join needs no direct edge:
// it is ordered behind the predecessors transitively through the
// sub-graph.
func (u *unroller) anchors(name string) []string {
	fe := u.exp[name]
	if fe == nil || fe.base {
		return []string{name}
	}
	var out []string
	for _, s := range fe.sources {
		out = append(out, u.anchors(s)...)
	}
	return out
}

// boundary returns a graph's sources (no non-carried in-edges) and
// sinks (no non-carried out-edges), in declaration order.
func boundary(g *delirium.Graph) (sources, sinks []string) {
	hasIn := map[string]bool{}
	hasOut := map[string]bool{}
	for _, e := range g.Edges {
		if e.Carried {
			continue
		}
		hasOut[e.From] = true
		hasIn[e.To] = true
	}
	for _, n := range g.Nodes {
		if !hasIn[n.Name] {
			sources = append(sources, n.Name)
		}
		if !hasOut[n.Name] {
			sinks = append(sinks, n.Name)
		}
	}
	return sources, sinks
}
