package compile

import (
	"strings"
	"testing"

	"orchestra/internal/delirium"
	"orchestra/internal/source"
)

const figure1 = `
program sample
  integer n
  integer mask(n)
  real result(n), q(n, n), output(n, n), w(n)

  do col = 1, n where (mask(col) != 0)
    do i = 1, n
      result(i) = 0
      do j = 1, n
        result(i) = result(i) + q(j, i) * w(j)
      end do
    end do
    do i = 1, n
      q(i, col) = result(i)
    end do
  end do

  do i = 1, n
    do j = 1, n
      output(j, i) = f(q(j, i))
    end do
  end do
end
`

func compileSrc(t *testing.T, src string, opts Options) *Output {
	t.Helper()
	p, err := source.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	out, err := Compile(p, opts)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return out
}

func TestCompileFigure1Full(t *testing.T) {
	out := compileSrc(t, figure1, DefaultOptions())
	// Loop A pipelines (AI/AD/AM); loop B splits (BI/BD).
	names := map[string]bool{}
	for _, u := range out.Units {
		names[u.Role] = true
	}
	for _, role := range []string{"AI", "AD", "AM", "CI", "CD"} {
		if !names[role] {
			t.Errorf("missing %s unit; report: %v", role, out.Report)
		}
	}
	// The graph validates and has the carried self-edge on AD.
	carried := false
	for _, e := range out.Graph.Edges {
		if e.Carried && e.From == e.To {
			carried = true
		}
	}
	if !carried {
		t.Fatal("no carried dependence recorded for the pipelined loop")
	}
	// The transformed program re-parses.
	text := source.Format(out.Program)
	if _, err := source.Parse(text); err != nil {
		t.Fatalf("transformed program does not parse: %v\n%s", err, text)
	}
	// The split output contains the mask-complement guard.
	if !strings.Contains(text, "mask(i) == 0") {
		t.Fatalf("BI guard missing:\n%s", text)
	}
}

func TestCompileGraphConcurrency(t *testing.T) {
	out := compileSrc(t, figure1, DefaultOptions())
	// BI must be concurrent with the pipelined A units: no path from
	// any A unit to the CI unit.
	var ci string
	for _, u := range out.Units {
		if u.Role == "CI" {
			ci = u.Name
		}
	}
	if ci == "" {
		t.Fatal("no CI unit")
	}
	if len(out.Graph.Preds(ci)) != 0 {
		t.Fatalf("CI has predecessors %v; should be independent", out.Graph.Preds(ci))
	}
}

func TestCompileNoTransforms(t *testing.T) {
	opts := Options{}
	out := compileSrc(t, figure1, opts)
	if len(out.Report) != 0 {
		t.Fatalf("transforms applied with options off: %v", out.Report)
	}
	// One unit per top-level computation, chained.
	if len(out.Units) != 2 {
		t.Fatalf("units = %d", len(out.Units))
	}
	order, err := out.Graph.TopoOrder()
	if err != nil || len(order) != 2 {
		t.Fatalf("graph order: %v %v", order, err)
	}
}

func TestCompileIndependentPrograms(t *testing.T) {
	out := compileSrc(t, `
program indep
  integer n
  real a(n), b(n)
  do i = 1, n
    a(i) = 1
  end do
  do i = 1, n
    b(i) = 2
  end do
end
`, DefaultOptions())
	// No interference: no split; the two loops have no edges.
	levels, err := out.Graph.Levels()
	if err != nil {
		t.Fatal(err)
	}
	if len(levels) != 1 || len(levels[0]) != 2 {
		t.Fatalf("independent loops should share a level: %v", levels)
	}
}

func TestCompileFigure4Reduction(t *testing.T) {
	out := compileSrc(t, `
program fig4
  integer n, a
  real x(n, n), y(n), sum

  do i = 1, n
    x(a, i) = x(a, i) + y(i)
  end do

  do i = 1, n
    do j = 1, n
      sum = sum + x(i, j)
    end do
  end do
end
`, Options{EnableSplit: true, Split: DefaultOptions().Split})
	text := source.Format(out.Program)
	// Reduction replication and merge appear.
	if !strings.Contains(text, "sum = sum + sum_") && !strings.Contains(text, "sum = (sum + sum_") {
		t.Fatalf("reduction merge missing:\n%s", text)
	}
	// New declarations for the replicated scalars.
	if len(out.Program.Decls) < 6 {
		t.Fatalf("replicated decls missing: %d", len(out.Program.Decls))
	}
	// The CM unit exists and depends on both halves.
	var cm string
	for _, u := range out.Units {
		if u.Role == "CM" {
			cm = u.Name
		}
	}
	if cm == "" {
		t.Fatal("no merge unit")
	}
	if len(out.Graph.Preds(cm)) < 2 {
		t.Fatalf("merge preds = %v", out.Graph.Preds(cm))
	}
}

func TestCompileGraphEncodes(t *testing.T) {
	out := compileSrc(t, figure1, DefaultOptions())
	text := out.Graph.Encode()
	g2, err := delirium.Decode(text)
	if err != nil {
		t.Fatalf("decode: %v\n%s", err, text)
	}
	if len(g2.Nodes) != len(out.Graph.Nodes) {
		t.Fatal("round trip lost nodes")
	}
}

func TestCompileWithFusion(t *testing.T) {
	src := `
program f
  integer n
  real a(n), b(n), c(n)
  do i = 1, n
    a(i) = i
  end do
  do i = 1, n
    b(i) = a(i)
  end do
  do i = 1, n
    c(i) = 7
  end do
end
`
	opts := DefaultOptions()
	opts.EnableFusion = true
	out := compileSrc(t, src, opts)
	found := false
	for _, line := range out.Report {
		if strings.Contains(line, "fused") {
			found = true
		}
	}
	if !found {
		t.Fatalf("fusion not reported: %v", out.Report)
	}
	// The fused program still parses and has fewer top-level loops.
	text := source.Format(out.Program)
	if strings.Count(text, "do i") >= 3+3 { // headers appear once per loop
		t.Fatalf("no loops fused:\n%s", text)
	}
}

func TestTripCountAnnotations(t *testing.T) {
	out := compileSrc(t, `
program p
  integer n
  real a(n), b(n)
  do i = 2, n - 1
    a(i) = i
  end do
  do i = 1, n
    b(i) = a(2)
  end do
end
`, DefaultOptions())
	want := map[string]string{}
	for _, nd := range out.Graph.Nodes {
		want[nd.Name] = nd.Tasks
	}
	foundTrip := false
	for _, tasks := range want {
		if tasks == "n-2" {
			foundTrip = true
		}
	}
	if !foundTrip {
		t.Fatalf("no n-2 trip count: %v", want)
	}
	// The annotated graph must round-trip through the textual format.
	g2, err := delirium.Decode(out.Graph.Encode())
	if err != nil {
		t.Fatalf("round trip: %v\n%s", err, out.Graph.Encode())
	}
	if g2.Encode() != out.Graph.Encode() {
		t.Fatal("encode not stable")
	}
}
