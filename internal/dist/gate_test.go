package dist

import (
	"errors"
	"testing"

	"orchestra/internal/delirium"
	"orchestra/internal/rts"
	taskop "orchestra/internal/sched"
)

// The pipelined prefix gate (allowedHi) in closed form must agree with
// the kernel contract it encodes: consumer task i of an n-task
// operator reads its pn-task pipelined producer at j = i·pn/n (integer
// division), so i is grantable exactly when the producer's contiguous
// completed prefix covers j. The brute-force reference below counts
// grantable tasks directly from that contract; the closed form
// ceil(prefix·n/pn) must match it for every (n, pn, prefix) — the
// coprime cases are where an off-by-one would hide, because i·pn/n
// then lands on every residue.

// bruteAllowedHi counts the longest grantable prefix of the consumer:
// the first i whose producer index is uncovered stops the scan.
func bruteAllowedHi(n, pn, prefix int) int {
	for i := 0; i < n; i++ {
		if i*pn/n >= prefix {
			return i
		}
	}
	return n
}

// gateState builds a two-op coordinator state: op 0 the producer with
// a completed prefix, op 1 the consumer gated on it by one pipelined
// edge.
func gateState(n, pn, prefix int, mode rts.Mode) (*sched, *opState) {
	producer := &opState{name: "p", n: pn, prefix: prefix, complete: pn > 0 && prefix >= pn}
	consumer := &opState{name: "c", n: n, deps: []opDep{{op: 0, pipelined: true}}}
	s := &sched{mode: mode, ops: []*opState{producer, consumer}}
	return s, consumer
}

func TestAllowedHiMatchesBruteForce(t *testing.T) {
	// Every (n, pn) pair over a range that includes coprime pairs
	// (7×13, 9×16, ...), equal counts, divisors, multiples, and the
	// degenerate single-task shapes, swept over every legal prefix.
	for n := 1; n <= 24; n++ {
		for pn := 1; pn <= 24; pn++ {
			for prefix := 0; prefix <= pn; prefix++ {
				s, consumer := gateState(n, pn, prefix, rts.ModeSplit)
				got := s.allowedHi(consumer)
				want := bruteAllowedHi(n, pn, prefix)
				if prefix >= pn {
					// Complete producers stop gating entirely.
					want = n
				}
				if got != want {
					t.Fatalf("allowedHi(n=%d, pn=%d, prefix=%d) = %d, brute force says %d",
						n, pn, prefix, got, want)
				}
			}
		}
	}
}

// TestAllowedHiZeroTaskProducer pins the degenerate shapes: a
// zero-task producer has nothing to read, so it must never gate its
// consumer — neither incomplete (n=0 operators complete immediately,
// but the gate must not divide by zero if consulted first) nor as a
// zero-task consumer (nothing to grant either way).
func TestAllowedHiZeroTaskProducer(t *testing.T) {
	for _, complete := range []bool{false, true} {
		s, consumer := gateState(9, 0, 0, rts.ModeSplit)
		s.ops[0].complete = complete
		if got := s.allowedHi(consumer); got != 9 {
			t.Fatalf("zero-task producer (complete=%v) gates consumer to %d, want 9", complete, got)
		}
	}
	s, consumer := gateState(0, 7, 3, rts.ModeSplit)
	if got := s.allowedHi(consumer); got != 0 {
		t.Fatalf("zero-task consumer allowedHi = %d, want 0", got)
	}
}

// TestAllowedHiBarriersOutsideSplit pins the mode gate: outside
// ModeSplit a pipelined annotation is inert and the producer must be
// fully complete before any consumer task is grantable.
func TestAllowedHiBarriersOutsideSplit(t *testing.T) {
	for _, mode := range []rts.Mode{rts.ModeStatic, rts.ModeTaper} {
		s, consumer := gateState(8, 8, 7, mode)
		if got := s.allowedHi(consumer); got != 0 {
			t.Fatalf("mode %v: incomplete producer allows %d tasks, want 0", mode, got)
		}
		s.ops[0].complete = true
		if got := s.allowedHi(consumer); got != 8 {
			t.Fatalf("mode %v: complete producer allows %d tasks, want 8", mode, got)
		}
	}
}

// TestRefusesExpandableGraphs pins the structural refusal: the dist
// backend cannot ship not-yet-materialized sub-graphs to worker
// processes, so a graph containing expandable operators must fail
// with a structured *rts.OptionError naming Expand — before any
// worker forks, and never by executing the Exp nodes as ordinary
// operators.
func TestRefusesExpandableGraphs(t *testing.T) {
	g := delirium.NewGraph("exp")
	if err := g.AddNode(&delirium.Node{Name: "a", Kind: delirium.Par, Tasks: "4"}); err != nil {
		t.Fatal(err)
	}
	if err := g.AddNode(&delirium.Node{Name: "b", Kind: delirium.Exp, Tasks: "1", Rule: "dc"}); err != nil {
		t.Fatal(err)
	}
	g.AddEdge(&delirium.Edge{From: "a", To: "b"})
	bind := func(name string) rts.OpSpec {
		spec := rts.OpSpec{Op: taskop.Op{Name: name, N: 4, Time: func(int) float64 { return 1 }}, Mu: 1}
		if name == "b" {
			spec.Op.N = 1
			spec.Expand = func(int) (*rts.Expansion, error) { return nil, nil }
		}
		return spec
	}
	_, err := (Backend{}).Run(g, rts.BindClosure(bind), rts.RunOpts{Processors: 2, Mode: rts.ModeSplit})
	var oe *rts.OptionError
	if !errors.As(err, &oe) {
		t.Fatalf("expandable graph: got %v, want *rts.OptionError", err)
	}
	if oe.Backend != "dist" || len(oe.Fields) != 1 || oe.Fields[0] != "Expand" {
		t.Fatalf("OptionError = %+v, want Backend=dist Fields=[Expand]", oe)
	}
}

// TestAllowedHiNonPipelinedDep pins the non-pipelined branch inside
// ModeSplit: a plain dependence is a barrier regardless of prefix.
func TestAllowedHiNonPipelinedDep(t *testing.T) {
	s, consumer := gateState(8, 8, 7, rts.ModeSplit)
	consumer.deps[0].pipelined = false
	if got := s.allowedHi(consumer); got != 0 {
		t.Fatalf("incomplete non-pipelined producer allows %d tasks, want 0", got)
	}
}
