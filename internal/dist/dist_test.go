// Integration tests for the distributed backend. This is an external
// test package (dist_test) because it drives whole programs through
// internal/core, and core imports dist for its backend registration —
// an internal test package would close that cycle.
package dist_test

import (
	"errors"
	"os"
	"strings"
	"testing"

	"orchestra/internal/core"
	"orchestra/internal/dist"
	"orchestra/internal/fault"
	"orchestra/internal/native"
	"orchestra/internal/rts"
	"orchestra/internal/trace"
)

// TestMain routes worker forks: the dist backend re-executes this test
// binary with ORCHDIST_SOCKET set, and MaybeWorker turns that
// invocation into a worker process instead of a test run.
func TestMain(m *testing.M) {
	dist.MaybeWorker()
	os.Exit(m.Run())
}

// sample is a small program with real cross-operator data flow: the
// masked outer loop feeds q into the final element-wise pass, so a
// scheduling or delivery bug shows up as a digest mismatch.
const sample = `
program sample
  integer n
  integer mask(n)
  real result(n), q(n, n), output(n, n), w(n)

  do col = 1, n where (mask(col) != 0)
    do i = 1, n
      result(i) = 0
      do j = 1, n
        result(i) = result(i) + q(j, i) * w(j)
      end do
    end do
    do i = 1, n
      q(i, col) = result(i)
    end do
  end do

  do i = 1, n
    do j = 1, n
      output(j, i) = f(q(j, i))
    end do
  end do
end
`

func compileSample(t *testing.T) *core.Output {
	t.Helper()
	out, err := core.CompileSource(sample, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func arrayBinding(n int) rts.Binding {
	params := rts.KernelParams{}
	params.SetInt("n", n)
	params.SetInt("work", 1)
	return rts.NamedBinding("array", params)
}

// nativeDigest runs the graph on the in-process native backend from a
// fresh binding and returns the resulting memory-image digest: the
// reference every dist run must match bitwise.
func nativeDigest(t *testing.T, out *core.Output, n, p int, mode rts.Mode) string {
	t.Helper()
	bound, err := rts.Bind(out.Graph, arrayBinding(n))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := (native.Backend{}).Run(out.Graph, bound, rts.RunOpts{Processors: p, Mode: mode}); err != nil {
		t.Fatal(err)
	}
	d, ok := bound.Digest()
	if !ok || d == "" {
		t.Fatal("native run produced no digest")
	}
	return d
}

func distRun(t *testing.T, out *core.Output, n, p int, opts rts.RunOpts) (trace.Result, string) {
	t.Helper()
	bound, err := rts.Bind(out.Graph, arrayBinding(n))
	if err != nil {
		t.Fatal(err)
	}
	r, err := (dist.Backend{Workers: p}).Run(out.Graph, bound, opts)
	if err != nil {
		t.Fatal(err)
	}
	d, ok := bound.Digest()
	if !ok || d == "" {
		t.Fatal("dist run produced no digest")
	}
	return r, d
}

// TestDistParityAllModes is the cross-process bitwise check: the same
// program, bound by name to the array kernels, must end with exactly
// the same memory image whether it ran in one address space or across
// three forked worker processes — in every scheduling mode.
func TestDistParityAllModes(t *testing.T) {
	if testing.Short() {
		t.Skip("forks worker processes")
	}
	out := compileSample(t)
	const n, p = 512, 3
	for _, mode := range []rts.Mode{rts.ModeStatic, rts.ModeTaper, rts.ModeSplit} {
		want := nativeDigest(t, out, n, p, mode)
		r, got := distRun(t, out, n, p, rts.RunOpts{Processors: p, Mode: mode})
		if got != want {
			t.Errorf("%v: dist digest %s != native digest %s", mode, got, want)
		}
		if r.Makespan <= 0 {
			t.Errorf("%v: no measured makespan", mode)
		}
		if r.Processors != p {
			t.Errorf("%v: result reports %d processors, want %d", mode, r.Processors, p)
		}
	}
}

// TestDistCommMeasured checks that the per-message wall-clock costs
// actually reach the result: a multi-worker run of a communicating
// graph must report nonzero comm bytes and chunks.
func TestDistCommMeasured(t *testing.T) {
	if testing.Short() {
		t.Skip("forks worker processes")
	}
	out := compileSample(t)
	r, _ := distRun(t, out, 512, 3, rts.RunOpts{Processors: 3, Mode: rts.ModeSplit})
	if r.Chunks <= 0 {
		t.Error("no chunks recorded")
	}
	if r.CommBytes <= 0 {
		t.Error("no communication bytes recorded despite 3 workers exchanging blocks")
	}
}

// TestDistKillRecovery is the fault-tolerance acceptance test: worker
// 0 literally SIGKILLs itself at its first grant boundary, the
// coordinator must detect the death (socket EOF), re-issue the lost
// segment to the survivors, and still finish with a memory image
// bitwise-identical to an undisturbed native run.
func TestDistKillRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("forks and kills worker processes")
	}
	out := compileSample(t)
	const n, p = 512, 3
	plan, err := fault.Parse("crash:0@1")
	if err != nil {
		t.Fatal(err)
	}
	for _, mode := range []rts.Mode{rts.ModeStatic, rts.ModeSplit} {
		want := nativeDigest(t, out, n, p, mode)
		r, got := distRun(t, out, n, p, rts.RunOpts{Processors: p, Mode: mode, Fault: plan})
		if got != want {
			t.Errorf("%v: digest after worker crash %s != undisturbed native %s", mode, got, want)
		}
		if r.Makespan <= 0 {
			t.Errorf("%v: no measured makespan after recovery", mode)
		}
	}
}

// TestDistRejectsClosureBinding pins the API contract that motivated
// the registry: a closure cannot cross a process boundary, so the dist
// backend must refuse it up front with an error that says so.
func TestDistRejectsClosureBinding(t *testing.T) {
	out := compileSample(t)
	bound := rts.BindClosure(func(string) rts.OpSpec { return rts.OpSpec{} })
	_, err := (dist.Backend{Workers: 2}).Run(out.Graph, bound, rts.RunOpts{Processors: 2})
	if err == nil {
		t.Fatal("dist accepted a closure binding")
	}
	if !strings.Contains(err.Error(), "shippable") {
		t.Fatalf("error %q does not explain shippability", err)
	}
}

// TestDistUnsupportedRunOpts checks the structured option rejection:
// the dist backend has no shared-memory worker pool, so Pin and Labels
// must come back as an *OptionError naming them.
func TestDistUnsupportedRunOpts(t *testing.T) {
	out := compileSample(t)
	bound, err := rts.Bind(out.Graph, arrayBinding(64))
	if err != nil {
		t.Fatal(err)
	}
	_, err = (dist.Backend{Workers: 2}).Run(out.Graph, bound, rts.RunOpts{
		Processors: 2, Pin: true, Labels: true,
	})
	var oe *rts.OptionError
	if !errors.As(err, &oe) {
		t.Fatalf("error %v is not an *OptionError", err)
	}
	if len(oe.Fields) != 2 || oe.Fields[0] != "Pin" || oe.Fields[1] != "Labels" {
		t.Fatalf("fields %v, want [Pin Labels]", oe.Fields)
	}
}

// TestDistBackendOptions drives the registry factory: the documented
// keys parse, unknown keys are rejected with the known set attached.
func TestDistBackendOptions(t *testing.T) {
	be, err := rts.OpenBackend("dist", rts.BackendConfig{
		Processors: 2,
		Options:    map[string]string{"heartbeat_ms": "20", "timeout_ms": "500"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if be.Name() != "dist" {
		t.Fatalf("backend name %q, want dist", be.Name())
	}
	info, ok := rts.LookupBackend("dist")
	if !ok || !info.Distributed || !info.Measured {
		t.Fatalf("dist registry info wrong: %+v", info)
	}
	_, err = rts.OpenBackend("dist", rts.BackendConfig{Options: map[string]string{"warp": "9"}})
	var oe *rts.OptionError
	if !errors.As(err, &oe) {
		t.Fatalf("unknown option error %v is not an *OptionError", err)
	}
	if len(oe.Fields) != 1 || oe.Fields[0] != "warp" {
		t.Fatalf("fields %v, want [warp]", oe.Fields)
	}
	if _, err := rts.OpenBackend("dist", rts.BackendConfig{
		Options: map[string]string{"heartbeat_ms": "not-a-number"},
	}); err == nil {
		t.Fatal("bad heartbeat_ms value accepted")
	}
}
