package dist

import (
	"bufio"
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// TestSegHeaderRoundTrip pins the segment-header layout at its edges.
func TestSegHeaderRoundTrip(t *testing.T) {
	cases := [][4]int{
		{0, 0, 0, 0},
		{3, 17, 4096, 9},
		{0, 0, 1, 1},
		{255, 1 << 30, 1<<31 - 1, 1 << 20},
	}
	for _, c := range cases {
		var buf [segHeaderLen]byte
		putSegHeader(buf[:], c[0], c[1], c[2], c[3])
		op, lo, hi, seq := getSegHeader(buf[:])
		if op != c[0] || lo != c[1] || hi != c[2] || seq != c[3] {
			t.Errorf("round trip %v -> (%d,%d,%d,%d)", c, op, lo, hi, seq)
		}
	}
}

// TestFrameRoundTrip checks the length-prefixed framing through a
// buffer, including empty payloads and back-to-back frames.
func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	payloads := [][]byte{nil, {}, []byte("x"), bytes.Repeat([]byte{0xAB}, 70000)}
	for i, p := range payloads {
		if err := writeFrame(&buf, byte(i+1), p); err != nil {
			t.Fatal(err)
		}
	}
	br := bufio.NewReader(&buf)
	for i, p := range payloads {
		typ, got, err := readFrame(br)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if typ != byte(i+1) {
			t.Fatalf("frame %d: type %d", i, typ)
		}
		if !bytes.Equal(got, p) && len(got)+len(p) > 0 {
			t.Fatalf("frame %d: payload %d bytes, want %d", i, len(got), len(p))
		}
	}
}

// TestFrameRejectsOversize checks the 64 MiB frame cap on the read
// side — a corrupted length prefix must not become a giant allocation.
func TestFrameRejectsOversize(t *testing.T) {
	var buf bytes.Buffer
	buf.Write([]byte{0xFF, 0xFF, 0xFF, 0xFF, mHello})
	if _, _, err := readFrame(bufio.NewReader(&buf)); err == nil {
		t.Fatal("oversized frame accepted")
	}
}

// TestJobMessageRoundTrip checks that the JSON job payload carries the
// binding (kernel name, table, params) losslessly.
func TestJobMessageRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	in := jobMsg{
		Graph: "graph g\n",
		Mode:  2, Omega: 1.5, Workers: 3,
		Ops: []string{"a", "b"}, Heartbeat: 0.02,
		Fault: "crash:0@1",
	}
	in.Binding.Kernel = "array"
	in.Binding.Table = map[string]string{"b": "spin"}
	in.Binding.Params = map[string]string{"n": "128", "cv": "1.5"}
	if err := writeJSON(&buf, mJob, in); err != nil {
		t.Fatal(err)
	}
	typ, payload, err := readFrame(bufio.NewReader(&buf))
	if err != nil || typ != mJob {
		t.Fatalf("read: type %d err %v", typ, err)
	}
	var out jobMsg
	if err := json.Unmarshal(payload, &out); err != nil {
		t.Fatal(err)
	}
	if out.Binding.Kernel != "array" || out.Binding.Table["b"] != "spin" ||
		out.Binding.Params["n"] != "128" || out.Fault != "crash:0@1" ||
		len(out.Ops) != 2 || out.Workers != 3 {
		t.Fatalf("job did not survive the wire: %+v", out)
	}
}

// TestShortFrame checks that a truncated stream surfaces as an error,
// not a hang or a zero-value frame.
func TestShortFrame(t *testing.T) {
	for _, raw := range [][]byte{
		{0x00},
		{0x00, 0x00, 0x00, 0x05, mGrant, 0x01},
	} {
		if _, _, err := readFrame(bufio.NewReader(bytes.NewReader(raw))); err == nil {
			t.Fatalf("truncated frame %v accepted", raw)
		}
	}
}

// TestWorkerRefusesUnknownKernel checks the bind refusal path: a job
// naming an unregistered kernel must produce a refusal string that
// names it, not a panic or a silent empty spec.
func TestWorkerRefusesUnknownKernel(t *testing.T) {
	job := &jobMsg{Graph: "graph g\nnode a kind=par\n", Ops: []string{"a"}}
	job.Binding.Kernel = "no-such-kernel"
	_, _, refuse := bindJob(job)
	if refuse == "" {
		t.Fatal("unknown kernel accepted")
	}
	if !strings.Contains(refuse, "no-such-kernel") {
		t.Fatalf("refusal %q does not name the kernel", refuse)
	}
}
