package dist

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strconv"
	"time"

	"orchestra/internal/delirium"
	"orchestra/internal/obs"
	"orchestra/internal/rts"
	"orchestra/internal/trace"
)

// Backend is the distributed coordinator. Like the other backends it
// is a value whose Run calls are independent; the per-instance fields
// only set defaults a RunOpts cannot express.
type Backend struct {
	// Workers is the default worker-process count when
	// RunOpts.Processors is zero. Zero means min(GOMAXPROCS, 4) —
	// forking is expensive, so the default stays modest.
	Workers int
	// Heartbeat is the workers' heartbeat period in seconds (0 =
	// 0.02). Heartbeats prove liveness while a long segment computes;
	// a SIGKILLed worker is detected faster, through socket EOF.
	Heartbeat float64
	// Timeout is how long a worker may stay completely silent before
	// the coordinator declares it dead and re-issues its work (0 = 2s).
	Timeout float64
	// Bin is the worker binary to fork. Empty means os.Executable() —
	// the coordinator re-executes itself, which is what guarantees the
	// worker's kernel and backend registries match its own.
	Bin string
}

// Name implements rts.Backend.
func (Backend) Name() string { return "dist" }

// distSupported: fault plans are the point (crash is a real SIGKILL);
// the chain policy is trivially satisfied (segments are delivered by
// message, nothing is cache-chained); Pin and Labels would have to act
// inside the worker processes and are not implemented.
var distSupported = rts.Supported{Chain: true, Fault: true}

func init() {
	rts.RegisterBackend(rts.BackendInfo{Name: "dist", Measured: true, Distributed: true},
		func(cfg rts.BackendConfig) (rts.Backend, error) {
			if err := rts.CheckOptions("dist", cfg.Options, "heartbeat_ms", "timeout_ms", "bin"); err != nil {
				return nil, err
			}
			b := Backend{Workers: cfg.Processors, Bin: cfg.Options["bin"]}
			if v, ok := cfg.Options["heartbeat_ms"]; ok {
				ms, err := strconv.ParseFloat(v, 64)
				if err != nil || ms <= 0 {
					return nil, fmt.Errorf("dist: bad heartbeat_ms %q", v)
				}
				b.Heartbeat = ms / 1000
			}
			if v, ok := cfg.Options["timeout_ms"]; ok {
				ms, err := strconv.ParseFloat(v, 64)
				if err != nil || ms <= 0 {
					return nil, fmt.Errorf("dist: bad timeout_ms %q", v)
				}
				b.Timeout = ms / 1000
			}
			return b, nil
		})
}

func distDefaultProcs() int {
	p := runtime.GOMAXPROCS(0)
	if p > 4 {
		p = 4
	}
	if p < 1 {
		p = 1
	}
	return p
}

// seg is one granted (or grantable) task segment.
type seg struct {
	op, lo, hi, seq int
}

// opDep is one dataflow dependency of an operator.
type opDep struct {
	op        int
	pipelined bool
}

// opState is the coordinator's scheduling state for one operator.
type opState struct {
	name      string
	n         int
	spec      rts.OpSpec
	deps      []opDep
	done      []bool
	doneCount int
	prefix    int // contiguous completed prefix (pipelined consumers gate on it)
	next      int // lowest never-granted task index
	block     int // static mode: fixed block size, set at first grant
	complete  bool
}

// wstate is the coordinator's view of one worker process.
type wstate struct {
	id       int
	conn     net.Conn
	cmd      *exec.Cmd
	alive    bool
	busy     *seg
	grantT   time.Time
	lastSeen time.Time
	execSum  float64
}

// wmsg is one decoded frame (or a connection death) delivered to the
// scheduler by a worker's reader goroutine.
type wmsg struct {
	w       int
	typ     byte
	payload []byte
	err     error
}

// sched is the coordinator's single-goroutine scheduling state.
type sched struct {
	g        *delirium.Graph
	opts     rts.RunOpts
	mode     rts.Mode
	ops      []*opState
	workers  []*wstate
	regrants []seg
	msgCh    chan wmsg
	stop     chan struct{}
	rec      *obs.Recorder
	t0       time.Time

	seq       int
	live      int
	completed int

	// result accumulators
	grants    int
	msgsSent  int
	msgsRecv  int
	comm      float64
	commBytes int64
}

// Run implements rts.Backend: fork opts.Processors worker processes,
// ship them the graph and the name-level binding, and self-schedule
// segments over the sockets until the graph completes — re-issuing the
// segments of any worker that dies mid-run to the survivors.
func (b Backend) Run(g *delirium.Graph, bound *rts.Bound, opts rts.RunOpts) (trace.Result, error) {
	if err := opts.Validate(); err != nil {
		return trace.Result{}, err
	}
	if err := opts.CheckSupported("dist", distSupported); err != nil {
		return trace.Result{}, err
	}
	// Runtime expansion would require shipping not-yet-materialized
	// sub-graphs to workers mid-run; refuse structurally rather than
	// executing Exp nodes as if they were ordinary operators.
	if err := rts.CheckGraphSupported("dist", g, distSupported); err != nil {
		return trace.Result{}, err
	}
	if bound == nil || !bound.Shippable() {
		return trace.Result{}, fmt.Errorf("dist: binding is not shippable — dist workers rebuild kernels by name from the registry, so bind with rts.Bind (a registry Binding), not rts.BindClosure")
	}
	if err := g.Validate(); err != nil {
		return trace.Result{}, err
	}
	order, err := g.TopoOrder()
	if err != nil {
		return trace.Result{}, err
	}
	p := opts.Processors
	if p <= 0 {
		p = b.Workers
	}
	if p <= 0 {
		p = distDefaultProcs()
	}
	if opts.Fault != nil {
		if err := opts.Fault.Validate(p); err != nil {
			return trace.Result{}, err
		}
	}

	// Build the scheduling state from the coordinator's own Bound —
	// the same specs the workers will reconstruct from the binding.
	idx := make(map[string]int, len(order))
	names := make([]string, len(order))
	s := &sched{g: g, opts: opts, mode: opts.Mode, msgCh: make(chan wmsg, 4*p+16), stop: make(chan struct{})}
	// Readers block on msgCh sends; the stop channel releases them when
	// Run stops consuming. It must stay open through the sign-off
	// collection below, or a reader racing to deliver its mBye would
	// exit on stop and drop the frame.
	defer close(s.stop)
	for i, nd := range order {
		idx[nd.Name] = i
		names[i] = nd.Name
	}
	for i, nd := range order {
		spec := bound.Spec(nd.Name)
		st := &opState{name: nd.Name, n: spec.Op.N, spec: spec}
		if st.n <= 0 {
			st.complete = true
			s.completed++
		} else {
			st.done = make([]bool, st.n)
		}
		for _, e := range g.InEdges(nd.Name) {
			st.deps = append(st.deps, opDep{op: idx[e.From], pipelined: e.Pipelined})
		}
		s.ops = append(s.ops, st)
		_ = i
	}
	if opts.Sink != nil {
		s.rec = obs.NewRecorder("dist", "s", names, p+1)
	}

	// One socket, p forked self-executions of this binary.
	dir, err := os.MkdirTemp("", "orchdist")
	if err != nil {
		return trace.Result{}, err
	}
	defer os.RemoveAll(dir)
	sock := filepath.Join(dir, "coord.sock")
	ln, err := net.Listen("unix", sock)
	if err != nil {
		return trace.Result{}, err
	}
	defer ln.Close()

	bin := b.Bin
	if bin == "" {
		if bin, err = os.Executable(); err != nil {
			return trace.Result{}, fmt.Errorf("dist: resolving worker binary: %w", err)
		}
	}
	cmds := make([]*exec.Cmd, p)
	defer func() {
		for _, c := range cmds {
			if c != nil && c.Process != nil {
				c.Process.Kill()
				c.Wait()
			}
		}
	}()
	for i := 0; i < p; i++ {
		cmd := exec.Command(bin)
		cmd.Env = append(os.Environ(),
			EnvSocket+"="+sock,
			fmt.Sprintf("%s=%d", EnvWorker, i))
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			return trace.Result{}, fmt.Errorf("dist: forking worker %d: %w", i, err)
		}
		cmds[i] = cmd
	}

	// Handshake: accept each connection, read its hello to learn which
	// worker it is, ship the job.
	hb := b.Heartbeat
	if hb <= 0 {
		hb = 0.02
	}
	timeout := b.Timeout
	if timeout <= 0 {
		timeout = 2.0
	}
	job := jobMsg{
		Graph:   g.Encode(),
		Binding: bound.Binding,
		Mode:    int(opts.Mode),
		Omega:   opts.Omega,
		Workers: p,
		Ops:     names,
		Heartbeat: hb,
	}
	if opts.Fault != nil {
		job.Fault = opts.Fault.String()
	}
	s.workers = make([]*wstate, p)
	if ul, ok := ln.(*net.UnixListener); ok {
		ul.SetDeadline(time.Now().Add(15 * time.Second))
	}
	for i := 0; i < p; i++ {
		conn, err := ln.Accept()
		if err != nil {
			return trace.Result{}, fmt.Errorf("dist: waiting for workers (%d/%d connected): %w", i, p, err)
		}
		br := bufio.NewReaderSize(conn, 1<<16)
		typ, payload, err := readFrame(br)
		if err != nil || typ != mHello {
			conn.Close()
			return trace.Result{}, fmt.Errorf("dist: bad hello from worker connection: %v", err)
		}
		var hello helloMsg
		if err := json.Unmarshal(payload, &hello); err != nil {
			conn.Close()
			return trace.Result{}, err
		}
		id := hello.Worker
		if id < 0 || id >= p || s.workers[id] != nil {
			conn.Close()
			return trace.Result{}, fmt.Errorf("dist: unexpected worker id %d", id)
		}
		w := &wstate{id: id, conn: conn, cmd: cmds[id], alive: true, lastSeen: time.Now()}
		s.workers[id] = w
		if err := s.write(w, func() error { return writeJSON(conn, mJob, job) }); err != nil {
			return trace.Result{}, fmt.Errorf("dist: sending job to worker %d: %w", id, err)
		}
		go s.reader(w, br)
	}
	s.live = p

	// All workers must resolve the binding before scheduling starts: a
	// registry mismatch (which self-execution should make impossible)
	// or a kernel construction error surfaces here.
	oks := 0
	okDeadline := time.After(30 * time.Second)
	for oks < p {
		select {
		case m := <-s.msgCh:
			if m.err != nil {
				return trace.Result{}, fmt.Errorf("dist: worker %d died before accepting the job: %v", m.w, m.err)
			}
			switch m.typ {
			case mJobOK:
				var ok jobOKMsg
				if err := json.Unmarshal(m.payload, &ok); err != nil {
					return trace.Result{}, err
				}
				if ok.Err != "" {
					return trace.Result{}, fmt.Errorf("dist: worker %d rejected the job: %s", m.w, ok.Err)
				}
				s.workers[m.w].lastSeen = time.Now()
				oks++
			case mHeartbeat:
				s.workers[m.w].lastSeen = time.Now()
			default:
				return trace.Result{}, fmt.Errorf("dist: unexpected frame %d before job-ok", m.typ)
			}
		case <-okDeadline:
			return trace.Result{}, fmt.Errorf("dist: timed out waiting for workers to accept the job (%d/%d)", oks, p)
		}
	}

	res, runErr := s.execute(timeout)
	if runErr != nil {
		return trace.Result{}, runErr
	}

	// Finish: collect sign-offs and check every survivor's memory
	// image digests bitwise-identical to the coordinator's own (the
	// coordinator applied every data block locally).
	localDigest, hasDigest := bound.Digest()
	for _, w := range s.workers {
		if !w.alive {
			continue
		}
		s.write(w, func() error { return writeFrame(w.conn, mFinish, nil) })
	}
	byeDeadline := time.After(10 * time.Second)
	want := s.live
	for want > 0 {
		select {
		case m := <-s.msgCh:
			if m.err != nil {
				w := s.workers[m.w]
				if w.alive {
					w.alive = false
					want--
				}
				continue
			}
			switch m.typ {
			case mBye:
				var bye byeMsg
				if err := json.Unmarshal(m.payload, &bye); err != nil {
					return trace.Result{}, err
				}
				if bye.Err != "" {
					return trace.Result{}, fmt.Errorf("dist: worker %d failed: %s", m.w, bye.Err)
				}
				if hasDigest && bye.Digest != "" && bye.Digest != localDigest {
					return trace.Result{}, fmt.Errorf("dist: worker %d digest %s diverges from coordinator %s", m.w, bye.Digest, localDigest)
				}
				if w := s.workers[m.w]; w.alive {
					w.alive = false
					want--
				}
			case mHeartbeat, mDone:
				// Late frames from the run are harmless here.
			}
		case <-byeDeadline:
			return trace.Result{}, fmt.Errorf("dist: timed out waiting for %d worker sign-offs", want)
		}
	}

	if s.rec != nil {
		if t := s.rec.Finish(res); t != nil {
			if err := opts.Sink.Consume(t); err != nil {
				return res, err
			}
		}
	}
	return res, nil
}

// write performs one socket write with a deadline, marking the worker
// dead (without re-issue — the caller handles that) on failure.
func (s *sched) write(w *wstate, f func() error) error {
	w.conn.SetWriteDeadline(time.Now().Add(10 * time.Second))
	err := f()
	w.conn.SetWriteDeadline(time.Time{})
	if err == nil {
		s.msgsSent++
	}
	return err
}

// reader pumps one worker's frames into the scheduler's channel. A
// read error (EOF for a killed process) is delivered as a death
// notice; per-socket FIFO means every frame the worker managed to send
// arrives first.
func (s *sched) reader(w *wstate, br *bufio.Reader) {
	for {
		typ, payload, err := readFrame(br)
		m := wmsg{w: w.id, typ: typ, payload: payload, err: err}
		select {
		case s.msgCh <- m:
		case <-s.stop:
			return
		}
		if err != nil {
			return
		}
	}
}

// execute is the scheduling loop: grant segments to idle workers,
// fold completions in, gate pipelined consumers on producer prefixes,
// and survive worker deaths by re-issuing their segments.
func (s *sched) execute(timeout float64) (trace.Result, error) {
	s.t0 = time.Now()
	s.dispatchAll()
	tick := time.NewTicker(time.Duration(timeout * float64(time.Second) / 4))
	defer tick.Stop()
	var cancel <-chan struct{}
	if s.opts.Ctx != nil {
		cancel = s.opts.Ctx.Done()
	}
	for s.completed < len(s.ops) {
		select {
		case m := <-s.msgCh:
			s.msgsRecv++
			if m.err != nil {
				if err := s.workerDied(m.w, "connection lost"); err != nil {
					return trace.Result{}, err
				}
				continue
			}
			w := s.workers[m.w]
			w.lastSeen = time.Now()
			switch m.typ {
			case mHeartbeat:
			case mDone:
				if err := s.handleDone(w, m.payload); err != nil {
					return trace.Result{}, err
				}
			default:
				return trace.Result{}, fmt.Errorf("dist: unexpected frame type %d from worker %d", m.typ, m.w)
			}
		case <-tick.C:
			deadline := time.Now().Add(-time.Duration(timeout * float64(time.Second)))
			for _, w := range s.workers {
				if w.alive && w.lastSeen.Before(deadline) {
					if err := s.workerDied(w.id, "heartbeat timeout"); err != nil {
						return trace.Result{}, err
					}
				}
			}
		case <-cancel:
			return trace.Result{}, rts.CancelError("dist", s.opts.Ctx)
		}
	}
	makespan := time.Since(s.t0).Seconds()

	res := trace.Result{
		Name:       s.g.Name,
		Processors: len(s.workers),
		Unit:       "s",
		Makespan:   makespan,
		Chunks:     s.grants,
		Messages:   s.msgsSent + s.msgsRecv,
		Comm:       s.comm,
		CommBytes:  s.commBytes,
	}
	res.Busy = make([]float64, len(s.workers))
	for i, w := range s.workers {
		res.Busy[i] = w.execSum
		res.SeqTime += w.execSum
	}
	return res, nil
}

// handleDone folds one completed segment in: timing, local apply,
// broadcast to the other workers, dataflow bookkeeping, next grant.
func (s *sched) handleDone(w *wstate, payload []byte) error {
	if len(payload) < segHeaderLen+8 {
		return fmt.Errorf("dist: short done frame from worker %d", w.id)
	}
	op, lo, hi, seqNo := getSegHeader(payload)
	exec := float64(getU64(payload[segHeaderLen:])) / 1e9
	blob := payload[segHeaderLen+8:]
	if w.busy == nil || w.busy.seq != seqNo {
		// A frame from a segment this worker no longer owns; cannot
		// happen with live workers (one outstanding grant each), but be
		// safe against protocol confusion.
		return fmt.Errorf("dist: worker %d completed segment seq %d it does not own", w.id, seqNo)
	}
	st := s.ops[op]
	w.busy = nil
	w.execSum += exec

	now := time.Now()
	sentRel := w.grantT.Sub(s.t0).Seconds()
	recvRel := now.Sub(s.t0).Seconds()
	if c := recvRel - sentRel - exec; c > 0 {
		s.comm += c
	}
	s.commBytes += int64(len(blob))
	s.rec.Msg(w.id, op, lo, hi-lo, int64(len(blob)), sentRel, recvRel, exec)
	s.rec.Chunk(w.id, op, lo, hi-lo, recvRel-exec, recvRel, false)

	// Install the results into the coordinator's own memory image and
	// relay them to every other live worker. FIFO per socket orders the
	// block ahead of any later grant that depends on it.
	if len(blob) > 0 {
		if st.spec.Apply != nil {
			st.spec.Apply(lo, hi, blob)
		}
		hdr := make([]byte, segHeaderLen+len(blob))
		putSegHeader(hdr, op, lo, hi, 0)
		copy(hdr[segHeaderLen:], blob)
		for _, other := range s.workers {
			if !other.alive || other.id == w.id {
				continue
			}
			o := other
			if err := s.write(o, func() error { return writeFrame(o.conn, mBlock, hdr) }); err != nil {
				if derr := s.workerDied(o.id, "block write failed"); derr != nil {
					return derr
				}
			}
		}
	}

	for i := lo; i < hi; i++ {
		if !st.done[i] {
			st.done[i] = true
			st.doneCount++
		}
	}
	if old := st.prefix; st.prefix < st.n {
		for st.prefix < st.n && st.done[st.prefix] {
			st.prefix++
		}
		if st.prefix > old {
			s.rec.Gate(w.id, op, old, st.prefix, recvRel)
		}
	}
	if !st.complete && st.doneCount == st.n {
		st.complete = true
		s.completed++
	}
	s.grants++
	s.dispatchAll()
	return nil
}

// workerDied removes a worker: kill the process for certain, re-queue
// its outstanding segment for the survivors, and fail the run if
// nobody is left.
func (s *sched) workerDied(id int, why string) error {
	w := s.workers[id]
	if !w.alive {
		return nil
	}
	w.alive = false
	s.live--
	w.conn.Close()
	if w.cmd != nil && w.cmd.Process != nil {
		w.cmd.Process.Kill()
	}
	now := time.Since(s.t0).Seconds()
	s.rec.Fault(len(s.workers), id, 0, now)
	if s.live == 0 {
		return fmt.Errorf("dist: all %d workers died (last: worker %d, %s)", len(s.workers), id, why)
	}
	if w.busy != nil {
		sg := *w.busy
		w.busy = nil
		s.regrants = append(s.regrants, sg)
		s.rec.Retry(len(s.workers), id, sg.op, sg.lo, sg.hi-sg.lo, now)
	}
	s.dispatchAll()
	return nil
}

// dispatchAll grants a segment to every idle live worker that can
// take one. It also detects the stuck state (nothing running, nothing
// grantable, graph incomplete), which would otherwise hang the loop.
func (s *sched) dispatchAll() {
	for _, w := range s.workers {
		if !w.alive || w.busy != nil {
			continue
		}
		sg, ok := s.nextSegment()
		if !ok {
			break
		}
		s.grant(w, sg)
	}
}

// grant sends one segment to a worker (re-queueing it if the write
// fails and the worker turns out dead).
func (s *sched) grant(w *wstate, sg seg) {
	var buf [segHeaderLen]byte
	putSegHeader(buf[:], sg.op, sg.lo, sg.hi, sg.seq)
	w.grantT = time.Now()
	segCopy := sg
	w.busy = &segCopy
	if err := s.write(w, func() error { return writeFrame(w.conn, mGrant, buf[:]) }); err != nil {
		s.workerDied(w.id, "grant write failed")
	}
}

// nextSegment carves the next grantable segment: re-issues first (a
// dead worker's segments were already dataflow-legal), then a fresh
// chunk of the first enabled operator in topological order.
func (s *sched) nextSegment() (seg, bool) {
	if len(s.regrants) > 0 {
		sg := s.regrants[0]
		s.regrants = s.regrants[1:]
		sg.seq = s.nextSeq()
		return sg, true
	}
	for op, st := range s.ops {
		if st.complete || st.next >= st.n {
			continue
		}
		hiLimit := s.allowedHi(st)
		if st.next >= hiLimit {
			continue
		}
		chunk := s.chunkSize(st)
		hi := st.next + chunk
		if hi > hiLimit {
			hi = hiLimit
		}
		sg := seg{op: op, lo: st.next, hi: hi, seq: s.nextSeq()}
		st.next = hi
		return sg, true
	}
	return seg{}, false
}

func (s *sched) nextSeq() int {
	s.seq++
	return s.seq
}

// allowedHi is the dataflow gate: how far into an operator's task
// space grants may reach right now. Non-pipelined predecessors (and
// every predecessor outside ModeSplit) must be fully complete;
// pipelined predecessors gate by contiguous prefix exactly as the
// shared-memory backends do — task i of an n-task consumer may read a
// pn-task producer only at j = i·pn/n, so i is grantable once the
// producer's prefix covers that index.
func (s *sched) allowedHi(st *opState) int {
	hi := st.n
	for _, d := range st.deps {
		pred := s.ops[d.op]
		if !d.pipelined || s.mode != rts.ModeSplit {
			if !pred.complete {
				return 0
			}
			continue
		}
		if pred.complete {
			continue
		}
		if pred.n <= 0 {
			continue
		}
		// Count of tasks i with i·pn/n < prefix (integer division):
		// i < prefix·n/pn exactly, so ceil(prefix·n/pn).
		allowed := (pred.prefix*st.n + pred.n - 1) / pred.n
		if allowed < hi {
			hi = allowed
		}
	}
	return hi
}

// chunkSize picks the grant granularity. ModeStatic mirrors the other
// backends' fixed block decomposition (one block per live worker,
// sized when the operator first becomes grantable); the adaptive modes
// use guided self-scheduling — half the fair share of what remains —
// whose chunk count stays O(p·log n) while the final chunks shrink
// enough to balance stragglers.
func (s *sched) chunkSize(st *opState) int {
	live := s.live
	if live < 1 {
		live = 1
	}
	if s.mode == rts.ModeStatic {
		if st.block == 0 {
			st.block = (st.n + live - 1) / live
		}
		return st.block
	}
	chunk := (st.n - st.next) / (2 * live)
	if chunk < 1 {
		chunk = 1
	}
	return chunk
}
