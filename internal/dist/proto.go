// Package dist is the distributed shared-nothing backend: a
// coordinator process forks N worker processes connected over
// Unix-domain sockets and drives them through a small length-prefixed
// message protocol. It is the third rts.Backend ("dist") and the
// reproduction's return to the paper's actual machine model — the
// simulator *models* per-message costs on a hypercube, the native
// backend shares one address space, and this backend makes the
// comm/lag/sched terms of rts.FinishEstimate empirical: every segment
// grant is a real socket round trip whose wall-clock cost is measured
// and folded into obs events and trace.Result.
//
// Topology is a coordinator star. Workers never talk to each other;
// the coordinator schedules segments, relays data blocks, tracks
// pipelined prefixes, and detects death (socket EOF for a SIGKILLed
// process, heartbeat timeout for a hung one). Because kernels are
// resolved by name from rts.Kernels on both sides of the socket —
// worker processes re-execute this same binary, so the registries are
// identical — a serializable rts.Binding is all that ships; closures
// never cross the boundary.
//
// # Wire protocol
//
// Every frame is
//
//	u32 payload length (big-endian) | u8 type | payload
//
// Control frames (hello, job, job-ok, bye) carry JSON payloads; the
// hot frames (grant, done, block, heartbeat) are fixed-layout binary.
// All integers are big-endian.
//
//	hello     worker → coord   JSON {worker, pid}; sent once on connect
//	job       coord → worker   JSON {graph, binding, mode, omega,
//	                           workers, fault, ops, heartbeat}
//	job-ok    worker → coord   JSON {err}; binding resolved (or not)
//	grant     coord → worker   op u32, lo u32, hi u32, seq u32:
//	                           execute tasks [lo,hi) of ops[op]
//	done      worker → coord   op u32, lo u32, hi u32, seq u32,
//	                           exec-ns u64, then the Pack()ed blob
//	block     coord → worker   op u32, lo u32, hi u32, then the blob:
//	                           Apply() before reading further frames
//	heartbeat worker → coord   empty; liveness under long computations
//	finish    coord → worker   empty; graph is complete
//	bye       worker → coord   JSON {digest, err}; then the worker exits
//
// Ordering is per-socket FIFO, which is the protocol's one correctness
// hinge: the coordinator writes every input block a segment needs to a
// worker's socket before the segment's grant, so by the time the
// worker reads the grant its memory image is current — no explicit
// acknowledgement round is needed.
package dist

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"

	"orchestra/internal/rts"
)

// Frame types.
const (
	mHello byte = 1 + iota
	mJob
	mJobOK
	mGrant
	mDone
	mBlock
	mHeartbeat
	mFinish
	mBye
)

// maxFrame bounds a frame payload (64 MiB): large enough for any
// realistic data block, small enough that a corrupt length prefix
// fails fast instead of allocating garbage.
const maxFrame = 64 << 20

// Environment variables that activate worker mode (see MaybeWorker).
const (
	// EnvSocket is the coordinator's Unix socket path. Its presence
	// turns the process into a worker.
	EnvSocket = "ORCHDIST_SOCKET"
	// EnvWorker is the worker's id (0-based).
	EnvWorker = "ORCHDIST_WORKER"
)

// helloMsg introduces a worker after it connects.
type helloMsg struct {
	Worker int `json:"worker"`
	PID    int `json:"pid"`
}

// jobMsg ships one run to a worker: the encoded graph, the name-level
// binding (resolved against the worker's own kernel registry), and the
// run parameters the worker needs locally.
type jobMsg struct {
	Graph   string      `json:"graph"`
	Binding rts.Binding `json:"binding"`
	Mode    int         `json:"mode"`
	Omega   float64     `json:"omega,omitempty"`
	// Workers is the total worker count (fault plans validate against
	// it; kernels may size communication estimates with it).
	Workers int `json:"workers"`
	// Fault is the run's fault plan in internal/fault syntax; each
	// worker executes its own actions (a crash action is a literal
	// self-SIGKILL at a grant boundary).
	Fault string `json:"fault,omitempty"`
	// Ops is the operator-name table: binary frames refer to operators
	// by index into this slice (topological order).
	Ops []string `json:"ops"`
	// Heartbeat is the worker's heartbeat period in seconds.
	Heartbeat float64 `json:"heartbeat"`
}

// jobOKMsg acknowledges (or refuses) a job.
type jobOKMsg struct {
	Err string `json:"err,omitempty"`
}

// byeMsg is a worker's sign-off: its final memory-image digest (empty
// when the kernels have none), for the coordinator's cross-process
// bitwise check.
type byeMsg struct {
	Digest string `json:"digest,omitempty"`
	Err    string `json:"err,omitempty"`
}

// segHeader is the fixed binary prefix of grant/done/block frames.
const segHeaderLen = 16

func putSegHeader(buf []byte, op, lo, hi, seq int) {
	binary.BigEndian.PutUint32(buf[0:], uint32(op))
	binary.BigEndian.PutUint32(buf[4:], uint32(lo))
	binary.BigEndian.PutUint32(buf[8:], uint32(hi))
	binary.BigEndian.PutUint32(buf[12:], uint32(seq))
}

func getSegHeader(buf []byte) (op, lo, hi, seq int) {
	return int(binary.BigEndian.Uint32(buf[0:])),
		int(binary.BigEndian.Uint32(buf[4:])),
		int(binary.BigEndian.Uint32(buf[8:])),
		int(binary.BigEndian.Uint32(buf[12:]))
}

// writeFrame emits one frame. Callers serialize access per connection
// (the coordinator writes from its single scheduler goroutine; workers
// hold a mutex across their response and heartbeat paths).
func writeFrame(w io.Writer, typ byte, payload []byte) error {
	if len(payload) > maxFrame {
		return fmt.Errorf("dist: frame payload %d exceeds limit %d", len(payload), maxFrame)
	}
	var hdr [5]byte
	binary.BigEndian.PutUint32(hdr[:4], uint32(len(payload)))
	hdr[4] = typ
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	if len(payload) > 0 {
		if _, err := w.Write(payload); err != nil {
			return err
		}
	}
	return nil
}

// writeJSON emits one control frame with a JSON payload.
func writeJSON(w io.Writer, typ byte, v any) error {
	payload, err := json.Marshal(v)
	if err != nil {
		return err
	}
	return writeFrame(w, typ, payload)
}

// readFrame reads one frame.
func readFrame(r *bufio.Reader) (typ byte, payload []byte, err error) {
	var hdr [5]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:4])
	if n > maxFrame {
		return 0, nil, fmt.Errorf("dist: frame payload %d exceeds limit %d", n, maxFrame)
	}
	typ = hdr[4]
	if n > 0 {
		payload = make([]byte, n)
		if _, err := io.ReadFull(r, payload); err != nil {
			return 0, nil, err
		}
	}
	return typ, payload, nil
}
