package dist

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"net"
	"os"
	"strconv"
	"sync"
	"syscall"
	"time"

	"orchestra/internal/delirium"
	"orchestra/internal/fault"
	"orchestra/internal/rts"
)

// MaybeWorker is the hidden worker mode: when the ORCHDIST_SOCKET
// environment variable is set, the process is a forked dist worker —
// it connects back to the coordinator, serves exactly one job, and
// exits without ever reaching the caller's own main logic. Every
// program that can act as a dist coordinator calls MaybeWorker first
// thing in main (and test binaries from TestMain, before flag
// parsing), because the coordinator re-executes its own binary to fork
// workers: that is what guarantees the worker's kernel registry is
// bit-for-bit the coordinator's.
func MaybeWorker() {
	sock := os.Getenv(EnvSocket)
	if sock == "" {
		return
	}
	id, err := strconv.Atoi(os.Getenv(EnvWorker))
	if err != nil || id < 0 {
		fmt.Fprintf(os.Stderr, "dist worker: bad %s=%q\n", EnvWorker, os.Getenv(EnvWorker))
		os.Exit(3)
	}
	if err := runWorker(sock, id); err != nil {
		fmt.Fprintf(os.Stderr, "dist worker %d: %v\n", id, err)
		os.Exit(1)
	}
	os.Exit(0)
}

// workerConn wraps the worker's socket with the write-side mutex the
// heartbeat goroutine shares with the main loop.
type workerConn struct {
	conn net.Conn
	mu   sync.Mutex
}

func (c *workerConn) send(typ byte, payload []byte) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return writeFrame(c.conn, typ, payload)
}

func (c *workerConn) sendJSON(typ byte, v any) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return writeJSON(c.conn, typ, v)
}

// runWorker serves one job: handshake, bind, then execute granted
// segments until the coordinator says finish (or the socket dies,
// which means the coordinator is gone and the worker with it).
func runWorker(sock string, id int) error {
	conn, err := net.Dial("unix", sock)
	if err != nil {
		return err
	}
	defer conn.Close()
	wc := &workerConn{conn: conn}
	br := bufio.NewReaderSize(conn, 1<<16)

	if err := wc.sendJSON(mHello, helloMsg{Worker: id, PID: os.Getpid()}); err != nil {
		return err
	}

	typ, payload, err := readFrame(br)
	if err != nil {
		return fmt.Errorf("reading job: %w", err)
	}
	if typ != mJob {
		return fmt.Errorf("expected job frame, got type %d", typ)
	}
	var job jobMsg
	if err := json.Unmarshal(payload, &job); err != nil {
		return err
	}

	// Rebuild the run from data alone: decode the graph, resolve the
	// binding against this process's kernel registry. Any failure is
	// reported in job-ok so the coordinator can surface it instead of
	// timing out.
	bound, specs, refuse := bindJob(&job)
	if refuse != "" {
		wc.sendJSON(mJobOK, jobOKMsg{Err: refuse})
		return fmt.Errorf("%s", refuse)
	}
	if err := wc.sendJSON(mJobOK, jobOKMsg{}); err != nil {
		return err
	}

	// The worker's own slice of the fault plan. Crash is a literal
	// SIGKILL — the real thing the PR 5 recovery protocol was built
	// for — so it never returns; stall sleeps; slow stretches segment
	// execution.
	var fx *fault.Exec
	if job.Fault != "" {
		plan, err := fault.Parse(job.Fault)
		if err != nil {
			return fmt.Errorf("fault plan: %w", err)
		}
		fx = fault.NewExec(plan, job.Workers)
	}

	// Heartbeats prove liveness while a long segment computes. The
	// goroutine dies with the process; a send failure just means the
	// coordinator went away, which the main loop will also notice.
	hb := job.Heartbeat
	if hb <= 0 {
		hb = 0.05
	}
	stopHB := make(chan struct{})
	defer close(stopHB)
	go func() {
		t := time.NewTicker(time.Duration(hb * float64(time.Second)))
		defer t.Stop()
		for {
			select {
			case <-stopHB:
				return
			case <-t.C:
				if wc.send(mHeartbeat, nil) != nil {
					return
				}
			}
		}
	}()

	for {
		typ, payload, err := readFrame(br)
		if err != nil {
			return fmt.Errorf("reading frame: %w", err)
		}
		switch typ {
		case mBlock:
			if len(payload) < segHeaderLen {
				return fmt.Errorf("short block frame (%d bytes)", len(payload))
			}
			op, lo, hi, _ := getSegHeader(payload)
			if op < 0 || op >= len(specs) {
				return fmt.Errorf("block for unknown op %d", op)
			}
			if specs[op].Apply != nil {
				specs[op].Apply(lo, hi, payload[segHeaderLen:])
			}
		case mGrant:
			if len(payload) < segHeaderLen {
				return fmt.Errorf("short grant frame (%d bytes)", len(payload))
			}
			op, lo, hi, seq := getSegHeader(payload)
			if op < 0 || op >= len(specs) || lo < 0 || hi < lo || hi > specs[op].Op.N {
				return fmt.Errorf("grant out of range: op %d tasks [%d,%d)", op, lo, hi)
			}
			slow := beginOrDie(fx, id)
			start := time.Now()
			spec := &specs[op]
			if spec.Op.TimeRange != nil {
				spec.Op.TimeRange(lo, hi)
			} else {
				for i := lo; i < hi; i++ {
					spec.Op.Time(i)
				}
			}
			if slow > 1 {
				// A slowed worker takes slow× the time: the work is done,
				// stretch the remainder.
				time.Sleep(time.Duration(float64(time.Since(start)) * (slow - 1)))
			}
			execNS := time.Since(start).Nanoseconds()
			var blob []byte
			if spec.Pack != nil {
				blob = spec.Pack(lo, hi)
			}
			out := make([]byte, segHeaderLen+8+len(blob))
			putSegHeader(out, op, lo, hi, seq)
			putU64(out[segHeaderLen:], uint64(execNS))
			copy(out[segHeaderLen+8:], blob)
			if err := wc.send(mDone, out); err != nil {
				return err
			}
		case mFinish:
			var bye byeMsg
			if bound != nil {
				if d, ok := bound.Digest(); ok {
					bye.Digest = d
				}
			}
			return wc.sendJSON(mBye, bye)
		default:
			return fmt.Errorf("unexpected frame type %d", typ)
		}
	}
}

// bindJob rebuilds the graph and kernels from a job message. A
// non-empty refuse string is the error to report in job-ok.
func bindJob(job *jobMsg) (bound *rts.Bound, specs []rts.OpSpec, refuse string) {
	g, err := delirium.Decode(job.Graph)
	if err != nil {
		return nil, nil, fmt.Sprintf("decoding graph: %v", err)
	}
	bound, err = rts.Bind(g, job.Binding)
	if err != nil {
		return nil, nil, fmt.Sprintf("resolving binding: %v", err)
	}
	specs = make([]rts.OpSpec, len(job.Ops))
	for i, name := range job.Ops {
		if g.Node(name) == nil {
			return nil, nil, fmt.Sprintf("job names unknown op %q", name)
		}
		specs[i] = bound.Spec(name)
	}
	return bound, specs, ""
}

// beginOrDie consults the fault injector at a grant boundary: a crash
// decision is executed as SIGKILL (no deferred cleanup, no flushed
// buffers — exactly what the recovery protocol must survive), stalls
// sleep and re-consult, and the surviving decision's slow factor is
// returned.
func beginOrDie(fx *fault.Exec, id int) (slow float64) {
	for {
		d := fx.Begin(id)
		if d.Crash {
			syscall.Kill(os.Getpid(), syscall.SIGKILL)
			select {} // unreachable; Kill does not return an error we could act on
		}
		if d.Stall > 0 {
			time.Sleep(time.Duration(d.Stall * float64(time.Second)))
			continue
		}
		if d.Slow > 0 {
			return d.Slow
		}
		return 1
	}
}

func putU64(b []byte, v uint64) { binary.BigEndian.PutUint64(b, v) }
func getU64(b []byte) uint64    { return binary.BigEndian.Uint64(b) }
