package split

import (
	"orchestra/internal/descriptor"
	"orchestra/internal/symbolic"
)

// Category is the memory-usage classification of a primitive
// computation with respect to a target descriptor D (§3.3.1).
type Category int

// Categories. Bound computations interfere with D directly. Linked
// computations interfere only transitively, and subdivide into
// NeedsBound (transitive flow interference FROM Bound), GenerateLinked
// (Bound or NeedsBound has a transitive flow interference from them),
// and ReadLinked (the rest). Free computations have no relationship to
// D at all.
const (
	Free Category = iota
	Bound
	NeedsBound
	GenerateLinked
	ReadLinked
)

func (c Category) String() string {
	switch c {
	case Free:
		return "Free"
	case Bound:
		return "Bound"
	case NeedsBound:
		return "NeedsBound"
	case GenerateLinked:
		return "GenerateLinked"
	case ReadLinked:
		return "ReadLinked"
	}
	return "?"
}

// Categorize assigns each primitive a category with respect to D,
// following the paper's two algorithms literally: first
// Bound/Linked/Free via transitive_interfere, then the Linked
// subdivision via transitive_flow_{up,down}.
func Categorize(prims []Prim, d descriptor.Descriptor, ctx symbolic.Conj) []Category {
	n := len(prims)
	cats := make([]Category, n)

	// Bound = direct interference; MaybeFree = the rest.
	var maybeFree []int
	var bound []int
	for i, p := range prims {
		if descriptor.Interferes(p.Desc, d, ctx) {
			cats[i] = Bound
			bound = append(bound, i)
		} else {
			maybeFree = append(maybeFree, i)
		}
	}

	// Linked = transitive_interfere(MaybeFree, Bound): members of
	// MaybeFree that transitively interfere with Bound using MaybeFree.
	linked := transitiveInterfere(prims, maybeFree, bound,
		func(a, b int) bool { return descriptor.Interferes(prims[a].Desc, prims[b].Desc, ctx) })

	// Subdivide Linked. Flow interference is a predecessor/successor
	// relation, so program order (primitive index) gates each test.
	// NeedsBound = transitive_flow_up(Linked, Bound): computations with
	// a transitive flow interference FROM Bound (they read values Bound
	// writes, possibly through other Linked computations).
	needsBound := transitiveInterfere(prims, linked, bound,
		func(a, b int) bool {
			return b < a && descriptor.FlowInterferes(prims[b].Desc, prims[a].Desc, ctx)
		})
	isNeeds := map[int]bool{}
	for _, i := range needsBound {
		isNeeds[i] = true
	}

	var unrestricted []int
	for _, i := range linked {
		if !isNeeds[i] {
			unrestricted = append(unrestricted, i)
		}
	}
	// GenerateLinked = transitive_flow_down(Unrestricted, Bound ∪
	// NeedsBound): Bound or NeedsBound has a transitive flow
	// interference from them (they generate values those use).
	target := append(append([]int{}, bound...), needsBound...)
	genLinked := transitiveInterfere(prims, unrestricted, target,
		func(a, b int) bool {
			return a < b && descriptor.FlowInterferes(prims[a].Desc, prims[b].Desc, ctx)
		})
	isGen := map[int]bool{}
	for _, i := range genLinked {
		isGen[i] = true
	}

	for _, i := range linked {
		switch {
		case isNeeds[i]:
			cats[i] = NeedsBound
		case isGen[i]:
			cats[i] = GenerateLinked
		default:
			cats[i] = ReadLinked
		}
	}
	return cats
}

// transitiveInterfere is the paper's transitive_interfere procedure: it
// returns the members of initial that transitively relate to target
// using members of initial as intermediaries. rel(a, b) is the
// one-step relation from candidate index a to reference index b; it
// iterates to a fixpoint, each round moving candidates that relate to
// the newly added set.
func transitiveInterfere(prims []Prim, initial, target []int, rel func(a, b int) bool) []int {
	remaining := append([]int{}, initial...)
	testSet := append([]int{}, target...)
	var result []int
	for len(testSet) > 0 {
		var newBound []int
		var still []int
		for _, c := range remaining {
			hit := false
			for _, t := range testSet {
				if rel(c, t) {
					hit = true
					break
				}
			}
			if hit {
				result = append(result, c)
				newBound = append(newBound, c)
			} else {
				still = append(still, c)
			}
		}
		remaining = still
		testSet = newBound
	}
	return result
}
