package split

// Split annotations (Palkar & Zaharia, "Split Annotations"): a kernel
// author declares how an existing kernel's data access decomposes over
// its task index space, and the runtime uses the declaration — without
// rewriting the kernel — to pipeline successive operators over
// cache-resident chunk batches instead of materializing every
// intermediate array through main memory.
//
// The declaration is deliberately tiny. A kernel of n tasks owns an
// n-element output; an Annotation states which producer elements task
// i reads (Read, with Halo for stencils) and which of its own elements
// it writes (Write). The native executor combines the producer's Write
// access with the consumer's Read access per dataflow edge: when
// Chainable reports the pair compatible, the worker that completes
// producer chunk i immediately runs the consumer's chunk i while the
// data is still in cache (the cache-chain schedule); otherwise the
// edge keeps the ordinary prefix-gate or barrier semantics. Results
// are bitwise identical either way — the annotation only licenses an
// execution order, it never changes what a task computes.

// Access classifies which elements of an equal-cardinality peer array
// a task touches.
type Access int

const (
	// AccessAll is the conservative default: task i may touch any
	// element, so the whole peer array must be settled first.
	AccessAll Access = iota
	// AccessElement: task i touches exactly element i.
	AccessElement
	// AccessStencil: task i touches elements [i-Halo, i+Halo], clamped
	// to the array bounds.
	AccessStencil
)

func (a Access) String() string {
	switch a {
	case AccessAll:
		return "all"
	case AccessElement:
		return "element"
	case AccessStencil:
		return "stencil"
	}
	return "?"
}

// Annotation declares a kernel's split behaviour: how task i reads its
// predecessors' arrays and writes its own. The zero value (AccessAll
// reads and writes) is the conservative "don't chain me" annotation.
type Annotation struct {
	// Read is the access pattern against each predecessor array the
	// kernel consumes through a dataflow edge.
	Read Access
	// Halo widens a stencil read: task i reads [i-Halo, i+Halo],
	// clamped. Meaningful only when Read is AccessStencil.
	Halo int
	// Write is the access pattern of the kernel's own output array.
	Write Access
}

// Pointwise annotates a map-style kernel: task i reads element i of
// each predecessor and writes element i of its own output.
func Pointwise() *Annotation {
	return &Annotation{Read: AccessElement, Write: AccessElement}
}

// Stencil annotates a halo kernel: task i reads [i-halo, i+halo]
// (clamped) of each predecessor and writes element i of its output.
// A negative halo is treated as zero (= Pointwise).
func Stencil(halo int) *Annotation {
	if halo < 0 {
		halo = 0
	}
	return &Annotation{Read: AccessStencil, Halo: halo, Write: AccessElement}
}

// Reduction annotates a fold-style kernel that accumulates per-task
// partials: task i reads element i of each predecessor but its output
// is an aggregate (AccessAll) — so it chains as a consumer, while any
// kernel consuming it must wait for full completion.
func Reduction() *Annotation {
	return &Annotation{Read: AccessElement, Write: AccessAll}
}

// ReadSpan reports the clamped predecessor index range [lo, hi)
// consumer task range [tlo, thi) may read under the annotation, for an
// n-element predecessor. Only meaningful for chainable reads.
func (a *Annotation) ReadSpan(tlo, thi, n int) (lo, hi int) {
	h := 0
	if a != nil && a.Read == AccessStencil {
		h = a.Halo
	}
	lo, hi = tlo-h, thi+h
	if lo < 0 {
		lo = 0
	}
	if hi > n {
		hi = n
	}
	return lo, hi
}

// ChainHalo resolves the halo a chain edge between prod and cons must
// cover: the consumer's stencil width, zero for element reads.
func ChainHalo(cons *Annotation) int {
	if cons != nil && cons.Read == AccessStencil {
		return cons.Halo
	}
	return 0
}

// Chainable reports whether a producer→consumer edge may be scheduled
// as a cache chain: the producer must write pointwise (element i is
// final once task i completes) and the consumer must read a bounded
// neighbourhood (element or stencil). An AccessAll on either side
// keeps the edge on the ordinary gate/barrier path.
func Chainable(prod, cons *Annotation) bool {
	if prod == nil || cons == nil {
		return false
	}
	if prod.Write != AccessElement {
		return false
	}
	return cons.Read == AccessElement || cons.Read == AccessStencil
}
