package split

import (
	"fmt"

	"orchestra/internal/analysis"
	"orchestra/internal/descriptor"
	"orchestra/internal/source"
	"orchestra/internal/ssa"
	"orchestra/internal/symbolic"
)

// LoopSplit is the result of splitting the iterations of one Bound
// loop into a set that does not interfere with the target descriptor
// and a set that still does (§3.3.1: "it is often possible to split the
// iterations of a loop in Bound into two sets").
type LoopSplit struct {
	// Independent is the restricted loop whose iterations provably do
	// not interfere with the target descriptor.
	Independent []source.Stmt
	// Dependent covers the remaining iterations.
	Dependent []source.Stmt
	// Merge holds reduction-merge statements (Figure 4's
	// sum = sum1 + sum2 step).
	Merge []source.Stmt
	// NewDecls declares replicated reduction variables.
	NewDecls []*source.Decl
	// IndependentDesc and DependentDesc are conservative descriptors
	// for the two parts (with replicated blocks renamed).
	IndependentDesc descriptor.Descriptor
	DependentDesc   descriptor.Descriptor
	// Kind records which strategy applied: "mask" or "exclude".
	Kind string
}

// reduction describes one recognized reduction variable in a loop body.
type reduction struct {
	Var string
	Op  string // "+" or "*"
}

// trySplitLoopIterations attempts to divide the iterations of loop into
// an independent and a dependent set with respect to d. ctx carries
// predicates known at the loop's position. uniq provides fresh variable
// suffixes for reduction replication.
func trySplitLoopIterations(r *analysis.Result, loop *source.Do, d descriptor.Descriptor, ctx symbolic.Conj, uniq *int) (*LoopSplit, bool) {
	iter, iv := r.DescribeIteration(loop)
	ind := r.SSA.Defs[iv]
	if ind == nil || len(ind.Ranges) == 0 {
		return nil, false
	}

	// Legality: iterations must be independent, or dependent only
	// through recognized reductions.
	reds, ok := splittableIterations(r, loop, iter, iv)
	if !ok {
		return nil, false
	}
	// Reduction-variable accesses are iteration-local after
	// replication; drop them from the descriptors used for the
	// disjointness validation.
	iterNoRed := removeBlocks(iter, reductionBlocks(reds))

	// Candidate 1: complement of a mask appearing in d (Figure 2).
	if ls, ok := tryMaskComplement(r, loop, d, iterNoRed, iv, ind.Ranges, ctx, reds, uniq); ok {
		return ls, true
	}
	// Candidate 2: exclusion of a point index appearing in d (Figure 4).
	if ls, ok := tryPointExclusion(r, loop, d, iterNoRed, iv, ind.Ranges, ctx, reds, uniq); ok {
		return ls, true
	}
	return nil, false
}

// splittableIterations reports whether the loop's iterations can be
// legally divided: any two distinct iterations must not interfere,
// except through scalar reduction variables (which are recognized and
// replicated). It returns the recognized reductions.
func splittableIterations(r *analysis.Result, loop *source.Do, iter descriptor.Descriptor, iv symbolic.Name) ([]reduction, bool) {
	reds, ok := detectReductions(r, loop)
	if !ok {
		return nil, false
	}
	clean := removeBlocks(iter, reductionBlocks(reds))
	ivP := symbolic.Name(string(iv) + "'")
	other := clean.Subst(iv, symbolic.Var(ivP))
	ctx := symbolic.Conj{symbolic.CmpExpr(symbolic.Var(iv), symbolic.NE, symbolic.Var(ivP))}
	if descriptor.Interferes(clean, other, ctx) {
		return nil, false
	}
	return reds, true
}

// detectReductions checks every loop-carried scalar of the loop: each
// must be updated only by associative self-updates (v = v + e or
// v = v * e with e free of v) and read nowhere else in the body. It
// reports ok=false when a loop-carried scalar defies that pattern.
func detectReductions(r *analysis.Result, loop *source.Do) ([]reduction, bool) {
	env := r.SSA.InsideLoop[loop]
	headNode := r.SSA.Graph.LoopNode[loop]
	var reds []reduction
	for v, name := range env {
		if v == loop.Var {
			continue
		}
		def := r.SSA.Defs[name]
		if def == nil || def.Kind != ssa.DefPhi || def.Node != headNode {
			continue // not loop-carried here
		}
		op, ok := reductionOp(loop.Body, v)
		if !ok {
			return nil, false
		}
		if op != "" {
			reds = append(reds, reduction{Var: v, Op: op})
		}
	}
	return reds, true
}

// reductionOp inspects every use of scalar v in body. It returns the
// single associative operator when v is a pure reduction variable; ""
// with ok=true when v is never touched (not actually carried here);
// and ok=false when v is used in a non-reduction way.
func reductionOp(body []source.Stmt, v string) (string, bool) {
	op := ""
	ok := true
	reads := 0
	updates := 0
	var checkReads func(e source.Expr)
	checkReads = func(e source.Expr) {
		source.WalkExpr(e, func(x source.Expr) {
			if id, isID := x.(*source.Ident); isID && id.Name == v {
				reads++
			}
		})
	}
	source.WalkStmts(body, func(s source.Stmt) {
		switch s := s.(type) {
		case *source.Assign:
			if id, isID := s.LHS.(*source.Ident); isID && id.Name == v {
				// Must be v = v op e or v = e op v (op associative).
				bin, isBin := s.RHS.(*source.Bin)
				if !isBin || (bin.Op != "+" && bin.Op != "*") {
					ok = false
					return
				}
				l, lIsV := bin.L.(*source.Ident)
				rr, rIsV := bin.R.(*source.Ident)
				var other source.Expr
				switch {
				case lIsV && l.Name == v:
					other = bin.R
				case rIsV && rr.Name == v:
					other = bin.L
				default:
					ok = false
					return
				}
				if op != "" && op != bin.Op {
					ok = false
					return
				}
				op = bin.Op
				updates++
				// The other operand must not read v.
				selfReads := 0
				source.WalkExpr(other, func(x source.Expr) {
					if id, isID := x.(*source.Ident); isID && id.Name == v {
						selfReads++
					}
				})
				if selfReads > 0 {
					ok = false
				}
				return
			}
			checkReads(s.RHS)
			if ar, isAR := s.LHS.(*source.ArrayRef); isAR {
				for _, ix := range ar.Index {
					checkReads(ix)
				}
			}
		case *source.Do:
			for _, rg := range s.Ranges {
				checkReads(rg.Lo)
				checkReads(rg.Hi)
				checkReads(rg.Step)
			}
			checkReads(s.Where)
		case *source.If:
			checkReads(s.Cond)
		case *source.CallStmt:
			for _, a := range s.Args {
				checkReads(a)
			}
		}
	})
	if !ok {
		return "", false
	}
	if updates == 0 {
		if reads > 0 {
			// Read-only carried scalar: not actually carried by
			// assignment; treat as non-reduction but legal.
			return "", true
		}
		return "", true
	}
	// Reads outside the updates (counted via checkReads) disqualify.
	if reads > 0 {
		return "", false
	}
	return op, true
}

func reductionBlocks(reds []reduction) []symbolic.Name {
	out := make([]symbolic.Name, len(reds))
	for i, rd := range reds {
		out[i] = symbolic.Name(rd.Var)
	}
	return out
}

// removeBlocks drops every triple touching one of the named blocks.
func removeBlocks(d descriptor.Descriptor, blocks []symbolic.Name) descriptor.Descriptor {
	drop := map[symbolic.Name]bool{}
	for _, b := range blocks {
		drop[b] = true
	}
	out := descriptor.Descriptor{}
	for _, t := range d.Reads {
		if !drop[t.Block] {
			out.AddRead(t)
		}
	}
	for _, t := range d.Writes {
		if !drop[t.Block] {
			out.AddWrite(t)
		}
	}
	return out
}

// guardIter attaches a predicate to every triple of an iteration
// descriptor.
func guardIter(d descriptor.Descriptor, p symbolic.Pred) descriptor.Descriptor {
	g := symbolic.Conj{p}
	out := descriptor.Descriptor{}
	for _, t := range d.Reads {
		out.AddRead(t.WithGuard(g))
	}
	for _, t := range d.Writes {
		out.AddWrite(t.WithGuard(g))
	}
	return out
}

// tryMaskComplement looks for a mask in d whose complement, imposed as
// an extra where-guard on the loop, removes all interference (the
// Figure 2 split of B into BI and BD).
func tryMaskComplement(r *analysis.Result, loop *source.Do, d descriptor.Descriptor, iter descriptor.Descriptor, iv symbolic.Name, ranges []symbolic.Range, ctx symbolic.Conj, reds []reduction, uniq *int) (*LoopSplit, bool) {
	for _, t := range append(append([]descriptor.Triple{}, d.Writes...), d.Reads...) {
		for _, dim := range t.Dims {
			if dim.Mask == nil {
				continue
			}
			// Candidate restriction: the mask's complement at iv.
			pos := dim.Mask.Instantiate(symbolic.Var(iv))
			neg := pos.Negate()

			indepDesc := descriptor.Promote(guardIter(iter, neg), iv, ranges)
			if descriptor.Interferes(indepDesc, d, ctx) {
				continue
			}
			negSrc, ok := predToSource(r, neg)
			if !ok {
				continue
			}
			posSrc, ok := predToSource(r, pos)
			if !ok {
				continue
			}

			li := source.CloneStmt(loop).(*source.Do)
			li.Where = andWhere(loop.Where, negSrc)
			ld := source.CloneStmt(loop).(*source.Do)
			ld.Where = andWhere(loop.Where, posSrc)

			ls := &LoopSplit{
				Independent:     []source.Stmt{li},
				Dependent:       []source.Stmt{ld},
				IndependentDesc: indepDesc,
				DependentDesc:   descriptor.Promote(guardIter(iter, pos), iv, ranges),
				Kind:            "mask",
			}
			applyReductions(r, loop, ls, reds, uniq)
			return ls, true
		}
	}
	return nil, false
}

// tryPointExclusion looks for a point index P in d such that excluding
// iteration iv = P removes all interference (the Figure 4 split,
// producing the paper's "do i = 1,a-1 and a+1,n" form).
func tryPointExclusion(r *analysis.Result, loop *source.Do, d descriptor.Descriptor, iter descriptor.Descriptor, iv symbolic.Name, ranges []symbolic.Range, ctx symbolic.Conj, reds []reduction, uniq *int) (*LoopSplit, bool) {
	if len(loop.Ranges) != 1 || len(ranges) != 1 || ranges[0].Skip != 1 {
		return nil, false
	}
	seen := map[string]bool{}
	for _, t := range append(append([]descriptor.Triple{}, d.Writes...), d.Reads...) {
		for _, dim := range t.Dims {
			p, isPoint := dim.IsPoint()
			if !isPoint || p.Uses(iv) || seen[p.String()] {
				continue
			}
			seen[p.String()] = true

			// Restricted iteration space: [lo, P-1] and [P+1, hi].
			lo, hi := ranges[0].Start, ranges[0].End
			restricted := []symbolic.Range{
				symbolic.NewRange(lo, p.AddConst(-1)),
				symbolic.NewRange(p.AddConst(1), hi),
			}
			indepDesc := descriptor.Promote(iter, iv, restricted)
			if descriptor.Interferes(indepDesc, d, ctx) {
				continue
			}
			pSrc, ok := exprToSource(r, p)
			if !ok {
				continue
			}
			pm1, ok1 := exprToSource(r, p.AddConst(-1))
			pp1, ok2 := exprToSource(r, p.AddConst(1))
			if !ok1 || !ok2 {
				continue
			}

			li := source.CloneStmt(loop).(*source.Do)
			li.Ranges = []source.DoRange{
				{Lo: source.CloneExpr(loop.Ranges[0].Lo), Hi: pm1},
				{Lo: pp1, Hi: source.CloneExpr(loop.Ranges[0].Hi)},
			}

			// Dependent part: the single iteration iv = P, guarded so it
			// executes only when P lies within the original bounds.
			ld := source.CloneStmt(loop).(*source.Do)
			ld.Ranges = []source.DoRange{{Lo: source.CloneExpr(pSrc), Hi: source.CloneExpr(pSrc)}}
			guard := &source.If{
				Cond: &source.Bin{
					Op: "&&",
					L:  &source.Bin{Op: ">=", L: source.CloneExpr(pSrc), R: source.CloneExpr(loop.Ranges[0].Lo)},
					R:  &source.Bin{Op: "<=", L: source.CloneExpr(pSrc), R: source.CloneExpr(loop.Ranges[0].Hi)},
				},
				Then: []source.Stmt{ld},
			}

			ls := &LoopSplit{
				Independent:     []source.Stmt{li},
				Dependent:       []source.Stmt{guard},
				IndependentDesc: indepDesc,
				DependentDesc:   descriptor.Promote(iter, iv, []symbolic.Range{symbolic.Point(p)}),
				Kind:            "exclude",
			}
			applyReductions(r, loop, ls, reds, uniq)
			return ls, true
		}
	}
	return nil, false
}

// applyReductions replicates each reduction variable into per-part
// copies, initializes them to the operator identity, renames the loop
// bodies, and emits the final merge (Figure 4: sum = sum1 + sum2).
func applyReductions(r *analysis.Result, loop *source.Do, ls *LoopSplit, reds []reduction, uniq *int) {
	for _, rd := range reds {
		*uniq++
		n1 := fmt.Sprintf("%s_i%d", rd.Var, *uniq)
		n2 := fmt.Sprintf("%s_d%d", rd.Var, *uniq)
		identity := int64(0)
		if rd.Op == "*" {
			identity = 1
		}
		decl := r.Program.Decl(rd.Var)
		typ := source.Real
		if decl != nil {
			typ = decl.Type
		}
		ls.NewDecls = append(ls.NewDecls,
			&source.Decl{Name: n1, Type: typ},
			&source.Decl{Name: n2, Type: typ})

		renameBlock(ls.Independent, rd.Var, n1)
		renameBlock(ls.Dependent, rd.Var, n2)
		ls.IndependentDesc = renameDescBlock(ls.IndependentDesc, rd.Var, n1)
		ls.DependentDesc = renameDescBlock(ls.DependentDesc, rd.Var, n2)

		// Initializations run before the parts; prepend them.
		init1 := &source.Assign{LHS: &source.Ident{Name: n1}, RHS: &source.Num{Int: identity}}
		init2 := &source.Assign{LHS: &source.Ident{Name: n2}, RHS: &source.Num{Int: identity}}
		ls.Independent = append([]source.Stmt{init1}, ls.Independent...)
		ls.Dependent = append([]source.Stmt{init2}, ls.Dependent...)
		ls.IndependentDesc.AddWrite(descriptor.ScalarTriple(symbolic.Name(n1)))
		ls.DependentDesc.AddWrite(descriptor.ScalarTriple(symbolic.Name(n2)))

		// Merge: v = (v op n1) op n2.
		merge := &source.Assign{
			LHS: &source.Ident{Name: rd.Var},
			RHS: &source.Bin{
				Op: rd.Op,
				L: &source.Bin{
					Op: rd.Op,
					L:  &source.Ident{Name: rd.Var},
					R:  &source.Ident{Name: n1},
				},
				R: &source.Ident{Name: n2},
			},
		}
		ls.Merge = append(ls.Merge, merge)
	}
}

// renameDescBlock renames a block throughout a descriptor.
func renameDescBlock(d descriptor.Descriptor, from, to string) descriptor.Descriptor {
	out := descriptor.Descriptor{}
	f, t := symbolic.Name(from), symbolic.Name(to)
	for _, tr := range d.Reads {
		if tr.Block == f {
			tr.Block = t
		}
		out.AddRead(tr)
	}
	for _, tr := range d.Writes {
		if tr.Block == f {
			tr.Block = t
		}
		out.AddWrite(tr)
	}
	return out
}
