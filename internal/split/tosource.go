package split

import (
	"sort"
	"strings"

	"orchestra/internal/analysis"
	"orchestra/internal/source"
	"orchestra/internal/symbolic"
)

// exprToSource converts a linear symbolic expression back to source
// syntax, mapping each SSA name to its program variable. It refuses
// names whose variable is synthetic (internal opaque temporaries).
func exprToSource(r *analysis.Result, e symbolic.Expr) (source.Expr, bool) {
	var out source.Expr
	names := e.Names()
	sort.Slice(names, func(i, j int) bool { return names[i] < names[j] })
	for _, n := range names {
		v, ok := varOf(r, n)
		if !ok {
			return nil, false
		}
		coef := e.Coef(n)
		var term source.Expr = &source.Ident{Name: v}
		if coef != 1 && coef != -1 {
			term = &source.Bin{Op: "*", L: &source.Num{Int: abs64(coef)}, R: term}
		}
		switch {
		case out == nil && coef < 0:
			out = &source.Un{Op: "-", X: term}
		case out == nil:
			out = term
		case coef < 0:
			out = &source.Bin{Op: "-", L: out, R: term}
		default:
			out = &source.Bin{Op: "+", L: out, R: term}
		}
	}
	c := e.ConstPart()
	switch {
	case out == nil:
		out = &source.Num{Int: c}
	case c > 0:
		out = &source.Bin{Op: "+", L: out, R: &source.Num{Int: c}}
	case c < 0:
		out = &source.Bin{Op: "-", L: out, R: &source.Num{Int: -c}}
	}
	return out, true
}

func abs64(x int64) int64 {
	if x < 0 {
		return -x
	}
	return x
}

// varOf maps an SSA name to its source variable name.
func varOf(r *analysis.Result, n symbolic.Name) (string, bool) {
	if d := r.SSA.Defs[n]; d != nil {
		if strings.HasPrefix(d.Var, "$") {
			return "", false
		}
		return d.Var, true
	}
	// Names without definitions are bare program identifiers (the
	// translator emits these for never-assigned variables).
	s := string(n)
	if s == "" || strings.ContainsAny(s, ".$*'") {
		return "", false
	}
	return s, true
}

// cmpToSourceOp maps a symbolic comparison to source syntax.
var cmpToSourceOp = map[symbolic.CmpOp]string{
	symbolic.EQ: "==",
	symbolic.NE: "!=",
	symbolic.LT: "<",
	symbolic.LE: "<=",
	symbolic.GT: ">",
	symbolic.GE: ">=",
}

// atomToSource converts a predicate atom to source syntax.
func atomToSource(r *analysis.Result, a symbolic.Atom) (source.Expr, bool) {
	if !a.IsElem() {
		return exprToSource(r, a.E)
	}
	ref := &source.ArrayRef{Name: string(a.Array)}
	for _, ix := range a.Index {
		x, ok := exprToSource(r, ix)
		if !ok {
			return nil, false
		}
		ref.Index = append(ref.Index, x)
	}
	return ref, true
}

// predToSource converts a predicate to a boolean source expression.
func predToSource(r *analysis.Result, p symbolic.Pred) (source.Expr, bool) {
	l, okL := atomToSource(r, p.Lhs)
	rhs, okR := atomToSource(r, p.Rhs)
	if !okL || !okR {
		return nil, false
	}
	return &source.Bin{Op: cmpToSourceOp[p.Op], L: l, R: rhs}, true
}

// conjToSource renders a conjunction as a chain of &&.
func conjToSource(r *analysis.Result, c symbolic.Conj) (source.Expr, bool) {
	var out source.Expr
	for _, p := range c {
		e, ok := predToSource(r, p)
		if !ok {
			return nil, false
		}
		if out == nil {
			out = e
		} else {
			out = &source.Bin{Op: "&&", L: out, R: e}
		}
	}
	return out, out != nil
}

// andWhere conjoins an extra condition onto a loop's where clause.
func andWhere(existing, extra source.Expr) source.Expr {
	if existing == nil {
		return extra
	}
	return &source.Bin{Op: "&&", L: source.CloneExpr(existing), R: extra}
}

// renameBlock rewrites every reference to array `from` into `to`
// throughout a statement list (used for reduction replication and
// privatization). The statements must already be private clones.
func renameBlock(ss []source.Stmt, from, to string) {
	var fixExpr func(e source.Expr)
	fixExpr = func(e source.Expr) {
		source.WalkExpr(e, func(x source.Expr) {
			switch x := x.(type) {
			case *source.ArrayRef:
				if x.Name == from {
					x.Name = to
				}
			case *source.Ident:
				if x.Name == from {
					x.Name = to
				}
			}
		})
	}
	source.WalkStmts(ss, func(s source.Stmt) {
		switch s := s.(type) {
		case *source.Assign:
			fixExpr(s.LHS)
			fixExpr(s.RHS)
		case *source.Do:
			for _, rg := range s.Ranges {
				fixExpr(rg.Lo)
				fixExpr(rg.Hi)
				fixExpr(rg.Step)
			}
			fixExpr(s.Where)
		case *source.If:
			fixExpr(s.Cond)
		case *source.CallStmt:
			for _, a := range s.Args {
				fixExpr(a)
			}
		}
	})
}
