package split

import (
	"fmt"

	"orchestra/internal/analysis"
	"orchestra/internal/descriptor"
	"orchestra/internal/source"
	"orchestra/internal/symbolic"
)

// PipelineResult is the outcome of the pipelining application of split
// (§3.3.2, Figure 3): the loop body divided into an independent part AI
// (schedulable concurrently with the previous iteration), a dependent
// part AD (must wait for the previous iteration), and a merge part AM
// (runs after AI and AD of the same iteration).
type PipelineResult struct {
	Loop *source.Do

	AI []source.Stmt
	AD []source.Stmt
	AM []source.Stmt

	// Privatized maps original array names to their per-iteration
	// replacements (Figure 3's result → result1).
	Privatized map[string]string
	// NewDecls declares privatized arrays and replicated reduction
	// variables.
	NewDecls []*source.Decl
	// Depth is the pipelining depth: AI is independent of iterations
	// i-1 … i-Depth.
	Depth int
	// LoopSplits counts inner loops whose iterations were divided.
	LoopSplits int
}

// Applied reports whether pipelining exposed concurrency: a non-empty
// AI alongside dependent work.
func (p *PipelineResult) Applied() bool {
	return len(p.AI) > 0 && (len(p.AD) > 0 || len(p.AM) > 0)
}

// Pipeline applies split to the body of loop against the descriptor of
// its previous iteration. depth 1 pipelines against iteration i-1;
// larger depths compute the descriptor for iteration i-depth (§3.3.2:
// "if deeper pipelining is desired, the descriptor for iteration i-2
// can be computed, etc.").
func Pipeline(r *analysis.Result, loop *source.Do, depth int, opts Options) (*PipelineResult, bool) {
	if depth < 1 {
		depth = 1
	}
	iter, iv := r.DescribeIteration(loop)
	ind := r.SSA.Defs[iv]
	if ind == nil || len(ind.Ranges) == 0 {
		return nil, false
	}

	res := &PipelineResult{Loop: loop, Privatized: map[string]string{}, Depth: depth}

	// Privatization: arrays written before read within one iteration
	// whose accesses collide across iterations are replicated
	// per-iteration, removing the false inter-iteration dependence
	// (Figure 3 renames result to result1).
	shifted := descriptor.ShiftIteration(iter, iv, int64(depth))
	privCount := 0
	for _, block := range analysis.WrittenBeforeRead(iter) {
		decl := r.Program.Decl(string(block))
		if decl == nil || !decl.IsArray() {
			continue // only arrays are privatized here
		}
		only := keepBlock(iter, block)
		onlyPrev := keepBlock(shifted, block)
		if !descriptor.Interferes(only, onlyPrev, nil) {
			continue // no cross-iteration collision; leave it alone
		}
		privCount++
		newName := fmt.Sprintf("%s%d", block, privCount)
		res.Privatized[string(block)] = newName
		nd := &source.Decl{Name: newName, Type: decl.Type, Dims: decl.Dims}
		res.NewDecls = append(res.NewDecls, nd)
	}

	// The previous iteration's descriptor: privatized blocks are
	// iteration-local, so they disappear from the cross-iteration
	// interference target.
	var privNames []symbolic.Name
	for b := range res.Privatized {
		privNames = append(privNames, symbolic.Name(b))
	}
	dPrev := descriptor.ShiftIteration(removeBlocks(iter, privNames), iv, int64(depth))

	// Split the body primitives against the previous iteration, with
	// privatized blocks renamed in their descriptors.
	prims := Decompose(r, loop.Body)
	for i := range prims {
		for from, to := range res.Privatized {
			prims[i].Desc = renameDescBlock(prims[i].Desc, from, to)
		}
	}
	ctx := r.SSA.BodyCtx[loop]
	opts.BlockRenames = res.Privatized
	inner := splitPrims(r, prims, dPrev, ctx, opts)
	res.LoopSplits = inner.LoopSplits
	res.NewDecls = append(res.NewDecls, inner.NewDecls...)

	// AI is the independent part; AD the dependent part (waits for the
	// previous iteration); AM the merge part (consumers of AI values
	// plus reduction merges), which runs after AI and AD.
	res.AI = inner.Independent
	res.AD = inner.Dependent
	res.AM = inner.Merge

	// Apply privatization renames to the generated code.
	for from, to := range res.Privatized {
		renameBlock(res.AI, from, to)
		renameBlock(res.AD, from, to)
		renameBlock(res.AM, from, to)
	}
	if !res.Applied() {
		return nil, false
	}
	return res, true
}

// keepBlock retains only the triples of one block.
func keepBlock(d descriptor.Descriptor, block symbolic.Name) descriptor.Descriptor {
	out := descriptor.Descriptor{}
	for _, t := range d.Reads {
		if t.Block == block {
			out.AddRead(t)
		}
	}
	for _, t := range d.Writes {
		if t.Block == block {
			out.AddWrite(t)
		}
	}
	return out
}
