package split

import "testing"

func TestChainable(t *testing.T) {
	cases := []struct {
		name       string
		prod, cons *Annotation
		want       bool
	}{
		{"pointwise-pointwise", Pointwise(), Pointwise(), true},
		{"pointwise-stencil", Pointwise(), Stencil(1), true},
		{"pointwise-reduction", Pointwise(), Reduction(), true},
		{"reduction-producer", Reduction(), Pointwise(), false},
		{"all-consumer", Pointwise(), &Annotation{Read: AccessAll, Write: AccessElement}, false},
		{"nil-prod", nil, Pointwise(), false},
		{"nil-cons", Pointwise(), nil, false},
		{"zero-value", &Annotation{}, &Annotation{}, false},
	}
	for _, c := range cases {
		if got := Chainable(c.prod, c.cons); got != c.want {
			t.Errorf("%s: Chainable = %v, want %v", c.name, got, c.want)
		}
	}
}

func TestReadSpanClamps(t *testing.T) {
	s := Stencil(2)
	if lo, hi := s.ReadSpan(0, 8, 100); lo != 0 || hi != 10 {
		t.Errorf("stencil span at origin = [%d,%d), want [0,10)", lo, hi)
	}
	if lo, hi := s.ReadSpan(96, 100, 100); lo != 94 || hi != 100 {
		t.Errorf("stencil span at end = [%d,%d), want [94,100)", lo, hi)
	}
	p := Pointwise()
	if lo, hi := p.ReadSpan(8, 16, 100); lo != 8 || hi != 16 {
		t.Errorf("pointwise span = [%d,%d), want [8,16)", lo, hi)
	}
}

func TestStencilNegativeHalo(t *testing.T) {
	if s := Stencil(-3); s.Halo != 0 {
		t.Errorf("negative halo kept: %d", s.Halo)
	}
	if ChainHalo(Stencil(4)) != 4 || ChainHalo(Pointwise()) != 0 || ChainHalo(nil) != 0 {
		t.Error("ChainHalo resolution wrong")
	}
}
