package split

import (
	"strings"
	"testing"

	"orchestra/internal/analysis"
	"orchestra/internal/descriptor"
	"orchestra/internal/source"
)

// figure1 is the paper's running example (Figures 1–3): loop A updates
// masked columns of q; loop B consumes q into output.
const figure1 = `
program sample
  integer n
  integer mask(n)
  real result(n), q(n, n), output(n, n), w(n)

  do col = 1, n where (mask(col) != 0)
    do i = 1, n
      result(i) = 0
      do j = 1, n
        result(i) = result(i) + q(j, i) * w(j)
      end do
    end do
    do i = 1, n
      q(i, col) = result(i)
    end do
  end do

  do i = 1, n
    do j = 1, n
      output(j, i) = f(q(j, i))
    end do
  end do
end
`

// figure4 is the paper's simple split example: G updates column a of X;
// H sums all of X.
const figure4 = `
program fig4
  integer n, a
  real x(n, n), y(n), sum

  do i = 1, n
    x(a, i) = x(a, i) + y(i)
  end do

  do i = 1, n
    do j = 1, n
      sum = sum + x(i, j)
    end do
  end do
end
`

func analyze(t *testing.T, src string) *analysis.Result {
	t.Helper()
	p, err := source.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return analysis.Analyze(p)
}

func TestDecompose(t *testing.T) {
	r := analyze(t, `
program p
  integer a, b, n
  real x(n)
  a = 1
  b = 2
  do i = 1, n
    x(i) = 0
  end do
  a = 3
  call f(a)
  b = 4
end
`)
	prims := Decompose(r, r.Program.Body)
	// run(a=1,b=2), loop, run(a=3), call, run(b=4)
	if len(prims) != 5 {
		t.Fatalf("prims = %d, want 5", len(prims))
	}
	if len(prims[0].Stmts) != 2 || prims[0].IsLoop {
		t.Fatalf("prim 0 = %+v", prims[0])
	}
	if !prims[1].IsLoop {
		t.Fatal("prim 1 should be a loop")
	}
	if prims[1].Loop() == nil {
		t.Fatal("Loop() nil for loop prim")
	}
	if prims[0].Loop() != nil {
		t.Fatal("Loop() non-nil for block prim")
	}
}

func TestCategorizeFigure5(t *testing.T) {
	// The paper's Figure 5 structure, expressed with arrays:
	//   W writes x (the split target descriptor).
	//   B reads x, writes sum            -> Bound
	//   A writes y (used by B and C)     -> GenerateLinked
	//   C reads y, writes c              -> ReadLinked
	//   D reads sum, writes d            -> NeedsBound
	//   E writes e (unrelated)           -> Free
	r := analyze(t, `
program fig5
  integer n
  real x(n), y(n), c(n), d(n), e(n), sum

  do i = 1, n
    y(i) = f(i)
  end do
  sum = 0
  do i = 1, n
    sum = sum + x(i) * y(i)
  end do
  do i = 1, n
    c(i) = y(i) * 2
  end do
  do i = 1, n
    d(i) = sum
  end do
  do i = 1, n
    e(i) = 7
  end do
end
`)
	// W's descriptor: writes all of x.
	var w descriptor.Descriptor
	w.AddWrite(descriptor.ScalarTriple("x"))

	prims := Decompose(r, r.Program.Body)
	cats := Categorize(prims, w, nil)

	// prims: [loop y] [sum=0] [loop sum] [loop c] [loop d] [loop e]
	if len(prims) != 6 {
		t.Fatalf("prims = %d", len(prims))
	}
	want := []Category{GenerateLinked, GenerateLinked, Bound, ReadLinked, NeedsBound, Free}
	for i, c := range cats {
		if c != want[i] {
			t.Errorf("prim %d: %v, want %v", i, c, want[i])
		}
	}
}

func TestCategorizeAllFree(t *testing.T) {
	r := analyze(t, `
program p
  integer n
  real a(n), b(n)
  do i = 1, n
    a(i) = 1
  end do
  do i = 1, n
    b(i) = 2
  end do
end
`)
	var d descriptor.Descriptor
	d.AddWrite(descriptor.ScalarTriple("z"))
	prims := Decompose(r, r.Program.Body)
	for i, c := range Categorize(prims, d, nil) {
		if c != Free {
			t.Errorf("prim %d: %v, want Free", i, c)
		}
	}
}

func TestTransitiveChainLinked(t *testing.T) {
	// a -> b -> c -> target: the whole chain is Linked, discovered via
	// iteration to fixpoint.
	r := analyze(t, `
program p
  integer n
  real x(n), a(n), b(n), c(n)
  do i = 1, n
    a(i) = 1
  end do
  do i = 1, n
    b(i) = a(i)
  end do
  do i = 1, n
    c(i) = b(i)
  end do
  do i = 1, n
    x(i) = c(i)
  end do
end
`)
	var d descriptor.Descriptor
	d.AddRead(descriptor.ScalarTriple("x"))
	prims := Decompose(r, r.Program.Body)
	cats := Categorize(prims, d, nil)
	if cats[3] != Bound {
		t.Fatalf("x-writer = %v, want Bound", cats[3])
	}
	for i := 0; i < 3; i++ {
		if cats[i] == Free || cats[i] == Bound {
			t.Errorf("prim %d = %v, want a Linked category", i, cats[i])
		}
	}
}

func TestFigure4SplitWithReduction(t *testing.T) {
	r := analyze(t, figure4)
	g := r.Program.Body[0].(*source.Do)
	h := r.Program.Body[1].(*source.Do)
	dg := r.DescribeLoop(g)

	res := Split(r, []source.Stmt{h}, dg, nil, DefaultOptions())
	if !res.Applied() {
		t.Fatalf("split not applied; cats=%v", res.Categories)
	}
	if res.LoopSplits != 1 {
		t.Fatalf("loop splits = %d", res.LoopSplits)
	}
	// The independent loop must exclude column a:
	// "do i = 1, a - 1 and a + 1, n".
	ci := source.FormatStmts(res.Independent, 0)
	if !strings.Contains(ci, "a - 1 and a + 1, n") {
		t.Fatalf("independent part:\n%s", ci)
	}
	// The reduction variable must be replicated and merged.
	if len(res.Merge) == 0 {
		t.Fatal("no merge statements")
	}
	merge := source.FormatStmts(res.Merge, 0)
	if !strings.Contains(merge, "sum = ") {
		t.Fatalf("merge:\n%s", merge)
	}
	if len(res.NewDecls) != 2 {
		t.Fatalf("new decls = %d, want 2 replicated scalars", len(res.NewDecls))
	}
	// The independent part must not interfere with G.
	if descriptor.Interferes(res.IndependentDesc, dg, nil) {
		t.Fatalf("CI still interferes with G:\n%s", res.IndependentDesc)
	}
	// The dependent part handles exactly iteration a, under a bounds
	// guard.
	cd := source.FormatStmts(res.Dependent, 0)
	if !strings.Contains(cd, "if (a >= 1 && a <= n)") {
		t.Fatalf("dependent part:\n%s", cd)
	}
}

func TestFigure2MaskSplit(t *testing.T) {
	r := analyze(t, figure1)
	loopA := r.Program.Body[0].(*source.Do)
	loopB := r.Program.Body[1].(*source.Do)
	dA := r.DescribeLoop(loopA)

	res := Split(r, []source.Stmt{loopB}, dA, nil, DefaultOptions())
	if !res.Applied() {
		t.Fatalf("split not applied; cats=%v\ndA:\n%s", res.Categories, dA)
	}
	ci := source.FormatStmts(res.Independent, 0)
	cd := source.FormatStmts(res.Dependent, 0)
	// BI processes columns the mask excludes; BD the rest.
	if !strings.Contains(ci, "mask(i) == 0") {
		t.Fatalf("BI:\n%s", ci)
	}
	if !strings.Contains(cd, "mask(i) != 0") {
		t.Fatalf("BD:\n%s", cd)
	}
	// BI must not interfere with A.
	if descriptor.Interferes(res.IndependentDesc, dA, nil) {
		t.Fatalf("BI interferes with A:\n%s", res.IndependentDesc)
	}
}

func TestFigure3Pipeline(t *testing.T) {
	r := analyze(t, figure1)
	loopA := r.Program.Body[0].(*source.Do)

	res, ok := Pipeline(r, loopA, 1, DefaultOptions())
	if !ok {
		t.Fatal("pipeline not applied")
	}
	// result must be privatized (Figure 3's result1).
	if res.Privatized["result"] == "" {
		t.Fatalf("result not privatized: %v", res.Privatized)
	}
	ai := source.FormatStmts(res.AI, 0)
	ad := source.FormatStmts(res.AD, 0)
	am := source.FormatStmts(res.AM, 0)

	// AI computes all but the column written by the previous iteration:
	// "do i = 1, col - 1 - 1 and col - 1 + 1, n" (col-2 and col in the
	// paper's hand-simplified form).
	if !strings.Contains(ai, "and") || !strings.Contains(ai, "col") {
		t.Fatalf("AI:\n%s", ai)
	}
	if !strings.Contains(ai, res.Privatized["result"]) {
		t.Fatalf("AI does not use privatized array:\n%s", ai)
	}
	// AD computes the missing column (the previous iteration's).
	if !strings.Contains(ad, "col - 1") {
		t.Fatalf("AD:\n%s", ad)
	}
	// AM writes q from the privatized results.
	if !strings.Contains(am, "q(") {
		t.Fatalf("AM:\n%s", am)
	}
	if res.LoopSplits != 1 {
		t.Fatalf("inner loop splits = %d", res.LoopSplits)
	}
}

func TestPipelineDepth2(t *testing.T) {
	r := analyze(t, figure1)
	loopA := r.Program.Body[0].(*source.Do)
	res, ok := Pipeline(r, loopA, 2, DefaultOptions())
	if !ok {
		t.Fatal("depth-2 pipeline not applied")
	}
	ad := source.FormatStmts(res.AD, 0)
	if !strings.Contains(ad, "col - 2") {
		t.Fatalf("AD should reference col-2:\n%s", ad)
	}
	if res.Depth != 2 {
		t.Fatalf("depth = %d", res.Depth)
	}
}

func TestPipelineIndependentLoopNotNeeded(t *testing.T) {
	// A loop with fully independent iterations: nothing depends on the
	// previous iteration, so everything is independent and pipelining
	// reports no split (there is no dependent part).
	r := analyze(t, `
program p
  integer n
  real x(n)
  do i = 1, n
    x(i) = f(i)
  end do
end
`)
	loop := r.Program.Body[0].(*source.Do)
	if _, ok := Pipeline(r, loop, 1, DefaultOptions()); ok {
		t.Fatal("pipeline applied to an independent loop")
	}
}

func TestSplitNothingToDo(t *testing.T) {
	// C entirely Bound: split produces no independent part.
	r := analyze(t, `
program p
  integer n
  real x(n)
  do i = 1, n
    x(i) = x(i) + 1
  end do
end
`)
	var d descriptor.Descriptor
	d.AddWrite(descriptor.ScalarTriple("x"))
	res := Split(r, r.Program.Body, d, nil, DefaultOptions())
	if res.Applied() {
		t.Fatal("split applied with nothing independent")
	}
	if len(res.Independent) != 0 {
		t.Fatalf("independent = %v", res.Independent)
	}
}

func TestSplitPreservesOriginal(t *testing.T) {
	r := analyze(t, figure4)
	before := source.Format(r.Program)
	g := r.Program.Body[0].(*source.Do)
	h := r.Program.Body[1].(*source.Do)
	_ = Split(r, []source.Stmt{h}, r.DescribeLoop(g), nil, DefaultOptions())
	if source.Format(r.Program) != before {
		t.Fatal("split mutated the original program")
	}
}

func TestReadLinkedMoveHeuristic(t *testing.T) {
	// A cheap generator feeding an expensive ReadLinked consumer: the
	// heuristic should replicate the generator and move the consumer.
	r := analyze(t, `
program p
  integer n, k
  real x(n), y(n), c(n), sum
  k = n - 1
  sum = 0
  do i = 1, n
    sum = sum + x(i)
  end do
  do i = 1, n
    c(i) = f(k) + g(k) + h(k) + f(k + 1) + g(k + 1) + h(k + 1)
  end do
end
`)
	var d descriptor.Descriptor
	d.AddWrite(descriptor.ScalarTriple("x"))

	// Without moving: c's loop reads k, which is written by the block
	// that also writes sum... k=n-1 and sum=0 are one basic block, and
	// sum's loop is Bound, so the block is GenerateLinked, making the
	// c loop ReadLinked.
	res := Split(r, r.Program.Body, d, nil, DefaultOptions())
	if res.MovedReadLinked == 0 {
		t.Fatalf("ReadLinked not moved; cats=%v", res.Categories)
	}
	ci := source.FormatStmts(res.Independent, 0)
	if !strings.Contains(ci, "c(i)") {
		t.Fatalf("c loop not in CI:\n%s", ci)
	}
	// The generator (k = n-1) must be replicated into CI.
	if !strings.Contains(ci, "k = n - 1") {
		t.Fatalf("generator not replicated:\n%s", ci)
	}

	// With the heuristic disabled, the consumer stays dependent.
	off := DefaultOptions()
	off.MoveReadLinked = false
	res2 := Split(r, r.Program.Body, d, nil, off)
	if res2.MovedReadLinked != 0 {
		t.Fatal("heuristic ran while disabled")
	}
	ci2 := source.FormatStmts(res2.Independent, 0)
	if strings.Contains(ci2, "c(i)") {
		t.Fatalf("c loop moved with heuristic off:\n%s", ci2)
	}
}

func TestDetectReductions(t *testing.T) {
	r := analyze(t, `
program p
  integer n
  real x(n), sum, prod, bad
  do i = 1, n
    sum = sum + x(i)
    prod = prod * 2
    bad = bad + sum
  end do
end
`)
	loop := r.Program.Body[0].(*source.Do)
	// bad = bad + sum reads another carried scalar: reductionOp(bad)
	// succeeds syntactically (sum is not bad), but sum is read outside
	// its own update, so sum fails.
	_, ok := detectReductions(r, loop)
	if ok {
		t.Fatal("sum read by bad's update should disqualify")
	}
}

func TestDetectSimpleReductions(t *testing.T) {
	r := analyze(t, `
program p
  integer n
  real x(n), sum, prod
  do i = 1, n
    sum = sum + x(i)
    prod = prod * x(i)
  end do
end
`)
	loop := r.Program.Body[0].(*source.Do)
	reds, ok := detectReductions(r, loop)
	if !ok || len(reds) != 2 {
		t.Fatalf("reds = %v ok=%v", reds, ok)
	}
	ops := map[string]string{}
	for _, rd := range reds {
		ops[rd.Var] = rd.Op
	}
	if ops["sum"] != "+" || ops["prod"] != "*" {
		t.Fatalf("ops = %v", ops)
	}
}

func TestNonReductionCarriedScalarBlocksSplit(t *testing.T) {
	// s = s - x(i) is not recognized (subtraction is not associative in
	// our recognizer), so iteration splitting must refuse.
	r := analyze(t, `
program p
  integer n, a
  real x(n, n), y(n), s

  do i = 1, n
    x(a, i) = y(i)
  end do
  do i = 1, n
    s = s - x(1, i)
  end do
end
`)
	g := r.Program.Body[0].(*source.Do)
	h := r.Program.Body[1].(*source.Do)
	res := Split(r, []source.Stmt{h}, r.DescribeLoop(g), nil, DefaultOptions())
	if res.LoopSplits != 0 {
		t.Fatal("split accepted a non-associative carried update")
	}
}

func TestOpCount(t *testing.T) {
	r := analyze(t, `
program p
  integer a, b
  a = b + 1
  a = f(b) * 2 - 3
end
`)
	n := opCount(r.Program.Body)
	if n < 5 {
		t.Fatalf("opCount = %d, too small", n)
	}
}

func TestExprToSource(t *testing.T) {
	r := analyze(t, `
program p
  integer n, col, k
  k = col - 1
  k = k + n
end
`)
	st := r.Program.Body[1].(*source.Assign)
	env := r.SSA.AtStmt[st]
	sym, ok := r.SSA.TranslateExpr(st.RHS, env)
	if !ok {
		t.Fatal("translate failed")
	}
	// k + n inlines k = col-1, giving col + n - 1.
	back, ok := exprToSource(r, sym)
	if !ok {
		t.Fatal("exprToSource failed")
	}
	got := source.FormatExpr(back)
	if got != "-1 + col + n" && got != "col + n - 1" {
		t.Fatalf("round trip = %q", got)
	}
}
