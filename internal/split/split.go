package split

import (
	"orchestra/internal/analysis"
	"orchestra/internal/descriptor"
	"orchestra/internal/source"
	"orchestra/internal/symbolic"
)

// Options tunes the transformation.
type Options struct {
	// MoveReadLinked enables the ReadLinked heuristic (§3.3.1): a
	// ReadLinked computation moves to the independent set when the
	// operations that must be replicated fall below
	// ReplicationThreshold and the computation is expensive enough
	// (Weight above WeightThreshold).
	MoveReadLinked       bool
	ReplicationThreshold int
	// Weight estimates the execution cost of a primitive (a stand-in
	// for the paper's profile data). Nil means count arithmetic
	// operations syntactically.
	Weight          func(Prim) float64
	WeightThreshold float64
	// BlockRenames maps array names to replacements already applied to
	// the primitives' descriptors by the caller (the pipeline
	// transformation's privatization); loop-split descriptors are
	// renamed consistently.
	BlockRenames map[string]string
}

// DefaultOptions mirror the implementation the paper describes.
func DefaultOptions() Options {
	return Options{
		MoveReadLinked:       true,
		ReplicationThreshold: 64,
		WeightThreshold:      8,
	}
}

// Result is the outcome of splitting a computation C against a
// descriptor D: the three output computations CI, CD, CM.
type Result struct {
	// Independent (CI) does not interfere with D and may execute
	// concurrently with the computation D summarizes.
	Independent []source.Stmt
	// Dependent (CD) must respect the original ordering with respect
	// to D's computation.
	Dependent []source.Stmt
	// Merge (CM) runs after both CI and CD (reduction merges and
	// replicated post-processing).
	Merge []source.Stmt
	// NewDecls declares replicated scalars and privatized arrays the
	// transformation introduced.
	NewDecls []*source.Decl
	// IndependentDesc and DependentDesc summarize the two parts.
	IndependentDesc descriptor.Descriptor
	DependentDesc   descriptor.Descriptor
	// IndependentPrims and DependentPrims expose the per-primitive
	// partition (with descriptors) for callers, such as the pipeline
	// transformation, that route primitives further.
	IndependentPrims []Prim
	DependentPrims   []Prim
	// Categories records the categorization of the (post-loop-split)
	// primitives, for inspection and testing.
	Categories []Category
	// LoopSplits counts Bound loops whose iterations were divided.
	LoopSplits int
	// MovedReadLinked counts ReadLinked primitives moved to CI.
	MovedReadLinked int
}

// Applied reports whether the transformation exposed any concurrency:
// a non-empty independent part alongside a dependent part.
func (res *Result) Applied() bool {
	return len(res.Independent) > 0 && len(res.Dependent) > 0
}

// Split divides computation C (a statement list already analyzed as
// part of r's program) against descriptor d. ctx holds predicates known
// to hold where C executes.
func Split(r *analysis.Result, c []source.Stmt, d descriptor.Descriptor, ctx symbolic.Conj, opts Options) *Result {
	prims := Decompose(r, c)
	return splitPrims(r, prims, d, ctx, opts)
}

// splitPrims runs the categorize → loop-split → recategorize → assign
// pipeline over an explicit primitive list.
func splitPrims(r *analysis.Result, prims []Prim, d descriptor.Descriptor, ctx symbolic.Conj, opts Options) *Result {
	res := &Result{}
	uniq := 0

	cats := Categorize(prims, d, ctx)

	// Attempt to split the iterations of each Bound loop; replace a
	// split loop by its two halves and recategorize. The independent
	// half was separated precisely to move to CI; forceCI records that.
	var work []Prim
	forceCI := map[int]bool{}
	var reductionMerges []source.Stmt
	merged := false
	for i, p := range prims {
		if cats[i] == Bound && p.IsLoop {
			if ls, ok := trySplitLoopIterations(r, p.Loop(), d, ctx, &uniq); ok {
				indDesc, depDesc := ls.IndependentDesc, ls.DependentDesc
				for from, to := range opts.BlockRenames {
					indDesc = renameDescBlock(indDesc, from, to)
					depDesc = renameDescBlock(depDesc, from, to)
				}
				forceCI[len(work)] = true
				work = append(work,
					Prim{Stmts: ls.Independent, Desc: indDesc},
					Prim{Stmts: ls.Dependent, Desc: depDesc})
				reductionMerges = append(reductionMerges, ls.Merge...)
				res.NewDecls = append(res.NewDecls, ls.NewDecls...)
				res.LoopSplits++
				merged = true
				continue
			}
		}
		work = append(work, p)
	}
	if merged {
		cats = Categorize(work, d, ctx)
	} else {
		work = prims
	}
	res.Categories = cats

	// ReadLinked heuristic: move a ReadLinked primitive to CI when its
	// generator closure is cheap to replicate and the computation is
	// expensive enough to justify it.
	moveToCI := map[int]bool{}
	replicate := map[int]bool{}
	if opts.MoveReadLinked {
		weight := opts.Weight
		if weight == nil {
			weight = func(p Prim) float64 { return float64(opCount(p.Stmts)) }
		}
		for i, cat := range cats {
			if cat != ReadLinked {
				continue
			}
			gens := generatorClosure(work, i, ctx)
			cost := 0
			for _, g := range gens {
				cost += opCount(work[g].Stmts)
			}
			if cost <= opts.ReplicationThreshold && weight(work[i]) >= opts.WeightThreshold {
				moveToCI[i] = true
				for _, g := range gens {
					replicate[g] = true
				}
				res.MovedReadLinked++
			}
		}
	}

	// CI membership: Free primitives, forced loop halves, and moved
	// ReadLinked computations.
	inCI := map[int]bool{}
	for i := range work {
		if cats[i] == Free || forceCI[i] || moveToCI[i] {
			inCI[i] = true
		}
	}

	// CM membership: remaining primitives that rely on values now
	// computed in CI ("CD holds the rest of C, except for those
	// sub-computations that rely on values now computed in CI; the
	// remaining sub-computations ... are put into CM"). Values may flow
	// through other CM members, so iterate to a fixpoint.
	inCM := map[int]bool{}
	sources := append([]int{}, indicesOf(inCI)...)
	for changed := true; changed; {
		changed = false
		for i := range work {
			if inCI[i] || inCM[i] {
				continue
			}
			for _, s := range sources {
				// The work list is in program order (loop halves sit at
				// the original loop's position), so s < i gates flow.
				if s < i && descriptor.FlowInterferes(work[s].Desc, work[i].Desc, ctx) {
					inCM[i] = true
					sources = append(sources, i)
					changed = true
					break
				}
			}
		}
	}

	// Assemble the three parts in original program order. Reduction
	// merges precede CM primitives so merged scalars are final before
	// any CM consumer runs.
	res.Merge = append(res.Merge, reductionMerges...)
	for i, p := range work {
		cl := Prim{Stmts: source.CloneStmts(p.Stmts), Desc: p.Desc}
		switch {
		case inCI[i]:
			res.Independent = append(res.Independent, cl.Stmts...)
			res.IndependentDesc.Merge(p.Desc)
			res.IndependentPrims = append(res.IndependentPrims, cl)
			if replicate[i] {
				// Replicated generators also stay in CD for their
				// original consumers.
				cd := Prim{Stmts: source.CloneStmts(p.Stmts), Desc: p.Desc}
				res.Dependent = append(res.Dependent, cd.Stmts...)
				res.DependentDesc.Merge(p.Desc)
				res.DependentPrims = append(res.DependentPrims, cd)
			}
		case inCM[i]:
			res.Merge = append(res.Merge, cl.Stmts...)
		default:
			res.Dependent = append(res.Dependent, cl.Stmts...)
			res.DependentDesc.Merge(p.Desc)
			res.DependentPrims = append(res.DependentPrims, cl)
			if replicate[i] {
				ci := Prim{Stmts: source.CloneStmts(p.Stmts), Desc: p.Desc}
				res.Independent = append(res.Independent, ci.Stmts...)
				res.IndependentDesc.Merge(p.Desc)
				res.IndependentPrims = append(res.IndependentPrims, ci)
			}
		}
	}
	return res
}

// indicesOf returns the keys of a set in ascending order.
func indicesOf(set map[int]bool) []int {
	var out []int
	for i := range set {
		out = append(out, i)
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// generatorClosure returns the indices of primitives from which prim i
// has a transitive flow interference — the computations that must be
// replicated to move i (§3.3.1: "every computation s from which r has a
// transitive flow interference must also be put in that set").
func generatorClosure(prims []Prim, i int, ctx symbolic.Conj) []int {
	var out []int
	inSet := map[int]bool{i: true}
	changed := true
	for changed {
		changed = false
		for j := range prims {
			if inSet[j] || j >= i {
				continue
			}
			for k := range inSet {
				if descriptor.FlowInterferes(prims[j].Desc, prims[k].Desc, ctx) {
					inSet[j] = true
					out = append(out, j)
					changed = true
					break
				}
			}
		}
	}
	return out
}

// opCount estimates the operation count of a statement list: the
// number of arithmetic and comparison nodes, with loop bodies weighted
// by a nominal trip factor when bounds are unknown.
func opCount(ss []source.Stmt) int {
	total := 0
	var exprOps func(e source.Expr) int
	exprOps = func(e source.Expr) int {
		n := 0
		source.WalkExpr(e, func(x source.Expr) {
			switch x.(type) {
			case *source.Bin, *source.Un, *source.FuncCall:
				n++
			}
		})
		return n
	}
	source.WalkStmts(ss, func(s source.Stmt) {
		switch s := s.(type) {
		case *source.Assign:
			total += 1 + exprOps(s.RHS) + exprOps(s.LHS)
		case *source.If:
			total += exprOps(s.Cond)
		case *source.Do:
			total += 2 // loop control
		case *source.CallStmt:
			total += 4
		}
	})
	return total
}
