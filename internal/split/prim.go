// Package split implements the split transformation (§3.3): dividing a
// computation C into an independent part CI, a dependent part CD, and a
// merging part CM with respect to the symbolic data descriptor of
// another computation, together with the pipelining application of
// split that weakens the synchronization between loop iterations
// (§3.3.2, Figure 3).
package split

import (
	"orchestra/internal/analysis"
	"orchestra/internal/descriptor"
	"orchestra/internal/source"
)

// Prim is a primitive computation: the unit managed by the
// transformation. The paper chooses "basic blocks, function calls, and
// loops as primitive computations"; maximal runs of assignments form
// one basic block.
type Prim struct {
	Stmts []source.Stmt
	Desc  descriptor.Descriptor
	// IsLoop reports whether the primitive is a single do-loop, the
	// case where iteration splitting may apply.
	IsLoop bool
}

// Loop returns the loop statement of a loop primitive.
func (p Prim) Loop() *source.Do {
	if !p.IsLoop {
		return nil
	}
	return p.Stmts[0].(*source.Do)
}

// Decompose subdivides a statement list into primitive computations and
// summarizes each with a descriptor.
func Decompose(r *analysis.Result, stmts []source.Stmt) []Prim {
	var prims []Prim
	var run []source.Stmt // current basic-block run

	flush := func() {
		if len(run) == 0 {
			return
		}
		prims = append(prims, Prim{Stmts: run, Desc: r.DescribeStmts(run)})
		run = nil
	}
	for _, s := range stmts {
		switch s := s.(type) {
		case *source.Assign:
			run = append(run, s)
		case *source.CallStmt:
			// Calls are their own primitives.
			flush()
			prims = append(prims, Prim{Stmts: []source.Stmt{s}, Desc: r.DescribeStmt(s)})
		case *source.Do:
			flush()
			prims = append(prims, Prim{
				Stmts:  []source.Stmt{s},
				Desc:   r.DescribeLoop(s),
				IsLoop: true,
			})
		case *source.If:
			flush()
			prims = append(prims, Prim{Stmts: []source.Stmt{s}, Desc: r.DescribeStmt(s)})
		}
	}
	flush()
	return prims
}
