package sched

import (
	"math"
	"testing"

	"orchestra/internal/machine"
	"orchestra/internal/obs"
	"orchestra/internal/stats"
)

func hintedOp(n int, seed uint64) Op {
	rng := stats.NewRNG(seed)
	times := make([]float64, n)
	for i := range times {
		if rng.Bernoulli(0.3) {
			times[i] = rng.Uniform(8, 16)
		} else {
			times[i] = 0.8
		}
	}
	return Op{
		Name:  "hinted",
		N:     n,
		Time:  func(i int) float64 { return times[i] },
		Bytes: 64,
		Hint:  func(i int) float64 { return times[i] },
	}
}

func TestBlockBounds(t *testing.T) {
	n, p := 100, 7
	covered := 0
	prevHi := 0
	for j := 0; j < p; j++ {
		lo, hi := BlockBounds(j, n, p)
		if lo != prevHi {
			t.Fatalf("block %d not contiguous: lo=%d prev=%d", j, lo, prevHi)
		}
		size := hi - lo
		if size != n/p && size != n/p+1 {
			t.Fatalf("block %d size %d not balanced", j, size)
		}
		covered += size
		prevHi = hi
	}
	if covered != n {
		t.Fatalf("blocks cover %d, want %d", covered, n)
	}
	// Degenerate cases.
	if lo, hi := BlockBounds(0, 5, 1); lo != 0 || hi != 5 {
		t.Fatal("single processor block")
	}
	if lo, hi := BlockBounds(7, 3, 10); lo != hi {
		t.Fatalf("empty block expected for j=7: [%d,%d)", lo, hi)
	}
}

func TestDecomposeWithoutHints(t *testing.T) {
	op := uniformOp(100, 1)
	queues := Decompose(op, 7)
	total := 0
	for j := range queues {
		total += queues[j].Remaining()
	}
	if total != 100 {
		t.Fatalf("queues cover %d tasks", total)
	}
}

func TestDecomposeCostBalanced(t *testing.T) {
	op := hintedOp(4096, 5)
	p := 256
	queues := Decompose(op, p)
	totalCost := 0.0
	for i := 0; i < op.N; i++ {
		totalCost += op.Hint(i)
	}
	target := totalCost / float64(p)
	covered := 0
	maxTask := 0.0
	for i := 0; i < op.N; i++ {
		if op.Hint(i) > maxTask {
			maxTask = op.Hint(i)
		}
	}
	for j := range queues {
		covered += queues[j].Remaining()
		cost := queues[j].EstRemaining(0)
		// Every block within target ± one max task.
		if cost > target+maxTask+1e-9 {
			t.Fatalf("queue %d cost %v exceeds target %v + max %v", j, cost, target, maxTask)
		}
	}
	if covered != op.N {
		t.Fatalf("queues cover %d tasks", covered)
	}
}

func TestDecomposeExpensiveFirstOrder(t *testing.T) {
	op := hintedOp(1024, 6)
	queues := Decompose(op, 16)
	for j := range queues {
		q := &queues[j]
		prev := math.Inf(1)
		for q.Remaining() > 0 {
			i := q.Take(1, op.Hint)[0]
			h := op.Hint(i)
			if h > prev+1e-9 {
				t.Fatalf("queue %d not sorted expensive-first", j)
			}
			prev = h
		}
	}
}

func TestTaskQueueTakeBudget(t *testing.T) {
	op := hintedOp(64, 7)
	queues := Decompose(op, 1)
	q := &queues[0]
	// Budget smaller than the front task still takes exactly one.
	got := q.TakeBudget(10, 0.001, op.Hint)
	if len(got) != 1 {
		t.Fatalf("minimal take = %d tasks", len(got))
	}
	// A generous budget takes up to k.
	got = q.TakeBudget(5, 1e9, op.Hint)
	if len(got) != 5 {
		t.Fatalf("generous take = %d tasks", len(got))
	}
	// A budget of ~2 expensive tasks stops there.
	front := op.Hint(q.NextTask())
	got = q.TakeBudget(50, front*2.2, op.Hint)
	if len(got) < 1 || len(got) > 4 {
		t.Fatalf("budgeted take = %d tasks", len(got))
	}
}

func TestTaskQueueRemHintConsistency(t *testing.T) {
	op := hintedOp(128, 8)
	queues := Decompose(op, 4)
	q := &queues[1]
	before := q.EstRemaining(0)
	taken := q.Take(3, op.Hint)
	sum := 0.0
	for _, i := range taken {
		sum += op.Hint(i)
	}
	after := q.EstRemaining(0)
	if math.Abs(before-sum-after) > 1e-9 {
		t.Fatalf("remHint drifted: %v - %v != %v", before, sum, after)
	}
}

func TestHintedExecutionBeatsUnhinted(t *testing.T) {
	// With a warm cost function the runtime balances by cost and starts
	// stragglers early; it must beat the cold execution on irregular
	// work at high processor counts.
	n, p := 4096, 512
	hinted := hintedOp(n, 9)
	cold := hinted
	cold.Hint = nil
	cfg := machine.DefaultConfig(p)
	factory := func() Policy { return &Taper{UseCostFunction: true} }
	rh := ExecuteDistributed(cfg, hinted, procList(p), factory, obs.OpObs{})
	rc := ExecuteDistributed(cfg, cold, procList(p), factory, obs.OpObs{})
	if rh.Makespan >= rc.Makespan {
		t.Fatalf("hints did not help: %v vs %v", rh.Makespan, rc.Makespan)
	}
}

func TestDecomposeSmallN(t *testing.T) {
	// Fewer tasks than processors must not panic and must cover all
	// tasks.
	op := hintedOp(5, 10)
	queues := Decompose(op, 16)
	total := 0
	for j := range queues {
		total += queues[j].Remaining()
	}
	if total != 5 {
		t.Fatalf("covered %d of 5", total)
	}
}
