// Package sched implements the loop-scheduling (chunk-size) algorithms
// the paper's runtime builds on: static block assignment,
// self-scheduling, guided self-scheduling, factoring, and TAPER — the
// probabilistic, variance-aware rule of Lucco's PLDI '92 paper that
// this paper's runtime uses (§4.1.1), including the cost-function
// chunk scaling s = μg/μc.
package sched

import (
	"math"

	"orchestra/internal/stats"
)

// TaskStats accumulates sampled task execution times during a parallel
// operation, both globally and per region of the iteration space, so
// policies can use (μ, σ²) and the cost function can scale chunks.
type TaskStats struct {
	Global stats.Welford
	// bins partition the iteration space for the cost function.
	bins    []stats.Welford
	n       int
	binSize int
}

// NewTaskStats prepares statistics for an operation of n tasks.
func NewTaskStats(n int) *TaskStats {
	nbins := 16
	if n < nbins {
		nbins = n
	}
	if nbins < 1 {
		nbins = 1
	}
	bs := (n + nbins - 1) / nbins
	// A zero-task operation still gets a well-formed accumulator:
	// binSize 0 would divide by zero on the first (defensive or
	// erroneous) Observe call.
	if bs < 1 {
		bs = 1
	}
	return &TaskStats{bins: make([]stats.Welford, nbins), n: n, binSize: bs}
}

// Observe records the execution time of task index i.
func (ts *TaskStats) Observe(i int, t float64) {
	ts.Global.Add(t)
	b := i / ts.binSize
	if b >= len(ts.bins) {
		b = len(ts.bins) - 1
	}
	ts.bins[b].Add(t)
}

// ObserveChunk records a chunk-level timing: total execution time for
// the k tasks covering [lo, lo+k), measured as one aggregate (the form
// a wall-clock executor produces when timing individual tasks would
// cost more than the tasks themselves). The aggregate enters the
// statistics as k observations of the chunk mean (Welford.AddChunk),
// so the global mean stays exact under amortized timing; the variance
// only sees the between-chunk component, which understates per-task
// variance — executors should observe individual tasks while chunks
// are small and switch to ObserveChunk once they grow.
func (ts *TaskStats) ObserveChunk(lo, k int, total float64) {
	if k <= 0 {
		return
	}
	mean := total / float64(k)
	ts.Global.AddChunk(k, mean)
	// Credit each bin the chunk overlaps with its share of the tasks.
	// Attributing the whole chunk to one bin (say the midpoint's) makes
	// large chunks invisible to the regions they actually covered, so
	// RegionMean would report untouched bins as unsampled and cost-
	// scaled chunk sizing would keep extrapolating from stale data.
	for b := lo / ts.binSize; b < len(ts.bins); b++ {
		binLo, binHi := b*ts.binSize, (b+1)*ts.binSize
		if b == len(ts.bins)-1 {
			binHi = maxInt(binHi, lo+k)
		}
		ov := minInt(lo+k, binHi) - maxInt(lo, binLo)
		if ov <= 0 {
			break
		}
		ts.bins[b].AddChunk(ov, mean)
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// RegionMean estimates the mean task time in [lo, hi) using the cost
// function; it falls back to the global mean where bins are empty.
func (ts *TaskStats) RegionMean(lo, hi int) float64 {
	if hi <= lo {
		return ts.Global.Mean()
	}
	sum, cnt := 0.0, 0
	for b := lo / ts.binSize; b <= (hi-1)/ts.binSize && b < len(ts.bins); b++ {
		if ts.bins[b].N() > 0 {
			sum += ts.bins[b].Mean()
			cnt++
		}
	}
	if cnt == 0 {
		return ts.Global.Mean()
	}
	return sum / float64(cnt)
}

// CostScale returns the paper's chunk scaling factor s = μg/μc for a
// chunk covering [lo, hi): chunks in expensive regions shrink, chunks
// in cheap regions grow.
func (ts *TaskStats) CostScale(lo, hi int) float64 {
	mg := ts.Global.Mean()
	mc := ts.RegionMean(lo, hi)
	if mg <= 0 || mc <= 0 {
		return 1
	}
	s := mg / mc
	// Clamp to avoid wild extrapolation from tiny samples.
	if s < 0.25 {
		s = 0.25
	}
	if s > 4 {
		s = 4
	}
	return s
}

// Policy chooses the next chunk size. Policies may be stateful
// (factoring's batches); create a fresh policy per operation via a
// Factory.
type Policy interface {
	Name() string
	// NextChunk returns how many tasks the requesting processor should
	// take, given the number of unscheduled tasks remaining and the
	// number of cooperating processors. Implementations must return a
	// value in [1, remaining] when remaining > 0.
	NextChunk(remaining, p int, ts *TaskStats) int
}

// Factory builds a fresh policy instance for one parallel operation.
type Factory func() Policy

// clamp bounds k to [1, remaining].
func clamp(k, remaining int) int {
	if k < 1 {
		k = 1
	}
	if k > remaining {
		k = remaining
	}
	return k
}

// SelfSched is pure self-scheduling: one task per scheduling event.
type SelfSched struct{}

// Name implements Policy.
func (SelfSched) Name() string { return "SS" }

// NextChunk implements Policy.
func (SelfSched) NextChunk(remaining, p int, _ *TaskStats) int { return clamp(1, remaining) }

// GSS is guided self-scheduling (Polychronopoulos & Kuck): ⌈R/p⌉.
type GSS struct{}

// Name implements Policy.
func (GSS) Name() string { return "GSS" }

// NextChunk implements Policy.
func (GSS) NextChunk(remaining, p int, _ *TaskStats) int {
	return clamp((remaining+p-1)/p, remaining)
}

// Factoring is the Hummel/Schonberg/Flynn algorithm: work is scheduled
// in batches; within a batch every chunk has size ⌈R/(2p)⌉.
type Factoring struct {
	batchLeft int
	chunk     int
}

// Name implements Policy.
func (*Factoring) Name() string { return "factoring" }

// NextChunk implements Policy.
func (f *Factoring) NextChunk(remaining, p int, _ *TaskStats) int {
	if f.batchLeft == 0 {
		f.chunk = clamp((remaining+2*p-1)/(2*p), remaining)
		f.batchLeft = p
	}
	f.batchLeft--
	return clamp(f.chunk, remaining)
}

// Taper is the TAPER chunk-size rule: choose the largest chunk k whose
// upper-confidence completion time does not exceed an equal share of
// the remaining work,
//
//	k·μ + ω·σ·√k = (R/p)·μ,
//
// solved for k. With σ = 0 this reduces to GSS's R/p; as the sampled
// variance grows, chunks shrink, trading scheduling overhead for
// balance. Omega controls the confidence level (the paper's runtime
// samples task times to compute μ and σ²; ω ≈ √(2·ln p) bounds the
// probability that any of ~p outstanding chunks straggles).
type Taper struct {
	// Omega overrides the confidence width when > 0.
	Omega float64
	// MinSamples gates the variance-aware rule; before this many
	// observations the policy behaves like factoring's first batch.
	MinSamples int
	// UseCostFunction enables the s = μg/μc chunk scaling. The scale
	// is applied by the executor via ScaleChunk since it depends on
	// which region of the iteration space the chunk would cover.
	UseCostFunction bool
}

// Name implements Policy.
func (t *Taper) Name() string { return "TAPER" }

// NextChunk implements Policy.
func (t *Taper) NextChunk(remaining, p int, ts *TaskStats) int {
	min := t.MinSamples
	if min == 0 {
		min = 2 * p
		if min > 32 {
			min = 32
		}
	}
	if ts == nil || ts.Global.N() < min || ts.Global.Mean() <= 0 {
		return clamp((remaining+2*p-1)/(2*p), remaining)
	}
	omega := t.Omega
	if omega <= 0 {
		omega = math.Sqrt(2 * math.Log(float64(p)+1))
	}
	cv := ts.Global.StdDev() / ts.Global.Mean()
	share := float64(remaining) / float64(p)
	// √k = (-ω·cv + √(ω²·cv² + 4·share)) / 2
	disc := omega*omega*cv*cv + 4*share
	sqrtK := (-omega*cv + math.Sqrt(disc)) / 2
	k := int(sqrtK * sqrtK)
	return clamp(k, remaining)
}

// ScaleChunk applies the cost-function scaling to a proposed chunk
// covering tasks [lo, lo+k).
func (t *Taper) ScaleChunk(k, lo int, ts *TaskStats) int {
	if !t.UseCostFunction || ts == nil {
		return k
	}
	s := ts.CostScale(lo, lo+k)
	nk := int(float64(k) * s)
	if nk < 1 {
		nk = 1
	}
	return nk
}
