package sched

import (
	"math"
	"math/bits"

	"orchestra/internal/machine"
)

// TokenTree simulates the epoch/token protocol of the distributed TAPER
// algorithm (§4.1.1): "the p processors are logically connected as a
// binary tree with p leaves... When a processor begins executing a
// chunk it sends its current epoch value (called a token) to its
// parent, which passes the token to its parent (possibly combining
// messages from both children). When the root receives p tokens from
// the same epoch, it increments the global epoch value and broadcasts a
// message through the tree to all processors."
//
// The tree tracks per-processor progress so the root can identify
// processors falling behind in epochs — the signal that drives chunk
// re-assignment ("if processor a can get two tokens of value i to the
// root before processor b can send one token of value i, then the root
// will re-assign processor b's chunk").
type TokenTree struct {
	p     int
	depth int

	// epoch is the current global epoch; tokens[j] counts tokens
	// processor j has sent in total.
	epoch  int
	tokens []int
	// pending counts tokens received for each epoch at the root.
	pending map[int]int

	// Messages counts hop-level message transmissions (tokens combine
	// at internal nodes, so a token costs at most its leaf depth).
	Messages int
	// Broadcasts counts epoch-increment broadcasts.
	Broadcasts int
}

// NewTokenTree builds the tree for p processors.
func NewTokenTree(p int) *TokenTree {
	if p < 1 {
		p = 1
	}
	return &TokenTree{
		p:       p,
		depth:   treeDepth(p),
		tokens:  make([]int, p),
		pending: map[int]int{},
	}
}

func treeDepth(p int) int {
	if p <= 1 {
		return 0
	}
	return bits.Len(uint(p - 1))
}

// Depth reports the leaf-to-root distance.
func (tt *TokenTree) Depth() int { return tt.depth }

// Epoch reports the current global epoch.
func (tt *TokenTree) Epoch() int { return tt.epoch }

// Token processes processor j's token (sent when it begins a chunk).
// It returns the latency for the token to reach the root and whether
// this token completed an epoch (triggering a broadcast).
func (tt *TokenTree) Token(j int, cfg machine.Config) (latency float64, epochEnd bool) {
	if j < 0 || j >= tt.p {
		return 0, false
	}
	// The processor's token carries its own epoch: how many full
	// epochs of tokens it has already contributed.
	own := tt.tokens[j]
	tt.tokens[j]++
	tt.pending[own]++
	// Tokens combine at internal nodes, so one token amortizes to a
	// single upward message; the latency to the root is still the full
	// leaf depth.
	tt.Messages++
	latency = float64(tt.depth) * (cfg.MsgOverhead + cfg.HopLatency)

	if tt.pending[tt.epoch] >= tt.p {
		delete(tt.pending, tt.epoch)
		tt.epoch++
		tt.Broadcasts++
		tt.Messages += tt.p - 1 // broadcast down the tree
		return latency, true
	}
	return latency, false
}

// Behind reports how many epochs processor j lags the fastest
// processor — the root's re-assignment signal.
func (tt *TokenTree) Behind(j int) int {
	max := 0
	for _, c := range tt.tokens {
		if c > max {
			max = c
		}
	}
	return max - tt.tokens[j]
}

// BroadcastLatency reports the time for one epoch broadcast to reach
// all leaves.
func (tt *TokenTree) BroadcastLatency(cfg machine.Config) float64 {
	return float64(tt.depth) * (cfg.MsgOverhead + cfg.HopLatency)
}

// ExpectedEpochs estimates how many epochs a parallel operation of n
// tasks will take given the average chunk size: each epoch consumes p
// chunks.
func ExpectedEpochs(n, p int, avgChunk float64) int {
	if avgChunk <= 0 || p <= 0 {
		return 0
	}
	return int(math.Ceil(float64(n) / (avgChunk * float64(p))))
}
