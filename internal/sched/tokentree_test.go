package sched

import (
	"testing"

	"orchestra/internal/machine"
)

func TestTreeDepth(t *testing.T) {
	cases := map[int]int{1: 0, 2: 1, 3: 2, 4: 2, 8: 3, 9: 4, 1024: 10}
	for p, want := range cases {
		if got := NewTokenTree(p).Depth(); got != want {
			t.Errorf("depth(%d) = %d, want %d", p, got, want)
		}
	}
}

func TestEpochCompletion(t *testing.T) {
	cfg := machine.DefaultConfig(4)
	tt := NewTokenTree(4)
	// Three tokens: no epoch end.
	for j := 0; j < 3; j++ {
		if _, end := tt.Token(j, cfg); end {
			t.Fatal("epoch ended early")
		}
	}
	// The fourth completes epoch 0.
	if _, end := tt.Token(3, cfg); !end {
		t.Fatal("epoch did not end after p tokens")
	}
	if tt.Epoch() != 1 || tt.Broadcasts != 1 {
		t.Fatalf("epoch=%d broadcasts=%d", tt.Epoch(), tt.Broadcasts)
	}
}

func TestFastProcessorTokensCountAgainstLaterEpochs(t *testing.T) {
	cfg := machine.DefaultConfig(4)
	tt := NewTokenTree(4)
	// Processor 0 races ahead: its extra tokens belong to later epochs
	// and must not complete epoch 0 by themselves.
	for k := 0; k < 4; k++ {
		if _, end := tt.Token(0, cfg); end {
			t.Fatal("one processor completed an epoch alone")
		}
	}
	// The stragglers' first tokens complete epoch 0.
	tt.Token(1, cfg)
	tt.Token(2, cfg)
	if _, end := tt.Token(3, cfg); !end {
		t.Fatal("epoch 0 not completed by the stragglers")
	}
}

func TestBehind(t *testing.T) {
	cfg := machine.DefaultConfig(8)
	tt := NewTokenTree(8)
	for k := 0; k < 3; k++ {
		tt.Token(0, cfg)
	}
	tt.Token(1, cfg)
	if tt.Behind(0) != 0 {
		t.Fatalf("leader behind = %d", tt.Behind(0))
	}
	if tt.Behind(1) != 2 {
		t.Fatalf("proc 1 behind = %d, want 2", tt.Behind(1))
	}
	if tt.Behind(7) != 3 {
		t.Fatalf("silent proc behind = %d, want 3", tt.Behind(7))
	}
}

func TestTokenLatencyScalesWithDepth(t *testing.T) {
	cfg := machine.DefaultConfig(1024)
	small := NewTokenTree(4)
	big := NewTokenTree(1024)
	l1, _ := small.Token(0, cfg)
	l2, _ := big.Token(0, cfg)
	if l2 <= l1 {
		t.Fatalf("latency should grow with machine size: %v vs %v", l1, l2)
	}
	if big.BroadcastLatency(cfg) <= small.BroadcastLatency(cfg) {
		t.Fatal("broadcast latency should grow with depth")
	}
}

func TestMessageAccounting(t *testing.T) {
	cfg := machine.DefaultConfig(4)
	tt := NewTokenTree(4)
	for j := 0; j < 4; j++ {
		tt.Token(j, cfg)
	}
	// 4 upward tokens + one broadcast of p-1 messages.
	if tt.Messages != 4+3 {
		t.Fatalf("messages = %d, want 7", tt.Messages)
	}
}

func TestExpectedEpochs(t *testing.T) {
	if e := ExpectedEpochs(1000, 10, 10); e != 10 {
		t.Fatalf("epochs = %d, want 10", e)
	}
	if e := ExpectedEpochs(1000, 10, 0); e != 0 {
		t.Fatalf("degenerate epochs = %d", e)
	}
}

func TestTokenIgnoresBadProcessor(t *testing.T) {
	cfg := machine.DefaultConfig(2)
	tt := NewTokenTree(2)
	if l, end := tt.Token(99, cfg); l != 0 || end {
		t.Fatal("out-of-range processor accepted")
	}
}
