package sched

import (
	"orchestra/internal/fault"
	"orchestra/internal/machine"
	"orchestra/internal/obs"
	"orchestra/internal/trace"
)

// Op is one data-parallel operation: N independent tasks with known
// (to the simulator, not the scheduler) execution times.
type Op struct {
	Name string
	N    int
	// Time gives the execution time of task i.
	Time func(i int) float64
	// TimeRange, when non-nil, executes tasks [lo, hi) in one fused
	// call and returns their summed time. It must be observationally
	// identical to calling Time for each i in [lo, hi); a wall-clock
	// executor uses it to avoid a closure invocation per task on
	// chunk-timed chunks. The simulator ignores it.
	TimeRange func(lo, hi int) float64
	// Bytes is the data volume associated with one task; moving a task
	// off its owner costs a message of this size.
	Bytes int64
	// Hint, when non-nil, is the runtime's learned per-task cost
	// estimate — the cost function built by sampling prior executions
	// of the same parallel operation (§4.1.1: the runtime "does
	// additional sampling of task costs to build a cost function").
	// Applications in steady state (climate timesteps, reconstruction
	// sweeps) have warm hints; a first execution has none.
	Hint func(i int) float64
}

// TotalTime sums all task times (the sequential execution time).
func (op Op) TotalTime() float64 {
	t := 0.0
	for i := 0; i < op.N; i++ {
		t += op.Time(i)
	}
	return t
}

// BlockBounds returns the [lo, hi) range of tasks owned by processor j
// in a balanced block decomposition of n tasks over p processors:
// every block has ⌊n/p⌋ or ⌈n/p⌉ tasks.
func BlockBounds(j, n, p int) (lo, hi int) {
	if p < 1 {
		return 0, n
	}
	base := n / p
	rem := n % p
	lo = j*base + minInt(j, rem)
	hi = lo + base
	if j < rem {
		hi++
	}
	return lo, hi
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// owner returns the balanced block-decomposition owner of task i among
// p processors (the owner-computes rule's initial data decomposition).
func owner(i, n, p int) int {
	if p <= 1 {
		return 0
	}
	base := n / p
	rem := n % p
	// The first rem blocks have base+1 tasks.
	boundary := rem * (base + 1)
	if i < boundary {
		return i / (base + 1)
	}
	if base == 0 {
		return p - 1
	}
	return rem + (i-boundary)/base
}

// ExecuteStatic runs op with a static block decomposition: processor j
// executes its owned block with no scheduling events and no data
// movement, then all processors synchronize. With tracing enabled, each
// processor's block appears as a single span — static execution has no
// scheduling events to record, so the span is the whole story.
func ExecuteStatic(cfg machine.Config, op Op, procs []int, ob obs.OpObs) trace.Result {
	p := len(procs)
	res := trace.Result{Name: "static/" + op.Name, Processors: p, Busy: make([]float64, p)}
	for i := 0; i < op.N; i++ {
		t := op.Time(i)
		res.Busy[owner(i, op.N, p)] += t
		res.SeqTime += t
	}
	if ob.On() {
		for j := 0; j < p; j++ {
			lo, hi := BlockBounds(j, op.N, p)
			if hi > lo {
				ob.R.Chunk(j, ob.Op, lo, hi-lo, ob.Base, ob.Base+res.Busy[j], false)
			}
		}
	}
	max := 0.0
	for _, b := range res.Busy {
		if b > max {
			max = b
		}
	}
	res.Makespan = max + cfg.BroadcastTime(p, 8) // completion barrier
	res.Chunks = p
	return res
}

// ExecuteCentral runs op with a central task queue owned by procs[0]:
// each processor repeatedly requests a chunk (round-trip message plus
// dispatch overhead), fetches non-local data, and executes. This is
// the centralized degenerate case of the distributed algorithm, used
// as an ablation baseline.
func ExecuteCentral(cfg machine.Config, op Op, procs []int, factory Factory, ob obs.OpObs) trace.Result {
	p := len(procs)
	sim := machine.NewSim(cfg)
	policy := factory()
	ts := NewTaskStats(op.N)
	res := trace.Result{
		Name:       policy.Name() + "-central/" + op.Name,
		Processors: p,
		Busy:       make([]float64, p),
	}
	res.SeqTime = op.TotalTime()

	next := 0
	finish := make([]float64, p)
	qOwner := procs[0]

	var request func(j int)
	execChunk := func(j, lo, k int) {
		total := 0.0
		for i := lo; i < lo+k; i++ {
			t := op.Time(i)
			ts.Observe(i, t)
			total += t
			if o := procs[owner(i, op.N, p)]; o != procs[j] {
				total += cfg.MsgTime(o, procs[j], op.Bytes)
				res.Messages++
			}
		}
		res.Busy[j] += total
		if ob.On() {
			ob.R.Chunk(j, ob.Op, lo, k, ob.Base+sim.Now(), ob.Base+sim.Now()+total, false)
		}
		sim.AfterFn(total, request, j)
	}
	// grant runs at the queue owner once processor j's request round
	// trip lands; it carries only j (closure-free AfterFn scheduling).
	grant := func(j int) {
		remaining := op.N - next
		if remaining <= 0 {
			finish[j] = sim.Now()
			return
		}
		k := policy.NextChunk(remaining, p, ts)
		if t, ok := policy.(*Taper); ok {
			k = clamp(t.ScaleChunk(k, next, ts), remaining)
		}
		if ob.On() {
			ob.R.Taper(j, ob.Op, remaining, k, int(ts.Global.N()),
				ts.Global.Mean(), ts.Global.StdDev(), ob.Base+sim.Now())
		}
		lo := next
		next += k
		res.Chunks++
		execChunk(j, lo, k)
	}
	request = func(j int) {
		cost := 2*cfg.MsgTime(procs[j], qOwner, 16) + cfg.SchedOverhead
		res.Messages += 2
		sim.AfterFn(cost, grant, j)
	}
	for j := 0; j < p; j++ {
		request(j)
	}
	sim.Run()
	max := 0.0
	for _, f := range finish {
		if f > max {
			max = f
		}
	}
	res.Makespan = max + cfg.BroadcastTime(p, 8)
	return res
}

// decompose builds the per-processor task queues the owner-computes
// rule starts from. With cost hints (a warm cost function) the
// decomposition is the runtime's refined one: contiguous blocks of
// approximately equal estimated cost, each processed most-expensive-
// first so stragglers start early. Without hints it is the balanced
// count-block decomposition in index order.
func Decompose(op Op, p int) []TaskQueue {
	queues := make([]TaskQueue, p)
	if op.Hint == nil {
		for j := 0; j < p; j++ {
			lo, hi := BlockBounds(j, op.N, p)
			tasks := make([]int, 0, hi-lo)
			for i := lo; i < hi; i++ {
				tasks = append(tasks, i)
			}
			queues[j] = TaskQueue{tasks: tasks}
		}
		return queues
	}
	total := 0.0
	for i := 0; i < op.N; i++ {
		total += op.Hint(i)
	}
	target := total / float64(p)
	j := 0
	cum := 0.0
	for i := 0; i < op.N; i++ {
		h := op.Hint(i)
		// Each processor's block ends at its global share boundary:
		// task i goes to the processor whose cumulative share covers
		// the task's midpoint, so rounding never accumulates into a
		// pile on the last processor.
		for j < p-1 && cum+h/2 > target*float64(j+1) {
			j++
		}
		queues[j].tasks = append(queues[j].tasks, i)
		queues[j].remHint += h
		cum += h
	}
	for j := range queues {
		sortByHintDesc(queues[j].tasks, op.Hint)
	}
	return queues
}

// TaskQueue is one processor's remaining work: tasks[pos:] are
// unscheduled, and remHint tracks their total estimated cost.
type TaskQueue struct {
	tasks   []int
	pos     int
	remHint float64
}

// Remaining reports the number of unscheduled tasks.
func (q *TaskQueue) Remaining() int { return len(q.tasks) - q.pos }

// NextTask returns the next unscheduled task index; it panics on an
// empty queue.
func (q *TaskQueue) NextTask() int { return q.tasks[q.pos] }

// Take removes up to k tasks from the front of the queue (the most
// expensive remaining ones under a hinted decomposition).
func (q *TaskQueue) Take(k int, hint func(int) float64) []int {
	if k > q.Remaining() {
		k = q.Remaining()
	}
	out := q.tasks[q.pos : q.pos+k]
	q.pos += k
	if hint != nil {
		for _, i := range out {
			q.remHint -= hint(i)
		}
	}
	return out
}

// EnabledPrefix reports how many consecutive front tasks have index
// below limit — the dispatchable run of this queue under a pipelined
// gate that has enabled tasks [0, limit) of the operator. Queues hold
// block decompositions, so a dispatcher must check each queue's actual
// task indices against the gate: the gate is a task-index prefix, and
// handing out an arbitrary count of tasks from arbitrary queue fronts
// would run tasks the gate has not enabled.
func (q *TaskQueue) EnabledPrefix(limit int) int {
	c := 0
	for i := q.pos; i < len(q.tasks) && q.tasks[i] < limit; i++ {
		c++
	}
	return c
}

// EstRemaining estimates the queue's remaining execution time: the
// hint sum when available, otherwise count times the supplied rate.
func (q *TaskQueue) EstRemaining(rate float64) float64 {
	if q.remHint > 0 {
		return q.remHint
	}
	return float64(q.Remaining()) * rate
}

// TakeBudget removes up to k tasks from the front of the queue,
// additionally stopping once their cumulative hinted cost exceeds
// budget (always taking at least one). Re-assignment uses it so that a
// thief never walks away with several expensive tasks at once.
func (q *TaskQueue) TakeBudget(k int, budget float64, hint func(int) float64) []int {
	if hint == nil || budget <= 0 {
		return q.Take(k, hint)
	}
	if k > q.Remaining() {
		k = q.Remaining()
	}
	take := 0
	cost := 0.0
	for take < k {
		c := hint(q.tasks[q.pos+take])
		if take > 0 && cost+c > budget {
			break
		}
		cost += c
		take++
	}
	return q.Take(take, hint)
}

func sortByHintDesc(tasks []int, hint func(int) float64) {
	// Insertion sort: queues are short (N/p tasks).
	for i := 1; i < len(tasks); i++ {
		for j := i; j > 0 && hint(tasks[j]) > hint(tasks[j-1]); j-- {
			tasks[j], tasks[j-1] = tasks[j-1], tasks[j]
		}
	}
}

// ExecuteDistributed runs op with the paper's distributed scheme
// (§4.1.1): tasks start on their owners (owner-computes), each
// processor self-schedules chunks from its local queue using the
// policy's chunk rule, completion tokens flow up a binary tree, and a
// processor that exhausts its local work is re-assigned a chunk from
// the most loaded processor (by estimated remaining time), paying the
// task-transfer message cost. "If task costs are independent then we
// expect most tasks to remain on the processor owning them; thus, the
// algorithm reduces task transfer costs and maintains communication
// locality."
func ExecuteDistributed(cfg machine.Config, op Op, procs []int, factory Factory, ob obs.OpObs) trace.Result {
	return ExecuteDistributedFault(cfg, op, procs, factory, ob, nil)
}

// ExecuteDistributedFault is ExecuteDistributed with a fault plan
// injected at every dispatch commitment: before a processor takes a
// chunk (from its own queue or a victim's), fx decides whether it
// crashes (stops dispatching forever; its queued tasks are recovered by
// the existing re-assignment scan), stalls (re-enters the dispatch loop
// after the stall), or runs slow (observed task times scale by the
// factor; computed values are untouched). Injection happens only at
// chunk boundaries, so every task still executes exactly once and
// results stay bitwise identical to a fault-free run. A nil fx is the
// fault-free fast path.
func ExecuteDistributedFault(cfg machine.Config, op Op, procs []int, factory Factory, ob obs.OpObs, fx *fault.Exec) trace.Result {
	p := len(procs)
	sim := machine.NewSim(cfg)
	policy := factory()
	ts := NewTaskStats(op.N)
	res := trace.Result{
		Name:       policy.Name() + "/" + op.Name,
		Processors: p,
		Busy:       make([]float64, p),
	}
	res.SeqTime = op.TotalTime()

	local := Decompose(op, p)
	remainingGlobal := op.N
	finish := make([]float64, p)
	tree := NewTokenTree(p)
	// Observed per-processor progress (the token protocol's signal).
	done := make([]int, p)
	spent := make([]float64, p)

	// tokenCost is the CPU time a processor spends emitting its
	// completion token toward the tree root.
	tokenCost := 0.2 * cfg.MsgOverhead

	var next func(j int)
	// Per-processor pending-chunk context (one chunk in flight per
	// processor) for the allocation-free AfterFn scheduling path.
	pendK := make([]int, p)
	pendTotal := make([]float64, p)
	chunkDone := func(j int) {
		done[j] += pendK[j]
		spent[j] += pendTotal[j]
		next(j)
	}
	dead := make([]bool, p)
	slowOn := make([]bool, p)
	stolen := false
	slowF := 1.0
	execChunk := func(j int, tasks []int, transferCost float64) {
		total := transferCost
		for _, i := range tasks {
			// A slow fault scales only the observed cost: the kernel
			// (op.Time's side effect on real bindings) runs normally, so
			// computed values are untouched.
			t := op.Time(i) * slowF
			ts.Observe(i, t)
			total += t
		}
		total += cfg.SchedOverhead + tokenCost
		_, epochEnd := tree.Token(j, cfg)
		res.Busy[j] += total
		remainingGlobal -= len(tasks)
		res.Chunks++
		if ob.On() {
			ob.R.Chunk(j, ob.Op, tasks[0], len(tasks), ob.Base+sim.Now(), ob.Base+sim.Now()+total, stolen)
			if epochEnd {
				ob.R.Epoch(j, ob.Op, tree.Epoch(), ob.Base+sim.Now())
			}
		}
		pendK[j], pendTotal[j] = len(tasks), total
		sim.AfterFn(total, chunkDone, j)
	}
	next = func(j int) {
		if remainingGlobal <= 0 {
			finish[j] = sim.Now()
			return
		}
		slowF = 1.0
		if fx != nil {
			d := fx.Begin(j)
			if d.Crash {
				dead[j] = true
				if ob.On() {
					ob.R.Fault(j, j, int(fault.Crash), ob.Base+sim.Now())
				}
				finish[j] = sim.Now()
				return
			}
			if d.Stall > 0 {
				if ob.On() {
					ob.R.Fault(j, j, int(fault.Stall), ob.Base+sim.Now())
				}
				sim.AfterFn(d.Stall, next, j)
				return
			}
			if d.Slow > 0 {
				slowF = d.Slow
				if !slowOn[j] {
					slowOn[j] = true
					if ob.On() {
						ob.R.Fault(j, j, int(fault.Slow), ob.Base+sim.Now())
					}
				}
			}
		}
		q := &local[j]
		if q.Remaining() > 0 {
			k := policy.NextChunk(remainingGlobal, p, ts)
			if t, ok := policy.(*Taper); ok {
				k = clamp(t.ScaleChunk(k, q.NextTask(), ts), remainingGlobal)
			}
			if ob.On() {
				ob.R.Taper(j, ob.Op, remainingGlobal, k, int(ts.Global.N()),
					ts.Global.Mean(), ts.Global.StdDev(), ob.Base+sim.Now())
			}
			// Budget the chunk in time — the per-task-grained form of
			// the cost-function scaling s = μg/μc — so one chunk never
			// collects several expensive tasks. The budget is the
			// hint-estimated remaining work per processor.
			budget := 0.0
			for v := 0; v < p; v++ {
				budget += local[v].EstRemaining(0)
			}
			budget /= float64(p)
			stolen = false
			execChunk(j, q.TakeBudget(k, budget, op.Hint), 0)
			return
		}
		// Local queue empty: ask the root to re-assign a chunk from the
		// most loaded processor (the epoch mechanism's chunk
		// re-assignment). Load is the estimated remaining time, from
		// hints when present, else the observed per-processor rate the
		// token protocol reports.
		globalMean := ts.Global.Mean()
		victim := -1
		bestTime := 0.0
		for v := 0; v < p; v++ {
			if local[v].Remaining() == 0 {
				continue
			}
			rate := globalMean
			if done[v] > 0 && spent[v]/float64(done[v]) > rate {
				rate = spent[v] / float64(done[v])
			}
			if est := local[v].EstRemaining(rate); est > bestTime {
				bestTime = est
				victim = v
			}
		}
		if victim < 0 {
			// Nothing left anywhere; wait for stragglers to finish
			// their running chunks.
			finish[j] = sim.Now()
			return
		}
		k := policy.NextChunk(remainingGlobal, p, ts)
		if ob.On() {
			ob.R.Taper(j, ob.Op, remainingGlobal, k, int(ts.Global.N()),
				ts.Global.Mean(), ts.Global.StdDev(), ob.Base+sim.Now())
		}
		budget := local[victim].EstRemaining(globalMean) / 2
		tasks := local[victim].TakeBudget(k, budget, op.Hint)
		res.Steals++
		res.Messages += 3
		if ob.On() {
			ob.R.Steal(j, victim, ob.Op, tasks[0], len(tasks), ob.Base+sim.Now())
			if dead[victim] {
				// Re-assignment from a crashed owner is the recovery path:
				// its queued tasks are re-issued to a survivor.
				ob.R.Retry(j, victim, ob.Op, tasks[0], len(tasks), ob.Base+sim.Now())
			}
		}
		// Round trip to the root plus the task+data transfer.
		cost := 2*cfg.MsgTime(procs[j], procs[0], 16) +
			cfg.MsgTime(procs[victim], procs[j], int64(len(tasks))*op.Bytes+32)
		stolen = true
		execChunk(j, tasks, cost)
	}
	for j := 0; j < p; j++ {
		sim.AfterFn(0, next, j)
	}
	sim.Run()
	max := 0.0
	for _, f := range finish {
		if f > max {
			max = f
		}
	}
	// Each completed epoch's broadcast adds root latency; the final
	// barrier synchronizes completion.
	res.Messages += tree.Messages
	res.Makespan = max + float64(tree.Broadcasts)*0.1*cfg.HopLatency + cfg.BroadcastTime(p, 8)
	return res
}
