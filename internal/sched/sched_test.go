package sched

import (
	"math"
	"testing"

	"orchestra/internal/machine"
	"orchestra/internal/obs"
	"orchestra/internal/stats"
)

func uniformOp(n int, t float64) Op {
	return Op{Name: "uniform", N: n, Time: func(int) float64 { return t }, Bytes: 64}
}

func irregularOp(n int, seed uint64) Op {
	rng := stats.NewRNG(seed)
	d := stats.Bimodal{PA: 0.8, A: stats.Constant{V: 1}, B: stats.LogNormalDist{Mu: 2.5, Sigma: 0.8}}
	times := make([]float64, n)
	for i := range times {
		times[i] = d.Sample(rng)
	}
	return Op{Name: "irregular", N: n, Time: func(i int) float64 { return times[i] }, Bytes: 64}
}

func procList(p int) []int {
	out := make([]int, p)
	for i := range out {
		out[i] = i
	}
	return out
}

func TestPolicyChunkBounds(t *testing.T) {
	ts := NewTaskStats(1000)
	for i := 0; i < 100; i++ {
		ts.Observe(i, 1.0+float64(i%7))
	}
	policies := []Policy{SelfSched{}, GSS{}, &Factoring{}, &Taper{}}
	for _, pol := range policies {
		for _, rem := range []int{1, 2, 5, 100, 1000} {
			for _, p := range []int{1, 4, 64} {
				k := pol.NextChunk(rem, p, ts)
				if k < 1 || k > rem {
					t.Errorf("%s: NextChunk(%d, %d) = %d out of bounds", pol.Name(), rem, p, k)
				}
			}
		}
	}
}

func TestObserveChunk(t *testing.T) {
	ts := NewTaskStats(1000)
	ts.ObserveChunk(0, 10, 30)   // 10 tasks of mean 3 in the first bin
	ts.ObserveChunk(900, 50, 50) // 50 tasks of mean 1 in the last bin
	// The aggregate enters as k observations of the chunk mean, so the
	// global mean is the task-weighted mean (30+50)/60, exactly what
	// per-task Observe calls would have produced.
	if got := ts.Global.Mean(); math.Abs(got-80.0/60.0) > 1e-12 {
		t.Fatalf("global mean after two chunk observations = %v, want %v", got, 80.0/60.0)
	}
	if got := ts.Global.N(); got != 60 {
		t.Fatalf("N after two chunk observations = %v, want 60", got)
	}
	if lo := ts.RegionMean(0, 100); math.Abs(lo-3) > 1e-12 {
		t.Errorf("RegionMean(0,100) = %v, want 3 (chunk midpoint bin)", lo)
	}
	if hi := ts.RegionMean(900, 1000); math.Abs(hi-1) > 1e-12 {
		t.Errorf("RegionMean(900,1000) = %v, want 1", hi)
	}
	// Degenerate chunks must not observe anything.
	ts.ObserveChunk(0, 0, 5)
	if got := ts.Global.N(); got != 60 {
		t.Fatalf("zero-length chunk was recorded: N = %v", got)
	}
}

func TestGSSChunks(t *testing.T) {
	if k := (GSS{}).NextChunk(100, 4, nil); k != 25 {
		t.Fatalf("GSS chunk = %d, want 25", k)
	}
	if k := (GSS{}).NextChunk(3, 4, nil); k != 1 {
		t.Fatalf("GSS small chunk = %d, want 1", k)
	}
}

func TestFactoringBatches(t *testing.T) {
	f := &Factoring{}
	// First batch with R=100, p=4: chunk = ceil(100/8) = 13 for 4 calls.
	for i := 0; i < 4; i++ {
		if k := f.NextChunk(100-13*i, 4, nil); k != 13 {
			t.Fatalf("factoring call %d = %d, want 13", i, k)
		}
	}
	// Next batch recomputes from the new remaining (48): ceil(48/8)=6.
	if k := f.NextChunk(48, 4, nil); k != 6 {
		t.Fatalf("second batch chunk = %d, want 6", k)
	}
}

func TestTaperReducesToGSSWithoutVariance(t *testing.T) {
	ts := NewTaskStats(10000)
	for i := 0; i < 200; i++ {
		ts.Observe(i, 2.0) // zero variance
	}
	tp := &Taper{}
	k := tp.NextChunk(1000, 10, ts)
	// With cv = 0 the rule gives exactly R/p.
	if k != 100 {
		t.Fatalf("TAPER with zero variance = %d, want 100", k)
	}
}

func TestTaperShrinksWithVariance(t *testing.T) {
	low := NewTaskStats(10000)
	high := NewTaskStats(10000)
	rng := stats.NewRNG(42)
	for i := 0; i < 500; i++ {
		low.Observe(i, 2.0+0.01*rng.Float64())
		high.Observe(i, rng.LogNormal(0.5, 1.2))
	}
	tp := &Taper{}
	kLow := tp.NextChunk(1000, 10, low)
	kHigh := tp.NextChunk(1000, 10, high)
	if kHigh >= kLow {
		t.Fatalf("variance should shrink chunks: low=%d high=%d", kLow, kHigh)
	}
}

func TestTaperFallbackBeforeSamples(t *testing.T) {
	tp := &Taper{}
	ts := NewTaskStats(1000)
	k := tp.NextChunk(1000, 10, ts)
	if k != 50 { // factoring-like R/(2p)
		t.Fatalf("fallback chunk = %d, want 50", k)
	}
}

func TestTaperChunksDecrease(t *testing.T) {
	ts := NewTaskStats(100000)
	rng := stats.NewRNG(7)
	for i := 0; i < 1000; i++ {
		ts.Observe(i, rng.LogNormal(0, 0.5))
	}
	tp := &Taper{}
	prev := math.MaxInt32
	for _, rem := range []int{10000, 5000, 1000, 200, 50} {
		k := tp.NextChunk(rem, 16, ts)
		if k > prev {
			t.Fatalf("chunks should not grow as work shrinks: rem=%d k=%d prev=%d", rem, k, prev)
		}
		prev = k
	}
}

func TestCostScale(t *testing.T) {
	ts := NewTaskStats(160)
	// First half cheap, second half expensive.
	for i := 0; i < 80; i++ {
		ts.Observe(i, 1.0)
	}
	for i := 80; i < 160; i++ {
		ts.Observe(i, 9.0)
	}
	cheap := ts.CostScale(0, 40)
	exp := ts.CostScale(120, 160)
	if cheap <= 1 {
		t.Fatalf("cheap region scale = %v, want > 1", cheap)
	}
	if exp >= 1 {
		t.Fatalf("expensive region scale = %v, want < 1", exp)
	}
	// Clamping.
	if ts.CostScale(120, 160) < 0.25-1e-9 {
		t.Fatal("scale below clamp")
	}
}

func TestStaticUniformEfficiency(t *testing.T) {
	op := uniformOp(16384, 1.0)
	r := ExecuteStatic(machine.DefaultConfig(16), op, procList(16), obs.OpObs{})
	if eff := r.Efficiency(); eff < 0.95 {
		t.Fatalf("static on uniform work: eff = %v", eff)
	}
	if r.Steals != 0 || r.Messages != 0 {
		t.Fatal("static must not steal or message")
	}
}

func TestStaticIrregularImbalance(t *testing.T) {
	op := irregularOp(1024, 1)
	r := ExecuteStatic(machine.DefaultConfig(32), op, procList(32), obs.OpObs{})
	if r.LoadImbalance() < 1.2 {
		t.Fatalf("irregular static load should be imbalanced: %v", r.LoadImbalance())
	}
}

func TestDistributedBeatsStaticOnIrregular(t *testing.T) {
	op := irregularOp(2048, 3)
	p := 64
	st := ExecuteStatic(machine.DefaultConfig(p), op, procList(p), obs.OpObs{})
	tp := ExecuteDistributed(machine.DefaultConfig(p), op, procList(p),
		func() Policy { return &Taper{UseCostFunction: true} }, obs.OpObs{})
	if tp.Makespan >= st.Makespan {
		t.Fatalf("TAPER (%v) should beat static (%v) on irregular work", tp.Makespan, st.Makespan)
	}
	if tp.Speedup() <= st.Speedup() {
		t.Fatalf("TAPER speedup %v <= static %v", tp.Speedup(), st.Speedup())
	}
}

func TestDistributedLocalityOnUniform(t *testing.T) {
	// With uniform tasks, almost nothing should be stolen.
	op := uniformOp(32768, 1.0)
	p := 32
	r := ExecuteDistributed(machine.DefaultConfig(p), op, procList(p),
		func() Policy { return &Taper{} }, obs.OpObs{})
	if r.Steals > p {
		t.Fatalf("uniform work stole %d chunks", r.Steals)
	}
	if eff := r.Efficiency(); eff < 0.9 {
		t.Fatalf("uniform distributed eff = %v", eff)
	}
}

func TestCentralExecutesAllWork(t *testing.T) {
	op := irregularOp(512, 9)
	p := 8
	r := ExecuteCentral(machine.DefaultConfig(p), op, procList(p),
		func() Policy { return &GSS{} }, obs.OpObs{})
	var busy float64
	for _, b := range r.Busy {
		busy += b
	}
	// All task time must be accounted (busy includes comm, so >=).
	if busy < r.SeqTime {
		t.Fatalf("busy %v < seq %v: lost work", busy, r.SeqTime)
	}
	if r.Chunks == 0 {
		t.Fatal("no chunks dispatched")
	}
}

func TestDistributedExecutesAllWork(t *testing.T) {
	for _, p := range []int{1, 3, 16} {
		op := irregularOp(333, 11)
		r := ExecuteDistributed(machine.DefaultConfig(p), op, procList(p),
			func() Policy { return &Taper{} }, obs.OpObs{})
		var busy float64
		for _, b := range r.Busy {
			busy += b
		}
		if busy < r.SeqTime-1e-9 {
			t.Fatalf("p=%d: busy %v < seq %v", p, busy, r.SeqTime)
		}
		if r.Makespan < r.SeqTime/float64(p)-1e-9 {
			t.Fatalf("p=%d: makespan %v below ideal %v", p, r.Makespan, r.SeqTime/float64(p))
		}
	}
}

func TestDeterminism(t *testing.T) {
	op := irregularOp(512, 21)
	run := func() float64 {
		return ExecuteDistributed(machine.DefaultConfig(16), op, procList(16),
			func() Policy { return &Taper{UseCostFunction: true} }, obs.OpObs{}).Makespan
	}
	if run() != run() {
		t.Fatal("distributed execution not deterministic")
	}
}

func TestSelfSchedulingOverheadHurts(t *testing.T) {
	// With many tiny tasks, SS pays per-task dispatch; TAPER batches.
	op := uniformOp(4096, 0.5)
	p := 16
	ss := ExecuteCentral(machine.DefaultConfig(p), op, procList(p),
		func() Policy { return SelfSched{} }, obs.OpObs{})
	tp := ExecuteCentral(machine.DefaultConfig(p), op, procList(p),
		func() Policy { return &Taper{} }, obs.OpObs{})
	if ss.Makespan <= tp.Makespan {
		t.Fatalf("SS (%v) should lose to TAPER (%v) on tiny tasks", ss.Makespan, tp.Makespan)
	}
	if ss.Chunks <= tp.Chunks {
		t.Fatal("SS should dispatch more chunks")
	}
}

func TestOwnerBlocks(t *testing.T) {
	// owner must partition tasks into p contiguous blocks.
	n, p := 100, 7
	counts := make([]int, p)
	prev := 0
	for i := 0; i < n; i++ {
		o := owner(i, n, p)
		if o < prev {
			t.Fatalf("owner not monotone at %d", i)
		}
		if o >= p {
			t.Fatalf("owner %d out of range", o)
		}
		prev = o
		counts[o]++
	}
	total := 0
	for _, c := range counts {
		total += c
	}
	if total != n {
		t.Fatalf("owners cover %d tasks, want %d", total, n)
	}
}

// TestNewTaskStatsZeroTasks: a zero-task operation must still produce a
// usable accumulator. binSize used to come out 0, so the first Observe
// or ObserveChunk call — even a defensive one — divided by zero.
func TestNewTaskStatsZeroTasks(t *testing.T) {
	ts := NewTaskStats(0)
	ts.Observe(0, 1)
	ts.ObserveChunk(0, 1, 2)
	if got := ts.Global.N(); got != 2 {
		t.Fatalf("N = %d, want 2", got)
	}
	if m := ts.RegionMean(0, 1); math.Abs(m-1.5) > 1e-12 {
		t.Fatalf("RegionMean = %v, want 1.5", m)
	}
	_ = ts.CostScale(0, 1)
}

// TestObserveChunkSpansBins: a chunk covering several bins must credit
// each bin with its share of the tasks, not lump everything into one
// bin and leave the others looking unsampled to RegionMean.
func TestObserveChunkSpansBins(t *testing.T) {
	ts := NewTaskStats(160) // 16 bins of 10
	ts.ObserveChunk(5, 30, 60)
	wantN := []int{5, 10, 10, 5}
	for b, want := range wantN {
		if got := ts.bins[b].N(); got != want {
			t.Errorf("bin %d: N = %d, want %d", b, got, want)
		}
	}
	for b := 4; b < len(ts.bins); b++ {
		if ts.bins[b].N() != 0 {
			t.Errorf("bin %d touched by chunk [5,35): N = %d", b, ts.bins[b].N())
		}
	}
	if got := ts.Global.N(); got != 30 {
		t.Fatalf("global N = %d, want 30", got)
	}
	if m := ts.RegionMean(0, 40); math.Abs(m-2) > 1e-12 {
		t.Fatalf("RegionMean(0,40) = %v, want 2", m)
	}
	// The last bin absorbs any overhang beyond n.
	ts2 := NewTaskStats(160)
	ts2.ObserveChunk(150, 20, 20)
	if got := ts2.bins[15].N(); got != 20 {
		t.Fatalf("overhanging chunk: last bin N = %d, want 20", got)
	}
}

// TestObserveChunkSingleTask: a one-task chunk must be exactly an
// Observe of that task.
func TestObserveChunkSingleTask(t *testing.T) {
	a := NewTaskStats(100)
	b := NewTaskStats(100)
	a.ObserveChunk(7, 1, 2.5)
	b.Observe(7, 2.5)
	if a.Global != b.Global || a.bins[0] != b.bins[0] {
		t.Fatalf("ObserveChunk(7,1,2.5) != Observe(7,2.5): %+v vs %+v", a.Global, b.Global)
	}
}
