package interp

import (
	"math"
	"testing"

	"orchestra/internal/source"
	"orchestra/internal/stats"
)

func parse(t *testing.T, src string) *source.Program {
	t.Helper()
	p, err := source.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return p
}

func TestScalarArithmetic(t *testing.T) {
	p := parse(t, `
program p
  integer a, b, c
  a = 2
  b = a * 3 + 1
  c = b - a / 2
end
`)
	st := NewState()
	if err := Run(p, st); err != nil {
		t.Fatal(err)
	}
	if st.Scalars["b"] != 7 || st.Scalars["c"] != 6 {
		t.Fatalf("b=%v c=%v", st.Scalars["b"], st.Scalars["c"])
	}
}

func TestLoopAndArray(t *testing.T) {
	p := parse(t, `
program p
  integer n
  real x(n)
  do i = 1, n
    x(i) = i * 2
  end do
end
`)
	st := NewState()
	st.Scalars["n"] = 5
	st.Alloc("x", 5)
	if err := Run(p, st); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if st.Arrays["x"][i] != float64(2*(i+1)) {
			t.Fatalf("x[%d] = %v", i, st.Arrays["x"][i])
		}
	}
}

func TestColumnMajorLayout(t *testing.T) {
	p := parse(t, `
program p
  integer n
  real q(n, n)
  q(2, 1) = 7
  q(1, 2) = 9
end
`)
	st := NewState()
	st.Scalars["n"] = 3
	st.Alloc("q", 3, 3)
	if err := Run(p, st); err != nil {
		t.Fatal(err)
	}
	// Column-major: (2,1) -> offset 1, (1,2) -> offset 3.
	if st.Arrays["q"][1] != 7 || st.Arrays["q"][3] != 9 {
		t.Fatalf("layout wrong: %v", st.Arrays["q"])
	}
}

func TestWhereGuard(t *testing.T) {
	p := parse(t, `
program p
  integer n
  integer mask(n)
  real x(n)
  do i = 1, n where (mask(i) != 0)
    x(i) = 1
  end do
end
`)
	st := NewState()
	st.Scalars["n"] = 4
	st.Alloc("mask", 4)
	st.Alloc("x", 4)
	st.Arrays["mask"][1] = 1
	st.Arrays["mask"][3] = 1
	if err := Run(p, st); err != nil {
		t.Fatal(err)
	}
	want := []float64{0, 1, 0, 1}
	for i, w := range want {
		if st.Arrays["x"][i] != w {
			t.Fatalf("x = %v", st.Arrays["x"])
		}
	}
}

func TestDiscontinuousRange(t *testing.T) {
	p := parse(t, `
program p
  integer n, a
  real x(n)
  do i = 1, a - 1 and a + 1, n
    x(i) = 1
  end do
end
`)
	st := NewState()
	st.Scalars["n"] = 5
	st.Scalars["a"] = 3
	st.Alloc("x", 5)
	if err := Run(p, st); err != nil {
		t.Fatal(err)
	}
	want := []float64{1, 1, 0, 1, 1}
	for i, w := range want {
		if st.Arrays["x"][i] != w {
			t.Fatalf("x = %v", st.Arrays["x"])
		}
	}
}

func TestStride(t *testing.T) {
	p := parse(t, `
program p
  integer n
  real x(n)
  do i = 2, n, 2
    x(i) = 1
  end do
end
`)
	st := NewState()
	st.Scalars["n"] = 6
	st.Alloc("x", 6)
	if err := Run(p, st); err != nil {
		t.Fatal(err)
	}
	want := []float64{0, 1, 0, 1, 0, 1}
	for i, w := range want {
		if st.Arrays["x"][i] != w {
			t.Fatalf("x = %v", st.Arrays["x"])
		}
	}
}

func TestIfElse(t *testing.T) {
	p := parse(t, `
program p
  integer a, b
  if (a > 0) then
    b = 1
  else
    b = 2
  end if
end
`)
	st := NewState()
	st.Scalars["a"] = -1
	if err := Run(p, st); err != nil {
		t.Fatal(err)
	}
	if st.Scalars["b"] != 2 {
		t.Fatalf("b = %v", st.Scalars["b"])
	}
}

func TestFunctionRegistryAndDefault(t *testing.T) {
	p := parse(t, `
program p
  real a, b
  a = f(2)
  b = f(2)
end
`)
	st := NewState()
	if err := Run(p, st); err != nil {
		t.Fatal(err)
	}
	if st.Scalars["a"] != st.Scalars["b"] {
		t.Fatal("default function not deterministic")
	}
	st2 := NewState()
	st2.Funcs["f"] = func(args []float64) float64 { return args[0] * 10 }
	if err := Run(p, st2); err != nil {
		t.Fatal(err)
	}
	if st2.Scalars["a"] != 20 {
		t.Fatalf("registered f = %v", st2.Scalars["a"])
	}
}

func TestErrors(t *testing.T) {
	cases := []struct {
		src   string
		setup func(*State)
	}{
		{"program p\n integer n\n real x(n)\n x(9) = 1\nend\n", func(st *State) {
			st.Scalars["n"] = 3
			st.Alloc("x", 3)
		}},
		{"program p\n real x(3)\nend\n", func(st *State) {}}, // unallocated
		{"program p\n integer a, b\n a = b\nend\n", func(st *State) {
			delete(st.Scalars, "b") // explicitly unbound
		}},
		{"program p\n integer a\n a = 1 / 0\nend\n", func(st *State) {}},
	}
	for i, c := range cases {
		st := NewState()
		c.setup(st)
		p := parse(t, c.src)
		// Remove auto-zeroing for the unbound-scalar case by pre-running
		// decl handling manually: Run zeroes declared scalars, so the
		// unbound case uses an undeclared name instead.
		if err := Run(p, st); i != 2 && err == nil {
			t.Errorf("case %d: no error", i)
		}
	}
}

func TestUndeclaredScalarUse(t *testing.T) {
	// Loop induction variables are bound by the loop; a never-assigned,
	// undeclared scalar read must fail.
	p := parse(t, `
program p
  integer a
  a = zz
end
`)
	st := NewState()
	if err := Run(p, st); err == nil {
		t.Fatal("unbound read did not fail")
	}
}

func TestStepLimit(t *testing.T) {
	p := parse(t, `
program p
  integer n, s
  do i = 1, n
    s = s + 1
  end do
end
`)
	st := NewState()
	st.Scalars["n"] = 1000000
	st.MaxSteps = 1000
	if err := Run(p, st); err == nil {
		t.Fatal("step limit not enforced")
	}
}

func TestInductionVariableRestored(t *testing.T) {
	p := parse(t, `
program p
  integer n, k
  real x(n)
  do i = 1, n
    x(i) = i
  end do
end
`)
	st := NewState()
	st.Scalars["n"] = 3
	st.Alloc("x", 3)
	if err := Run(p, st); err != nil {
		t.Fatal(err)
	}
	if _, ok := st.Scalars["i"]; ok {
		t.Fatal("induction variable leaked")
	}
}

func TestReduction(t *testing.T) {
	p := parse(t, `
program p
  integer n
  real x(n), sum
  do i = 1, n
    sum = sum + x(i)
  end do
end
`)
	st := NewState()
	st.Scalars["n"] = 100
	st.Alloc("x", 100)
	rng := stats.NewRNG(3)
	want := 0.0
	for i := range st.Arrays["x"] {
		st.Arrays["x"][i] = rng.Float64()
		want += st.Arrays["x"][i]
	}
	if err := Run(p, st); err != nil {
		t.Fatal(err)
	}
	if math.Abs(st.Scalars["sum"]-want) > 1e-9 {
		t.Fatalf("sum = %v, want %v", st.Scalars["sum"], want)
	}
}

func TestLogicalOperators(t *testing.T) {
	p := parse(t, `
program p
  integer a, b, c, d
  if (a > 0 && b > 0) then
    c = 1
  end if
  if (a > 0 || b > 0) then
    d = 1
  end if
end
`)
	st := NewState()
	st.Scalars["a"] = 1
	st.Scalars["b"] = -1
	if err := Run(p, st); err != nil {
		t.Fatal(err)
	}
	if st.Scalars["c"] != 0 {
		t.Fatalf("&& evaluated wrong: c = %v", st.Scalars["c"])
	}
	if st.Scalars["d"] != 1 {
		t.Fatalf("|| evaluated wrong: d = %v", st.Scalars["d"])
	}
}

func TestUnaryMinusAndReals(t *testing.T) {
	p := parse(t, `
program p
  real a, b
  a = -2.5
  b = -a * 2
end
`)
	st := NewState()
	if err := Run(p, st); err != nil {
		t.Fatal(err)
	}
	if st.Scalars["b"] != 5 {
		t.Fatalf("b = %v", st.Scalars["b"])
	}
}

func TestComparisonResults(t *testing.T) {
	p := parse(t, `
program p
  integer a, b, c, d, e, f, g
  a = 3 < 5
  b = 3 <= 3
  c = 3 > 5
  d = 5 >= 5
  e = 3 == 3
  f = 3 != 3
  g = 2
end
`)
	st := NewState()
	if err := Run(p, st); err != nil {
		t.Fatal(err)
	}
	want := map[string]float64{"a": 1, "b": 1, "c": 0, "d": 1, "e": 1, "f": 0}
	for k, w := range want {
		if st.Scalars[k] != w {
			t.Fatalf("%s = %v, want %v", k, st.Scalars[k], w)
		}
	}
}
