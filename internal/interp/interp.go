// Package interp is a reference interpreter for the mini-Fortran
// language: it executes programs directly over concrete memory. Its
// purpose is validation — the split and pipelining transformations must
// preserve sequential semantics, so the test suite runs original and
// transformed programs on identical inputs and compares the final
// memory states.
//
// Arrays are stored column-major with 1-based subscripts, as in
// Fortran. External functions resolve through a registry; unregistered
// functions default to a deterministic pure function of their
// arguments, so transformed programs that duplicate call sites remain
// comparable.
package interp

import (
	"fmt"
	"math"

	"orchestra/internal/source"
)

// Func is an external pure function.
type Func func(args []float64) float64

// State is the interpreter's memory.
type State struct {
	Scalars map[string]float64
	Arrays  map[string][]float64
	Dims    map[string][]int
	Funcs   map[string]Func

	// Steps counts executed statements (a safety valve against runaway
	// loops in malformed inputs).
	Steps    int
	MaxSteps int

	// OnLoad and OnStore, when non-nil, observe every array element
	// access (1-based indices). The soundness tests use them to record
	// ground-truth access sets.
	OnLoad  func(array string, idx []int64)
	OnStore func(array string, idx []int64)
}

// NewState prepares empty memory.
func NewState() *State {
	return &State{
		Scalars:  map[string]float64{},
		Arrays:   map[string][]float64{},
		Dims:     map[string][]int{},
		Funcs:    map[string]Func{},
		MaxSteps: 50_000_000,
	}
}

// DefaultFunc is the deterministic stand-in for unregistered external
// functions: a smooth, argument-dependent value.
func DefaultFunc(args []float64) float64 {
	v := 0.5
	for i, a := range args {
		v += math.Sin(a+float64(i)) * 0.5
	}
	return v
}

// Alloc declares an array with the given extents and zero contents.
func (st *State) Alloc(name string, dims ...int) {
	n := 1
	for _, d := range dims {
		n *= d
	}
	st.Arrays[name] = make([]float64, n)
	st.Dims[name] = append([]int{}, dims...)
}

// runtimeError is raised through panic/recover inside the evaluator.
type runtimeError struct{ err error }

func fail(format string, args ...interface{}) {
	panic(runtimeError{fmt.Errorf(format, args...)})
}

// Run executes the program. The caller must have declared scalars (via
// Scalars) and arrays (via Alloc) for the program's declarations; Run
// verifies array declarations match the allocated dimensionality.
func Run(p *source.Program, st *State) (err error) {
	defer func() {
		if r := recover(); r != nil {
			if re, ok := r.(runtimeError); ok {
				err = re.err
				return
			}
			panic(r)
		}
	}()
	for _, d := range p.Decls {
		if d.IsArray() {
			dims, ok := st.Dims[d.Name]
			if !ok {
				fail("array %s not allocated", d.Name)
			}
			if len(dims) != len(d.Dims) {
				fail("array %s allocated with %d dims, declared with %d",
					d.Name, len(dims), len(d.Dims))
			}
		} else if _, ok := st.Scalars[d.Name]; !ok {
			st.Scalars[d.Name] = 0
		}
	}
	st.execStmts(p.Body)
	return nil
}

func (st *State) step() {
	st.Steps++
	if st.MaxSteps > 0 && st.Steps > st.MaxSteps {
		fail("step limit exceeded (%d)", st.MaxSteps)
	}
}

func (st *State) execStmts(body []source.Stmt) {
	for _, s := range body {
		st.execStmt(s)
	}
}

func (st *State) execStmt(s source.Stmt) {
	st.step()
	switch s := s.(type) {
	case *source.Assign:
		v := st.eval(s.RHS)
		switch lhs := s.LHS.(type) {
		case *source.Ident:
			st.Scalars[lhs.Name] = v
		case *source.ArrayRef:
			st.store(lhs, v)
		default:
			fail("bad assignment target %T", s.LHS)
		}
	case *source.Do:
		st.execDo(s)
	case *source.If:
		if truthy(st.eval(s.Cond)) {
			st.execStmts(s.Then)
		} else {
			st.execStmts(s.Else)
		}
	case *source.CallStmt:
		// Subroutines are modelled as no-ops with argument evaluation;
		// programs under equivalence testing avoid them.
		for _, a := range s.Args {
			st.eval(a)
		}
	default:
		fail("unknown statement %T", s)
	}
}

func (st *State) execDo(d *source.Do) {
	outer, hadOuter := st.Scalars[d.Var]
	for _, r := range d.Ranges {
		lo := int(math.Round(st.eval(r.Lo)))
		hi := int(math.Round(st.eval(r.Hi)))
		stepBy := 1
		if r.Step != nil {
			stepBy = int(math.Round(st.eval(r.Step)))
			if stepBy < 1 {
				fail("non-positive do step %d", stepBy)
			}
		}
		for i := lo; i <= hi; i += stepBy {
			st.step()
			st.Scalars[d.Var] = float64(i)
			if d.Where != nil && !truthy(st.eval(d.Where)) {
				continue
			}
			st.execStmts(d.Body)
		}
	}
	// The induction variable of a completed loop is restored to avoid
	// leaking iteration state into comparisons (the analysis likewise
	// treats the post-loop value as opaque).
	if hadOuter {
		st.Scalars[d.Var] = outer
	} else {
		delete(st.Scalars, d.Var)
	}
}

func truthy(v float64) bool { return v != 0 }

// indices evaluates a reference's subscripts (1-based).
func (st *State) indices(ref *source.ArrayRef) []int64 {
	out := make([]int64, len(ref.Index))
	for k, ix := range ref.Index {
		out[k] = int64(math.Round(st.eval(ix)))
	}
	return out
}

// offset computes the column-major flat index of a reference.
func (st *State) offset(ref *source.ArrayRef) int {
	dims, ok := st.Dims[ref.Name]
	if !ok {
		fail("undeclared array %s", ref.Name)
	}
	if len(ref.Index) != len(dims) {
		fail("array %s: %d subscripts for %d dims", ref.Name, len(ref.Index), len(dims))
	}
	off := 0
	stride := 1
	for k, ix := range ref.Index {
		i := int(math.Round(st.eval(ix)))
		if i < 1 || i > dims[k] {
			fail("array %s: subscript %d = %d out of [1,%d]", ref.Name, k+1, i, dims[k])
		}
		off += (i - 1) * stride
		stride *= dims[k]
	}
	return off
}

func (st *State) store(ref *source.ArrayRef, v float64) {
	if st.OnStore != nil {
		st.OnStore(ref.Name, st.indices(ref))
	}
	st.Arrays[ref.Name][st.offset(ref)] = v
}

func (st *State) load(ref *source.ArrayRef) float64 {
	if st.OnLoad != nil {
		st.OnLoad(ref.Name, st.indices(ref))
	}
	return st.Arrays[ref.Name][st.offset(ref)]
}

func (st *State) eval(e source.Expr) float64 {
	switch e := e.(type) {
	case *source.Num:
		if e.IsReal {
			var v float64
			fmt.Sscanf(e.Text, "%g", &v)
			return v
		}
		return float64(e.Int)
	case *source.Ident:
		v, ok := st.Scalars[e.Name]
		if !ok {
			fail("unbound scalar %s", e.Name)
		}
		return v
	case *source.ArrayRef:
		return st.load(e)
	case *source.FuncCall:
		args := make([]float64, len(e.Args))
		for i, a := range e.Args {
			args[i] = st.eval(a)
		}
		if f, ok := st.Funcs[e.Name]; ok {
			return f(args)
		}
		return DefaultFunc(args)
	case *source.Un:
		if e.Op == "-" {
			return -st.eval(e.X)
		}
		fail("unknown unary %q", e.Op)
	case *source.Bin:
		switch e.Op {
		case "&&":
			return b2f(truthy(st.eval(e.L)) && truthy(st.eval(e.R)))
		case "||":
			return b2f(truthy(st.eval(e.L)) || truthy(st.eval(e.R)))
		}
		l, r := st.eval(e.L), st.eval(e.R)
		switch e.Op {
		case "+":
			return l + r
		case "-":
			return l - r
		case "*":
			return l * r
		case "/":
			if r == 0 {
				fail("division by zero")
			}
			return l / r
		case "==":
			return b2f(l == r)
		case "!=":
			return b2f(l != r)
		case "<":
			return b2f(l < r)
		case "<=":
			return b2f(l <= r)
		case ">":
			return b2f(l > r)
		case ">=":
			return b2f(l >= r)
		}
		fail("unknown operator %q", e.Op)
	}
	fail("unknown expression %T", e)
	return 0
}

func b2f(b bool) float64 {
	if b {
		return 1
	}
	return 0
}
