// Package core is the top-level API of the reproduction: the paper's
// primary contribution is the *combination* of compile-time split and
// adaptive runtime orchestration, and this package exposes that
// combination as a small facade over the internal packages.
//
// The typical flow mirrors the paper's toolchain:
//
//	out, err := core.CompileSource(text, core.DefaultOptions())          // §3: analysis + split
//	res, err := core.Execute(out, core.BindUniform(1024, 1),             // §4: adaptive runtime
//	        rts.RunOpts{Processors: 512, Mode: core.ModeSplit})
//
// CompileSource runs the symbolic analysis pipeline, applies split and
// pipelining, and returns the transformed program plus the Delirium
// dataflow graph. Execute runs that graph on the simulated
// distributed-memory machine under one of the three evaluation
// configurations. BindUniform and BindIrregular return serializable
// rts.Binding values naming synthetic kernels from the process-wide
// registry; real workloads register their own kernels (see
// internal/workload) or construct rts.OpSpec values directly.
//
// Importing core registers every backend ("sim", "native", "dist") and
// the built-in kernel families, so rts.OpenBackend and rts.Bind work
// by name.
package core

import (
	"math"

	"orchestra/internal/compile"
	_ "orchestra/internal/dist" // register the "dist" backend
	_ "orchestra/internal/native"
	"orchestra/internal/rts"
	"orchestra/internal/sched"
	"orchestra/internal/source"
	"orchestra/internal/stats"
	"orchestra/internal/trace"
)

// Options re-exports the compiler options.
type Options = compile.Options

// Output re-exports the compilation result.
type Output = compile.Output

// Mode re-exports the runtime execution mode.
type Mode = rts.Mode

// RunOpts re-exports the per-run options accepted by every backend.
type RunOpts = rts.RunOpts

// The three runtime configurations of the paper's evaluation.
const (
	ModeStatic = rts.ModeStatic
	ModeTaper  = rts.ModeTaper
	ModeSplit  = rts.ModeSplit
)

// DefaultOptions enables split and pipelining.
func DefaultOptions() Options { return compile.DefaultOptions() }

// CompileSource parses and compiles a mini-Fortran program.
func CompileSource(text string, opts Options) (*Output, error) {
	prog, err := source.Parse(text)
	if err != nil {
		return nil, err
	}
	return compile.Compile(prog, opts)
}

// Backend re-exports the execution-backend interface: the simulated
// Ncube-2 machine, the native goroutine runtime, or the distributed
// process runtime.
type Backend = rts.Backend

// BackendNames lists the registered backend names, sorted.
func BackendNames() []string { return rts.BackendNames() }

// NewBackend constructs a backend by name through the backend
// registry. For "sim", p sizes the simulated machine's cost model (and
// is the default processor count when RunOpts.Processors is zero); the
// measured backends treat p as their default worker count, overridden
// by RunOpts.Processors at Run time.
func NewBackend(name string, p int) (Backend, error) {
	return rts.OpenBackend(name, rts.BackendConfig{Processors: p})
}

// Execute runs a compilation's dataflow graph on a simulated machine
// under the given options. The machine is sized to opts.Processors.
func Execute(out *Output, binding rts.Binding, opts RunOpts) (trace.Result, error) {
	p := opts.Processors
	if p < 1 {
		p = 1
	}
	be, err := rts.OpenBackend("sim", rts.BackendConfig{Processors: p})
	if err != nil {
		return trace.Result{}, err
	}
	return ExecuteOn(be, out, binding, opts)
}

// ExecuteOn runs a compilation's dataflow graph on the given backend
// under the given options, binding kernels by name from the registry.
func ExecuteOn(be Backend, out *Output, binding rts.Binding, opts RunOpts) (trace.Result, error) {
	bound, err := rts.Bind(out.Graph, binding)
	if err != nil {
		return trace.Result{}, err
	}
	return be.Run(out.Graph, bound, opts)
}

// BindUniform binds every graph node to an operation of n tasks with
// constant task time (the "uniform" registry kernel).
func BindUniform(n int, taskTime float64) rts.Binding {
	params := rts.KernelParams{}
	params.SetInt("tasks", n)
	params.SetFloat("t", taskTime)
	return rts.NamedBinding("uniform", params)
}

// BindIrregular binds every graph node to an operation of n tasks with
// log-normally distributed task times of unit mean and the given
// coefficient of variation, seeded per node name so runs are
// deterministic (the "irregular" registry kernel).
func BindIrregular(n int, cv float64, seed uint64) rts.Binding {
	params := rts.KernelParams{}
	params.SetInt("tasks", n)
	params.SetFloat("cv", cv)
	params.SetUint64("seed", seed)
	return rts.NamedBinding("irregular", params)
}

func init() {
	rts.Kernels.MustRegister("uniform", uniformKernel)
	rts.Kernels.MustRegister("irregular", irregularKernel)
}

// uniformKernel is BindUniform's constructor: params "tasks" (task
// count, default 1024) and "t" (constant task time, default 1).
func uniformKernel(env *rts.BindEnv, op string) (rts.OpSpec, error) {
	n := env.Params.Int("tasks", 1024)
	taskTime := env.Params.Float("t", 1)
	spec := rts.OpSpec{Op: sched.Op{
		Name:  op,
		N:     n,
		Time:  func(int) float64 { return taskTime },
		Bytes: 64,
		Hint:  func(int) float64 { return taskTime },
	}}
	spec.SampleStats(64)
	return spec, nil
}

// irregularKernel is BindIrregular's constructor: params "tasks"
// (default 1024), "cv" (coefficient of variation, default 1), "seed".
func irregularKernel(env *rts.BindEnv, op string) (rts.OpSpec, error) {
	n := env.Params.Int("tasks", 1024)
	cv := env.Params.Float("cv", 1)
	seed := env.Params.Uint64("seed", 1)
	sigma := math.Sqrt(math.Log(1 + cv*cv))
	mu := -sigma * sigma / 2
	rng := stats.NewRNG(seed ^ hashName(op))
	times := make([]float64, n)
	for i := range times {
		times[i] = rng.LogNormal(mu, sigma)
	}
	t := times
	spec := rts.OpSpec{Op: sched.Op{
		Name:  op,
		N:     n,
		Time:  func(i int) float64 { return t[i] },
		Bytes: 64,
		Hint:  func(i int) float64 { return t[i] },
	}}
	spec.SampleStats(128)
	return spec, nil
}

// hashName is FNV-1a, keeping per-node workloads distinct.
func hashName(s string) uint64 {
	var h uint64 = 14695981039346656037
	for i := 0; i < len(s); i++ {
		h = (h ^ uint64(s[i])) * 1099511628211
	}
	return h
}
