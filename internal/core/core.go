// Package core is the top-level API of the reproduction: the paper's
// primary contribution is the *combination* of compile-time split and
// adaptive runtime orchestration, and this package exposes that
// combination as a small facade over the internal packages.
//
// The typical flow mirrors the paper's toolchain:
//
//	out, err := core.CompileSource(text, core.DefaultOptions())          // §3: analysis + split
//	res, err := core.Execute(out, bind, rts.RunOpts{                     // §4: adaptive runtime
//	        Processors: 512, Mode: core.ModeSplit})
//
// CompileSource runs the symbolic analysis pipeline, applies split and
// pipelining, and returns the transformed program plus the Delirium
// dataflow graph. Execute runs that graph on the simulated
// distributed-memory machine under one of the three evaluation
// configurations. BindUniform and BindIrregular provide synthetic
// operation bindings for experimentation; real workloads construct
// rts.OpSpec values directly (see internal/workload).
package core

import (
	"fmt"
	"math"

	"orchestra/internal/compile"
	"orchestra/internal/machine"
	"orchestra/internal/native"
	"orchestra/internal/rts"
	"orchestra/internal/sched"
	"orchestra/internal/source"
	"orchestra/internal/stats"
	"orchestra/internal/trace"
)

// Options re-exports the compiler options.
type Options = compile.Options

// Output re-exports the compilation result.
type Output = compile.Output

// Mode re-exports the runtime execution mode.
type Mode = rts.Mode

// RunOpts re-exports the per-run options accepted by every backend.
type RunOpts = rts.RunOpts

// The three runtime configurations of the paper's evaluation.
const (
	ModeStatic = rts.ModeStatic
	ModeTaper  = rts.ModeTaper
	ModeSplit  = rts.ModeSplit
)

// DefaultOptions enables split and pipelining.
func DefaultOptions() Options { return compile.DefaultOptions() }

// CompileSource parses and compiles a mini-Fortran program.
func CompileSource(text string, opts Options) (*Output, error) {
	prog, err := source.Parse(text)
	if err != nil {
		return nil, err
	}
	return compile.Compile(prog, opts)
}

// Backend re-exports the execution-backend interface: the simulated
// Ncube-2 machine or the native goroutine runtime.
type Backend = rts.Backend

// BackendNames lists the recognized backend names, in the order the
// command-line tools document them.
func BackendNames() []string { return []string{"sim", "native"} }

// NewBackend constructs a backend by name. For "sim", p sizes the
// simulated machine's cost model (and is the default processor count
// when RunOpts.Processors is zero); the native backend ignores p —
// its worker count comes from RunOpts at Run time.
func NewBackend(name string, p int) (Backend, error) {
	switch name {
	case "sim":
		return rts.NewSimBackend(machine.DefaultConfig(p)), nil
	case "native":
		return native.Backend{}, nil
	}
	return nil, fmt.Errorf("core: unknown backend %q (valid: sim, native)", name)
}

// Execute runs a compilation's dataflow graph on a simulated machine
// under the given options. The machine is sized to opts.Processors.
func Execute(out *Output, bind rts.Binder, opts RunOpts) (trace.Result, error) {
	p := opts.Processors
	if p < 1 {
		p = 1
	}
	return ExecuteOn(rts.NewSimBackend(machine.DefaultConfig(p)), out, bind, opts)
}

// ExecuteOn runs a compilation's dataflow graph on the given backend
// under the given options.
func ExecuteOn(be Backend, out *Output, bind rts.Binder, opts RunOpts) (trace.Result, error) {
	return be.Run(out.Graph, bind, opts)
}

// BindUniform binds every graph node to an operation of n tasks with
// constant task time.
func BindUniform(n int, taskTime float64) rts.Binder {
	return func(name string) rts.OpSpec {
		spec := rts.OpSpec{Op: sched.Op{
			Name:  name,
			N:     n,
			Time:  func(int) float64 { return taskTime },
			Bytes: 64,
			Hint:  func(int) float64 { return taskTime },
		}}
		spec.SampleStats(64)
		return spec
	}
}

// BindIrregular binds every graph node to an operation of n tasks with
// log-normally distributed task times of unit mean and the given
// coefficient of variation, seeded per node name so runs are
// deterministic.
func BindIrregular(n int, cv float64, seed uint64) rts.Binder {
	sigma := math.Sqrt(math.Log(1 + cv*cv))
	mu := -sigma * sigma / 2
	return func(name string) rts.OpSpec {
		rng := stats.NewRNG(seed ^ hashName(name))
		times := make([]float64, n)
		for i := range times {
			times[i] = rng.LogNormal(mu, sigma)
		}
		t := times
		spec := rts.OpSpec{Op: sched.Op{
			Name:  name,
			N:     n,
			Time:  func(i int) float64 { return t[i] },
			Bytes: 64,
			Hint:  func(i int) float64 { return t[i] },
		}}
		spec.SampleStats(128)
		return spec
	}
}

// hashName is FNV-1a, keeping per-node workloads distinct.
func hashName(s string) uint64 {
	var h uint64 = 14695981039346656037
	for i := 0; i < len(s); i++ {
		h = (h ^ uint64(s[i])) * 1099511628211
	}
	return h
}
