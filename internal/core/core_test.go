package core

import (
	"os"
	"testing"

	"orchestra/internal/delirium"
	"orchestra/internal/dist"
	"orchestra/internal/rts"
)

// TestMain routes dist worker forks: the dist backend re-executes this
// test binary for its worker processes.
func TestMain(m *testing.M) {
	dist.MaybeWorker()
	os.Exit(m.Run())
}

// bindTo instantiates a registry binding against a fresh two-node
// graph and returns the resolved spec lookup.
func bindTo(t *testing.T, binding rts.Binding) func(string) rts.OpSpec {
	t.Helper()
	g := delirium.NewGraph("t")
	for _, n := range []string{"a", "c"} {
		if err := g.AddNode(&delirium.Node{Name: n, Kind: delirium.Par}); err != nil {
			t.Fatal(err)
		}
	}
	bound, err := rts.Bind(g, binding)
	if err != nil {
		t.Fatal(err)
	}
	return bound.Spec
}

const sample = `
program sample
  integer n
  integer mask(n)
  real result(n), q(n, n), output(n, n), w(n)

  do col = 1, n where (mask(col) != 0)
    do i = 1, n
      result(i) = 0
      do j = 1, n
        result(i) = result(i) + q(j, i) * w(j)
      end do
    end do
    do i = 1, n
      q(i, col) = result(i)
    end do
  end do

  do i = 1, n
    do j = 1, n
      output(j, i) = f(q(j, i))
    end do
  end do
end
`

func TestCompileAndExecuteAllModes(t *testing.T) {
	out, err := CompileSource(sample, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Report) == 0 {
		t.Fatal("no transformations applied")
	}
	bind := BindIrregular(1024, 1.2, 7)
	var speedups []float64
	for _, mode := range []Mode{ModeStatic, ModeTaper, ModeSplit} {
		r, err := Execute(out, bind, RunOpts{Processors: 128, Mode: mode})
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		if r.Makespan <= 0 {
			t.Fatalf("%v: empty result", mode)
		}
		speedups = append(speedups, r.Speedup())
	}
	// The adaptive modes must beat static on irregular work.
	if speedups[1] <= speedups[0] || speedups[2] <= speedups[0] {
		t.Fatalf("adaptive modes lost to static: %v", speedups)
	}
}

func TestCompileSourceErrors(t *testing.T) {
	if _, err := CompileSource("not a program", DefaultOptions()); err == nil {
		t.Fatal("bad source accepted")
	}
}

func TestBindUniformDeterministic(t *testing.T) {
	spec := bindTo(t, BindUniform(16, 2.5))("a")
	if spec.Op.N != 16 || spec.Op.Time(3) != 2.5 || spec.Mu != 2.5 {
		t.Fatalf("uniform bind: %+v", spec)
	}
}

func TestBindIrregularPerNodeDistinct(t *testing.T) {
	b := bindTo(t, BindIrregular(256, 1.0, 3))
	a1 := b("a")
	a2 := b("a")
	c := b("c")
	if a1.Op.Time(5) != a2.Op.Time(5) {
		t.Fatal("same node bound differently across calls")
	}
	same := 0
	for i := 0; i < 256; i++ {
		if a1.Op.Time(i) == c.Op.Time(i) {
			same++
		}
	}
	if same > 16 {
		t.Fatalf("distinct nodes share %d task times", same)
	}
}

func TestNewBackend(t *testing.T) {
	for _, name := range BackendNames() {
		be, err := NewBackend(name, 4)
		if err != nil {
			t.Fatalf("NewBackend(%q): %v", name, err)
		}
		if be.Name() != name {
			t.Errorf("NewBackend(%q).Name() = %q", name, be.Name())
		}
	}
	if _, err := NewBackend("tpu", 4); err == nil {
		t.Fatal("NewBackend accepted an unknown name")
	}
}

func TestExecuteOnBothBackends(t *testing.T) {
	out, err := CompileSource(sample, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range BackendNames() {
		be, err := NewBackend(name, 4)
		if err != nil {
			t.Fatal(err)
		}
		r, err := ExecuteOn(be, out, BindUniform(128, 1), RunOpts{Processors: 4, Mode: ModeSplit})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if r.Makespan <= 0 {
			t.Errorf("%s: makespan %v, want positive", name, r.Makespan)
		}
		info, _ := rts.LookupBackend(name)
		wantUnit := ""
		if info.Measured {
			wantUnit = "s"
		}
		if r.Unit != wantUnit {
			t.Errorf("%s: unit %q, want %q", name, r.Unit, wantUnit)
		}
	}
}
