package source

import (
	"fmt"
	"strconv"
	"strings"
)

// ParseError reports a syntax error with its position.
type ParseError struct {
	Pos Pos
	Msg string
}

func (e *ParseError) Error() string { return fmt.Sprintf("%s: %s", e.Pos, e.Msg) }

type parser struct {
	toks   []Token
	pos    int
	arrays map[string]bool // declared array names, for ident(...) resolution
}

// Parse parses a complete mini-Fortran program.
func Parse(src string) (*Program, error) {
	toks, err := Tokenize(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks, arrays: map[string]bool{}}
	return p.parseProgram()
}

func (p *parser) cur() Token  { return p.toks[p.pos] }
func (p *parser) next() Token { t := p.toks[p.pos]; p.pos++; return t }

func (p *parser) errf(format string, args ...interface{}) error {
	return &ParseError{Pos: p.cur().Pos, Msg: fmt.Sprintf(format, args...)}
}

func (p *parser) atKeyword(kw string) bool {
	t := p.cur()
	return t.Kind == TokKeyword && t.Text == kw
}

func (p *parser) expectKeyword(kw string) error {
	if !p.atKeyword(kw) {
		return p.errf("expected %q, found %s", kw, p.cur())
	}
	p.next()
	return nil
}

func (p *parser) atOp(op string) bool {
	t := p.cur()
	return t.Kind == TokOp && t.Text == op
}

func (p *parser) expectOp(op string) error {
	if !p.atOp(op) {
		return p.errf("expected %q, found %s", op, p.cur())
	}
	p.next()
	return nil
}

func (p *parser) expectKind(k TokKind) (Token, error) {
	if p.cur().Kind != k {
		return Token{}, p.errf("expected %s, found %s", k, p.cur())
	}
	return p.next(), nil
}

// skipNewlines consumes any run of newline tokens.
func (p *parser) skipNewlines() {
	for p.cur().Kind == TokNewline {
		p.next()
	}
}

// endOfStmt consumes the newline (or EOF) that terminates a statement.
func (p *parser) endOfStmt() error {
	switch p.cur().Kind {
	case TokNewline:
		p.skipNewlines()
		return nil
	case TokEOF:
		return nil
	}
	return p.errf("expected end of statement, found %s", p.cur())
}

func (p *parser) parseProgram() (*Program, error) {
	p.skipNewlines()
	if err := p.expectKeyword("program"); err != nil {
		return nil, err
	}
	nameTok, err := p.expectKind(TokIdent)
	if err != nil {
		return nil, err
	}
	if err := p.endOfStmt(); err != nil {
		return nil, err
	}
	prog := &Program{Name: nameTok.Text, decls: map[string]*Decl{}}

	// Declarations: a run of integer/real lines.
	for p.atKeyword("integer") || p.atKeyword("real") {
		decls, err := p.parseDeclLine()
		if err != nil {
			return nil, err
		}
		for _, d := range decls {
			if prog.decls[d.Name] != nil {
				return nil, &ParseError{Pos: d.Pos, Msg: fmt.Sprintf("duplicate declaration of %q", d.Name)}
			}
			prog.Decls = append(prog.Decls, d)
			prog.decls[d.Name] = d
			if d.IsArray() {
				p.arrays[d.Name] = true
			}
		}
	}

	body, err := p.parseStmts(func() bool { return p.atKeyword("end") })
	if err != nil {
		return nil, err
	}
	prog.Body = body
	if err := p.expectKeyword("end"); err != nil {
		return nil, err
	}
	p.skipNewlines()
	if p.cur().Kind != TokEOF {
		return nil, p.errf("unexpected input after program end: %s", p.cur())
	}
	return prog, nil
}

func (p *parser) parseDeclLine() ([]*Decl, error) {
	typTok := p.next()
	typ := Integer
	if typTok.Text == "real" {
		typ = Real
	}
	var decls []*Decl
	for {
		nameTok, err := p.expectKind(TokIdent)
		if err != nil {
			return nil, err
		}
		d := &Decl{Name: nameTok.Text, Type: typ, Pos: nameTok.Pos}
		if p.cur().Kind == TokLParen {
			p.next()
			for {
				dim, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				d.Dims = append(d.Dims, dim)
				if p.cur().Kind == TokComma {
					p.next()
					continue
				}
				break
			}
			if _, err := p.expectKind(TokRParen); err != nil {
				return nil, err
			}
		}
		decls = append(decls, d)
		if p.cur().Kind == TokComma {
			p.next()
			continue
		}
		break
	}
	return decls, p.endOfStmt()
}

// parseStmts parses statements until stop() reports the terminator is
// current (terminator not consumed).
func (p *parser) parseStmts(stop func() bool) ([]Stmt, error) {
	var out []Stmt
	for {
		p.skipNewlines()
		if stop() {
			return out, nil
		}
		if p.cur().Kind == TokEOF {
			return nil, p.errf("unexpected end of input")
		}
		s, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		out = append(out, s)
	}
}

func (p *parser) parseStmt() (Stmt, error) {
	switch {
	case p.atKeyword("do"):
		return p.parseDo()
	case p.atKeyword("if"):
		return p.parseIf()
	case p.atKeyword("call"):
		return p.parseCall()
	case p.cur().Kind == TokIdent:
		return p.parseAssign()
	}
	return nil, p.errf("expected statement, found %s", p.cur())
}

func (p *parser) parseDo() (Stmt, error) {
	doTok := p.next() // "do"
	varTok, err := p.expectKind(TokIdent)
	if err != nil {
		return nil, err
	}
	if err := p.expectOp("="); err != nil {
		return nil, err
	}
	d := &Do{Var: varTok.Text, Pos: doTok.Pos}

	r, err := p.parseDoRange()
	if err != nil {
		return nil, err
	}
	d.Ranges = append(d.Ranges, r)
	// Additional ranges joined by "and" (discontinuous iteration
	// space). Every segment may carry its own step: "and" delimits
	// segments unambiguously, so a stepped segment in any position —
	// including the first — composes with further segments.
	for p.atKeyword("and") {
		p.next()
		r, err := p.parseDoRange()
		if err != nil {
			return nil, err
		}
		d.Ranges = append(d.Ranges, r)
	}

	if p.atKeyword("where") {
		p.next()
		if _, err := p.expectKind(TokLParen); err != nil {
			return nil, err
		}
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expectKind(TokRParen); err != nil {
			return nil, err
		}
		d.Where = cond
	}
	if err := p.endOfStmt(); err != nil {
		return nil, err
	}

	body, err := p.parseStmts(func() bool { return p.atKeyword("end") || p.atKeyword("enddo") })
	if err != nil {
		return nil, err
	}
	d.Body = body
	if p.atKeyword("enddo") {
		p.next()
	} else {
		if err := p.expectKeyword("end"); err != nil {
			return nil, err
		}
		if err := p.expectKeyword("do"); err != nil {
			return nil, err
		}
	}
	return d, p.endOfStmt()
}

// parseDoRange parses "lo, hi [, step]".
func (p *parser) parseDoRange() (DoRange, error) {
	lo, err := p.parseExpr()
	if err != nil {
		return DoRange{}, err
	}
	if _, err := p.expectKind(TokComma); err != nil {
		return DoRange{}, err
	}
	hi, err := p.parseExpr()
	if err != nil {
		return DoRange{}, err
	}
	r := DoRange{Lo: lo, Hi: hi}
	if p.cur().Kind == TokComma {
		p.next()
		step, err := p.parseExpr()
		if err != nil {
			return DoRange{}, err
		}
		r.Step = step
	}
	return r, nil
}

func (p *parser) parseIf() (Stmt, error) {
	ifTok := p.next() // "if"
	if _, err := p.expectKind(TokLParen); err != nil {
		return nil, err
	}
	cond, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expectKind(TokRParen); err != nil {
		return nil, err
	}
	st := &If{Cond: cond, Pos: ifTok.Pos}

	if !p.atKeyword("then") {
		// One-line form: if (cond) assignment
		one, err := p.parseAssign()
		if err != nil {
			return nil, err
		}
		st.Then = []Stmt{one}
		return st, nil
	}
	p.next() // "then"
	if err := p.endOfStmt(); err != nil {
		return nil, err
	}
	thenBody, err := p.parseStmts(func() bool {
		return p.atKeyword("else") || p.atKeyword("endif") || p.atKeyword("end")
	})
	if err != nil {
		return nil, err
	}
	st.Then = thenBody
	if p.atKeyword("else") {
		p.next()
		if err := p.endOfStmt(); err != nil {
			return nil, err
		}
		elseBody, err := p.parseStmts(func() bool {
			return p.atKeyword("endif") || p.atKeyword("end")
		})
		if err != nil {
			return nil, err
		}
		st.Else = elseBody
	}
	if p.atKeyword("endif") {
		p.next()
	} else {
		if err := p.expectKeyword("end"); err != nil {
			return nil, err
		}
		if err := p.expectKeyword("if"); err != nil {
			// "end if" uses the identifier "if"? No: "if" is a keyword.
			return nil, err
		}
	}
	return st, p.endOfStmt()
}

func (p *parser) parseCall() (Stmt, error) {
	callTok := p.next() // "call"
	nameTok, err := p.expectKind(TokIdent)
	if err != nil {
		return nil, err
	}
	st := &CallStmt{Name: nameTok.Text, Pos: callTok.Pos}
	if _, err := p.expectKind(TokLParen); err != nil {
		return nil, err
	}
	if p.cur().Kind != TokRParen {
		for {
			arg, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			st.Args = append(st.Args, arg)
			if p.cur().Kind == TokComma {
				p.next()
				continue
			}
			break
		}
	}
	if _, err := p.expectKind(TokRParen); err != nil {
		return nil, err
	}
	return st, p.endOfStmt()
}

func (p *parser) parseAssign() (Stmt, error) {
	lhs, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	switch lhs.(type) {
	case *Ident, *ArrayRef:
	default:
		return nil, &ParseError{Pos: lhs.GetPos(), Msg: "assignment target must be a variable or array element"}
	}
	if err := p.expectOp("="); err != nil {
		return nil, err
	}
	rhs, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	st := &Assign{LHS: lhs, RHS: rhs, Pos: lhs.GetPos()}
	return st, p.endOfStmt()
}

// Binary operator precedence, loosest first.
var precLevels = [][]string{
	{"||"},
	{"&&"},
	{"==", "!=", "<", "<=", ">", ">="},
	{"+", "-"},
	{"*", "/"},
}

func (p *parser) parseExpr() (Expr, error) { return p.parseBin(0) }

func (p *parser) parseBin(level int) (Expr, error) {
	if level >= len(precLevels) {
		return p.parseUnary()
	}
	lhs, err := p.parseBin(level + 1)
	if err != nil {
		return nil, err
	}
	for {
		t := p.cur()
		if t.Kind != TokOp || !contains(precLevels[level], t.Text) {
			return lhs, nil
		}
		p.next()
		rhs, err := p.parseBin(level + 1)
		if err != nil {
			return nil, err
		}
		lhs = &Bin{Op: t.Text, L: lhs, R: rhs, Pos: t.Pos}
	}
}

func contains(ss []string, s string) bool {
	for _, x := range ss {
		if x == s {
			return true
		}
	}
	return false
}

func (p *parser) parseUnary() (Expr, error) {
	t := p.cur()
	if t.Kind == TokOp && t.Text == "-" {
		p.next()
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &Un{Op: t.Text, X: x, Pos: t.Pos}, nil
	}
	return p.parsePrimary()
}

func (p *parser) parsePrimary() (Expr, error) {
	t := p.cur()
	switch t.Kind {
	case TokNumber:
		p.next()
		if strings.Contains(t.Text, ".") {
			return &Num{Text: t.Text, IsReal: true, Pos: t.Pos}, nil
		}
		v, err := strconv.ParseInt(t.Text, 10, 64)
		if err != nil {
			return nil, &ParseError{Pos: t.Pos, Msg: "integer literal out of range"}
		}
		return &Num{Text: t.Text, Int: v, Pos: t.Pos}, nil
	case TokIdent:
		p.next()
		if p.cur().Kind != TokLParen {
			return &Ident{Name: t.Text, Pos: t.Pos}, nil
		}
		p.next() // "("
		var args []Expr
		if p.cur().Kind != TokRParen {
			for {
				a, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				args = append(args, a)
				if p.cur().Kind == TokComma {
					p.next()
					continue
				}
				break
			}
		}
		if _, err := p.expectKind(TokRParen); err != nil {
			return nil, err
		}
		if p.arrays[t.Text] {
			return &ArrayRef{Name: t.Text, Index: args, Pos: t.Pos}, nil
		}
		return &FuncCall{Name: t.Text, Args: args, Pos: t.Pos}, nil
	case TokLParen:
		p.next()
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expectKind(TokRParen); err != nil {
			return nil, err
		}
		return e, nil
	}
	return nil, p.errf("expected expression, found %s", p.cur())
}
