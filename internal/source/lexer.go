package source

import (
	"fmt"
	"strings"
)

// Lexer tokenizes mini-Fortran input. Comments run from '!' to end of
// line. Newlines are significant (they terminate statements) and are
// produced as TokNewline tokens; blank lines collapse.
type Lexer struct {
	src  string
	off  int
	line int
	col  int
}

// NewLexer returns a lexer over src.
func NewLexer(src string) *Lexer {
	return &Lexer{src: src, line: 1, col: 1}
}

// LexError reports a lexical error with its position.
type LexError struct {
	Pos Pos
	Msg string
}

func (e *LexError) Error() string { return fmt.Sprintf("%s: %s", e.Pos, e.Msg) }

func (l *Lexer) peek() byte {
	if l.off >= len(l.src) {
		return 0
	}
	return l.src[l.off]
}

func (l *Lexer) peek2() byte {
	if l.off+1 >= len(l.src) {
		return 0
	}
	return l.src[l.off+1]
}

func (l *Lexer) advance() byte {
	c := l.src[l.off]
	l.off++
	if c == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return c
}

func isIdentStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isIdentCont(c byte) bool { return isIdentStart(c) || isDigit(c) }

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

// Next returns the next token.
func (l *Lexer) Next() (Token, error) {
	for {
		c := l.peek()
		if c == ' ' || c == '\t' || c == '\r' {
			l.advance()
			continue
		}
		if c == '!' && l.peek2() != '=' { // comment to end of line ("!=" is an operator)
			for l.off < len(l.src) && l.peek() != '\n' {
				l.advance()
			}
			continue
		}
		break
	}
	pos := Pos{l.line, l.col}
	if l.off >= len(l.src) {
		return Token{Kind: TokEOF, Pos: pos}, nil
	}
	c := l.peek()
	switch {
	case c == '\n':
		l.advance()
		return Token{Kind: TokNewline, Text: "\n", Pos: pos}, nil
	case c == '(':
		l.advance()
		return Token{Kind: TokLParen, Text: "(", Pos: pos}, nil
	case c == ')':
		l.advance()
		return Token{Kind: TokRParen, Text: ")", Pos: pos}, nil
	case c == ',':
		l.advance()
		return Token{Kind: TokComma, Text: ",", Pos: pos}, nil
	case isDigit(c):
		start := l.off
		for l.off < len(l.src) && isDigit(l.peek()) {
			l.advance()
		}
		// Fraction, but only when followed by a digit (so "1." is not
		// consumed; the language has no trailing-dot literals).
		if l.peek() == '.' && isDigit(l.peek2()) {
			l.advance()
			for l.off < len(l.src) && isDigit(l.peek()) {
				l.advance()
			}
		}
		return Token{Kind: TokNumber, Text: l.src[start:l.off], Pos: pos}, nil
	case isIdentStart(c):
		start := l.off
		for l.off < len(l.src) && isIdentCont(l.peek()) {
			l.advance()
		}
		text := strings.ToLower(l.src[start:l.off])
		kind := TokIdent
		if keywords[text] {
			kind = TokKeyword
		}
		return Token{Kind: kind, Text: text, Pos: pos}, nil
	}
	// Operators, longest match first.
	two := ""
	if l.off+1 < len(l.src) {
		two = l.src[l.off : l.off+2]
	}
	switch two {
	case "==", "!=", "<>", "<=", ">=", "&&", "||":
		l.advance()
		l.advance()
		t := two
		if t == "<>" {
			t = "!=" // normalize the paper's FORTRAN-style disequality
		}
		return Token{Kind: TokOp, Text: t, Pos: pos}, nil
	}
	switch c {
	case '+', '-', '*', '/', '=', '<', '>':
		l.advance()
		return Token{Kind: TokOp, Text: string(c), Pos: pos}, nil
	}
	return Token{}, &LexError{Pos: pos, Msg: fmt.Sprintf("unexpected character %q", string(c))}
}

// Tokenize lexes the entire input.
func Tokenize(src string) ([]Token, error) {
	l := NewLexer(src)
	var out []Token
	for {
		t, err := l.Next()
		if err != nil {
			return nil, err
		}
		out = append(out, t)
		if t.Kind == TokEOF {
			return out, nil
		}
	}
}
