package source

import (
	"fmt"
	"strings"
)

// FormatExpr renders an expression as mini-Fortran source.
func FormatExpr(e Expr) string {
	var b strings.Builder
	writeExpr(&b, e, 0)
	return b.String()
}

// precedence of an operator for parenthesization decisions.
func opPrec(op string) int {
	for i, level := range precLevels {
		if contains(level, op) {
			return i
		}
	}
	return len(precLevels)
}

func writeExpr(b *strings.Builder, e Expr, parentPrec int) {
	switch e := e.(type) {
	case *Num:
		if e.Text != "" {
			b.WriteString(e.Text)
		} else {
			fmt.Fprintf(b, "%d", e.Int)
		}
	case *Ident:
		b.WriteString(e.Name)
	case *ArrayRef:
		b.WriteString(e.Name)
		b.WriteByte('(')
		for i, x := range e.Index {
			if i > 0 {
				b.WriteString(", ")
			}
			writeExpr(b, x, 0)
		}
		b.WriteByte(')')
	case *FuncCall:
		b.WriteString(e.Name)
		b.WriteByte('(')
		for i, x := range e.Args {
			if i > 0 {
				b.WriteString(", ")
			}
			writeExpr(b, x, 0)
		}
		b.WriteByte(')')
	case *Bin:
		prec := opPrec(e.Op)
		if prec < parentPrec {
			b.WriteByte('(')
		}
		writeExpr(b, e.L, prec)
		fmt.Fprintf(b, " %s ", e.Op)
		writeExpr(b, e.R, prec+1)
		if prec < parentPrec {
			b.WriteByte(')')
		}
	case *Un:
		b.WriteString(e.Op)
		writeExpr(b, e.X, len(precLevels))
	default:
		panic("source: unknown expression node in printer")
	}
}

// Format renders a whole program as mini-Fortran source.
func Format(p *Program) string {
	var b strings.Builder
	fmt.Fprintf(&b, "program %s\n", p.Name)
	for _, d := range p.Decls {
		fmt.Fprintf(&b, "  %s %s", d.Type, d.Name)
		if d.IsArray() {
			b.WriteByte('(')
			for i, dim := range d.Dims {
				if i > 0 {
					b.WriteString(", ")
				}
				writeExpr(&b, dim, 0)
			}
			b.WriteByte(')')
		}
		b.WriteByte('\n')
	}
	writeStmts(&b, p.Body, 1)
	b.WriteString("end\n")
	return b.String()
}

// FormatStmts renders a statement list at the given indent level.
func FormatStmts(ss []Stmt, indent int) string {
	var b strings.Builder
	writeStmts(&b, ss, indent)
	return b.String()
}

func writeStmts(b *strings.Builder, ss []Stmt, indent int) {
	for _, s := range ss {
		writeStmt(b, s, indent)
	}
}

func ind(b *strings.Builder, n int) {
	for i := 0; i < n; i++ {
		b.WriteString("  ")
	}
}

func writeStmt(b *strings.Builder, s Stmt, indent int) {
	switch s := s.(type) {
	case *Assign:
		ind(b, indent)
		writeExpr(b, s.LHS, 0)
		b.WriteString(" = ")
		writeExpr(b, s.RHS, 0)
		b.WriteByte('\n')
	case *Do:
		ind(b, indent)
		fmt.Fprintf(b, "do %s = ", s.Var)
		for i, r := range s.Ranges {
			if i > 0 {
				b.WriteString(" and ")
			}
			writeExpr(b, r.Lo, 0)
			b.WriteString(", ")
			writeExpr(b, r.Hi, 0)
			if r.Step != nil {
				b.WriteString(", ")
				writeExpr(b, r.Step, 0)
			}
		}
		if s.Where != nil {
			b.WriteString(" where (")
			writeExpr(b, s.Where, 0)
			b.WriteByte(')')
		}
		b.WriteByte('\n')
		writeStmts(b, s.Body, indent+1)
		ind(b, indent)
		b.WriteString("end do\n")
	case *If:
		ind(b, indent)
		b.WriteString("if (")
		writeExpr(b, s.Cond, 0)
		b.WriteString(") then\n")
		writeStmts(b, s.Then, indent+1)
		if len(s.Else) > 0 {
			ind(b, indent)
			b.WriteString("else\n")
			writeStmts(b, s.Else, indent+1)
		}
		ind(b, indent)
		b.WriteString("end if\n")
	case *CallStmt:
		ind(b, indent)
		fmt.Fprintf(b, "call %s(", s.Name)
		for i, a := range s.Args {
			if i > 0 {
				b.WriteString(", ")
			}
			writeExpr(b, a, 0)
		}
		b.WriteString(")\n")
	default:
		panic("source: unknown statement node in printer")
	}
}
