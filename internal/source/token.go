// Package source implements the front end for the mini-Fortran input
// language: lexer, abstract syntax tree, recursive-descent parser, and a
// pretty-printer. The language covers the constructs every example in
// the paper uses — loop nests with optional where guards, discontinuous
// iteration ranges ("do i = 1,a-1 and a+1,n"), conditionals, multi-
// dimensional arrays, reductions, and calls — which is the surface the
// symbolic analysis and the split transformation operate on.
package source

import "fmt"

// TokKind classifies a lexical token.
type TokKind int

// Token kinds.
const (
	TokEOF TokKind = iota
	TokIdent
	TokNumber
	TokKeyword // do, end, if, then, else, where, and, integer, real, call, program
	TokOp      // + - * / = == != <> < <= > >= && || !
	TokLParen
	TokRParen
	TokComma
	TokNewline
)

func (k TokKind) String() string {
	switch k {
	case TokEOF:
		return "EOF"
	case TokIdent:
		return "identifier"
	case TokNumber:
		return "number"
	case TokKeyword:
		return "keyword"
	case TokOp:
		return "operator"
	case TokLParen:
		return "'('"
	case TokRParen:
		return "')'"
	case TokComma:
		return "','"
	case TokNewline:
		return "newline"
	}
	return "unknown"
}

// Pos is a source position, 1-based.
type Pos struct {
	Line, Col int
}

func (p Pos) String() string { return fmt.Sprintf("%d:%d", p.Line, p.Col) }

// Token is one lexical token.
type Token struct {
	Kind TokKind
	Text string
	Pos  Pos
}

func (t Token) String() string {
	if t.Kind == TokNewline {
		return "newline"
	}
	if t.Kind == TokEOF {
		return "end of input"
	}
	return fmt.Sprintf("%q", t.Text)
}

// keywords of the mini-Fortran language.
var keywords = map[string]bool{
	"program": true, "do": true, "end": true, "enddo": true,
	"if": true, "then": true, "else": true, "endif": true,
	"where": true, "and": true, "or": true, "not": true,
	"integer": true, "real": true, "call": true,
}
