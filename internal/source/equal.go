package source

// Structural AST equality, ignoring positions and nil-vs-empty slice
// representation. The printer/parser round-trip law the fuzzer enforces
// is EqualProgram(p, reparse(Format(p))): positions obviously differ
// after a round trip, and the parser leaves absent else-branches and
// empty bodies nil where a program builder may have produced empty
// slices, so plain reflect.DeepEqual is the wrong comparison.

// EqualProgram reports structural equality of two programs.
func EqualProgram(a, b *Program) bool {
	if a == nil || b == nil {
		return a == b
	}
	if a.Name != b.Name || len(a.Decls) != len(b.Decls) {
		return false
	}
	for i := range a.Decls {
		if !equalDecl(a.Decls[i], b.Decls[i]) {
			return false
		}
	}
	return EqualStmts(a.Body, b.Body)
}

func equalDecl(a, b *Decl) bool {
	if a.Name != b.Name || a.Type != b.Type || len(a.Dims) != len(b.Dims) {
		return false
	}
	for i := range a.Dims {
		if !EqualExpr(a.Dims[i], b.Dims[i]) {
			return false
		}
	}
	return true
}

// EqualStmts reports structural equality of two statement lists,
// treating nil and empty as equal.
func EqualStmts(a, b []Stmt) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !EqualStmt(a[i], b[i]) {
			return false
		}
	}
	return true
}

// EqualStmt reports structural equality of two statements.
func EqualStmt(a, b Stmt) bool {
	switch a := a.(type) {
	case *Assign:
		b, ok := b.(*Assign)
		return ok && EqualExpr(a.LHS, b.LHS) && EqualExpr(a.RHS, b.RHS)
	case *Do:
		b, ok := b.(*Do)
		if !ok || a.Var != b.Var || len(a.Ranges) != len(b.Ranges) {
			return false
		}
		for i := range a.Ranges {
			ra, rb := a.Ranges[i], b.Ranges[i]
			if !EqualExpr(ra.Lo, rb.Lo) || !EqualExpr(ra.Hi, rb.Hi) || !EqualExpr(ra.Step, rb.Step) {
				return false
			}
		}
		return EqualExpr(a.Where, b.Where) && EqualStmts(a.Body, b.Body)
	case *If:
		b, ok := b.(*If)
		return ok && EqualExpr(a.Cond, b.Cond) && EqualStmts(a.Then, b.Then) && EqualStmts(a.Else, b.Else)
	case *CallStmt:
		b, ok := b.(*CallStmt)
		return ok && a.Name == b.Name && equalExprs(a.Args, b.Args)
	}
	return false
}

func equalExprs(a, b []Expr) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !EqualExpr(a[i], b[i]) {
			return false
		}
	}
	return true
}

// EqualExpr reports structural equality of two expressions (nil equals
// nil). Numeric literals compare by value: integer literals by Int,
// real literals by spelling, so 2.50 and 2.5 stay distinct — the
// round trip preserves spelling and the distinction is free.
func EqualExpr(a, b Expr) bool {
	if a == nil || b == nil {
		return a == nil && b == nil
	}
	switch a := a.(type) {
	case *Num:
		b, ok := b.(*Num)
		if !ok || a.IsReal != b.IsReal {
			return false
		}
		if a.IsReal {
			return a.Text == b.Text
		}
		return a.Int == b.Int
	case *Ident:
		b, ok := b.(*Ident)
		return ok && a.Name == b.Name
	case *ArrayRef:
		b, ok := b.(*ArrayRef)
		return ok && a.Name == b.Name && equalExprs(a.Index, b.Index)
	case *FuncCall:
		b, ok := b.(*FuncCall)
		return ok && a.Name == b.Name && equalExprs(a.Args, b.Args)
	case *Bin:
		b, ok := b.(*Bin)
		return ok && a.Op == b.Op && EqualExpr(a.L, b.L) && EqualExpr(a.R, b.R)
	case *Un:
		b, ok := b.(*Un)
		return ok && a.Op == b.Op && EqualExpr(a.X, b.X)
	}
	return false
}
