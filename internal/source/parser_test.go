package source

import (
	"strings"
	"testing"
)

// figure1 is the paper's Figure 1 example in mini-Fortran syntax.
const figure1 = `
program sample
  integer n
  integer mask(n)
  real result(n), q(n, n), output(n, n)

  do col = 1, n where (mask(col) != 0)
    do i = 1, n
      result(i) = f(q(i, col))
    end do
    do i = 1, n
      q(i, col) = result(i)
    end do
  end do

  do i = 1, n
    do j = 1, n
      output(j, i) = g(q(j, i))
    end do
  end do
end
`

func mustParse(t *testing.T, src string) *Program {
	t.Helper()
	p, err := Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return p
}

func TestParseFigure1(t *testing.T) {
	p := mustParse(t, figure1)
	if p.Name != "sample" {
		t.Fatalf("name = %q", p.Name)
	}
	if len(p.Decls) != 5 {
		t.Fatalf("decls = %d, want 5", len(p.Decls))
	}
	if len(p.Body) != 2 {
		t.Fatalf("top-level statements = %d, want 2", len(p.Body))
	}
	loopA, ok := p.Body[0].(*Do)
	if !ok {
		t.Fatalf("first statement is %T", p.Body[0])
	}
	if loopA.Var != "col" || loopA.Where == nil || len(loopA.Body) != 2 {
		t.Fatalf("loop A malformed: %+v", loopA)
	}
	w, ok := loopA.Where.(*Bin)
	if !ok || w.Op != "!=" {
		t.Fatalf("where clause = %v", FormatExpr(loopA.Where))
	}
	if _, ok := w.L.(*ArrayRef); !ok {
		t.Fatalf("where lhs should be array ref, got %T", w.L)
	}
}

func TestParseDeclarations(t *testing.T) {
	p := mustParse(t, `
program d
  integer n, m
  real a(n), b(n, m), c
end
`)
	if got := len(p.Decls); got != 5 {
		t.Fatalf("decls = %d", got)
	}
	a := p.Decl("a")
	if a == nil || !a.IsArray() || len(a.Dims) != 1 || a.Type != Real {
		t.Fatalf("decl a = %+v", a)
	}
	b := p.Decl("b")
	if b == nil || len(b.Dims) != 2 {
		t.Fatalf("decl b = %+v", b)
	}
	c := p.Decl("c")
	if c == nil || c.IsArray() {
		t.Fatalf("decl c = %+v", c)
	}
	if p.Decl("n").Type != Integer {
		t.Fatal("n should be integer")
	}
	if p.Decl("zz") != nil {
		t.Fatal("undeclared lookup should be nil")
	}
}

func TestParseDuplicateDecl(t *testing.T) {
	_, err := Parse("program d\n integer x\n real x\nend\n")
	if err == nil || !strings.Contains(err.Error(), "duplicate") {
		t.Fatalf("err = %v", err)
	}
}

func TestArrayVsCallResolution(t *testing.T) {
	p := mustParse(t, `
program r
  integer n
  real a(n), x
  x = a(3) + f(4)
end
`)
	as := p.Body[0].(*Assign)
	bin := as.RHS.(*Bin)
	if _, ok := bin.L.(*ArrayRef); !ok {
		t.Fatalf("a(3) parsed as %T", bin.L)
	}
	if _, ok := bin.R.(*FuncCall); !ok {
		t.Fatalf("f(4) parsed as %T", bin.R)
	}
}

func TestParseDiscontinuousRange(t *testing.T) {
	p := mustParse(t, `
program r
  integer n, a
  real x(n)
  do i = 1, a - 1 and a + 1, n
    x(i) = 0
  end do
end
`)
	d := p.Body[0].(*Do)
	if len(d.Ranges) != 2 {
		t.Fatalf("ranges = %d", len(d.Ranges))
	}
	if FormatExpr(d.Ranges[0].Hi) != "a - 1" {
		t.Fatalf("first hi = %q", FormatExpr(d.Ranges[0].Hi))
	}
	if FormatExpr(d.Ranges[1].Lo) != "a + 1" {
		t.Fatalf("second lo = %q", FormatExpr(d.Ranges[1].Lo))
	}
}

func TestParseStep(t *testing.T) {
	p := mustParse(t, `
program r
  integer n
  real x(n)
  do i = 2, n, 2
    x(i) = 1
  end do
end
`)
	d := p.Body[0].(*Do)
	if d.Ranges[0].Step == nil || FormatExpr(d.Ranges[0].Step) != "2" {
		t.Fatalf("step = %v", d.Ranges[0].Step)
	}
}

func TestParseIfElse(t *testing.T) {
	p := mustParse(t, `
program r
  integer n, s
  integer mask(n)
  if (mask(1) == 0) then
    s = 1
  else
    s = 2
  end if
  if (s > 0) s = s - 1
end
`)
	st := p.Body[0].(*If)
	if len(st.Then) != 1 || len(st.Else) != 1 {
		t.Fatalf("if branches: then=%d else=%d", len(st.Then), len(st.Else))
	}
	oneLine := p.Body[1].(*If)
	if len(oneLine.Then) != 1 || oneLine.Else != nil {
		t.Fatalf("one-line if: %+v", oneLine)
	}
}

func TestParseEndifEnddo(t *testing.T) {
	p := mustParse(t, `
program r
  integer n, s
  do i = 1, n
    if (s == 0) then
      s = 1
    endif
  enddo
end
`)
	d := p.Body[0].(*Do)
	if _, ok := d.Body[0].(*If); !ok {
		t.Fatal("nested if lost")
	}
}

func TestParseCallStmt(t *testing.T) {
	p := mustParse(t, `
program r
  integer n
  real x(n)
  call solve(x, n)
  call barrier()
end
`)
	c := p.Body[0].(*CallStmt)
	if c.Name != "solve" || len(c.Args) != 2 {
		t.Fatalf("call = %+v", c)
	}
	c2 := p.Body[1].(*CallStmt)
	if len(c2.Args) != 0 {
		t.Fatalf("barrier args = %d", len(c2.Args))
	}
}

func TestParseReduction(t *testing.T) {
	p := mustParse(t, `
program r
  integer n
  real x(n, n), sum
  do i = 1, n
    do j = 1, n
      sum = sum + x(j, i)
    end do
  end do
end
`)
	outer := p.Body[0].(*Do)
	inner := outer.Body[0].(*Do)
	as := inner.Body[0].(*Assign)
	if FormatExpr(as.RHS) != "sum + x(j, i)" {
		t.Fatalf("rhs = %q", FormatExpr(as.RHS))
	}
}

func TestOperatorPrecedence(t *testing.T) {
	p := mustParse(t, `
program r
  integer a, b, c, d
  a = b + c * d
  b = (a + c) * d
  c = a + b - c
  d = -a * b
end
`)
	cases := []string{"b + c * d", "(a + c) * d", "a + b - c", "-a * b"}
	for i, want := range cases {
		got := FormatExpr(p.Body[i].(*Assign).RHS)
		if got != want {
			t.Errorf("stmt %d: %q, want %q", i, got, want)
		}
	}
}

func TestComparisonNormalization(t *testing.T) {
	// "<>" normalizes to "!=".
	p := mustParse(t, `
program r
  integer a, b, s
  if (a <> b) s = 1
end
`)
	cond := p.Body[0].(*If).Cond.(*Bin)
	if cond.Op != "!=" {
		t.Fatalf("op = %q", cond.Op)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"",                                        // empty
		"program\n",                               // missing name
		"program p\n do i = 1\n end do\nend\n",    // bad range
		"program p\n x = \nend\n",                 // missing rhs
		"program p\n do i = 1, 2\nend\n",          // unterminated do
		"program p\n if (1 > 0) then\nend\n",      // unterminated if
		"program p\n 3 = x\nend\n",                // bad lhs
		"program p\n integer a\n f(a) = 1\nend\n", // call as lhs
		"program p\nend\nxx\n",                    // trailing garbage
		"program p\n x = $\nend\n",                // lex error
	}
	for _, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Errorf("no error for %q", src)
		}
	}
}

func TestRoundTrip(t *testing.T) {
	p := mustParse(t, figure1)
	printed := Format(p)
	p2, err := Parse(printed)
	if err != nil {
		t.Fatalf("reparse: %v\n%s", err, printed)
	}
	if Format(p2) != printed {
		t.Fatalf("format not a fixed point:\n%s\n---\n%s", printed, Format(p2))
	}
}

func TestCloneIsDeep(t *testing.T) {
	p := mustParse(t, figure1)
	orig := Format(p)
	cl := CloneStmts(p.Body)
	// Mutate the clone thoroughly.
	WalkStmts(cl, func(s Stmt) {
		if d, ok := s.(*Do); ok {
			d.Var = "zz"
			d.Ranges[0].Lo = &Num{Int: 99}
		}
	})
	if Format(p) != orig {
		t.Fatal("mutating clone changed original")
	}
}

func TestWalkStmtsVisitsAll(t *testing.T) {
	p := mustParse(t, figure1)
	var dos, assigns int
	WalkStmts(p.Body, func(s Stmt) {
		switch s.(type) {
		case *Do:
			dos++
		case *Assign:
			assigns++
		}
	})
	if dos != 5 {
		t.Fatalf("do loops = %d, want 5", dos)
	}
	if assigns != 3 {
		t.Fatalf("assigns = %d, want 3", assigns)
	}
}

func TestWalkExprVisitsAll(t *testing.T) {
	p := mustParse(t, "program r\n integer a, b\n real q(a)\n a = q(a + b) + f(a, -b)\nend\n")
	var idents int
	WalkExpr(p.Body[0].(*Assign).RHS, func(e Expr) {
		if _, ok := e.(*Ident); ok {
			idents++
		}
	})
	if idents != 4 {
		t.Fatalf("idents = %d, want 4", idents)
	}
}

func TestLexerPositions(t *testing.T) {
	toks, err := Tokenize("ab + cd\n  x")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Pos != (Pos{1, 1}) || toks[1].Pos != (Pos{1, 4}) || toks[2].Pos != (Pos{1, 6}) {
		t.Fatalf("positions: %+v", toks[:3])
	}
	// x on line 2 col 3
	if toks[4].Pos != (Pos{2, 3}) {
		t.Fatalf("x pos = %v", toks[4].Pos)
	}
}

func TestLexerComments(t *testing.T) {
	toks, err := Tokenize("a ! comment with $ garbage\nb")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Text != "a" || toks[1].Kind != TokNewline || toks[2].Text != "b" {
		t.Fatalf("tokens: %+v", toks)
	}
}

func TestLexerRealLiterals(t *testing.T) {
	toks, err := Tokenize("1.5 2 0.25")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Text != "1.5" || toks[1].Text != "2" || toks[2].Text != "0.25" {
		t.Fatalf("tokens: %+v", toks[:3])
	}
}

func TestCaseInsensitivity(t *testing.T) {
	p := mustParse(t, "PROGRAM R\n INTEGER N\n REAL X(N)\n DO I = 1, N\n X(I) = 0\n END DO\nEND\n")
	if p.Name != "r" || p.Decl("x") == nil {
		t.Fatal("case folding failed")
	}
}

func TestNodeInterfaces(t *testing.T) {
	// Marker methods and position accessors across every node type.
	p := mustParse(t, `
program p
  integer n, a
  real x(n)
  do i = 1, n
    if (a > 0) then
      x(i) = f(a) + -a * 1.5
    end if
  end do
  call g(a)
end
`)
	var exprs []Expr
	var stmts []Stmt
	WalkStmts(p.Body, func(s Stmt) {
		stmts = append(stmts, s)
		switch s := s.(type) {
		case *Assign:
			WalkExpr(s.LHS, func(e Expr) { exprs = append(exprs, e) })
			WalkExpr(s.RHS, func(e Expr) { exprs = append(exprs, e) })
		case *If:
			WalkExpr(s.Cond, func(e Expr) { exprs = append(exprs, e) })
		case *Do:
			WalkExpr(s.Ranges[0].Lo, func(e Expr) { exprs = append(exprs, e) })
		case *CallStmt:
			for _, a := range s.Args {
				WalkExpr(a, func(e Expr) { exprs = append(exprs, e) })
			}
		}
	})
	kinds := map[string]bool{}
	for _, e := range exprs {
		if e.GetPos().Line <= 0 {
			t.Fatalf("expr %T has no position", e)
		}
		kinds[FormatExpr(e)] = true
		_ = e
	}
	for _, s := range stmts {
		if s.GetPos().Line <= 0 {
			t.Fatalf("stmt %T has no position", s)
		}
	}
	if len(kinds) < 8 {
		t.Fatalf("expected diverse expressions, got %d", len(kinds))
	}
}

func TestBaseTypeSize(t *testing.T) {
	if Integer.Size() != 4 || Real.Size() != 8 {
		t.Fatal("element sizes changed")
	}
	if Integer.String() != "integer" || Real.String() != "real" {
		t.Fatal("type names changed")
	}
}

func TestFormatStmtsIndent(t *testing.T) {
	p := mustParse(t, "program p\n integer a\n a = 1\nend\n")
	got := FormatStmts(p.Body, 2)
	if got != "    a = 1\n" {
		t.Fatalf("indent = %q", got)
	}
}

func TestCloneCallAndIf(t *testing.T) {
	p := mustParse(t, `
program p
  integer a
  real x(3)
  if (a > 0) then
    a = 1
  else
    call f(x, a)
  end if
end
`)
	cl := CloneStmts(p.Body)
	orig := FormatStmts(p.Body, 0)
	// Mutate the cloned call's argument.
	WalkStmts(cl, func(s Stmt) {
		if c, ok := s.(*CallStmt); ok {
			c.Args[1].(*Ident).Name = "zz"
		}
	})
	if FormatStmts(p.Body, 0) != orig {
		t.Fatal("clone shared call arguments")
	}
}
