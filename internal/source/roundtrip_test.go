package source

import "testing"

// reparse formats p and parses the result back.
func reparse(t *testing.T, p *Program) *Program {
	t.Helper()
	text := Format(p)
	q, err := Parse(text)
	if err != nil {
		t.Fatalf("reparse failed: %v\nformatted source:\n%s", err, text)
	}
	return q
}

// TestRoundTripPrograms pins parser/printer round-trip fidelity on the
// constructs the fuzzer generates, including the shapes that used to
// break: a stepped first range followed by "and" segments (the parser
// rejected what the printer emitted), and steps on non-first segments.
func TestRoundTripPrograms(t *testing.T) {
	cases := []struct{ name, src string }{
		{"stepped first range with and", `
program p
  integer n
  real u(n)
  do i = 2, n - 1, 2 and n, n
    u(i) = 1.5
  end do
end
`},
		{"steps on every segment", `
program p
  integer n
  real u(n)
  do i = 1, 4, 2 and 5, n, 3 and n, n
    u(i) = 2.5
  end do
end
`},
		{"where guard with nested comparison", `
program p
  integer n, mask(n)
  real u(n)
  do i = 2, n - 1 where (mask(i) != 0 && i < n - 2)
    u(i) = u(i - 1) + 1.5
  end do
end
`},
		{"precedence and unary", `
program p
  integer n
  real u(n), v(n)
  do i = 2, n - 1
    u(i) = -(v(i) + 1.5) * (v(i) - v(i - 1)) / (v(i) * v(i) + 2)
    v(i) = 1 - -u(i)
  end do
end
`},
		{"if else blocks and one-line if", `
program p
  integer n, a
  real u(n)
  if (a > 2) then
    u(1) = 1.5
  else
    u(2) = 2.5
  end if
  if (a < 2) u(3) = 3.5
end
`},
		{"discontinuous ranges at split point", `
program p
  integer n, a
  real u(n)
  do i = 2, a and a + 1, n - 1 where (u(i) > 0)
    u(i) = u(i) * 2
  end do
end
`},
		{"func call vs array ref", `
program p
  integer n
  real u(n)
  do i = 2, n - 1
    u(i) = f(u(i), g(i, 2)) + u(i - 1)
  end do
end
`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p1, err := Parse(tc.src)
			if err != nil {
				t.Fatalf("parse: %v", err)
			}
			p2 := reparse(t, p1)
			if !EqualProgram(p1, p2) {
				t.Fatalf("round trip changed the program\nfirst:\n%s\nsecond:\n%s", Format(p1), Format(p2))
			}
		})
	}
}

// TestRoundTripBuiltAST round-trips ASTs constructed directly (as the
// fuzzer's generator and minimizer do), where else-branches may be
// empty-but-non-nil and positions are zero.
func TestRoundTripBuiltAST(t *testing.T) {
	n := &Ident{Name: "n"}
	u := func(ix Expr) *ArrayRef { return &ArrayRef{Name: "u", Index: []Expr{ix}} }
	p := &Program{
		Name: "built",
		Decls: []*Decl{
			{Name: "n", Type: Integer},
			{Name: "u", Type: Real, Dims: []Expr{n}},
		},
		Body: []Stmt{
			&Do{
				Var: "i",
				Ranges: []DoRange{
					{Lo: &Num{Text: "2", Int: 2}, Hi: &Bin{Op: "-", L: n, R: &Num{Text: "1", Int: 1}}, Step: &Num{Text: "2", Int: 2}},
					{Lo: n, Hi: n},
				},
				Body: []Stmt{
					&Assign{LHS: u(&Ident{Name: "i"}), RHS: &Num{Text: "1.5", IsReal: true}},
					&If{
						Cond: &Bin{Op: ">", L: u(&Ident{Name: "i"}), R: &Num{Text: "0", Int: 0}},
						Then: []Stmt{&Assign{LHS: u(&Num{Text: "1", Int: 1}), RHS: &Num{Text: "2.5", IsReal: true}}},
						Else: []Stmt{}, // printed as absent, reparsed as nil
					},
				},
			},
		},
	}
	q := reparse(t, p)
	if !EqualProgram(p, q) {
		t.Fatalf("built AST round trip changed the program\nfirst:\n%s\nsecond:\n%s", Format(p), Format(q))
	}
}
