package source

// BaseType is the element type of a declared variable.
type BaseType int

// Base types.
const (
	Integer BaseType = iota
	Real
)

func (t BaseType) String() string {
	if t == Integer {
		return "integer"
	}
	return "real"
}

// Size reports the element size in bytes, used by the Delirium layer to
// annotate dataflow edges with data volumes.
func (t BaseType) Size() int64 {
	if t == Integer {
		return 4
	}
	return 8
}

// Decl declares a scalar (no Dims) or an array variable.
type Decl struct {
	Name string
	Type BaseType
	Dims []Expr // one extent expression per dimension; nil for scalars
	Pos  Pos
}

// IsArray reports whether the declaration has at least one dimension.
func (d *Decl) IsArray() bool { return len(d.Dims) > 0 }

// Program is a parsed mini-Fortran program.
type Program struct {
	Name  string
	Decls []*Decl
	Body  []Stmt

	decls map[string]*Decl
}

// Decl looks up a declaration by (lower-case) name.
func (p *Program) Decl(name string) *Decl {
	return p.decls[name]
}

// Stmt is a statement node.
type Stmt interface {
	stmt()
	GetPos() Pos
}

// Expr is an expression node.
type Expr interface {
	expr()
	GetPos() Pos
}

// Num is a numeric literal.
type Num struct {
	Text   string // original spelling
	IsReal bool
	Int    int64 // value when !IsReal
	Pos    Pos
}

// Ident is a scalar variable reference.
type Ident struct {
	Name string
	Pos  Pos
}

// ArrayRef is a subscripted reference to a declared array.
type ArrayRef struct {
	Name  string
	Index []Expr
	Pos   Pos
}

// FuncCall is a call to an external (pure) function in expression
// position. The paper's examples use such calls ("compute result[i]
// from the i-th column of q"); analysis treats them as reading their
// arguments.
type FuncCall struct {
	Name string
	Args []Expr
	Pos  Pos
}

// Bin is a binary operation. Op is one of + - * / == != < <= > >= && ||.
type Bin struct {
	Op   string
	L, R Expr
	Pos  Pos
}

// Un is a unary operation. Op is one of - !.
type Un struct {
	Op  string
	X   Expr
	Pos Pos
}

func (*Num) expr()      {}
func (*Ident) expr()    {}
func (*ArrayRef) expr() {}
func (*FuncCall) expr() {}
func (*Bin) expr()      {}
func (*Un) expr()       {}

// GetPos implements Expr.
func (n *Num) GetPos() Pos { return n.Pos }

// GetPos implements Expr.
func (n *Ident) GetPos() Pos { return n.Pos }

// GetPos implements Expr.
func (n *ArrayRef) GetPos() Pos { return n.Pos }

// GetPos implements Expr.
func (n *FuncCall) GetPos() Pos { return n.Pos }

// GetPos implements Expr.
func (n *Bin) GetPos() Pos { return n.Pos }

// GetPos implements Expr.
func (n *Un) GetPos() Pos { return n.Pos }

// Assign is an assignment statement. LHS is *Ident or *ArrayRef.
type Assign struct {
	LHS Expr
	RHS Expr
	Pos Pos
}

// DoRange is one contiguous segment of a do-loop's iteration space.
type DoRange struct {
	Lo, Hi Expr
	Step   Expr // nil means 1
}

// Do is a do loop, possibly with a discontinuous iteration space
// (multiple ranges joined by "and", the paper's notation) and an
// optional where guard evaluated per iteration.
type Do struct {
	Var    string
	Ranges []DoRange
	Where  Expr // nil when unguarded
	Body   []Stmt
	Pos    Pos
}

// If is a conditional statement.
type If struct {
	Cond Expr
	Then []Stmt
	Else []Stmt // nil when absent
	Pos  Pos
}

// CallStmt is a subroutine call statement. Analysis treats it
// conservatively: it reads and may write every aggregate argument.
type CallStmt struct {
	Name string
	Args []Expr
	Pos  Pos
}

func (*Assign) stmt()   {}
func (*Do) stmt()       {}
func (*If) stmt()       {}
func (*CallStmt) stmt() {}

// GetPos implements Stmt.
func (s *Assign) GetPos() Pos { return s.Pos }

// GetPos implements Stmt.
func (s *Do) GetPos() Pos { return s.Pos }

// GetPos implements Stmt.
func (s *If) GetPos() Pos { return s.Pos }

// GetPos implements Stmt.
func (s *CallStmt) GetPos() Pos { return s.Pos }

// CloneExpr deep-copies an expression tree.
func CloneExpr(e Expr) Expr {
	switch e := e.(type) {
	case nil:
		return nil
	case *Num:
		c := *e
		return &c
	case *Ident:
		c := *e
		return &c
	case *ArrayRef:
		c := &ArrayRef{Name: e.Name, Pos: e.Pos, Index: make([]Expr, len(e.Index))}
		for i, x := range e.Index {
			c.Index[i] = CloneExpr(x)
		}
		return c
	case *FuncCall:
		c := &FuncCall{Name: e.Name, Pos: e.Pos, Args: make([]Expr, len(e.Args))}
		for i, x := range e.Args {
			c.Args[i] = CloneExpr(x)
		}
		return c
	case *Bin:
		return &Bin{Op: e.Op, L: CloneExpr(e.L), R: CloneExpr(e.R), Pos: e.Pos}
	case *Un:
		return &Un{Op: e.Op, X: CloneExpr(e.X), Pos: e.Pos}
	}
	panic("source: unknown expression node")
}

// CloneStmt deep-copies a statement tree.
func CloneStmt(s Stmt) Stmt {
	switch s := s.(type) {
	case *Assign:
		return &Assign{LHS: CloneExpr(s.LHS), RHS: CloneExpr(s.RHS), Pos: s.Pos}
	case *Do:
		c := &Do{Var: s.Var, Pos: s.Pos, Body: CloneStmts(s.Body)}
		for _, r := range s.Ranges {
			cr := DoRange{Lo: CloneExpr(r.Lo), Hi: CloneExpr(r.Hi)}
			if r.Step != nil {
				cr.Step = CloneExpr(r.Step)
			}
			c.Ranges = append(c.Ranges, cr)
		}
		if s.Where != nil {
			c.Where = CloneExpr(s.Where)
		}
		return c
	case *If:
		c := &If{Cond: CloneExpr(s.Cond), Then: CloneStmts(s.Then), Pos: s.Pos}
		if s.Else != nil {
			c.Else = CloneStmts(s.Else)
		}
		return c
	case *CallStmt:
		c := &CallStmt{Name: s.Name, Pos: s.Pos, Args: make([]Expr, len(s.Args))}
		for i, a := range s.Args {
			c.Args[i] = CloneExpr(a)
		}
		return c
	}
	panic("source: unknown statement node")
}

// CloneStmts deep-copies a statement list.
func CloneStmts(ss []Stmt) []Stmt {
	out := make([]Stmt, len(ss))
	for i, s := range ss {
		out[i] = CloneStmt(s)
	}
	return out
}

// CloneProgram deep-copies a whole program, declarations included, so
// callers can hand one program to destructive passes (the compiler
// rewrites bodies in place) while keeping the original.
func CloneProgram(p *Program) *Program {
	c := &Program{Name: p.Name, Body: CloneStmts(p.Body)}
	for _, d := range p.Decls {
		cd := &Decl{Name: d.Name, Type: d.Type, Pos: d.Pos}
		for _, e := range d.Dims {
			cd.Dims = append(cd.Dims, CloneExpr(e))
		}
		c.Decls = append(c.Decls, cd)
	}
	return c
}

// WalkExpr calls f on e and every sub-expression, pre-order.
func WalkExpr(e Expr, f func(Expr)) {
	if e == nil {
		return
	}
	f(e)
	switch e := e.(type) {
	case *ArrayRef:
		for _, x := range e.Index {
			WalkExpr(x, f)
		}
	case *FuncCall:
		for _, x := range e.Args {
			WalkExpr(x, f)
		}
	case *Bin:
		WalkExpr(e.L, f)
		WalkExpr(e.R, f)
	case *Un:
		WalkExpr(e.X, f)
	}
}

// WalkStmts calls f on every statement in ss and their bodies,
// pre-order.
func WalkStmts(ss []Stmt, f func(Stmt)) {
	for _, s := range ss {
		f(s)
		switch s := s.(type) {
		case *Do:
			WalkStmts(s.Body, f)
		case *If:
			WalkStmts(s.Then, f)
			WalkStmts(s.Else, f)
		}
	}
}
