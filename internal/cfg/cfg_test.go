package cfg

import (
	"testing"

	"orchestra/internal/source"
)

func parseBody(t *testing.T, src string) []source.Stmt {
	t.Helper()
	p, err := source.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return p.Body
}

func TestStraightLine(t *testing.T) {
	g := Build(parseBody(t, `
program p
  integer a, b
  a = 1
  b = 2
  a = a + b
end
`))
	// entry -> one block (coalesced) -> exit
	var blocks []*Node
	for _, n := range g.Nodes {
		if n.Kind == KindBlock {
			blocks = append(blocks, n)
		}
	}
	if len(blocks) != 1 {
		t.Fatalf("blocks = %d, want 1 (coalesced)", len(blocks))
	}
	if len(blocks[0].Stmts) != 3 {
		t.Fatalf("stmts = %d", len(blocks[0].Stmts))
	}
	if len(g.Entry.Succs) != 1 || g.Entry.Succs[0] != blocks[0] {
		t.Fatal("entry not wired to block")
	}
	if len(blocks[0].Succs) != 1 || blocks[0].Succs[0] != g.Exit {
		t.Fatal("block not wired to exit")
	}
}

func TestLoopShape(t *testing.T) {
	g := Build(parseBody(t, `
program p
  integer n
  real x(n)
  do i = 1, n
    x(i) = 0
  end do
end
`))
	var head *Node
	for _, n := range g.Nodes {
		if n.Kind == KindLoop {
			head = n
		}
	}
	if head == nil {
		t.Fatal("no loop header")
	}
	if len(head.Succs) != 2 {
		t.Fatalf("loop header successors = %d, want 2", len(head.Succs))
	}
	be, ok := g.BodyEntry[head]
	if !ok || head.Succs[0] != be {
		t.Fatal("body entry not the first successor")
	}
	bx := g.BodyExit[head]
	found := false
	for _, s := range bx.Succs {
		if s == head {
			found = true
		}
	}
	if !found {
		t.Fatal("no back edge from body exit to header")
	}
	// The header must have two predecessors: before-loop and back edge.
	if len(head.Preds) != 2 {
		t.Fatalf("loop header preds = %d, want 2", len(head.Preds))
	}
}

func TestBranchShape(t *testing.T) {
	g := Build(parseBody(t, `
program p
  integer a, b
  if (a > 0) then
    b = 1
  else
    b = 2
  end if
  a = b
end
`))
	var br *Node
	for _, n := range g.Nodes {
		if n.Kind == KindBranch {
			br = n
		}
	}
	if br == nil || len(br.Succs) != 2 {
		t.Fatalf("branch = %v", br)
	}
	// Both arms must reconverge at a join dominating the final block.
	idom := g.Dominators()
	if !Dominates(idom, br, g.Exit) {
		t.Fatal("branch should dominate exit")
	}
}

func TestIfWithoutElse(t *testing.T) {
	g := Build(parseBody(t, `
program p
  integer a, b
  if (a > 0) then
    b = 1
  end if
end
`))
	var br *Node
	for _, n := range g.Nodes {
		if n.Kind == KindBranch {
			br = n
		}
	}
	if len(br.Succs) != 2 {
		t.Fatalf("branch succs = %d, want 2 (then + fall-through)", len(br.Succs))
	}
}

func TestReversePostOrderProperty(t *testing.T) {
	g := Build(parseBody(t, `
program p
  integer n, a
  real x(n)
  do i = 1, n
    if (a > 0) then
      x(i) = 1
    else
      x(i) = 2
    end if
  end do
  a = 0
end
`))
	rpo := g.ReversePostOrder()
	pos := map[*Node]int{}
	for i, n := range rpo {
		pos[n] = i
	}
	if rpo[0] != g.Entry {
		t.Fatal("RPO must start at entry")
	}
	// Every edge that is not a back edge goes forward in RPO.
	for _, n := range g.Nodes {
		for _, s := range n.Succs {
			if s.Kind == KindLoop && pos[s] < pos[n] {
				continue // back edge
			}
			if pos[s] <= pos[n] {
				t.Fatalf("edge %v -> %v not forward in RPO", n, s)
			}
		}
	}
}

func TestDominators(t *testing.T) {
	g := Build(parseBody(t, `
program p
  integer n, a
  real x(n)
  do i = 1, n
    x(i) = 0
  end do
  if (a > 0) then
    a = 1
  end if
end
`))
	idom := g.Dominators()
	if idom[g.Entry] != nil {
		t.Fatal("entry idom must be nil")
	}
	// Entry dominates everything reachable.
	for _, n := range g.Nodes {
		if !Dominates(idom, g.Entry, n) {
			t.Fatalf("entry does not dominate %v", n)
		}
	}
	// The loop header dominates its body.
	for head, be := range g.BodyEntry {
		if !Dominates(idom, head, be) {
			t.Fatalf("loop header %v does not dominate body entry", head)
		}
		if !Dominates(idom, head, g.BodyExit[head]) {
			t.Fatalf("loop header %v does not dominate body exit", head)
		}
	}
}

func TestDominanceFrontiers(t *testing.T) {
	g := Build(parseBody(t, `
program p
  integer a, b
  if (a > 0) then
    b = 1
  else
    b = 2
  end if
  a = b
end
`))
	idom := g.Dominators()
	df := g.DominanceFrontiers(idom)
	var br *Node
	for _, n := range g.Nodes {
		if n.Kind == KindBranch {
			br = n
		}
	}
	// The reconvergence join is the two-predecessor join node.
	var join *Node
	for _, n := range g.Nodes {
		if n.Kind == KindJoin && len(n.Preds) == 2 {
			join = n
		}
	}
	if join == nil {
		t.Fatal("no reconvergence join found")
	}
	// Each arm's entry has the join in its dominance frontier.
	for _, arm := range br.Succs {
		foundJoin := false
		for _, w := range df[arm] {
			if w == join {
				foundJoin = true
			}
		}
		if !foundJoin {
			t.Fatalf("DF(arm %v) = %v, missing join %v", arm, df[arm], join)
		}
	}
	// Frontier of the branch node itself must not contain the join (it
	// dominates it).
	for _, w := range df[br] {
		if w == join {
			t.Fatal("branch's DF contains its dominated join")
		}
	}
}

func TestLoopHeaderInOwnFrontier(t *testing.T) {
	g := Build(parseBody(t, `
program p
  integer n, s
  do i = 1, n
    s = s + 1
  end do
end
`))
	idom := g.Dominators()
	df := g.DominanceFrontiers(idom)
	var head *Node
	for _, n := range g.Nodes {
		if n.Kind == KindLoop {
			head = n
		}
	}
	// A loop header with a back edge is in the frontier of nodes in the
	// body (phi placement for loop-carried values) — and of itself.
	found := false
	for _, w := range df[head] {
		if w == head {
			found = true
		}
	}
	if !found {
		t.Fatalf("DF(header) = %v, header missing", df[head])
	}
}

func TestNestedLoops(t *testing.T) {
	g := Build(parseBody(t, `
program p
  integer n
  real x(n, n)
  do i = 1, n
    do j = 1, n
      x(j, i) = 0
    end do
  end do
end
`))
	var heads []*Node
	for _, n := range g.Nodes {
		if n.Kind == KindLoop {
			heads = append(heads, n)
		}
	}
	if len(heads) != 2 {
		t.Fatalf("loop headers = %d", len(heads))
	}
	idom := g.Dominators()
	outer, inner := heads[0], heads[1]
	if outer.Loop.Var != "i" {
		outer, inner = inner, outer
	}
	if !Dominates(idom, outer, inner) {
		t.Fatal("outer loop does not dominate inner")
	}
}

func TestDumpStable(t *testing.T) {
	body := parseBody(t, `
program p
  integer a
  a = 1
end
`)
	d1 := Build(body).Dump()
	d2 := Build(body).Dump()
	if d1 != d2 || d1 == "" {
		t.Fatalf("dump unstable:\n%s\n%s", d1, d2)
	}
}
