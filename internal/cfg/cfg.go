// Package cfg builds a control-flow graph over mini-Fortran statements
// and provides the dominator machinery (immediate dominators, dominator
// tree, dominance frontiers) that the SSA construction and the value
// propagation of the paper's analysis pipeline (§3.1 steps 2–6) require.
package cfg

import (
	"fmt"
	"strings"

	"orchestra/internal/source"
)

// NodeKind classifies CFG nodes.
type NodeKind int

// Node kinds.
const (
	KindEntry NodeKind = iota
	KindExit
	KindBlock  // straight-line assignments and calls
	KindLoop   // do-loop header; controls the loop body
	KindBranch // if header; controls then/else
	KindJoin   // merge point after a branch or loop
)

func (k NodeKind) String() string {
	switch k {
	case KindEntry:
		return "entry"
	case KindExit:
		return "exit"
	case KindBlock:
		return "block"
	case KindLoop:
		return "loop"
	case KindBranch:
		return "branch"
	case KindJoin:
		return "join"
	}
	return "?"
}

// Node is one CFG node.
type Node struct {
	ID    int
	Kind  NodeKind
	Stmts []source.Stmt // statements of a KindBlock node
	Loop  *source.Do    // loop header statement for KindLoop
	Cond  *source.If    // branch statement for KindBranch

	Succs []*Node
	Preds []*Node
}

func (n *Node) String() string { return fmt.Sprintf("n%d(%s)", n.ID, n.Kind) }

// Graph is a complete control-flow graph.
type Graph struct {
	Entry *Node
	Exit  *Node
	Nodes []*Node

	// BodyEntry and BodyExit give, for each loop header, the entry and
	// exit nodes of its body subgraph.
	BodyEntry map[*Node]*Node
	BodyExit  map[*Node]*Node

	// LoopNode and BranchNode map statements back to their CFG nodes.
	LoopNode   map[*source.Do]*Node
	BranchNode map[*source.If]*Node
}

func (g *Graph) newNode(kind NodeKind) *Node {
	n := &Node{ID: len(g.Nodes), Kind: kind}
	g.Nodes = append(g.Nodes, n)
	return n
}

func edge(from, to *Node) {
	from.Succs = append(from.Succs, to)
	to.Preds = append(to.Preds, from)
}

// Build constructs the CFG for a statement list.
//
// Loop shape: the loop header has two successors — the body entry
// (taken when iterations remain) and the loop exit join. The body's
// last node has a back edge to the header.
func Build(body []source.Stmt) *Graph {
	g := &Graph{
		BodyEntry:  map[*Node]*Node{},
		BodyExit:   map[*Node]*Node{},
		LoopNode:   map[*source.Do]*Node{},
		BranchNode: map[*source.If]*Node{},
	}
	g.Entry = g.newNode(KindEntry)
	g.Exit = g.newNode(KindExit)
	last := g.buildStmts(body, g.Entry)
	edge(last, g.Exit)
	return g
}

// buildStmts threads the statement list from pred and returns the node
// that control reaches after the list.
func (g *Graph) buildStmts(body []source.Stmt, pred *Node) *Node {
	cur := pred
	for _, s := range body {
		switch s := s.(type) {
		case *source.Assign, *source.CallStmt:
			if cur.Kind == KindBlock {
				cur.Stmts = append(cur.Stmts, s)
				continue
			}
			b := g.newNode(KindBlock)
			b.Stmts = []source.Stmt{s}
			edge(cur, b)
			cur = b
		case *source.Do:
			head := g.newNode(KindLoop)
			head.Loop = s
			g.LoopNode[s] = head
			edge(cur, head)
			bodyEntry := g.newNode(KindJoin)
			edge(head, bodyEntry)
			bodyExit := g.buildStmts(s.Body, bodyEntry)
			edge(bodyExit, head) // back edge
			after := g.newNode(KindJoin)
			edge(head, after)
			g.BodyEntry[head] = bodyEntry
			g.BodyExit[head] = bodyExit
			cur = after
		case *source.If:
			head := g.newNode(KindBranch)
			head.Cond = s
			g.BranchNode[s] = head
			edge(cur, head)
			after := g.newNode(KindJoin)
			thenEntry := g.newNode(KindJoin)
			edge(head, thenEntry) // successor 0: then
			thenExit := g.buildStmts(s.Then, thenEntry)
			edge(thenExit, after)
			if len(s.Else) > 0 {
				elseEntry := g.newNode(KindJoin)
				edge(head, elseEntry) // successor 1: else
				elseExit := g.buildStmts(s.Else, elseEntry)
				edge(elseExit, after)
			} else {
				edge(head, after) // successor 1: fall-through
			}
			cur = after
		default:
			panic(fmt.Sprintf("cfg: unknown statement %T", s))
		}
	}
	return cur
}

// ReversePostOrder returns the nodes reachable from Entry in reverse
// post-order (a topological order ignoring back edges).
func (g *Graph) ReversePostOrder() []*Node {
	seen := make([]bool, len(g.Nodes))
	var post []*Node
	var dfs func(n *Node)
	dfs = func(n *Node) {
		seen[n.ID] = true
		for _, s := range n.Succs {
			if !seen[s.ID] {
				dfs(s)
			}
		}
		post = append(post, n)
	}
	dfs(g.Entry)
	for i, j := 0, len(post)-1; i < j; i, j = i+1, j-1 {
		post[i], post[j] = post[j], post[i]
	}
	return post
}

// Dominators computes immediate dominators with the Cooper–Harvey–
// Kennedy iterative algorithm. The returned map contains every
// reachable node except Entry (whose idom is nil).
func (g *Graph) Dominators() map[*Node]*Node {
	rpo := g.ReversePostOrder()
	order := make(map[*Node]int, len(rpo))
	for i, n := range rpo {
		order[n] = i
	}
	idom := make(map[*Node]*Node, len(rpo))
	idom[g.Entry] = g.Entry

	intersect := func(a, b *Node) *Node {
		for a != b {
			for order[a] > order[b] {
				a = idom[a]
			}
			for order[b] > order[a] {
				b = idom[b]
			}
		}
		return a
	}

	for changed := true; changed; {
		changed = false
		for _, n := range rpo {
			if n == g.Entry {
				continue
			}
			var newIdom *Node
			for _, p := range n.Preds {
				if idom[p] == nil {
					continue // unprocessed or unreachable
				}
				if newIdom == nil {
					newIdom = p
				} else {
					newIdom = intersect(p, newIdom)
				}
			}
			if newIdom != nil && idom[n] != newIdom {
				idom[n] = newIdom
				changed = true
			}
		}
	}
	idom[g.Entry] = nil
	return idom
}

// DominanceFrontiers computes the dominance frontier of every node
// using the standard Cytron et al. algorithm over the idom tree.
func (g *Graph) DominanceFrontiers(idom map[*Node]*Node) map[*Node][]*Node {
	df := make(map[*Node][]*Node, len(g.Nodes))
	inDF := make(map[*Node]map[*Node]bool)
	add := func(n, w *Node) {
		if inDF[n] == nil {
			inDF[n] = map[*Node]bool{}
		}
		if !inDF[n][w] {
			inDF[n][w] = true
			df[n] = append(df[n], w)
		}
	}
	for _, n := range g.Nodes {
		if len(n.Preds) < 2 {
			continue
		}
		for _, p := range n.Preds {
			runner := p
			for runner != nil && runner != idom[n] {
				add(runner, n)
				runner = idom[runner]
			}
		}
	}
	return df
}

// DomTree returns the children lists of the dominator tree.
func DomTree(idom map[*Node]*Node) map[*Node][]*Node {
	children := map[*Node][]*Node{}
	for n, d := range idom {
		if d != nil {
			children[d] = append(children[d], n)
		}
	}
	return children
}

// Dominates reports whether a dominates b (reflexively) under idom.
func Dominates(idom map[*Node]*Node, a, b *Node) bool {
	for n := b; n != nil; n = idom[n] {
		if n == a {
			return true
		}
	}
	return false
}

// Dump renders the graph for debugging and golden tests.
func (g *Graph) Dump() string {
	var b strings.Builder
	for _, n := range g.Nodes {
		fmt.Fprintf(&b, "%s ->", n)
		for _, s := range n.Succs {
			fmt.Fprintf(&b, " n%d", s.ID)
		}
		switch n.Kind {
		case KindLoop:
			fmt.Fprintf(&b, "  [do %s]", n.Loop.Var)
		case KindBranch:
			fmt.Fprintf(&b, "  [if %s]", source.FormatExpr(n.Cond.Cond))
		case KindBlock:
			fmt.Fprintf(&b, "  [%d stmts]", len(n.Stmts))
		}
		b.WriteByte('\n')
	}
	return b.String()
}
