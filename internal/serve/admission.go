package serve

import (
	"sync"

	"orchestra/internal/machine"
	"orchestra/internal/rts"
	"orchestra/internal/sched"
)

// Cross-job admission: how many of the shared pool's workers a new job
// should get. The daemon reuses the paper's finishing-time-equalizing
// processor allocator (rts.AllocateMany, §4.1.2) one level up from
// where the paper applies it — the "operations" being balanced are
// whole jobs, each summarized as one OpSpec whose task count is the
// job's total remaining work. The allocator hands back per-job targets
// that roughly equalize job finishing times; the new job's target,
// clamped to its requested maximum, becomes its worker grant, and the
// pool's FIFO lease queue provides the waiting.
//
// This is what makes the daemon multi-tenant rather than time-sliced:
// a small job arriving while a large one runs is granted a
// proportionally small worker share and starts immediately on free
// workers instead of queueing behind the large job's full-pool claim.

// AllocDecision records one admission decision for /stats: the job
// admitted, the finishing-time-equalizing targets over every job that
// was running at that moment, and the grant actually issued.
type AllocDecision struct {
	Job     string         `json:"job"`
	Targets map[string]int `json:"targets"`
	Grant   int            `json:"grant"`
	// Requested is the job's -p cap (0 = none), Running the number of
	// jobs the targets were balanced across (including this one).
	Requested int `json:"requested"`
	Running   int `json:"running"`
}

// jobLoad summarizes one job for the allocator.
type jobLoad struct {
	id    string
	tasks int // total tasks across operators
}

// allocLog keeps the most recent admission decisions in a ring.
type allocLog struct {
	mu   sync.Mutex
	ring []AllocDecision
	next int
	full bool
}

const allocLogSize = 64

func (l *allocLog) add(d AllocDecision) {
	l.mu.Lock()
	if l.ring == nil {
		l.ring = make([]AllocDecision, allocLogSize)
	}
	l.ring[l.next] = d
	l.next = (l.next + 1) % allocLogSize
	if l.next == 0 {
		l.full = true
	}
	l.mu.Unlock()
}

// snapshot returns the logged decisions oldest-first.
func (l *allocLog) snapshot() []AllocDecision {
	l.mu.Lock()
	defer l.mu.Unlock()
	var out []AllocDecision
	if l.full {
		out = append(out, l.ring[l.next:]...)
	}
	out = append(out, l.ring[:l.next]...)
	return out
}

// admit computes the worker grant for a new job given the jobs
// currently running on a pool of size p. requested caps the grant
// (0 = no cap). The grant is always in [1, p]: the pool queue, not
// admission, handles the case where the grant exceeds the currently
// free workers.
func admit(newJob jobLoad, running []jobLoad, p, requested int) AllocDecision {
	loads := append(append([]jobLoad{}, running...), newJob)
	specs := make([]rts.OpSpec, len(loads))
	names := make([]string, len(loads))
	for i, l := range loads {
		n := l.tasks
		if n < 1 {
			n = 1
		}
		// Mu 1, Bytes 0: the pool has no modelled communication, so the
		// finishing-time estimate reduces to compute balance — remaining
		// work over granted workers.
		specs[i] = rts.OpSpec{Op: sched.Op{Name: l.id, N: n}, Mu: 1}
		names[i] = l.id
	}
	targets := rts.AllocateMany(machine.DefaultConfig(p), specs, p, nil, names...)
	d := AllocDecision{
		Job:       newJob.id,
		Targets:   map[string]int{},
		Requested: requested,
		Running:   len(loads),
	}
	for i, t := range targets {
		d.Targets[names[i]] = t
	}
	grant := targets[len(targets)-1]
	if requested > 0 && grant > requested {
		grant = requested
	}
	if grant < 1 {
		grant = 1
	}
	if grant > p {
		grant = p
	}
	d.Grant = grant
	return d
}
