package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"strings"
	"testing"
	"time"

	"orchestra/internal/core"
	"orchestra/internal/native"
	"orchestra/internal/rts"
)

// figure1 loads the paper's running example, the daemon's canonical
// test program.
func figure1(t *testing.T) string {
	t.Helper()
	src, err := os.ReadFile("../../examples/figure1.f")
	if err != nil {
		t.Fatal(err)
	}
	return string(src)
}

func newTestServer(t *testing.T) (*Server, *httptest.Server) {
	t.Helper()
	s := New(Config{PoolSize: 4, DefaultMode: rts.ModeSplit})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts
}

// postJob submits a request and decodes the response body regardless
// of status code.
func postJob(t *testing.T, ts *httptest.Server, req SubmitRequest) (int, JobStatus) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/api/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatalf("decoding response: %v", err)
	}
	return resp.StatusCode, st
}

func getJSON(t *testing.T, url string, v any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatalf("decoding %s: %v", url, err)
	}
	return resp.StatusCode
}

// TestHTTPSubmitSyncCacheAndParity submits the same program twice:
// the first compile is a cache miss, the second a hit, and both
// results are bitwise identical to a local one-shot run.
func TestHTTPSubmitSyncCacheAndParity(t *testing.T) {
	_, ts := newTestServer(t)
	src := figure1(t)
	req := SubmitRequest{Program: src, N: 64, Mode: "split"}

	code, st := postJob(t, ts, req)
	if code != http.StatusOK || st.State != StateDone {
		t.Fatalf("first submit: %d %s (%s)", code, st.State, st.Error)
	}
	if st.Cache != "miss" {
		t.Errorf("first submit: cache %q, want miss", st.Cache)
	}
	if st.Digest == "" || st.Result == nil || st.Allocated < 1 {
		t.Errorf("first submit: digest %q result %v allocated %d", st.Digest, st.Result, st.Allocated)
	}

	code2, st2 := postJob(t, ts, req)
	if code2 != http.StatusOK || st2.State != StateDone {
		t.Fatalf("second submit: %d %s (%s)", code2, st2.State, st2.Error)
	}
	if st2.Cache != "hit" {
		t.Errorf("second submit: cache %q, want hit", st2.Cache)
	}
	if st2.Digest != st.Digest {
		t.Errorf("digests differ across submissions: %.12s vs %.12s", st.Digest, st2.Digest)
	}

	// Local one-shot reference, entirely outside the daemon.
	out, err := core.CompileSource(src, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	bind, state, err := native.ArrayKernels(out.Graph, 64, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := (native.Backend{}).Run(out.Graph, rts.BindClosure(bind), rts.RunOpts{Mode: rts.ModeSplit}); err != nil {
		t.Fatal(err)
	}
	if want := native.StateDigest(state); st.Digest != want {
		t.Errorf("daemon digest %.12s != one-shot %.12s", st.Digest, want)
	}

	var stats Stats
	if code := getJSON(t, ts.URL+"/api/v1/stats", &stats); code != http.StatusOK {
		t.Fatalf("stats: %d", code)
	}
	if stats.Cache.Hits < 1 || stats.Cache.Misses < 1 || stats.Cache.Entries != 1 {
		t.Errorf("cache stats = %+v, want >=1 hit, >=1 miss, 1 entry", stats.Cache)
	}
	if stats.Pool.Size != 4 || stats.Pool.Free != 4 {
		t.Errorf("pool stats = %+v, want size 4 all free", stats.Pool)
	}
	if stats.Jobs.Done < 2 || len(stats.Allocations) < 2 {
		t.Errorf("jobs %+v, %d allocation decisions", stats.Jobs, len(stats.Allocations))
	}
}

// TestHTTPSubmitGraphText submits raw Delirium coordination text and
// checks it digests identically to submitting the program it encodes.
func TestHTTPSubmitGraphText(t *testing.T) {
	_, ts := newTestServer(t)
	src := figure1(t)
	out, err := core.CompileSource(src, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}

	code, byProgram := postJob(t, ts, SubmitRequest{Program: src, N: 48})
	if code != http.StatusOK || byProgram.State != StateDone {
		t.Fatalf("program submit: %d %s (%s)", code, byProgram.State, byProgram.Error)
	}
	code, byGraph := postJob(t, ts, SubmitRequest{Graph: out.Graph.Encode(), N: 48})
	if code != http.StatusOK || byGraph.State != StateDone {
		t.Fatalf("graph submit: %d %s (%s)", code, byGraph.State, byGraph.Error)
	}
	if byGraph.Digest != byProgram.Digest {
		t.Errorf("graph-text digest %.12s != program digest %.12s", byGraph.Digest, byProgram.Digest)
	}
}

// TestHTTPAsyncAndWait drives the async path: a 202 with a job id,
// then a blocking ?wait=1 status read until the terminal state.
func TestHTTPAsyncAndWait(t *testing.T) {
	_, ts := newTestServer(t)
	code, st := postJob(t, ts, SubmitRequest{Program: figure1(t), N: 256, Async: true})
	if code != http.StatusAccepted {
		t.Fatalf("async submit: %d, want 202", code)
	}
	if st.ID == "" {
		t.Fatal("async submit returned no job id")
	}
	var final JobStatus
	if code := getJSON(t, ts.URL+"/api/v1/jobs/"+st.ID+"?wait=1", &final); code != http.StatusOK {
		t.Fatalf("wait: %d", code)
	}
	if final.State != StateDone || final.Digest == "" {
		t.Errorf("after wait: state %s digest %q (%s)", final.State, final.Digest, final.Error)
	}
}

// TestHTTPCancelRunningJob cancels a long async job over HTTP and
// checks it lands in the canceled state with the pool fully released.
func TestHTTPCancelRunningJob(t *testing.T) {
	s, ts := newTestServer(t)
	// Big enough that cancellation always lands mid-run.
	code, st := postJob(t, ts, SubmitRequest{Program: figure1(t), N: 8192, Work: 1000, Async: true})
	if code != http.StatusAccepted {
		t.Fatalf("async submit: %d, want 202", code)
	}
	resp, err := http.Post(ts.URL+"/api/v1/jobs/"+st.ID+"/cancel", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cancel: %d", resp.StatusCode)
	}
	var final JobStatus
	getJSON(t, ts.URL+"/api/v1/jobs/"+st.ID+"?wait=1", &final)
	if final.State != StateCanceled {
		t.Fatalf("after cancel: state %s (%s)", final.State, final.Error)
	}
	if !strings.Contains(final.Error, "canceled") {
		t.Errorf("canceled job error = %q, want it to mention cancellation", final.Error)
	}

	// The workers must come back; a fresh job must run normally.
	deadline := time.Now().Add(10 * time.Second)
	for s.pool.Free() != 4 {
		if time.Now().After(deadline) {
			t.Fatalf("pool free = %d after cancel, want 4", s.pool.Free())
		}
		time.Sleep(time.Millisecond)
	}
	code, after := postJob(t, ts, SubmitRequest{Program: figure1(t), N: 32})
	if code != http.StatusOK || after.State != StateDone {
		t.Fatalf("submit after cancel: %d %s (%s)", code, after.State, after.Error)
	}
}

// TestHTTPTimeoutBecomes499 checks a job deadline maps to the canceled
// state and the 499 status code on the synchronous path.
func TestHTTPTimeoutBecomes499(t *testing.T) {
	_, ts := newTestServer(t)
	code, st := postJob(t, ts, SubmitRequest{Program: figure1(t), N: 8192, Work: 1000, TimeoutMS: 20})
	if code != 499 {
		t.Fatalf("timed-out submit: %d (%s, %s), want 499", code, st.State, st.Error)
	}
	if st.State != StateCanceled {
		t.Errorf("timed-out submit state %s, want canceled", st.State)
	}
}

// TestHTTPBadRequests pins the 4xx surface.
func TestHTTPBadRequests(t *testing.T) {
	_, ts := newTestServer(t)
	cases := []struct {
		name string
		body string
	}{
		{"not json", "{"},
		{"unknown field", `{"prog": "x"}`},
		{"neither program nor graph", `{}`},
		{"both program and graph", `{"program": "x", "graph": "y"}`},
		{"bad mode", `{"program": "program p\nend\n", "mode": "warp"}`},
		{"bad binder", `{"program": "program p\nend\n", "binder": "quantum"}`},
		{"bad fault plan", `{"program": "program p\nend\n", "fault": "meteor:9"}`},
		{"compile error", `{"program": "this is not fortran"}`},
		{"bad graph text", `{"graph": "this is not delirium"}`},
	}
	for _, tc := range cases {
		resp, err := http.Post(ts.URL+"/api/v1/jobs", "application/json", strings.NewReader(tc.body))
		if err != nil {
			t.Fatal(err)
		}
		var body map[string]string
		_ = json.NewDecoder(resp.Body).Decode(&body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: %d, want 400", tc.name, resp.StatusCode)
		}
		if body["error"] == "" {
			t.Errorf("%s: no error message in response", tc.name)
		}
	}

	resp, err := http.Get(ts.URL + "/api/v1/jobs/job-999")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job: %d, want 404", resp.StatusCode)
	}
}

// TestHTTPHealthz pins the liveness endpoint.
func TestHTTPHealthz(t *testing.T) {
	_, ts := newTestServer(t)
	var body map[string]string
	if code := getJSON(t, ts.URL+"/healthz", &body); code != http.StatusOK || body["status"] != "ok" {
		t.Errorf("healthz: %d %v", code, body)
	}
}

// TestConcurrentSubmissionsShareOnePool floods the daemon with
// concurrent in-process submissions and checks every digest agrees —
// the multi-tenant correctness contract, race-checked under -race.
func TestConcurrentSubmissionsShareOnePool(t *testing.T) {
	s, _ := newTestServer(t)
	src := figure1(t)
	const jobs = 16
	type outcome struct {
		st  JobStatus
		err error
	}
	results := make(chan outcome, jobs)
	for i := 0; i < jobs; i++ {
		go func() {
			j, err := s.Submit(SubmitRequest{Program: src, N: 64, Processors: 2})
			if err != nil {
				results <- outcome{err: err}
				return
			}
			results <- outcome{st: j.Status()}
		}()
	}
	digests := map[string]int{}
	for i := 0; i < jobs; i++ {
		o := <-results
		if o.err != nil {
			t.Fatal(o.err)
		}
		if o.st.State != StateDone {
			t.Fatalf("job %s: %s (%s)", o.st.ID, o.st.State, o.st.Error)
		}
		digests[o.st.Digest]++
	}
	if len(digests) != 1 {
		t.Errorf("concurrent submissions produced %d distinct digests: %v", len(digests), digests)
	}
	if st := s.Stats(); st.Cache.Entries != 1 || st.Cache.Misses != 1 || st.Cache.Hits != jobs-1 {
		t.Errorf("cache stats = %+v, want 1 entry, 1 miss, %d hits", st.Cache, jobs-1)
	}
}

// TestAutosplitPlanCache pins the autosplit hook: the first autosplit
// submission of a graph is the profiling run and caches the searched
// plan under the graph fingerprint; repeats at the same grant reuse it;
// and the searched schedule never moves the kernel digest.
func TestAutosplitPlanCache(t *testing.T) {
	s, ts := newTestServer(t)
	src := figure1(t)
	req := SubmitRequest{Program: src, N: 128, Processors: 2, Autosplit: true}

	code, first := postJob(t, ts, req)
	if code != http.StatusOK || first.State != StateDone {
		t.Fatalf("first submit: %d %s (%s)", code, first.State, first.Error)
	}
	if !strings.HasPrefix(first.Plan, "profiled:") {
		t.Fatalf("first submit plan = %q, want profiled:<id>", first.Plan)
	}

	code, second := postJob(t, ts, req)
	if code != http.StatusOK || second.State != StateDone {
		t.Fatalf("second submit: %d %s (%s)", code, second.State, second.Error)
	}
	wantPlan := "cached:" + strings.TrimPrefix(first.Plan, "profiled:")
	if second.Plan != wantPlan {
		t.Errorf("second submit plan = %q, want %q", second.Plan, wantPlan)
	}
	if second.Digest != first.Digest || first.Digest == "" {
		t.Errorf("digests: profiled %.12s, cached %.12s — searched plan must not change values",
			first.Digest, second.Digest)
	}

	// A plain submission of the same program is untouched by the cache.
	code, plain := postJob(t, ts, SubmitRequest{Program: src, N: 128, Processors: 2})
	if code != http.StatusOK || plain.State != StateDone {
		t.Fatalf("plain submit: %d %s (%s)", code, plain.State, plain.Error)
	}
	if plain.Plan != "" {
		t.Errorf("plain submit plan = %q, want empty", plain.Plan)
	}
	if plain.Digest != first.Digest {
		t.Errorf("plain digest %.12s != autosplit digest %.12s", plain.Digest, first.Digest)
	}

	if st := s.Stats(); st.Plans.Entries != 1 || st.Plans.Misses != 1 || st.Plans.Hits != 1 {
		t.Errorf("plan cache stats = %+v, want 1 entry, 1 miss, 1 hit", st.Plans)
	}
}

// TestServerCloseReleasesEverything checks Close cancels in-flight
// jobs, rejects new ones, and leaves no goroutines behind.
func TestServerCloseReleasesEverything(t *testing.T) {
	runtime.GC()
	base := runtime.NumGoroutine()

	s := New(Config{PoolSize: 3, DefaultMode: rts.ModeSplit})
	src := figure1(t)
	if _, err := s.Submit(SubmitRequest{Program: src, N: 32}); err != nil {
		t.Fatal(err)
	}
	// A long async job Close must cancel rather than wait out.
	j, err := s.Submit(SubmitRequest{Program: src, N: 8192, Work: 1000, Async: true})
	if err != nil {
		t.Fatal(err)
	}
	s.Close()
	if st := j.Status(); st.State != StateCanceled && st.State != StateDone {
		t.Errorf("async job after Close: %s", st.State)
	}
	if _, err := s.Submit(SubmitRequest{Program: src, N: 32}); err == nil {
		t.Error("Submit after Close succeeded")
	}

	for i := 0; i < 100; i++ {
		runtime.GC()
		if runtime.NumGoroutine() <= base {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Errorf("goroutines: %d before server, %d after Close", base, runtime.NumGoroutine())
}

// TestAdmissionEqualizesFinishingTimes pins the cross-job allocator:
// with one heavy job running, a light newcomer's grant leaves the
// heavy job the larger share, and every decision is logged.
func TestAdmissionEqualizesFinishingTimes(t *testing.T) {
	heavy := jobLoad{id: "heavy", tasks: 10000}
	light := jobLoad{id: "light", tasks: 100}
	d := admit(light, []jobLoad{heavy}, 8, 0)
	if d.Grant < 1 || d.Grant > 8 {
		t.Fatalf("grant %d out of range", d.Grant)
	}
	if d.Targets["heavy"] <= d.Targets["light"] {
		t.Errorf("targets %v: heavy job should get more processors than light one", d.Targets)
	}
	if d.Grant != d.Targets["light"] {
		t.Errorf("grant %d != light job's target %d", d.Grant, d.Targets["light"])
	}

	// A requested cap clamps the grant.
	capped := admit(light, []jobLoad{heavy}, 8, 1)
	if capped.Grant != 1 {
		t.Errorf("capped grant %d, want 1", capped.Grant)
	}

	// An empty machine gives a solo job everything.
	solo := admit(jobLoad{id: "solo", tasks: 50}, nil, 8, 0)
	if solo.Grant != 8 {
		t.Errorf("solo grant %d, want 8", solo.Grant)
	}
}

// TestAllocLogRing pins the bounded decision log.
func TestAllocLogRing(t *testing.T) {
	var l allocLog
	for i := 0; i < 100; i++ {
		l.add(AllocDecision{Job: fmt.Sprintf("job-%d", i)})
	}
	snap := l.snapshot()
	if len(snap) != 64 {
		t.Fatalf("snapshot length %d, want 64", len(snap))
	}
	if snap[0].Job != "job-36" || snap[63].Job != "job-99" {
		t.Errorf("snapshot spans %s..%s, want job-36..job-99 oldest-first", snap[0].Job, snap[63].Job)
	}
}
