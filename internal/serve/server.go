// Package serve is the orchestration daemon: a long-running,
// multi-tenant execution service for Delirium graphs. One warm
// native.Pool of persistent workers lives for the daemon's lifetime;
// submitted programs are compiled once into a content-addressed graph
// cache and executed as jobs multiplexed onto the shared pool, with
// worker grants decided by the paper's finishing-time-equalizing
// allocator applied across jobs (see admission.go). The HTTP surface
// (http.go) is a thin JSON layer over Server's methods, so embedders
// and tests drive the same code paths as network clients.
//
// The lifecycle of a submission:
//
//	submit → resolve graph (cache hit or compile) → job registered
//	       → admission (worker grant) → pool leases workers (FIFO)
//	       → engine executes on persistent goroutines → result + digest
//
// Each job runs under its own context (cancel endpoint, optional
// deadline) and its own RunOpts — fault plans and trace sinks are
// per-job and cannot perturb neighbours sharing the pool.
package serve

import (
	"bytes"
	"context"
	"fmt"
	"runtime"
	"sync"
	"time"

	"orchestra/internal/compile"
	"orchestra/internal/delirium"
	"orchestra/internal/fault"
	"orchestra/internal/native"
	"orchestra/internal/obs"
	"orchestra/internal/rts"
	"orchestra/internal/search"
	"orchestra/internal/trace"
)

// Config sizes the daemon.
type Config struct {
	// PoolSize is the warm pool's worker count (<= 0: GOMAXPROCS).
	PoolSize int
	// DefaultMode applies when a submission omits "mode".
	DefaultMode rts.Mode
	// Omega is the default TAPER confidence width (0 = scheduler
	// default); submissions may override per job.
	Omega float64
}

// Server is the daemon state: the warm pool, the graph cache, and the
// job registry. Create with New, dispose with Close.
type Server struct {
	cfg   Config
	pool  *native.Pool
	cache *graphCache
	plans *planCache
	alloc allocLog

	mu     sync.Mutex
	jobs   map[string]*Job
	seq    int
	closed bool
	wg     sync.WaitGroup

	done, failed, canceled int64
	// Pipeline counters, accumulated over every completed job's result:
	// cache-chain activity on the pool (see trace.Result).
	chainHits, chainSpills, chainFallbacks int64
	started                                time.Time
}

// New starts a daemon: the pool's worker goroutines spin up here and
// live until Close.
func New(cfg Config) *Server {
	if cfg.PoolSize <= 0 {
		cfg.PoolSize = runtime.GOMAXPROCS(0)
	}
	return &Server{
		cfg:     cfg,
		pool:    native.NewPool(cfg.PoolSize),
		cache:   newGraphCache(),
		plans:   newPlanCache(),
		jobs:    map[string]*Job{},
		started: time.Now(),
	}
}

// Close cancels every unfinished job, waits for async submissions to
// drain, and stops the pool's workers.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	jobs := make([]*Job, 0, len(s.jobs))
	for _, j := range s.jobs {
		jobs = append(jobs, j)
	}
	s.mu.Unlock()
	for _, j := range jobs {
		j.cancel()
	}
	s.wg.Wait()
	s.pool.Close()
}

// SubmitRequest is one job submission. Exactly one of Program (mini-
// Fortran source, compiled through the graph cache) or Graph (Delirium
// coordination text, decoded through the cache) must be set.
type SubmitRequest struct {
	Program string          `json:"program,omitempty"`
	Graph   string          `json:"graph,omitempty"`
	Options *CompileOptions `json:"options,omitempty"`

	// Binder selects how graph nodes become executable work: "kernel"
	// (default — real array kernels with a result digest) or "spin"
	// (synthetic CPU-bound tasks, log-normal durations).
	Binder string `json:"binder,omitempty"`
	// N is the per-operator task count (default 2048).
	N int `json:"n,omitempty"`
	// Work is the kernel binder's function-evaluation rounds per task.
	Work int `json:"work,omitempty"`
	// CV, Seed, UnitWork parameterize the spin binder.
	CV       float64 `json:"cv,omitempty"`
	Seed     uint64  `json:"seed,omitempty"`
	UnitWork int     `json:"unitwork,omitempty"`

	// Mode is static, taper, or split (default: the server's).
	Mode string `json:"mode,omitempty"`
	// Processors caps the job's worker grant (0 = allocator's choice).
	Processors int `json:"processors,omitempty"`
	// Omega overrides TAPER's confidence width for this job.
	Omega float64 `json:"omega,omitempty"`
	// Fault injects a per-job fault plan (internal/fault syntax).
	Fault string `json:"fault,omitempty"`
	// TimeoutMS bounds the job's total time (queue + run); 0 = none.
	TimeoutMS int `json:"timeout_ms,omitempty"`
	// Trace captures the job's execution trace and returns it as a
	// Chrome trace-event JSON string in the job status.
	Trace bool `json:"trace,omitempty"`
	// Autosplit runs the job through the profile-guided split search:
	// the first submission of a graph profiles it and caches the
	// searched plan under the graph's fingerprint; repeats at the same
	// grant and ω execute the searched graph directly (see autosplit.go).
	Autosplit bool `json:"autosplit,omitempty"`
	// Async returns the job id immediately instead of waiting for the
	// result; poll or wait on the status endpoint.
	Async bool `json:"async,omitempty"`
}

// CompileOptions is the submission view of compile.Options.
type CompileOptions struct {
	Fuse     bool `json:"fuse,omitempty"`
	Split    bool `json:"split"`
	Pipeline bool `json:"pipeline"`
	Depth    int  `json:"depth,omitempty"`
}

func (o *CompileOptions) resolve() compile.Options {
	if o == nil {
		return compile.DefaultOptions()
	}
	c := compile.DefaultOptions()
	c.EnableFusion = o.Fuse
	c.EnableSplit = o.Split
	c.EnablePipeline = o.Pipeline
	if o.Depth > 0 {
		c.PipelineDepth = o.Depth
	}
	return c
}

// Job states.
const (
	StateQueued   = "queued"
	StateRunning  = "running"
	StateDone     = "done"
	StateFailed   = "failed"
	StateCanceled = "canceled"
)

// Job is one submission's lifecycle. All mutation happens under mu;
// Status snapshots it for the API.
type Job struct {
	id       string
	server   *Server
	graph    *delirium.Graph
	fp       string
	cacheHit bool
	req      SubmitRequest
	mode     rts.Mode
	plan     *fault.Plan
	tasks    int

	ctx    context.Context
	cancel context.CancelFunc
	doneCh chan struct{}

	mu        sync.Mutex
	state     string
	grant     int
	result    *trace.Result
	digest    string
	traceJSON string
	planInfo  string
	errMsg    string
	submitted time.Time
	startedAt time.Time
	finished  time.Time
}

// JobStatus is the API snapshot of a job.
type JobStatus struct {
	ID    string `json:"id"`
	State string `json:"state"`
	Graph string `json:"graph"`
	// Cache reports whether this job's graph came out of the cache
	// ("hit") or was compiled/decoded by it ("miss").
	Cache string `json:"cache"`
	Mode  string `json:"mode"`
	// Requested is the submission's processor cap, Allocated the
	// admission grant actually used (0 until running).
	Requested int `json:"requested"`
	Allocated int `json:"allocated"`
	// QueueSeconds is submit→start, RunSeconds start→finish.
	QueueSeconds float64       `json:"queue_seconds"`
	RunSeconds   float64       `json:"run_seconds"`
	Result       *trace.Result `json:"result,omitempty"`
	// Digest fingerprints the kernel binder's final arrays (SHA-256,
	// bitwise); empty for the spin binder.
	Digest string `json:"digest,omitempty"`
	// TraceJSON is the Chrome trace-event export when Trace was set.
	TraceJSON string `json:"trace_json,omitempty"`
	// Plan reports the autosplit outcome: "profiled:<id>" when this job
	// was the profiling run that cached the searched plan, "cached:<id>"
	// when it reused one.
	Plan  string `json:"plan,omitempty"`
	Error string `json:"error,omitempty"`
}

// Status snapshots the job.
func (j *Job) Status() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := JobStatus{
		ID:        j.id,
		State:     j.state,
		Graph:     j.graph.Name,
		Cache:     map[bool]string{true: "hit", false: "miss"}[j.cacheHit],
		Mode:      j.mode.String(),
		Requested: j.req.Processors,
		Allocated: j.grant,
		Result:    j.result,
		Digest:    j.digest,
		TraceJSON: j.traceJSON,
		Plan:      j.planInfo,
		Error:     j.errMsg,
	}
	if !j.startedAt.IsZero() {
		st.QueueSeconds = j.startedAt.Sub(j.submitted).Seconds()
		if !j.finished.IsZero() {
			st.RunSeconds = j.finished.Sub(j.startedAt).Seconds()
		}
	}
	return st
}

// ID returns the job's identifier.
func (j *Job) ID() string { return j.id }

// Done returns a channel closed when the job reaches a terminal state.
func (j *Job) Done() <-chan struct{} { return j.doneCh }

// Cancel requests cooperative cancellation: a queued job aborts its
// pool wait, a running one stops at the next chunk boundaries.
func (j *Job) Cancel() { j.cancel() }

// Submit validates a request, resolves its graph through the cache,
// and starts the job: inline for synchronous submissions (the call
// returns when the job is terminal), on a daemon goroutine for async
// ones (the call returns once the job is registered).
func (s *Server) Submit(req SubmitRequest) (*Job, error) {
	j, err := s.prepare(req)
	if err != nil {
		return nil, err
	}
	if req.Async {
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.runJob(j)
		}()
		return j, nil
	}
	s.runJob(j)
	return j, nil
}

// prepare builds and registers a job without running it.
func (s *Server) prepare(req SubmitRequest) (*Job, error) {
	if (req.Program == "") == (req.Graph == "") {
		return nil, fmt.Errorf("serve: submit exactly one of program or graph")
	}
	mode := s.cfg.DefaultMode
	if req.Mode != "" {
		m, err := rts.ParseMode(req.Mode)
		if err != nil {
			return nil, err
		}
		mode = m
	}
	var plan *fault.Plan
	if req.Fault != "" {
		p, err := fault.Parse(req.Fault)
		if err != nil {
			return nil, err
		}
		plan = p
	}
	switch req.Binder {
	case "", "kernel", "spin":
	default:
		return nil, fmt.Errorf("serve: unknown binder %q (valid: kernel, spin)", req.Binder)
	}
	if req.N <= 0 {
		req.N = 2048
	}
	if req.Work <= 0 {
		req.Work = 1
	}
	if req.CV <= 0 {
		req.CV = 1
	}
	if req.UnitWork <= 0 {
		req.UnitWork = 4000
	}
	if req.Processors > s.pool.Size() {
		req.Processors = s.pool.Size()
	}

	var g *delirium.Graph
	var fp string
	var hit bool
	var err error
	if req.Program != "" {
		fp = compile.Fingerprint(req.Program, req.Options.resolve())
		g, hit, err = s.cache.compileKeyed(req.Program, req.Options.resolve())
	} else {
		fp = compile.GraphFingerprint(req.Graph)
		g, hit, err = s.cache.decodeKeyed(req.Graph)
	}
	if err != nil {
		return nil, err
	}

	ctx := context.Background()
	var cancel context.CancelFunc
	if req.TimeoutMS > 0 {
		ctx, cancel = context.WithTimeout(ctx, time.Duration(req.TimeoutMS)*time.Millisecond)
	} else {
		ctx, cancel = context.WithCancel(ctx)
	}

	j := &Job{
		server:    s,
		graph:     g,
		fp:        fp,
		cacheHit:  hit,
		req:       req,
		mode:      mode,
		plan:      plan,
		tasks:     req.N * len(g.Nodes),
		ctx:       ctx,
		cancel:    cancel,
		doneCh:    make(chan struct{}),
		state:     StateQueued,
		submitted: time.Now(),
	}

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		cancel()
		return nil, fmt.Errorf("serve: server is closed")
	}
	s.seq++
	j.id = fmt.Sprintf("job-%d", s.seq)
	s.jobs[j.id] = j
	s.mu.Unlock()
	return j, nil
}

// runJob carries a prepared job to a terminal state: admission, binder
// construction, pool execution, digest.
func (s *Server) runJob(j *Job) {
	defer j.cancel() // release the context's timer resources
	grant := s.admitJob(j)

	j.mu.Lock()
	j.state = StateRunning
	j.grant = grant
	j.startedAt = time.Now()
	j.mu.Unlock()

	// Kernels resolve by name from the registry; the request's binder
	// names map onto the registered kernel families ("kernel" predates
	// the registry and aliases "array").
	params := rts.KernelParams{}
	kernelName := "array"
	if j.req.Binder == "spin" {
		kernelName = "spin"
		params.SetInt("tasks", j.req.N)
		params.SetInt("n", j.req.N)
		params.SetFloat("cv", j.req.CV)
		params.SetUint64("seed", j.req.Seed)
		params.SetInt("unitwork", j.req.UnitWork)
	} else {
		params.SetInt("n", j.req.N)
		params.SetInt("work", j.req.Work)
	}
	bound, err := rts.Bind(j.graph, rts.NamedBinding(kernelName, params))
	if err != nil {
		s.finishJob(j, nil, "", "", err)
		return
	}

	omega := j.req.Omega
	if omega == 0 {
		omega = s.cfg.Omega
	}
	opts := rts.RunOpts{
		Processors: grant,
		Mode:       j.mode,
		Omega:      omega,
		Fault:      j.plan,
		Ctx:        j.ctx,
	}
	var col obs.Collector
	if j.req.Trace {
		opts.Sink = &col
	}

	// Autosplit: reuse a cached searched plan when one exists for this
	// graph at this grant and ω; otherwise this run doubles as the
	// profiling run, so force the event sink on. The binder stays keyed
	// to the submitted graph — the searched graph shares its nodes and
	// only weakens edge attributes, so kernel read patterns (and hence
	// the digest) are unchanged.
	runGraph := j.graph
	key := planKey(j.fp, grant, omega)
	profiling := false
	if j.req.Autosplit {
		if p, ok := s.plans.get(key); ok {
			runGraph = p.Best.Graph
			j.mu.Lock()
			j.planInfo = "cached:" + p.Best.ID
			j.mu.Unlock()
		} else {
			profiling = true
			opts.Sink = &col
		}
	}

	res, err := s.pool.Run(runGraph, bound, opts)
	if err != nil {
		s.finishJob(j, nil, "", "", err)
		return
	}

	if profiling && col.Trace != nil {
		if prof, perr := search.FromTrace(col.Trace, omega); perr == nil {
			plan, serr := search.Run(prof, search.GraphCandidates(j.graph),
				search.Options{P: grant, Omega: omega})
			if serr == nil {
				s.plans.put(key, plan)
				j.mu.Lock()
				j.planInfo = "profiled:" + plan.Best.ID
				j.mu.Unlock()
			}
		}
	}
	digest := ""
	if d, ok := bound.Digest(); ok {
		digest = d
	}
	traceJSON := ""
	if j.req.Trace && col.Trace != nil {
		var buf bytes.Buffer
		if werr := obs.WriteChromeTrace(&buf, col.Trace); werr == nil {
			traceJSON = buf.String()
		}
	}
	s.finishJob(j, &res, digest, traceJSON, nil)
}

// admitJob computes the job's worker grant against the currently
// running jobs and logs the decision.
func (s *Server) admitJob(j *Job) int {
	var running []jobLoad
	s.mu.Lock()
	for _, o := range s.jobs {
		if o == j {
			continue
		}
		o.mu.Lock()
		if o.state == StateRunning {
			running = append(running, jobLoad{id: o.id, tasks: o.tasks})
		}
		o.mu.Unlock()
	}
	s.mu.Unlock()
	d := admit(jobLoad{id: j.id, tasks: j.tasks}, running, s.pool.Size(), j.req.Processors)
	s.alloc.add(d)
	return d.Grant
}

// finishJob moves a job to its terminal state and closes Done.
func (s *Server) finishJob(j *Job, res *trace.Result, digest, traceJSON string, err error) {
	j.mu.Lock()
	j.finished = time.Now()
	switch {
	case err == nil:
		j.state = StateDone
		j.result = res
		j.digest = digest
		j.traceJSON = traceJSON
	case rts.IsCanceled(err):
		j.state = StateCanceled
		j.errMsg = err.Error()
	default:
		j.state = StateFailed
		j.errMsg = err.Error()
	}
	state := j.state
	j.mu.Unlock()
	close(j.doneCh)

	s.mu.Lock()
	switch state {
	case StateDone:
		s.done++
		if res != nil {
			s.chainHits += int64(res.ChainHits)
			s.chainSpills += int64(res.ChainSpills)
			s.chainFallbacks += int64(res.ChainFallbacks)
		}
	case StateCanceled:
		s.canceled++
	default:
		s.failed++
	}
	s.mu.Unlock()
}

// Job looks up a registered job by id.
func (s *Server) Job(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// Stats is the /stats document: pool occupancy, graph-cache hit rates,
// job counters, and the recent cross-job allocation decisions.
type Stats struct {
	UptimeSeconds float64          `json:"uptime_seconds"`
	Pool          native.PoolStats `json:"pool"`
	Cache         CacheStats       `json:"cache"`
	Plans         PlanCacheStats   `json:"plans"`
	Jobs          JobCounts        `json:"jobs"`
	Pipeline      PipelineStats    `json:"pipeline"`
	Allocations   []AllocDecision  `json:"allocations"`
}

// PipelineStats aggregates the cache-chain scheduler's activity across
// every job the pool has completed: chunks run in place on the chain
// path, blocks spilled back to the work-stealing deques at the depth
// limit, and blocks released to surviving workers during crash
// recovery.
type PipelineStats struct {
	ChainHits      int64 `json:"chain_hits"`
	ChainSpills    int64 `json:"chain_spills"`
	ChainFallbacks int64 `json:"chain_fallbacks"`
}

// JobCounts aggregates job states.
type JobCounts struct {
	Total    int   `json:"total"`
	Queued   int   `json:"queued"`
	Running  int   `json:"running"`
	Done     int64 `json:"done"`
	Failed   int64 `json:"failed"`
	Canceled int64 `json:"canceled"`
}

// Stats snapshots the daemon.
func (s *Server) Stats() Stats {
	s.mu.Lock()
	jc := JobCounts{Total: len(s.jobs), Done: s.done, Failed: s.failed, Canceled: s.canceled}
	ps := PipelineStats{ChainHits: s.chainHits, ChainSpills: s.chainSpills, ChainFallbacks: s.chainFallbacks}
	jobs := make([]*Job, 0, len(s.jobs))
	for _, j := range s.jobs {
		jobs = append(jobs, j)
	}
	uptime := time.Since(s.started).Seconds()
	s.mu.Unlock()
	for _, j := range jobs {
		j.mu.Lock()
		switch j.state {
		case StateQueued:
			jc.Queued++
		case StateRunning:
			jc.Running++
		}
		j.mu.Unlock()
	}
	return Stats{
		UptimeSeconds: uptime,
		Pool:          s.pool.Stats(),
		Cache:         s.cache.stats(),
		Plans:         s.plans.stats(),
		Jobs:          jc,
		Pipeline:      ps,
		Allocations:   s.alloc.snapshot(),
	}
}
