package serve

import (
	"fmt"
	"sync"
	"sync/atomic"

	"orchestra/internal/search"
)

// The daemon's autosplit hook: a submission with "autosplit": true has
// its graph tuned by the profile-guided split search (internal/search).
// The first such job doubles as the profiling run — it executes the
// graph as submitted with an event sink, feeds the trace through the
// search, and caches the emitted plan; every later autosplit
// submission of the same graph at the same grant and ω skips straight
// to the searched graph. The cache rides on the same content address
// as the graph cache (compile.Fingerprint / compile.GraphFingerprint),
// so "same graph" means same fingerprint, under any job name.
//
// The search only weakens edge attributes (GraphCandidates), so a
// searched schedule is always admissible under the submitted graph's
// gating: kernel digests are unaffected, only the makespan moves.

// planCache stores searched plans keyed by graph fingerprint, worker
// grant, and ω. Unlike the graph cache there is no singleflight: two
// racing first jobs each profile and the later store wins, which is
// harmless — both plans came from valid profiles of the same graph.
type planCache struct {
	mu      sync.Mutex
	entries map[string]*search.Plan

	hits   atomic.Int64
	misses atomic.Int64
}

func newPlanCache() *planCache {
	return &planCache{entries: map[string]*search.Plan{}}
}

// planKey scopes a cached plan to everything the search conditioned
// on: the grant is the search's P, ω shifts the estimator's chunk
// model, and the fingerprint pins the graph.
func planKey(fp string, grant int, omega float64) string {
	return fmt.Sprintf("%s|p=%d|omega=%g", fp, grant, omega)
}

func (c *planCache) get(key string) (*search.Plan, bool) {
	c.mu.Lock()
	p, ok := c.entries[key]
	c.mu.Unlock()
	if ok {
		c.hits.Add(1)
	} else {
		c.misses.Add(1)
	}
	return p, ok
}

func (c *planCache) put(key string, p *search.Plan) {
	c.mu.Lock()
	c.entries[key] = p
	c.mu.Unlock()
}

// PlanCacheStats is the /stats view of the searched-plan cache.
type PlanCacheStats struct {
	Entries int   `json:"entries"`
	Hits    int64 `json:"hits"`
	Misses  int64 `json:"misses"`
}

func (c *planCache) stats() PlanCacheStats {
	c.mu.Lock()
	n := len(c.entries)
	c.mu.Unlock()
	return PlanCacheStats{Entries: n, Hits: c.hits.Load(), Misses: c.misses.Load()}
}
