package serve

import (
	"sync"
	"sync/atomic"

	"orchestra/internal/compile"
	"orchestra/internal/core"
	"orchestra/internal/delirium"
)

// graphCache is the daemon's compile-once/run-many store: compiled
// graphs keyed by content address (compile.Fingerprint for programs,
// compile.GraphFingerprint for raw graph submissions). Every job
// resolves its graph through here, so resubmitting the same program —
// under any job name, at any concurrency — parses and compiles exactly
// once for the daemon's lifetime.
//
// Concurrency duplicates are suppressed per entry with a sync.Once
// (singleflight): two jobs racing to submit the same new program share
// one compilation, with the loser counted as a hit — it did not
// compile.
type graphCache struct {
	mu      sync.Mutex
	entries map[string]*cacheEntry

	hits   atomic.Int64
	misses atomic.Int64
}

type cacheEntry struct {
	once  sync.Once
	graph *delirium.Graph
	err   error
}

func newGraphCache() *graphCache {
	return &graphCache{entries: map[string]*cacheEntry{}}
}

// get returns the graph for key, building it at most once across all
// callers. hit reports whether this caller avoided the build.
func (c *graphCache) get(key string, build func() (*delirium.Graph, error)) (g *delirium.Graph, hit bool, err error) {
	c.mu.Lock()
	e, ok := c.entries[key]
	if !ok {
		e = &cacheEntry{}
		c.entries[key] = e
	}
	c.mu.Unlock()

	built := false
	e.once.Do(func() {
		built = true
		e.graph, e.err = build()
	})
	hit = !built
	if hit {
		c.hits.Add(1)
	} else {
		c.misses.Add(1)
	}
	return e.graph, hit, e.err
}

// compileKeyed resolves a program source through the cache.
func (c *graphCache) compileKeyed(src string, opts compile.Options) (*delirium.Graph, bool, error) {
	return c.get(compile.Fingerprint(src, opts), func() (*delirium.Graph, error) {
		out, err := core.CompileSource(src, opts)
		if err != nil {
			return nil, err
		}
		return out.Graph, nil
	})
}

// decodeKeyed resolves a raw Delirium graph text through the cache.
func (c *graphCache) decodeKeyed(text string) (*delirium.Graph, bool, error) {
	return c.get(compile.GraphFingerprint(text), func() (*delirium.Graph, error) {
		g, err := delirium.Decode(text)
		if err != nil {
			return nil, err
		}
		if err := g.Validate(); err != nil {
			return nil, err
		}
		return g, nil
	})
}

// CacheStats is the /stats view of the graph cache.
type CacheStats struct {
	Entries int   `json:"entries"`
	Hits    int64 `json:"hits"`
	Misses  int64 `json:"misses"`
}

func (c *graphCache) stats() CacheStats {
	c.mu.Lock()
	n := len(c.entries)
	c.mu.Unlock()
	return CacheStats{Entries: n, Hits: c.hits.Load(), Misses: c.misses.Load()}
}
