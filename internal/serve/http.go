package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
)

// The HTTP surface. All request and response bodies are JSON; errors
// come back as {"error": "..."} with a 4xx/5xx status. Routes (Go 1.22
// method patterns):
//
//	POST /api/v1/jobs            submit (sync unless "async": true)
//	GET  /api/v1/jobs/{id}       job status (?wait=1 blocks until done)
//	POST /api/v1/jobs/{id}/cancel
//	GET  /api/v1/stats           pool, cache, jobs, allocation decisions
//	GET  /healthz                liveness
//
// The handlers are a thin shim over Server's methods: everything they
// do is equally reachable in-process, which is how the package's tests
// drive them (httptest against Handler()).

// Handler returns the daemon's HTTP API.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /api/v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /api/v1/jobs/{id}", s.handleStatus)
	mux.HandleFunc("POST /api/v1/jobs/{id}/cancel", s.handleCancel)
	mux.HandleFunc("GET /api/v1/stats", s.handleStats)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	return mux
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req SubmitRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return
	}
	j, err := s.Submit(req)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if req.Async {
		// Submitted but probably not finished: report the snapshot.
		writeJSON(w, http.StatusAccepted, j.Status())
		return
	}
	writeJSON(w, statusCode(j), j.Status())
}

// statusCode maps a terminal job to its HTTP status: failures are
// 500s, cancellations 499 (the de-facto client-closed-request code),
// anything else 200.
func statusCode(j *Job) int {
	switch st := j.Status(); st.State {
	case StateFailed:
		return http.StatusInternalServerError
	case StateCanceled:
		return 499
	default:
		return http.StatusOK
	}
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	j, ok := s.Job(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, errors.New("no such job"))
		return
	}
	if r.URL.Query().Get("wait") != "" {
		select {
		case <-j.Done():
		case <-r.Context().Done():
			writeError(w, 499, r.Context().Err())
			return
		}
	}
	writeJSON(w, http.StatusOK, j.Status())
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	j, ok := s.Job(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, errors.New("no such job"))
		return
	}
	j.Cancel()
	writeJSON(w, http.StatusOK, j.Status())
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Stats())
}
