package stats

import "math"

// Dist is a distribution of task execution times. Workload generators
// compose these to model the irregularity structure of the paper's
// applications (§5): regular grid phases, heavy-tailed irregular phases
// (cloud physics), and masked sparse phases (tomography columns).
type Dist interface {
	// Sample draws one task time. Implementations must be
	// deterministic given the RNG state.
	Sample(r *RNG) float64
	// Mean reports the analytic mean of the distribution.
	Mean() float64
}

// Constant is a degenerate distribution: every task costs V.
type Constant struct{ V float64 }

// Sample implements Dist.
func (c Constant) Sample(*RNG) float64 { return c.V }

// Mean implements Dist.
func (c Constant) Mean() float64 { return c.V }

// UniformDist draws uniformly from [Lo, Hi).
type UniformDist struct{ Lo, Hi float64 }

// Sample implements Dist.
func (u UniformDist) Sample(r *RNG) float64 { return r.Uniform(u.Lo, u.Hi) }

// Mean implements Dist.
func (u UniformDist) Mean() float64 { return (u.Lo + u.Hi) / 2 }

// NormalDist draws from a normal clipped below at Floor (task times must
// be positive).
type NormalDist struct {
	Mu, Sigma float64
	Floor     float64
}

// Sample implements Dist.
func (n NormalDist) Sample(r *RNG) float64 {
	x := r.Normal(n.Mu, n.Sigma)
	if x < n.Floor {
		x = n.Floor
	}
	return x
}

// Mean implements Dist. The clipping bias is negligible for the
// parameterizations used here (Mu >> Sigma) and is ignored.
func (n NormalDist) Mean() float64 { return n.Mu }

// LogNormalDist draws from a log-normal; heavy-tailed, the paper's model
// for irregular task times such as the climate model's cloud physics.
type LogNormalDist struct{ Mu, Sigma float64 }

// Sample implements Dist.
func (l LogNormalDist) Sample(r *RNG) float64 { return r.LogNormal(l.Mu, l.Sigma) }

// Mean implements Dist.
func (l LogNormalDist) Mean() float64 {
	return math.Exp(l.Mu + l.Sigma*l.Sigma/2)
}

// Bimodal draws from A with probability PA, otherwise from B. It models
// masked loops: cheap iterations where the mask is zero, expensive ones
// where it is set.
type Bimodal struct {
	PA   float64
	A, B Dist
}

// Sample implements Dist.
func (b Bimodal) Sample(r *RNG) float64 {
	if r.Bernoulli(b.PA) {
		return b.A.Sample(r)
	}
	return b.B.Sample(r)
}

// Mean implements Dist.
func (b Bimodal) Mean() float64 {
	return b.PA*b.A.Mean() + (1-b.PA)*b.B.Mean()
}

// Scaled multiplies every sample of D by K.
type Scaled struct {
	K float64
	D Dist
}

// Sample implements Dist.
func (s Scaled) Sample(r *RNG) float64 { return s.K * s.D.Sample(r) }

// Mean implements Dist.
func (s Scaled) Mean() float64 { return s.K * s.D.Mean() }
