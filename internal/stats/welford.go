package stats

import "math"

// Welford accumulates a running mean and variance using Welford's
// numerically stable online algorithm. The runtime system uses it to
// sample task execution times, as the paper's TAPER algorithm requires
// (μ, σ²) estimates that are refreshed as a parallel operation proceeds.
//
// The zero value is an empty accumulator ready to use.
type Welford struct {
	n    int
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add folds one observation into the accumulator.
func (w *Welford) Add(x float64) {
	if w.n == 0 {
		w.min, w.max = x, x
	} else {
		if x < w.min {
			w.min = x
		}
		if x > w.max {
			w.max = x
		}
	}
	w.n++
	delta := x - w.mean
	w.mean += delta / float64(w.n)
	w.m2 += delta * (x - w.mean)
}

// AddChunk folds an aggregate observation — k samples whose individual
// values were not recorded, only their mean — into the accumulator.
// The count and mean advance exactly as if the chunk mean had been
// added k times; the spread term grows only by the between-chunk
// component, since within-chunk variance is unobservable from an
// aggregate timing. Callers that alternate per-sample Add with
// AddChunk therefore get an exact mean and a variance that is a lower
// bound, tightest when chunks are internally homogeneous.
func (w *Welford) AddChunk(k int, mean float64) {
	if k <= 0 {
		return
	}
	w.Merge(Welford{n: k, mean: mean, min: mean, max: mean})
}

// Merge folds another accumulator into this one (parallel Welford).
func (w *Welford) Merge(o Welford) {
	if o.n == 0 {
		return
	}
	if w.n == 0 {
		*w = o
		return
	}
	n := w.n + o.n
	delta := o.mean - w.mean
	w.m2 += o.m2 + delta*delta*float64(w.n)*float64(o.n)/float64(n)
	w.mean += delta * float64(o.n) / float64(n)
	w.n = n
	if o.min < w.min {
		w.min = o.min
	}
	if o.max > w.max {
		w.max = o.max
	}
}

// N reports the number of observations.
func (w *Welford) N() int { return w.n }

// Mean reports the sample mean, or 0 with no observations.
func (w *Welford) Mean() float64 { return w.mean }

// Variance reports the sample variance (n-1 denominator), or 0 with
// fewer than two observations.
func (w *Welford) Variance() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n-1)
}

// StdDev reports the sample standard deviation.
func (w *Welford) StdDev() float64 { return math.Sqrt(w.Variance()) }

// Min reports the smallest observation, or 0 with no observations.
func (w *Welford) Min() float64 { return w.min }

// Max reports the largest observation, or 0 with no observations.
func (w *Welford) Max() float64 { return w.max }

// CoefficientOfVariation reports σ/μ, or 0 when the mean is zero.
func (w *Welford) CoefficientOfVariation() float64 {
	if w.mean == 0 {
		return 0
	}
	return w.StdDev() / w.mean
}
