package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRNGDeterminism(t *testing.T) {
	a := NewRNG(42)
	b := NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same seed diverged at draw %d", i)
		}
	}
}

func TestRNGSeedsDiffer(t *testing.T) {
	a := NewRNG(1)
	b := NewRNG(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different seeds produced %d identical draws", same)
	}
}

func TestRNGZeroSeed(t *testing.T) {
	r := NewRNG(0)
	// The state must be mixed; a run of identical outputs would indicate
	// a degenerate all-zero state.
	prev := r.Uint64()
	distinct := 0
	for i := 0; i < 64; i++ {
		v := r.Uint64()
		if v != prev {
			distinct++
		}
		prev = v
	}
	if distinct < 60 {
		t.Fatalf("zero seed produced near-constant output (%d distinct)", distinct)
	}
}

func TestFloat64Range(t *testing.T) {
	r := NewRNG(7)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := NewRNG(11)
	var w Welford
	for i := 0; i < 100000; i++ {
		w.Add(r.Float64())
	}
	if m := w.Mean(); math.Abs(m-0.5) > 0.01 {
		t.Fatalf("uniform mean = %v, want ~0.5", m)
	}
}

func TestIntnBounds(t *testing.T) {
	r := NewRNG(3)
	seen := make(map[int]bool)
	for i := 0; i < 1000; i++ {
		v := r.Intn(10)
		if v < 0 || v >= 10 {
			t.Fatalf("Intn(10) = %d out of range", v)
		}
		seen[v] = true
	}
	if len(seen) != 10 {
		t.Fatalf("Intn(10) covered only %d values", len(seen))
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestNormalMoments(t *testing.T) {
	r := NewRNG(5)
	var w Welford
	for i := 0; i < 200000; i++ {
		w.Add(r.Normal(10, 2))
	}
	if math.Abs(w.Mean()-10) > 0.05 {
		t.Fatalf("normal mean = %v, want ~10", w.Mean())
	}
	if math.Abs(w.StdDev()-2) > 0.05 {
		t.Fatalf("normal stddev = %v, want ~2", w.StdDev())
	}
}

func TestExponentialMean(t *testing.T) {
	r := NewRNG(6)
	var w Welford
	for i := 0; i < 200000; i++ {
		w.Add(r.Exponential(3))
	}
	if math.Abs(w.Mean()-3) > 0.05 {
		t.Fatalf("exponential mean = %v, want ~3", w.Mean())
	}
}

func TestBernoulliFrequency(t *testing.T) {
	r := NewRNG(8)
	hits := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if r.Bernoulli(0.3) {
			hits++
		}
	}
	freq := float64(hits) / n
	if math.Abs(freq-0.3) > 0.01 {
		t.Fatalf("Bernoulli(0.3) frequency = %v", freq)
	}
}

func TestPermIsPermutation(t *testing.T) {
	if err := quick.Check(func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%50) + 1
		p := NewRNG(seed).Perm(n)
		if len(p) != n {
			return false
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSplitIndependence(t *testing.T) {
	r := NewRNG(9)
	a := r.Split()
	b := r.Split()
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("split generators produced %d identical draws", same)
	}
}

func TestUniformRange(t *testing.T) {
	r := NewRNG(10)
	for i := 0; i < 10000; i++ {
		v := r.Uniform(5, 9)
		if v < 5 || v >= 9 {
			t.Fatalf("Uniform(5,9) = %v out of range", v)
		}
	}
}
