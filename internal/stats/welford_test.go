package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestWelfordBasics(t *testing.T) {
	var w Welford
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		w.Add(x)
	}
	if w.N() != 8 {
		t.Fatalf("N = %d, want 8", w.N())
	}
	if !almostEq(w.Mean(), 5, 1e-12) {
		t.Fatalf("Mean = %v, want 5", w.Mean())
	}
	// Sample variance with n-1 denominator: sum sq dev = 32, 32/7.
	if !almostEq(w.Variance(), 32.0/7.0, 1e-12) {
		t.Fatalf("Variance = %v, want %v", w.Variance(), 32.0/7.0)
	}
	if w.Min() != 2 || w.Max() != 9 {
		t.Fatalf("Min/Max = %v/%v, want 2/9", w.Min(), w.Max())
	}
}

func TestWelfordEmpty(t *testing.T) {
	var w Welford
	if w.Mean() != 0 || w.Variance() != 0 || w.StdDev() != 0 || w.N() != 0 {
		t.Fatal("empty accumulator must report zeros")
	}
}

func TestWelfordSingle(t *testing.T) {
	var w Welford
	w.Add(3.5)
	if w.Mean() != 3.5 || w.Variance() != 0 {
		t.Fatalf("single observation: mean=%v var=%v", w.Mean(), w.Variance())
	}
}

func TestWelfordMergeMatchesSequential(t *testing.T) {
	if err := quick.Check(func(seed uint64, nRaw uint8) bool {
		n := int(nRaw) + 2
		r := NewRNG(seed)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = r.Normal(0, 10)
		}
		var all Welford
		for _, x := range xs {
			all.Add(x)
		}
		var a, b Welford
		for i, x := range xs {
			if i < n/2 {
				a.Add(x)
			} else {
				b.Add(x)
			}
		}
		a.Merge(b)
		return a.N() == all.N() &&
			almostEq(a.Mean(), all.Mean(), 1e-9) &&
			almostEq(a.Variance(), all.Variance(), 1e-6) &&
			a.Min() == all.Min() && a.Max() == all.Max()
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestWelfordMergeEmptyCases(t *testing.T) {
	var a, b Welford
	a.Add(1)
	a.Add(3)
	before := a
	a.Merge(b) // merging empty is a no-op
	if a != before {
		t.Fatal("merge with empty changed accumulator")
	}
	var c Welford
	c.Merge(a) // merging into empty copies
	if c != a {
		t.Fatal("merge into empty did not copy")
	}
}

func TestWelfordCoefficientOfVariation(t *testing.T) {
	var w Welford
	if w.CoefficientOfVariation() != 0 {
		t.Fatal("CV of empty must be 0")
	}
	for _, x := range []float64{9, 10, 11} {
		w.Add(x)
	}
	want := w.StdDev() / 10
	if !almostEq(w.CoefficientOfVariation(), want, 1e-12) {
		t.Fatalf("CV = %v, want %v", w.CoefficientOfVariation(), want)
	}
}

func TestWelfordNumericalStability(t *testing.T) {
	// Large offset with tiny variance: naive sum-of-squares would lose
	// all precision here.
	var w Welford
	const offset = 1e9
	for _, x := range []float64{offset + 1, offset + 2, offset + 3} {
		w.Add(x)
	}
	if !almostEq(w.Variance(), 1, 1e-6) {
		t.Fatalf("Variance = %v, want 1", w.Variance())
	}
}

func TestDistMeans(t *testing.T) {
	r := NewRNG(21)
	dists := []Dist{
		Constant{V: 4},
		UniformDist{Lo: 2, Hi: 6},
		NormalDist{Mu: 10, Sigma: 1, Floor: 0},
		LogNormalDist{Mu: 1, Sigma: 0.5},
		Bimodal{PA: 0.25, A: Constant{V: 1}, B: Constant{V: 9}},
		Scaled{K: 2, D: Constant{V: 3}},
	}
	for _, d := range dists {
		var w Welford
		for i := 0; i < 200000; i++ {
			w.Add(d.Sample(r))
		}
		tol := 0.03 * (d.Mean() + 1)
		if math.Abs(w.Mean()-d.Mean()) > tol {
			t.Errorf("%T: sample mean %v vs analytic %v", d, w.Mean(), d.Mean())
		}
	}
}

func TestNormalDistFloor(t *testing.T) {
	r := NewRNG(22)
	d := NormalDist{Mu: 1, Sigma: 5, Floor: 0.5}
	for i := 0; i < 10000; i++ {
		if v := d.Sample(r); v < 0.5 {
			t.Fatalf("sample %v below floor", v)
		}
	}
}

func TestBimodalExtremes(t *testing.T) {
	r := NewRNG(23)
	alwaysA := Bimodal{PA: 1, A: Constant{V: 1}, B: Constant{V: 9}}
	for i := 0; i < 100; i++ {
		if alwaysA.Sample(r) != 1 {
			t.Fatal("PA=1 must always sample A")
		}
	}
	neverA := Bimodal{PA: 0, A: Constant{V: 1}, B: Constant{V: 9}}
	for i := 0; i < 100; i++ {
		if neverA.Sample(r) != 9 {
			t.Fatal("PA=0 must always sample B")
		}
	}
}

// TestAddChunkMatchesRepeatedAdd: folding an aggregate of k samples at
// mean m must be indistinguishable from adding m k times — count, mean,
// spread, and extrema. This is the contract ObserveChunk relies on for
// exact global means under amortized timing.
func TestAddChunkMatchesRepeatedAdd(t *testing.T) {
	prop := func(kRaw uint8, mRaw int16) bool {
		k := int(kRaw%50) + 1
		m := float64(mRaw) / 128
		var chunked, flat Welford
		chunked.AddChunk(k, m)
		for i := 0; i < k; i++ {
			flat.Add(m)
		}
		return chunked.N() == flat.N() &&
			almostEq(chunked.Mean(), flat.Mean(), 1e-12) &&
			almostEq(chunked.Variance(), flat.Variance(), 1e-12) &&
			chunked.Min() == flat.Min() && chunked.Max() == flat.Max()
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// TestAddChunkInterleaved: arbitrary interleavings of Add and AddChunk
// must track the statistics of the expanded sample stream (each chunk
// expanded to k copies of its mean) exactly.
func TestAddChunkInterleaved(t *testing.T) {
	prop := func(seed uint64) bool {
		r := NewRNG(seed)
		var w, ref Welford
		for i := 0; i < 40; i++ {
			x := math.Floor(r.Uniform(-4, 4)*16) / 16
			if r.Bernoulli(0.5) {
				k := 1 + int(r.Uint64()%9)
				w.AddChunk(k, x)
				for j := 0; j < k; j++ {
					ref.Add(x)
				}
			} else {
				w.Add(x)
				ref.Add(x)
			}
		}
		return w.N() == ref.N() &&
			almostEq(w.Mean(), ref.Mean(), 1e-9*(1+math.Abs(ref.Mean()))) &&
			almostEq(w.Variance(), ref.Variance(), 1e-9*(1+ref.Variance())) &&
			w.Min() == ref.Min() && w.Max() == ref.Max()
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestAddChunkDegenerate pins the edge cases: non-positive counts are
// no-ops, a single-task chunk is exactly Add, and zero-duration chunks
// (mean 0) are legitimate observations, not errors.
func TestAddChunkDegenerate(t *testing.T) {
	var w Welford
	w.AddChunk(0, 5)
	w.AddChunk(-3, 5)
	if w.N() != 0 {
		t.Fatalf("non-positive chunk recorded: N = %d", w.N())
	}
	var a, b Welford
	a.AddChunk(1, 2.5)
	b.Add(2.5)
	if a != b {
		t.Fatalf("AddChunk(1, x) = %+v, Add(x) = %+v", a, b)
	}
	var z Welford
	z.AddChunk(4, 0)
	if z.N() != 4 || z.Mean() != 0 || z.Variance() != 0 || z.Min() != 0 || z.Max() != 0 {
		t.Fatalf("zero-duration chunk mishandled: %+v", z)
	}
	if cv := z.CoefficientOfVariation(); cv != 0 || math.IsNaN(cv) {
		t.Fatalf("CoefficientOfVariation on zero-mean = %v, want 0", cv)
	}
}
