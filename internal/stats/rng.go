// Package stats provides deterministic pseudo-random number generation,
// running statistics, and the task-time distributions used by the
// workload generators and the adaptive runtime.
//
// All randomness in the repository flows through stats.RNG so that every
// simulation, test, and benchmark is reproducible from a seed.
package stats

import "math"

// RNG is a small, fast, deterministic pseudo-random generator
// (xoshiro256** with a splitmix64 seeder). It is not safe for concurrent
// use; give each goroutine its own RNG via Split.
type RNG struct {
	s [4]uint64
}

// NewRNG returns a generator seeded from seed. Any seed, including zero,
// produces a well-mixed state.
func NewRNG(seed uint64) *RNG {
	r := &RNG{}
	sm := seed
	for i := range r.s {
		sm += 0x9e3779b97f4a7c15
		z := sm
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		r.s[i] = z ^ (z >> 31)
	}
	return r
}

// Split derives an independent generator from r, advancing r.
func (r *RNG) Split() *RNG {
	return NewRNG(r.Uint64() ^ 0xd3833e804f4c574b)
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 uniformly distributed bits.
func (r *RNG) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("stats: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Uniform returns a uniform value in [lo, hi).
func (r *RNG) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*r.Float64()
}

// Normal returns a normally distributed value with the given mean and
// standard deviation, using the Box–Muller transform.
func (r *RNG) Normal(mean, stddev float64) float64 {
	u1 := r.Float64()
	for u1 == 0 {
		u1 = r.Float64()
	}
	u2 := r.Float64()
	z := math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
	return mean + stddev*z
}

// LogNormal returns a log-normally distributed value whose underlying
// normal has parameters mu and sigma.
func (r *RNG) LogNormal(mu, sigma float64) float64 {
	return math.Exp(r.Normal(mu, sigma))
}

// Exponential returns an exponentially distributed value with the given
// mean.
func (r *RNG) Exponential(mean float64) float64 {
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return -mean * math.Log(u)
}

// Bernoulli returns true with probability p.
func (r *RNG) Bernoulli(p float64) bool {
	return r.Float64() < p
}

// Perm returns a random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}
