// Package delirium implements the coordination-language intermediate
// form the compiler emits (§3.4): a coarse-grained dataflow graph
// summarizing the exposed parallelism. Nodes are sequential sections or
// data-parallel operators; edges carry data-size annotations the
// runtime uses to estimate communication costs. Pipelined edges mark
// producer/consumer pairs whose consumer may start on partial data;
// carried edges mark dependences on the previous iteration of an
// enclosing loop (the AD → AD chain of a pipelined loop).
//
// The package provides construction, validation, topological ordering,
// and a textual encoding so the compiler driver can emit graphs that
// the runtime driver reads back.
package delirium

import (
	"fmt"
	"sort"
	"strings"
)

// NodeKind distinguishes sequential sections from data-parallel
// operators.
type NodeKind int

// Node kinds.
const (
	Seq NodeKind = iota
	Par
	// Exp is an expandable operator: at execution time, once its
	// predecessors complete, the runtime asks the binding's expansion
	// rule for a sub-graph and splices it in — the nested-dataflow
	// extension (fork-join is the degenerate case of a one-level
	// expansion). An Exp node contributes a single join task of its
	// own, which becomes runnable only after every task of the
	// materialized sub-graph completes; its successors therefore see
	// the whole expansion as one operator.
	Exp
)

func (k NodeKind) String() string {
	switch k {
	case Seq:
		return "seq"
	case Par:
		return "par"
	case Exp:
		return "exp"
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// Node is one computation in the dataflow graph.
type Node struct {
	Name string
	Kind NodeKind
	// Tasks is the symbolic task count of a parallel operator (a
	// variable name like "n" or a literal like "1024"), resolved
	// against runtime parameters.
	Tasks string
	// Rule names the expansion rule of an Exp node: the binding layer
	// resolves it to an executable rts.ExpandFunc the same way a node
	// name resolves to an operation. Only meaningful when Kind == Exp.
	Rule string
	// Comment carries provenance (e.g. which split part produced the
	// node).
	Comment string
}

// Edge is a dataflow dependence with a data-volume annotation.
type Edge struct {
	From, To string
	// Bytes is the data volume communicated along the edge (per task
	// of the consumer when PerTask, total otherwise).
	Bytes   int64
	PerTask bool
	// Pipelined marks a producer/consumer pair the runtime may
	// overlap, choosing a communication granularity.
	Pipelined bool
	// Chain marks a pipelined pair the compiler proved exactly
	// pointwise (consumer task i reads the producer only at index i),
	// so a runtime may schedule it as a cache chain: the worker
	// completing producer chunk i runs consumer chunk i immediately,
	// while the data is still cache-resident. Kernel split annotations
	// (internal/split) license the same schedule at bind time; the
	// edge attribute carries the compiler's structural proof for
	// binders without annotations.
	Chain bool
	// Carried marks a dependence on the previous iteration of the
	// enclosing loop rather than on the same activation.
	Carried bool
}

// Graph is a complete Delirium program graph.
type Graph struct {
	Name  string
	Nodes []*Node
	Edges []*Edge

	byName map[string]*Node
}

// NewGraph creates an empty graph.
func NewGraph(name string) *Graph {
	return &Graph{Name: name, byName: map[string]*Node{}}
}

// AddNode appends a node; duplicate names are an error.
func (g *Graph) AddNode(n *Node) error {
	if n.Name == "" {
		return fmt.Errorf("delirium: empty node name")
	}
	if g.byName == nil {
		g.byName = map[string]*Node{}
	}
	if g.byName[n.Name] != nil {
		return fmt.Errorf("delirium: duplicate node %q", n.Name)
	}
	g.Nodes = append(g.Nodes, n)
	g.byName[n.Name] = n
	return nil
}

// AddEdge appends an edge.
func (g *Graph) AddEdge(e *Edge) { g.Edges = append(g.Edges, e) }

// Node looks up a node by name.
func (g *Graph) Node(name string) *Node { return g.byName[name] }

// HasExpansions reports whether any node of the graph is expandable
// (Kind == Exp). Backends that cannot execute runtime expansions use
// this to refuse the graph up front rather than misexecute it.
func (g *Graph) HasExpansions() bool {
	for _, n := range g.Nodes {
		if n.Kind == Exp {
			return true
		}
	}
	return false
}

// Validate checks that every edge references declared nodes and that
// the non-carried edges form a DAG.
func (g *Graph) Validate() error {
	for _, n := range g.Nodes {
		if n.Rule != "" && n.Kind != Exp {
			return fmt.Errorf("delirium: node %q has rule=%s but kind=%s (rules belong to exp nodes)", n.Name, n.Rule, n.Kind)
		}
	}
	for _, e := range g.Edges {
		if g.byName[e.From] == nil {
			return fmt.Errorf("delirium: edge from undeclared node %q", e.From)
		}
		if g.byName[e.To] == nil {
			return fmt.Errorf("delirium: edge to undeclared node %q", e.To)
		}
		if e.From == e.To && !e.Carried {
			return fmt.Errorf("delirium: self edge on %q must be carried", e.From)
		}
	}
	if _, err := g.TopoOrder(); err != nil {
		return err
	}
	return nil
}

// Preds returns the names of nodes with a non-carried edge into name.
func (g *Graph) Preds(name string) []string {
	var out []string
	for _, e := range g.Edges {
		if e.To == name && !e.Carried {
			out = append(out, e.From)
		}
	}
	return out
}

// Succs returns the names of nodes reachable by one non-carried edge.
func (g *Graph) Succs(name string) []string {
	var out []string
	for _, e := range g.Edges {
		if e.From == name && !e.Carried {
			out = append(out, e.To)
		}
	}
	return out
}

// InEdges returns the non-carried edges into name.
func (g *Graph) InEdges(name string) []*Edge {
	var out []*Edge
	for _, e := range g.Edges {
		if e.To == name && !e.Carried {
			out = append(out, e)
		}
	}
	return out
}

// OutEdges returns the non-carried edges out of name.
func (g *Graph) OutEdges(name string) []*Edge {
	var out []*Edge
	for _, e := range g.Edges {
		if e.From == name && !e.Carried {
			out = append(out, e)
		}
	}
	return out
}

// TopoOrder returns the nodes in a topological order of the
// non-carried edges; it fails on cycles.
func (g *Graph) TopoOrder() ([]*Node, error) {
	indeg := map[string]int{}
	for _, n := range g.Nodes {
		indeg[n.Name] = 0
	}
	for _, e := range g.Edges {
		if !e.Carried {
			indeg[e.To]++
		}
	}
	// Stable queue: nodes in declaration order.
	var queue []*Node
	for _, n := range g.Nodes {
		if indeg[n.Name] == 0 {
			queue = append(queue, n)
		}
	}
	var out []*Node
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		out = append(out, n)
		for _, e := range g.Edges {
			if e.Carried || e.From != n.Name {
				continue
			}
			indeg[e.To]--
			if indeg[e.To] == 0 {
				queue = append(queue, g.byName[e.To])
			}
		}
	}
	if len(out) != len(g.Nodes) {
		return nil, fmt.Errorf("delirium: graph has a cycle")
	}
	return out, nil
}

// Levels groups the topological order into concurrency levels: nodes
// in the same level have no paths between them and may execute
// concurrently (the runtime allocates processors among them).
func (g *Graph) Levels() ([][]*Node, error) {
	order, err := g.TopoOrder()
	if err != nil {
		return nil, err
	}
	level := map[string]int{}
	for _, n := range order {
		l := 0
		for _, p := range g.Preds(n.Name) {
			if level[p]+1 > l {
				l = level[p] + 1
			}
		}
		level[n.Name] = l
	}
	max := 0
	for _, l := range level {
		if l > max {
			max = l
		}
	}
	out := make([][]*Node, max+1)
	for _, n := range order {
		out[level[n.Name]] = append(out[level[n.Name]], n)
	}
	return out, nil
}

// Encode renders the graph in its textual form.
func (g *Graph) Encode() string {
	var b strings.Builder
	fmt.Fprintf(&b, "graph %s\n", g.Name)
	for _, n := range g.Nodes {
		fmt.Fprintf(&b, "node %s kind=%s", n.Name, n.Kind)
		if n.Tasks != "" {
			fmt.Fprintf(&b, " tasks=%s", n.Tasks)
		}
		if n.Rule != "" {
			fmt.Fprintf(&b, " rule=%s", n.Rule)
		}
		if n.Comment != "" {
			fmt.Fprintf(&b, " # %s", n.Comment)
		}
		b.WriteByte('\n')
	}
	edges := append([]*Edge{}, g.Edges...)
	sort.SliceStable(edges, func(i, j int) bool {
		if edges[i].From != edges[j].From {
			return edges[i].From < edges[j].From
		}
		return edges[i].To < edges[j].To
	})
	for _, e := range edges {
		fmt.Fprintf(&b, "edge %s -> %s", e.From, e.To)
		if e.Bytes > 0 {
			fmt.Fprintf(&b, " bytes=%d", e.Bytes)
		}
		if e.PerTask {
			b.WriteString(" pertask")
		}
		if e.Pipelined {
			b.WriteString(" pipelined")
		}
		if e.Chain {
			b.WriteString(" chain")
		}
		if e.Carried {
			b.WriteString(" carried")
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Decode parses the textual form produced by Encode.
func Decode(text string) (*Graph, error) {
	var g *Graph
	for lineNo, raw := range strings.Split(text, "\n") {
		line := raw
		if i := strings.Index(line, "#"); i >= 0 {
			line = line[:i]
		}
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		switch fields[0] {
		case "graph":
			if len(fields) != 2 {
				return nil, fmt.Errorf("line %d: graph needs a name", lineNo+1)
			}
			g = NewGraph(fields[1])
		case "node":
			if g == nil {
				return nil, fmt.Errorf("line %d: node before graph", lineNo+1)
			}
			if len(fields) < 2 {
				return nil, fmt.Errorf("line %d: node needs a name", lineNo+1)
			}
			n := &Node{Name: fields[1]}
			for _, f := range fields[2:] {
				switch {
				case f == "kind=seq":
					n.Kind = Seq
				case f == "kind=par":
					n.Kind = Par
				case f == "kind=exp":
					n.Kind = Exp
				case strings.HasPrefix(f, "tasks="):
					n.Tasks = strings.TrimPrefix(f, "tasks=")
				case strings.HasPrefix(f, "rule="):
					n.Rule = strings.TrimPrefix(f, "rule=")
				default:
					return nil, fmt.Errorf("line %d: unknown node attribute %q", lineNo+1, f)
				}
			}
			if err := g.AddNode(n); err != nil {
				return nil, err
			}
		case "edge":
			if g == nil {
				return nil, fmt.Errorf("line %d: edge before graph", lineNo+1)
			}
			if len(fields) < 4 || fields[2] != "->" {
				return nil, fmt.Errorf("line %d: malformed edge", lineNo+1)
			}
			e := &Edge{From: fields[1], To: fields[3]}
			for _, f := range fields[4:] {
				switch {
				case strings.HasPrefix(f, "bytes="):
					if _, err := fmt.Sscanf(f, "bytes=%d", &e.Bytes); err != nil {
						return nil, fmt.Errorf("line %d: bad bytes: %v", lineNo+1, err)
					}
				case f == "pertask":
					e.PerTask = true
				case f == "pipelined":
					e.Pipelined = true
				case f == "chain":
					e.Chain = true
				case f == "carried":
					e.Carried = true
				default:
					return nil, fmt.Errorf("line %d: unknown edge attribute %q", lineNo+1, f)
				}
			}
			g.AddEdge(e)
		default:
			return nil, fmt.Errorf("line %d: unknown directive %q", lineNo+1, fields[0])
		}
	}
	if g == nil {
		return nil, fmt.Errorf("delirium: empty input")
	}
	return g, g.Validate()
}
