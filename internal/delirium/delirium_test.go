package delirium

import (
	"strings"
	"testing"
)

func buildSample(t *testing.T) *Graph {
	t.Helper()
	g := NewGraph("sample")
	for _, n := range []*Node{
		{Name: "A", Kind: Par, Tasks: "n"},
		{Name: "BI", Kind: Par, Tasks: "n"},
		{Name: "BD", Kind: Par, Tasks: "n"},
		{Name: "BM", Kind: Par, Tasks: "n"},
	} {
		if err := g.AddNode(n); err != nil {
			t.Fatal(err)
		}
	}
	g.AddEdge(&Edge{From: "A", To: "BD", Bytes: 8, PerTask: true})
	g.AddEdge(&Edge{From: "BI", To: "BM"})
	g.AddEdge(&Edge{From: "BD", To: "BM"})
	return g
}

func TestValidateOK(t *testing.T) {
	g := buildSample(t)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestDuplicateNode(t *testing.T) {
	g := NewGraph("g")
	if err := g.AddNode(&Node{Name: "x"}); err != nil {
		t.Fatal(err)
	}
	if err := g.AddNode(&Node{Name: "x"}); err == nil {
		t.Fatal("duplicate accepted")
	}
}

func TestValidateUndeclared(t *testing.T) {
	g := NewGraph("g")
	if err := g.AddNode(&Node{Name: "a"}); err != nil {
		t.Fatal(err)
	}
	g.AddEdge(&Edge{From: "a", To: "ghost"})
	if err := g.Validate(); err == nil {
		t.Fatal("undeclared edge target accepted")
	}
}

func TestValidateCycle(t *testing.T) {
	g := NewGraph("g")
	_ = g.AddNode(&Node{Name: "a"})
	_ = g.AddNode(&Node{Name: "b"})
	g.AddEdge(&Edge{From: "a", To: "b"})
	g.AddEdge(&Edge{From: "b", To: "a"})
	if err := g.Validate(); err == nil {
		t.Fatal("cycle accepted")
	}
}

func TestCarriedSelfLoopAllowed(t *testing.T) {
	g := NewGraph("g")
	_ = g.AddNode(&Node{Name: "ad", Kind: Par})
	g.AddEdge(&Edge{From: "ad", To: "ad", Carried: true})
	if err := g.Validate(); err != nil {
		t.Fatalf("carried self loop rejected: %v", err)
	}
	// Non-carried self loop rejected.
	g2 := NewGraph("g")
	_ = g2.AddNode(&Node{Name: "x"})
	g2.AddEdge(&Edge{From: "x", To: "x"})
	if err := g2.Validate(); err == nil {
		t.Fatal("plain self loop accepted")
	}
}

func TestTopoOrder(t *testing.T) {
	g := buildSample(t)
	order, err := g.TopoOrder()
	if err != nil {
		t.Fatal(err)
	}
	pos := map[string]int{}
	for i, n := range order {
		pos[n.Name] = i
	}
	if pos["A"] >= pos["BD"] || pos["BD"] >= pos["BM"] || pos["BI"] >= pos["BM"] {
		t.Fatalf("order violates edges: %v", pos)
	}
}

func TestLevels(t *testing.T) {
	g := buildSample(t)
	levels, err := g.Levels()
	if err != nil {
		t.Fatal(err)
	}
	// Level 0: A and BI (concurrent — the paper's headline structure);
	// level 1: BD; level 2: BM.
	if len(levels) != 3 {
		t.Fatalf("levels = %d", len(levels))
	}
	names := func(ns []*Node) string {
		var s []string
		for _, n := range ns {
			s = append(s, n.Name)
		}
		return strings.Join(s, ",")
	}
	if names(levels[0]) != "A,BI" {
		t.Fatalf("level 0 = %s", names(levels[0]))
	}
	if names(levels[1]) != "BD" || names(levels[2]) != "BM" {
		t.Fatalf("levels = %s | %s", names(levels[1]), names(levels[2]))
	}
}

func TestPredsSuccs(t *testing.T) {
	g := buildSample(t)
	if p := g.Preds("BM"); len(p) != 2 {
		t.Fatalf("preds(BM) = %v", p)
	}
	if s := g.Succs("A"); len(s) != 1 || s[0] != "BD" {
		t.Fatalf("succs(A) = %v", s)
	}
}

func TestInOutEdges(t *testing.T) {
	g := buildSample(t)
	g.AddEdge(&Edge{From: "BM", To: "BM", Carried: true})
	in := g.InEdges("BM")
	if len(in) != 2 {
		t.Fatalf("InEdges(BM) = %d edges, want 2 (carried excluded)", len(in))
	}
	for _, e := range in {
		if e.To != "BM" || e.Carried {
			t.Fatalf("InEdges(BM) returned %+v", e)
		}
	}
	out := g.OutEdges("A")
	if len(out) != 1 || out[0].To != "BD" || !out[0].PerTask {
		t.Fatalf("OutEdges(A) = %v", out)
	}
	if len(g.OutEdges("BM")) != 0 {
		t.Fatal("OutEdges(BM) should exclude the carried self-loop")
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	g := buildSample(t)
	g.AddEdge(&Edge{From: "BD", To: "BD", Carried: true})
	// Mark one edge pipelined and compiler-proved chainable, so the
	// round trip covers the chain attribute too.
	g.Edges[0].Pipelined = true
	g.Edges[0].Chain = true
	text := g.Encode()
	g2, err := Decode(text)
	if err != nil {
		t.Fatalf("decode: %v\n%s", err, text)
	}
	if g2.Encode() != text {
		t.Fatalf("round trip mismatch:\n%s\n---\n%s", text, g2.Encode())
	}
	if g2.Node("BI") == nil || g2.Node("BI").Kind != Par {
		t.Fatal("node attributes lost")
	}
	var carried, perTask, chain bool
	for _, e := range g2.Edges {
		if e.Carried {
			carried = true
		}
		if e.PerTask && e.Bytes == 8 {
			perTask = true
		}
		if e.Chain {
			if !e.Pipelined {
				t.Fatal("chain attribute decoded on a non-pipelined edge")
			}
			chain = true
		}
	}
	if !carried || !perTask || !chain {
		t.Fatal("edge attributes lost")
	}
}

func TestDecodeErrors(t *testing.T) {
	cases := []string{
		"",
		"node x\n",                       // node before graph
		"graph g\nnode\n",                // missing name
		"graph g\nnode a zzz=1\n",        // unknown attr
		"graph g\nedge a b\n",            // malformed edge
		"graph g\nnode a\nedge a -> b\n", // undeclared
		"graph g\nnode a\nnode a\n",      // duplicate
		"graph g\nwhat\n",                // unknown directive
		"graph g\nnode a\nedge a -> a\n", // plain self loop
	}
	for _, src := range cases {
		if _, err := Decode(src); err == nil {
			t.Errorf("no error for %q", src)
		}
	}
}

func TestDecodeComments(t *testing.T) {
	g, err := Decode("graph g # hello\nnode a kind=par tasks=10 # a node\nnode b\nedge a -> b # dep\n")
	if err != nil {
		t.Fatal(err)
	}
	if g.Node("a").Tasks != "10" {
		t.Fatal("tasks lost")
	}
}

func TestCriticalPath(t *testing.T) {
	g := buildSample(t)
	w := Weights{"A": 10, "BI": 3, "BD": 5, "BM": 2}
	path, total, err := g.CriticalPath(w)
	if err != nil {
		t.Fatal(err)
	}
	// A(10) -> BD(5) -> BM(2) = 17, heavier than BI(3) -> BM.
	if total != 17 {
		t.Fatalf("critical path weight = %v, want 17", total)
	}
	want := []string{"A", "BD", "BM"}
	if len(path) != len(want) {
		t.Fatalf("path = %v", path)
	}
	for i := range want {
		if path[i] != want[i] {
			t.Fatalf("path = %v, want %v", path, want)
		}
	}
}

func TestCriticalPathIgnoresCarried(t *testing.T) {
	g := NewGraph("g")
	_ = g.AddNode(&Node{Name: "ad"})
	g.AddEdge(&Edge{From: "ad", To: "ad", Carried: true})
	_, total, err := g.CriticalPath(Weights{"ad": 4})
	if err != nil || total != 4 {
		t.Fatalf("total = %v err = %v", total, err)
	}
}

func TestSummarize(t *testing.T) {
	g := buildSample(t)
	g.AddEdge(&Edge{From: "BD", To: "BD", Carried: true})
	g.Edges[0].Pipelined = true
	st, err := g.Summarize()
	if err != nil {
		t.Fatal(err)
	}
	if st.Nodes != 4 || st.Edges != 4 || st.PipelinedEdges != 1 || st.CarriedEdges != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if st.Levels != 3 || st.MaxWidth != 2 {
		t.Fatalf("levels/width = %d/%d", st.Levels, st.MaxWidth)
	}
	if st.String() == "" {
		t.Fatal("empty summary")
	}
}

func TestToDot(t *testing.T) {
	g := buildSample(t)
	g.Node("BI").Comment = "CI"
	g.Edges[0].Pipelined = true
	g.AddEdge(&Edge{From: "BD", To: "BD", Carried: true})
	dot := g.ToDot()
	for _, want := range []string{"digraph", "rankdir=LR", `"BI"`, "palegreen",
		"style=dashed", "style=dotted", `"A" -> "BD"`} {
		if !strings.Contains(dot, want) {
			t.Fatalf("DOT missing %q:\n%s", want, dot)
		}
	}
}
