package delirium

import (
	"fmt"
	"strings"
)

// Weights assigns an execution-cost estimate to each node, used for
// critical-path analysis. Missing nodes weigh zero.
type Weights map[string]float64

// CriticalPath returns the heaviest weighted path through the graph
// (ignoring carried edges) and its total weight — the lower bound on
// any schedule's makespan that no amount of processor allocation can
// beat. The compiler driver reports it so users can see how much
// serialization split removed.
func (g *Graph) CriticalPath(w Weights) ([]string, float64, error) {
	order, err := g.TopoOrder()
	if err != nil {
		return nil, 0, err
	}
	dist := map[string]float64{}
	prev := map[string]string{}
	for _, n := range order {
		best := 0.0
		from := ""
		for _, p := range g.Preds(n.Name) {
			if dist[p] > best {
				best = dist[p]
				from = p
			}
		}
		dist[n.Name] = best + w[n.Name]
		prev[n.Name] = from
	}
	endNode, total := "", 0.0
	for name, d := range dist {
		if d > total {
			total = d
			endNode = name
		}
	}
	var path []string
	for n := endNode; n != ""; n = prev[n] {
		path = append(path, n)
	}
	for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
		path[i], path[j] = path[j], path[i]
	}
	return path, total, nil
}

// Stats summarizes a graph's shape.
type Stats struct {
	Nodes, Edges   int
	PipelinedEdges int
	CarriedEdges   int
	Levels         int
	// MaxWidth is the largest number of nodes sharing a level — the
	// graph's exposed operator-level concurrency.
	MaxWidth int
}

// Summarize computes the graph statistics.
func (g *Graph) Summarize() (Stats, error) {
	levels, err := g.Levels()
	if err != nil {
		return Stats{}, err
	}
	st := Stats{Nodes: len(g.Nodes), Edges: len(g.Edges), Levels: len(levels)}
	for _, e := range g.Edges {
		if e.Pipelined {
			st.PipelinedEdges++
		}
		if e.Carried {
			st.CarriedEdges++
		}
	}
	for _, lv := range levels {
		if len(lv) > st.MaxWidth {
			st.MaxWidth = len(lv)
		}
	}
	return st, nil
}

// String renders the statistics.
func (s Stats) String() string {
	return fmt.Sprintf("%d nodes, %d edges (%d pipelined, %d carried), %d levels, max width %d",
		s.Nodes, s.Edges, s.PipelinedEdges, s.CarriedEdges, s.Levels, s.MaxWidth)
}

// ToDot renders the graph in Graphviz DOT form for visualization:
// pipelined edges are dashed, carried edges loop back dotted, and
// split/pipeline roles (from node comments) become colors.
func (g *Graph) ToDot() string {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n  rankdir=LR;\n  node [shape=box, style=filled];\n", g.Name)
	for _, n := range g.Nodes {
		color := "white"
		switch n.Comment {
		case "CI", "AI":
			color = "palegreen"
		case "CD", "AD":
			color = "lightsalmon"
		case "CM", "AM":
			color = "lightblue"
		}
		label := n.Name
		if n.Tasks != "" {
			label += " (" + n.Tasks + " tasks)"
		}
		fmt.Fprintf(&b, "  %q [label=%q, fillcolor=%q];\n", n.Name, label, color)
	}
	for _, e := range g.Edges {
		attrs := ""
		switch {
		case e.Carried:
			attrs = " [style=dotted, label=\"carried\"]"
		case e.Pipelined:
			attrs = " [style=dashed, label=\"pipelined\"]"
		}
		fmt.Fprintf(&b, "  %q -> %q%s;\n", e.From, e.To, attrs)
	}
	b.WriteString("}\n")
	return b.String()
}
