package trace

import (
	"strings"
	"testing"
)

func TestSpeedupEfficiency(t *testing.T) {
	r := Result{Name: "x", Processors: 10, Makespan: 50, SeqTime: 400}
	if r.Speedup() != 8 {
		t.Fatalf("speedup = %v", r.Speedup())
	}
	if r.Efficiency() != 0.8 {
		t.Fatalf("efficiency = %v", r.Efficiency())
	}
}

func TestZeroGuards(t *testing.T) {
	var r Result
	if r.Speedup() != 0 || r.Efficiency() != 0 || r.LoadImbalance() != 0 {
		t.Fatal("zero result must report zeros")
	}
	r2 := Result{Processors: 4, Makespan: 0, SeqTime: 10}
	if r2.Speedup() != 0 {
		t.Fatal("zero makespan must not divide")
	}
}

func TestLoadImbalance(t *testing.T) {
	r := Result{Busy: []float64{10, 10, 10, 10}}
	if r.LoadImbalance() != 1 {
		t.Fatalf("even load imbalance = %v", r.LoadImbalance())
	}
	r2 := Result{Busy: []float64{20, 10, 10, 0}}
	if r2.LoadImbalance() != 2 {
		t.Fatalf("imbalance = %v", r2.LoadImbalance())
	}
}

func TestResultString(t *testing.T) {
	r := Result{Name: "taper/x", Processors: 8, Makespan: 100, SeqTime: 400, Chunks: 5}
	s := r.String()
	if !strings.Contains(s, "taper/x") || !strings.Contains(s, "p=8") ||
		!strings.Contains(s, "speedup=4.0") {
		t.Fatalf("String = %q", s)
	}
}

func TestSeriesAndTable(t *testing.T) {
	a := &Series{Label: "static"}
	b := &Series{Label: "TAPER"}
	for _, p := range []int{2, 4} {
		a.Add(float64(p), Result{Processors: p, Makespan: 100, SeqTime: float64(100 * p / 2)})
		b.Add(float64(p), Result{Processors: p, Makespan: 50, SeqTime: float64(100 * p / 2)})
	}
	// Sparse point present only in one series.
	b.Add(8, Result{Processors: 8, Makespan: 50, SeqTime: 400})

	tbl := Table("fig", "procs", []*Series{a, b}, Result.Speedup, "speedup")
	lines := strings.Split(strings.TrimSpace(tbl), "\n")
	if len(lines) != 5 { // title + header + 3 x-values
		t.Fatalf("table rows = %d:\n%s", len(lines), tbl)
	}
	if !strings.Contains(lines[1], "static") || !strings.Contains(lines[1], "TAPER") {
		t.Fatalf("header: %q", lines[1])
	}
	if !strings.Contains(lines[4], "-") {
		t.Fatalf("missing point not dashed: %q", lines[4])
	}
	// x values sorted ascending.
	if !strings.HasPrefix(lines[2], "2") || !strings.HasPrefix(lines[4], "8") {
		t.Fatalf("x order wrong:\n%s", tbl)
	}
}
