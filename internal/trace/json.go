package trace

import (
	"encoding/json"
	"fmt"
)

// SchemaVersion is the version tag every serialized Result carries.
// BENCH_*.json files, trace exports and experiment reports all embed
// Results, so the encoding is versioned explicitly: a reader checks the
// tag instead of guessing from field shapes, and old files fail loudly
// rather than decoding into zero values.
const SchemaVersion = 1

// resultJSON is the wire form of Result, schema version 1. Field names
// are part of the format; renaming one is a schema bump.
type resultJSON struct {
	Schema     int       `json:"schema"`
	Name       string    `json:"name"`
	Processors int       `json:"processors"`
	Unit       string    `json:"unit,omitempty"`
	Makespan   float64   `json:"makespan"`
	SeqTime    float64   `json:"seq_time"`
	Busy       []float64 `json:"busy,omitempty"`
	Chunks     int       `json:"chunks"`
	Steals     int       `json:"steals"`
	Messages   int       `json:"messages"`
	// The chain counters are omitempty: runs without cache chaining
	// (every simulator run, pre-chain files) encode byte-identically
	// to the original schema-1 form, so goldens and old BENCH files
	// stay valid without a schema bump.
	ChainHits      int `json:"chain_hits,omitempty"`
	ChainSpills    int `json:"chain_spills,omitempty"`
	ChainFallbacks int `json:"chain_fallbacks,omitempty"`
	// Likewise omitempty: only the dist backend measures real
	// inter-process communication, so sim/native files are unchanged.
	Comm      float64 `json:"comm,omitempty"`
	CommBytes int64   `json:"comm_bytes,omitempty"`
}

// MarshalJSON encodes the result in the versioned wire format.
func (r Result) MarshalJSON() ([]byte, error) {
	return json.Marshal(resultJSON{
		Schema:     SchemaVersion,
		Name:       r.Name,
		Processors: r.Processors,
		Unit:       r.Unit,
		Makespan:   r.Makespan,
		SeqTime:    r.SeqTime,
		Busy:       r.Busy,
		Chunks:     r.Chunks,
		Steals:     r.Steals,
		Messages:   r.Messages,

		ChainHits:      r.ChainHits,
		ChainSpills:    r.ChainSpills,
		ChainFallbacks: r.ChainFallbacks,
		Comm:           r.Comm,
		CommBytes:      r.CommBytes,
	})
}

// UnmarshalJSON decodes the versioned wire format, rejecting unknown
// schema versions.
func (r *Result) UnmarshalJSON(data []byte) error {
	var w resultJSON
	if err := json.Unmarshal(data, &w); err != nil {
		return err
	}
	if w.Schema != SchemaVersion {
		return fmt.Errorf("trace: result schema %d, want %d", w.Schema, SchemaVersion)
	}
	*r = Result{
		Name:       w.Name,
		Processors: w.Processors,
		Unit:       w.Unit,
		Makespan:   w.Makespan,
		SeqTime:    w.SeqTime,
		Busy:       w.Busy,
		Chunks:     w.Chunks,
		Steals:     w.Steals,
		Messages:   w.Messages,

		ChainHits:      w.ChainHits,
		ChainSpills:    w.ChainSpills,
		ChainFallbacks: w.ChainFallbacks,
		Comm:           w.Comm,
		CommBytes:      w.CommBytes,
	}
	return nil
}
