package trace

import (
	"encoding/json"
	"os"
	"reflect"
	"strings"
	"testing"
)

func sampleResult() Result {
	return Result{
		Name:       "TAPER/psirrfan",
		Processors: 4,
		Unit:       "s",
		Makespan:   12.5,
		SeqTime:    40,
		Busy:       []float64{10, 10.5, 9.5, 10},
		Chunks:     17,
		Steals:     3,
		Messages:   21,
	}
}

// TestResultJSONRoundTrip checks encode/decode identity.
func TestResultJSONRoundTrip(t *testing.T) {
	want := sampleResult()
	data, err := json.Marshal(want)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"schema":1`) {
		t.Fatalf("encoding missing schema tag: %s", data)
	}
	var got Result
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, want)
	}
}

// TestResultJSONGolden pins the wire format: the committed fixture is
// the schema-1 encoding, and both directions must match it. A change
// that breaks this test is a schema bump, not a fixture update.
func TestResultJSONGolden(t *testing.T) {
	golden, err := os.ReadFile("testdata/result_v1.json")
	if err != nil {
		t.Fatal(err)
	}
	var got Result
	if err := json.Unmarshal(golden, &got); err != nil {
		t.Fatalf("decoding the golden file: %v", err)
	}
	if want := sampleResult(); !reflect.DeepEqual(got, want) {
		t.Fatalf("golden decode:\n got %+v\nwant %+v", got, want)
	}
	enc, err := json.Marshal(sampleResult())
	if err != nil {
		t.Fatal(err)
	}
	if want := strings.TrimSpace(string(golden)); string(enc) != want {
		t.Fatalf("encoding drifted from the golden wire format:\n got %s\nwant %s", enc, want)
	}
}

// TestResultJSONRejectsWrongSchema checks that files from other schema
// versions fail loudly instead of decoding into zero values.
func TestResultJSONRejectsWrongSchema(t *testing.T) {
	for _, in := range []string{
		`{"schema":2,"name":"x","processors":1,"makespan":1,"seq_time":1,"chunks":0,"steals":0,"messages":0}`,
		`{"name":"pre-versioning","processors":8,"makespan":3}`,
	} {
		var r Result
		err := json.Unmarshal([]byte(in), &r)
		if err == nil {
			t.Fatalf("accepted wrong-schema input %s", in)
		}
		if !strings.Contains(err.Error(), "schema") {
			t.Fatalf("error should name the schema mismatch, got: %v", err)
		}
	}
}

// TestResultJSONOmitsEmpty checks the omitempty fields so sim results
// (empty unit) stay compact and stable.
func TestResultJSONOmitsEmpty(t *testing.T) {
	data, err := json.Marshal(Result{Name: "s", Processors: 1})
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(data), "unit") || strings.Contains(string(data), "busy") {
		t.Fatalf("empty unit/busy should be omitted: %s", data)
	}
}
