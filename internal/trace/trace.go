// Package trace collects execution metrics from simulated runs:
// makespan, per-processor busy time, efficiency, speedup, and event
// counts. Every experiment in the benchmark harness reports through
// these types.
package trace

import (
	"fmt"
	"sort"
	"strings"
)

// Result summarizes one parallel execution.
type Result struct {
	Name       string
	Processors int
	// Unit names the time unit of Makespan, SeqTime and Busy. Empty
	// means simulator units (one unit ≈ a small task); the native
	// backend reports wall-clock seconds as "s".
	Unit string
	// Makespan is the parallel completion time.
	Makespan float64
	// SeqTime is the total task work (the one-processor execution
	// time, excluding parallel overheads).
	SeqTime float64
	// Busy is the per-processor busy time (task execution only).
	Busy []float64
	// Chunks counts scheduling events (chunk dispatches).
	Chunks int
	// Steals counts chunk re-assignments between processors.
	Steals int
	// Messages counts point-to-point messages.
	Messages int
	// ChainHits counts consumer chunks executed on the cache-chain
	// path: run by the worker that completed the enabling producer
	// chunk, while its output was still cache-resident. Zero on the
	// simulator and in non-chained native modes.
	ChainHits int
	// ChainSpills counts enabled consumer blocks the chain path
	// handed back to the work-stealing deques (depth limit or
	// cancellation) instead of running in place.
	ChainSpills int
	// ChainFallbacks counts enabled consumer blocks released to other
	// workers because the enabling worker could not keep them (crash
	// recovery).
	ChainFallbacks int
	// Comm is the measured total communication time in Unit: on the
	// dist backend, wall-clock time spent moving grants, data blocks
	// and completions over sockets (send→receive, minus the worker's
	// own execution time). Zero on shared-memory backends; the
	// simulator folds its *modeled* message costs into Makespan
	// instead.
	Comm float64
	// CommBytes is the measured payload volume behind Comm: data-block
	// bytes actually serialized across process boundaries.
	CommBytes int64
}

// Speedup reports SeqTime / Makespan.
func (r Result) Speedup() float64 {
	if r.Makespan <= 0 {
		return 0
	}
	return r.SeqTime / r.Makespan
}

// Efficiency reports Speedup / Processors, the paper's efficiency
// metric ("performance given the 512 processors divided by the
// sequential performance").
func (r Result) Efficiency() float64 {
	if r.Processors <= 0 {
		return 0
	}
	return r.Speedup() / float64(r.Processors)
}

// TotalBusy sums the per-processor busy times.
func (r Result) TotalBusy() float64 {
	sum := 0.0
	for _, b := range r.Busy {
		sum += b
	}
	return sum
}

// LoadImbalance reports max busy / mean busy (1.0 = perfectly even).
func (r Result) LoadImbalance() float64 {
	if len(r.Busy) == 0 {
		return 0
	}
	max, sum := 0.0, 0.0
	for _, b := range r.Busy {
		if b > max {
			max = b
		}
		sum += b
	}
	mean := sum / float64(len(r.Busy))
	if mean <= 0 {
		return 0
	}
	return max / mean
}

// String renders a one-line summary.
func (r Result) String() string {
	unit := r.Unit
	if unit != "" {
		unit = " " + unit
	}
	return fmt.Sprintf("%s: p=%d makespan=%.1f%s speedup=%.1f eff=%.1f%% chunks=%d steals=%d msgs=%d",
		r.Name, r.Processors, r.Makespan, unit, r.Speedup(), 100*r.Efficiency(),
		r.Chunks, r.Steals, r.Messages)
}

// Series is a labelled sequence of (x, result) points, one curve of a
// figure.
type Series struct {
	Label  string
	X      []float64
	Points []Result
}

// Add appends one point.
func (s *Series) Add(x float64, r Result) {
	s.X = append(s.X, x)
	s.Points = append(s.Points, r)
}

// Table renders a set of series as an aligned text table of speedups,
// the form of the paper's Figure 6.
func Table(title, xLabel string, series []*Series, metric func(Result) float64, metricLabel string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s (%s)\n", title, metricLabel)
	// Header.
	fmt.Fprintf(&b, "%-10s", xLabel)
	for _, s := range series {
		fmt.Fprintf(&b, " %16s", s.Label)
	}
	b.WriteByte('\n')
	// Collect all x values.
	xs := map[float64]bool{}
	for _, s := range series {
		for _, x := range s.X {
			xs[x] = true
		}
	}
	var sorted []float64
	for x := range xs {
		sorted = append(sorted, x)
	}
	sort.Float64s(sorted)
	for _, x := range sorted {
		fmt.Fprintf(&b, "%-10.0f", x)
		for _, s := range series {
			found := false
			for i, sx := range s.X {
				if sx == x {
					fmt.Fprintf(&b, " %16.1f", metric(s.Points[i]))
					found = true
					break
				}
			}
			if !found {
				fmt.Fprintf(&b, " %16s", "-")
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}
