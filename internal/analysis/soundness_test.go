package analysis

import (
	"fmt"
	"strings"
	"testing"

	"orchestra/internal/interp"
	"orchestra/internal/source"
	"orchestra/internal/stats"
	"orchestra/internal/symbolic"
)

// Descriptor soundness against ground truth: execute a loop with the
// reference interpreter, record every array access, and verify the
// statically computed (promoted) descriptor covers each one. Writes
// must all be covered by the write set; reads must be covered by the
// read set whenever the element's first dynamic access is a load (the
// descriptor's read set holds only locations live on entry).

// stateEvaluator adapts an interpreter state (captured BEFORE the loop
// runs) to the descriptor evaluator.
type stateEvaluator struct {
	scalars map[string]float64
	arrays  map[string][]float64
	dims    map[string][]int
}

func snapshot(st *interp.State) *stateEvaluator {
	ev := &stateEvaluator{
		scalars: map[string]float64{},
		arrays:  map[string][]float64{},
		dims:    map[string][]int{},
	}
	for k, v := range st.Scalars {
		ev.scalars[k] = v
	}
	for k, v := range st.Arrays {
		ev.arrays[k] = append([]float64{}, v...)
		ev.dims[k] = append([]int{}, st.Dims[k]...)
	}
	return ev
}

func (ev *stateEvaluator) NameValue(n symbolic.Name) (int64, bool) {
	name := string(n)
	if i := strings.IndexByte(name, '.'); i > 0 {
		name = name[:i]
	}
	v, ok := ev.scalars[name]
	return int64(v), ok
}

func (ev *stateEvaluator) Element(array symbolic.Name, idx []int64) (float64, bool) {
	arr, ok := ev.arrays[string(array)]
	if !ok {
		return 0, false
	}
	dims := ev.dims[string(array)]
	if len(idx) != len(dims) {
		return 0, false
	}
	off := 0
	stride := 1
	for k, i := range idx {
		if i < 1 || i > int64(dims[k]) {
			return 0, false
		}
		off += int(i-1) * stride
		stride *= dims[k]
	}
	return arr[off], true
}

type access struct {
	array string
	key   string
	idx   []int64
	load  bool
}

// checkLoopSoundness runs the FIRST top-level loop of src on a random
// state and checks its promoted descriptor against the recorded
// accesses.
func checkLoopSoundness(t *testing.T, src string, n int, seed uint64) {
	t.Helper()
	p, err := source.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	r := Analyze(p)
	loop := p.Body[0].(*source.Do)
	d := r.DescribeLoop(loop)

	st := interp.NewState()
	st.Scalars["n"] = float64(n)
	rng := stats.NewRNG(seed)
	for _, decl := range p.Decls {
		if !decl.IsArray() {
			if decl.Name != "n" {
				st.Scalars[decl.Name] = float64(1 + rng.Intn(n))
			}
			continue
		}
		dims := make([]int, len(decl.Dims))
		for i := range decl.Dims {
			dims[i] = n
		}
		st.Alloc(decl.Name, dims...)
		arr := st.Arrays[decl.Name]
		for i := range arr {
			if decl.Type == source.Integer {
				if rng.Bernoulli(0.5) {
					arr[i] = 1
				}
			} else {
				arr[i] = rng.Uniform(-2, 2)
			}
		}
	}
	ev := snapshot(st)

	var accesses []access
	firstTouch := map[string]bool{} // key -> first access was a load
	st.OnLoad = func(array string, idx []int64) {
		key := fmt.Sprintf("%s%v", array, idx)
		if _, seen := firstTouch[key]; !seen {
			firstTouch[key] = true
		}
		accesses = append(accesses, access{array, key, append([]int64{}, idx...), true})
	}
	st.OnStore = func(array string, idx []int64) {
		key := fmt.Sprintf("%s%v", array, idx)
		if _, seen := firstTouch[key]; !seen {
			firstTouch[key] = false
		}
		accesses = append(accesses, access{array, key, append([]int64{}, idx...), false})
	}

	onlyLoop := &source.Program{Name: p.Name, Decls: p.Decls, Body: p.Body[:1]}
	if err := interp.Run(onlyLoop, st); err != nil {
		t.Fatalf("run: %v", err)
	}
	if len(accesses) == 0 {
		t.Fatal("no accesses recorded; vacuous test")
	}

	for _, a := range accesses {
		if a.load {
			if firstTouch[a.key] && !d.CoversRead(ev, symbolic.Name(a.array), a.idx) {
				t.Fatalf("live-on-entry load %s%v not covered (seed %d)\ndescriptor:\n%s",
					a.array, a.idx, seed, d)
			}
			continue
		}
		if !d.CoversWrite(ev, symbolic.Name(a.array), a.idx) {
			t.Fatalf("write %s%v not covered (seed %d)\ndescriptor:\n%s",
				a.array, a.idx, seed, d)
		}
	}
}

func TestSoundnessMaskedLoop(t *testing.T) {
	src := `
program s
  integer n
  integer mask(n)
  real q(n, n), result(n), w(n)
  do col = 1, n where (mask(col) != 0)
    do i = 1, n
      result(i) = 0
      do j = 1, n
        result(i) = result(i) + q(j, i) * w(j)
      end do
    end do
    do i = 1, n
      q(i, col) = result(i)
    end do
  end do
end
`
	for seed := uint64(1); seed <= 6; seed++ {
		checkLoopSoundness(t, src, 9, seed)
	}
}

func TestSoundnessAffineSubscripts(t *testing.T) {
	src := `
program s
  integer n
  real x(n), y(n)
  do i = 2, n - 1
    x(i) = y(i - 1) + y(i + 1)
  end do
end
`
	for seed := uint64(1); seed <= 4; seed++ {
		checkLoopSoundness(t, src, 12, seed)
	}
}

func TestSoundnessStridedLoop(t *testing.T) {
	src := `
program s
  integer n
  real x(n)
  do i = 2, n, 2
    x(i) = x(i) * 2
  end do
end
`
	checkLoopSoundness(t, src, 10, 3)
}

func TestSoundnessDiscontinuousLoop(t *testing.T) {
	src := `
program s
  integer n, a
  real x(n)
  do i = 1, a - 1 and a + 1, n
    x(i) = 7
  end do
end
`
	for seed := uint64(1); seed <= 5; seed++ {
		checkLoopSoundness(t, src, 11, seed)
	}
}

func TestSoundnessConditionalBody(t *testing.T) {
	src := `
program s
  integer n, k
  real x(n), y(n)
  do i = 1, n
    if (i <= k) then
      x(i) = 1
    else
      y(i) = 2
    end if
  end do
end
`
	for seed := uint64(1); seed <= 5; seed++ {
		checkLoopSoundness(t, src, 10, seed)
	}
}

func TestSoundnessTriangular(t *testing.T) {
	src := `
program s
  integer n
  real x(n, n)
  do i = 1, n
    do j = i, n
      x(j, i) = 1
    end do
  end do
end
`
	checkLoopSoundness(t, src, 8, 2)
}
