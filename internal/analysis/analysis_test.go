package analysis

import (
	"strings"
	"testing"

	"orchestra/internal/descriptor"
	"orchestra/internal/source"
	"orchestra/internal/symbolic"
)

const figure1 = `
program sample
  integer n
  integer mask(n)
  real result(n), q(n, n), output(n, n)

  do col = 1, n where (mask(col) != 0)
    do i = 1, n
      result(i) = f(q(i, col))
    end do
    do i = 1, n
      q(i, col) = result(i)
    end do
  end do

  do i = 1, n
    do j = 1, n
      output(j, i) = g(q(j, i))
    end do
  end do
end
`

func analyze(t *testing.T, src string) *Result {
	t.Helper()
	p, err := source.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return Analyze(p)
}

func TestFigure1LoopADescriptor(t *testing.T) {
	r := analyze(t, figure1)
	loopA := r.Program.Body[0].(*source.Do)
	d := r.DescribeLoop(loopA)

	// A writes q with a mask on the column dimension.
	var qWrite *descriptor.Triple
	for i := range d.Writes {
		if d.Writes[i].Block == "q" {
			qWrite = &d.Writes[i]
		}
	}
	if qWrite == nil {
		t.Fatalf("no write to q:\n%s", d)
	}
	if len(qWrite.Dims) != 2 {
		t.Fatalf("write dims = %d", len(qWrite.Dims))
	}
	if qWrite.Dims[1].Mask == nil {
		t.Fatalf("column dimension missing mask: %s", qWrite)
	}
	if !strings.Contains(qWrite.Dims[1].Mask.String(), "mask[*] != 0") {
		t.Fatalf("mask = %s", qWrite.Dims[1].Mask)
	}
	// A reads mask and q.
	blocks := d.Blocks()
	if !blocks["mask"] || !blocks["q"] {
		t.Fatalf("blocks = %v", blocks)
	}
}

func TestFigure1InterferenceAB(t *testing.T) {
	r := analyze(t, figure1)
	loopA := r.Program.Body[0].(*source.Do)
	loopB := r.Program.Body[1].(*source.Do)
	dA := r.DescribeLoop(loopA)
	dB := r.DescribeLoop(loopB)
	// B reads all of q, which A writes: flow dependence.
	if !descriptor.Interferes(dA, dB, nil) {
		t.Fatalf("A and B must interfere\nA:\n%s\nB:\n%s", dA, dB)
	}
	if !descriptor.FlowInterferes(dA, dB, nil) {
		t.Fatal("B must be flow dependent on A")
	}
	if descriptor.FlowInterferes(dB, dA, nil) {
		t.Fatal("A must not be flow dependent on B")
	}
}

func TestIterationIndependenceTest(t *testing.T) {
	// The paper's independence check: rename the induction variable in
	// a second copy of the iteration descriptor and check that the two
	// intersect only in their read sets.
	r := analyze(t, `
program p
  integer n
  integer miss(n)
  real q(n, n), x(n)
  do i = 1, n where (miss(i) != 1)
    do j = 1, n
      q(i, j) = q(i, j) + x(j)
    end do
  end do
end
`)
	loop := r.Program.Body[0].(*source.Do)
	iter, iv := r.DescribeIteration(loop)
	ivP := symbolic.Name(string(iv) + "'")
	other := iter.Subst(iv, symbolic.Var(ivP))
	ctx := symbolic.Conj{symbolic.CmpExpr(symbolic.Var(iv), symbolic.NE, symbolic.Var(ivP))}
	if descriptor.Interferes(iter, other, ctx) {
		t.Fatalf("iterations should be independent\niter:\n%s", iter)
	}
}

func TestPaperExampleDescriptorShape(t *testing.T) {
	// §3.2's example: do i=1,10 / if miss(i) != 1 / do j=1,10 /
	// q(i,j) = q(i,j) + x(j). The whole-loop write descriptor is
	// q[1..10/(miss[*] != 1), 1..10].
	r := analyze(t, `
program p
  integer miss(10)
  real q(10, 10), x(10)
  do i = 1, 10 where (miss(i) != 1)
    do j = 1, 10
      q(i, j) = q(i, j) + x(j)
    end do
  end do
end
`)
	loop := r.Program.Body[0].(*source.Do)
	d := r.DescribeLoop(loop)
	var qw *descriptor.Triple
	for i := range d.Writes {
		if d.Writes[i].Block == "q" {
			qw = &d.Writes[i]
		}
	}
	if qw == nil {
		t.Fatalf("no q write:\n%s", d)
	}
	if qw.Dims[0].Mask == nil || !strings.Contains(qw.Dims[0].Mask.String(), "miss[*] != 1") {
		t.Fatalf("first dim mask = %v", qw.Dims[0].Mask)
	}
	lo, hi, ok := qw.Dims[0].Ranges[0].IsConst()
	if !ok || lo != 1 || hi != 10 {
		t.Fatalf("first dim range = %v", qw.Dims[0].Ranges[0])
	}
	// x must be read, unmasked is fine.
	if !d.Blocks()["x"] {
		t.Fatal("x not in read set")
	}
}

func TestCoveredReadEliminated(t *testing.T) {
	r := analyze(t, `
program p
  integer n
  real tmp(n), q(n)
  do i = 1, n
    tmp(i) = q(i) * 2
  end do
  do i = 1, n
    q(i) = tmp(i)
  end do
end
`)
	d := r.DescribeStmts(r.Program.Body)
	// tmp is written whole by the first loop before the second reads
	// it, so tmp must not appear in the read set.
	for _, rd := range d.Reads {
		if rd.Block == "tmp" {
			t.Fatalf("covered read of tmp survived:\n%s", d)
		}
	}
	// q is both read (first loop) and written (second).
	foundQRead := false
	for _, rd := range d.Reads {
		if rd.Block == "q" {
			foundQRead = true
		}
	}
	if !foundQRead {
		t.Fatal("q read missing")
	}
}

func TestPartialWriteDoesNotCover(t *testing.T) {
	r := analyze(t, `
program p
  integer n
  real tmp(n), q(n)
  do i = 2, n
    tmp(i) = q(i)
  end do
  do i = 1, n
    q(i) = tmp(i)
  end do
end
`)
	d := r.DescribeStmts(r.Program.Body)
	// The first loop writes only tmp[2..n]; the second reads tmp[1..n],
	// which is NOT covered.
	foundTmpRead := false
	for _, rd := range d.Reads {
		if rd.Block == "tmp" {
			foundTmpRead = true
		}
	}
	if !foundTmpRead {
		t.Fatal("uncovered read of tmp was wrongly eliminated")
	}
}

func TestIfDescriptorGuards(t *testing.T) {
	r := analyze(t, `
program p
  integer n, k
  real a(n), b(n)
  if (k > 0) then
    a(1) = 1
  else
    b(1) = 2
  end if
end
`)
	st := r.Program.Body[0].(*source.If)
	d := r.DescribeStmt(st)
	var aw, bw *descriptor.Triple
	for i := range d.Writes {
		switch d.Writes[i].Block {
		case "a":
			aw = &d.Writes[i]
		case "b":
			bw = &d.Writes[i]
		}
	}
	if aw == nil || bw == nil {
		t.Fatalf("missing writes:\n%s", d)
	}
	if len(aw.Guard) == 0 || len(bw.Guard) == 0 {
		t.Fatalf("branch writes unguarded: a=%v b=%v", aw.Guard, bw.Guard)
	}
	// The guards must be contradictory (then vs else).
	if !aw.Guard.Merge(bw.Guard).ProvesFalse() {
		t.Fatalf("then/else guards not complementary: %v vs %v", aw.Guard, bw.Guard)
	}
}

func TestCallDescriptorConservative(t *testing.T) {
	r := analyze(t, `
program p
  integer n
  real x(n), y(n)
  call solve(x, n)
  do i = 1, n
    y(i) = x(i)
  end do
end
`)
	call := r.Program.Body[0].(*source.CallStmt)
	d := r.DescribeStmt(call)
	wroteX := false
	for _, w := range d.Writes {
		if w.Block == "x" && w.Whole() {
			wroteX = true
		}
	}
	if !wroteX {
		t.Fatalf("call does not write x whole:\n%s", d)
	}
	// The call must interfere with the loop reading x.
	loop := r.Program.Body[1].(*source.Do)
	if !descriptor.Interferes(d, r.DescribeLoop(loop), nil) {
		t.Fatal("call and consumer loop must interfere")
	}
}

func TestUntranslatableSubscriptWidens(t *testing.T) {
	r := analyze(t, `
program p
  integer n
  integer idx(n)
  real x(n)
  do i = 1, n
    x(idx(i)) = 0
  end do
end
`)
	loop := r.Program.Body[0].(*source.Do)
	d := r.DescribeLoop(loop)
	// x's subscript is indirect: the write must widen to the whole
	// block.
	for _, w := range d.Writes {
		if w.Block == "x" && !w.Whole() {
			t.Fatalf("indirect write not widened: %s", w)
		}
	}
}

func TestWrittenBeforeRead(t *testing.T) {
	r := analyze(t, figure1)
	loopA := r.Program.Body[0].(*source.Do)
	iter, _ := r.DescribeIteration(loopA)
	// Within one iteration of A, result is written (whole) by the first
	// inner loop before being read by the second: privatizable.
	privatizable := WrittenBeforeRead(iter)
	found := false
	for _, b := range privatizable {
		if b == "result" {
			found = true
		}
	}
	if !found {
		t.Fatalf("result not privatizable: %v\niter:\n%s", privatizable, iter)
	}
}

func TestCallSiteGrouping(t *testing.T) {
	r := analyze(t, `
program p
  integer n
  real x(n), y(n), s
  s = f(x, 1)
  do i = 1, n
    do j = 1, n
      x(j) = g(x, y, 2)
      y(j) = g(x, x, 2)
      s = g(x, y, 3)
    end do
  end do
end
`)
	if len(r.Calls) != 4 {
		t.Fatalf("call sites = %d, want 4", len(r.Calls))
	}
	groups := Groups(r.Calls)
	// The two g(x,y,...) calls differ in constant arg (2 vs 3), and
	// g(x,x,2) has a different aliasing pattern: three distinct hot
	// groups plus the cold f group.
	if len(groups) != 4 {
		t.Fatalf("groups = %v", groups)
	}
	// Hot calls are those at depth >= 2.
	hot := 0
	for _, c := range r.Calls {
		if c.Hot {
			hot++
		}
	}
	if hot != 3 {
		t.Fatalf("hot sites = %d, want 3", hot)
	}
}

func TestCallSiteColdGroupsByArity(t *testing.T) {
	r := analyze(t, `
program p
  integer a, b
  a = f(1)
  b = f(2)
end
`)
	groups := Groups(r.Calls)
	if len(groups) != 1 || groups["f/1"] != 2 {
		t.Fatalf("groups = %v", groups)
	}
}

func TestDescriptorDeduplication(t *testing.T) {
	r := analyze(t, `
program p
  integer n, s
  real x(n)
  do i = 1, n
    s = s + x(i) + x(i) + x(i)
  end do
end
`)
	loop := r.Program.Body[0].(*source.Do)
	d := r.DescribeLoop(loop)
	count := 0
	for _, rd := range d.Reads {
		if rd.Block == "x" {
			count++
		}
	}
	if count != 1 {
		t.Fatalf("x read triples = %d, want 1 (deduplicated)", count)
	}
}
