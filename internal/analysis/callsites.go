package analysis

import (
	"fmt"
	"sort"
	"strings"

	"orchestra/internal/source"
	"orchestra/internal/ssa"
)

// CallSite records one call site found in the program, together with
// the group it was assigned by call-site analysis (§3.1 step 1). The
// paper classifies sites "into groups based on profile information and
// argument characteristics: call sites that represent a significant
// amount of computation will only be grouped with others that have the
// same aliasing pattern and constant values."
//
// Without profiles at compile time, loop nesting depth stands in for
// significance: a call at depth >= 2 is considered hot and grouped by
// the full (name, aliasing pattern, constant arguments) key; shallower
// calls group by name and arity alone.
type CallSite struct {
	Name  string
	Stmt  source.Stmt // enclosing statement
	Args  []source.Expr
	Depth int    // loop nesting depth
	Hot   bool   // considered significant
	Group string // grouping key
}

// collectCallSites walks the program gathering function calls (in
// expressions) and subroutine calls (statements) and assigns groups.
func collectCallSites(p *source.Program, in *ssa.Info) []CallSite {
	var sites []CallSite

	var walkBody func(ss []source.Stmt, depth int)
	collectExpr := func(s source.Stmt, e source.Expr, depth int) {
		source.WalkExpr(e, func(x source.Expr) {
			if fc, ok := x.(*source.FuncCall); ok {
				sites = append(sites, makeSite(p, in, s, fc.Name, fc.Args, depth))
			}
		})
	}
	walkBody = func(ss []source.Stmt, depth int) {
		for _, s := range ss {
			switch s := s.(type) {
			case *source.Assign:
				collectExpr(s, s.LHS, depth)
				collectExpr(s, s.RHS, depth)
			case *source.CallStmt:
				sites = append(sites, makeSite(p, in, s, s.Name, s.Args, depth))
				for _, a := range s.Args {
					collectExpr(s, a, depth)
				}
			case *source.Do:
				collectExpr(s, s.Where, depth)
				for _, r := range s.Ranges {
					collectExpr(s, r.Lo, depth)
					collectExpr(s, r.Hi, depth)
					collectExpr(s, r.Step, depth)
				}
				walkBody(s.Body, depth+1)
			case *source.If:
				collectExpr(s, s.Cond, depth)
				walkBody(s.Then, depth)
				walkBody(s.Else, depth)
			}
		}
	}
	walkBody(p.Body, 0)
	return sites
}

func makeSite(p *source.Program, in *ssa.Info, s source.Stmt, name string, args []source.Expr, depth int) CallSite {
	cs := CallSite{Name: name, Stmt: s, Args: args, Depth: depth, Hot: depth >= 2}
	if cs.Hot {
		cs.Group = fmt.Sprintf("%s/%s/%s", name, aliasPattern(p, args), constPattern(in, s, args))
	} else {
		cs.Group = fmt.Sprintf("%s/%d", name, len(args))
	}
	return cs
}

// aliasPattern encodes which arguments refer to the same aggregate: two
// call sites with different sharing among their array arguments must
// not share a summary.
func aliasPattern(p *source.Program, args []source.Expr) string {
	// Map each aggregate argument to the index of its first occurrence.
	firstUse := map[string]int{}
	parts := make([]string, len(args))
	for i, a := range args {
		name := aggregateName(p, a)
		if name == "" {
			parts[i] = "."
			continue
		}
		if j, ok := firstUse[name]; ok {
			parts[i] = fmt.Sprintf("=%d", j)
		} else {
			firstUse[name] = i
			parts[i] = "a"
		}
	}
	return strings.Join(parts, "")
}

// aggregateName returns the array name an argument references, or "".
func aggregateName(p *source.Program, a source.Expr) string {
	switch a := a.(type) {
	case *source.Ident:
		if d := p.Decl(a.Name); d != nil && d.IsArray() {
			return a.Name
		}
	case *source.ArrayRef:
		return a.Name
	}
	return ""
}

// constPattern encodes which arguments are compile-time constants and
// their values.
func constPattern(in *ssa.Info, s source.Stmt, args []source.Expr) string {
	env := in.AtStmt[s]
	parts := make([]string, len(args))
	for i, a := range args {
		parts[i] = "?"
		if env == nil {
			continue
		}
		if x, ok := in.TranslateExpr(a, env); ok {
			if c, isConst := x.IsConst(); isConst {
				parts[i] = fmt.Sprintf("%d", c)
			}
		}
	}
	return strings.Join(parts, ",")
}

// Groups returns the distinct call-site groups, sorted, with their
// member counts.
func Groups(sites []CallSite) map[string]int {
	out := map[string]int{}
	for _, s := range sites {
		out[s.Group]++
	}
	return out
}

// GroupKeys returns the sorted group names.
func GroupKeys(sites []CallSite) []string {
	g := Groups(sites)
	keys := make([]string, 0, len(g))
	for k := range g {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
