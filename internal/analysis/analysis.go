// Package analysis runs the paper's symbolic analysis pipeline (§3.1)
// over a mini-Fortran program and summarizes the memory behaviour of
// statements as symbolic data descriptors (§3.2):
//
//  1. call-site analysis — call sites are grouped by name, aliasing
//     pattern, and constant arguments (callsites.go);
//  2. memory usage analysis — every statement is annotated with the
//     scalars and aggregates it reads and writes;
//  3. SSA conversion (internal/ssa);
//  4. aggregate propagation — values assigned through array elements
//     receive temporary names so scalar loads of the same element can
//     be resolved;
//  5. alias elimination — calls invalidate propagated values for the
//     aggregates they may write;
//  6. value propagation — branch conditions become assertions and
//     symbolic values flow from definitions to uses (internal/ssa).
//
// The Describe functions assemble descriptors at any granularity the
// split transformation needs: a single statement, a statement list, one
// loop iteration (induction variable unresolved), or a whole loop
// (iteration descriptor promoted over the induction range).
package analysis

import (
	"orchestra/internal/descriptor"
	"orchestra/internal/source"
	"orchestra/internal/ssa"
	"orchestra/internal/symbolic"
)

// Result is the analyzed form of a program.
type Result struct {
	Program *source.Program
	SSA     *ssa.Info
	Calls   []CallSite
}

// Analyze runs the full pipeline.
func Analyze(p *source.Program) *Result {
	r := &Result{Program: p, SSA: ssa.Convert(p)}
	r.Calls = collectCallSites(p, r.SSA)
	return r
}

// envOf returns the recorded environment before statement s.
func (r *Result) envOf(s source.Stmt) ssa.Env { return r.SSA.AtStmt[s] }

// ctxOf returns the recorded assertion context of statement s.
func (r *Result) ctxOf(s source.Stmt) symbolic.Conj { return r.SSA.Ctx[s] }

// DescribeStmt summarizes one statement. Loops are fully promoted over
// their induction ranges.
func (r *Result) DescribeStmt(s source.Stmt) descriptor.Descriptor {
	switch s := s.(type) {
	case *source.Assign:
		return r.describeAssign(s, r.envOf(s))
	case *source.CallStmt:
		return r.describeCall(s, r.envOf(s))
	case *source.If:
		return r.describeIf(s)
	case *source.Do:
		return r.DescribeLoop(s)
	}
	return descriptor.Descriptor{}
}

// DescribeStmts summarizes a statement list, eliminating reads covered
// by earlier writes in the same list (the paper's "reads known to be
// dominated by writes in the write set are not included").
func (r *Result) DescribeStmts(ss []source.Stmt) descriptor.Descriptor {
	var out descriptor.Descriptor
	for _, s := range ss {
		d := r.DescribeStmt(s)
		for _, rd := range d.Reads {
			if !coveredByAny(rd, out.Writes) {
				out.AddRead(rd)
			}
		}
		out.Writes = append(out.Writes, d.Writes...)
	}
	return out
}

// DescribeLoop promotes the iteration descriptor of a loop over its
// whole induction range.
func (r *Result) DescribeLoop(s *source.Do) descriptor.Descriptor {
	iter, iv := r.DescribeIteration(s)
	ind := r.SSA.Defs[iv]
	if ind == nil || len(ind.Ranges) == 0 {
		return iter // degenerate; keep the conservative iteration form
	}
	return descriptor.Promote(iter, iv, ind.Ranges)
}

// DescribeIteration summarizes a single iteration of a loop: the body
// descriptor with the where-guard attached to every triple, plus the
// reads performed by the guard and the bound expressions themselves.
// The induction variable's SSA name is returned and remains unresolved
// in the descriptor, as split's independence test requires.
func (r *Result) DescribeIteration(s *source.Do) (descriptor.Descriptor, symbolic.Name) {
	env := r.SSA.InsideLoop[s]
	iv := env[s.Var]

	body := r.DescribeStmts(s.Body)

	// The where guard conditions every access of the body.
	if s.Where != nil {
		if preds, ok := r.SSA.TranslatePred(s.Where, env); ok {
			for i := range body.Reads {
				body.Reads[i] = body.Reads[i].WithGuard(preds)
			}
			for i := range body.Writes {
				body.Writes[i] = body.Writes[i].WithGuard(preds)
			}
		}
		// Evaluating the guard reads its operands unconditionally.
		guardReads := descriptor.Descriptor{}
		r.addExprReads(&guardReads, s.Where, env)
		body.Reads = append(body.Reads, guardReads.Reads...)
	}

	// Bound expressions are evaluated on loop entry.
	outerEnv := r.envOf(s)
	if outerEnv == nil {
		outerEnv = env
	}
	for _, rg := range s.Ranges {
		r.addExprReads(&body, rg.Lo, outerEnv)
		r.addExprReads(&body, rg.Hi, outerEnv)
		if rg.Step != nil {
			r.addExprReads(&body, rg.Step, outerEnv)
		}
	}
	return dedupe(body), iv
}

// describeAssign summarizes one assignment.
func (r *Result) describeAssign(s *source.Assign, env ssa.Env) descriptor.Descriptor {
	var d descriptor.Descriptor
	switch lhs := s.LHS.(type) {
	case *source.Ident:
		d.AddWrite(descriptor.ScalarTriple(symbolic.Name(lhs.Name)))
	case *source.ArrayRef:
		d.AddWrite(r.arrayTriple(lhs, env))
		// Subscript evaluation reads its operands.
		for _, ix := range lhs.Index {
			r.addExprReads(&d, ix, env)
		}
	}
	r.addExprReads(&d, s.RHS, env)
	return dedupe(d)
}

// describeCall summarizes a call statement conservatively: every
// aggregate argument is read and written whole; every scalar argument
// is read and written.
func (r *Result) describeCall(s *source.CallStmt, env ssa.Env) descriptor.Descriptor {
	var d descriptor.Descriptor
	for _, a := range s.Args {
		switch a := a.(type) {
		case *source.Ident:
			t := descriptor.ScalarTriple(symbolic.Name(a.Name))
			d.AddRead(t)
			d.AddWrite(t)
		case *source.ArrayRef:
			// Passing an element: read/write that element.
			t := r.arrayTriple(a, env)
			d.AddRead(t)
			d.AddWrite(t)
			for _, ix := range a.Index {
				r.addExprReads(&d, ix, env)
			}
		default:
			r.addExprReads(&d, a, env)
		}
	}
	return dedupe(d)
}

// describeIf summarizes a conditional: both arms, each guarded by the
// (translated) condition or its negation, plus the condition's reads.
func (r *Result) describeIf(s *source.If) descriptor.Descriptor {
	env := r.envOf(s)
	var d descriptor.Descriptor
	r.addExprReads(&d, s.Cond, env)

	condPreds, condOK := r.SSA.TranslatePred(s.Cond, env)

	thenD := r.DescribeStmts(s.Then)
	if condOK {
		thenD = guardAll(thenD, condPreds)
	}
	d.Merge(thenD)

	if len(s.Else) > 0 {
		elseD := r.DescribeStmts(s.Else)
		if condOK && len(condPreds) == 1 {
			elseD = guardAll(elseD, symbolic.Conj{condPreds[0].Negate()})
		}
		d.Merge(elseD)
	}
	return dedupe(d)
}

// arrayTriple builds the access triple for one array reference.
// Untranslatable subscripts widen to the whole block.
func (r *Result) arrayTriple(a *source.ArrayRef, env ssa.Env) descriptor.Triple {
	dims := make([]descriptor.Dim, len(a.Index))
	for i, ix := range a.Index {
		x, ok := r.SSA.TranslateExpr(ix, env)
		if !ok {
			return descriptor.ScalarTriple(symbolic.Name(a.Name)) // whole block
		}
		dims[i] = descriptor.PointDim(x)
	}
	return descriptor.Triple{Block: symbolic.Name(a.Name), Dims: dims}
}

// addExprReads appends read triples for every load performed by an
// expression. A reference to a live loop induction variable is not a
// memory read — its value is generated by the loop control, and it is
// already encoded symbolically in the access patterns.
func (r *Result) addExprReads(d *descriptor.Descriptor, e source.Expr, env ssa.Env) {
	source.WalkExpr(e, func(x source.Expr) {
		switch x := x.(type) {
		case *source.Ident:
			if name, ok := env[x.Name]; ok {
				if def := r.SSA.Defs[name]; def != nil && def.Kind == ssa.DefInduction {
					return
				}
			}
			d.AddRead(descriptor.ScalarTriple(symbolic.Name(x.Name)))
		case *source.ArrayRef:
			d.AddRead(r.arrayTriple(x, env))
		}
	})
}

// guardAll attaches a guard to every triple of a descriptor.
func guardAll(d descriptor.Descriptor, g symbolic.Conj) descriptor.Descriptor {
	out := descriptor.Descriptor{}
	for _, t := range d.Reads {
		out.AddRead(t.WithGuard(g))
	}
	for _, t := range d.Writes {
		out.AddWrite(t.WithGuard(g))
	}
	return out
}

// coveredByAny reports whether read triple rd is provably covered by
// one of the write triples (same block, unguarded, unmasked, and each
// dimension containing the read's).
func coveredByAny(rd descriptor.Triple, writes []descriptor.Triple) bool {
	for _, w := range writes {
		if covers(w, rd) {
			return true
		}
	}
	return false
}

func covers(w, rd descriptor.Triple) bool {
	if w.Block != rd.Block || len(w.Guard) > 0 {
		return false
	}
	if w.Whole() {
		return true
	}
	if rd.Whole() || len(rd.Dims) != len(w.Dims) {
		return false
	}
	for i := range w.Dims {
		wd, rdd := w.Dims[i], rd.Dims[i]
		if wd.Mask != nil {
			return false
		}
		// Every read range must be contained in some write range.
		for _, rr := range rdd.Ranges {
			contained := false
			for _, wr := range wd.Ranges {
				if symbolic.ProvesContained(rr, wr, nil) {
					contained = true
					break
				}
			}
			if !contained {
				return false
			}
		}
	}
	return true
}

// dedupe removes exact-duplicate triples, keeping descriptor sizes (and
// interference costs) proportional to the distinct accesses.
func dedupe(d descriptor.Descriptor) descriptor.Descriptor {
	out := descriptor.Descriptor{}
	for _, t := range d.Reads {
		if !containsTriple(out.Reads, t) {
			out.AddRead(t)
		}
	}
	for _, t := range d.Writes {
		if !containsTriple(out.Writes, t) {
			out.AddWrite(t)
		}
	}
	return out
}

func containsTriple(ts []descriptor.Triple, t descriptor.Triple) bool {
	for _, x := range ts {
		if x.String() == t.String() {
			return true
		}
	}
	return false
}

// WrittenBeforeRead returns the blocks a descriptor writes but never
// reads — candidates for privatization when split replicates a
// computation across pipeline stages (the result1 array of Figure 3).
func WrittenBeforeRead(d descriptor.Descriptor) []symbolic.Name {
	read := map[symbolic.Name]bool{}
	for _, t := range d.Reads {
		read[t.Block] = true
	}
	seen := map[symbolic.Name]bool{}
	var out []symbolic.Name
	for _, t := range d.Writes {
		if !read[t.Block] && !seen[t.Block] {
			seen[t.Block] = true
			out = append(out, t.Block)
		}
	}
	return out
}
