// Package fault defines deterministic fault plans for both execution
// backends: seeded schedules of worker crashes, stalls and slowdowns,
// plus simulator message delay and loss. A Plan is pure data — it can
// be parsed from a -fault flag, rendered back, validated against a
// worker count, and attached to a run through rts.RunOpts.Fault — and
// an Exec is the per-run injector the executors consult at each chunk
// boundary.
//
// Triggers are chunk counts, not timestamps: action k of worker w
// fires when w is about to start its (After+1)-th chunk. Chunk counts
// are the one scheduling quantity both backends share, so the same
// plan means the same thing on the simulator's virtual clock and the
// native runtime's wall clock, and a replayed plan fires at the same
// logical point every time.
//
// Durations (stall lengths, the native detector deadline) are in the
// backend's time unit: wall-clock seconds on the native backend,
// simulated units on the simulator.
//
// The package is a leaf: it imports only the standard library and
// internal/stats, so every layer (machine, sched, rts, native) can
// depend on it without cycles.
package fault

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"orchestra/internal/stats"
)

// Kind classifies one fault action.
type Kind uint8

// The fault taxonomy.
const (
	// Crash permanently removes a worker: at the trigger point it stops
	// taking work and never returns. Its queued chunks must be
	// re-issued to survivors.
	Crash Kind = 1 + iota
	// Stall suspends a worker for Duration at the trigger point, then
	// lets it resume — the transient form of Crash, which the native
	// detector must tolerate without losing the worker's work.
	Stall
	// Slow multiplies a worker's task execution time by Factor from the
	// trigger point on, for the rest of the run.
	Slow
	// MsgDelay scales every simulated message cost by 1+Delay. The
	// native backend has no modelled messages and ignores it.
	MsgDelay
	// MsgLoss drops each simulated message with probability Prob; a
	// dropped message is retransmitted, doubling its cost. Values are
	// never lost — loss is a cost perturbation, as in the paper's
	// reliable message layer.
	MsgLoss
)

func (k Kind) String() string {
	switch k {
	case Crash:
		return "crash"
	case Stall:
		return "stall"
	case Slow:
		return "slow"
	case MsgDelay:
		return "delay"
	case MsgLoss:
		return "loss"
	}
	return "?"
}

// Action is one scheduled fault.
type Action struct {
	Kind   Kind
	Worker int // target worker (Crash/Stall/Slow)
	// After is the chunk-count trigger: the action fires when the
	// worker is about to start chunk number After (0-based), i.e. after
	// it has started After chunks.
	After    int
	Duration float64 // Stall: how long the worker sleeps
	Factor   float64 // Slow: task-time multiplier (> 1)
	Prob     float64 // MsgLoss: per-message drop probability in [0, 1)
	Delay    float64 // MsgDelay: message costs scale by 1+Delay
}

// Plan is a deterministic fault schedule for one run.
type Plan struct {
	// Seed drives the message-loss coin flips; worker faults are fully
	// deterministic and ignore it.
	Seed uint64
	// Deadline is the native detector's heartbeat deadline in seconds
	// (zero means DefaultDeadline). The simulator needs no detector —
	// faults are injected into its event stream directly.
	Deadline float64
	Actions  []Action
}

// DefaultDeadline is the native detector's heartbeat deadline when the
// plan does not set one: long enough that a healthy worker crossing a
// chunk boundary is never suspected, short enough that tests recover
// in milliseconds.
const DefaultDeadline = 0.01

// String renders the plan in the -fault flag syntax; Parse(p.String())
// round-trips.
func (p *Plan) String() string {
	if p == nil {
		return ""
	}
	var parts []string
	if p.Seed != 0 {
		parts = append(parts, "seed:"+strconv.FormatUint(p.Seed, 10))
	}
	if p.Deadline != 0 {
		parts = append(parts, "deadline:"+formatF(p.Deadline))
	}
	for _, a := range p.Actions {
		switch a.Kind {
		case Crash:
			parts = append(parts, fmt.Sprintf("crash:%d@%d", a.Worker, a.After))
		case Stall:
			parts = append(parts, fmt.Sprintf("stall:%d@%d:%s", a.Worker, a.After, formatF(a.Duration)))
		case Slow:
			parts = append(parts, fmt.Sprintf("slow:%d@%d:%s", a.Worker, a.After, formatF(a.Factor)))
		case MsgDelay:
			parts = append(parts, "delay:"+formatF(a.Delay))
		case MsgLoss:
			parts = append(parts, "loss:"+formatF(a.Prob))
		}
	}
	return strings.Join(parts, ",")
}

func formatF(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// Parse reads the -fault flag syntax: a comma-separated list of
//
//	crash:W@A      worker W crashes at its A-th chunk boundary
//	stall:W@A:D    worker W stalls for duration D at its A-th boundary
//	slow:W@A:F     worker W runs F× slower from its A-th boundary on
//	delay:F        every simulated message costs (1+F)× its base time
//	loss:P         each simulated message is lost (and retransmitted)
//	               with probability P
//	seed:N         seed for the loss coin flips
//	deadline:D     native detector heartbeat deadline (seconds)
//
// An empty spec yields a nil plan.
func Parse(spec string) (*Plan, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return nil, nil
	}
	p := &Plan{}
	for _, item := range strings.Split(spec, ",") {
		item = strings.TrimSpace(item)
		if item == "" {
			continue
		}
		key, rest, ok := strings.Cut(item, ":")
		if !ok {
			return nil, fmt.Errorf("fault: %q is not key:value", item)
		}
		switch key {
		case "seed":
			v, err := strconv.ParseUint(rest, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("fault: bad seed %q", rest)
			}
			p.Seed = v
		case "deadline":
			v, err := strconv.ParseFloat(rest, 64)
			if err != nil || v <= 0 {
				return nil, fmt.Errorf("fault: bad deadline %q", rest)
			}
			p.Deadline = v
		case "delay":
			v, err := strconv.ParseFloat(rest, 64)
			if err != nil || v < 0 {
				return nil, fmt.Errorf("fault: bad delay %q", rest)
			}
			p.Actions = append(p.Actions, Action{Kind: MsgDelay, Delay: v})
		case "loss":
			v, err := strconv.ParseFloat(rest, 64)
			if err != nil || v < 0 || v >= 1 {
				return nil, fmt.Errorf("fault: bad loss probability %q (want [0, 1))", rest)
			}
			p.Actions = append(p.Actions, Action{Kind: MsgLoss, Prob: v})
		case "crash", "stall", "slow":
			a, err := parseWorkerAction(key, rest)
			if err != nil {
				return nil, err
			}
			p.Actions = append(p.Actions, a)
		default:
			return nil, fmt.Errorf("fault: unknown action %q (valid: crash, stall, slow, delay, loss, seed, deadline)", key)
		}
	}
	return p, nil
}

// parseWorkerAction reads W@A or W@A:X after a crash/stall/slow key.
func parseWorkerAction(key, rest string) (Action, error) {
	target, extra, hasExtra := strings.Cut(rest, ":")
	ws, as, ok := strings.Cut(target, "@")
	if !ok {
		return Action{}, fmt.Errorf("fault: %s:%q needs worker@chunk", key, rest)
	}
	w, err := strconv.Atoi(ws)
	if err != nil || w < 0 {
		return Action{}, fmt.Errorf("fault: bad worker %q", ws)
	}
	after, err := strconv.Atoi(as)
	if err != nil || after < 0 {
		return Action{}, fmt.Errorf("fault: bad chunk trigger %q", as)
	}
	a := Action{Worker: w, After: after}
	switch key {
	case "crash":
		if hasExtra {
			return Action{}, fmt.Errorf("fault: crash takes no extra parameter")
		}
		a.Kind = Crash
	case "stall":
		if !hasExtra {
			return Action{}, fmt.Errorf("fault: stall:%s needs a duration", rest)
		}
		d, err := strconv.ParseFloat(extra, 64)
		if err != nil || d <= 0 {
			return Action{}, fmt.Errorf("fault: bad stall duration %q", extra)
		}
		a.Kind, a.Duration = Stall, d
	case "slow":
		if !hasExtra {
			return Action{}, fmt.Errorf("fault: slow:%s needs a factor", rest)
		}
		f, err := strconv.ParseFloat(extra, 64)
		if err != nil || f < 1 {
			return Action{}, fmt.Errorf("fault: bad slow factor %q (want >= 1)", extra)
		}
		a.Kind, a.Factor = Slow, f
	}
	return a, nil
}

// HasWorkerFaults reports whether the plan targets any worker (crash,
// stall or slow) — the faults that need scheduler cooperation, as
// opposed to the message perturbations.
func (p *Plan) HasWorkerFaults() bool {
	if p == nil {
		return false
	}
	for _, a := range p.Actions {
		if a.Kind == Crash || a.Kind == Stall || a.Kind == Slow {
			return true
		}
	}
	return false
}

// NeedsDetector reports whether the plan can leave work stranded on an
// unresponsive worker (crash or stall) — the native backend starts its
// heartbeat detector only for these plans.
func (p *Plan) NeedsDetector() bool {
	if p == nil {
		return false
	}
	for _, a := range p.Actions {
		if a.Kind == Crash || a.Kind == Stall {
			return true
		}
	}
	return false
}

// HasMsgFaults reports whether the plan perturbs simulated messages.
func (p *Plan) HasMsgFaults() bool {
	if p == nil {
		return false
	}
	for _, a := range p.Actions {
		if a.Kind == MsgDelay || a.Kind == MsgLoss {
			return true
		}
	}
	return false
}

// Validate checks the plan against a concrete worker count. The one
// load-bearing rule: at least one worker must be free of both crash
// and stall actions. A crash removes a worker outright, and a stalled
// worker can be (safely but permanently) declared dead by the native
// detector, so a plan that crashes or stalls every worker has no
// guaranteed survivor to finish the run.
func (p *Plan) Validate(workers int) error {
	if p == nil {
		return nil
	}
	if workers < 1 {
		return fmt.Errorf("fault: plan needs at least one worker, got %d", workers)
	}
	hit := make([]bool, workers)
	for _, a := range p.Actions {
		switch a.Kind {
		case Crash, Stall, Slow:
			if a.Worker < 0 || a.Worker >= workers {
				return fmt.Errorf("fault: %s targets worker %d of %d", a.Kind, a.Worker, workers)
			}
			if a.Kind != Slow {
				hit[a.Worker] = true
			}
		}
	}
	for _, h := range hit {
		if !h {
			return nil
		}
	}
	return fmt.Errorf("fault: every one of the %d workers is crashed or stalled; at least one must survive", workers)
}

// Random builds a seeded random plan for the given worker count that
// always keeps at least one worker free of crash and stall actions.
// Fuzz campaigns use it to explore the fault space while staying
// inside the survivable region Validate accepts.
func Random(seed uint64, workers int) *Plan {
	rng := stats.NewRNG(seed ^ 0x5fa7f2c6b1e3d9a1)
	p := &Plan{Seed: seed, Deadline: 0.004}
	if workers < 2 {
		// Nothing survivable can target the only worker; perturb
		// messages at most.
		if rng.Bernoulli(0.5) {
			p.Actions = append(p.Actions, Action{Kind: MsgDelay, Delay: rng.Uniform(0, 1)})
		}
		return p
	}
	survivor := rng.Intn(workers)
	n := 1 + rng.Intn(3)
	for i := 0; i < n; i++ {
		w := rng.Intn(workers)
		after := rng.Intn(4)
		switch rng.Intn(3) {
		case 0:
			if w == survivor {
				w = (w + 1) % workers
			}
			p.Actions = append(p.Actions, Action{Kind: Crash, Worker: w, After: after})
		case 1:
			if w == survivor {
				w = (w + 1) % workers
			}
			p.Actions = append(p.Actions, Action{Kind: Stall, Worker: w, After: after,
				Duration: rng.Uniform(0.001, 0.02)})
		case 2:
			p.Actions = append(p.Actions, Action{Kind: Slow, Worker: w, After: after,
				Factor: 1 + rng.Uniform(0, 3)})
		}
	}
	if rng.Bernoulli(0.3) {
		p.Actions = append(p.Actions, Action{Kind: MsgDelay, Delay: rng.Uniform(0, 1)})
	}
	if rng.Bernoulli(0.3) {
		p.Actions = append(p.Actions, Action{Kind: MsgLoss, Prob: rng.Uniform(0, 0.5)})
	}
	return p
}

// Decision is what Begin tells an executor to do with the chunk it is
// about to start.
type Decision struct {
	// Crash: do not start the chunk; the worker stops participating.
	// Sticky — once a worker crashes, every later Begin returns Crash.
	Crash bool
	// Stall: do not start the chunk yet; suspend for this long, then
	// consult Begin again. Consumed — each stall action fires once.
	Stall float64
	// Slow: execute the chunk, but its tasks run this many times
	// slower. Zero means full speed.
	Slow float64
}

// workerState is one worker's injection state. Owned by the worker's
// goroutine on the native backend and by the single simulator
// goroutine on the simulated one, so no locking is needed.
type workerState struct {
	count    int // chunks started (Begin calls that said "proceed")
	crashed  bool
	crashAt  int // earliest crash trigger, or -1
	stalls   []Action
	stallPos int // stalls[:stallPos] have fired
	slows    []Action
	slowPos  int
	slowF    float64 // active multiplier (1 = none)
}

// Exec is the runtime injector built from a validated plan. A nil
// *Exec is valid and injects nothing, so fault-free runs pay one nil
// check per chunk.
type Exec struct {
	deadline   float64
	delayScale float64
	lossProb   float64
	rng        *stats.RNG
	ws         []workerState
}

// NewExec instantiates a plan's injector for a run on the given number
// of workers. A nil plan yields a nil Exec.
func NewExec(p *Plan, workers int) *Exec {
	if p == nil {
		return nil
	}
	x := &Exec{
		deadline:   p.Deadline,
		delayScale: 1,
		rng:        stats.NewRNG(p.Seed ^ 0x9e3779b97f4a7c15),
		ws:         make([]workerState, workers),
	}
	if x.deadline <= 0 {
		x.deadline = DefaultDeadline
	}
	for i := range x.ws {
		x.ws[i].crashAt = -1
		x.ws[i].slowF = 1
	}
	for _, a := range p.Actions {
		switch a.Kind {
		case MsgDelay:
			x.delayScale *= 1 + a.Delay
		case MsgLoss:
			x.lossProb = 1 - (1-x.lossProb)*(1-a.Prob)
		case Crash, Stall, Slow:
			if a.Worker < 0 || a.Worker >= workers {
				continue // Validate rejects these; be safe anyway
			}
			w := &x.ws[a.Worker]
			switch a.Kind {
			case Crash:
				if w.crashAt < 0 || a.After < w.crashAt {
					w.crashAt = a.After
				}
			case Stall:
				w.stalls = append(w.stalls, a)
			case Slow:
				w.slows = append(w.slows, a)
			}
		}
	}
	for i := range x.ws {
		sortByAfter(x.ws[i].stalls)
		sortByAfter(x.ws[i].slows)
	}
	return x
}

func sortByAfter(as []Action) {
	sort.SliceStable(as, func(i, j int) bool { return as[i].After < as[j].After })
}

// Deadline is the native detector's heartbeat deadline in seconds.
func (x *Exec) Deadline() float64 {
	if x == nil {
		return DefaultDeadline
	}
	return x.deadline
}

// Begin is the per-chunk injection point: worker w is about to start a
// chunk. The returned decision tells the executor to proceed (possibly
// slowed), to stall and ask again, or to crash. Begin must be called
// only from the goroutine that owns worker w.
func (x *Exec) Begin(w int) Decision {
	if x == nil || w < 0 || w >= len(x.ws) {
		return Decision{}
	}
	ws := &x.ws[w]
	if ws.crashed || (ws.crashAt >= 0 && ws.count >= ws.crashAt) {
		ws.crashed = true
		return Decision{Crash: true}
	}
	if ws.stallPos < len(ws.stalls) && ws.count >= ws.stalls[ws.stallPos].After {
		d := ws.stalls[ws.stallPos].Duration
		ws.stallPos++
		return Decision{Stall: d}
	}
	for ws.slowPos < len(ws.slows) && ws.count >= ws.slows[ws.slowPos].After {
		if f := ws.slows[ws.slowPos].Factor; f > ws.slowF {
			ws.slowF = f
		}
		ws.slowPos++
	}
	ws.count++
	if ws.slowF > 1 {
		return Decision{Slow: ws.slowF}
	}
	return Decision{}
}

// Crashed reports whether worker w has taken its crash decision.
func (x *Exec) Crashed(w int) bool {
	if x == nil || w < 0 || w >= len(x.ws) {
		return false
	}
	return x.ws[w].crashed
}

// MsgCost perturbs one simulated message cost: delayed by the
// cumulative delay scale, and — with the plan's loss probability —
// doubled to model a retransmission after a drop. Single-threaded
// (the simulator's event loop); pass it as machine.Config.MsgPerturb.
func (x *Exec) MsgCost(base float64) float64 {
	if x == nil {
		return base
	}
	c := base * x.delayScale
	if x.lossProb > 0 && x.rng.Bernoulli(x.lossProb) {
		c += base * x.delayScale
	}
	return c
}
