package fault

import (
	"strings"
	"testing"
)

func TestParseStringRoundTrip(t *testing.T) {
	specs := []string{
		"crash:1@2",
		"stall:2@3:0.05",
		"slow:0@0:4",
		"delay:0.5",
		"loss:0.25",
		"seed:7,deadline:0.01,crash:1@2,stall:2@0:0.003,slow:3@1:2.5,delay:0.1,loss:0.01",
	}
	for _, spec := range specs {
		p, err := Parse(spec)
		if err != nil {
			t.Fatalf("Parse(%q): %v", spec, err)
		}
		got := p.String()
		if got != spec {
			t.Errorf("Parse(%q).String() = %q", spec, got)
		}
		p2, err := Parse(got)
		if err != nil {
			t.Fatalf("re-Parse(%q): %v", got, err)
		}
		if p2.String() != got {
			t.Errorf("round trip unstable: %q -> %q", got, p2.String())
		}
	}
}

func TestParseEmpty(t *testing.T) {
	p, err := Parse("  ")
	if err != nil || p != nil {
		t.Fatalf("Parse(blank) = %v, %v; want nil, nil", p, err)
	}
	if (*Plan)(nil).String() != "" {
		t.Errorf("nil plan should render empty")
	}
}

func TestParseRejects(t *testing.T) {
	bad := []string{
		"explode:1@2",  // unknown kind
		"crash:1",      // missing trigger
		"crash:1@2:9",  // crash takes no parameter
		"stall:1@2",    // stall needs a duration
		"stall:1@2:-1", // negative duration
		"slow:1@2:0.5", // factor below 1
		"loss:1.5",     // probability out of range
		"delay:-1",     // negative delay
		"crash:-1@0",   // negative worker
		"deadline:0",   // non-positive deadline
		"seed:x",       // non-numeric seed
	}
	for _, spec := range bad {
		if _, err := Parse(spec); err == nil {
			t.Errorf("Parse(%q) accepted invalid spec", spec)
		}
	}
}

func TestValidateSurvivor(t *testing.T) {
	p, err := Parse("crash:0@0,stall:1@0:0.01")
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(2); err == nil {
		t.Error("plan crashing/stalling every worker should not validate")
	}
	if err := p.Validate(3); err != nil {
		t.Errorf("plan with a free worker rejected: %v", err)
	}
	if err := p.Validate(1); err == nil {
		t.Error("crash of the only worker should not validate")
	}
	slowOnly, _ := Parse("slow:0@0:2")
	if err := slowOnly.Validate(1); err != nil {
		t.Errorf("slow-only plan should validate on one worker: %v", err)
	}
	oob, _ := Parse("crash:5@0")
	if err := oob.Validate(2); err == nil {
		t.Error("out-of-range worker should not validate")
	}
}

func TestRandomAlwaysSurvivable(t *testing.T) {
	for seed := uint64(1); seed <= 200; seed++ {
		for _, workers := range []int{1, 2, 3, 4, 8} {
			p := Random(seed, workers)
			if err := p.Validate(workers); err != nil {
				t.Fatalf("Random(%d, %d) invalid: %v\nplan: %s", seed, workers, err, p)
			}
		}
	}
}

func TestBeginTriggerSemantics(t *testing.T) {
	p, err := Parse("crash:0@2,stall:1@1:0.5,slow:2@1:3")
	if err != nil {
		t.Fatal(err)
	}
	x := NewExec(p, 3)

	// Worker 0: two clean chunks, then a sticky crash.
	for i := 0; i < 2; i++ {
		if d := x.Begin(0); d.Crash || d.Stall != 0 || d.Slow != 0 {
			t.Fatalf("worker 0 chunk %d: unexpected decision %+v", i, d)
		}
	}
	if d := x.Begin(0); !d.Crash {
		t.Fatal("worker 0 should crash at its third chunk boundary")
	}
	if d := x.Begin(0); !d.Crash {
		t.Fatal("crash must be sticky")
	}
	if !x.Crashed(0) || x.Crashed(1) {
		t.Fatal("Crashed() disagrees with decisions")
	}

	// Worker 1: one clean chunk, one stall (consumed), then clean.
	if d := x.Begin(1); d.Stall != 0 {
		t.Fatal("worker 1 stalled too early")
	}
	if d := x.Begin(1); d.Stall != 0.5 {
		t.Fatalf("worker 1 expected 0.5 stall, got %+v", x.Begin(1))
	}
	if d := x.Begin(1); d.Stall != 0 || d.Crash {
		t.Fatalf("stall must fire once, got %+v", d)
	}

	// Worker 2: slow activates at the second chunk and persists.
	if d := x.Begin(2); d.Slow != 0 {
		t.Fatal("worker 2 slowed too early")
	}
	for i := 0; i < 3; i++ {
		if d := x.Begin(2); d.Slow != 3 {
			t.Fatalf("worker 2 chunk %d: want slow ×3, got %+v", i, d)
		}
	}
}

func TestNilExecIsFree(t *testing.T) {
	var x *Exec
	if d := x.Begin(0); d.Crash || d.Stall != 0 || d.Slow != 0 {
		t.Fatal("nil Exec must decide nothing")
	}
	if got := x.MsgCost(2.5); got != 2.5 {
		t.Fatalf("nil Exec perturbed a message: %v", got)
	}
	if x.Deadline() != DefaultDeadline {
		t.Fatal("nil Exec deadline")
	}
}

func TestMsgCost(t *testing.T) {
	p, err := Parse("delay:0.5")
	if err != nil {
		t.Fatal(err)
	}
	x := NewExec(p, 1)
	if got := x.MsgCost(2); got != 3 {
		t.Fatalf("delay:0.5 on base 2 = %v, want 3", got)
	}
	// Loss adds a retransmission sometimes; cost is always >= the
	// delayed base and deterministic for a fixed seed.
	lp, err := Parse("seed:3,loss:0.5")
	if err != nil {
		t.Fatal(err)
	}
	a := NewExec(lp, 1)
	b := NewExec(lp, 1)
	sawRetransmit := false
	for i := 0; i < 64; i++ {
		ca, cb := a.MsgCost(1), b.MsgCost(1)
		if ca != cb {
			t.Fatal("loss perturbation is not deterministic for a fixed seed")
		}
		if ca < 1 {
			t.Fatalf("message got cheaper: %v", ca)
		}
		if ca == 2 {
			sawRetransmit = true
		}
	}
	if !sawRetransmit {
		t.Fatal("loss:0.5 never retransmitted in 64 messages")
	}
}

func TestPlanStringNamesKinds(t *testing.T) {
	for k, want := range map[Kind]string{Crash: "crash", Stall: "stall", Slow: "slow", MsgDelay: "delay", MsgLoss: "loss"} {
		if k.String() != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, k.String(), want)
		}
	}
	if !strings.Contains(Kind(99).String(), "?") {
		t.Error("unknown kind should render as ?")
	}
}
