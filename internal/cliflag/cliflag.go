// Package cliflag holds the flag types every orchestra command shares:
// execution modes, backend selection, and fault plans. Each is a
// flag.Value whose Set validates eagerly, so a typo fails at parse time
// with the flag package's standard diagnostics ("invalid value ... for
// flag -mode: ...") instead of after the workload has been built — and
// every command that accepts -mode/-backend/-fault accepts exactly the
// same syntax, because they all parse through here.
package cliflag

import (
	"flag"
	"fmt"
	"strings"

	_ "orchestra/internal/core" // register backends and kernels
	"orchestra/internal/fault"
	"orchestra/internal/rts"
)

// ModesValue is a -mode/-modes flag: a comma list of execution modes,
// or "all". The zero value is invalid; construct through Modes.
type ModesValue struct {
	raw   string
	modes []rts.Mode
}

// Modes registers a modes flag on fs with the given default (which
// must itself parse) and returns the value to read after fs.Parse.
func Modes(fs *flag.FlagSet, name, def, usage string) *ModesValue {
	v := &ModesValue{}
	if err := v.Set(def); err != nil {
		panic(fmt.Sprintf("cliflag: bad default %q for -%s: %v", def, name, err))
	}
	fs.Var(v, name, usage)
	return v
}

// Set implements flag.Value, accepting rts.ParseModes syntax.
func (v *ModesValue) Set(s string) error {
	ms, err := rts.ParseModes(s)
	if err != nil {
		return err
	}
	v.raw, v.modes = s, ms
	return nil
}

// String implements flag.Value.
func (v *ModesValue) String() string { return v.raw }

// Modes returns the parsed mode list, in the order given.
func (v *ModesValue) Modes() []rts.Mode { return v.modes }

// Single returns the mode when exactly one was requested, and an error
// naming the flag otherwise — for commands (or command options like
// -trace) that cannot run a mode sweep.
func (v *ModesValue) Single() (rts.Mode, error) {
	if len(v.modes) != 1 {
		return 0, fmt.Errorf("need a single mode, not %q", v.raw)
	}
	return v.modes[0], nil
}

// BackendValue is a -backend flag: one of rts.BackendNames, optionally
// followed by backend-specific options ("dist:heartbeat_ms=5,bin=/x").
// The name is validated at parse time against the backend registry;
// the backend itself is constructed later via New, when the processor
// count is known — unknown options fail there with a structured
// rts.OptionError listing what the backend does accept.
type BackendValue struct {
	name string
	info rts.BackendInfo
	opts map[string]string
}

// Backend registers a backend flag on fs. def must be a valid backend
// name.
func Backend(fs *flag.FlagSet, name, def, usage string) *BackendValue {
	v := &BackendValue{}
	if err := v.Set(def); err != nil {
		panic(fmt.Sprintf("cliflag: bad default %q for -%s: %v", def, name, err))
	}
	fs.Var(v, name, usage)
	return v
}

// Set implements flag.Value, rejecting unknown backend names.
func (v *BackendValue) Set(s string) error {
	name, rest, hasOpts := strings.Cut(s, ":")
	info, ok := rts.LookupBackend(name)
	if !ok {
		return fmt.Errorf("unknown backend %q (valid: %s)", name, strings.Join(rts.BackendNames(), ", "))
	}
	opts := map[string]string{}
	if hasOpts && rest != "" {
		for _, kv := range strings.Split(rest, ",") {
			k, val, ok := strings.Cut(kv, "=")
			if !ok || k == "" {
				return fmt.Errorf("bad backend option %q (want key=value)", kv)
			}
			opts[k] = val
		}
	}
	v.name, v.info, v.opts = name, info, opts
	return nil
}

// String implements flag.Value.
func (v *BackendValue) String() string { return v.name }

// Name returns the validated backend name.
func (v *BackendValue) Name() string { return v.name }

// Measured reports whether the selected backend executes real work in
// wall-clock time — the commands branch on this for kernel selection
// and unit labels (a modeled backend wants modeled task times; a
// measured one wants tasks that actually compute).
func (v *BackendValue) Measured() bool { return v.info.Measured }

// Distributed reports whether the selected backend runs worker
// processes rather than goroutines.
func (v *BackendValue) Distributed() bool { return v.info.Distributed }

// New constructs the selected backend for p processors through the
// backend registry, applying any options given on the flag.
func (v *BackendValue) New(p int) (rts.Backend, error) {
	return rts.OpenBackend(v.name, rts.BackendConfig{Processors: p, Options: v.opts})
}

// FaultValue is a -fault flag: a fault plan in internal/fault syntax,
// empty for none.
type FaultValue struct {
	raw  string
	plan *fault.Plan
}

// Fault registers a fault-plan flag on fs; the empty default means no
// injection.
func Fault(fs *flag.FlagSet, name, usage string) *FaultValue {
	v := &FaultValue{}
	fs.Var(v, name, usage)
	return v
}

// Set implements flag.Value, accepting fault.Parse syntax.
func (v *FaultValue) Set(s string) error {
	if s == "" {
		v.raw, v.plan = "", nil
		return nil
	}
	p, err := fault.Parse(s)
	if err != nil {
		return err
	}
	v.raw, v.plan = s, p
	return nil
}

// String implements flag.Value.
func (v *FaultValue) String() string { return v.raw }

// Plan returns the parsed plan, nil when the flag was not given.
func (v *FaultValue) Plan() *fault.Plan { return v.plan }
