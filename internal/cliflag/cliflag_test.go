package cliflag

import (
	"flag"
	"io"
	"strings"
	"testing"

	"orchestra/internal/rts"
)

func newFS() *flag.FlagSet {
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	return fs
}

func TestModesFlag(t *testing.T) {
	cases := []struct {
		args    []string
		want    []rts.Mode
		wantErr bool
	}{
		{nil, []rts.Mode{rts.ModeSplit}, false},
		{[]string{"-mode", "static"}, []rts.Mode{rts.ModeStatic}, false},
		{[]string{"-mode", "taper"}, []rts.Mode{rts.ModeTaper}, false},
		{[]string{"-mode", "static,split"}, []rts.Mode{rts.ModeStatic, rts.ModeSplit}, false},
		{[]string{"-mode", "all"}, []rts.Mode{rts.ModeStatic, rts.ModeTaper, rts.ModeSplit}, false},
		{[]string{"-mode", "bogus"}, nil, true},
		{[]string{"-mode", ""}, nil, true},
	}
	for _, c := range cases {
		fs := newFS()
		v := Modes(fs, "mode", "split", "usage")
		err := fs.Parse(c.args)
		if c.wantErr {
			if err == nil {
				t.Errorf("%v: parse succeeded, want error", c.args)
			}
			continue
		}
		if err != nil {
			t.Errorf("%v: %v", c.args, err)
			continue
		}
		got := v.Modes()
		if len(got) != len(c.want) {
			t.Errorf("%v: modes = %v, want %v", c.args, got, c.want)
			continue
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("%v: modes[%d] = %v, want %v", c.args, i, got[i], c.want[i])
			}
		}
	}
}

func TestModesSingle(t *testing.T) {
	fs := newFS()
	v := Modes(fs, "mode", "split", "usage")
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	m, err := v.Single()
	if err != nil || m != rts.ModeSplit {
		t.Fatalf("Single() = %v, %v; want split", m, err)
	}
	if err := v.Set("all"); err != nil {
		t.Fatal(err)
	}
	if _, err := v.Single(); err == nil {
		t.Fatal("Single() on a mode list succeeded, want error")
	}
}

func TestBackendFlag(t *testing.T) {
	cases := []struct {
		args         []string
		wantName     string
		wantMeasured bool
		wantDist     bool
		wantErr      bool
	}{
		{nil, "sim", false, false, false},
		{[]string{"-backend", "sim"}, "sim", false, false, false},
		{[]string{"-backend", "native"}, "native", true, false, false},
		{[]string{"-backend", "dist"}, "dist", true, true, false},
		{[]string{"-backend", "dist:heartbeat_ms=5,timeout_ms=500"}, "dist", true, true, false},
		{[]string{"-backend", "gpu"}, "", false, false, true},
		{[]string{"-backend", ""}, "", false, false, true},
		{[]string{"-backend", "sim:heartbeat"}, "", false, false, true}, // option without '='
	}
	for _, c := range cases {
		fs := newFS()
		v := Backend(fs, "backend", "sim", "usage")
		err := fs.Parse(c.args)
		if c.wantErr {
			if err == nil {
				t.Errorf("%v: parse succeeded, want error", c.args)
			}
			continue
		}
		if err != nil {
			t.Errorf("%v: %v", c.args, err)
			continue
		}
		if v.Name() != c.wantName || v.Measured() != c.wantMeasured || v.Distributed() != c.wantDist {
			t.Errorf("%v: name=%q measured=%v distributed=%v, want %q/%v/%v",
				c.args, v.Name(), v.Measured(), v.Distributed(), c.wantName, c.wantMeasured, c.wantDist)
		}
		be, err := v.New(4)
		if err != nil {
			t.Errorf("%v: New: %v", c.args, err)
			continue
		}
		if be.Name() != c.wantName {
			t.Errorf("%v: backend.Name() = %q, want %q", c.args, be.Name(), c.wantName)
		}
	}
}

// TestBackendFlagBadOption checks that an unknown option name is
// rejected at construction with the structured option error.
func TestBackendFlagBadOption(t *testing.T) {
	fs := newFS()
	v := Backend(fs, "backend", "sim", "usage")
	if err := fs.Parse([]string{"-backend", "dist:warp=9"}); err != nil {
		t.Fatal(err)
	}
	_, err := v.New(2)
	if err == nil {
		t.Fatal("unknown backend option accepted")
	}
	if !strings.Contains(err.Error(), "warp") {
		t.Fatalf("error %q does not name the bad option", err)
	}
}

func TestFaultFlag(t *testing.T) {
	cases := []struct {
		args      []string
		wantNil   bool
		wantErr   bool
		errSubstr string
	}{
		{nil, true, false, ""},
		{[]string{"-fault", ""}, true, false, ""},
		{[]string{"-fault", "crash:0@1,deadline:0.01"}, false, false, ""},
		{[]string{"-fault", "stall:1@0:0.5"}, false, false, ""},
		{[]string{"-fault", "explode:3"}, true, true, "explode"},
	}
	for _, c := range cases {
		fs := newFS()
		v := Fault(fs, "fault", "usage")
		err := fs.Parse(c.args)
		if c.wantErr {
			if err == nil {
				t.Errorf("%v: parse succeeded, want error", c.args)
			} else if c.errSubstr != "" && !strings.Contains(err.Error(), c.errSubstr) {
				t.Errorf("%v: error %q does not mention %q", c.args, err, c.errSubstr)
			}
			continue
		}
		if err != nil {
			t.Errorf("%v: %v", c.args, err)
			continue
		}
		if (v.Plan() == nil) != c.wantNil {
			t.Errorf("%v: plan nil=%v, want %v", c.args, v.Plan() == nil, c.wantNil)
		}
	}
}

func TestBadDefaultsPanic(t *testing.T) {
	for _, f := range []func(){
		func() { Modes(newFS(), "mode", "bogus", "") },
		func() { Backend(newFS(), "backend", "bogus", "") },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("bad default did not panic")
				}
			}()
			f()
		}()
	}
}
