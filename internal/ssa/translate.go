package ssa

import (
	"orchestra/internal/source"
	"orchestra/internal/symbolic"
)

// TranslateExpr converts a source expression into a linear symbolic
// expression at a program point described by env. Scalar references are
// resolved to their reaching SSA definitions, and definitions with known
// linear values are inlined (definitions store fully expanded values, so
// one level of lookup suffices). Expressions outside the linear domain
// — array references, function calls, real literals, division, and
// non-constant products — report ok=false.
func (in *Info) TranslateExpr(e source.Expr, env Env) (symbolic.Expr, bool) {
	switch e := e.(type) {
	case *source.Num:
		if e.IsReal {
			return symbolic.Expr{}, false
		}
		return symbolic.Const(e.Int), true
	case *source.Ident:
		name, ok := env[e.Name]
		if !ok {
			// Unknown identifier (e.g. never assigned): treat the bare
			// variable name as an opaque symbol.
			return symbolic.Var(symbolic.Name(e.Name)), true
		}
		if d := in.Defs[name]; d != nil && d.HasValue {
			return d.Value, true
		}
		return symbolic.Var(name), true
	case *source.Un:
		if e.Op != "-" {
			return symbolic.Expr{}, false
		}
		x, ok := in.TranslateExpr(e.X, env)
		if !ok {
			return symbolic.Expr{}, false
		}
		return x.Neg(), true
	case *source.Bin:
		l, okL := in.TranslateExpr(e.L, env)
		r, okR := in.TranslateExpr(e.R, env)
		if !okL || !okR {
			return symbolic.Expr{}, false
		}
		switch e.Op {
		case "+":
			return l.Add(r), true
		case "-":
			return l.Sub(r), true
		case "*":
			if c, ok := l.IsConst(); ok {
				return r.Scale(c), true
			}
			if c, ok := r.IsConst(); ok {
				return l.Scale(c), true
			}
			return symbolic.Expr{}, false
		case "/":
			// Exact constant division only.
			lc, okl := l.IsConst()
			rc, okr := r.IsConst()
			if okl && okr && rc != 0 && lc%rc == 0 {
				return symbolic.Const(lc / rc), true
			}
			return symbolic.Expr{}, false
		}
		return symbolic.Expr{}, false
	}
	return symbolic.Expr{}, false
}

// TranslateAtom converts an expression to a predicate atom: a linear
// expression or an array element reference with linear indices.
func (in *Info) TranslateAtom(e source.Expr, env Env) (symbolic.Atom, bool) {
	if x, ok := in.TranslateExpr(e, env); ok {
		return symbolic.ExprAtom(x), true
	}
	if ar, ok := e.(*source.ArrayRef); ok {
		idx := make([]symbolic.Expr, len(ar.Index))
		for i, ie := range ar.Index {
			x, ok := in.TranslateExpr(ie, env)
			if !ok {
				return symbolic.Atom{}, false
			}
			idx[i] = x
		}
		return symbolic.ElemAtom(symbolic.Name(ar.Name), idx...), true
	}
	return symbolic.Atom{}, false
}

// cmpOps maps source comparison operators to symbolic ones.
var cmpOps = map[string]symbolic.CmpOp{
	"==": symbolic.EQ,
	"!=": symbolic.NE,
	"<":  symbolic.LT,
	"<=": symbolic.LE,
	">":  symbolic.GT,
	">=": symbolic.GE,
}

// TranslatePred converts a boolean source expression into a conjunction
// of predicates. Conjunctions (&&) merge; disjunctions and anything
// else untranslatable report ok=false, and callers must treat the
// condition as opaque (may be true or false).
func (in *Info) TranslatePred(e source.Expr, env Env) (symbolic.Conj, bool) {
	switch e := e.(type) {
	case *source.Bin:
		if e.Op == "&&" {
			l, okL := in.TranslatePred(e.L, env)
			r, okR := in.TranslatePred(e.R, env)
			if !okL || !okR {
				return nil, false
			}
			return l.Merge(r), true
		}
		op, isCmp := cmpOps[e.Op]
		if !isCmp {
			return nil, false
		}
		l, okL := in.TranslateAtom(e.L, env)
		r, okR := in.TranslateAtom(e.R, env)
		if !okL || !okR {
			return nil, false
		}
		return symbolic.Conj{symbolic.NewPred(l, op, r)}, true
	}
	return nil, false
}
