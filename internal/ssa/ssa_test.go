package ssa

import (
	"testing"

	"orchestra/internal/source"
	"orchestra/internal/symbolic"
)

func convert(t *testing.T, src string) (*source.Program, *Info) {
	t.Helper()
	p, err := source.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return p, Convert(p)
}

func TestEntryDefinitions(t *testing.T) {
	_, in := convert(t, `
program p
  integer n, a
  real x(n)
  a = n
end
`)
	// n and a have entry versions; x is an array (no scalar version).
	foundN := false
	for _, d := range in.Defs {
		if d.Var == "n" && d.Kind == DefEntry {
			foundN = true
		}
		if d.Var == "x" {
			t.Fatal("array x received a scalar definition")
		}
	}
	if !foundN {
		t.Fatal("no entry definition for n")
	}
}

func TestAssignVersioning(t *testing.T) {
	p, in := convert(t, `
program p
  integer a, b
  a = 1
  b = a + 2
  a = a + b
end
`)
	s0 := p.Body[0].(*source.Assign)
	s1 := p.Body[1].(*source.Assign)
	s2 := p.Body[2].(*source.Assign)

	// Before the first assignment, a is the entry version.
	envBefore := in.AtStmt[s0]
	d0 := in.Defs[envBefore["a"]]
	if d0.Kind != DefEntry {
		t.Fatalf("pre-version of a is %v", d0.Kind)
	}
	// b = a + 2 sees a's assigned version with value 1, so b's value is 3.
	env1 := in.AtStmt[s1]
	da := in.Defs[env1["a"]]
	if !da.HasValue || !da.Value.Equal(symbolic.Const(1)) {
		t.Fatalf("a's value = %v (has=%v)", da.Value, da.HasValue)
	}
	env2 := in.AtStmt[s2]
	db := in.Defs[env2["b"]]
	if !db.HasValue || !db.Value.Equal(symbolic.Const(3)) {
		t.Fatalf("b's value = %v (has=%v)", db.Value, db.HasValue)
	}
	// a = a + b gives a the value 4.
	var final *Def
	for _, d := range in.Defs {
		if d.Var == "a" && d.Kind == DefAssign && d.HasValue && d.Value.Equal(symbolic.Const(4)) {
			final = d
		}
	}
	if final == nil {
		t.Fatal("final a = 4 not computed")
	}
}

func TestSymbolicValueInlining(t *testing.T) {
	p, in := convert(t, `
program p
  integer n, j, col
  real q(n, n)
  j = col - 1
  q(1, j) = 0
end
`)
	st := p.Body[1].(*source.Assign)
	env := in.AtStmt[st]
	ref := st.LHS.(*source.ArrayRef)
	sub, ok := in.TranslateExpr(ref.Index[1], env)
	if !ok {
		t.Fatal("subscript not translatable")
	}
	// j inlines to col.<entry> - 1.
	colName := env["col"]
	want := symbolic.Var(colName).AddConst(-1)
	if !sub.Equal(want) {
		t.Fatalf("subscript = %v, want %v", sub, want)
	}
}

func TestInductionDefinition(t *testing.T) {
	p, in := convert(t, `
program p
  integer n
  real x(n)
  do i = 2, n - 1
    x(i) = 0
  end do
end
`)
	loop := p.Body[0].(*source.Do)
	env := in.InsideLoop[loop]
	d := in.Defs[env["i"]]
	if d.Kind != DefInduction {
		t.Fatalf("i's def = %v", d.Kind)
	}
	if len(d.Ranges) != 1 {
		t.Fatalf("ranges = %d", len(d.Ranges))
	}
	r := d.Ranges[0]
	if !r.Start.Equal(symbolic.Const(2)) {
		t.Fatalf("start = %v", r.Start)
	}
	// End is n.1 - 1 for entry version of n.
	nName := in.AtStmt[loop]["n"]
	if !r.End.Equal(symbolic.Var(nName).AddConst(-1)) {
		t.Fatalf("end = %v", r.End)
	}
}

func TestDiscontinuousInductionRanges(t *testing.T) {
	p, in := convert(t, `
program p
  integer n, a
  real x(n)
  do i = 1, a - 1 and a + 1, n
    x(i) = 0
  end do
end
`)
	loop := p.Body[0].(*source.Do)
	d := in.Defs[in.InsideLoop[loop]["i"]]
	if len(d.Ranges) != 2 {
		t.Fatalf("ranges = %d, want 2", len(d.Ranges))
	}
}

func TestPostLoopVersionIsOpaque(t *testing.T) {
	p, in := convert(t, `
program p
  integer n, k
  real x(n)
  do i = 1, n
    x(i) = 0
  end do
  k = i
end
`)
	after := p.Body[1].(*source.Assign)
	env := in.AtStmt[after]
	d := in.Defs[env["i"]]
	if d.Kind != DefPostLoop {
		t.Fatalf("post-loop i = %v", d.Kind)
	}
	if d.HasValue {
		t.Fatal("post-loop induction version must be opaque")
	}
	// It must differ from the in-loop version.
	loop := p.Body[0].(*source.Do)
	if in.InsideLoop[loop]["i"] == env["i"] {
		t.Fatal("post-loop version equals in-loop version")
	}
}

func TestLoopCarriedPhi(t *testing.T) {
	p, in := convert(t, `
program p
  integer n, s
  real x(n)
  s = 0
  do i = 1, n
    s = s + 1
  end do
end
`)
	loop := p.Body[1].(*source.Do)
	env := in.InsideLoop[loop]
	d := in.Defs[env["s"]]
	if d.Kind != DefPhi {
		t.Fatalf("loop-carried s = %v", d.Kind)
	}
	if len(d.Args) != 2 {
		t.Fatalf("phi args = %d", len(d.Args))
	}
	if d.HasValue {
		t.Fatal("loop-carried phi with changing value must be opaque")
	}
}

func TestBranchPhi(t *testing.T) {
	p, in := convert(t, `
program p
  integer a, b, c
  if (a > 0) then
    b = 1
  else
    b = 2
  end if
  c = b
end
`)
	after := p.Body[1].(*source.Assign)
	d := in.Defs[in.AtStmt[after]["b"]]
	if d.Kind != DefPhi || len(d.Args) != 2 {
		t.Fatalf("b after if = %+v", d)
	}
	if d.HasValue {
		t.Fatal("phi of 1 and 2 must be opaque")
	}
}

func TestPhiWithAgreeingArgsResolves(t *testing.T) {
	p, in := convert(t, `
program p
  integer a, b, c
  if (a > 0) then
    b = 5
  else
    b = 5
  end if
  c = b
end
`)
	after := p.Body[1].(*source.Assign)
	d := in.Defs[in.AtStmt[after]["b"]]
	if !d.HasValue || !d.Value.Equal(symbolic.Const(5)) {
		t.Fatalf("agreeing phi not resolved: %+v", d)
	}
}

func TestBranchContext(t *testing.T) {
	p, in := convert(t, `
program p
  integer a, b
  if (a > 3) then
    b = 1
  else
    b = 2
  end if
end
`)
	ifStmt := p.Body[0].(*source.If)
	thenStmt := ifStmt.Then[0]
	elseStmt := ifStmt.Else[0]
	aName := in.AtStmt[ifStmt]["a"]
	thenCtx := in.Ctx[thenStmt]
	if !thenCtx.Implies(symbolic.CmpExpr(symbolic.Var(aName), symbolic.GT, symbolic.Const(3))) {
		t.Fatalf("then ctx = %v", thenCtx)
	}
	elseCtx := in.Ctx[elseStmt]
	if !elseCtx.Implies(symbolic.CmpExpr(symbolic.Var(aName), symbolic.LE, symbolic.Const(3))) {
		t.Fatalf("else ctx = %v", elseCtx)
	}
}

func TestLoopBodyContext(t *testing.T) {
	p, in := convert(t, `
program p
  integer n
  integer mask(n)
  real x(n)
  do i = 1, n where (mask(i) != 0)
    x(i) = 0
  end do
end
`)
	loop := p.Body[0].(*source.Do)
	ctx := in.BodyCtx[loop]
	iName := in.InsideLoop[loop]["i"]
	iv := symbolic.Var(iName)
	if !ctx.Implies(symbolic.CmpExpr(iv, symbolic.GE, symbolic.Const(1))) {
		t.Fatalf("ctx missing lower bound: %v", ctx)
	}
	// The where guard must appear as a mask predicate.
	guard := symbolic.NewPred(
		symbolic.ElemAtom("mask", iv), symbolic.NE, symbolic.ExprAtom(symbolic.Const(0)))
	if !ctx.Implies(guard) {
		t.Fatalf("ctx missing where guard: %v", ctx)
	}
}

func TestCallKillsScalar(t *testing.T) {
	p, in := convert(t, `
program p
  integer a, b
  a = 1
  call f(a)
  b = a
end
`)
	last := p.Body[2].(*source.Assign)
	d := in.Defs[in.AtStmt[last]["a"]]
	if d.Kind != DefCall || d.HasValue {
		t.Fatalf("a after call = %+v", d)
	}
}

func TestNestedLoopInduction(t *testing.T) {
	p, in := convert(t, `
program p
  integer n
  real x(n, n)
  do i = 1, n
    do j = i, n
      x(j, i) = 0
    end do
  end do
end
`)
	outer := p.Body[0].(*source.Do)
	inner := outer.Body[0].(*source.Do)
	dj := in.Defs[in.InsideLoop[inner]["j"]]
	// j's lower bound is the induction name of i.
	iName := in.InsideLoop[outer]["i"]
	if !dj.Ranges[0].Start.Equal(symbolic.Var(iName)) {
		t.Fatalf("j start = %v, want %v", dj.Ranges[0].Start, iName)
	}
}

func TestTranslatePredForms(t *testing.T) {
	p, in := convert(t, `
program p
  integer a, b, s
  integer m(10)
  if (a > 1 && b <= a) then
    s = 1
  end if
  if (m(a) == 0) then
    s = 2
  end if
end
`)
	if1 := p.Body[0].(*source.If)
	env := in.AtStmt[if1]
	conj, ok := in.TranslatePred(if1.Cond, env)
	if !ok || len(conj) != 2 {
		t.Fatalf("conj = %v, ok = %v", conj, ok)
	}
	if2 := p.Body[1].(*source.If)
	conj2, ok := in.TranslatePred(if2.Cond, env)
	if !ok || len(conj2) != 1 {
		t.Fatalf("elem pred = %v, ok = %v", conj2, ok)
	}
	if !conj2[0].Lhs.IsElem() {
		t.Fatal("lhs should be array element")
	}
}

func TestTranslateExprFailures(t *testing.T) {
	p, in := convert(t, `
program p
  integer a, b
  real q(10), r
  a = b * b
  a = b / 3
  r = q(1)
  r = 1.5
  a = f(b)
end
`)
	for i, wantOK := range []bool{false, false, false, false, false} {
		st := p.Body[i].(*source.Assign)
		_, ok := in.TranslateExpr(st.RHS, in.AtStmt[st])
		if ok != wantOK {
			t.Errorf("stmt %d: translate ok = %v, want %v", i, ok, wantOK)
		}
	}
	// But 6/3 is exact constant division.
	p2, in2 := convert(t, "program p\n integer a\n a = 6 / 3\nend\n")
	st := p2.Body[0].(*source.Assign)
	v, ok := in2.TranslateExpr(st.RHS, in2.AtStmt[st])
	if !ok || !v.Equal(symbolic.Const(2)) {
		t.Fatalf("6/3 = %v, %v", v, ok)
	}
}

func TestStrideTranslation(t *testing.T) {
	p, in := convert(t, `
program p
  integer n
  real x(n)
  do i = 2, n, 2
    x(i) = 0
  end do
end
`)
	loop := p.Body[0].(*source.Do)
	d := in.Defs[in.InsideLoop[loop]["i"]]
	if d.Ranges[0].Skip != 2 {
		t.Fatalf("skip = %d", d.Ranges[0].Skip)
	}
}

func TestAggregatePropagation(t *testing.T) {
	// The paper's step 4: a value assigned through an aggregate and
	// then loaded back into a scalar is recovered.
	p, in := convert(t, `
program p
  integer n, k
  real x(n)
  x(1) = n + 2
  k = x(1)
end
`)
	last := p.Body[1].(*source.Assign)
	env := in.AtStmt[last]
	// k's def: find the def created for k by the second assignment.
	var kDef *Def
	for _, d := range in.Defs {
		if d.Var == "k" && d.Kind == DefAssign {
			kDef = d
		}
	}
	_ = env
	if kDef == nil || !kDef.HasValue {
		t.Fatalf("k did not receive the propagated value: %+v", kDef)
	}
	nName := in.AtStmt[p.Body[0].(*source.Assign)]["n"]
	if !kDef.Value.Equal(symbolic.Var(nName).AddConst(2)) {
		t.Fatalf("k = %v, want n+2", kDef.Value)
	}
}

func TestAggregatePropagationInvalidatedByAliasingStore(t *testing.T) {
	p, in := convert(t, `
program p
  integer n, j, k
  real x(n)
  x(1) = 5
  x(j) = 9
  k = x(1)
end
`)
	_ = p
	var kDef *Def
	for _, d := range in.Defs {
		if d.Var == "k" && d.Kind == DefAssign {
			kDef = d
		}
	}
	if kDef != nil && kDef.HasValue {
		t.Fatalf("k recovered a value through a may-aliasing store: %v", kDef.Value)
	}
}

func TestAggregatePropagationSurvivesDistinctStore(t *testing.T) {
	_, in := convert(t, `
program p
  integer n, k
  real x(n)
  x(1) = 5
  x(2) = 9
  k = x(1)
end
`)
	var kDef *Def
	for _, d := range in.Defs {
		if d.Var == "k" && d.Kind == DefAssign {
			kDef = d
		}
	}
	if kDef == nil || !kDef.HasValue || !kDef.Value.Equal(symbolic.Const(5)) {
		t.Fatalf("provably distinct store invalidated the cache: %+v", kDef)
	}
}

func TestAggregatePropagationClearedByControlFlow(t *testing.T) {
	_, in := convert(t, `
program p
  integer n, k
  real x(n)
  x(1) = 5
  do i = 1, n
    x(i) = 0
  end do
  k = x(1)
end
`)
	var kDef *Def
	for _, d := range in.Defs {
		if d.Var == "k" && d.Kind == DefAssign {
			kDef = d
		}
	}
	if kDef != nil && kDef.HasValue {
		t.Fatalf("cache survived a loop: %v", kDef.Value)
	}
}

func TestAggregatePropagationClearedByCall(t *testing.T) {
	_, in := convert(t, `
program p
  integer n, k
  real x(n)
  x(1) = 5
  call touch(x)
  k = x(1)
end
`)
	var kDef *Def
	for _, d := range in.Defs {
		if d.Var == "k" && d.Kind == DefAssign {
			kDef = d
		}
	}
	if kDef != nil && kDef.HasValue {
		t.Fatalf("cache survived a call: %v", kDef.Value)
	}
}

func TestAggregatePropagationSharpensSubscripts(t *testing.T) {
	// The recovered value feeds a later subscript, producing a point
	// access where the analysis would otherwise widen to the whole
	// array.
	p, in := convert(t, `
program p
  integer n, k
  real x(n), y(n)
  x(1) = 3
  k = x(1)
  y(k) = 1
end
`)
	st := p.Body[2].(*source.Assign)
	env := in.AtStmt[st]
	ref := st.LHS.(*source.ArrayRef)
	sub, ok := in.TranslateExpr(ref.Index[0], env)
	if !ok || !sub.Equal(symbolic.Const(3)) {
		t.Fatalf("subscript = %v ok=%v, want 3", sub, ok)
	}
}
