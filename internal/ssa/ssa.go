// Package ssa converts mini-Fortran programs to static single
// assignment form (the paper's analysis step 3) and propagates symbolic
// values and branch assertions (steps 4–6).
//
// Rather than rewriting the AST, the conversion leaves the source tree
// untouched and computes, for every statement, the environment mapping
// each scalar variable to its reaching SSA name. Each SSA name has a
// definition record carrying, when known, a symbolic value — a linear
// expression, or an iteration range for loop induction variables. The
// Translate functions convert source expressions at a program point
// into the symbolic domain, inlining linear definitions so that, for
// example, a subscript q(i, col-1) and a subscript q(i, j) with j
// defined as col-1 produce identical symbolic expressions.
package ssa

import (
	"fmt"

	"orchestra/internal/cfg"
	"orchestra/internal/source"
	"orchestra/internal/symbolic"
)

// DefKind classifies SSA definitions.
type DefKind int

// Definition kinds.
const (
	DefEntry     DefKind = iota // program input / initial version
	DefAssign                   // scalar assignment
	DefPhi                      // join of multiple reaching definitions
	DefInduction                // loop induction variable
	DefPostLoop                 // induction variable after loop exit
	DefCall                     // scalar potentially written by a call
)

func (k DefKind) String() string {
	switch k {
	case DefEntry:
		return "entry"
	case DefAssign:
		return "assign"
	case DefPhi:
		return "phi"
	case DefInduction:
		return "induction"
	case DefPostLoop:
		return "postloop"
	case DefCall:
		return "call"
	}
	return "?"
}

// Def is one SSA definition.
type Def struct {
	Name symbolic.Name
	Var  string
	Kind DefKind
	Node *cfg.Node

	// Value is the linear symbolic value of the definition when known
	// (DefAssign with a translatable right-hand side, or a phi whose
	// arguments agree).
	Value    symbolic.Expr
	HasValue bool

	// Ranges is the iteration space for DefInduction (one entry per
	// "and"-joined segment), in symbolic form.
	Ranges []symbolic.Range
	// Loop is the defining loop for DefInduction / DefPostLoop.
	Loop *source.Do

	// Args are the incoming names for DefPhi.
	Args []symbolic.Name
}

// Env maps scalar variable names to their reaching SSA names.
type Env map[string]symbolic.Name

func cloneEnv(e Env) Env {
	c := make(Env, len(e))
	for k, v := range e {
		c[k] = v
	}
	return c
}

// Info is the result of SSA conversion.
type Info struct {
	Graph *cfg.Graph
	Defs  map[symbolic.Name]*Def

	// AtStmt gives the environment in force immediately before each
	// statement. Loop statements see the environment at the loop
	// header including their own induction definition; a statement
	// after a loop sees post-loop versions.
	AtStmt map[source.Stmt]Env

	// InsideLoop gives, for loop statements, the environment in force
	// at the top of the loop body (induction variable bound).
	InsideLoop map[*source.Do]Env

	// Ctx gives the assertion context (a conjunction of predicates
	// over SSA names) established by dominating branches, where
	// guards, and loop bounds, per statement.
	Ctx map[source.Stmt]symbolic.Conj

	// BodyCtx gives the context inside a loop's body, including the
	// loop's own bound and guard predicates.
	BodyCtx map[*source.Do]symbolic.Conj

	scalars  map[string]bool
	counters map[string]int

	// elemCache implements the paper's aggregate propagation (step 4):
	// within a straight-line region, a value stored through an array
	// element can be recovered by a scalar load of the same element
	// ("if a value V is assigned to A[i] and then A[i] is assigned to
	// a scalar, the compiler creates an SSA name for V"). Keys are the
	// array name plus canonical symbolic index strings; the cache is
	// invalidated at loops, branches, and calls (alias elimination,
	// step 5), and on stores whose index cannot be proven distinct.
	elemCache map[string]elemEntry
}

// elemEntry is one cached array-element value.
type elemEntry struct {
	array string
	index []symbolic.Expr
	value symbolic.Expr
}

// Convert runs SSA conversion over a program.
func Convert(p *source.Program) *Info {
	g := cfg.Build(p.Body)
	in := &Info{
		Graph:      g,
		Defs:       map[symbolic.Name]*Def{},
		AtStmt:     map[source.Stmt]Env{},
		InsideLoop: map[*source.Do]Env{},
		Ctx:        map[source.Stmt]symbolic.Conj{},
		BodyCtx:    map[*source.Do]symbolic.Conj{},
		scalars:    map[string]bool{},
		counters:   map[string]int{},
		elemCache:  map[string]elemEntry{},
	}
	in.collectScalars(p)

	// Entry definitions: version 0 of every scalar.
	env := Env{}
	for v := range in.scalars {
		d := in.newDef(v, DefEntry, g.Entry)
		env[v] = d.Name
	}

	in.walkStmts(p.Body, env, nil)
	return in
}

// collectScalars gathers every scalar variable: declared scalars, loop
// induction variables, and assigned identifiers.
func (in *Info) collectScalars(p *source.Program) {
	for _, d := range p.Decls {
		if !d.IsArray() {
			in.scalars[d.Name] = true
		}
	}
	source.WalkStmts(p.Body, func(s source.Stmt) {
		switch s := s.(type) {
		case *source.Do:
			in.scalars[s.Var] = true
		case *source.Assign:
			if id, ok := s.LHS.(*source.Ident); ok {
				in.scalars[id.Name] = true
			}
		}
	})
}

func (in *Info) newDef(v string, kind DefKind, node *cfg.Node) *Def {
	in.counters[v]++
	d := &Def{
		Name: symbolic.Name(fmt.Sprintf("%s.%d", v, in.counters[v])),
		Var:  v,
		Kind: kind,
		Node: node,
	}
	in.Defs[d.Name] = d
	return d
}

// walkStmts performs the conversion over the structured statement list.
// Because the language is fully structured, reaching definitions can be
// computed by a direct recursive walk: a loop or branch merges the
// environments of its constituent paths with phi definitions. env is
// mutated in place to reflect the effect of the statements; ctx is the
// assertion context in force.
func (in *Info) walkStmts(body []source.Stmt, env Env, ctx symbolic.Conj) {
	for _, s := range body {
		in.AtStmt[s] = cloneEnv(env)
		in.Ctx[s] = ctx
		switch s := s.(type) {
		case *source.Assign:
			in.walkAssign(s, env)
		case *source.CallStmt:
			// A call may write any scalar passed by reference, and may
			// write through any aggregate (alias elimination: drop all
			// propagated element values).
			for _, a := range s.Args {
				if id, ok := a.(*source.Ident); ok {
					in.newDefInto(id.Name, DefCall, nil, env)
				}
			}
			in.elemCache = map[string]elemEntry{}
		case *source.Do:
			in.elemCache = map[string]elemEntry{}
			in.walkDo(s, env, ctx)
			in.elemCache = map[string]elemEntry{}
		case *source.If:
			in.elemCache = map[string]elemEntry{}
			in.walkIf(s, env, ctx)
			in.elemCache = map[string]elemEntry{}
		}
	}
}

func (in *Info) newDefInto(v string, kind DefKind, node *cfg.Node, env Env) *Def {
	d := in.newDef(v, kind, node)
	env[v] = d.Name
	return d
}

func (in *Info) walkAssign(s *source.Assign, env Env) {
	if id, ok := s.LHS.(*source.Ident); ok {
		// Translate the RHS in the pre-assignment environment,
		// consulting the aggregate-propagation cache for array loads.
		val, ok := in.TranslateExpr(s.RHS, env)
		if !ok {
			if ar, isRef := s.RHS.(*source.ArrayRef); isRef {
				val, ok = in.lookupElem(ar, env)
			}
		}
		d := in.newDefInto(id.Name, DefAssign, nil, env)
		if ok {
			d.Value = val
			d.HasValue = true
		}
		return
	}
	// Array-element stores do not define scalar versions, but they
	// feed (and invalidate) the aggregate-propagation cache.
	if ar, ok := s.LHS.(*source.ArrayRef); ok {
		in.storeElem(ar, s.RHS, env)
	}
}

// elemKey canonicalizes an array reference with translated indices.
func elemKey(array string, idx []symbolic.Expr) string {
	key := array + "["
	for i, e := range idx {
		if i > 0 {
			key += ","
		}
		key += e.String()
	}
	return key + "]"
}

// storeElem records a store through an aggregate and invalidates cached
// entries of the same array it cannot prove untouched.
func (in *Info) storeElem(ar *source.ArrayRef, rhs source.Expr, env Env) {
	idx := make([]symbolic.Expr, len(ar.Index))
	translatable := true
	for i, e := range ar.Index {
		x, ok := in.TranslateExpr(e, env)
		if !ok {
			translatable = false
			break
		}
		idx[i] = x
	}
	// Invalidate entries of this array that may alias the store.
	for k, ent := range in.elemCache {
		if ent.array != ar.Name {
			continue
		}
		if !translatable || aliases(ent.index, idx) {
			delete(in.elemCache, k)
		}
	}
	if !translatable {
		return
	}
	if val, ok := in.TranslateExpr(rhs, env); ok {
		in.elemCache[elemKey(ar.Name, idx)] = elemEntry{array: ar.Name, index: idx, value: val}
	}
}

// lookupElem recovers the value previously stored through an equal
// aggregate element, if any.
func (in *Info) lookupElem(ar *source.ArrayRef, env Env) (symbolic.Expr, bool) {
	idx := make([]symbolic.Expr, len(ar.Index))
	for i, e := range ar.Index {
		x, ok := in.TranslateExpr(e, env)
		if !ok {
			return symbolic.Expr{}, false
		}
		idx[i] = x
	}
	ent, ok := in.elemCache[elemKey(ar.Name, idx)]
	if !ok {
		return symbolic.Expr{}, false
	}
	return ent.value, true
}

// aliases reports whether two index vectors may refer to the same
// element: they alias unless some dimension is provably unequal.
func aliases(a, b []symbolic.Expr) bool {
	if len(a) != len(b) {
		return true
	}
	for i := range a {
		if symbolic.ProvesNotEqual(a[i], b[i], nil) {
			return false
		}
	}
	return true
}

func (in *Info) walkDo(s *source.Do, env Env, ctx symbolic.Conj) {
	node := in.Graph.LoopNode[s]

	// Loop-carried scalars: any scalar assigned in the body (or by a
	// nested construct) receives a phi at the header, killing its
	// pre-loop value. The induction variable gets its range definition.
	assigned := scalarsAssigned(s.Body)

	headerEnv := cloneEnv(env)
	for v := range assigned {
		if v == s.Var {
			continue
		}
		pre := headerEnv[v]
		phi := in.newDefInto(v, DefPhi, node, headerEnv)
		phi.Args = []symbolic.Name{pre} // body arg appended after walk
	}

	// Induction definition: bounds translated in the header environment
	// (which already reflects loop-carried phis, keeping bounds that
	// depend on variables mutated in the body conservatively opaque).
	ind := in.newDefInto(s.Var, DefInduction, node, headerEnv)
	ind.Loop = s
	for _, r := range s.Ranges {
		lo, okLo := in.TranslateExpr(r.Lo, headerEnv)
		hi, okHi := in.TranslateExpr(r.Hi, headerEnv)
		if !okLo {
			lo = symbolic.Var(in.opaque("lo", node))
		}
		if !okHi {
			hi = symbolic.Var(in.opaque("hi", node))
		}
		rg := symbolic.NewRange(lo, hi)
		if r.Step != nil {
			if st, ok := in.TranslateExpr(r.Step, headerEnv); ok {
				if c, isConst := st.IsConst(); isConst && c >= 1 {
					rg.Skip = c
				}
			}
		}
		ind.Ranges = append(ind.Ranges, rg)
	}

	// Context inside the body: lo <= var <= hi (for the hull of all
	// segments) plus the where guard.
	bodyCtx := ctx
	iv := symbolic.Var(ind.Name)
	if len(ind.Ranges) > 0 {
		bodyCtx = bodyCtx.And(symbolic.CmpExpr(iv, symbolic.GE, ind.Ranges[0].Start))
		bodyCtx = bodyCtx.And(symbolic.CmpExpr(iv, symbolic.LE, ind.Ranges[len(ind.Ranges)-1].End))
	}
	if s.Where != nil {
		if preds, ok := in.TranslatePred(s.Where, headerEnv); ok {
			bodyCtx = bodyCtx.Merge(preds)
		}
	}
	in.InsideLoop[s] = cloneEnv(headerEnv)
	in.BodyCtx[s] = bodyCtx

	bodyEnv := cloneEnv(headerEnv)
	in.walkStmts(s.Body, bodyEnv, bodyCtx)

	// Close the phis with the body-exit versions.
	for v := range assigned {
		if v == s.Var {
			continue
		}
		phi := in.Defs[headerEnv[v]]
		phi.Args = append(phi.Args, bodyEnv[v])
		in.resolvePhi(phi)
	}

	// After the loop: loop-carried scalars keep their phi versions
	// (conservative); the induction variable gets a fresh opaque
	// post-loop version, never its in-loop range (the in-loop range
	// would be unsound for code after the loop).
	for v := range assigned {
		if v != s.Var {
			env[v] = headerEnv[v]
		}
	}
	post := in.newDefInto(s.Var, DefPostLoop, node, env)
	post.Loop = s
}

func (in *Info) walkIf(s *source.If, env Env, ctx symbolic.Conj) {
	thenCtx := ctx
	elseCtx := ctx
	if preds, ok := in.TranslatePred(s.Cond, env); ok {
		thenCtx = thenCtx.Merge(preds)
		// The negation is a conjunction only for single predicates.
		if len(preds) == 1 {
			elseCtx = elseCtx.And(preds[0].Negate())
		}
	}
	thenEnv := cloneEnv(env)
	in.walkStmts(s.Then, thenEnv, thenCtx)
	elseEnv := cloneEnv(env)
	in.walkStmts(s.Else, elseEnv, elseCtx)

	// Merge: variables redefined on either arm get phis.
	node := in.Graph.BranchNode[s]
	for v := range in.scalars {
		tn, en := thenEnv[v], elseEnv[v]
		if tn == en {
			env[v] = tn
			continue
		}
		phi := in.newDefInto(v, DefPhi, node, env)
		phi.Args = []symbolic.Name{tn, en}
		in.resolvePhi(phi)
	}
}

// resolvePhi gives a phi a value when all its arguments carry the same
// known value (or are the same name).
func (in *Info) resolvePhi(phi *Def) {
	if len(phi.Args) == 0 {
		return
	}
	var val symbolic.Expr
	have := false
	for _, a := range phi.Args {
		d := in.Defs[a]
		var v symbolic.Expr
		switch {
		case d != nil && d.HasValue:
			v = d.Value
		default:
			v = symbolic.Var(a)
		}
		if !have {
			val, have = v, true
		} else if !val.Equal(v) {
			return
		}
	}
	phi.Value = val
	phi.HasValue = true
}

// opaque creates a fresh unnamed definition used for untranslatable
// bounds.
func (in *Info) opaque(tag string, node *cfg.Node) symbolic.Name {
	d := in.newDef("$"+tag, DefEntry, node)
	return d.Name
}

// scalarsAssigned returns the scalar variables assigned anywhere in a
// statement list, including induction variables of nested loops and
// scalars passed to calls.
func scalarsAssigned(body []source.Stmt) map[string]bool {
	out := map[string]bool{}
	source.WalkStmts(body, func(s source.Stmt) {
		switch s := s.(type) {
		case *source.Assign:
			if id, ok := s.LHS.(*source.Ident); ok {
				out[id.Name] = true
			}
		case *source.Do:
			out[s.Var] = true
		case *source.CallStmt:
			for _, a := range s.Args {
				if id, ok := a.(*source.Ident); ok {
					out[id.Name] = true
				}
			}
		}
	})
	return out
}
