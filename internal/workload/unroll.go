package workload

import (
	"fmt"
	"strings"

	"orchestra/internal/delirium"
	"orchestra/internal/rts"
)

// Unrolled builds a K-timestep dataflow graph from the application's
// split graph: each step is a copy of the per-step graph, and every
// source of step t+1 depends on every sink of step t (the state update
// between timesteps). Executing the unrolled graph barrier-free lets
// step boundaries overlap — the cross-iteration form of the pipelining
// the paper applies inside loops, and the natural extension for the
// iterative applications of §5.
//
// The returned binder resolves "name@t" nodes to the same operations
// every step.
func (a *App) Unrolled(k int) (*delirium.Graph, rts.Binder, error) {
	if k < 1 {
		k = 1
	}
	g := delirium.NewGraph(fmt.Sprintf("%s-x%d", a.Name, k))

	var sources, sinks []string
	for _, n := range a.SplitGraph.Nodes {
		if len(a.SplitGraph.Preds(n.Name)) == 0 {
			sources = append(sources, n.Name)
		}
		if len(a.SplitGraph.Succs(n.Name)) == 0 {
			sinks = append(sinks, n.Name)
		}
	}

	at := func(name string, t int) string { return fmt.Sprintf("%s@%d", name, t) }
	for t := 0; t < k; t++ {
		for _, n := range a.SplitGraph.Nodes {
			if err := g.AddNode(&delirium.Node{
				Name: at(n.Name, t), Kind: n.Kind, Tasks: n.Tasks,
			}); err != nil {
				return nil, nil, err
			}
		}
		for _, e := range a.SplitGraph.Edges {
			g.AddEdge(&delirium.Edge{
				From: at(e.From, t), To: at(e.To, t),
				Bytes: e.Bytes, PerTask: e.PerTask, Pipelined: e.Pipelined,
			})
		}
		if t > 0 {
			for _, snk := range sinks {
				for _, src := range sources {
					g.AddEdge(&delirium.Edge{
						From: at(snk, t-1), To: at(src, t),
						Bytes: 16, PerTask: true, Pipelined: true,
					})
				}
			}
		}
	}
	if err := g.Validate(); err != nil {
		return nil, nil, err
	}
	bind := func(name string) rts.OpSpec {
		base := name
		if i := strings.LastIndex(name, "@"); i > 0 {
			base = name[:i]
		}
		return a.Bind(base)
	}
	return g, bind, nil
}
