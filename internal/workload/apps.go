package workload

import (
	"orchestra/internal/delirium"
	"orchestra/internal/rts"
	"orchestra/internal/stats"
)

// Psirrfan models the x-ray tomography reconstruction program: a
// regular projection phase, an irregular masked update phase (roughly
// 40% of the columns carry real work), and a regular output phase.
// Split divides the output phase around the mask (outI is independent
// of the update and runs concurrently with it) and pipelines the
// update into the dependent output part — the paper: "by exposing
// additional coarse-grained parallelism and two opportunities for
// pipelining, we transformed Psirrfan to achieve sustained efficiency
// of over 80% using up to 1024 processors."
func Psirrfan(cfg Config) *App {
	rng := stats.NewRNG(cfg.Seed ^ 0x9a17)
	n := cfg.N

	mask := make([]bool, n)
	for i := range mask {
		mask[i] = rng.Bernoulli(0.4)
	}
	update := make([]float64, n)
	for i := range update {
		if mask[i] {
			update[i] = rng.Uniform(6, 14)
		} else {
			update[i] = 0.5
		}
	}
	proj := sampleTimes(n, stats.NormalDist{Mu: 2.0, Sigma: 0.1, Floor: 0.1}, rng)
	projI, projPre := partition(proj, mask)
	output := sampleTimes(n, stats.NormalDist{Mu: 1.5, Sigma: 0.1, Floor: 0.1}, rng)
	outI, outD := partition(output, mask)
	app := &App{Name: "psirrfan", ops: map[string]rts.OpSpec{
		"proj":    makeOp("proj", proj, 64),
		"projPre": makeOp("projPre", projPre, 64),
		"projI":   makeOp("projI", projI, 64),
		"update":  makeOp("update", update, 64),
		"output":  makeOp("output", output, 64),
		"outI":    makeOp("outI", outI, 64),
		"outD":    makeOp("outD", outD, 64),
	}}

	app.SeqGraph = chain("psirrfan", []string{"proj", "update", "output"}, 16)

	// Split applied to every phase (the paper hand-applied split
	// "wherever applicable"): only the masked columns' projections
	// (projPre) gate the update; the remaining projections (projI) run
	// concurrently with it, and the output phase splits around the
	// mask, its dependent half pipelined behind the update.
	g := delirium.NewGraph("psirrfan-split")
	for _, name := range []string{"projPre", "projI", "update", "outI", "outD"} {
		if err := g.AddNode(&delirium.Node{Name: name, Kind: delirium.Par, Tasks: "n"}); err != nil {
			panic(err)
		}
	}
	g.AddEdge(&delirium.Edge{From: "projPre", To: "update", Bytes: 16, PerTask: true})
	g.AddEdge(&delirium.Edge{From: "projPre", To: "projI", Bytes: 8, PerTask: true})
	g.AddEdge(&delirium.Edge{From: "update", To: "outD", Bytes: 16, PerTask: true, Pipelined: true})
	g.AddEdge(&delirium.Edge{From: "projI", To: "outI", Bytes: 16, PerTask: true})
	app.SplitGraph = g
	projIdxI, projIdxD := maskIdx(mask)
	app.setParts(map[string]Part{
		"projI":   {Phase: "proj", Index: projIdxI},
		"projPre": {Phase: "proj", Index: projIdxD},
		"outI":    {Phase: "output", Index: projIdxI},
		"outD":    {Phase: "output", Index: projIdxD},
	})
	return app
}

// Climate models the UCLA General Circulation Model: regular dynamics,
// the irregular cloud-physics phase (about 30% of the grid cells are
// convective and an order of magnitude more expensive), and a
// radiation phase. Split lets the independent part of radiation (the
// non-convective cells) execute concurrently with cloud physics,
// smoothing its load imbalance. The paper's measurement uses "about
// 3200 latitude-longitude grid cells".
func Climate(cfg Config) *App {
	rng := stats.NewRNG(cfg.Seed ^ 0xc71a)
	n := cfg.N

	mask := make([]bool, n) // convective cells
	for i := range mask {
		mask[i] = rng.Bernoulli(0.3)
	}
	cloud := make([]float64, n)
	for i := range cloud {
		switch {
		case mask[i] && rng.Bernoulli(0.1):
			// Deep convection: an order of magnitude above the mean
			// task, the cells the paper blames for the 1024-processor
			// efficiency collapse.
			cloud[i] = rng.Uniform(18, 24)
		case mask[i]:
			cloud[i] = rng.Uniform(6, 12)
		default:
			cloud[i] = 0.8
		}
	}
	dynamics := sampleTimes(n, stats.NormalDist{Mu: 3.0, Sigma: 0.15, Floor: 0.1}, rng)
	dynI, dynPre := partition(dynamics, mask)
	radiation := sampleTimes(n, stats.NormalDist{Mu: 2.5, Sigma: 0.1, Floor: 0.1}, rng)
	radI, radD := partition(radiation, mask)

	app := &App{Name: "climate", ops: map[string]rts.OpSpec{
		"dynamics": makeOp("dynamics", dynamics, 96),
		"dynPre":   makeOp("dynPre", dynPre, 96),
		"dynI":     makeOp("dynI", dynI, 96),
		"cloud":    makeOp("cloud", cloud, 96),
		"rad":      makeOp("rad", radiation, 96),
		"radI":     makeOp("radI", radI, 96),
		"radD":     makeOp("radD", radD, 96),
	}}
	app.SeqGraph = chain("climate", []string{"dynamics", "cloud", "rad"}, 24)

	// Split applied throughout: cloud physics runs on the convective
	// cells only, so it needs just their dynamics (dynPre); the
	// remaining dynamics (dynI) execute concurrently with cloud
	// physics, and radiation splits around the convective mask.
	g := delirium.NewGraph("climate-split")
	for _, name := range []string{"dynPre", "dynI", "cloud", "radI", "radD"} {
		if err := g.AddNode(&delirium.Node{Name: name, Kind: delirium.Par, Tasks: "n"}); err != nil {
			panic(err)
		}
	}
	g.AddEdge(&delirium.Edge{From: "dynPre", To: "cloud", Bytes: 24, PerTask: true})
	g.AddEdge(&delirium.Edge{From: "dynPre", To: "dynI", Bytes: 8, PerTask: true})
	g.AddEdge(&delirium.Edge{From: "cloud", To: "radD", Bytes: 24, PerTask: true, Pipelined: true})
	g.AddEdge(&delirium.Edge{From: "dynI", To: "radI", Bytes: 24, PerTask: true})
	app.SplitGraph = g
	idxI, idxD := maskIdx(mask)
	app.setParts(map[string]Part{
		"dynI":   {Phase: "dynamics", Index: idxI},
		"dynPre": {Phase: "dynamics", Index: idxD},
		"radI":   {Phase: "rad", Index: idxI},
		"radD":   {Phase: "rad", Index: idxD},
	})
	return app
}

// EMU models the parallel circuit simulator: per-timestep gate
// evaluation where only the active gates (hot spots, ~15%) carry real
// work, followed by a fanout-propagation phase split around the active
// set.
func EMU(cfg Config) *App {
	rng := stats.NewRNG(cfg.Seed ^ 0xe3)
	n := cfg.N

	mask := make([]bool, n) // active gates
	for i := range mask {
		mask[i] = rng.Bernoulli(0.2)
	}
	eval := make([]float64, n)
	for i := range eval {
		if mask[i] {
			eval[i] = rng.Uniform(4, 12)
		} else {
			eval[i] = 0.4
		}
	}
	fanout := sampleTimes(n, stats.NormalDist{Mu: 1.2, Sigma: 0.1, Floor: 0.1}, rng)
	fanI, fanD := partition(fanout, mask)

	app := &App{Name: "emu", ops: map[string]rts.OpSpec{
		"eval": makeOp("eval", eval, 48),
		"fan":  makeOp("fan", fanout, 48),
		"fanI": makeOp("fanI", fanI, 48),
		"fanD": makeOp("fanD", fanD, 48),
	}}
	app.SeqGraph = chain("emu", []string{"eval", "fan"}, 12)
	app.SplitGraph = maskedSplitGraph("emu-split", "", "eval", "fanI", "fanD", 12)
	idxI, idxD := maskIdx(mask)
	app.setParts(map[string]Part{
		"fanI": {Phase: "fan", Index: idxI},
		"fanD": {Phase: "fan", Index: idxD},
	})
	return app
}

// Vortex models the adaptive vortex method for turbulent fluid flow:
// velocity evaluation whose cost is spatially clustered (particles in
// dense clusters are far more expensive, and clusters are contiguous
// in the particle ordering — the worst case for a static block
// decomposition), followed by a position-update phase split around the
// cluster membership. A regular tree-build phase precedes both.
func Vortex(cfg Config) *App {
	rng := stats.NewRNG(cfg.Seed ^ 0x70f7)
	n := cfg.N

	// Contiguous clusters covering ~30% of the particles.
	mask := make([]bool, n)
	clusters := 8
	span := n / (clusters * 3)
	if span < 1 {
		span = 1
	}
	for c := 0; c < clusters; c++ {
		start := rng.Intn(n)
		for i := start; i < start+span && i < n; i++ {
			mask[i] = true
		}
	}
	velocity := make([]float64, n)
	for i := range velocity {
		if mask[i] {
			velocity[i] = rng.Uniform(4, 10)
		} else {
			velocity[i] = 1.0
		}
	}
	tree := sampleTimes(n, stats.NormalDist{Mu: 1.5, Sigma: 0.1, Floor: 0.1}, rng)
	treeI, treePre := partition(tree, mask)
	move := sampleTimes(n, stats.NormalDist{Mu: 0.8, Sigma: 0.05, Floor: 0.1}, rng)
	moveI, moveD := partition(move, mask)

	app := &App{Name: "vortex", ops: map[string]rts.OpSpec{
		"tree":    makeOp("tree", tree, 32),
		"treePre": makeOp("treePre", treePre, 32),
		"treeI":   makeOp("treeI", treeI, 32),
		"vel":     makeOp("vel", velocity, 32),
		"move":    makeOp("move", move, 32),
		"moveI":   makeOp("moveI", moveI, 32),
		"moveD":   makeOp("moveD", moveD, 32),
	}}
	app.SeqGraph = chain("vortex", []string{"tree", "vel", "move"}, 16)

	// Split applied throughout: the velocity evaluation of clustered
	// particles needs only their tree cells (treePre); the rest of the
	// tree build runs concurrently with it, and the move phase splits
	// around the cluster membership.
	g := delirium.NewGraph("vortex-split")
	for _, name := range []string{"treePre", "treeI", "vel", "moveI", "moveD"} {
		if err := g.AddNode(&delirium.Node{Name: name, Kind: delirium.Par, Tasks: "n"}); err != nil {
			panic(err)
		}
	}
	g.AddEdge(&delirium.Edge{From: "treePre", To: "vel", Bytes: 16, PerTask: true})
	g.AddEdge(&delirium.Edge{From: "treePre", To: "treeI", Bytes: 8, PerTask: true})
	g.AddEdge(&delirium.Edge{From: "vel", To: "moveD", Bytes: 16, PerTask: true, Pipelined: true})
	g.AddEdge(&delirium.Edge{From: "treeI", To: "moveI", Bytes: 16, PerTask: true})
	app.SplitGraph = g
	idxI, idxD := maskIdx(mask)
	app.setParts(map[string]Part{
		"treeI":   {Phase: "tree", Index: idxI},
		"treePre": {Phase: "tree", Index: idxD},
		"moveI":   {Phase: "move", Index: idxI},
		"moveD":   {Phase: "move", Index: idxD},
	})
	return app
}

// All returns the four applications at the given size and seed.
func All(n int, seed uint64) []*App {
	return []*App{
		Psirrfan(Config{N: n, Seed: seed}),
		Climate(Config{N: n, Seed: seed}),
		EMU(Config{N: n, Seed: seed}),
		Vortex(Config{N: n, Seed: seed}),
	}
}
