package workload

import (
	"orchestra/internal/interp"
	"orchestra/internal/rts"
	"orchestra/internal/sched"
	"orchestra/internal/split"
)

// MemChain is the bandwidth-saturating multi-operator workload: a
// chain of cheap streaming kernels over arrays sized far beyond any
// cache, so the run is bound by DRAM traffic, not compute —
//
//	load → scale1 → scale2 → smooth → reduce
//
// load fills its array from a deterministic per-index function; the
// scale stages are saxpy-style pointwise maps; smooth is a radius-1
// stencil; reduce squares its input element-wise into an accumulator
// array (the element-partials form of a sum reduction, folded by the
// caller). At this arithmetic intensity the barriered schedule streams
// every intermediate array to DRAM and back once per stage; cache
// chaining (internal/native's split-annotation scheduler) instead runs
// each ~64 KB block through all stages while it is L2-resident, which
// is exactly the traffic the pipeline benchmark measures.
//
// Every kernel writes only its own elements as a pure function of its
// inputs (the native kernel contract), so any schedule either backend
// produces — barriered, prefix-gated, chained, stolen, re-issued after
// a crash — yields a bitwise-identical memory image.
//
// The split annotations declare the access shapes: the maps are
// Pointwise, smooth is Stencil(1), and reduce is Reduction — reads
// element-wise (so it can terminate a chain) but conservatively
// declines to promise element writes, ending chain propagation.
//
// The returned state is fresh per call; a run must start from the
// returned arrays (they may be zero or stale — every element is
// overwritten).
func MemChain(cfg Config) (*App, *interp.State) {
	n := cfg.N
	if n < 1 {
		n = 1
	}
	st := interp.NewState()
	for _, name := range []string{"load", "scale1", "scale2", "smooth", "reduce"} {
		st.Alloc(name, n)
	}
	ld := st.Arrays["load"]
	s1 := st.Arrays["scale1"]
	s2 := st.Arrays["scale2"]
	sm := st.Arrays["smooth"]
	rd := st.Arrays["reduce"]
	seed := float64(cfg.Seed%1021) * 1e-3

	// streamOp wraps a per-element kernel as an operation spec; the
	// range body is the same loop without per-task closure dispatch.
	streamOp := func(name string, f func(i int), ann *split.Annotation) rts.OpSpec {
		return rts.OpSpec{
			Op: sched.Op{
				Name:  name,
				N:     n,
				Bytes: 8,
				Time: func(i int) float64 {
					f(i)
					return 1
				},
				TimeRange: func(lo, hi int) float64 {
					for i := lo; i < hi; i++ {
						f(i)
					}
					return float64(hi - lo)
				},
			},
			Mu:    1,
			Split: ann,
		}
	}
	ops := map[string]rts.OpSpec{
		"load": streamOp("load", func(i int) {
			x := float64(i)
			ld[i] = seed + x*1.000000059604645e-08 // cheap, index-pure fill
		}, split.Pointwise()),
		"scale1": streamOp("scale1", func(i int) {
			s1[i] = 1.0001*ld[i] + 0.5
		}, split.Pointwise()),
		"scale2": streamOp("scale2", func(i int) {
			s2[i] = 0.9997*s1[i] - 0.25
		}, split.Pointwise()),
		"smooth": streamOp("smooth", func(i int) {
			l, r := i-1, i+1
			if l < 0 {
				l = 0
			}
			if r >= n {
				r = n - 1
			}
			sm[i] = 0.25*s2[l] + 0.5*s2[i] + 0.25*s2[r]
		}, split.Stencil(1)),
		"reduce": streamOp("reduce", func(i int) {
			rd[i] = sm[i] * sm[i]
		}, split.Reduction()),
	}

	// The unsplit program: a barrier chain. The transformed graph keeps
	// the same operators but marks the prefix-safe edges pipelined; the
	// smooth stage reads a forward neighbor, so its in-edge must stay
	// barriered under the prefix gate — only the chain scheduler, whose
	// block coverage accounts for the halo, may overlap it.
	nodes := []string{"load", "scale1", "scale2", "smooth", "reduce"}
	seq := chain("memchain", nodes, 8)
	sp := chain("memchain-split", nodes, 8)
	for _, e := range sp.Edges {
		if e.To != "smooth" {
			e.Pipelined = true
		}
	}
	app := &App{Name: "memchain", SeqGraph: seq, SplitGraph: sp, ops: ops}
	app.setParts(nil) // every operator is its own phase; no rewrites
	return app, st
}
