package workload

import (
	"math"
	"testing"
)

func TestAllAppsWellFormed(t *testing.T) {
	for _, app := range All(800, 3) {
		if err := app.SeqGraph.Validate(); err != nil {
			t.Errorf("%s seq graph: %v", app.Name, err)
		}
		if err := app.SplitGraph.Validate(); err != nil {
			t.Errorf("%s split graph: %v", app.Name, err)
		}
		// Every node in both graphs must bind.
		for _, g := range []interface{ NodeNames() []string }{} {
			_ = g
		}
		for _, n := range app.SeqGraph.Nodes {
			if app.Bind(n.Name).Op.N == 0 {
				t.Errorf("%s: op %s empty", app.Name, n.Name)
			}
		}
		for _, n := range app.SplitGraph.Nodes {
			spec := app.Bind(n.Name)
			if spec.Op.N == 0 {
				t.Errorf("%s: split op %s empty", app.Name, n.Name)
			}
			if spec.Op.Hint == nil {
				t.Errorf("%s: op %s missing cost hint", app.Name, n.Name)
			}
			if spec.Mu <= 0 {
				t.Errorf("%s: op %s missing sampled stats", app.Name, n.Name)
			}
		}
	}
}

func TestWorkConservation(t *testing.T) {
	// The split program must perform the same task work as the
	// original: each split pair partitions its phase.
	type pair struct{ whole, indep, dep string }
	cases := map[string][]pair{
		"psirrfan": {{"proj", "projI", "projPre"}, {"output", "outI", "outD"}},
		"climate":  {{"dynamics", "dynI", "dynPre"}, {"rad", "radI", "radD"}},
		"emu":      {{"fan", "fanI", "fanD"}},
		"vortex":   {{"tree", "treeI", "treePre"}, {"move", "moveI", "moveD"}},
	}
	for _, app := range All(1000, 11) {
		for _, pr := range cases[app.Name] {
			whole := app.Bind(pr.whole).Op
			i := app.Bind(pr.indep).Op
			d := app.Bind(pr.dep).Op
			if i.N+d.N != whole.N {
				t.Errorf("%s %s: %d + %d != %d tasks", app.Name, pr.whole, i.N, d.N, whole.N)
			}
			if diff := math.Abs(i.TotalTime() + d.TotalTime() - whole.TotalTime()); diff > 1e-9 {
				t.Errorf("%s %s: work differs by %v", app.Name, pr.whole, diff)
			}
		}
	}
}

func TestDeterministicBySeed(t *testing.T) {
	a := Climate(Config{N: 500, Seed: 42})
	b := Climate(Config{N: 500, Seed: 42})
	c := Climate(Config{N: 500, Seed: 43})
	sameAsA := 0
	for i := 0; i < 500; i++ {
		if a.Bind("cloud").Op.Time(i) != b.Bind("cloud").Op.Time(i) {
			t.Fatal("same seed gave different workload")
		}
		if a.Bind("cloud").Op.Time(i) == c.Bind("cloud").Op.Time(i) {
			sameAsA++
		}
	}
	if sameAsA > 450 {
		t.Fatal("different seeds gave near-identical workload")
	}
}

func TestIrregularityStructure(t *testing.T) {
	app := Climate(Config{N: 2000, Seed: 5})
	cloud := app.Bind("cloud")
	dyn := app.Bind("dynamics")
	// Cloud physics must be far more variable than dynamics.
	if cloud.Sigma/cloud.Mu < 4*(dyn.Sigma/dyn.Mu) {
		t.Fatalf("cloud cv %v not much larger than dynamics cv %v",
			cloud.Sigma/cloud.Mu, dyn.Sigma/dyn.Mu)
	}
}

func TestVortexClustering(t *testing.T) {
	app := Vortex(Config{N: 2000, Seed: 9})
	vel := app.Bind("vel").Op
	// Costs must be spatially clustered: adjacent-pair correlation of
	// "is expensive" should far exceed the independent-mask baseline.
	expensive := func(i int) bool { return vel.Time(i) > 2 }
	both, exp := 0, 0
	for i := 0; i+1 < vel.N; i++ {
		if expensive(i) {
			exp++
			if expensive(i + 1) {
				both++
			}
		}
	}
	if exp == 0 {
		t.Fatal("no expensive particles")
	}
	condProb := float64(both) / float64(exp)
	baseRate := float64(exp) / float64(vel.N)
	if condProb < 3*baseRate {
		t.Fatalf("clustering too weak: P(exp|exp)=%v base=%v", condProb, baseRate)
	}
}

func TestHintsTrackTimes(t *testing.T) {
	app := Psirrfan(Config{N: 1000, Seed: 2})
	op := app.Bind("update").Op
	for i := 0; i < op.N; i++ {
		h, tt := op.Hint(i), op.Time(i)
		if h < 0.85*tt || h > 1.15*tt {
			t.Fatalf("hint %v too far from time %v at %d", h, tt, i)
		}
	}
}

func TestSeqTime(t *testing.T) {
	app := EMU(Config{N: 500, Seed: 1})
	want := app.Bind("eval").Op.TotalTime() + app.Bind("fan").Op.TotalTime()
	if math.Abs(app.SeqTime()-want) > 1e-9 {
		t.Fatalf("SeqTime = %v, want %v", app.SeqTime(), want)
	}
}

func TestBindPanicsOnUnknown(t *testing.T) {
	app := EMU(Config{N: 100, Seed: 1})
	defer func() {
		if recover() == nil {
			t.Fatal("Bind of unknown op did not panic")
		}
	}()
	app.Bind("nonsense")
}

func TestUnrolled(t *testing.T) {
	app := Climate(Config{N: 400, Seed: 3})
	g, bind, err := app.Unrolled(3)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	wantNodes := 3 * len(app.SplitGraph.Nodes)
	if len(g.Nodes) != wantNodes {
		t.Fatalf("nodes = %d, want %d", len(g.Nodes), wantNodes)
	}
	// Every node binds, and step instances share operations.
	for _, n := range g.Nodes {
		if bind(n.Name).Op.N == 0 {
			t.Fatalf("node %s unbound", n.Name)
		}
	}
	if bind("cloud@0").Op.N != bind("cloud@2").Op.N {
		t.Fatal("steps bound to different operations")
	}
	// Step 1 sources depend on step 0 sinks.
	foundCross := false
	for _, e := range g.Edges {
		if e.From == "radD@0" && e.To == "dynPre@1" {
			foundCross = true
			if !e.Pipelined {
				t.Fatal("cross-step edge should be pipelined")
			}
		}
	}
	if !foundCross {
		t.Fatal("missing cross-step edge")
	}
	// k < 1 clamps.
	g1, _, err := app.Unrolled(0)
	if err != nil || len(g1.Nodes) != len(app.SplitGraph.Nodes) {
		t.Fatalf("k=0: %v nodes=%d", err, len(g1.Nodes))
	}
}
