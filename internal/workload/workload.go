// Package workload models the four production applications of the
// paper's evaluation (§5) as parameterized synthetic workloads:
//
//   - Psirrfan, an image-reconstruction program for x-ray tomography:
//     a regular projection phase, an irregular masked update phase
//     (only columns selected by the mask carry real work), and a
//     regular output phase that split divides into an independent and
//     a dependent part;
//   - the UCLA General Circulation Model (climate): regular dynamics,
//     the irregular cloud-physics phase the paper blames for the
//     1024-processor efficiency collapse, and a radiation phase split
//     around the convective cells;
//   - the EMU circuit simulator: gate evaluation with activity
//     hot spots;
//   - an adaptive vortex method: velocity evaluation with spatially
//     clustered costs.
//
// Each application provides the original phase chain (SeqGraph), the
// dataflow graph after the split transformation (SplitGraph), and a
// binder resolving graph nodes to executable operations. Task-time
// distributions reproduce the irregularity structure the runtime
// algorithms react to: the absolute scales are arbitrary units.
package workload

import (
	"fmt"

	"orchestra/internal/delirium"
	"orchestra/internal/rts"
	"orchestra/internal/sched"
	"orchestra/internal/stats"
)

// Config parameterizes an application instance.
type Config struct {
	// N is the problem size (columns, grid cells, gates, particles).
	N int
	// Seed drives all randomness; equal seeds give identical
	// workloads.
	Seed uint64
}

// App is one modelled application.
type App struct {
	Name string
	// SeqGraph is the original program: a chain of phases with
	// barriers implied between them.
	SeqGraph *delirium.Graph
	// SplitGraph is the program after the split transformation, with
	// the exposed concurrency and pipelining.
	SplitGraph *delirium.Graph
	// ops binds node names to operations.
	ops map[string]rts.OpSpec
	// parts maps a split-graph operator to the original phase it came
	// from, and to the original task indices its tasks cover (nil =
	// identity: the operator IS the phase). This is the metadata the
	// profile-guided split search (internal/search) uses to compose
	// hybrid graphs — any subset of phase rewrites applied — and what
	// coverage digests use to prove a hybrid executed every original
	// task exactly once.
	parts map[string]Part
}

// Part locates a split-graph operator inside the original program:
// task i of the operator corresponds to task Index[i] of phase Phase
// (a nil Index is the identity — the operator is the whole phase).
type Part struct {
	Phase string
	Index []int
}

// PartOrigin reports where operator name came from. Operators of the
// sequential graph map to themselves.
func (a *App) PartOrigin(name string) (Part, bool) {
	p, ok := a.parts[name]
	return p, ok
}

// Phases returns the original program's phases in order.
func (a *App) Phases() []string {
	out := make([]string, 0, len(a.SeqGraph.Nodes))
	for _, nd := range a.SeqGraph.Nodes {
		out = append(out, nd.Name)
	}
	return out
}

// Bind resolves a node name to its operation.
func (a *App) Bind(name string) rts.OpSpec {
	spec, ok := a.ops[name]
	if !ok {
		panic(fmt.Sprintf("workload: %s has no operation %q", a.Name, name))
	}
	return spec
}

// GraphFor selects the graph to execute under a mode at a worker
// count. Split mode runs the transformed graph only when more than
// one worker can exploit the exposed concurrency: on a single worker
// the split graph's extra operators and pipelined-delivery bookkeeping
// are pure overhead with nothing to overlap (the hotpath benchmark
// measured TAPER+split ≈1.7× slower than plain TAPER on one-worker
// psirrfan), so wholesale split is never applied at workers == 1.
func (a *App) GraphFor(mode rts.Mode, workers int) *delirium.Graph {
	if mode == rts.ModeSplit && workers > 1 {
		return a.SplitGraph
	}
	return a.SeqGraph
}

// SeqTime is the total sequential work of the original program.
func (a *App) SeqTime() float64 {
	total := 0.0
	for _, n := range a.SeqGraph.Nodes {
		total += a.ops[n.Name].Op.TotalTime()
	}
	return total
}

// makeOp wraps a task-time slice as an operation spec. The operation
// carries a warm cost hint — the applications are iterative (climate
// timesteps, reconstruction sweeps), so in steady state the runtime's
// cost function has been trained on earlier executions of the same
// parallel operation. The hint carries roughly ±10% multiplicative
// error, modelling an imperfectly learned cost function.
func makeOp(name string, times []float64, bytes int64) rts.OpSpec {
	t := times
	spec := rts.OpSpec{Op: sched.Op{
		Name:  name,
		N:     len(t),
		Time:  func(i int) float64 { return t[i] },
		Bytes: bytes,
		Hint: func(i int) float64 {
			return t[i] * (0.9 + 0.2*hashFrac(i))
		},
	}}
	spec.SampleStats(128)
	spec.SetupBytes = int64(len(t)) * bytes
	spec.CommBytes = func(n, p int) int64 { return int64(n) * bytes / 4 }
	return spec
}

// hashFrac maps a task index to a deterministic value in [0, 1).
func hashFrac(i int) float64 {
	z := uint64(i) + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return float64(z>>11) / (1 << 53)
}

// sampleTimes draws n task times from d.
func sampleTimes(n int, d stats.Dist, rng *stats.RNG) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = d.Sample(rng)
	}
	return out
}

// partition splits times by a mask: the first result holds times at
// indices where mask is false (independent part), the second where
// mask is true (dependent part).
func partition(times []float64, mask []bool) (indep, dep []float64) {
	for i, t := range times {
		if mask[i] {
			dep = append(dep, t)
		} else {
			indep = append(indep, t)
		}
	}
	return indep, dep
}

// maskIdx returns the original indices each partition half covers, in
// the same order partition emits them.
func maskIdx(mask []bool) (indep, dep []int) {
	for i, m := range mask {
		if m {
			dep = append(dep, i)
		} else {
			indep = append(indep, i)
		}
	}
	return indep, dep
}

// setParts records part metadata: every operator of either graph maps
// to itself (identity) unless overridden as a partitioned half of an
// original phase. Must be called after both graphs are built.
func (a *App) setParts(override map[string]Part) {
	a.parts = map[string]Part{}
	for _, g := range []*delirium.Graph{a.SeqGraph, a.SplitGraph} {
		if g == nil {
			continue
		}
		for _, nd := range g.Nodes {
			if _, ok := a.parts[nd.Name]; !ok {
				a.parts[nd.Name] = Part{Phase: nd.Name}
			}
		}
	}
	for name, p := range override {
		a.parts[name] = p
	}
}

// chain builds a linear phase graph.
func chain(name string, nodes []string, bytes int64) *delirium.Graph {
	g := delirium.NewGraph(name)
	for _, n := range nodes {
		if err := g.AddNode(&delirium.Node{Name: n, Kind: delirium.Par, Tasks: "n"}); err != nil {
			panic(err)
		}
	}
	for i := 1; i < len(nodes); i++ {
		g.AddEdge(&delirium.Edge{From: nodes[i-1], To: nodes[i], Bytes: bytes, PerTask: true})
	}
	return g
}

// maskedSplitGraph builds the canonical post-split structure the
// paper's running example produces: phase A (irregular, masked) feeds
// phase B, which splits into BI (independent of A, concurrent with it)
// and BD (dependent on A). Merging of the two output halves is
// implicit, "handled by the runtime system during data communication"
// (§2). pre, when non-empty, is a regular phase preceding both.
func maskedSplitGraph(name, pre, a, bi, bd string, bytes int64) *delirium.Graph {
	g := delirium.NewGraph(name)
	add := func(n string) {
		if n == "" {
			return
		}
		if err := g.AddNode(&delirium.Node{Name: n, Kind: delirium.Par, Tasks: "n"}); err != nil {
			panic(err)
		}
	}
	add(pre)
	add(a)
	add(bi)
	add(bd)
	if pre != "" {
		g.AddEdge(&delirium.Edge{From: pre, To: a, Bytes: bytes, PerTask: true})
		g.AddEdge(&delirium.Edge{From: pre, To: bi, Bytes: bytes, PerTask: true})
	}
	g.AddEdge(&delirium.Edge{From: a, To: bd, Bytes: bytes, PerTask: true, Pipelined: true})
	return g
}
