package workload_test

import (
	"testing"

	"orchestra/internal/compile"
	"orchestra/internal/machine"
	"orchestra/internal/native"
	"orchestra/internal/rts"
	"orchestra/internal/workload"
)

// nestedCfg exercises three expansion levels: 200 → 67 → 23 → 8-element
// leaves at Branch=3, Leaf=16.
var nestedCfg = workload.NestedConfig{N: 200, Branch: 3, Leaf: 16, Cells: 6, Threshold: 0.5}

// runInstance executes one fresh instance on the named backend and
// returns its digest. Instances are single-use (arrays start zeroed
// exactly once), so every call site builds a fresh one.
func runInstance(t *testing.T, backend string, in *workload.NestedInstance, mode rts.Mode, p int) string {
	t.Helper()
	var be rts.Backend
	switch backend {
	case "sim":
		be = rts.NewSimBackend(machine.DefaultConfig(p))
	case "native":
		be = native.Backend{}
	default:
		t.Fatalf("unknown backend %q", backend)
	}
	if _, err := be.Run(in.Graph, rts.BindClosure(in.Binder()), rts.RunOpts{Processors: p, Mode: mode}); err != nil {
		t.Fatalf("%s run: %v", backend, err)
	}
	return in.Digest()
}

// unrolledDC statically unrolls a fresh DC instance into its flat
// reference graph and binder.
func unrolledDC(t *testing.T, cfg workload.NestedConfig) *workload.NestedInstance {
	t.Helper()
	in, err := workload.NewDC(cfg)
	if err != nil {
		t.Fatalf("NewDC: %v", err)
	}
	fg, fb, err := compile.Unroll(in.Graph, in.Binder())
	if err != nil {
		t.Fatalf("Unroll: %v", err)
	}
	in.Graph = fg
	in.SetBinder(fb)
	return in
}

func TestNestedDCDigestParity(t *testing.T) {
	for _, backend := range []string{"sim", "native"} {
		for _, mode := range []rts.Mode{rts.ModeStatic, rts.ModeTaper, rts.ModeSplit} {
			for _, p := range []int{1, 2, 4} {
				t.Run(backend+"/"+mode.String()+"/p"+string(rune('0'+p)), func(t *testing.T) {
					nested, err := workload.NewDC(nestedCfg)
					if err != nil {
						t.Fatalf("NewDC: %v", err)
					}
					got := runInstance(t, backend, nested, mode, p)
					flat := unrolledDC(t, nestedCfg)
					want := runInstance(t, backend, flat, mode, p)
					if got != want {
						t.Fatalf("nested digest %s != flat digest %s", got, want)
					}
				})
			}
		}
	}
}

func TestNestedVortexDigestParity(t *testing.T) {
	for _, backend := range []string{"sim", "native"} {
		for _, mode := range []rts.Mode{rts.ModeStatic, rts.ModeTaper, rts.ModeSplit} {
			for _, p := range []int{1, 2, 4} {
				t.Run(backend+"/"+mode.String()+"/p"+string(rune('0'+p)), func(t *testing.T) {
					nested, err := workload.NewVortex(nestedCfg)
					if err != nil {
						t.Fatalf("NewVortex: %v", err)
					}
					got := runInstance(t, backend, nested, mode, p)
					flat, err := workload.VortexFlat(nestedCfg)
					if err != nil {
						t.Fatalf("VortexFlat: %v", err)
					}
					want := runInstance(t, backend, flat, mode, p)
					if got != want {
						t.Fatalf("nested digest %s != flat digest %s", got, want)
					}
				})
			}
		}
	}
}

// TestNestedBaseCase covers the fork-join degenerate case: the whole
// range fits one leaf, the expansion returns nil, and the operator
// keeps only its join task. Nested and unrolled digests still match.
func TestNestedBaseCase(t *testing.T) {
	cfg := workload.NestedConfig{N: 16, Branch: 3, Leaf: 32, Cells: 2, Threshold: 0.5}
	for _, backend := range []string{"sim", "native"} {
		t.Run(backend, func(t *testing.T) {
			nested, err := workload.NewDC(cfg)
			if err != nil {
				t.Fatalf("NewDC: %v", err)
			}
			got := runInstance(t, backend, nested, rts.ModeSplit, 2)
			flat := unrolledDC(t, cfg)
			want := runInstance(t, backend, flat, rts.ModeSplit, 2)
			if got != want {
				t.Fatalf("nested digest %s != flat digest %s", got, want)
			}
		})
	}
}

// TestNestedRegistryKernel binds the DC graph through the "nested"
// registry family and checks the bound digest matches a closure run.
func TestNestedRegistryKernel(t *testing.T) {
	ref, err := workload.NewDC(nestedCfg)
	if err != nil {
		t.Fatalf("NewDC: %v", err)
	}
	want := runInstance(t, "native", ref, rts.ModeSplit, 4)

	inst, err := workload.NewDC(nestedCfg)
	if err != nil {
		t.Fatalf("NewDC: %v", err)
	}
	params := rts.KernelParams{}
	params.SetInt("n", nestedCfg.N)
	params.SetInt("branch", nestedCfg.Branch)
	params.SetInt("leaf", nestedCfg.Leaf)
	params.SetInt("cells", nestedCfg.Cells)
	params.SetFloat("threshold", nestedCfg.Threshold)
	bound, err := rts.Bind(inst.Graph, rts.NamedBinding("nested", params))
	if err != nil {
		t.Fatalf("Bind: %v", err)
	}
	if _, err := (native.Backend{}).Run(inst.Graph, bound, rts.RunOpts{Processors: 4, Mode: rts.ModeSplit}); err != nil {
		t.Fatalf("native run: %v", err)
	}
	got, ok := bound.Digest()
	if !ok {
		t.Fatal("bound kernels produced no digest")
	}
	if got != want {
		t.Fatalf("registry digest %s != closure digest %s", got, want)
	}
}
