package workload_test

import (
	"testing"

	"orchestra/internal/native"
	"orchestra/internal/rts"
	"orchestra/internal/workload"
)

// runMemChain executes a fresh MemChain instance natively and returns
// the result and the final state digest.
func runMemChain(t *testing.T, p, n int, mode rts.Mode, chain rts.ChainPolicy) (hits int, digest string) {
	t.Helper()
	app, st := workload.MemChain(workload.Config{N: n, Seed: 7})
	g := app.GraphFor(mode, p)
	r, err := (native.Backend{}).Run(g, rts.BindClosure(app.Bind), rts.RunOpts{Processors: p, Mode: mode, Chain: chain})
	if err != nil {
		t.Fatalf("p=%d mode=%v: %v", p, mode, err)
	}
	return r.ChainHits, native.StateDigest(st)
}

// TestMemChainParity: the bandwidth chain must produce bitwise-
// identical memory images under every schedule — barriered reference,
// gate-pipelined, and cache-chained — and the chained run must
// actually engage the chain path (including across the stencil's
// halo-widened blocks).
func TestMemChainParity(t *testing.T) {
	const n = 100000
	_, want := runMemChain(t, 1, n, rts.ModeStatic, rts.ChainOff)
	for _, p := range []int{2, 4, 8} {
		for _, chain := range []rts.ChainPolicy{rts.ChainAuto, rts.ChainOff} {
			hits, got := runMemChain(t, p, n, rts.ModeSplit, chain)
			if got != want {
				t.Fatalf("p=%d chain=%v: digest mismatch", p, chain)
			}
			if chain == rts.ChainAuto && hits == 0 {
				t.Errorf("p=%d: chained memchain run reported 0 chain hits", p)
			}
			if chain == rts.ChainOff && hits != 0 {
				t.Errorf("p=%d: ChainOff memchain run reported %d chain hits", p, hits)
			}
		}
	}
}

// TestGraphForSingleWorker is the regression test for the 1-worker
// split pessimization: the hotpath benchmark measured TAPER+split
// ≈1.7× slower than plain TAPER on one worker (nothing to overlap,
// all the bookkeeping), so GraphFor must never hand out the split
// graph at workers == 1.
func TestGraphForSingleWorker(t *testing.T) {
	for _, app := range workload.All(500, 11) {
		if g := app.GraphFor(rts.ModeSplit, 1); g != app.SeqGraph {
			t.Errorf("%s: GraphFor(split, 1) = %s, want the unsplit graph", app.Name, g.Name)
		}
		if g := app.GraphFor(rts.ModeSplit, 2); g != app.SplitGraph {
			t.Errorf("%s: GraphFor(split, 2) = %s, want the split graph", app.Name, g.Name)
		}
		for _, mode := range []rts.Mode{rts.ModeStatic, rts.ModeTaper} {
			if g := app.GraphFor(mode, 8); g != app.SeqGraph {
				t.Errorf("%s: GraphFor(%v, 8) = %s, want the unsplit graph", app.Name, mode, g.Name)
			}
		}
	}
}
