package workload

import (
	"fmt"
	"strconv"
	"sync"

	"orchestra/internal/delirium"
	"orchestra/internal/interp"
	"orchestra/internal/native"
	"orchestra/internal/rts"
	"orchestra/internal/sched"
)

// Nested-dataflow workloads (ROADMAP item 3): real array kernels whose
// graphs contain Exp nodes, for exercising runtime expansion on both
// engines with a durable, bitwise-comparable result digest.
//
// Two rules cover the two interesting shapes:
//
//	rule=dc     — divide and conquer: the operator covers an index
//	              range and expands into Branch children, each either a
//	              leaf operator (range ≤ Leaf) or another dc node.
//	              The rule is data-independent, so compile.Unroll
//	              produces its flat reference.
//	rule=vortex — adaptive spatial refinement (the paper's vortex
//	              method): the operator reads the array its predecessor
//	              produced and expands each of Cells cells into a fine
//	              or coarse operator depending on the measured cell
//	              intensity. The rule is data-DEPENDENT — eager
//	              unrolling would read unsettled arrays — so the flat
//	              reference comes from VortexFlat, which evaluates the
//	              same decision function analytically.
//
// Every operator owns one array in a shared interp.State image; task
// values are pure functions of (operator name, task index, inputs), so
// any two correct schedules — nested or flat, simulated or native, any
// worker count — digest identically (native.StateDigest).

func init() {
	rts.Kernels.MustRegister("nested", nestedKernel)
}

// nestedKernel is the registry form of the nested workloads: bind any
// graph whose Exp nodes carry rule=dc or rule=vortex with
// rts.NamedBinding("nested", params). Recognized params (all optional):
// n, branch, leaf, cells, threshold. The whole graph shares one
// instance, built once per BindEnv, whose digest becomes the run's
// result digest.
func nestedKernel(env *rts.BindEnv, op string) (rts.OpSpec, error) {
	v, err := env.Memo("workload.nested", func() (any, error) {
		cfg := NestedConfig{
			N:         env.Params.Int("n", 0),
			Branch:    env.Params.Int("branch", 0),
			Leaf:      env.Params.Int("leaf", 0),
			Cells:     env.Params.Int("cells", 0),
			Threshold: env.Params.Float("threshold", 0),
		}
		in, err := NewNested(env.Graph, cfg)
		if err != nil {
			return nil, err
		}
		env.SetDigest(in.Digest)
		return in, nil
	})
	if err != nil {
		return rts.OpSpec{}, err
	}
	return v.(*NestedInstance).bind(op), nil
}

// NestedConfig parameterizes the nested workloads.
type NestedConfig struct {
	// N is the base task count (array length) of the non-expandable
	// operators and the index range the dc root covers.
	N int
	// Branch is the dc fan-out per expansion level.
	Branch int
	// Leaf is the largest range a dc node executes as a leaf instead of
	// expanding further.
	Leaf int
	// Cells is the number of spatial cells a vortex node refines.
	Cells int
	// Threshold is the cell-intensity cutoff for fine refinement, in
	// [0,1]; higher means fewer fine cells.
	Threshold float64
}

func (c NestedConfig) withDefaults() NestedConfig {
	if c.N < 1 {
		c.N = 256
	}
	if c.Branch < 2 {
		c.Branch = 3
	}
	if c.Leaf < 1 {
		c.Leaf = 32
	}
	if c.Cells < 1 {
		c.Cells = 8
	}
	if c.Threshold <= 0 || c.Threshold >= 1 {
		c.Threshold = 0.5
	}
	return c
}

// NestedInstance is one run's worth of state for a nested workload:
// the graph, a binder over a fresh memory image, and the digest of
// that image. Like the array kernels, an instance must not be run
// twice — arrays start zeroed exactly once.
type NestedInstance struct {
	Graph *delirium.Graph
	bind  rts.Binder
	st    *interp.State
	// mu guards st's array map: the native engine invokes expansion
	// rules from worker goroutines, and sibling expansions may
	// materialize — and allocate — concurrently. Task bodies capture
	// their slices directly and never touch the map.
	mu sync.Mutex
}

// alloc allocates (or returns) the named array under the map lock.
func (in *NestedInstance) alloc(name string, n int) []float64 {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.st.Alloc(name, n)
	return in.st.Arrays[name]
}

// lookup reads the named array under the map lock.
func (in *NestedInstance) lookup(name string) []float64 {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.st.Arrays[name]
}

// Binder resolves the instance's operators (including the expansion
// rules of its Exp nodes).
func (in *NestedInstance) Binder() rts.Binder { return in.bind }

// SetBinder replaces the instance's binder — used after a static
// unroll (compile.Unroll) rewrites the graph, so the instance runs the
// flat form against the same memory image.
func (in *NestedInstance) SetBinder(b rts.Binder) { in.bind = b }

// Digest fingerprints the memory image (native.StateDigest): SHA-256
// over the name-sorted arrays, bitwise.
func (in *NestedInstance) Digest() string { return native.StateDigest(in.st) }

// NewDC builds the divide-and-conquer workload:
//
//	seed (par, N) → root (exp, rule=dc) → out (par, N)
//
// root expands recursively over [0, N) until ranges reach Leaf size;
// leaves read seed's array, every dc join folds its children, and out
// reads the root join.
func NewDC(cfg NestedConfig) (*NestedInstance, error) {
	cfg = cfg.withDefaults()
	g := delirium.NewGraph("nested-dc")
	nodes := []*delirium.Node{
		{Name: "seed", Kind: delirium.Par, Tasks: strconv.Itoa(cfg.N)},
		{Name: "root", Kind: delirium.Exp, Tasks: "1", Rule: "dc"},
		{Name: "out", Kind: delirium.Par, Tasks: strconv.Itoa(cfg.N)},
	}
	for _, nd := range nodes {
		if err := g.AddNode(nd); err != nil {
			return nil, err
		}
	}
	g.AddEdge(&delirium.Edge{From: "seed", To: "root", Bytes: 64, PerTask: true})
	g.AddEdge(&delirium.Edge{From: "root", To: "out", Bytes: 64, PerTask: true})
	return NewNested(g, cfg)
}

// NewVortex builds the adaptive vortex-refinement workload:
//
//	field (par, N) → refine (exp, rule=vortex) → gather (par, N)
//
// refine's expansion inspects the field array at execution time: each
// cell whose measured intensity exceeds Threshold expands into a fine
// operator (4× the tasks of a coarse one).
func NewVortex(cfg NestedConfig) (*NestedInstance, error) {
	cfg = cfg.withDefaults()
	g := delirium.NewGraph("nested-vortex")
	nodes := []*delirium.Node{
		{Name: "field", Kind: delirium.Par, Tasks: strconv.Itoa(cfg.N)},
		{Name: "refine", Kind: delirium.Exp, Tasks: "1", Rule: "vortex"},
		{Name: "gather", Kind: delirium.Par, Tasks: strconv.Itoa(cfg.N)},
	}
	for _, nd := range nodes {
		if err := g.AddNode(nd); err != nil {
			return nil, err
		}
	}
	g.AddEdge(&delirium.Edge{From: "field", To: "refine", Bytes: 64, PerTask: true})
	g.AddEdge(&delirium.Edge{From: "refine", To: "gather", Bytes: 64, PerTask: true})
	return NewNested(g, cfg)
}

// VortexFlat builds the statically-unrolled flat reference of the
// vortex workload. compile.Unroll cannot produce it — the refinement
// rule reads the field array at execution time, and an eager call
// would see zeroes — but the decisions are recoverable offline because
// field's task values are a pure closed form. VortexFlat evaluates
// that closed form, applies the same decision function the runtime
// rule applies, and assembles the flat graph Unroll would have built,
// with bodies constructed from the same closures the nested run uses.
// Digests of a NewVortex run and a VortexFlat run must match bitwise.
func VortexFlat(cfg NestedConfig) (*NestedInstance, error) {
	cfg = cfg.withDefaults()
	in := &NestedInstance{st: interp.NewState()}
	g := delirium.NewGraph("nested-vortex")
	specs := map[string]rts.OpSpec{}

	// field has no predecessors: field[i] is its pure base value, so
	// the refinement decisions can be taken before anything runs.
	fieldArr := in.alloc("field", cfg.N)
	if err := g.AddNode(&delirium.Node{Name: "field", Kind: delirium.Par, Tasks: strconv.Itoa(cfg.N)}); err != nil {
		return nil, err
	}
	specs["field"] = rts.OpSpec{Op: sched.Op{Name: "field", N: cfg.N, Time: func(i int) float64 {
		fieldArr[i] = nestedVal("field", i)
		return 1
	}, Bytes: 64}, Mu: 1}

	analytic := make([]float64, cfg.N)
	for i := range analytic {
		analytic[i] = nestedVal("field", i)
	}
	cells := vortexCells(analytic, "refine", cfg)
	children := make([][]float64, 0, len(cells))
	for _, c := range cells {
		if err := g.AddNode(&delirium.Node{Name: c.name, Kind: delirium.Par, Tasks: strconv.Itoa(c.tasks)}); err != nil {
			return nil, err
		}
		// The parent edge field→refine anchors at the sub-graph's
		// sources in the unrolled form, barrier-converted.
		g.AddEdge(&delirium.Edge{From: "field", To: c.name, Bytes: 64, PerTask: true})
		arr := in.alloc(c.name, c.tasks)
		specs[c.name] = rts.OpSpec{
			Op: sched.Op{Name: c.name, N: c.tasks, Time: vortexCellBody(c.name, c.tasks, fieldArr, arr), Bytes: 64},
			Mu: 1,
		}
		children = append(children, arr)
	}

	// refine survives as its one-task join, gated on the cell sinks,
	// with the exact join body the nested run executes: its top-graph
	// inputs (field, transitively ordered through the cells) plus the
	// element-wise fold of every child.
	if err := g.AddNode(&delirium.Node{Name: "refine", Kind: delirium.Par, Tasks: "1"}); err != nil {
		return nil, err
	}
	for _, c := range cells {
		g.AddEdge(&delirium.Edge{From: c.name, To: "refine"})
	}
	refineArr := in.alloc("refine", 1)
	refineInputs := []nestedInput{{from: "field", arr: fieldArr}}
	specs["refine"] = rts.OpSpec{
		Op: sched.Op{Name: "refine", N: 1, Time: nestedJoinBody("refine", refineInputs, &children, refineArr), Bytes: 64},
		Mu: 1,
	}

	if err := g.AddNode(&delirium.Node{Name: "gather", Kind: delirium.Par, Tasks: strconv.Itoa(cfg.N)}); err != nil {
		return nil, err
	}
	g.AddEdge(&delirium.Edge{From: "refine", To: "gather", Bytes: 64, PerTask: true})
	gatherArr := in.alloc("gather", cfg.N)
	gatherInputs := []nestedInput{{from: "refine", arr: refineArr}}
	n := cfg.N
	specs["gather"] = rts.OpSpec{Op: sched.Op{Name: "gather", N: cfg.N, Time: func(i int) float64 {
		v := nestedVal("gather", i)
		for _, inp := range gatherInputs {
			v += inp.read(i, n)
		}
		gatherArr[i] = v
		return 1
	}, Bytes: 64}, Mu: 1}

	in.Graph = g
	in.bind = func(name string) rts.OpSpec { return specs[name] }
	return in, nil
}

// NewNested builds a binder instance for any graph whose Exp nodes
// carry rule=dc or rule=vortex. Non-expandable nodes become array
// operators (one array per operator, task values pure in the inputs);
// Exp nodes get the named expansion rule plus a join task that folds
// their children. This is also the builder behind the "nested"
// registry kernel family.
func NewNested(g *delirium.Graph, cfg NestedConfig) (*NestedInstance, error) {
	cfg = cfg.withDefaults()
	in := &NestedInstance{Graph: g, st: interp.NewState()}
	bind, err := in.bindGraph(g, cfg, "")
	if err != nil {
		return nil, err
	}
	in.bind = bind
	return in, nil
}

// nestedVal is the pure per-task base value of an operator: a
// deterministic function of the operator name and task index alone, so
// every correct schedule computes identical bits.
func nestedVal(name string, i int) float64 {
	h := nestedHash(name)
	return float64((h*31+uint64(i)*7)%1009)/1009 + float64(h%97)/97
}

// nestedHash is FNV-1a over a string.
func nestedHash(s string) uint64 {
	var h uint64 = 14695981039346656037
	for i := 0; i < len(s); i++ {
		h = (h ^ uint64(s[i])) * 1099511628211
	}
	return h
}

// nestedTasks resolves a node's tasks annotation: a literal count, or
// the symbolic "n" (the config's N).
func nestedTasks(nd *delirium.Node, cfg NestedConfig) (int, error) {
	if nd.Tasks == "" || nd.Tasks == "n" {
		return cfg.N, nil
	}
	n, err := strconv.Atoi(nd.Tasks)
	if err != nil {
		return 0, fmt.Errorf("workload: node %s has tasks=%q (want a literal count or \"n\")", nd.Name, nd.Tasks)
	}
	return n, nil
}

// bindGraph resolves one (sub-)graph level against the shared image.
func (in *NestedInstance) bindGraph(g *delirium.Graph, cfg NestedConfig, parent string) (rts.Binder, error) {
	order, err := g.TopoOrder()
	if err != nil {
		return nil, err
	}
	specs := map[string]rts.OpSpec{}
	for _, nd := range order {
		var spec rts.OpSpec
		var err error
		if nd.Kind == delirium.Exp {
			spec, err = in.expSpec(g, nd, cfg)
		} else {
			spec, err = in.arraySpec(g, nd, cfg)
		}
		if err != nil {
			return nil, err
		}
		specs[nd.Name] = spec
	}
	return func(name string) rts.OpSpec { return specs[name] }, nil
}

// arraySpec builds an ordinary array operator: task i writes
// arr[i] = base(name, i) + Σ inputs, reading each predecessor with the
// kernel contract's index rule (prefix-safe on pipelined edges).
func (in *NestedInstance) arraySpec(g *delirium.Graph, nd *delirium.Node, cfg NestedConfig) (rts.OpSpec, error) {
	n, err := nestedTasks(nd, cfg)
	if err != nil {
		return rts.OpSpec{}, err
	}
	arr := in.alloc(nd.Name, n)
	inputs := nestedInputs(in.st, g, nd.Name)
	name := nd.Name
	body := func(i int) float64 {
		v := nestedVal(name, i)
		for _, inp := range inputs {
			v += inp.read(i, n)
		}
		arr[i] = v
		return 1
	}
	spec := rts.OpSpec{Op: sched.Op{Name: name, N: n, Time: body, Bytes: 64}, Mu: 1}
	return spec, nil
}

// expSpec builds an expandable operator: its Expand hook (by rule)
// plus its one-task join body, which folds every child array the
// expansion materialized.
func (in *NestedInstance) expSpec(g *delirium.Graph, nd *delirium.Node, cfg NestedConfig) (rts.OpSpec, error) {
	if _, err := nestedTasks(nd, cfg); err != nil {
		return rts.OpSpec{}, err
	}
	arr := in.alloc(nd.Name, 1)
	inputs := nestedInputs(in.st, g, nd.Name)
	name := nd.Name

	// children is filled by the expansion (or left empty at the base
	// case) and read by the join body, which the engines run only after
	// the whole sub-graph completed.
	var children [][]float64
	join := nestedJoinBody(name, inputs, &children, arr)

	var expand rts.ExpandFunc
	switch nd.Rule {
	case "dc":
		expand = func(depth int) (*rts.Expansion, error) {
			exp, subs, err := in.expandDC(name, 0, cfg.N, cfg)
			if err != nil {
				return nil, err
			}
			children = subs
			return exp, nil
		}
	case "vortex":
		if len(inputs) != 1 {
			return rts.OpSpec{}, fmt.Errorf("workload: vortex node %s needs exactly one predecessor, has %d", name, len(inputs))
		}
		field := inputs[0].arr
		expand = func(depth int) (*rts.Expansion, error) {
			exp, subs, err := in.expandVortex(name, field, cfg)
			if err != nil {
				return nil, err
			}
			children = subs
			return exp, nil
		}
	default:
		return rts.OpSpec{}, fmt.Errorf("workload: exp node %s has unknown rule %q (want dc or vortex)", name, nd.Rule)
	}
	return rts.OpSpec{
		Op:     sched.Op{Name: name, N: 1, Time: join, Bytes: 64},
		Mu:     1,
		Expand: expand,
	}, nil
}

// nestedJoinBody is the one-task body of an expanded operator's join:
// its base value, plus its own (top-graph) inputs, plus the
// element-wise fold of every child array the expansion materialized.
// children is a pointer because the nested run fills the slice at
// expansion time, after the body closure is built.
func nestedJoinBody(name string, inputs []nestedInput, children *[][]float64, arr []float64) func(int) float64 {
	return func(int) float64 {
		v := nestedVal(name, 0)
		for _, inp := range inputs {
			v += inp.read(0, 1)
		}
		for _, c := range *children {
			for _, x := range c {
				v += x * 0.5
			}
		}
		arr[0] = v
		return 1
	}
}

// vortexCellBody is the task body of one refinement cell: its base
// value plus a stride-sampled read of the field it refines.
func vortexCellBody(name string, n int, field, arr []float64) func(int) float64 {
	return func(i int) float64 {
		v := nestedVal(name, i)
		if len(field) > 0 {
			v += field[i*len(field)/n] * 0.75
		}
		arr[i] = v
		return 1
	}
}

// nestedInput reads one predecessor array under the kernel contract.
type nestedInput struct {
	from      string
	arr       []float64
	pipelined bool
}

func (inp nestedInput) read(i, n int) float64 {
	pn := len(inp.arr)
	if pn == 0 {
		return 0
	}
	if inp.pipelined {
		return inp.arr[i*pn/n]
	}
	return inp.arr[(i*31+7)%pn]
}

// nestedInputs snapshots a node's predecessor arrays in canonical
// (name-sorted) order — float addition is not associative.
func nestedInputs(st *interp.State, g *delirium.Graph, name string) []nestedInput {
	var inputs []nestedInput
	for _, e := range g.InEdges(name) {
		if e.Carried {
			continue
		}
		inputs = append(inputs, nestedInput{from: e.From, arr: st.Arrays[e.From], pipelined: e.Pipelined})
	}
	for i := 1; i < len(inputs); i++ {
		for j := i; j > 0 && inputs[j].from < inputs[j-1].from; j-- {
			inputs[j], inputs[j-1] = inputs[j-1], inputs[j]
		}
	}
	return inputs
}

// expandDC materializes one dc level covering [off, off+span): Branch
// children, each a leaf operator or a nested dc node. Children are
// named by tree path ("root/1"), so the nested run and its static
// unroll allocate identical arrays. Returns the expansion plus the
// child arrays for the parent's join.
func (in *NestedInstance) expandDC(name string, off, span int, cfg NestedConfig) (*rts.Expansion, [][]float64, error) {
	if span <= cfg.Leaf {
		// Base case: the range is small enough to have been executed by
		// a leaf; the operator keeps just its join task.
		return nil, nil, nil
	}
	sub := delirium.NewGraph(name)
	specs := map[string]rts.OpSpec{}
	var childArrs [][]float64
	childSpan := (span + cfg.Branch - 1) / cfg.Branch
	for k, o := 0, off; o < off+span; k, o = k+1, o+childSpan {
		cspan := childSpan
		if o+cspan > off+span {
			cspan = off + span - o
		}
		cname := fmt.Sprintf("%s/%d", name, k)
		if cspan > cfg.Leaf {
			if err := sub.AddNode(&delirium.Node{Name: cname, Kind: delirium.Exp, Tasks: "1", Rule: "dc"}); err != nil {
				return nil, nil, err
			}
			arr := in.alloc(cname, 1)
			var grand [][]float64
			co, cs := o, cspan
			nm := cname
			join := func(int) float64 {
				v := nestedVal(nm, 0)
				for _, c := range grand {
					for _, x := range c {
						v += x * 0.5
					}
				}
				arr[0] = v
				return 1
			}
			specs[cname] = rts.OpSpec{
				Op: sched.Op{Name: cname, N: 1, Time: join, Bytes: 64},
				Mu: 1,
				Expand: func(depth int) (*rts.Expansion, error) {
					exp, subs, err := in.expandDC(nm, co, cs, cfg)
					if err != nil {
						return nil, err
					}
					grand = subs
					return exp, nil
				},
			}
			childArrs = append(childArrs, arr)
			continue
		}
		// Leaf: cspan tasks over [o, o+cspan), reading the workload's
		// seed array (allocated by the top-level graph) at the covered
		// indices when present.
		if err := sub.AddNode(&delirium.Node{Name: cname, Kind: delirium.Par, Tasks: strconv.Itoa(cspan)}); err != nil {
			return nil, nil, err
		}
		arr := in.alloc(cname, cspan)
		seed := in.lookup("seed")
		co := o
		nm := cname
		body := func(i int) float64 {
			v := nestedVal(nm, i)
			if len(seed) > 0 {
				v += seed[(co+i)%len(seed)] * 1.5
			}
			arr[i] = v
			return 1
		}
		specs[cname] = rts.OpSpec{Op: sched.Op{Name: cname, N: cspan, Time: body, Bytes: 64}, Mu: 1}
		childArrs = append(childArrs, arr)
	}
	return &rts.Expansion{
		Graph: sub,
		Bind:  func(n string) rts.OpSpec { return specs[n] },
	}, childArrs, nil
}

// vortexCell is one refinement decision: a cell operator's name and
// task count.
type vortexCell struct {
	name  string
	tasks int
}

// vortexCells applies the refinement rule to a field array: cell c
// covers field[c·N/Cells : (c+1)·N/Cells); its intensity is the mean
// fractional part of the covered values, and intensity > Threshold
// refines fine (4× tasks).
func vortexCells(field []float64, name string, cfg NestedConfig) []vortexCell {
	n := len(field)
	cells := make([]vortexCell, 0, cfg.Cells)
	for c := 0; c < cfg.Cells; c++ {
		lo, hi := c*n/cfg.Cells, (c+1)*n/cfg.Cells
		if hi <= lo {
			hi = lo + 1
			if hi > n {
				lo, hi = n-1, n
			}
		}
		sum := 0.0
		for i := lo; i < hi; i++ {
			v := field[i]
			sum += v - float64(int(v))
		}
		intensity := sum / float64(hi-lo)
		tasks := hi - lo
		if intensity > cfg.Threshold {
			tasks *= 4
		}
		cells = append(cells, vortexCell{name: fmt.Sprintf("%s/c%d", name, c), tasks: tasks})
	}
	return cells
}

// expandVortex materializes the vortex refinement: one operator per
// cell, fine or coarse by the measured intensity of the predecessor's
// (already settled) array.
func (in *NestedInstance) expandVortex(name string, field []float64, cfg NestedConfig) (*rts.Expansion, [][]float64, error) {
	sub := delirium.NewGraph(name)
	specs := map[string]rts.OpSpec{}
	var childArrs [][]float64
	for _, c := range vortexCells(field, name, cfg) {
		if err := sub.AddNode(&delirium.Node{Name: c.name, Kind: delirium.Par, Tasks: strconv.Itoa(c.tasks)}); err != nil {
			return nil, nil, err
		}
		arr := in.alloc(c.name, c.tasks)
		specs[c.name] = rts.OpSpec{
			Op: sched.Op{Name: c.name, N: c.tasks, Time: vortexCellBody(c.name, c.tasks, field, arr), Bytes: 64},
			Mu: 1,
		}
		childArrs = append(childArrs, arr)
	}
	return &rts.Expansion{
		Graph: sub,
		Bind:  func(n string) rts.OpSpec { return specs[n] },
	}, childArrs, nil
}
