package fuzz

import (
	"fmt"

	"orchestra/internal/fault"
	"orchestra/internal/machine"
	"orchestra/internal/native"
	"orchestra/internal/rts"
	"orchestra/internal/source"
)

// The fault-injection oracle. Failure tolerance claims an exact
// property: a run that loses workers mid-flight (or suffers stalls,
// slowdowns and message perturbations) still produces bitwise the
// final state of an undisturbed sequential run. This file checks that
// claim the same way oracle.go checks scheduling — lowered kernels,
// sequential baseline, then a matrix of faulted executions compared
// bitwise — so a recovery bug (lost chunk, double-released range,
// mis-gated retry) shows up as a value divergence with the plan that
// provoked it attached.

// faultMatrix is the faulted configuration grid for one plan: both
// adaptive modes on the simulator and the native runtime. Static mode
// is excluded — the simulator rejects worker faults without scheduling
// events to survive through, and the oracle only wants configurations
// every backend accepts.
func faultMatrix(plan *fault.Plan) []backendConfig {
	const p = 4
	var cfgs []backendConfig
	for _, m := range []rts.Mode{rts.ModeTaper, rts.ModeSplit} {
		cfgs = append(cfgs, backendConfig{
			name:    fmt.Sprintf("sim/p=%d/%s/fault=%s", p, m, plan),
			backend: rts.NewSimBackend(machine.DefaultConfig(p)),
			opts:    rts.RunOpts{Processors: p, Mode: m, Fault: plan},
		})
	}
	for _, m := range []rts.Mode{rts.ModeTaper, rts.ModeSplit} {
		cfgs = append(cfgs, backendConfig{
			name:    fmt.Sprintf("native/p=%d/%s/fault=%s", p, m, plan),
			backend: native.Backend{},
			opts:    rts.RunOpts{Processors: p, Mode: m, Fault: plan},
		})
	}
	return cfgs
}

// CheckProgramFaults runs the baseline ladder on one program, then
// executes the faulted configuration matrix under the plan and
// compares every final state bitwise against the sequential run.
func CheckProgramFaults(prog *source.Program, seed uint64, plan *fault.Plan) *Report {
	rep := &Report{Seed: seed}
	base := runBaseline(prog, seed, rep)
	if base == nil {
		return rep
	}
	for _, cfg := range faultMatrix(plan) {
		before := len(rep.Divs)
		in, err := runConfig(prog, seed, base.low, cfg, nil)
		if err != nil {
			rep.Divs = append(rep.Divs, Divergence{Config: cfg.name, Kind: "backend-error", Detail: err.Error()})
			continue
		}
		if f := in.Failure(); f != "" {
			rep.Divs = append(rep.Divs, Divergence{Config: cfg.name, Kind: "backend-runtime", Detail: f})
		} else if d := diffFinal(base.gseq, instFinal{in}, base.arrays, base.scalars, true); d != "" {
			rep.Divs = append(rep.Divs, Divergence{Config: cfg.name, Kind: "fault-value", Detail: d})
		}
		if len(rep.Divs) > before {
			if t := captureTrace(prog, seed, base.low, cfg); t != nil {
				for i := before; i < len(rep.Divs); i++ {
					rep.Divs[i].Trace = t
				}
			}
		}
	}
	return rep
}

// CheckSeedFaults generates program #seed and checks it under the
// generator-derived random fault plan for the matrix's worker count —
// always survivable by construction, with a deadline tightened for
// test turnaround.
func CheckSeedFaults(seed uint64, cfg GenConfig) (*Report, *source.Program, *fault.Plan) {
	prog := NewGen(seed, cfg).Program()
	plan := fault.Random(seed, 4)
	plan.Deadline = 0.002
	return CheckProgramFaults(prog, seed, plan), prog, plan
}
