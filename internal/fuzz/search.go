package fuzz

import (
	"fmt"

	"orchestra/internal/machine"
	"orchestra/internal/native"
	"orchestra/internal/obs"
	"orchestra/internal/rts"
	"orchestra/internal/search"
	"orchestra/internal/source"
)

// The searched-program rung: profile the lowered graph, let the
// profile-guided search (internal/search) weaken its per-edge
// pipelining/chaining, and run the emitted graph across a compact
// backend matrix — compared bitwise against the sequential baseline.
//
// The search's graph space only ever turns edge attributes off, never
// drops an edge or node, so every schedule a searched graph admits was
// already admitted by the original graph: searched programs must stay
// bitwise-conformant by construction, and any divergence here is a
// real bug — a search emitting a graph that lost a dependence, or a
// runtime mishandling the weakened graph.

// searchedMatrix is the backend matrix the searched graph runs under:
// enough diversity (one worker, oversubscribed, both backends, an ω
// extreme) to shake scheduling order without tripling campaign cost.
func searchedMatrix() []backendConfig {
	return []backendConfig{
		{
			name:     "searched/sim/p=1/TAPER+split",
			backend:  rts.NewSimBackend(machine.DefaultConfig(1)),
			opts:     rts.RunOpts{Processors: 1, Mode: rts.ModeSplit},
			checkSim: true,
		},
		{
			name:     "searched/sim/p=8/TAPER+split",
			backend:  rts.NewSimBackend(machine.DefaultConfig(8)),
			opts:     rts.RunOpts{Processors: 8, Mode: rts.ModeSplit},
			checkSim: true,
		},
		{
			name:    "searched/native/p=2/TAPER+split",
			backend: native.Backend{},
			opts:    rts.RunOpts{Processors: 2, Mode: rts.ModeSplit},
		},
		{
			name:    "searched/native/p=4/TAPER+split/omega=0.5",
			backend: native.Backend{},
			opts:    rts.RunOpts{Processors: 4, Mode: rts.ModeSplit, Omega: 0.5},
		},
	}
}

// CheckProgramSearched runs the baseline ladder, then the searched
// rung, on one program.
func CheckProgramSearched(prog *source.Program, seed uint64) *Report {
	rep := &Report{Seed: seed}
	base := runBaseline(prog, seed, rep)
	if base == nil {
		return rep
	}
	low, gseq, arrays, scalars := base.low, base.gseq, base.arrays, base.scalars

	// Profiling run: the simulator in split mode with an event sink.
	// Its final state must itself conform — a profile of a wrong run
	// would search a lie.
	profIn := low.NewInstance(true)
	var col obs.Collector
	simBe := rts.NewSimBackend(machine.DefaultConfig(8))
	if _, err := simBe.Run(low.Graph, rts.BindClosure(profIn.Binder()), rts.RunOpts{
		Processors: 8, Mode: rts.ModeSplit, Sink: &col,
	}); err != nil {
		rep.Divs = append(rep.Divs, Divergence{Config: "search/profile", Kind: "backend-error", Detail: err.Error()})
		return rep
	}
	if d := diffFinal(gseq, instFinal{profIn}, arrays, scalars, true); d != "" {
		rep.Divs = append(rep.Divs, Divergence{Config: "search/profile", Kind: "backend-value", Detail: d})
		return rep
	}
	prof, err := search.FromTrace(col.Trace, 0)
	if err != nil {
		rep.Skip = fmt.Sprintf("search profile: %v", err)
		return rep
	}
	plan, err := search.Run(prof, search.GraphCandidates(low.Graph), search.Options{P: 8})
	if err != nil {
		rep.Divs = append(rep.Divs, Divergence{Config: "search", Kind: "search-error", Detail: err.Error()})
		return rep
	}

	for _, cfg := range searchedMatrix() {
		in := low.NewInstance(cfg.checkSim)
		if _, err := cfg.backend.Run(plan.Best.Graph, rts.BindClosure(in.Binder()), cfg.opts); err != nil {
			rep.Divs = append(rep.Divs, Divergence{Config: cfg.name, Kind: "backend-error", Detail: err.Error()})
			continue
		}
		if f := in.Failure(); f != "" {
			rep.Divs = append(rep.Divs, Divergence{Config: cfg.name, Kind: "backend-runtime", Detail: f})
			continue
		}
		// The order oracle checks the ORIGINAL graph's gating; the
		// searched graph only removed scheduling freedom, so violations
		// are real.
		for _, v := range in.Violations() {
			rep.Divs = append(rep.Divs, Divergence{Config: cfg.name, Kind: "order-violation", Detail: v})
		}
		if d := diffFinal(gseq, instFinal{in}, arrays, scalars, true); d != "" {
			rep.Divs = append(rep.Divs, Divergence{
				Config: cfg.name, Kind: "backend-value",
				Detail: fmt.Sprintf("plan %q: %s", plan.Best.ID, d),
			})
		}
	}
	return rep
}

// CheckSeedSearched generates program #seed and runs the searched
// rung.
func CheckSeedSearched(seed uint64, cfg GenConfig) (*Report, *source.Program) {
	prog := NewGen(seed, cfg).Program()
	return CheckProgramSearched(prog, seed), prog
}
