package fuzz

import (
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"testing"

	"orchestra/internal/source"
)

var corpusSeedRe = regexp.MustCompile(`!\s*seed:\s*(\d+)`)

// corpusEntries loads every minimized reproducer committed under
// testdata/fuzz-corpus. Each file is a program the differential oracle
// once flagged — minimized with Minimize while the divergence still
// reproduced — plus a header comment recording the bug and the
// generator seed (the seed fixes the initial memory image).
func corpusEntries(t *testing.T) map[string]struct {
	prog *source.Program
	seed uint64
} {
	t.Helper()
	files, err := filepath.Glob(filepath.Join("testdata", "fuzz-corpus", "*.f"))
	if err != nil {
		t.Fatal(err)
	}
	entries := make(map[string]struct {
		prog *source.Program
		seed uint64
	})
	for _, f := range files {
		text, err := os.ReadFile(f)
		if err != nil {
			t.Fatal(err)
		}
		m := corpusSeedRe.FindSubmatch(text)
		if m == nil {
			t.Fatalf("%s: no '! seed: N' header", f)
		}
		seed, err := strconv.ParseUint(string(m[1]), 10, 64)
		if err != nil {
			t.Fatalf("%s: bad seed: %v", f, err)
		}
		prog, err := source.Parse(string(text))
		if err != nil {
			t.Fatalf("%s: parse: %v", f, err)
		}
		entries[filepath.Base(f)] = struct {
			prog *source.Program
			seed uint64
		}{prog, seed}
	}
	return entries
}

// TestCorpusReproducers replays every committed reproducer through the
// full differential oracle. Each of these programs diverged under a
// bug this package's campaign surfaced; any of them failing again
// means an orchestration regression, with the file's header comment
// naming the original defect.
func TestCorpusReproducers(t *testing.T) {
	entries := corpusEntries(t)
	if len(entries) < 5 {
		t.Fatalf("corpus has %d reproducers, want at least 5", len(entries))
	}
	for name, e := range entries {
		e := e
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			rep := CheckProgram(e.prog, e.seed)
			if rep.Skip != "" {
				t.Fatalf("reproducer no longer checkable: %s", rep.Skip)
			}
			if rep.Failed() {
				t.Fatalf("regression:\n%s", rep)
			}
		})
	}
}
