package fuzz

import (
	"fmt"
	"math"

	"orchestra/internal/compile"
	"orchestra/internal/delirium"
	"orchestra/internal/source"
)

// The lowering turns a compiled program's units into dataflow-safe
// kernels over a versioned memory image, so the same graph binding runs
// correctly on every backend regardless of task execution order. The
// kernel contract (internal/native/kernel.go) demands idempotent,
// order-independent tasks; ordinary program statements mutate shared
// arrays in place and are neither. The lowering restores the contract
// with single-assignment versions:
//
//   - every unit that writes an array gets a fresh output version of
//     it, with per-element written flags and the writing task recorded;
//     reads fall through unwritten elements to the previous version, so
//     anti-dependences vanish and partial writes (guards, sub-ranges)
//     compose;
//   - a unit classified parallel runs one task per loop iteration, and
//     the classifier guarantees each task writes only elements indexed
//     by its own induction value and reads written arrays only at those
//     elements — tasks are pure functions of immutable inputs;
//   - a reduction loop (s = s + e) writes per-iteration contributions
//     into a version buffer, and a synthetic one-task merge node —
//     added to the oracle graph with explicit ordering edges — folds
//     them in iteration order, keeping the result bit-identical to
//     sequential execution;
//   - anything the classifier cannot prove parallel runs as a single
//     serial task interpreting the unit's statements against the
//     version chain, which is always sound.
type Lowered struct {
	// Graph is the oracle graph: the compiled graph plus reduction
	// merge nodes and their ordering edges.
	Graph *delirium.Graph

	kernels []*kernel
	byName  map[string]*kernel
	aPlans  []verPlan
	sPlans  []verPlan
	chainA  map[string][]int // array -> version ids, creation order
	chainS  map[string][]int
	dims    map[string][]int
	sizes   map[string]int
	initA   map[string][]float64
	initS   map[string]float64

	// Ancestor closures over the oracle graph, for the order checker:
	// anyAnc[k][p] — p precedes k through some edge path; plainAnc[k][p]
	// — through a path of only ordinary (completion-gated) edges, which
	// transitively guarantees p is fully done when k's tasks run.
	anyAnc   [][]bool
	plainAnc [][]bool
}

// verPlan describes one version buffer: which op owns it and which
// version it shadows (-1 = the initial image).
type verPlan struct {
	name  string
	owner int
	prev  int
}

// Kernel kinds.
const (
	kSerial = iota
	kParallel
	kReduction
	kMerge
)

var kindNames = [...]string{"serial", "parallel", "reduction", "merge"}

type kernel struct {
	idx  int
	name string
	role string
	kind int
	n    int

	// parallel / reduction
	loop  *source.Do
	iters []int
	// reduction
	redVar  string
	redExpr source.Expr
	contrib int // contribution version id
	// merge
	srcOp int
	// serial
	stmts []source.Stmt

	// version bindings: the version an access to each variable resolves
	// against (the op's own output version when it writes the variable).
	verA   map[string]int
	verS   map[string]int
	writeA map[string]int
	writeS map[string]int

	// inE classifies incoming oracle-graph edges by producer op index,
	// for the order checker: 1 = completion-gated, 2 = pipelined.
	inE map[int]int
}

// Kinds summarizes the lowered kernels ("parallel" × 4, …) for logging.
func (l *Lowered) Kinds() map[string]int {
	m := map[string]int{}
	for _, k := range l.kernels {
		m[kindNames[k.kind]]++
	}
	return m
}

const maxKernelTasks = 1 << 16

type lowerError struct{ msg string }

func (e *lowerError) Error() string { return "fuzz: lower: " + e.msg }

func lowFail(format string, args ...interface{}) {
	panic(&lowerError{fmt.Sprintf(format, args...)})
}

// Lower binds a compiled program to executable kernels over the given
// initial memory image. initS must hold every scalar the transformed
// program's declarations and loop bounds need (missing declared scalars
// default to 0, as in the interpreter); array extents are evaluated
// from the transformed declarations over initS. Programs outside the
// lowering's supported shape return an error and are skipped by the
// oracle — the classifier's serial fallback keeps that set small.
func Lower(out *compile.Output, initS map[string]float64, initA map[string][]float64) (low *Lowered, err error) {
	defer func() {
		if r := recover(); r != nil {
			if le, ok := r.(*lowerError); ok {
				low, err = nil, le
				return
			}
			panic(r)
		}
	}()
	l := &Lowered{
		byName: map[string]*kernel{},
		chainA: map[string][]int{},
		chainS: map[string][]int{},
		dims:   map[string][]int{},
		sizes:  map[string]int{},
		initA:  map[string][]float64{},
		initS:  map[string]float64{},
	}

	// Memory image: every declaration of the transformed program.
	for _, d := range out.Program.Decls {
		if !d.IsArray() {
			l.initS[d.Name] = initS[d.Name]
			continue
		}
		size := 1
		var dims []int
		for _, de := range d.Dims {
			v, ok := constEval(de, initS)
			ival := int(math.Round(v))
			if !ok || ival < 1 || ival > maxKernelTasks {
				lowFail("array %s has unsupported extent", d.Name)
			}
			dims = append(dims, ival)
			size *= ival
			if size > 1<<22 {
				lowFail("array %s too large", d.Name)
			}
		}
		l.dims[d.Name] = dims
		l.sizes[d.Name] = size
		buf := make([]float64, size)
		copy(buf, initA[d.Name])
		l.initA[d.Name] = buf
	}

	// The AI units' emitted loops, for reconstructing the iteration
	// space of AD/AM fragments.
	groupLoop := map[string]*source.Do{}
	for _, u := range out.Units {
		if u.Role == "AI" {
			em := u.Emit()
			if len(em) == 1 {
				if d, ok := em[0].(*source.Do); ok {
					groupLoop[baseOf(u.Name)] = d
				}
			}
		}
	}

	// Scalars written anywhere disqualify themselves as parallel loop
	// bounds (task counts must be fixed at bind time).
	writtenScalars := map[string]bool{}
	for _, u := range out.Units {
		stmts := u.Stmts
		source.WalkStmts(stmts, func(s source.Stmt) {
			if as, ok := s.(*source.Assign); ok {
				if id, ok := as.LHS.(*source.Ident); ok {
					writtenScalars[id.Name] = true
				}
			}
		})
	}

	// Classify units into kernels, appending a merge kernel after each
	// reduction, and thread the version chains in unit order.
	curA := map[string]int{}
	curS := map[string]int{}
	missing := func(name string) bool { _, ok := l.sizes[name]; return !ok }

	newAVer := func(name string, owner int) int {
		if missing(name) {
			lowFail("write to undeclared array %s", name)
		}
		prev := -1
		if ids := l.chainA[name]; len(ids) > 0 {
			prev = ids[len(ids)-1]
		}
		id := len(l.aPlans)
		l.aPlans = append(l.aPlans, verPlan{name: name, owner: owner, prev: prev})
		l.chainA[name] = append(l.chainA[name], id)
		curA[name] = id
		return id
	}
	newSVer := func(name string, owner int) int {
		prev := -1
		if ids := l.chainS[name]; len(ids) > 0 {
			prev = ids[len(ids)-1]
		}
		id := len(l.sPlans)
		l.sPlans = append(l.sPlans, verPlan{name: name, owner: owner, prev: prev})
		l.chainS[name] = append(l.chainS[name], id)
		curS[name] = id
		return id
	}
	snapshot := func(k *kernel) {
		k.verA = map[string]int{}
		k.verS = map[string]int{}
		for n, id := range curA {
			k.verA[n] = id
		}
		for n, id := range curS {
			k.verS[n] = id
		}
	}
	add := func(k *kernel) *kernel {
		k.idx = len(l.kernels)
		k.contrib = -1
		l.kernels = append(l.kernels, k)
		l.byName[k.name] = k
		return k
	}

	for _, u := range out.Units {
		k := add(&kernel{name: u.Name, role: u.Role})
		classify(k, u, groupLoop, writtenScalars, l.initS)
		// Reads resolve against the pre-unit chain state; own writes
		// get fresh versions layered on top.
		snapshot(k)
		switch k.kind {
		case kParallel, kSerial:
			k.writeA = map[string]int{}
			k.writeS = map[string]int{}
			wa, ws := writeSets(kernelStmts(k))
			for _, name := range wa {
				id := newAVer(name, k.idx)
				k.writeA[name] = id
				k.verA[name] = id
			}
			if k.kind == kParallel && len(ws) > 0 {
				lowFail("parallel kernel %s writes scalars", k.name)
			}
			for _, name := range ws {
				id := newSVer(name, k.idx)
				k.writeS[name] = id
				k.verS[name] = id
			}
		case kReduction:
			// The contribution buffer is a synthetic array version with
			// no previous version and one element per task.
			k.contrib = len(l.aPlans)
			cname := "·" + k.name
			l.aPlans = append(l.aPlans, verPlan{name: cname, owner: k.idx, prev: -1})
			l.sizes[cname] = maxInt2(k.n, 1)
			l.dims[cname] = []int{maxInt2(k.n, 1)}
			l.initA[cname] = make([]float64, maxInt2(k.n, 1))

			m := add(&kernel{name: u.Name + "_red", kind: kMerge, n: 1, srcOp: k.idx, redVar: k.redVar})
			snapshot(m)
			m.writeS = map[string]int{k.redVar: 0}
			id := newSVer(k.redVar, m.idx)
			m.writeS[k.redVar] = id
			m.verS[k.redVar] = id
		}
	}

	// Oracle graph: the compiled nodes and edges verbatim, plus the
	// merge nodes with explicit ordering edges — a reduction's merge
	// must run after it, and everything later that touches the reduced
	// scalar must run after the merge. (The merges are the oracle's own
	// nodes, so the compiled graph cannot know these edges.)
	g := delirium.NewGraph(out.Graph.Name)
	for _, k := range l.kernels {
		if err := g.AddNode(&delirium.Node{
			Name: k.name, Kind: delirium.Par,
			Tasks: fmt.Sprintf("%d", k.n), Comment: kindNames[k.kind],
		}); err != nil {
			return nil, err
		}
	}
	for _, e := range out.Graph.Edges {
		ce := *e
		g.AddEdge(&ce)
	}
	for _, k := range l.kernels {
		if k.kind != kMerge {
			continue
		}
		red := l.kernels[k.srcOp]
		g.AddEdge(&delirium.Edge{From: red.name, To: k.name, Bytes: 8})
		for _, later := range l.kernels[k.idx+1:] {
			if later.kind == kMerge && later.redVar == k.redVar {
				g.AddEdge(&delirium.Edge{From: k.name, To: later.name, Bytes: 8})
				continue
			}
			if touchesScalar(later, k.redVar) {
				g.AddEdge(&delirium.Edge{From: k.name, To: later.name, Bytes: 8})
			}
		}
	}
	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("fuzz: oracle graph invalid: %v", err)
	}
	l.Graph = g

	// Incoming-edge classification for the order checker.
	for _, k := range l.kernels {
		k.inE = map[int]int{}
	}
	for _, e := range g.Edges {
		if e.Carried {
			continue
		}
		to := l.byName[e.To]
		cls := 1
		if e.Pipelined {
			cls = 2
		}
		if cur, ok := to.inE[l.byName[e.From].idx]; !ok || cls < cur {
			// A plain edge is stricter than a pipelined one; keep the
			// strictest classification when both exist.
			to.inE[l.byName[e.From].idx] = cls
		}
	}

	// Ancestor closures in topological order.
	nk := len(l.kernels)
	l.anyAnc = make([][]bool, nk)
	l.plainAnc = make([][]bool, nk)
	for i := range l.kernels {
		l.anyAnc[i] = make([]bool, nk)
		l.plainAnc[i] = make([]bool, nk)
	}
	order, err := g.TopoOrder()
	if err != nil {
		return nil, err
	}
	for _, node := range order {
		k := l.byName[node.Name]
		for p, cls := range k.inE {
			l.anyAnc[k.idx][p] = true
			for a, ok := range l.anyAnc[p] {
				if ok {
					l.anyAnc[k.idx][a] = true
				}
			}
			if cls == 1 {
				l.plainAnc[k.idx][p] = true
				for a, ok := range l.plainAnc[p] {
					if ok {
						l.plainAnc[k.idx][a] = true
					}
				}
			}
		}
	}
	return l, nil
}

// kernelStmts is the statement list a kernel's write set derives from.
func kernelStmts(k *kernel) []source.Stmt {
	if k.kind == kSerial {
		return k.stmts
	}
	if k.loop != nil {
		return []source.Stmt{k.loop}
	}
	return nil
}

// classify decides how a unit executes. It fills kind, n, and the
// kind-specific fields of k.
func classify(k *kernel, u compile.Unit, groupLoop map[string]*source.Do, writtenScalars map[string]bool, initS map[string]float64) {
	switch u.Role {
	case "AI", "AD", "AM":
		// Pipelined-loop fragments: per-iteration statement lists whose
		// iteration space lives on the AI unit's emitted loop. Execute
		// serially (the AD part is serialized by its carried dependence
		// anyway); an empty fragment is a zero-task placeholder node.
		loop := groupLoop[baseOf(u.Name)]
		if loop == nil {
			lowFail("pipelined unit %s has no group loop", u.Name)
		}
		if len(u.Stmts) == 0 {
			k.kind = kSerial
			k.n = 0
			return
		}
		wrapped := source.CloneStmt(loop).(*source.Do)
		wrapped.Body = source.CloneStmts(u.Stmts)
		k.kind = kSerial
		k.n = 1
		k.stmts = []source.Stmt{wrapped}
		return
	}
	if len(u.Stmts) == 0 {
		k.kind = kSerial
		k.n = 0
		return
	}
	if len(u.Stmts) == 1 {
		if d, ok := u.Stmts[0].(*source.Do); ok {
			if classifyLoop(k, d, writtenScalars, initS) {
				return
			}
		}
	}
	k.kind = kSerial
	k.n = 1
	k.stmts = u.Stmts
}

// classifyLoop attempts the parallel or reduction classification of a
// single do-loop; it reports false to fall back to serial.
func classifyLoop(k *kernel, d *source.Do, writtenScalars map[string]bool, initS map[string]float64) bool {
	iters, ok := enumerate(d, writtenScalars, initS)
	if !ok {
		return false
	}

	// Reduction shape: exactly "s = s + expr" with neither guard nor
	// expr reading s.
	if len(d.Body) == 1 {
		if as, ok := d.Body[0].(*source.Assign); ok {
			if id, ok := as.LHS.(*source.Ident); ok {
				if rhs, ok := as.RHS.(*source.Bin); ok && rhs.Op == "+" {
					if l, ok := rhs.L.(*source.Ident); ok && l.Name == id.Name &&
						!readsScalarExpr(rhs.R, id.Name) &&
						!readsScalarExpr(d.Where, id.Name) && id.Name != d.Var {
						k.kind = kReduction
						k.n = len(iters)
						k.loop = d
						k.iters = iters
						k.redVar = id.Name
						k.redExpr = rhs.R
						return true
					}
				}
			}
		}
	}

	// Parallel shape: iterations own disjoint elements. Every array
	// write must carry the induction variable as a subscript in some
	// dimension (consistent per array), every read of a written array
	// must use the induction variable at that same dimension, no scalar
	// is written, and no inner construct rebinds the induction variable.
	iv := d.Var
	ivDim := map[string]int{}
	parallel := true
	var visitStmts func(ss []source.Stmt)
	visitExprReads := func(e source.Expr) {}
	checkRead := func(ref *source.ArrayRef) {
		dim, written := ivDim[ref.Name]
		if !written {
			return
		}
		if dim >= len(ref.Index) || !isIdent(ref.Index[dim], iv) {
			parallel = false
		}
	}
	visitExprReads = func(e source.Expr) {
		source.WalkExpr(e, func(x source.Expr) {
			if ref, ok := x.(*source.ArrayRef); ok {
				checkRead(ref)
			}
		})
	}
	// First pass: collect write dimensions.
	source.WalkStmts(d.Body, func(s source.Stmt) {
		as, ok := s.(*source.Assign)
		if !ok {
			return
		}
		switch lhs := as.LHS.(type) {
		case *source.Ident:
			parallel = false
		case *source.ArrayRef:
			dim := -1
			for i, ix := range lhs.Index {
				if isIdent(ix, iv) {
					dim = i
					break
				}
			}
			if dim < 0 {
				parallel = false
				return
			}
			if have, ok := ivDim[lhs.Name]; ok && have != dim {
				parallel = false
				return
			}
			ivDim[lhs.Name] = dim
		}
	})
	if !parallel {
		return false
	}
	// Second pass: reads (including guards, subscripts, inner bounds)
	// and structural restrictions.
	visitStmts = func(ss []source.Stmt) {
		for _, s := range ss {
			switch s := s.(type) {
			case *source.Assign:
				visitExprReads(s.RHS)
				if ref, ok := s.LHS.(*source.ArrayRef); ok {
					// Subscripts of other dimensions are reads too.
					for i, ix := range ref.Index {
						if i != ivDim[ref.Name] {
							visitExprReads(ix)
						}
					}
				}
			case *source.Do:
				if s.Var == iv {
					parallel = false
					return
				}
				for _, r := range s.Ranges {
					visitExprReads(r.Lo)
					visitExprReads(r.Hi)
					visitExprReads(r.Step)
				}
				visitExprReads(s.Where)
				visitStmts(s.Body)
			case *source.If:
				visitExprReads(s.Cond)
				visitStmts(s.Then)
				visitStmts(s.Else)
			default:
				parallel = false
				return
			}
		}
	}
	visitExprReads(d.Where)
	visitStmts(d.Body)
	if !parallel {
		return false
	}
	k.kind = kParallel
	k.n = len(iters)
	k.loop = d
	k.iters = iters
	return true
}

// enumerate computes the concrete iteration list of a loop whose
// bounds are bind-time constants: expressions over never-written
// scalars. Loops with dynamic bounds fall back to serial execution.
func enumerate(d *source.Do, writtenScalars map[string]bool, initS map[string]float64) ([]int, bool) {
	iters := []int{}
	for _, r := range d.Ranges {
		lo, ok1 := boundEval(r.Lo, writtenScalars, initS)
		hi, ok2 := boundEval(r.Hi, writtenScalars, initS)
		step := 1.0
		ok3 := true
		if r.Step != nil {
			step, ok3 = boundEval(r.Step, writtenScalars, initS)
		}
		if !ok1 || !ok2 || !ok3 {
			return nil, false
		}
		s := int(math.Round(step))
		if s < 1 {
			lowFail("non-positive do step %d", s)
		}
		for i := int(math.Round(lo)); i <= int(math.Round(hi)); i += s {
			iters = append(iters, i)
			if len(iters) > maxKernelTasks {
				lowFail("loop exceeds %d iterations", maxKernelTasks)
			}
		}
	}
	return iters, true
}

// boundEval evaluates a bound expression over the initial scalars,
// refusing anything dynamic (arrays, calls, written scalars).
func boundEval(e source.Expr, writtenScalars map[string]bool, initS map[string]float64) (float64, bool) {
	switch e := e.(type) {
	case *source.Num:
		return numValue(e), true
	case *source.Ident:
		if writtenScalars[e.Name] {
			return 0, false
		}
		v, ok := initS[e.Name]
		return v, ok
	case *source.Un:
		if e.Op != "-" {
			return 0, false
		}
		v, ok := boundEval(e.X, writtenScalars, initS)
		return -v, ok
	case *source.Bin:
		l, ok1 := boundEval(e.L, writtenScalars, initS)
		r, ok2 := boundEval(e.R, writtenScalars, initS)
		if !ok1 || !ok2 {
			return 0, false
		}
		switch e.Op {
		case "+":
			return l + r, true
		case "-":
			return l - r, true
		case "*":
			return l * r, true
		case "/":
			if r == 0 {
				return 0, false
			}
			return l / r, true
		}
	}
	return 0, false
}

// constEval evaluates a declaration extent over the initial scalars.
func constEval(e source.Expr, initS map[string]float64) (float64, bool) {
	return boundEval(e, map[string]bool{}, initS)
}

// writeSets collects the arrays and scalars a statement list assigns,
// in first-write order.
func writeSets(ss []source.Stmt) (arrays, scalars []string) {
	seenA := map[string]bool{}
	seenS := map[string]bool{}
	source.WalkStmts(ss, func(s source.Stmt) {
		as, ok := s.(*source.Assign)
		if !ok {
			return
		}
		switch lhs := as.LHS.(type) {
		case *source.Ident:
			if !seenS[lhs.Name] {
				seenS[lhs.Name] = true
				scalars = append(scalars, lhs.Name)
			}
		case *source.ArrayRef:
			if !seenA[lhs.Name] {
				seenA[lhs.Name] = true
				arrays = append(arrays, lhs.Name)
			}
		}
	})
	return arrays, scalars
}

// touchesScalar reports whether a kernel reads or writes the scalar.
func touchesScalar(k *kernel, name string) bool {
	if k.kind == kMerge {
		return k.redVar == name
	}
	found := false
	check := func(e source.Expr) {
		if readsScalarExpr(e, name) {
			found = true
		}
	}
	if k.loop != nil {
		for _, r := range k.loop.Ranges {
			check(r.Lo)
			check(r.Hi)
			check(r.Step)
		}
		check(k.loop.Where)
	}
	source.WalkStmts(kernelStmts(k), func(s source.Stmt) {
		switch s := s.(type) {
		case *source.Assign:
			if id, ok := s.LHS.(*source.Ident); ok && id.Name == name {
				found = true
			}
			check(s.RHS)
			if ref, ok := s.LHS.(*source.ArrayRef); ok {
				for _, ix := range ref.Index {
					check(ix)
				}
			}
		case *source.Do:
			for _, r := range s.Ranges {
				check(r.Lo)
				check(r.Hi)
				check(r.Step)
			}
			check(s.Where)
		case *source.If:
			check(s.Cond)
		case *source.CallStmt:
			for _, a := range s.Args {
				check(a)
			}
		}
	})
	if k.kind == kReduction {
		check(k.redExpr)
	}
	return found
}

// readsScalarExpr reports whether e references the scalar by name.
func readsScalarExpr(e source.Expr, name string) bool {
	found := false
	source.WalkExpr(e, func(x source.Expr) {
		if id, ok := x.(*source.Ident); ok && id.Name == name {
			found = true
		}
	})
	return found
}

func isIdent(e source.Expr, name string) bool {
	id, ok := e.(*source.Ident)
	return ok && id.Name == name
}

func numValue(n *source.Num) float64 {
	if n.IsReal {
		var v float64
		fmt.Sscanf(n.Text, "%g", &v)
		return v
	}
	return float64(n.Int)
}

// baseOf strips a split-part suffix (_i/_d/_m/_ai/_ad/_am), mirroring
// the compiler's unit naming.
func baseOf(n string) string {
	for i := len(n) - 1; i > 0; i-- {
		if n[i] == '_' {
			switch n[i+1:] {
			case "i", "d", "m", "ai", "ad", "am":
				return n[:i]
			}
			break
		}
	}
	return n
}

func maxInt2(a, b int) int {
	if a > b {
		return a
	}
	return b
}
