package fuzz

import (
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

// nestedCorpusSeeds loads the nested-rung corpus: one seed per
// non-comment line of testdata/nested-corpus/seeds.txt, optionally
// followed by a '#' comment describing why the seed is pinned. Nested
// programs are fully determined by their seed, so the corpus stores
// seeds rather than program text.
func nestedCorpusSeeds(t *testing.T) []uint64 {
	t.Helper()
	data, err := os.ReadFile(filepath.Join("testdata", "nested-corpus", "seeds.txt"))
	if err != nil {
		t.Fatal(err)
	}
	var seeds []uint64
	for i, line := range strings.Split(string(data), "\n") {
		if idx := strings.IndexByte(line, '#'); idx >= 0 {
			line = line[:idx]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		seed, err := strconv.ParseUint(line, 10, 64)
		if err != nil {
			t.Fatalf("seeds.txt line %d: %v", i+1, err)
		}
		seeds = append(seeds, seed)
	}
	return seeds
}

// TestNestedCorpusReproducers replays every pinned nested-rung seed:
// the recursive program it generates must still reproduce its
// statically unrolled reference's digest bitwise on every backend
// configuration of the rung's matrix.
func TestNestedCorpusReproducers(t *testing.T) {
	seeds := nestedCorpusSeeds(t)
	if len(seeds) == 0 {
		t.Fatal("nested corpus is empty")
	}
	for _, seed := range seeds {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			t.Parallel()
			rep, c := CheckSeedNested(seed)
			if rep.Skip != "" {
				t.Fatalf("reproducer no longer checkable: %s", rep.Skip)
			}
			if rep.Failed() {
				t.Fatalf("nested regression:\n%s\n--- program ---\n%s", rep, c)
			}
		})
	}
}
