package fuzz

import (
	"testing"

	"orchestra/internal/compile"
	"orchestra/internal/interp"
	"orchestra/internal/source"
)

// TestCampaignSmoke runs a small slice of the differential campaign on
// every `go test`. The full campaign lives in cmd/orchfuzz (and the CI
// fuzz job); this keeps a canary in the ordinary test run without
// making it slow.
func TestCampaignSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign smoke is not short")
	}
	cfg := DefaultGenConfig()
	for seed := uint64(1); seed <= 25; seed++ {
		rep, prog := CheckSeed(seed, cfg)
		if rep.Failed() {
			t.Fatalf("seed %d diverged:\n%s\nprogram:\n%s", seed, rep, source.Format(prog))
		}
	}
}

// TestSearchedCampaignSmoke is the same canary for the searched-program
// rung: a slice of seeds through profile → split search → searched-graph
// execution, bitwise against the sequential baseline. The full campaign
// lives in cmd/orchfuzz -search (and the CI search job).
func TestSearchedCampaignSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign smoke is not short")
	}
	cfg := DefaultGenConfig()
	for seed := uint64(1); seed <= 15; seed++ {
		rep, prog := CheckSeedSearched(seed, cfg)
		if rep.Failed() {
			t.Fatalf("seed %d diverged:\n%s\nprogram:\n%s", seed, rep, source.Format(prog))
		}
	}
}

// FuzzPipeline drives the full differential ladder — reference
// interpreter, compiled-program interpreter, lowered sequential run,
// and the whole simulator/native backend matrix — from a single seed.
// The seed determines both the generated program and its initial
// memory image, so every crasher is replayable with
// `orchfuzz -seed N` and minimizable with `orchfuzz -minimize N`.
func FuzzPipeline(f *testing.F) {
	// Seeds whose generated programs historically exercised real bugs
	// (see testdata/fuzz-corpus), plus a spread of ordinary ones.
	for _, seed := range []uint64{1, 2, 3, 7, 14, 18, 42, 100} {
		f.Add(seed)
	}
	cfg := DefaultGenConfig()
	f.Fuzz(func(t *testing.T, seed uint64) {
		rep, prog := CheckSeed(seed, cfg)
		if rep.Failed() {
			t.Fatalf("seed %d diverged:\n%s\nprogram:\n%s", seed, rep, source.Format(prog))
		}
	})
}

// FuzzSplitEquivalence checks only the source-to-source layer: the
// compiled (decomposed/split/pipelined) program must compute the same
// observable state as the original under the reference interpreter.
// It is much cheaper per execution than FuzzPipeline, so it explores
// far more programs per second, and it isolates the transformation
// pipeline from scheduling: a failure here is a compile bug by
// construction, never a runtime one.
func FuzzSplitEquivalence(f *testing.F) {
	for _, seed := range []uint64{1, 2, 3, 7, 14, 18, 42, 100} {
		f.Add(seed)
	}
	cfg := DefaultGenConfig()
	f.Fuzz(func(t *testing.T, seed uint64) {
		prog := NewGen(seed, cfg).Program()
		img, err := buildImage(prog, seed)
		if err != nil {
			t.Skip(err)
		}
		arrays, scalars := observed(prog)

		refSt, err := img.state(prog)
		if err != nil {
			t.Skip(err)
		}
		if err := interp.Run(source.CloneProgram(prog), refSt); err != nil {
			t.Skip(err)
		}

		out, err := compile.Compile(source.CloneProgram(prog), compile.DefaultOptions())
		if err != nil {
			t.Fatalf("seed %d: compile: %v\nprogram:\n%s", seed, err, source.Format(prog))
		}
		transSt, err := img.state(out.Program)
		if err != nil {
			t.Skip(err)
		}
		if err := interp.Run(out.Program, transSt); err != nil {
			t.Fatalf("seed %d: transformed program faulted: %v\nprogram:\n%s", seed, err, source.Format(prog))
		}
		if d := diffFinal(interpFinal{refSt}, interpFinal{transSt}, arrays, scalars, false); d != "" {
			t.Fatalf("seed %d: transformed program diverged: %s\nprogram:\n%s", seed, d, source.Format(prog))
		}
	})
}
