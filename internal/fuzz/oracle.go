package fuzz

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"orchestra/internal/compile"
	"orchestra/internal/dist"
	"orchestra/internal/interp"
	"orchestra/internal/machine"
	"orchestra/internal/native"
	"orchestra/internal/obs"
	"orchestra/internal/rts"
	"orchestra/internal/source"
	"orchestra/internal/stats"
)

// The differential oracle. One program, one seed-derived initial
// memory image, and a ladder of executions whose disagreements
// localize a bug to a layer:
//
//	ref   = interpreter on the original program        (ground truth)
//	trans = interpreter on the transformed program     (≠ ref ⇒ compiler bug)
//	gseq  = lowered kernels, sequential, once each     (≠ trans ⇒ lowering bug)
//	sim/native under every config                      (≠ gseq ⇒ orchestration bug)
//
// ref-vs-trans uses a small relative tolerance (the transformations
// may legally reassociate only where bitwise identity is impossible to
// promise); everything below is compared bitwise, because the lowered
// kernels replay the interpreter's arithmetic exactly and the backends
// execute those same kernels — any drift at all is a real ordering or
// gating defect. The simulator's ModeSplit runs additionally carry the
// execution-order oracle (see Instance.checkSim), which catches gating
// bugs the settling pass would otherwise mask.
type Divergence struct {
	Config string // which rung/config disagreed
	Kind   string // divergence taxonomy key (see DESIGN.md)
	Detail string
	// Trace, when non-nil, is an event trace of a re-execution of the
	// diverging backend configuration — chunk spans, steals, TAPER
	// decisions and gate advances — captured so the schedule that
	// produced a divergence can be inspected (orchfuzz -trace-dir
	// exports it as a Chrome trace). Re-execution is not replay: a
	// nondeterministic native divergence may not recur in the traced
	// run, but the gating/ordering structure is usually the same.
	Trace *obs.Trace
}

func (d Divergence) String() string {
	return fmt.Sprintf("[%s] %s: %s", d.Config, d.Kind, d.Detail)
}

// Report is the oracle's verdict on one program.
type Report struct {
	Seed uint64
	// Skip explains why the program was not checked (invalid under the
	// reference interpreter, or outside the lowering's supported shape).
	Skip string
	Divs []Divergence
	// Kinds counts lowered kernels by classification, for campaign
	// coverage statistics.
	Kinds map[string]int
}

// Failed reports whether any rung diverged.
func (r *Report) Failed() bool { return len(r.Divs) > 0 }

func (r *Report) String() string {
	if r.Skip != "" {
		return "skip: " + r.Skip
	}
	if !r.Failed() {
		return "ok"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%d divergences:\n", len(r.Divs))
	for _, d := range r.Divs {
		fmt.Fprintf(&b, "  %s\n", d)
	}
	return b.String()
}

// memImage is the seed-derived initial memory shared by every rung.
type memImage struct {
	scalars map[string]float64
	arrays  map[string][]float64
	dims    map[string][]int
}

// buildImage derives concrete initial memory for a program's
// declarations from the seed: small extents (the oracle wants many
// programs, not big ones), a split point strictly inside [2, n-1], a
// mixed mask, and smooth real data.
func buildImage(p *source.Program, seed uint64) (*memImage, error) {
	rng := stats.NewRNG(seed ^ 0xd1b54a32d192ed03)
	img := &memImage{
		scalars: map[string]float64{},
		arrays:  map[string][]float64{},
		dims:    map[string][]int{},
	}
	n := 8 + rng.Intn(9) // 8..16
	for _, d := range p.Decls {
		if d.IsArray() {
			continue
		}
		switch d.Name {
		case "n":
			img.scalars["n"] = float64(n)
		case "a":
			img.scalars["a"] = float64(3 + rng.Intn(n-5))
		default:
			if d.Type == source.Integer {
				img.scalars[d.Name] = float64(rng.Intn(5))
			} else {
				img.scalars[d.Name] = math.Floor(rng.Uniform(-2, 2)*64) / 64
			}
		}
	}
	for _, d := range p.Decls {
		if !d.IsArray() {
			continue
		}
		size := 1
		var dims []int
		for _, de := range d.Dims {
			v, ok := constEval(de, img.scalars)
			iv := int(math.Round(v))
			if !ok || iv < 1 || iv > maxKernelTasks {
				return nil, fmt.Errorf("declaration %s has non-constant extent", d.Name)
			}
			dims = append(dims, iv)
			size *= iv
			if size > 1<<22 {
				return nil, fmt.Errorf("declaration %s too large", d.Name)
			}
		}
		buf := make([]float64, size)
		for i := range buf {
			if d.Name == "mask" {
				if rng.Bernoulli(0.6) {
					buf[i] = 1
				}
			} else if d.Type == source.Integer {
				buf[i] = float64(rng.Intn(4))
			} else {
				// Dyadic rationals keep arithmetic exact-ish without
				// hiding real rounding differences downstream.
				buf[i] = math.Floor(rng.Uniform(-2, 2)*64) / 64
			}
		}
		img.arrays[d.Name] = buf
		img.dims[d.Name] = dims
	}
	return img, nil
}

// state builds an interpreter state over a (possibly transformed)
// program's declarations: image-backed where the image knows the name,
// zero-initialized for compiler-introduced temporaries.
func (img *memImage) state(p *source.Program) (*interp.State, error) {
	st := interp.NewState()
	for k, v := range img.scalars {
		st.Scalars[k] = v
	}
	for _, d := range p.Decls {
		if !d.IsArray() {
			if _, ok := st.Scalars[d.Name]; !ok {
				st.Scalars[d.Name] = 0
			}
			continue
		}
		if buf, ok := img.arrays[d.Name]; ok {
			st.Arrays[d.Name] = append([]float64(nil), buf...)
			st.Dims[d.Name] = append([]int(nil), img.dims[d.Name]...)
			continue
		}
		var dims []int
		size := 1
		for _, de := range d.Dims {
			v, ok := constEval(de, img.scalars)
			iv := int(math.Round(v))
			if !ok || iv < 1 {
				return nil, fmt.Errorf("temporary %s has non-constant extent", d.Name)
			}
			dims = append(dims, iv)
			size *= iv
		}
		st.Arrays[d.Name] = make([]float64, size)
		st.Dims[d.Name] = dims
	}
	return st, nil
}

// initFor adapts the image to Lower's inputs for a transformed
// program (temporaries default to zero inside Lower).
func (img *memImage) initFor() (map[string]float64, map[string][]float64) {
	return img.scalars, img.arrays
}

const refTolerance = 1e-9

// diffKind compares two values under the rung's comparison policy.
func valueEqual(a, b float64, bitwise bool) bool {
	if bitwise {
		return math.Float64bits(a) == math.Float64bits(b)
	}
	if a == b {
		return true
	}
	d := math.Abs(a - b)
	m := math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
	return d <= refTolerance*m
}

// observed lists the original program's variables, the only state the
// rungs are compared on (transformation temporaries are private).
func observed(p *source.Program) (arrays, scalars []string) {
	for _, d := range p.Decls {
		if d.IsArray() {
			arrays = append(arrays, d.Name)
		} else {
			scalars = append(scalars, d.Name)
		}
	}
	sort.Strings(arrays)
	sort.Strings(scalars)
	return
}

type finalState interface {
	array(name string) []float64
	scalar(name string) float64
}

type interpFinal struct{ st *interp.State }

func (f interpFinal) array(name string) []float64 { return f.st.Arrays[name] }
func (f interpFinal) scalar(name string) float64  { return f.st.Scalars[name] }

type instFinal struct{ in *Instance }

func (f instFinal) array(name string) []float64 { return f.in.FinalArray(name) }
func (f instFinal) scalar(name string) float64  { return f.in.FinalScalar(name) }

// diffFinal compares two final states over the observed variables and
// describes the first difference, or returns "".
func diffFinal(a, b finalState, arrays, scalars []string, bitwise bool) string {
	for _, name := range scalars {
		va, vb := a.scalar(name), b.scalar(name)
		if !valueEqual(va, vb, bitwise) {
			return fmt.Sprintf("scalar %s: %v (%#x) vs %v (%#x)",
				name, va, math.Float64bits(va), vb, math.Float64bits(vb))
		}
	}
	for _, name := range arrays {
		ba, bb := a.array(name), b.array(name)
		if len(ba) != len(bb) {
			return fmt.Sprintf("array %s: length %d vs %d", name, len(ba), len(bb))
		}
		for i := range ba {
			if !valueEqual(ba[i], bb[i], bitwise) {
				return fmt.Sprintf("array %s[%d]: %v (%#x) vs %v (%#x)",
					name, i, ba[i], math.Float64bits(ba[i]), bb[i], math.Float64bits(bb[i]))
			}
		}
	}
	return ""
}

// backendConfig is one cell of the differential matrix.
type backendConfig struct {
	name     string
	backend  rts.Backend
	opts     rts.RunOpts
	checkSim bool
	// dist marks the fourth rung: the run executes on forked worker
	// processes, bound by name through the registry rather than through
	// an in-process closure.
	dist bool
}

// matrix builds the standard configuration matrix: the simulator over
// {1,3,8} processors × {static, TAPER, split}, and the native runtime
// over {1,2,4} workers × {static, TAPER, split} with an extra tight
// and loose TAPER ω sweep on split mode.
func matrix() []backendConfig {
	var cfgs []backendConfig
	modes := []rts.Mode{rts.ModeStatic, rts.ModeTaper, rts.ModeSplit}
	for _, p := range []int{1, 3, 8} {
		for _, m := range modes {
			cfgs = append(cfgs, backendConfig{
				name:     fmt.Sprintf("sim/p=%d/%s", p, m),
				backend:  rts.NewSimBackend(machine.DefaultConfig(p)),
				opts:     rts.RunOpts{Processors: p, Mode: m},
				checkSim: m == rts.ModeSplit,
			})
		}
	}
	for _, p := range []int{1, 2, 4} {
		for _, m := range modes {
			cfgs = append(cfgs, backendConfig{
				name:    fmt.Sprintf("native/p=%d/%s", p, m),
				backend: native.Backend{},
				opts:    rts.RunOpts{Processors: p, Mode: m},
			})
		}
	}
	for _, omega := range []float64{0.5, 3} {
		cfgs = append(cfgs, backendConfig{
			name:    fmt.Sprintf("native/p=4/%s/omega=%g", rts.ModeSplit, omega),
			backend: native.Backend{},
			opts:    rts.RunOpts{Processors: 4, Mode: rts.ModeSplit, Omega: omega},
		})
	}
	return cfgs
}

// distMatrix is the fourth oracle rung: the same program on real
// forked worker processes. It is opt-in (CheckProgramDist) because
// every cell forks its worker set — orders of magnitude costlier than
// an in-process run.
func distMatrix() []backendConfig {
	var cfgs []backendConfig
	for _, m := range []rts.Mode{rts.ModeStatic, rts.ModeTaper, rts.ModeSplit} {
		cfgs = append(cfgs, backendConfig{
			name:    fmt.Sprintf("dist/p=3/%s", m),
			backend: dist.Backend{},
			opts:    rts.RunOpts{Processors: 3, Mode: m},
			dist:    true,
		})
	}
	return cfgs
}

// baseline is the outcome of the ladder's first three rungs — the
// lowered program plus the sequential final state every scheduled
// configuration is compared against.
type baseline struct {
	low     *Lowered
	gseq    finalState
	arrays  []string
	scalars []string
}

// runBaseline executes rungs 0–2 (reference interpreter, transformed
// interpreter, sequential lowered run) and returns the lowered
// baseline, or nil when the report is already decided — either skipped
// (invalid/unsupported input) or diverged before any scheduling ran.
func runBaseline(prog *source.Program, seed uint64, rep *Report) *baseline {
	img, err := buildImage(prog, seed)
	if err != nil {
		rep.Skip = err.Error()
		return nil
	}
	arrays, scalars := observed(prog)

	// Rung 0: the reference interpreter. A program the reference
	// rejects (bad subscripts, division by zero, runaway loops) is
	// invalid input, not a bug.
	refSt, err := img.state(prog)
	if err != nil {
		rep.Skip = err.Error()
		return nil
	}
	if err := interp.Run(source.CloneProgram(prog), refSt); err != nil {
		rep.Skip = fmt.Sprintf("reference interpreter: %v", err)
		return nil
	}
	ref := interpFinal{refSt}

	// Rung 1: compile, and interpret the transformed program.
	out, err := compile.Compile(source.CloneProgram(prog), compile.DefaultOptions())
	if err != nil {
		rep.Divs = append(rep.Divs, Divergence{Config: "compile", Kind: "compile-error", Detail: err.Error()})
		return nil
	}
	transSt, err := img.state(out.Program)
	if err != nil {
		rep.Skip = err.Error()
		return nil
	}
	if err := interp.Run(out.Program, transSt); err != nil {
		rep.Divs = append(rep.Divs, Divergence{Config: "interp/transformed", Kind: "transform-invalid", Detail: err.Error()})
		return nil
	}
	trans := interpFinal{transSt}
	if d := diffFinal(ref, trans, arrays, scalars, false); d != "" {
		rep.Divs = append(rep.Divs, Divergence{Config: "interp/transformed", Kind: "transform-value", Detail: d})
		return nil
	}

	// Rung 2: lower and run the sequential lowered baseline.
	initS, initA := img.initFor()
	low, err := Lower(out, initS, initA)
	if err != nil {
		rep.Skip = err.Error()
		return nil
	}
	rep.Kinds = low.Kinds()
	gseqIn := low.NewInstance(false)
	if err := gseqIn.RunSequential(); err != nil {
		rep.Divs = append(rep.Divs, Divergence{Config: "lowered/seq", Kind: "lowering-runtime", Detail: err.Error()})
		return nil
	}
	gseq := instFinal{gseqIn}
	if d := diffFinal(trans, gseq, arrays, scalars, true); d != "" {
		rep.Divs = append(rep.Divs, Divergence{Config: "lowered/seq", Kind: "lowering-value", Detail: d})
		return nil
	}
	return &baseline{low: low, gseq: gseq, arrays: arrays, scalars: scalars}
}

// CheckProgram runs the full differential ladder on one program with
// the seed-derived initial image. The returned report distinguishes
// invalid/unsupported programs (Skip) from real divergences.
func CheckProgram(prog *source.Program, seed uint64) *Report {
	return checkProgram(prog, seed, false)
}

// CheckProgramDist runs the ladder plus the fourth rung: the dist
// backend on forked worker processes, bound by name through the
// registry. The calling binary must invoke dist.MaybeWorker first
// thing in main (or TestMain) — the dist backend re-executes it.
func CheckProgramDist(prog *source.Program, seed uint64) *Report {
	return checkProgram(prog, seed, true)
}

func checkProgram(prog *source.Program, seed uint64, withDist bool) *Report {
	rep := &Report{Seed: seed}
	base := runBaseline(prog, seed, rep)
	if base == nil {
		return rep
	}
	low, gseq, arrays, scalars := base.low, base.gseq, base.arrays, base.scalars

	// Rung 3: every backend configuration, compared bitwise against the
	// lowered baseline.
	cfgs := matrix()
	if withDist {
		cfgs = append(cfgs, distMatrix()...)
	}
	for _, cfg := range cfgs {
		before := len(rep.Divs)
		in, err := runConfig(prog, seed, low, cfg, nil)
		if err != nil {
			rep.Divs = append(rep.Divs, Divergence{Config: cfg.name, Kind: "backend-error", Detail: err.Error()})
			continue
		}
		if f := in.Failure(); f != "" {
			rep.Divs = append(rep.Divs, Divergence{Config: cfg.name, Kind: "backend-runtime", Detail: f})
		} else {
			for _, v := range in.Violations() {
				rep.Divs = append(rep.Divs, Divergence{Config: cfg.name, Kind: "order-violation", Detail: v})
			}
			if d := diffFinal(gseq, instFinal{in}, arrays, scalars, true); d != "" {
				rep.Divs = append(rep.Divs, Divergence{Config: cfg.name, Kind: "backend-value", Detail: d})
			}
		}
		if len(rep.Divs) > before {
			// Re-execute the diverging configuration with tracing so the
			// divergence report carries the schedule.
			if t := captureTrace(prog, seed, low, cfg); t != nil {
				for i := before; i < len(rep.Divs); i++ {
					rep.Divs[i].Trace = t
				}
			}
		}
	}
	return rep
}

// runConfig executes one matrix cell and returns the instance holding
// its final memory. In-process cells bind the instance's closure; dist
// cells ship the program text through the registry binding, and the
// returned instance is the coordinator's local image (every worker's
// digest was already verified against it by the dist backend itself).
func runConfig(prog *source.Program, seed uint64, low *Lowered, cfg backendConfig, sink obs.Sink) (*Instance, error) {
	opts := cfg.opts
	opts.Sink = sink
	if !cfg.dist {
		in := low.NewInstance(cfg.checkSim)
		_, err := cfg.backend.Run(low.Graph, rts.BindClosure(in.Binder()), opts)
		return in, err
	}
	bound, err := rts.Bind(low.Graph, FuzzBinding(prog, seed))
	if err != nil {
		return nil, err
	}
	if _, err := cfg.backend.Run(low.Graph, bound, opts); err != nil {
		return nil, err
	}
	return InstanceOf(bound), nil
}

// captureTrace re-runs one matrix configuration with an event sink
// attached and returns the collected trace (nil if the re-run errors).
func captureTrace(prog *source.Program, seed uint64, low *Lowered, cfg backendConfig) *obs.Trace {
	var col obs.Collector
	if _, err := runConfig(prog, seed, low, cfg, &col); err != nil {
		return nil
	}
	return col.Trace
}

// CheckSeed generates program #seed and checks it.
func CheckSeed(seed uint64, cfg GenConfig) (*Report, *source.Program) {
	prog := NewGen(seed, cfg).Program()
	return CheckProgram(prog, seed), prog
}

// CheckSeedDist generates program #seed and checks it including the
// dist rung.
func CheckSeedDist(seed uint64, cfg GenConfig) (*Report, *source.Program) {
	prog := NewGen(seed, cfg).Program()
	return CheckProgramDist(prog, seed), prog
}
