package fuzz

import (
	"os"
	"path/filepath"
	"strconv"
	"testing"

	"orchestra/internal/source"
)

// searchCorpusEntries loads the minimized reproducers committed under
// testdata/search-corpus: programs that once broke the searched-program
// rung (profile → split search → searched-graph execution), with the
// same '! seed: N' header convention as the main corpus.
func searchCorpusEntries(t *testing.T) map[string]struct {
	prog *source.Program
	seed uint64
} {
	t.Helper()
	files, err := filepath.Glob(filepath.Join("testdata", "search-corpus", "*.f"))
	if err != nil {
		t.Fatal(err)
	}
	entries := make(map[string]struct {
		prog *source.Program
		seed uint64
	})
	for _, f := range files {
		text, err := os.ReadFile(f)
		if err != nil {
			t.Fatal(err)
		}
		m := corpusSeedRe.FindSubmatch(text)
		if m == nil {
			t.Fatalf("%s: no '! seed: N' header", f)
		}
		seed, err := strconv.ParseUint(string(m[1]), 10, 64)
		if err != nil {
			t.Fatalf("%s: bad seed: %v", f, err)
		}
		prog, err := source.Parse(string(text))
		if err != nil {
			t.Fatalf("%s: parse: %v", f, err)
		}
		entries[filepath.Base(f)] = struct {
			prog *source.Program
			seed uint64
		}{prog, seed}
	}
	return entries
}

// TestSearchCorpusReproducers replays every committed search-rung
// reproducer through the searched-program ladder. These programs each
// broke the profile→search→run seam once (the file header names the
// defect); a failure here is a search or estimator regression.
func TestSearchCorpusReproducers(t *testing.T) {
	entries := searchCorpusEntries(t)
	if len(entries) == 0 {
		t.Fatal("search corpus is empty")
	}
	for name, e := range entries {
		e := e
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			rep := CheckProgramSearched(e.prog, e.seed)
			if rep.Skip != "" {
				t.Fatalf("reproducer no longer checkable: %s", rep.Skip)
			}
			if rep.Failed() {
				t.Fatalf("search regression:\n%s", rep)
			}
		})
	}
}
