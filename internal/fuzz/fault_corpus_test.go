package fuzz

import (
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"testing"

	"orchestra/internal/fault"
	"orchestra/internal/source"
)

var corpusFaultRe = regexp.MustCompile(`!\s*fault:\s*(\S+)`)

// faultCorpusEntries loads the reproducers committed under
// testdata/fault-corpus. Each file is a program plus the fault plan
// that once provoked a recovery bug, with the header comment recording
// the defect; '! seed: N' fixes the initial memory image and
// '! fault: spec' is the plan in fault.Parse syntax.
func faultCorpusEntries(t *testing.T) map[string]struct {
	prog *source.Program
	seed uint64
	plan *fault.Plan
} {
	t.Helper()
	files, err := filepath.Glob(filepath.Join("testdata", "fault-corpus", "*.f"))
	if err != nil {
		t.Fatal(err)
	}
	entries := make(map[string]struct {
		prog *source.Program
		seed uint64
		plan *fault.Plan
	})
	for _, f := range files {
		text, err := os.ReadFile(f)
		if err != nil {
			t.Fatal(err)
		}
		m := corpusSeedRe.FindSubmatch(text)
		if m == nil {
			t.Fatalf("%s: no '! seed: N' header", f)
		}
		seed, err := strconv.ParseUint(string(m[1]), 10, 64)
		if err != nil {
			t.Fatalf("%s: bad seed: %v", f, err)
		}
		fm := corpusFaultRe.FindSubmatch(text)
		if fm == nil {
			t.Fatalf("%s: no '! fault: spec' header", f)
		}
		plan, err := fault.Parse(string(fm[1]))
		if err != nil {
			t.Fatalf("%s: bad fault spec: %v", f, err)
		}
		prog, err := source.Parse(string(text))
		if err != nil {
			t.Fatalf("%s: parse: %v", f, err)
		}
		entries[filepath.Base(f)] = struct {
			prog *source.Program
			seed uint64
			plan *fault.Plan
		}{prog, seed, plan}
	}
	return entries
}

// TestFaultCorpus replays every committed fault reproducer through the
// fault-injection oracle: baseline ladder, then the faulted sim and
// native matrix compared bitwise against the sequential run. Each of
// these plans once provoked a recovery bug; a failure here means a
// failure-tolerance regression, with the file's header naming the
// original defect.
func TestFaultCorpus(t *testing.T) {
	entries := faultCorpusEntries(t)
	if len(entries) < 5 {
		t.Fatalf("fault corpus has %d reproducers, want at least 5", len(entries))
	}
	for name, e := range entries {
		e := e
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			rep := CheckProgramFaults(e.prog, e.seed, e.plan)
			if rep.Skip != "" {
				t.Fatalf("reproducer no longer checkable: %s", rep.Skip)
			}
			if rep.Failed() {
				t.Fatalf("regression:\n%s", rep)
			}
		})
	}
}

// TestFaultCampaignShort runs a slice of the random fault campaign —
// generator programs under generator plans, the exact path orchfuzz
// -faults takes.
func TestFaultCampaignShort(t *testing.T) {
	n := uint64(12)
	if testing.Short() {
		n = 4
	}
	for seed := uint64(1); seed <= n; seed++ {
		rep, _, plan := CheckSeedFaults(seed, DefaultGenConfig())
		if rep.Skip != "" {
			continue
		}
		if rep.Failed() {
			t.Fatalf("seed %d under %s:\n%s", seed, plan, rep)
		}
	}
}
