! A worker that crashes while draining its chain queue holds enabled
! consumer blocks that exist nowhere else — not in any deque, not in an
! inbox — so the detector's steal-drain can never recover them. The
! drain loop must release everything still queued through the
! survivor-aware path (and hand the popped block off) before the worker
! exits, or the run deadlocks with tasks permanently unscheduled. The
! masked producer / exact-index consumer pair below compiles to a
! pipelined edge with the chain attribute, so the faulted native split
! runs schedule consumer blocks in place and the crash lands mid-drain.
! seed: 7
! fault: crash:0@1,crash:2@3,deadline:0.002

program fuzz
  integer n
  integer mask(n)
  real v(n)
  real r(n, n)
  do i1 = 2, n - 1 where (mask(i1) != 0)
    do i2 = 2, n - 1
      r(i2, i1) = r(i2, i1) * 0.5 + 1
    end do
  end do
  do i3 = 2, n - 1
    v(i3) = r(2, i3) + r(i3, i3)
  end do
end
