! A crashed worker exited its goroutine but stayed counted in the live
! set until the detector declared it dead; meanwhile deliveries routed
! recovered segments to the exited worker's inbox (the only worker not
! yet marked dead after false-positive declarations of the others) and
! the work was re-drained forever. A crashing worker must self-declare:
! flip its dead mark and shrink the live set before handing off its
! in-flight segment.
! seed: 6
! fault: crash:3@0,crash:2@3,deadline:0.002

program fuzz
  integer n
  integer a
  integer mask(n)
  real u(n)
  real v(n)
  real w(n)
  real q(n, n)
  real r(n, n)
  real s1
  real s2
  do i1 = 2, n - 1 where (mask(i1) != 0)
    do i2 = 2, n - 1
      r(i2, i1) = r(i2, i2)
    end do
  end do
  do i3 = 2, n - 1
    w(i3) = r(2, i3) + r(i3, i3)
  end do
  do i4 = 2, n - 1
    v(i4) = (q(i4, i4) + w(i4 - 1)) * r(i4 + 1, i4 - 1)
  end do
  do i5 = 2, n - 1 where (mask(i5) == 0)
    if (2.5 > 2) then
      v(i5) = v(i5) * 4 * w(1)
    end if
  end do
  do i6 = 2, n - 1
    v(i6) = w(i6) / (0.5 * q(i6, 1) + 1)
    if (7 > 2) then
      v(i6) = w(i6 - 1) * 1 * w(i6)
    end if
  end do
end
