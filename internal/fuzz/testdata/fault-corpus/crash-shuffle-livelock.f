! A worker crashed holding a popped segment; the recovered segment was
! re-posted to a survivor's inbox, but the detector treated every
! CPU-starved live worker as suspect and kept relocating the segment
! between inboxes faster than any owner was scheduled to drain it — a
! livelock on oversubscribed machines. Recovery must only drain
! declared-dead workers, and posted work must be stealable from any
! inbox so whichever worker is actually running executes it.
! seed: 3
! fault: crash:0@1,deadline:0.002

program fuzz
  integer n
  integer a
  integer mask(n)
  real u(n)
  real v(n)
  real w(n)
  real q(n, n)
  real r(n, n)
  real s1
  real s2
  do i1 = 2, n - 1 where (mask(i1) == 0)
    do i2 = 2, n - 1
      q(i2, i1) = 2 * u(3) * w(i2 + 1)
    end do
  end do
  do i3 = 2, n - 1
    v(i3) = q(2, i3 - 1) + q(i3, i3 - 1)
  end do
  do i4 = 2, n - 1 where (mask(i4) != 0)
    do i5 = 2, n - 1
      r(i5, i4) = f(1, q(i5, i5))
    end do
  end do
  if (a > 2) then
    u(1) = 4 + 2.5
  else
    u(2) = 3 + 1.5
  end if
end
