! Message delay and loss perturb the simulator's cost model — steals
! and gate notifications get slower or retried, never dropped with
! their payload. The invariant under message faults is that only the
! clock moves: final values stay bitwise identical to the sequential
! run on both backends (the native runtime has no modelled messages and
! must treat the plan as a no-op rather than reject it).
! seed: 22
! fault: delay:0.5,loss:0.2,seed:9

program fuzz
  integer n
  integer a
  integer mask(n)
  real u(n)
  real v(n)
  real w(n)
  real q(n, n)
  real r(n, n)
  real s1
  real s2
  do i1 = 2, n - 1 where (mask(i1) == 0)
    do i2 = 2, n - 1
      q(i2, i1) = w(1)
    end do
  end do
  do i3 = 2, n - 1
    w(i3) = q(2, i3) + q(i3, i3)
  end do
  do i4 = 2, n - 1 where (mask(i4) == 0)
    do i5 = 2, n - 1
      r(i5, i4) = 4
    end do
  end do
end
