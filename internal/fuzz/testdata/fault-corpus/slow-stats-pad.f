! A slowdown fault must stretch wall time only. Padding the sleep into
! the measured chunk duration poisoned the per-operator statistics the
! TAPER uses for chunk sizing, so a faulted run's schedule drifted from
! the fault-free one even though no work was lost. The pad has to land
! after the chunk's timing marks are recorded.
! seed: 20
! fault: slow:1@0:4,slow:3@1:8,deadline:0.002

program fuzz
  integer n
  integer a
  integer mask(n)
  real u(n)
  real v(n)
  real w(n)
  real q(n, n)
  real r(n, n)
  real s1
  real s2
  do i1 = 2, n - 1 where (mask(i1) != 0)
    do i2 = 2, n - 1
      q(i2, i1) = 1.5 * 1.5
    end do
  end do
  do i3 = 2, n - 1
    u(i3) = q(2, i3) + q(i3, i3)
  end do
  do i4 = 2, n - 1 where (mask(i4) != 0)
    do i5 = 2, n - 1
      r(i5, i4) = 1.5 - q(i5 + 1, 1) - 6 / (2.5 * w(i5 - 1) + 1)
    end do
  end do
  do i6 = 2, n - 1
    u(i6) = r(2, i6) + r(i6, i6)
  end do
  do i7 = 2, n - 1 where (mask(i7) != 0)
    w(i7) = v(i7) * 2 + (r(1, i7) - 3.5)
    w(i7) = -(q(i7, i7 - 1) / (q(i7 - 1, 1) * r(i7 + 1, i7 + 1) + 1))
  end do
  do i8 = 2, n - 1 where (mask(i8) != 0)
    do i9 = 2, n - 1
      q(i9, i8) = 2.5 * 1.5
    end do
  end do
  do i10 = 2, n - 1
    w(i10) = q(2, i10 - 1) + q(i10, i10 - 1)
  end do
end
