! Wall-clock heartbeat age alone declared workers dead whenever
! scheduling delay exceeded the deadline — on a single-CPU machine
! every runnable-but-unscheduled worker looked stalled, and the
! resulting false-positive storm churned recoveries until the run
! crawled. Staleness must be progress-based (heartbeat value unchanged
! across ticks), and a falsely declared worker that reaches its loop
! top must resurrect itself into the live set.
! seed: 14
! fault: stall:1@1:0.02,stall:2@0:0.01,deadline:0.002

program fuzz
  integer n
  integer a
  integer mask(n)
  real u(n)
  real v(n)
  real w(n)
  real q(n, n)
  real r(n, n)
  real s1
  real s2
  do i1 = 2, n - 1 where (mask(i1) != 0)
    do i2 = 2, n - 1
      r(i2, i1) = -(0.5 + 0.5)
    end do
  end do
  do i3 = 2, n - 1
    u(i3) = r(2, i3) + r(i3, i3)
  end do
  do i4 = 2, n - 1 where (mask(i4) != 0)
    do i5 = 2, n - 1
      q(i5, i4) = (0.5 + u(i5)) / (2 * 3 + 2)
    end do
  end do
  do i6 = 2, n - 1
    v(i6) = q(2, i6 - 1) + q(i6, i6 - 1)
  end do
  if (a > 2) then
    u(1) = 1 + 1.5
  end if
end
