! When crash handling moved from detector declaration to worker
! self-declaration, the reallocation-on-loss emission stayed behind in
! the detector path, so a self-declared crash shrank the live set
! without re-deriving the allocation estimates — traces showed the
! death but no fresh estimate rows. Both declaration paths must emit
! the reallocation.
! seed: 11
! fault: crash:0@1,crash:3@2,deadline:0.002

program fuzz
  integer n
  integer a
  integer mask(n)
  real u(n)
  real v(n)
  real w(n)
  real q(n, n)
  real r(n, n)
  real s1
  real s2
  do i1 = 2, n - 1 where (mask(i1) == 0)
    do i2 = 2, n - 1
      r(i2, i1) = r(i2, 2) - q(3, i2 + 1) + r(i2, i2)
    end do
  end do
  do i3 = 2, n - 1
    u(i3) = r(2, i3 - 1) + r(i3, i3 - 1)
  end do
  if (a > 2) then
    v(1) = 3 + 2.5
  end if
  do i4 = 2, n - 1
    do i5 = 2, n - 1
      q(i5, i4) = 0.5 - q(i5, i5 - 1) / (w(i5) * 0.5 + 1)
    end do
  end do
end
