! A loop with an empty iteration range lowers to an operator with zero
! tasks. Zero-task operators execute no chunks, so they never appear in
! a profiling trace; the search model then rejected every candidate as
! "not covered by the profile" — and since all candidates share the node
! set, search.Run failed outright with "no candidate is covered by the
! profile". The model must treat a declared-zero-task node as trivially
! covered (an empty spec), not as missing profile data.
! seed: 216

program fuzz
  integer n
  integer a
  real w(n)
  do i6 = 2, a and a + 1, n - 1
    w(i6) = f(w(i6 - 1), r(i6 + 1, i6))
    if (v(i6) > 2) then
      w(i6) = u(3) * 3 / (r(i6 + 1, i6 + 1) * v(i6 + 1) + 1)
    end if
  end do
end
