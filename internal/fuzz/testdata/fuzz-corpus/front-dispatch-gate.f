! The gate said how MANY consumer tasks were enabled, but dispatch took each
! queue's front task regardless of its index — a block-decomposed queue
! holding tasks [7,14) handed out task 7 when only tasks [0,3) were enabled.
! Dispatch must bound chunks by each queue's enabled task-index prefix.
! seed: 14

program fuzz
  integer n
  integer a
  integer mask(n)
  real u(n)
  real r(n, n)
  real s1
  real s2
  do i1 = 2, n - 1 where (mask(i1) != 0)
    do i2 = 2, n - 1
      r(i2, i1) = -(0.5 + 0.5)
    end do
  end do
  do i3 = 2, n - 1
    u(i3) = r(2, i3) + r(i3, i3)
  end do
end
