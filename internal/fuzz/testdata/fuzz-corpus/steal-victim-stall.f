! ExecuteDAG stalled at p=1: processor allocations can sum past p, so an
! operator's only queue may belong to a processor that does not exist and is
! reachable only by stealing. Victim selection required est > bestTime
! strictly, which never fires while all time estimates are still zero
! (no samples yet), so the operator was never dispatched.
! seed: 1

program fuzz
  integer n
  integer a
  real u(n)
  real v(n)
  do i3 = 2, n - 1
    v(i3) = r(2, i3) + r(i3, i3)
  end do
  if (a > 2) then
    u(1) = 5 + 3.5
  else
    u(2) = 1 + 3.5
  end if
end
