! The compiler marked every CD-unit edge to its split producer as pipelined.
! Here the consumer reads the producer's whole output vector in an inner
! loop (u(i5) for all i5, per task), so prefix delivery hands it elements
! the producer has not written yet: native backends compute wrong values at
! every worker count. Pipelining requires provably pointwise consumption.
! seed: 14

program fuzz
  integer n
  integer mask(n)
  real u(n)
  real q(n, n)
  real r(n, n)
  do i1 = 2, n - 1 where (mask(i1) != 0)
    do i2 = 2, n - 1
      r(i2, i1) = -(0.5 + 0.5)
    end do
  end do
  do i3 = 2, n - 1
    u(i3) = r(2, i3) + r(i3, i3)
  end do
  do i4 = 2, n - 1 where (mask(i4) != 0)
    do i5 = 2, n - 1
      q(i5, i4) = (0.5 + u(i5)) / (2 * 3 + 2)
    end do
  end do
end
