! The pipelined-edge gate enabled consumer tasks from the producer's
! completion COUNT. Steals finish tasks out of order, so a count of k
! completions can coexist with task 0 still queued; the consumer then reads
! producer tasks that have not produced anything yet. The gate must use the
! contiguous completed prefix.
! seed: 7

program fuzz
  integer n
  integer a
  integer mask(n)
  real w(n)
  real q(n, n)
  do i1 = 2, n - 1 where (mask(i1) != 0)
    do i2 = 2, n - 1
      q(i2, i1) = -v(3) * u(i2)
    end do
  end do
  do i3 = 2, n - 1
    w(i3) = q(2, i3) + q(i3, i3)
  end do
  do i7 = 2, n - 1 where (mask(i7) != 0)
    do i8 = 2, n - 1
      q(i8, i7) = 6
    end do
  end do
  do i9 = 2, n - 1
    w(i9) = q(2, i9) + q(i9, i9)
  end do
end
