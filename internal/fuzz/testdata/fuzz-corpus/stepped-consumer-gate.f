! Same front-dispatch gating defect as front-dispatch-gate.f, minimized from
! a different seed: a guarded matrix producer feeding a column-reading
! consumer through a pipelined edge, with the consumer dispatched past the
! delivered prefix.
! seed: 18

program fuzz
  integer n
  integer mask(n)
  real w(n)
  real q(n, n)
  do i7 = 2, n - 1 where (mask(i7) != 0)
    do i8 = 2, n - 1
      q(i8, i7) = u(i8 + 1)
    end do
  end do
  do i9 = 2, n - 1
    w(i9) = q(2, i9) + q(i9, i9)
  end do
end
