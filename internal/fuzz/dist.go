package fuzz

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"math"

	"orchestra/internal/compile"
	"orchestra/internal/rts"
	"orchestra/internal/source"
)

// This file makes fuzz programs runnable on the dist backend: the
// "fuzz" registry kernel rebuilds a program's lowered instance from
// data alone (the program source text and the image seed ship in
// rts.Binding.Params), and Pack/Apply move a segment's version-buffer
// writes across the socket. Both sides of the socket run the same
// deterministic pipeline — parse, compile, buildImage, Lower — so
// version ids, task counts and initial memory agree bit-for-bit.

func init() {
	rts.Kernels.MustRegister("fuzz", fuzzKernel)
}

// FuzzBinding names the "fuzz" kernel for one generated program: the
// formatted source text and the oracle's image seed are the entire
// run description.
func FuzzBinding(prog *source.Program, seed uint64) rts.Binding {
	params := rts.KernelParams{"program": source.Format(prog)}
	params.SetUint64("seed", seed)
	return rts.NamedBinding("fuzz", params)
}

// fuzzEnvState is the per-run product of the "fuzz" kernel family.
type fuzzEnvState struct {
	in      *Instance
	arrays  []string
	scalars []string
}

// fuzzKernel resolves one operator: the whole pipeline runs once per
// BindEnv (memoized), per-op resolution reuses the shared instance.
func fuzzKernel(env *rts.BindEnv, op string) (rts.OpSpec, error) {
	v, err := env.Memo("fuzz.instance", func() (any, error) {
		text := env.Params.Str("program", "")
		if text == "" {
			return nil, fmt.Errorf("fuzz kernel: no program parameter")
		}
		seed := env.Params.Uint64("seed", 0)
		st, err := buildState(text, seed)
		if err != nil {
			return nil, err
		}
		env.SetDigest(func() string {
			return st.in.Fingerprint(st.arrays, st.scalars)
		})
		return st, nil
	})
	if err != nil {
		return rts.OpSpec{}, err
	}
	return v.(*fuzzEnvState).in.Binder()(op), nil
}

// buildState reruns the oracle's deterministic front half for one
// (program, seed) pair: parse, derive the initial image, compile,
// lower, and materialize a fresh instance.
func buildState(text string, seed uint64) (*fuzzEnvState, error) {
	prog, err := source.Parse(text)
	if err != nil {
		return nil, fmt.Errorf("fuzz kernel: parse: %w", err)
	}
	arrays, scalars := observed(prog)
	img, err := buildImage(prog, seed)
	if err != nil {
		return nil, fmt.Errorf("fuzz kernel: image: %w", err)
	}
	out, err := compile.Compile(source.CloneProgram(prog), compile.DefaultOptions())
	if err != nil {
		return nil, fmt.Errorf("fuzz kernel: compile: %w", err)
	}
	initS, initA := img.initFor()
	low, err := Lower(out, initS, initA)
	if err != nil {
		return nil, fmt.Errorf("fuzz kernel: lower: %w", err)
	}
	return &fuzzEnvState{in: low.NewInstance(false), arrays: arrays, scalars: scalars}, nil
}

// InstanceOf returns the instance a registry-bound fuzz run executed
// on (the coordinator's local image, for dist runs), or nil when the
// bound value is not a fuzz binding.
func InstanceOf(b *rts.Bound) *Instance {
	if b == nil || b.Env == nil {
		return nil
	}
	v, err := b.Env.Memo("fuzz.instance", func() (any, error) {
		return nil, fmt.Errorf("fuzz: binding was never resolved")
	})
	if err != nil {
		return nil
	}
	return v.(*fuzzEnvState).in
}

// Fingerprint digests the final values of the observed variables —
// the same state diffFinal compares — so two processes can prove
// bitwise agreement with one string.
func (in *Instance) Fingerprint(arrays, scalars []string) string {
	h := sha256.New()
	var buf [8]byte
	for _, name := range scalars {
		h.Write([]byte(name))
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(in.FinalScalar(name)))
		h.Write(buf[:])
	}
	for _, name := range arrays {
		h.Write([]byte(name))
		for _, v := range in.FinalArray(name) {
			binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v))
			h.Write(buf[:])
		}
	}
	return hex.EncodeToString(h.Sum(nil)[:16])
}

// packSegment serializes everything tasks [lo,hi) of kernel k wrote:
// for each version buffer the op owns, the elements whose recorded
// writer lies in the segment, plus the op's scalar-version values.
// The format is private to this kernel family (both ends run the same
// code): little-endian, per array version (id, count, count ×
// (offset, writer, float bits)), then per scalar version (id, bits).
func (in *Instance) packSegment(k *kernel, lo, hi int) []byte {
	var out []byte
	var n32 [4]byte
	var n64 [8]byte
	put32 := func(v int) {
		binary.LittleEndian.PutUint32(n32[:], uint32(v))
		out = append(out, n32[:]...)
	}
	put64 := func(v float64) {
		binary.LittleEndian.PutUint64(n64[:], math.Float64bits(v))
		out = append(out, n64[:]...)
	}

	// Count owned array versions first so Apply can loop exactly.
	var owned []int
	for id := range in.low.aPlans {
		if in.low.aPlans[id].owner == k.idx {
			owned = append(owned, id)
		}
	}
	put32(len(owned))
	for _, id := range owned {
		put32(id)
		countAt := len(out)
		put32(0)
		count := 0
		flag, writer := in.aFlag[id], in.aWriter[id]
		for off := range flag {
			if flag[off] && int(writer[off]) >= lo && int(writer[off]) < hi {
				put32(off)
				put32(int(writer[off]))
				put64(in.aVals[id][off])
				count++
			}
		}
		binary.LittleEndian.PutUint32(out[countAt:], uint32(count))
	}

	countAt := len(out)
	put32(0)
	count := 0
	for id := range in.low.sPlans {
		if in.low.sPlans[id].owner == k.idx && in.sSet[id] {
			put32(id)
			put64(in.sVal[id])
			count++
		}
	}
	binary.LittleEndian.PutUint32(out[countAt:], uint32(count))
	return out
}

// applySegment installs a packed segment into this instance's version
// buffers. Malformed blobs (impossible between same-binary processes)
// record an instance failure rather than corrupting memory.
func (in *Instance) applySegment(k *kernel, lo, hi int, blob []byte) {
	pos := 0
	get32 := func() (int, bool) {
		if pos+4 > len(blob) {
			return 0, false
		}
		v := int(binary.LittleEndian.Uint32(blob[pos:]))
		pos += 4
		return v, true
	}
	get64 := func() (float64, bool) {
		if pos+8 > len(blob) {
			return 0, false
		}
		v := math.Float64frombits(binary.LittleEndian.Uint64(blob[pos:]))
		pos += 8
		return v, true
	}
	bad := func() {
		in.recordFailure(k.name, lo, "malformed dist segment blob")
	}
	nver, ok := get32()
	if !ok {
		bad()
		return
	}
	for v := 0; v < nver; v++ {
		id, ok1 := get32()
		count, ok2 := get32()
		if !ok1 || !ok2 || id < 0 || id >= len(in.aVals) {
			bad()
			return
		}
		for c := 0; c < count; c++ {
			off, ok1 := get32()
			writer, ok2 := get32()
			val, ok3 := get64()
			if !ok1 || !ok2 || !ok3 || off < 0 || off >= len(in.aVals[id]) {
				bad()
				return
			}
			in.aVals[id][off] = val
			in.aWriter[id][off] = int32(writer)
			in.aGen[id][off] = 1
			in.aFlag[id][off] = true
		}
	}
	nsca, ok := get32()
	if !ok {
		bad()
		return
	}
	for c := 0; c < nsca; c++ {
		id, ok1 := get32()
		val, ok2 := get64()
		if !ok1 || !ok2 || id < 0 || id >= len(in.sVal) {
			bad()
			return
		}
		in.sVal[id] = val
		in.sGen[id] = 1
		in.sSet[id] = true
	}
}
