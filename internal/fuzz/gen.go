// Package fuzz is the differential conformance fuzzer: it generates
// random mini-Fortran programs, compiles them with every transformation
// enabled, and executes the result through the three execution paths
// the system has — the reference interpreter, the discrete-event
// simulator, and the native goroutine backend — diffing final memory
// bitwise. Any disagreement is a bug in the compiler, a backend, or
// the lowering contract between them; a delta-debugging minimizer
// shrinks diverging programs to committed reproducers.
//
// The package splits into four layers:
//
//   - gen.go: a seeded random program generator producing ASTs from a
//     grammar tuned to the constructs the split/pipeline
//     transformations act on (loop nests, where guards, reductions,
//     interference patterns);
//   - lower.go: lowering of compiled units to dataflow-safe kernels
//     over a versioned memory image, so any task execution order a
//     backend produces yields bit-identical results;
//   - oracle.go: the differential oracle running one program through
//     every backend × processor count × mode × grain configuration;
//   - minimize.go: the reducer.
package fuzz

import (
	"fmt"

	"orchestra/internal/source"
	"orchestra/internal/stats"
)

// GenConfig bounds the generator's output.
type GenConfig struct {
	// MaxTopLoops is the number of top-level constructs beyond the
	// leading producer/consumer pair.
	MaxTopLoops int
	// Wild, when set, widens the grammar to constructs the lowering
	// handles only serially (scalar temporaries, constant-subscript
	// writes in loops) — useful for hunting compile bugs rather than
	// backend bugs.
	Wild bool
}

// DefaultGenConfig matches the fuzz campaign's default shape.
func DefaultGenConfig() GenConfig {
	return GenConfig{MaxTopLoops: 4}
}

// Gen generates random well-formed programs as ASTs. Generating ASTs
// rather than text means the printer/parser round-trip is itself under
// test: every generated program is formatted and re-parsed before use,
// and any mismatch is a source-layer bug.
type Gen struct {
	rng    *stats.RNG
	cfg    GenConfig
	vecs   []string // 1-D real arrays, extent n
	mats   []string // 2-D real arrays, extent (n, n)
	sums   []string // real reduction scalars
	nextID int
}

// NewGen seeds a generator.
func NewGen(seed uint64, cfg GenConfig) *Gen {
	if cfg.MaxTopLoops < 1 {
		cfg.MaxTopLoops = 1
	}
	return &Gen{
		rng:  stats.NewRNG(seed),
		cfg:  cfg,
		vecs: []string{"u", "v", "w"},
		mats: []string{"q", "r"},
		sums: []string{"s1", "s2"},
	}
}

// Observed lists the variables whose final values the oracle compares:
// every original-program array plus the reduction scalars.
func (g *Gen) Observed() (arrays, scalars []string) {
	arrays = append(append([]string{}, g.vecs...), g.mats...)
	arrays = append(arrays, "mask")
	scalars = append(scalars, g.sums...)
	return arrays, scalars
}

func num(v int64) *source.Num { return &source.Num{Text: fmt.Sprintf("%d", v), Int: v} }

func ident(name string) *source.Ident { return &source.Ident{Name: name} }

func bin(op string, l, r source.Expr) *source.Bin { return &source.Bin{Op: op, L: l, R: r} }

// ivExpr renders the induction variable plus a small offset.
func ivExpr(iv string, off int) source.Expr {
	switch {
	case off == 0:
		return ident(iv)
	case off > 0:
		return bin("+", ident(iv), num(int64(off)))
	default:
		return bin("-", ident(iv), num(int64(-off)))
	}
}

// Program generates one complete program. The body leads with a
// split-friendly producer/consumer phase pair, then random filler
// constructs; the mix is tuned so most programs trigger at least one
// transformation.
func (g *Gen) Program() *source.Program {
	p := &source.Program{Name: "fuzz"}
	addDecl := func(name string, t source.BaseType, dims ...source.Expr) {
		p.Decls = append(p.Decls, &source.Decl{Name: name, Type: t, Dims: dims})
	}
	addDecl("n", source.Integer)
	addDecl("a", source.Integer) // split point, kept in [1, n] by the oracle
	addDecl("mask", source.Integer, ident("n"))
	for _, v := range g.vecs {
		addDecl(v, source.Real, ident("n"))
	}
	for _, m := range g.mats {
		addDecl(m, source.Real, ident("n"), ident("n"))
	}
	for _, s := range g.sums {
		addDecl(s, source.Real)
	}

	p.Body = append(p.Body, g.phasePair()...)
	extra := g.rng.Intn(g.cfg.MaxTopLoops + 1)
	for i := 0; i < extra; i++ {
		switch g.rng.Intn(10) {
		case 0, 1:
			p.Body = append(p.Body, g.phasePair()...)
		case 2:
			p.Body = append(p.Body, g.reductionLoop())
		case 3:
			p.Body = append(p.Body, g.topIf())
		case 4:
			if g.cfg.Wild {
				p.Body = append(p.Body, g.wildStmt())
				break
			}
			p.Body = append(p.Body, g.vectorLoop())
		default:
			if g.rng.Bernoulli(0.5) {
				p.Body = append(p.Body, g.vectorLoop())
			} else {
				p.Body = append(p.Body, g.matrixLoop())
			}
		}
	}
	return p
}

// freshVar mints a new induction-variable name.
func (g *Gen) freshVar() string {
	g.nextID++
	return fmt.Sprintf("i%d", g.nextID)
}

// guard yields a random where-guard over the mask for induction var iv.
func (g *Gen) guard(iv string) source.Expr {
	op := "!="
	if g.rng.Bernoulli(0.5) {
		op = "=="
	}
	return bin(op, &source.ArrayRef{Name: "mask", Index: []source.Expr{ident(iv)}}, num(0))
}

// subscript yields an in-bounds read index for iv ranging within
// [2, n-1]: the variable itself, a ±1 neighbour, or a small constant.
func (g *Gen) subscript(iv string) source.Expr {
	switch g.rng.Intn(5) {
	case 0, 1:
		return ident(iv)
	case 2:
		return ivExpr(iv, -1)
	case 3:
		return ivExpr(iv, 1)
	default:
		return num(int64(1 + g.rng.Intn(3)))
	}
}

// valueExpr yields an arithmetic RHS reading arrays and constants. All
// operations are reassociation-free in the generated tree, so equal
// ASTs evaluate bitwise-identically everywhere.
func (g *Gen) valueExpr(iv string, depth int) source.Expr {
	if depth <= 0 || g.rng.Bernoulli(0.3) {
		return g.leafExpr(iv)
	}
	switch g.rng.Intn(6) {
	case 0:
		return bin("+", g.valueExpr(iv, depth-1), g.valueExpr(iv, depth-1))
	case 1:
		return bin("-", g.valueExpr(iv, depth-1), g.valueExpr(iv, depth-1))
	case 2:
		return bin("*", g.valueExpr(iv, depth-1), g.leafExpr(iv))
	case 3:
		// Division by a structurally positive denominator.
		den := bin("+", bin("*", g.leafExpr(iv), g.leafExpr(iv)), num(int64(1+g.rng.Intn(3))))
		return bin("/", g.valueExpr(iv, depth-1), den)
	case 4:
		return &source.Un{Op: "-", X: g.valueExpr(iv, depth-1)}
	default:
		// External pure function (the interpreter's deterministic
		// stand-in).
		return &source.FuncCall{Name: "f", Args: []source.Expr{g.leafExpr(iv), g.leafExpr(iv)}}
	}
}

func (g *Gen) leafExpr(iv string) source.Expr {
	switch g.rng.Intn(4) {
	case 0:
		return &source.ArrayRef{Name: g.vecs[g.rng.Intn(len(g.vecs))], Index: []source.Expr{g.subscript(iv)}}
	case 1:
		return &source.ArrayRef{
			Name:  g.mats[g.rng.Intn(len(g.mats))],
			Index: []source.Expr{g.subscript(iv), g.subscript(iv)},
		}
	case 2:
		return num(int64(1 + g.rng.Intn(7)))
	default:
		return &source.Num{Text: fmt.Sprintf("%d.5", g.rng.Intn(4)), IsReal: true}
	}
}

// ranges yields the loop's iteration space: usually one [2, n-1]
// segment, sometimes a stepped segment or a discontinuous pair split at
// the program's split-point scalar a.
func (g *Gen) ranges() []source.DoRange {
	switch g.rng.Intn(6) {
	case 0:
		// Stepped: do i = 2, n - 1, 2
		return []source.DoRange{{Lo: num(2), Hi: bin("-", ident("n"), num(1)), Step: num(2)}}
	case 1:
		// Discontinuous: do i = 2, a and a + 1, n - 1
		return []source.DoRange{
			{Lo: num(2), Hi: ident("a")},
			{Lo: bin("+", ident("a"), num(1)), Hi: bin("-", ident("n"), num(1))},
		}
	default:
		return []source.DoRange{{Lo: num(2), Hi: bin("-", ident("n"), num(1))}}
	}
}

// vectorLoop yields a parallel loop updating 1-D arrays: every write
// subscript is exactly the induction variable, so iterations own
// disjoint elements; reads may touch neighbours (anti-dependences,
// which sequential ascending order and the double-buffered lowering
// agree on).
func (g *Gen) vectorLoop() source.Stmt {
	iv := g.freshVar()
	d := &source.Do{Var: iv, Ranges: g.ranges()}
	if g.rng.Bernoulli(0.35) {
		d.Where = g.guard(iv)
	}
	dst := g.vecs[g.rng.Intn(len(g.vecs))]
	n := 1 + g.rng.Intn(2)
	for k := 0; k < n; k++ {
		stmt := &source.Assign{
			LHS: &source.ArrayRef{Name: dst, Index: []source.Expr{ident(iv)}},
			RHS: g.valueExpr(iv, 2),
		}
		if g.rng.Bernoulli(0.25) {
			d.Body = append(d.Body, &source.If{
				Cond: bin(">", g.leafExpr(iv), num(2)),
				Then: []source.Stmt{stmt},
			})
		} else {
			d.Body = append(d.Body, stmt)
		}
	}
	return d
}

// matrixLoop yields a column-parallel loop nest: the outer induction
// variable owns one matrix column per iteration.
func (g *Gen) matrixLoop() source.Stmt {
	cv := g.freshVar()
	rv := g.freshVar()
	mat := g.mats[g.rng.Intn(len(g.mats))]
	inner := &source.Do{
		Var:    rv,
		Ranges: []source.DoRange{{Lo: num(2), Hi: bin("-", ident("n"), num(1))}},
		Body: []source.Stmt{&source.Assign{
			LHS: &source.ArrayRef{Name: mat, Index: []source.Expr{ident(rv), ident(cv)}},
			RHS: g.valueExpr(rv, 2),
		}},
	}
	outer := &source.Do{Var: cv, Ranges: g.ranges(), Body: []source.Stmt{inner}}
	if g.rng.Bernoulli(0.4) {
		outer.Where = g.guard(cv)
	}
	return outer
}

// reductionLoop yields s = s + expr over the iteration space.
func (g *Gen) reductionLoop() source.Stmt {
	iv := g.freshVar()
	s := g.sums[g.rng.Intn(len(g.sums))]
	d := &source.Do{Var: iv, Ranges: g.ranges()}
	if g.rng.Bernoulli(0.3) {
		d.Where = g.guard(iv)
	}
	d.Body = []source.Stmt{&source.Assign{
		LHS: ident(s),
		RHS: bin("+", ident(s), g.valueExpr(iv, 2)),
	}}
	return d
}

// topIf yields a top-level conditional over the split-point scalar.
func (g *Gen) topIf() source.Stmt {
	dst := g.vecs[g.rng.Intn(len(g.vecs))]
	mk := func(v int64) []source.Stmt {
		rhs := bin("+", num(int64(1+g.rng.Intn(5))),
			&source.Num{Text: fmt.Sprintf("%d.5", g.rng.Intn(4)), IsReal: true})
		return []source.Stmt{&source.Assign{
			LHS: &source.ArrayRef{Name: dst, Index: []source.Expr{num(1 + v)}},
			RHS: rhs,
		}}
	}
	st := &source.If{Cond: bin(">", ident("a"), num(2)), Then: mk(0)}
	if g.rng.Bernoulli(0.6) {
		st.Else = mk(1)
	}
	return st
}

// wildStmt yields constructs outside the parallel-safe core: the
// lowering executes the enclosing unit serially, so these hunt compile
// bugs rather than backend scheduling bugs.
func (g *Gen) wildStmt() source.Stmt {
	iv := g.freshVar()
	dst := g.vecs[g.rng.Intn(len(g.vecs))]
	// A carried recurrence: u(i) = u(i - 1) + e.
	return &source.Do{
		Var:    iv,
		Ranges: []source.DoRange{{Lo: num(2), Hi: bin("-", ident("n"), num(1))}},
		Body: []source.Stmt{&source.Assign{
			LHS: &source.ArrayRef{Name: dst, Index: []source.Expr{ident(iv)}},
			RHS: bin("+", &source.ArrayRef{Name: dst, Index: []source.Expr{ivExpr(iv, -1)}}, g.valueExpr(iv, 1)),
		}},
	}
}

// phasePair yields the shape the split transformation targets: a
// masked producer writing one matrix column per iteration, followed by
// a consumer reading that matrix at iteration-owned columns.
func (g *Gen) phasePair() []source.Stmt {
	mat := g.mats[g.rng.Intn(len(g.mats))]
	dst := g.vecs[g.rng.Intn(len(g.vecs))]
	cv := g.freshVar()
	rv := g.freshVar()
	kv := g.freshVar()
	producer := &source.Do{
		Var:    cv,
		Ranges: []source.DoRange{{Lo: num(2), Hi: bin("-", ident("n"), num(1))}},
		Where:  g.guard(cv),
		Body: []source.Stmt{&source.Do{
			Var:    rv,
			Ranges: []source.DoRange{{Lo: num(2), Hi: bin("-", ident("n"), num(1))}},
			Body: []source.Stmt{&source.Assign{
				LHS: &source.ArrayRef{Name: mat, Index: []source.Expr{ident(rv), ident(cv)}},
				RHS: g.valueExpr(rv, 2),
			}},
		}},
	}
	// The consumer reads columns <= its own iteration index (pointwise
	// correspondence, what makes the pair legal to pipeline).
	var colRead source.Expr = ident(kv)
	if g.rng.Bernoulli(0.3) {
		colRead = ivExpr(kv, -1)
	}
	consumer := &source.Do{
		Var:    kv,
		Ranges: []source.DoRange{{Lo: num(2), Hi: bin("-", ident("n"), num(1))}},
		Body: []source.Stmt{&source.Assign{
			LHS: &source.ArrayRef{Name: dst, Index: []source.Expr{ident(kv)}},
			RHS: bin("+",
				&source.ArrayRef{Name: mat, Index: []source.Expr{num(2), colRead}},
				&source.ArrayRef{Name: mat, Index: []source.Expr{ident(kv), colRead}}),
		}},
	}
	return []source.Stmt{producer, consumer}
}
