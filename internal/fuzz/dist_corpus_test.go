package fuzz

import (
	"os"
	"testing"

	"orchestra/internal/dist"
)

// TestMain routes dist worker forks: the fourth oracle rung re-executes
// this test binary as its worker processes.
func TestMain(m *testing.M) {
	dist.MaybeWorker()
	os.Exit(m.Run())
}

// TestCorpusReproducersDist replays every committed reproducer through
// the extended ladder: the dist configurations fork real worker
// processes and resolve each program through the "fuzz" registry
// kernel, so a divergence here means the orchestration disagrees with
// itself across a process boundary.
func TestCorpusReproducersDist(t *testing.T) {
	if testing.Short() {
		t.Skip("forks worker processes per configuration")
	}
	entries := corpusEntries(t)
	for name, e := range entries {
		e := e
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			rep := CheckProgramDist(e.prog, e.seed)
			if rep.Skip != "" {
				t.Fatalf("reproducer no longer checkable: %s", rep.Skip)
			}
			if rep.Failed() {
				t.Fatalf("dist regression:\n%s", rep)
			}
		})
	}
}
