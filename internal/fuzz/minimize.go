package fuzz

import (
	"orchestra/internal/source"
)

// maxMinimizeProbes bounds how many candidate programs a minimization
// run may test; each probe runs the full differential oracle, so the
// budget keeps pathological inputs from pinning a CPU for hours.
const maxMinimizeProbes = 2000

// Minimize shrinks a program while the keep predicate stays true —
// for a diverging fuzz program, keep is "the divergence still
// reproduces". It applies delta debugging at three levels: removing
// runs of top-level statements, removing runs of statements inside
// loop and branch bodies (plus dropping per-iteration where guards),
// and pruning declarations the body no longer mentions. Every
// candidate is printed and reparsed, so the result is always a valid
// program in canonical form. The original program is returned
// unchanged if it does not satisfy keep (nothing to preserve) or does
// not survive a print/parse round trip.
func Minimize(prog *source.Program, keep func(*source.Program) bool) *source.Program {
	m := &minimizer{keep: keep}
	cur := m.normalize(prog)
	if cur == nil || !keep(cur) {
		return prog
	}
	for changed := true; changed && m.probes < maxMinimizeProbes; {
		changed = false
		if next := m.reduceTop(cur); next != nil {
			cur, changed = next, true
		}
		if next := m.reduceInner(cur); next != nil {
			cur, changed = next, true
		}
		if next := m.pruneDecls(cur); next != nil {
			cur, changed = next, true
		}
	}
	return cur
}

type minimizer struct {
	keep   func(*source.Program) bool
	probes int
}

// normalize round-trips a program through the printer and parser,
// producing an independent copy with analysis-ready internal state.
func (m *minimizer) normalize(p *source.Program) *source.Program {
	re, err := source.Parse(source.Format(p))
	if err != nil {
		return nil
	}
	return re
}

// try tests one candidate, charging the probe budget.
func (m *minimizer) try(p *source.Program) *source.Program {
	if m.probes >= maxMinimizeProbes {
		return nil
	}
	m.probes++
	cand := m.normalize(p)
	if cand == nil || !m.keep(cand) {
		return nil
	}
	return cand
}

// reduceTop removes runs of top-level statements, halving the run
// length until single statements have been attempted. Returns the
// reduced program, or nil when nothing could be removed.
func (m *minimizer) reduceTop(p *source.Program) *source.Program {
	best := p
	improved := false
	for chunk := len(best.Body); chunk >= 1; chunk /= 2 {
		for i := 0; i+chunk <= len(best.Body); {
			cand := source.CloneProgram(best)
			cand.Body = append(cand.Body[:i], cand.Body[i+chunk:]...)
			if len(cand.Body) == 0 {
				i++
				continue
			}
			if next := m.try(cand); next != nil {
				best = next
				improved = true
				continue // same index now names the next run
			}
			i += chunk
		}
	}
	if !improved {
		return nil
	}
	return best
}

// doCount returns the number of Do statements in pre-order, and nthDo
// the n-th of them, so a candidate clone can be edited at the position
// found in the original.
func doCount(body []source.Stmt) int {
	n := 0
	source.WalkStmts(body, func(s source.Stmt) {
		if _, ok := s.(*source.Do); ok {
			n++
		}
	})
	return n
}

func nthDo(body []source.Stmt, n int) *source.Do {
	var found *source.Do
	i := 0
	source.WalkStmts(body, func(s source.Stmt) {
		if d, ok := s.(*source.Do); ok {
			if i == n {
				found = d
			}
			i++
		}
	})
	return found
}

// reduceInner shrinks loop bodies and drops where guards, loop by
// loop. Returns the reduced program, or nil when nothing changed.
func (m *minimizer) reduceInner(p *source.Program) *source.Program {
	best := p
	improved := false
	for di := 0; di < doCount(best.Body); di++ {
		// Guard removal first: it often unlocks body removals.
		if nthDo(best.Body, di).Where != nil {
			cand := source.CloneProgram(best)
			nthDo(cand.Body, di).Where = nil
			if next := m.try(cand); next != nil {
				best = next
				improved = true
			}
		}
		for chunk := len(nthDo(best.Body, di).Body); chunk >= 1; chunk /= 2 {
			for i := 0; ; {
				d := nthDo(best.Body, di)
				if i+chunk > len(d.Body) || len(d.Body) <= 1 {
					break
				}
				cand := source.CloneProgram(best)
				cd := nthDo(cand.Body, di)
				cd.Body = append(cd.Body[:i], cd.Body[i+chunk:]...)
				if next := m.try(cand); next != nil {
					best = next
					improved = true
					continue
				}
				i += chunk
			}
		}
	}
	if !improved {
		return nil
	}
	return best
}

// pruneDecls drops declarations one at a time while the predicate
// holds. Returns the reduced program, or nil when nothing changed.
func (m *minimizer) pruneDecls(p *source.Program) *source.Program {
	best := p
	improved := false
	for i := 0; i < len(best.Decls); {
		cand := source.CloneProgram(best)
		cand.Decls = append(cand.Decls[:i], cand.Decls[i+1:]...)
		if next := m.try(cand); next != nil {
			best = next
			improved = true
			continue
		}
		i++
	}
	if !improved {
		return nil
	}
	return best
}
