package fuzz

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"orchestra/internal/interp"
	"orchestra/internal/rts"
	"orchestra/internal/sched"
	"orchestra/internal/source"
)

// Instance is one run's memory image: fresh version buffers over the
// lowering's immutable plan. A single Instance must see exactly one
// graph execution (backends may execute each task several times — the
// simulator's settling pass — but version buffers are write-once per
// element, so re-execution is idempotent).
type Instance struct {
	low *Lowered

	aVals   [][]float64
	aFlag   [][]bool
	aWriter [][]int32
	// aGen records which execution (the task's call number) wrote each
	// element. Backends may run a task several times — the simulator
	// settles every op once before scheduling — and a kernel that reads
	// elements it later overwrites must not see a previous execution's
	// writes, or re-execution diverges from the first run. Reads ignore
	// own-task elements stamped by an earlier call, restoring each
	// execution's view to "nothing written yet by me".
	aGen [][]int32
	sVal []float64
	sSet []bool
	sGen []int32

	ops []opRun

	// checkSim enables the execution-order oracle. It is sound only for
	// the simulator's ModeSplit runs: there every op's tasks are first
	// executed once by the upfront settling pass (call 1) and then once
	// by the scheduled dataflow execution (call ≥ 2), all on a single
	// goroutine, so per-task call counts distinguish the phases and
	// scheduled-completion marks are exact.
	checkSim bool

	mu         sync.Mutex
	failure    string
	violations []string
}

type opRun struct {
	calls []int32
	mark  []uint32
	pfx   int
}

// prefix returns the length of the contiguous completed prefix of the
// op's scheduled-phase tasks. Marks only ever get set, so the cached
// pointer just advances.
func (o *opRun) prefix() int {
	i := o.pfx
	for i < len(o.mark) && atomic.LoadUint32(&o.mark[i]) != 0 {
		i++
	}
	o.pfx = i
	return i
}

// NewInstance materializes fresh buffers for one execution.
func (l *Lowered) NewInstance(checkSim bool) *Instance {
	in := &Instance{
		low:      l,
		checkSim: checkSim,
		aVals:    make([][]float64, len(l.aPlans)),
		aFlag:    make([][]bool, len(l.aPlans)),
		aWriter:  make([][]int32, len(l.aPlans)),
		aGen:     make([][]int32, len(l.aPlans)),
		sVal:     make([]float64, len(l.sPlans)),
		sSet:     make([]bool, len(l.sPlans)),
		sGen:     make([]int32, len(l.sPlans)),
		ops:      make([]opRun, len(l.kernels)),
	}
	for id, p := range l.aPlans {
		n := l.sizes[p.name]
		in.aVals[id] = make([]float64, n)
		in.aFlag[id] = make([]bool, n)
		in.aWriter[id] = make([]int32, n)
		in.aGen[id] = make([]int32, n)
	}
	for i, k := range l.kernels {
		in.ops[i] = opRun{calls: make([]int32, k.n), mark: make([]uint32, k.n)}
	}
	return in
}

// Binder exposes the instance to a backend. Task costs are a
// deterministic hash of (op, task) so every backend and processor
// count sees identical cost structure — enough spread to exercise
// TAPER's adaptation without making runs irreproducible.
func (in *Instance) Binder() rts.Binder {
	return func(name string) rts.OpSpec {
		k := in.low.byName[name]
		if k == nil {
			// Unknown names only arise from backend bugs; surface them
			// as an empty op rather than a panic inside the engine.
			return rts.OpSpec{Op: sched.Op{Name: name}}
		}
		spec := rts.OpSpec{
			Op:         sched.Op{Name: name, N: k.n, Bytes: 8},
			Mu:         1.5,
			Sigma:      0.6,
			SetupBytes: 64,
		}
		kk := k
		spec.Op.Time = func(i int) float64 { return in.runTask(kk, i) }
		spec.Pack = func(lo, hi int) []byte { return in.packSegment(kk, lo, hi) }
		spec.Apply = func(lo, hi int, blob []byte) { in.applySegment(kk, lo, hi, blob) }
		return spec
	}
}

// RunSequential executes every kernel's tasks once, in graph node
// order (which the lowering keeps topological). This is the lowered
// baseline the backends are compared against bitwise: any backend
// divergence from it is an orchestration bug, not a lowering bug.
func (in *Instance) RunSequential() error {
	for _, k := range in.low.kernels {
		for t := 0; t < k.n; t++ {
			in.runTask(k, t)
		}
		if f := in.Failure(); f != "" {
			return fmt.Errorf("fuzz: sequential run: %s", f)
		}
	}
	return nil
}

// Failure returns the first task runtime error, if any.
func (in *Instance) Failure() string {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.failure
}

// Violations returns the recorded execution-order violations.
func (in *Instance) Violations() []string {
	in.mu.Lock()
	defer in.mu.Unlock()
	return append([]string(nil), in.violations...)
}

func (in *Instance) recordFailure(op string, task int, msg string) {
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.failure == "" {
		in.failure = fmt.Sprintf("%s task %d: %s", op, task, msg)
	}
}

func (in *Instance) violate(format string, args ...interface{}) {
	in.mu.Lock()
	defer in.mu.Unlock()
	if len(in.violations) < 16 {
		in.violations = append(in.violations, fmt.Sprintf(format, args...))
	}
}

// FinalArray resolves an array's final contents: the initial image
// with each version's written elements applied in creation order.
func (in *Instance) FinalArray(name string) []float64 {
	out := append([]float64(nil), in.low.initA[name]...)
	for _, id := range in.low.chainA[name] {
		vals, flag := in.aVals[id], in.aFlag[id]
		for i, f := range flag {
			if f {
				out[i] = vals[i]
			}
		}
	}
	return out
}

// FinalScalar resolves a scalar's final value.
func (in *Instance) FinalScalar(name string) float64 {
	v := in.low.initS[name]
	for _, id := range in.low.chainS[name] {
		if in.sSet[id] {
			v = in.sVal[id]
		}
	}
	return v
}

// taskError aborts one task's evaluation (mirrors the interpreter's
// runtime failures: bad subscripts, division by zero, step limits).
type taskError struct{ msg string }

func (ec *evalCtx) bail(format string, args ...interface{}) {
	panic(&taskError{fmt.Sprintf(format, args...)})
}

// runTask executes one task of one kernel and returns its simulated
// cost. It never panics into the calling engine: evaluation failures
// (and any internal bug) are recorded on the instance, and the
// differential oracle reports them as divergences.
func (in *Instance) runTask(k *kernel, t int) float64 {
	op := &in.ops[k.idx]
	c := atomic.AddInt32(&op.calls[t], 1)
	scheduled := !in.checkSim || c >= 2
	defer func() {
		if r := recover(); r != nil {
			if te, ok := r.(*taskError); ok {
				in.recordFailure(k.name, t, te.msg)
			} else {
				in.recordFailure(k.name, t, fmt.Sprintf("internal panic: %v", r))
			}
		}
		if scheduled && in.checkSim {
			atomic.StoreUint32(&op.mark[t], 1)
		}
	}()
	ec := &evalCtx{in: in, k: k, task: t, call: c, phase2: scheduled && in.checkSim, env: map[string]float64{}}
	switch k.kind {
	case kParallel:
		iv := k.iters[t]
		ec.env[k.loop.Var] = float64(iv)
		if k.loop.Where == nil || truthy(ec.eval(k.loop.Where)) {
			ec.execStmts(k.loop.Body)
		}
	case kReduction:
		iv := k.iters[t]
		ec.env[k.loop.Var] = float64(iv)
		if k.loop.Where == nil || truthy(ec.eval(k.loop.Where)) {
			v := ec.eval(k.redExpr)
			in.aVals[k.contrib][t] = v
			in.aWriter[k.contrib][t] = int32(t)
			in.aGen[k.contrib][t] = c
			in.aFlag[k.contrib][t] = true
		}
	case kMerge:
		red := in.low.kernels[k.srcOp]
		sum := ec.loadScalar(k.redVar)
		vals, flag := in.aVals[red.contrib], in.aFlag[red.contrib]
		for i := 0; i < red.n; i++ {
			if flag[i] {
				if ec.phase2 {
					ec.checkProducer(red.idx, in.aWriter[red.contrib][i])
				}
				sum += vals[i]
			}
		}
		ec.storeScalar(k.redVar, sum)
	case kSerial:
		ec.execStmts(k.stmts)
	}
	return taskCost(k.idx, t)
}

func taskCost(op, i int) float64 {
	h := (uint64(op)+1)*0x9e3779b97f4a7c15 ^ (uint64(i)+1)*0x2545f4914f6cdd1d
	h ^= h >> 29
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 32
	return 0.5 + float64(h&2047)/1024.0
}

// checkProducer verifies that reading a value produced by another op's
// task is legal at this point of the scheduled execution: the engine
// must already have completed that producer task (through a pipelined
// edge's delivered prefix, or the producer entirely for ordinary
// edges). Values are always present thanks to the settling pass, so
// this — not the value diff — is what catches gating bugs in the
// simulator's dataflow execution.
//
// Completion marks are set when a task's body returns, which precedes
// the engine's own completion accounting; the marked prefix therefore
// never lags what a correct engine has completed, and a violation here
// is a true ordering error, not a measurement artifact.
func (ec *evalCtx) checkProducer(owner int, writer int32) {
	k, in := ec.k, ec.in
	if owner == k.idx {
		return
	}
	P := in.low.kernels[owner]
	pfx := in.ops[owner].prefix()
	cls, direct := k.inE[owner]
	switch {
	case direct && cls == 2:
		if int(writer) >= pfx {
			in.violate("%s read task %d of pipelined producer %s, but only %d/%d delivered",
				k.name, writer, P.name, pfx, P.n)
		}
	case direct:
		if pfx < P.n {
			in.violate("%s read producer %s before completion (%d/%d done)",
				k.name, P.name, pfx, P.n)
		}
	case in.low.plainAnc[k.idx][owner]:
		if pfx < P.n {
			in.violate("%s read transitive producer %s before completion (%d/%d done)",
				k.name, P.name, pfx, P.n)
		}
	case in.low.anyAnc[k.idx][owner]:
		// Reachable only through a pipelined edge: the transitive
		// prefix bound is not expressible per element, so skip.
	default:
		in.violate("%s read a value written by %s with no dataflow path between them",
			k.name, P.name)
	}
}

// evalCtx evaluates statements and expressions for one task against
// the versioned memory, bit-for-bit mirroring internal/interp (same
// literal parsing, rounding, short-circuiting, division check, default
// external function) so the lowered baseline matches the interpreter
// exactly. env holds induction variables, which shadow memory as the
// interpreter's single namespace would.
type evalCtx struct {
	in     *Instance
	k      *kernel
	task   int
	call   int32 // which execution of this task (see Instance.aGen)
	phase2 bool
	env    map[string]float64
	steps  int
}

const maxTaskSteps = 10_000_000

func (ec *evalCtx) step() {
	ec.steps++
	if ec.steps > maxTaskSteps {
		ec.bail("step limit exceeded (%d)", maxTaskSteps)
	}
}

func (ec *evalCtx) execStmts(body []source.Stmt) {
	for _, s := range body {
		ec.execStmt(s)
	}
}

func (ec *evalCtx) execStmt(s source.Stmt) {
	ec.step()
	switch s := s.(type) {
	case *source.Assign:
		v := ec.eval(s.RHS)
		switch lhs := s.LHS.(type) {
		case *source.Ident:
			ec.storeScalar(lhs.Name, v)
		case *source.ArrayRef:
			ec.storeArray(lhs, v)
		default:
			ec.bail("bad assignment target %T", s.LHS)
		}
	case *source.Do:
		ec.execDo(s)
	case *source.If:
		if truthy(ec.eval(s.Cond)) {
			ec.execStmts(s.Then)
		} else {
			ec.execStmts(s.Else)
		}
	case *source.CallStmt:
		for _, a := range s.Args {
			ec.eval(a)
		}
	default:
		ec.bail("unknown statement %T", s)
	}
}

func (ec *evalCtx) execDo(d *source.Do) {
	outer, had := ec.env[d.Var]
	for _, r := range d.Ranges {
		lo := int(math.Round(ec.eval(r.Lo)))
		hi := int(math.Round(ec.eval(r.Hi)))
		stepBy := 1
		if r.Step != nil {
			stepBy = int(math.Round(ec.eval(r.Step)))
			if stepBy < 1 {
				ec.bail("non-positive do step %d", stepBy)
			}
		}
		for i := lo; i <= hi; i += stepBy {
			ec.step()
			ec.env[d.Var] = float64(i)
			if d.Where != nil && !truthy(ec.eval(d.Where)) {
				continue
			}
			ec.execStmts(d.Body)
		}
	}
	if had {
		ec.env[d.Var] = outer
	} else {
		delete(ec.env, d.Var)
	}
}

func (ec *evalCtx) loadScalar(name string) float64 {
	if v, ok := ec.env[name]; ok {
		return v
	}
	in := ec.in
	if id, ok := ec.k.verS[name]; ok {
		for ; id >= 0; id = in.low.sPlans[id].prev {
			if in.sSet[id] {
				if in.low.sPlans[id].owner == ec.k.idx {
					if in.sGen[id] != ec.call {
						continue // stale write from a previous execution
					}
				} else if ec.phase2 {
					ec.checkProducer(in.low.sPlans[id].owner, 0)
				}
				return in.sVal[id]
			}
		}
	}
	v, ok := in.low.initS[name]
	if !ok {
		ec.bail("unbound scalar %s", name)
	}
	return v
}

func (ec *evalCtx) storeScalar(name string, v float64) {
	if _, ok := ec.env[name]; ok {
		ec.env[name] = v
		return
	}
	id, ok := ec.k.writeS[name]
	if !ok {
		ec.bail("scalar %s written without a version (classifier bug)", name)
	}
	ec.in.sVal[id] = v
	ec.in.sGen[id] = ec.call
	ec.in.sSet[id] = true
}

// offset mirrors the interpreter's subscript evaluation and bounds
// checking, returning the column-major flat index.
func (ec *evalCtx) offset(ref *source.ArrayRef) int {
	dims, ok := ec.in.low.dims[ref.Name]
	if !ok {
		ec.bail("undeclared array %s", ref.Name)
	}
	if len(ref.Index) != len(dims) {
		ec.bail("array %s: %d subscripts for %d dims", ref.Name, len(ref.Index), len(dims))
	}
	off := 0
	stride := 1
	for k, ix := range ref.Index {
		i := int(math.Round(ec.eval(ix)))
		if i < 1 || i > dims[k] {
			ec.bail("array %s: subscript %d = %d out of [1,%d]", ref.Name, k+1, i, dims[k])
		}
		off += (i - 1) * stride
		stride *= dims[k]
	}
	return off
}

func (ec *evalCtx) loadArray(ref *source.ArrayRef) float64 {
	off := ec.offset(ref)
	in := ec.in
	if id, ok := ec.k.verA[ref.Name]; ok {
		for ; id >= 0; id = in.low.aPlans[id].prev {
			if in.aFlag[id][off] {
				if in.low.aPlans[id].owner == ec.k.idx {
					if in.aWriter[id][off] == int32(ec.task) && in.aGen[id][off] != ec.call {
						continue // stale write from a previous execution
					}
				} else if ec.phase2 {
					ec.checkProducer(in.low.aPlans[id].owner, in.aWriter[id][off])
				}
				return in.aVals[id][off]
			}
		}
	}
	buf, ok := in.low.initA[ref.Name]
	if !ok {
		ec.bail("undeclared array %s", ref.Name)
	}
	return buf[off]
}

func (ec *evalCtx) storeArray(ref *source.ArrayRef, v float64) {
	id, ok := ec.k.writeA[ref.Name]
	if !ok {
		ec.bail("array %s written without a version (classifier bug)", ref.Name)
	}
	off := ec.offset(ref)
	in := ec.in
	in.aVals[id][off] = v
	in.aWriter[id][off] = int32(ec.task)
	in.aGen[id][off] = ec.call
	in.aFlag[id][off] = true
}

func (ec *evalCtx) eval(e source.Expr) float64 {
	switch e := e.(type) {
	case *source.Num:
		return numValue(e)
	case *source.Ident:
		return ec.loadScalar(e.Name)
	case *source.ArrayRef:
		return ec.loadArray(e)
	case *source.FuncCall:
		args := make([]float64, len(e.Args))
		for i, a := range e.Args {
			args[i] = ec.eval(a)
		}
		return interp.DefaultFunc(args)
	case *source.Un:
		if e.Op == "-" {
			return -ec.eval(e.X)
		}
		ec.bail("unknown unary %q", e.Op)
	case *source.Bin:
		switch e.Op {
		case "&&":
			return b2f(truthy(ec.eval(e.L)) && truthy(ec.eval(e.R)))
		case "||":
			return b2f(truthy(ec.eval(e.L)) || truthy(ec.eval(e.R)))
		}
		l, r := ec.eval(e.L), ec.eval(e.R)
		switch e.Op {
		case "+":
			return l + r
		case "-":
			return l - r
		case "*":
			return l * r
		case "/":
			if r == 0 {
				ec.bail("division by zero")
			}
			return l / r
		case "==":
			return b2f(l == r)
		case "!=":
			return b2f(l != r)
		case "<":
			return b2f(l < r)
		case "<=":
			return b2f(l <= r)
		case ">":
			return b2f(l > r)
		case ">=":
			return b2f(l >= r)
		}
		ec.bail("unknown operator %q", e.Op)
	}
	ec.bail("unknown expression %T", e)
	return 0
}

func truthy(v float64) bool { return v != 0 }

func b2f(b bool) float64 {
	if b {
		return 1
	}
	return 0
}
