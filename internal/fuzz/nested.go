package fuzz

import (
	"fmt"
	"strconv"
	"strings"
	"sync"

	"orchestra/internal/compile"
	"orchestra/internal/delirium"
	"orchestra/internal/interp"
	"orchestra/internal/machine"
	"orchestra/internal/native"
	"orchestra/internal/rts"
	"orchestra/internal/sched"
	"orchestra/internal/stats"
)

// The nested rung: random recursive dataflow programs. The generator
// emits a small top-level graph whose Exp nodes carry seed-derived
// expansion rules — each expansion is itself a random graph that may
// contain further Exp nodes, bounded in depth — over array kernels
// whose task values are pure functions of (operator name, task index,
// inputs). The oracle is the statically unrolled reference:
// compile.Unroll flattens the same program ahead of time, the flat
// graph runs once to produce the reference digest, and every nested
// execution (simulator and native, several processor counts and
// modes) must reproduce that digest bitwise. Runtime expansion may
// only ever change the schedule; any value drift is a gating,
// splicing, or cross-level-stealing defect.
//
// Determinism across instances is by construction: an expansion rule's
// random choices derive from (campaign seed ⊕ hash(operator name)),
// and operator names are tree paths, so the runtime expansion inside
// an engine and the eager expansion inside the unroller materialize
// identical sub-graphs without sharing state.

// nestedMaxDepth bounds the generator's structural recursion: below
// this depth a sub-operator may itself be expandable.
const nestedMaxDepth = 3

// NestedCase is one generated recursive program.
type NestedCase struct {
	Seed  uint64
	Graph *delirium.Graph
}

// String renders the top-level graph in codec form (the sub-graphs are
// implied by the seed).
func (c *NestedCase) String() string {
	return c.Graph.Encode()
}

// GenNested derives a random recursive program from seed.
func GenNested(seed uint64) *NestedCase {
	rng := stats.NewRNG(seed ^ 0x9e3779b97f4a7c15)
	g := delirium.NewGraph(fmt.Sprintf("nested-%d", seed))
	k := 3 + rng.Intn(3) // 3..5 top-level operators
	expAt := -1
	for i := 0; i < k; i++ {
		name := fmt.Sprintf("t%d", i)
		if rng.Bernoulli(0.35) {
			g.AddNode(&delirium.Node{Name: name, Kind: delirium.Exp, Tasks: "1", Rule: "fz"})
			expAt = i
		} else {
			g.AddNode(&delirium.Node{Name: name, Kind: delirium.Par, Tasks: strconv.Itoa(1 + rng.Intn(12))})
		}
	}
	if expAt < 0 {
		// Always at least one expandable operator — that is the rung.
		mid := k / 2
		g.Nodes[mid].Kind = delirium.Exp
		g.Nodes[mid].Tasks = "1"
		g.Nodes[mid].Rule = "fz"
	}
	for i := 1; i < k; i++ {
		addNestedEdge(rng, g, g.Nodes[i-1].Name, g.Nodes[i].Name)
		if j := rng.Intn(i); j < i-1 && rng.Bernoulli(0.4) {
			addNestedEdge(rng, g, g.Nodes[j].Name, g.Nodes[i].Name)
		}
	}
	return &NestedCase{Seed: seed, Graph: g}
}

// addNestedEdge adds one edge with randomized attributes. Pipelining
// is requested freely — edges adjacent to expandable operators must be
// barrier-converted by every layer, and letting the generator ask for
// the illegal thing is exactly how that conversion gets exercised.
func addNestedEdge(rng *stats.RNG, g *delirium.Graph, from, to string) {
	e := &delirium.Edge{From: from, To: to}
	if rng.Bernoulli(0.6) {
		e.Bytes = 64
		e.PerTask = rng.Bernoulli(0.5)
	}
	if rng.Bernoulli(0.4) {
		e.Pipelined = true
		e.Chain = rng.Bernoulli(0.3)
	}
	g.AddEdge(e)
}

// nestedInst is one run's worth of state: fresh zeroed arrays, a
// binder whose Exp specs regenerate their sub-graphs from the seed.
type nestedInst struct {
	seed uint64
	mu   sync.Mutex
	st   *interp.State
}

func (in *nestedInst) alloc(name string, n int) []float64 {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.st.Alloc(name, n)
	return in.st.Arrays[name]
}

func (in *nestedInst) arr(name string) []float64 {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.st.Arrays[name]
}

func newNestedOp(name string, n int, body func(int) float64) sched.Op {
	return sched.Op{Name: name, N: n, Time: body, Bytes: 64}
}

func (in *nestedInst) digest() string { return native.StateDigest(in.st) }

// nestedCaseVal is the pure base value of task i of an operator.
func nestedCaseVal(name string, i int) float64 {
	h := nestedCaseHash(name)
	return float64((h*37+uint64(i)*11)%2003)/2003 + float64(h%89)/89
}

func nestedCaseHash(s string) uint64 {
	var h uint64 = 14695981039346656037
	for i := 0; i < len(s); i++ {
		h = (h ^ uint64(s[i])) * 1099511628211
	}
	return h
}

// nestedDepth is an operator's structural depth: sub-operators are
// named by tree path.
func nestedDepth(name string) int { return strings.Count(name, "/") }

// bindNested builds the binder of one (sub-)graph over the instance's
// image. parentIn carries the expansion ancestors' input arrays: every
// sub-operator also reads them, so a sub-task released before the
// ancestor's predecessors settled produces wrong bits — the oracle
// sees premature expansion, not just misordered sub-graphs.
func (in *nestedInst) bindNested(g *delirium.Graph, parentIn []nestedRead) rts.Binder {
	specs := map[string]rts.OpSpec{}
	// The generator declares nodes in topological order, so a reader's
	// producer array always exists by the time its closure captures it.
	for _, nd := range g.Nodes {
		name := nd.Name
		reads := append([]nestedRead{}, parentIn...)
		for _, e := range g.InEdges(name) {
			if e.Carried {
				continue
			}
			reads = append(reads, nestedRead{from: e.From, arr: in.arr(e.From), pipelined: e.Pipelined})
		}
		sortNestedReads(reads)
		if nd.Kind == delirium.Exp {
			specs[name] = in.expandableSpec(name, reads)
			continue
		}
		n, _ := strconv.Atoi(nd.Tasks)
		arr := in.alloc(name, n)
		body := func(i int) float64 {
			v := nestedCaseVal(name, i)
			for _, r := range reads {
				v += r.read(i, n)
			}
			arr[i] = v
			return 1
		}
		specs[name] = rts.OpSpec{Op: newNestedOp(name, n, body), Mu: 1}
	}
	return func(name string) rts.OpSpec { return specs[name] }
}

// expandableSpec builds an Exp operator: a join over its children plus
// the seed-derived expansion rule.
func (in *nestedInst) expandableSpec(name string, reads []nestedRead) rts.OpSpec {
	arr := in.alloc(name, 1)
	var children [][]float64
	join := func(int) float64 {
		v := nestedCaseVal(name, 0)
		for _, r := range reads {
			v += r.read(0, 1)
		}
		for _, c := range children {
			for _, x := range c {
				v += x * 0.5
			}
		}
		arr[0] = v
		return 1
	}
	expand := func(depth int) (*rts.Expansion, error) {
		sub := genNestedExpansion(in.seed, name)
		if sub == nil {
			return nil, nil
		}
		bind := in.bindNested(sub, reads)
		for _, nd := range sub.Nodes {
			children = append(children, in.arr(nd.Name))
		}
		return &rts.Expansion{Graph: sub, Bind: bind}, nil
	}
	return rts.OpSpec{Op: newNestedOp(name, 1, join), Mu: 1, Expand: expand}
}

// genNestedExpansion derives the sub-graph of one expandable operator
// from (seed, name) alone — deterministic wherever it is invoked. A
// nil result is the base case (fork-join degenerates to the join
// task).
func genNestedExpansion(seed uint64, name string) *delirium.Graph {
	rng := stats.NewRNG(seed ^ nestedCaseHash(name))
	depth := nestedDepth(name)
	if depth > 0 && rng.Bernoulli(0.25) {
		return nil
	}
	g := delirium.NewGraph(name)
	m := 1 + rng.Intn(3)
	for i := 0; i < m; i++ {
		sub := fmt.Sprintf("%s/%d", name, i)
		if depth+1 < nestedMaxDepth && rng.Bernoulli(0.3) {
			g.AddNode(&delirium.Node{Name: sub, Kind: delirium.Exp, Tasks: "1", Rule: "fz"})
		} else {
			g.AddNode(&delirium.Node{Name: sub, Kind: delirium.Par, Tasks: strconv.Itoa(1 + rng.Intn(8))})
		}
	}
	for i := 1; i < m; i++ {
		addNestedEdge(rng, g, g.Nodes[i-1].Name, g.Nodes[i].Name)
	}
	return g
}

// nestedRead reads one input array under the kernel contract.
type nestedRead struct {
	from      string
	arr       []float64
	pipelined bool
}

func (r nestedRead) read(i, n int) float64 {
	pn := len(r.arr)
	if pn == 0 {
		return 0
	}
	if r.pipelined {
		return r.arr[i*pn/n]
	}
	return r.arr[(i*31+7)%pn]
}

// sortNestedReads orders inputs canonically by producer name — float
// addition is not associative, so every execution must fold them the
// same way.
func sortNestedReads(reads []nestedRead) {
	for i := 1; i < len(reads); i++ {
		for j := i; j > 0 && reads[j].from < reads[j-1].from; j-- {
			reads[j], reads[j-1] = reads[j-1], reads[j]
		}
	}
}

// newNestedInst builds a fresh single-use instance of a case.
func newNestedInst(c *NestedCase) *nestedInst {
	return &nestedInst{seed: c.Seed, st: interp.NewState()}
}

// CheckSeedNested generates and checks seed's recursive program.
func CheckSeedNested(seed uint64) (*Report, *NestedCase) {
	c := GenNested(seed)
	return CheckCaseNested(c), c
}

// CheckCaseNested runs the nested rung on one case: unroll statically,
// run the flat reference once, then require every nested execution
// across the backend matrix — and a second flat run on the native
// backend — to reproduce the reference digest bitwise.
func CheckCaseNested(c *NestedCase) *Report {
	rep := &Report{Seed: c.Seed, Kinds: map[string]int{}}
	for _, nd := range c.Graph.Nodes {
		if nd.Kind == delirium.Exp {
			rep.Kinds["exp"]++
		} else {
			rep.Kinds["par"]++
		}
	}
	if err := c.Graph.Validate(); err != nil {
		rep.Skip = fmt.Sprintf("generated graph invalid: %v", err)
		return rep
	}

	// The statically unrolled reference, executed sequentially on the
	// simulator.
	ref := newNestedInst(c)
	fg, fb, err := compile.Unroll(c.Graph, ref.bindNested(c.Graph, nil))
	if err != nil {
		rep.Divs = append(rep.Divs, Divergence{Config: "unroll", Kind: "unroll-error", Detail: err.Error()})
		return rep
	}
	if fg.HasExpansions() {
		rep.Divs = append(rep.Divs, Divergence{Config: "unroll", Kind: "unroll-residue",
			Detail: "unrolled graph still has expandable operators"})
		return rep
	}
	simBE := func(p int) rts.Backend { return rts.NewSimBackend(machine.DefaultConfig(p)) }
	if _, err := simBE(1).Run(fg, rts.BindClosure(fb), rts.RunOpts{Processors: 1, Mode: rts.ModeSplit}); err != nil {
		rep.Divs = append(rep.Divs, Divergence{Config: "flat-sim/p=1/split", Kind: "nested-error", Detail: err.Error()})
		return rep
	}
	want := ref.digest()

	type cfg struct {
		name string
		flat bool
		be   rts.Backend
		opts rts.RunOpts
	}
	matrix := []cfg{
		{"flat-native/p=4/split", true, native.Backend{}, rts.RunOpts{Processors: 4, Mode: rts.ModeSplit}},
		{"sim/p=1/split", false, simBE(1), rts.RunOpts{Processors: 1, Mode: rts.ModeSplit}},
		{"sim/p=8/split", false, simBE(8), rts.RunOpts{Processors: 8, Mode: rts.ModeSplit}},
		{"sim/p=4/static", false, simBE(4), rts.RunOpts{Processors: 4, Mode: rts.ModeStatic}},
		{"native/p=2/split", false, native.Backend{}, rts.RunOpts{Processors: 2, Mode: rts.ModeSplit}},
		{"native/p=4/split", false, native.Backend{}, rts.RunOpts{Processors: 4, Mode: rts.ModeSplit}},
		{"native/p=2/taper", false, native.Backend{}, rts.RunOpts{Processors: 2, Mode: rts.ModeTaper}},
	}
	for _, m := range matrix {
		in := newNestedInst(c)
		g := c.Graph
		bind := in.bindNested(g, nil)
		if m.flat {
			g2, b2, err := compile.Unroll(g, bind)
			if err != nil {
				rep.Divs = append(rep.Divs, Divergence{Config: m.name, Kind: "unroll-error", Detail: err.Error()})
				continue
			}
			g, bind = g2, b2
		}
		if _, err := m.be.Run(g, rts.BindClosure(bind), m.opts); err != nil {
			rep.Divs = append(rep.Divs, Divergence{Config: m.name, Kind: "nested-error", Detail: err.Error()})
			continue
		}
		if got := in.digest(); got != want {
			rep.Divs = append(rep.Divs, Divergence{Config: m.name, Kind: "nested-digest",
				Detail: fmt.Sprintf("digest %s != statically-unrolled reference %s", got[:16], want[:16])})
		}
	}
	return rep
}
