package native

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"math"
	"sort"

	"orchestra/internal/delirium"
	"orchestra/internal/interp"
	"orchestra/internal/rts"
	"orchestra/internal/sched"
	"orchestra/internal/split"
	"orchestra/internal/stats"
)

// This file provides operation bindings that do real work, so the
// same compiled graph produces actual numeric results on either
// backend. A binding is an rts.Binder whose Time function executes
// task i's body and returns a nominal simulated cost: the simulator
// charges the return value to its clock, the native backend runs the
// body and measures the wall clock.
//
// Kernel tasks must obey a dataflow-safety contract so that every
// execution order either backend produces yields bit-identical
// results:
//
//  1. Tasks are idempotent and order-independent within an operator:
//     task i writes only its own elements, as a pure function of its
//     inputs. (The simulator executes Time more than once per task —
//     e.g. Op.TotalTime sums costs by calling every task — so a
//     re-execution after inputs settle must reproduce the value.)
//  2. A task may read arrays of non-pipelined predecessors at any
//     index: both backends run it only after such producers fully
//     complete.
//  3. A task i of an operator with n tasks may read a *pipelined*
//     predecessor (pn tasks) only at indices j ≤ i·pn/n: the native
//     gate enables i only once the producer's contiguous completed
//     prefix covers that index, and the simulator's upfront
//     sequential pass settles all arrays in topological order.

// ArrayKernels binds every node of a graph to a real array kernel
// over an interp.State memory image: node X owns the n-element array
// X in st.Arrays, and task i computes
//
//	X[i] = f(i, node) + Σ_pred pred[j_pred]
//
// with f the interpreter's deterministic external-function stand-in
// (interp.DefaultFunc) iterated `work` times — so `work` scales the
// CPU cost of a task without changing the dataflow. Pipelined
// predecessors are read at the prefix-safe index, other predecessors
// at a fixed stride, exercising real cross-operator data delivery.
// The returned state is fresh per call: each execution must start
// from zeroed arrays.
func ArrayKernels(g *delirium.Graph, n, work int) (rts.Binder, *interp.State, error) {
	if n < 1 {
		return nil, nil, fmt.Errorf("native: kernel task count %d < 1", n)
	}
	if work < 1 {
		work = 1
	}
	order, err := g.TopoOrder()
	if err != nil {
		return nil, nil, err
	}
	st := interp.NewState()
	specs := map[string]rts.OpSpec{}
	for _, nd := range order {
		st.Alloc(nd.Name, n)
		arr := st.Arrays[nd.Name]
		// Snapshot the predecessor arrays and their edge kinds, in
		// canonical (name-sorted) order: float addition is not
		// associative, so the summation order below must not depend on
		// the graph's edge-list order — a graph and its Encode/Decode
		// round trip must digest identically.
		type input struct {
			from      string
			arr       []float64
			pipelined bool
		}
		var inputs []input
		for _, e := range g.InEdges(nd.Name) {
			inputs = append(inputs, input{from: e.From, arr: st.Arrays[e.From], pipelined: e.Pipelined})
		}
		sort.Slice(inputs, func(a, b int) bool { return inputs[a].from < inputs[b].from })
		// The node's identity in task values must be canonical across an
		// Encode/Decode round trip: Encode sorts the edge list, which can
		// legally reorder TopoOrder's tie-breaking, so a topological
		// *index* would differ between a graph and its wire form (the
		// dist backend binds the decoded graph inside worker processes).
		// Hash the name instead — names survive the wire unchanged.
		nodeID := float64(hashName(nd.Name) % (1 << 20))
		w := work
		ins := inputs
		body := func(i int) float64 {
			v := 0.0
			for r := 0; r < w; r++ {
				v += interp.DefaultFunc([]float64{float64(i), nodeID, float64(r)})
			}
			for _, in := range ins {
				var j int
				if in.pipelined {
					// Prefix-safe read (contract rule 3).
					j = i * len(in.arr) / n
				} else {
					j = (i*31 + 7) % len(in.arr)
				}
				v += in.arr[j]
			}
			arr[i] = v
			return 1
		}
		// Fused variant: identical writes to per-task body calls, but
		// one call per chunk with the task loop inlined, so a chunk
		// costs no per-task closure dispatch.
		bodyRange := func(lo, hi int) float64 {
			for i := lo; i < hi; i++ {
				v := 0.0
				for r := 0; r < w; r++ {
					v += interp.DefaultFunc([]float64{float64(i), nodeID, float64(r)})
				}
				for _, in := range ins {
					var j int
					if in.pipelined {
						j = i * len(in.arr) / n
					} else {
						j = (i*31 + 7) % len(in.arr)
					}
					v += in.arr[j]
				}
				arr[i] = v
			}
			return float64(hi - lo)
		}
		// Split annotation: task i always writes only X[i]. The reads are
		// pointwise only when every input is pipelined (j = i·pn/n, which
		// the chain path uses only when pn = n, i.e. j = i); a strided
		// non-pipelined input makes the kernel's reads unbounded, so the
		// annotation degrades to reads-all and the edge stays on the
		// barrier path.
		ann := &split.Annotation{Read: split.AccessAll, Write: split.AccessElement}
		allPip := true
		for _, in := range inputs {
			if !in.pipelined {
				allPip = false
				break
			}
		}
		if allPip {
			ann = split.Pointwise()
		}
		specs[nd.Name] = rts.OpSpec{
			Op: sched.Op{
				Name:      nd.Name,
				N:         n,
				Time:      body,
				TimeRange: bodyRange,
				Bytes:     8,
			},
			Mu:    1,
			Split: ann,
			// Cross-process transport (rts.OpSpec.Pack/Apply): task i owns
			// exactly X[i], so a segment's durable results are the raw
			// IEEE-754 bits of arr[lo:hi].
			Pack: func(lo, hi int) []byte {
				blob := make([]byte, 8*(hi-lo))
				for i := lo; i < hi; i++ {
					binary.LittleEndian.PutUint64(blob[8*(i-lo):], math.Float64bits(arr[i]))
				}
				return blob
			},
			Apply: func(lo, hi int, blob []byte) {
				for i := lo; i < hi && 8*(i-lo)+8 <= len(blob); i++ {
					arr[i] = math.Float64frombits(binary.LittleEndian.Uint64(blob[8*(i-lo):]))
				}
			},
		}
	}
	return func(name string) rts.OpSpec { return specs[name] }, st, nil
}

// StateDigest fingerprints a kernel execution's final memory image:
// SHA-256 over every array (sorted by name) — name, length, and the
// IEEE-754 bit pattern of each element. Two runs produced bitwise-
// identical results if and only if their digests match, which is how
// the serve daemon's clients (and orchload -verify) compare a job
// executed on the shared pool against a local one-shot run without
// shipping whole arrays around.
func StateDigest(st *interp.State) string {
	names := make([]string, 0, len(st.Arrays))
	for name := range st.Arrays {
		names = append(names, name)
	}
	sort.Strings(names)
	h := sha256.New()
	var buf [8]byte
	for _, name := range names {
		arr := st.Arrays[name]
		h.Write([]byte(name))
		h.Write([]byte{0})
		binary.LittleEndian.PutUint64(buf[:], uint64(len(arr)))
		h.Write(buf[:])
		for _, v := range arr {
			binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v))
			h.Write(buf[:])
		}
	}
	return hex.EncodeToString(h.Sum(nil))
}

// SpinBinder binds every node to a synthetic CPU-bound operation of
// count tasks whose task times are log-normally distributed with unit
// mean and the given coefficient of variation (the same distribution
// cmd/orchrun uses for the simulator), scaled so one time unit burns
// roughly unitWork iterations of floating-point work. The returned
// binder is usable on both backends: the simulator charges the drawn
// cost, the native backend actually spins for it.
func SpinBinder(g *delirium.Graph, count func(node *delirium.Node) int, cv float64, seed uint64, unitWork int) rts.Binder {
	if unitWork < 1 {
		unitWork = 1
	}
	sigma := math.Sqrt(math.Log(1 + cv*cv))
	mu := -sigma * sigma / 2
	specs := map[string]rts.OpSpec{}
	for _, nd := range g.Nodes {
		n := count(nd)
		if n < 1 {
			n = 1
		}
		rng := stats.NewRNG(seed ^ hashName(nd.Name))
		times := make([]float64, n)
		for i := range times {
			times[i] = rng.LogNormal(mu, sigma)
		}
		t := times
		uw := unitWork
		spec := rts.OpSpec{Op: sched.Op{
			Name:  nd.Name,
			N:     n,
			Bytes: 64,
			Time: func(i int) float64 {
				spin(int(t[i] * float64(uw)))
				return t[i]
			},
			TimeRange: func(lo, hi int) float64 {
				sum := 0.0
				for i := lo; i < hi; i++ {
					spin(int(t[i] * float64(uw)))
					sum += t[i]
				}
				return sum
			},
			Hint: func(i int) float64 { return t[i] },
		}}
		spec.SampleStats(128)
		specs[nd.Name] = spec
	}
	return func(name string) rts.OpSpec { return specs[name] }
}

// Spin burns approximately iters iterations of floating-point work.
// Exported for binders elsewhere (the search benchmark's
// work-conserving binder) that need the same calibrated busy-loop
// SpinBinder uses.
func Spin(iters int) { spin(iters) }

// spinSink defeats dead-code elimination of the spin loop.
var spinSink float64

// spin burns approximately iters iterations of floating-point work.
func spin(iters int) {
	v := 1.0
	for i := 0; i < iters; i++ {
		v += math.Sqrt(v + float64(i&7))
	}
	spinSink = v
}

// hashName is FNV-1a, keeping per-node workloads distinct.
func hashName(s string) uint64 {
	var h uint64 = 14695981039346656037
	for i := 0; i < len(s); i++ {
		h = (h ^ uint64(s[i])) * 1099511628211
	}
	return h
}
