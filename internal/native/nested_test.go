package native_test

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"orchestra/internal/delirium"
	"orchestra/internal/interp"
	"orchestra/internal/native"
	"orchestra/internal/rts"
	"orchestra/internal/sched"
	"orchestra/internal/trace"
)

// expChainGraph builds a chain whose interior operator expands at
// runtime:
//
//	a ─p,chain→ x (exp) ─p,chain→ out
//
// Both pipelined edges are also chain-attributed, so they are the
// graph's only chain candidates — and both touch the expandable
// operator. The chain planner must exclude them (a chained block
// enqueued against x would target a consumer whose real body is a
// not-yet-materialized sub-graph), which means every run of this graph
// must barrier-convert and report zero chain activity.
func expChainGraph(t testing.TB, n int) *delirium.Graph {
	t.Helper()
	g := delirium.NewGraph("expchain")
	nodes := []*delirium.Node{
		{Name: "a", Kind: delirium.Par, Tasks: strconv.Itoa(n)},
		{Name: "x", Kind: delirium.Exp, Tasks: "1", Rule: "leaf"},
		{Name: "out", Kind: delirium.Par, Tasks: strconv.Itoa(n)},
	}
	for _, nd := range nodes {
		if err := g.AddNode(nd); err != nil {
			t.Fatal(err)
		}
	}
	g.AddEdge(&delirium.Edge{From: "a", To: "x", Pipelined: true, Chain: true, Bytes: 8, PerTask: true})
	g.AddEdge(&delirium.Edge{From: "x", To: "out", Pipelined: true, Chain: true, Bytes: 8, PerTask: true})
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	return g
}

// expChainBinder binds expChainGraph over a fresh state: a is
// analytic, x expands into a single m-task sub-operator x/0 reading a,
// x's join folds x/0, and out reads the join. All bodies overwrite
// their slot from pure inputs, so re-execution under faults is
// idempotent.
func expChainBinder(n, m int) (rts.Binder, *interp.State) {
	st := interp.NewState()
	st.Alloc("a", n)
	st.Alloc("x/0", m)
	st.Alloc("x", 1)
	st.Alloc("out", n)
	a, sub, join, out := st.Arrays["a"], st.Arrays["x/0"], st.Arrays["x"], st.Arrays["out"]

	subSpec := func(name string) rts.OpSpec {
		return rts.OpSpec{Op: sched.Op{Name: name, N: m, Time: func(i int) float64 {
			sub[i] = a[i*n/m]*1.5 + float64(i%13)/13
			return 1
		}}, Mu: 1}
	}
	return func(name string) rts.OpSpec {
		switch name {
		case "a":
			return rts.OpSpec{Op: sched.Op{Name: name, N: n, Time: func(i int) float64 {
				a[i] = float64(i%97)/97 + 1
				return 1
			}}, Mu: 1}
		case "x":
			return rts.OpSpec{
				Op: sched.Op{Name: name, N: 1, Time: func(int) float64 {
					v := 0.0
					for _, s := range sub {
						v += s * 0.5
					}
					join[0] = v
					return 1
				}},
				Mu: 1,
				Expand: func(depth int) (*rts.Expansion, error) {
					sg := delirium.NewGraph("x")
					sg.AddNode(&delirium.Node{Name: "x/0", Kind: delirium.Par, Tasks: strconv.Itoa(m)})
					return &rts.Expansion{Graph: sg, Bind: subSpec}, nil
				},
			}
		default: // out
			return rts.OpSpec{Op: sched.Op{Name: name, N: n, Time: func(i int) float64 {
				out[i] = join[0]*0.25 + float64(i%7)/7
				return 1
			}}, Mu: 1}
		}
	}, st
}

func runExpChain(t *testing.T, g *delirium.Graph, n, m, p int, mode rts.Mode, chain rts.ChainPolicy, plan string) (trace.Result, string) {
	t.Helper()
	bind, st := expChainBinder(n, m)
	opts := rts.RunOpts{Processors: p, Mode: mode, Chain: chain}
	if plan != "" {
		opts.Fault = mustPlan(t, plan)
	}
	r, err := native.Backend{}.Run(g, rts.BindClosure(bind), opts)
	if err != nil {
		t.Fatalf("p=%d mode=%v chain=%v plan=%q: %v", p, mode, chain, plan, err)
	}
	return r, native.StateDigest(st)
}

// TestChainExpandableConsumerParity is the chain/expansion seam's
// bitwise guarantee: with every chain candidate adjacent to the
// expandable operator, all runs must barrier-convert (zero chain
// activity) and still reproduce the serial reference digest at every
// worker count, mode, and chain policy.
func TestChainExpandableConsumerParity(t *testing.T) {
	const n, m = 2000, 8000
	g := expChainGraph(t, n)
	_, want := runExpChain(t, g, n, m, 1, rts.ModeStatic, rts.ChainOff, "")
	for _, p := range []int{1, 2, 4, 8} {
		for _, mode := range []rts.Mode{rts.ModeTaper, rts.ModeSplit} {
			for _, chain := range []rts.ChainPolicy{rts.ChainAuto, rts.ChainOff} {
				r, got := runExpChain(t, g, n, m, p, mode, chain, "")
				if got != want {
					t.Fatalf("p=%d mode=%v chain=%v: digest %s, want %s", p, mode, chain, got, want)
				}
				if r.ChainHits+r.ChainSpills+r.ChainFallbacks != 0 {
					t.Fatalf("p=%d mode=%v chain=%v: chain activity across an expandable endpoint: %+v",
						p, mode, chain, r)
				}
			}
		}
	}
}

// TestChainExpandableCrashMidExpansion drives worker crashes into the
// middle of a materialized sub-graph: the sub-operator carries most of
// the work, so crashes at low chunk indices land while sub-tasks are
// executing. Recovery must replay onto survivors without losing the
// join's release of out, and the final image must stay bitwise equal
// to the fault-free serial reference.
func TestChainExpandableCrashMidExpansion(t *testing.T) {
	const n, m = 1000, 40000
	g := expChainGraph(t, n)
	_, want := runExpChain(t, g, n, m, 1, rts.ModeStatic, rts.ChainOff, "")
	for _, spec := range []string{
		"crash:0@2,deadline:0.002",
		"crash:1@4,deadline:0.002",
		"crash:0@2,crash:1@4,deadline:0.002",
		"stall:2@1:0.01,crash:0@3,deadline:0.002",
	} {
		_, got := runExpChain(t, g, n, m, 4, rts.ModeSplit, rts.ChainAuto, spec)
		if got != want {
			t.Fatalf("under %q: digest %s, want %s", spec, got, want)
		}
	}
}

// TestExpandDepthBoundNative: the native engine must fail a rule with
// no base case at the shared depth bound rather than splicing forever.
func TestExpandDepthBoundNative(t *testing.T) {
	g := expChainGraph(t, 8)
	var rec func(name string) rts.OpSpec
	rec = func(name string) rts.OpSpec {
		spec := rts.OpSpec{Op: sched.Op{Name: name, N: 1, Time: func(int) float64 { return 0 }}, Mu: 1}
		spec.Expand = func(depth int) (*rts.Expansion, error) {
			sub := delirium.NewGraph(name)
			sub.AddNode(&delirium.Node{Name: name + "/x", Kind: delirium.Exp, Tasks: "1", Rule: "rec"})
			return &rts.Expansion{Graph: sub, Bind: rec}, nil
		}
		return spec
	}
	bind := func(name string) rts.OpSpec {
		if name == "x" {
			return rec(name)
		}
		return rts.OpSpec{Op: sched.Op{Name: name, N: 8, Time: func(int) float64 { return 1 }}, Mu: 1}
	}
	for _, mode := range []rts.Mode{rts.ModeSplit, rts.ModeTaper} {
		_, err := native.Backend{}.Run(g, rts.BindClosure(bind), rts.RunOpts{Processors: 4, Mode: mode})
		if err == nil || !strings.Contains(err.Error(), "depth bound") {
			t.Fatalf("mode %v: error = %v, want one mentioning the depth bound", mode, err)
		}
	}
}

// expCancelBinder binds expChainGraph so the expansion's first
// sub-task parks on the run context: the run is guaranteed to be
// mid-expansion (sub-graph spliced, sub-tasks executing) when cancel
// fires.
func expCancelBinder(ctx context.Context, started chan<- struct{}) rts.Binder {
	var once sync.Once
	return func(name string) rts.OpSpec {
		spec := rts.OpSpec{Op: sched.Op{Name: name, N: 16, Time: func(int) float64 { return 1 }}, Mu: 1}
		if name != "x" {
			return spec
		}
		spec.Op.N = 1
		spec.Expand = func(depth int) (*rts.Expansion, error) {
			sg := delirium.NewGraph("x")
			sg.AddNode(&delirium.Node{Name: "x/0", Kind: delirium.Par, Tasks: "64"})
			return &rts.Expansion{Graph: sg, Bind: func(nm string) rts.OpSpec {
				return rts.OpSpec{Op: sched.Op{Name: nm, N: 64, Time: func(i int) float64 {
					if i == 0 {
						once.Do(func() { close(started) })
						<-ctx.Done()
					}
					return 1
				}}, Mu: 1}
			}}, nil
		}
		return spec
	}
}

// TestCancelMidExpansionReleasesGoroutines cancels a native run while
// a spliced sub-graph task is executing: the engine must abandon the
// remaining sub-tasks and the join, surface the distinguishable cancel
// error, and join every worker goroutine.
func TestCancelMidExpansionReleasesGoroutines(t *testing.T) {
	runtime.GC()
	base := runtime.NumGoroutine()

	g := expChainGraph(t, 16)
	ctx, cancel := context.WithCancel(context.Background())
	started := make(chan struct{})
	errCh := make(chan error, 1)
	go func() {
		_, err := native.Backend{}.Run(g, rts.BindClosure(expCancelBinder(ctx, started)), rts.RunOpts{
			Processors: 4, Mode: rts.ModeSplit, Ctx: ctx,
		})
		errCh <- err
	}()
	<-started
	cancel()
	err := <-errCh
	if !rts.IsCanceled(err) {
		t.Fatalf("error = %v, want one wrapping rts.ErrCanceled", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("error = %v, want it to also wrap context.Canceled", err)
	}

	for i := 0; i < 100; i++ {
		runtime.GC()
		if runtime.NumGoroutine() <= base {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Errorf("goroutines: %d before, %d after canceled run (worker leak)", base, runtime.NumGoroutine())
}

// TestCancelMidExpansionReleasesPoolLease runs the same mid-expansion
// cancellation through a warm pool: the canceled job must return its
// leased workers (Free recovers to Size) and leave the pool healthy
// enough to run the next job to completion.
func TestCancelMidExpansionReleasesPoolLease(t *testing.T) {
	pool := native.NewPool(4)
	defer pool.Close()

	g := expChainGraph(t, 16)
	ctx, cancel := context.WithCancel(context.Background())
	started := make(chan struct{})
	errCh := make(chan error, 1)
	go func() {
		_, err := native.PooledBackend{Pool: pool}.Run(g, rts.BindClosure(expCancelBinder(ctx, started)), rts.RunOpts{
			Processors: 4, Mode: rts.ModeSplit, Ctx: ctx,
		})
		errCh <- err
	}()
	<-started
	cancel()
	if err := <-errCh; !rts.IsCanceled(err) {
		t.Fatalf("error = %v, want one wrapping rts.ErrCanceled", err)
	}

	released := false
	for i := 0; i < 100 && !released; i++ {
		released = pool.Free() == pool.Size()
		if !released {
			time.Sleep(10 * time.Millisecond)
		}
	}
	if !released {
		st := pool.Stats()
		t.Fatalf("canceled job never released its lease: %+v", st)
	}

	bind, st := expChainBinder(16, 64)
	if _, err := (native.PooledBackend{Pool: pool}).Run(g, rts.BindClosure(bind), rts.RunOpts{
		Processors: 4, Mode: rts.ModeSplit,
	}); err != nil {
		t.Fatalf("pool unusable after canceled expansion: %v", err)
	}
	if d := native.StateDigest(st); d == "" {
		t.Fatal("follow-up run produced no state")
	}
	if got := fmt.Sprintf("%d/%d", pool.Free(), pool.Size()); got != "4/4" {
		t.Fatalf("pool free/size after follow-up run = %s, want 4/4", got)
	}
}
