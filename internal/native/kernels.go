package native

import (
	"math"

	"orchestra/internal/delirium"
	"orchestra/internal/interp"
	"orchestra/internal/rts"
	"orchestra/internal/sched"
	"orchestra/internal/source"
	"orchestra/internal/stats"
)

// This file registers this package's kernel families into the
// process-wide rts.Kernels registry, so a serializable rts.Binding can
// name them and a dist worker process can rebuild them from the name
// alone. Three families cover the command-line tools' workloads:
//
//	"array"     — real array kernels over an interp.State memory image
//	              (ArrayKernels): durable numeric results, a digest,
//	              and Pack/Apply for cross-process transport.
//	              Params: n (tasks per op), work (eval rounds/task).
//	"spin"      — synthetic CPU-bound tasks with log-normal times
//	              (SpinBinder): measured backends spin for real.
//	              Params: tasks, n, cv, seed, unitwork.
//	"lognormal" — the same log-normal draws charged as modeled costs
//	              (no spinning): the simulator's synthetic workload.
//	              Params: tasks, n, cv, seed.
//
// The spin/lognormal task count per node comes from its tasks=
// annotation (a symbolic trip count such as "n-1", resolved with the
// n parameter) when present, else from tasks.

func init() {
	rts.Kernels.MustRegister("array", arrayKernel)
	rts.Kernels.MustRegister("spin", spinKernel)
	rts.Kernels.MustRegister("lognormal", lognormalKernel)
}

// arrayState is the per-run product of the "array" kernel family:
// every operator shares one memory image and one binder.
type arrayState struct {
	bind rts.Binder
	st   *interp.State
}

// arrayKernel resolves one operator of the "array" family. The whole
// family builds once per BindEnv (the memory image is shared), so the
// per-op work is a map lookup.
func arrayKernel(env *rts.BindEnv, op string) (rts.OpSpec, error) {
	v, err := env.Memo("native.array", func() (any, error) {
		n := env.Params.Int("n", 2048)
		work := env.Params.Int("work", 1)
		bind, st, err := ArrayKernels(env.Graph, n, work)
		if err != nil {
			return nil, err
		}
		env.SetDigest(func() string { return StateDigest(st) })
		return &arrayState{bind: bind, st: st}, nil
	})
	if err != nil {
		return rts.OpSpec{}, err
	}
	return v.(*arrayState).bind(op), nil
}

// spinKernel resolves one operator of the "spin" family.
func spinKernel(env *rts.BindEnv, op string) (rts.OpSpec, error) {
	v, err := env.Memo("native.spin", func() (any, error) {
		bind := SpinBinder(env.Graph, TaskCount(env.Params),
			env.Params.Float("cv", 1.0), env.Params.Uint64("seed", 1),
			env.Params.Int("unitwork", 4000))
		return bind, nil
	})
	if err != nil {
		return rts.OpSpec{}, err
	}
	return v.(rts.Binder)(op), nil
}

// lognormalKernel resolves one operator of the "lognormal" family:
// the same per-node log-normal draws as "spin", but returned as
// modeled costs without burning CPU — the simulator's synthetic
// workload, bit-compatible with what cmd/orchrun historically drew.
func lognormalKernel(env *rts.BindEnv, op string) (rts.OpSpec, error) {
	v, err := env.Memo("native.lognormal", func() (any, error) {
		cv := env.Params.Float("cv", 1.0)
		seed := env.Params.Uint64("seed", 1)
		count := TaskCount(env.Params)
		sigma := math.Sqrt(math.Log(1 + cv*cv))
		mu := -sigma * sigma / 2 // unit mean
		specs := map[string]rts.OpSpec{}
		for _, nd := range env.Graph.Nodes {
			rng := stats.NewRNG(seed ^ hashName(nd.Name))
			times := make([]float64, count(nd))
			for i := range times {
				times[i] = rng.LogNormal(mu, sigma)
			}
			t := times
			spec := rts.OpSpec{Op: sched.Op{
				Name:  nd.Name,
				N:     len(t),
				Time:  func(i int) float64 { return t[i] },
				Bytes: 64,
				Hint:  func(i int) float64 { return t[i] },
			}}
			spec.SampleStats(128)
			specs[nd.Name] = spec
		}
		var bind rts.Binder = func(name string) rts.OpSpec { return specs[name] }
		return bind, nil
	})
	if err != nil {
		return rts.OpSpec{}, err
	}
	return v.(rts.Binder)(op), nil
}

// TaskCount builds the per-node task-count function the synthetic
// kernels share: a node's tasks= annotation (a symbolic trip count,
// resolved with params "n") when present, else params "tasks".
func TaskCount(params rts.KernelParams) func(*delirium.Node) int {
	tasks := params.Int("tasks", 2048)
	nParam := params.Int("n", 2048)
	return func(nd *delirium.Node) int {
		c := tasks
		if nd.Tasks != "" {
			if v, ok := ResolveTasks(nd.Tasks, nParam); ok {
				c = v
			}
		}
		if c < 1 {
			c = 1
		}
		return c
	}
}

// ResolveTasks evaluates a symbolic trip-count annotation (such as
// "n-1" or "n/2") with every identifier bound to n, by parsing it as
// a one-assignment program and running the interpreter over it.
func ResolveTasks(expr string, n int) (int, bool) {
	scratch, err := source.Parse("program s\n integer v\n v = " + expr + "\nend\n")
	if err != nil {
		return 0, false
	}
	st := interp.NewState()
	assign, ok := scratch.Body[0].(*source.Assign)
	if !ok {
		return 0, false
	}
	source.WalkExpr(assign.RHS, func(e source.Expr) {
		if id, ok := e.(*source.Ident); ok {
			st.Scalars[id.Name] = float64(n)
		}
	})
	if err := interp.Run(scratch, st); err != nil {
		return 0, false
	}
	return int(st.Scalars["v"]), true
}

