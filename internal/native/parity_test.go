package native_test

import (
	"math"
	"runtime"
	"testing"

	"orchestra/internal/core"
	"orchestra/internal/native"
	"orchestra/internal/rts"
)

// quickstartProgram is the paper's Figure 1 — the program
// examples/quickstart compiles. Its compiled Delirium graph contains
// split-produced concurrency and pipelined edges, so it exercises
// every enabling path of both backends.
const quickstartProgram = `
program sample
  integer n
  integer mask(n)
  real result(n), q(n, n), output(n, n), w(n)

  do col = 1, n where (mask(col) != 0)
    do i = 1, n
      result(i) = 0
      do j = 1, n
        result(i) = result(i) + q(j, i) * w(j)
      end do
    end do
    do i = 1, n
      q(i, col) = result(i)
    end do
  end do

  do i = 1, n
    do j = 1, n
      output(j, i) = f(q(j, i))
    end do
  end do
end
`

// runKernels compiles the quickstart program once and executes its
// graph with fresh real array kernels on the given backend and mode,
// returning the final per-node arrays.
func runKernels(t *testing.T, out *core.Output, backend string, p int, mode rts.Mode, n, work int) map[string][]float64 {
	t.Helper()
	bind, st, err := native.ArrayKernels(out.Graph, n, work)
	if err != nil {
		t.Fatal(err)
	}
	be, err := core.NewBackend(backend, p)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := be.Run(out.Graph, rts.BindClosure(bind), rts.RunOpts{Processors: p, Mode: mode}); err != nil {
		t.Fatalf("%s/%v: %v", backend, mode, err)
	}
	return st.Arrays
}

// TestSimNativeParity is the golden cross-backend test: the same
// compiled Delirium graph, bound to real array kernels, must produce
// bitwise-identical arrays on the simulator and on the native
// goroutine runtime, under all three modes.
func TestSimNativeParity(t *testing.T) {
	out, err := core.CompileSource(quickstartProgram, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	const n = 3000
	// Sequential reference: the simulator's static mode on one
	// processor executes the graph in plain topological order.
	ref := runKernels(t, out, "sim", 1, rts.ModeStatic, n, 1)
	for _, backend := range []string{"sim", "native"} {
		for _, mode := range []rts.Mode{rts.ModeStatic, rts.ModeTaper, rts.ModeSplit} {
			got := runKernels(t, out, backend, 8, mode, n, 1)
			if len(got) != len(ref) {
				t.Fatalf("%s/%v: %d arrays, want %d", backend, mode, len(got), len(ref))
			}
			for name, want := range ref {
				g := got[name]
				for i := range want {
					if math.Float64bits(g[i]) != math.Float64bits(want[i]) {
						t.Fatalf("%s/%v: %s[%d] = %v, want %v (bitwise)", backend, mode, name, i, g[i], want[i])
					}
				}
			}
		}
	}
}

// TestNativeSpeedup checks that on a CPU-bound binding the native
// backend with 4 workers beats its own measured sequential time —
// real parallel speedup, not simulated. Requires real cores.
func TestNativeSpeedup(t *testing.T) {
	if runtime.GOMAXPROCS(0) < 2 {
		t.Skipf("GOMAXPROCS=%d: wall-clock speedup needs at least 2 cores", runtime.GOMAXPROCS(0))
	}
	out, err := core.CompileSource(quickstartProgram, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	bind, _, err := native.ArrayKernels(out.Graph, 4000, 300)
	if err != nil {
		t.Fatal(err)
	}
	r, err := native.Backend{}.Run(out.Graph, rts.BindClosure(bind), rts.RunOpts{Processors: 4, Mode: rts.ModeSplit})
	if err != nil {
		t.Fatal(err)
	}
	if s := r.Speedup(); s <= 1 {
		t.Errorf("native speedup = %.2f with 4 workers on a CPU-bound binding, want > 1", s)
	}
}
