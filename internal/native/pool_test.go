package native

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"orchestra/internal/delirium"
	"orchestra/internal/fault"
	"orchestra/internal/rts"
	"orchestra/internal/sched"
)

// PooledBackend must satisfy the backend interface.
var _ rts.Backend = PooledBackend{}

// diamondGraph builds a -> {b, c} -> d, the smallest graph with both
// a fan-out and a join, so kernels exercise real cross-operator reads.
func diamondGraph(t *testing.T) *delirium.Graph {
	t.Helper()
	g := delirium.NewGraph("diamond")
	for _, n := range []string{"a", "b", "c", "d"} {
		if err := g.AddNode(&delirium.Node{Name: n, Kind: delirium.Par}); err != nil {
			t.Fatal(err)
		}
	}
	g.AddEdge(&delirium.Edge{From: "a", To: "b", Bytes: 8})
	g.AddEdge(&delirium.Edge{From: "a", To: "c", Bytes: 8, Pipelined: true})
	g.AddEdge(&delirium.Edge{From: "b", To: "d", Bytes: 8})
	g.AddEdge(&delirium.Edge{From: "c", To: "d", Bytes: 8})
	return g
}

// oneShotDigest runs the kernel-bound graph on a throwaway one-shot
// backend and returns the result digest — the reference every pooled
// execution must reproduce bitwise.
func oneShotDigest(t *testing.T, g *delirium.Graph, n int, opts rts.RunOpts) string {
	t.Helper()
	bind, st, err := ArrayKernels(g, n, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := (Backend{}).Run(g, rts.BindClosure(bind), opts); err != nil {
		t.Fatal(err)
	}
	return StateDigest(st)
}

// poolDigest runs the same job on the shared pool.
func poolDigest(t *testing.T, p *Pool, g *delirium.Graph, n int, opts rts.RunOpts) string {
	t.Helper()
	bind, st, err := ArrayKernels(g, n, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Run(g, rts.BindClosure(bind), opts); err != nil {
		t.Fatal(err)
	}
	return StateDigest(st)
}

// TestPoolRunMatchesOneShot checks that a pooled execution produces a
// bitwise-identical result to a fresh one-shot backend, for every mode
// and for grants smaller than the pool.
func TestPoolRunMatchesOneShot(t *testing.T) {
	g := diamondGraph(t)
	p := NewPool(4)
	defer p.Close()
	const n = 128
	for _, mode := range allModes() {
		for _, workers := range []int{1, 2, 4} {
			opts := rts.RunOpts{Processors: workers, Mode: mode}
			want := oneShotDigest(t, g, n, opts)
			got := poolDigest(t, p, g, n, opts)
			if got != want {
				t.Errorf("%v/p=%d: pool digest %.12s != one-shot %.12s", mode, workers, got, want)
			}
		}
	}
	if free := p.Free(); free != 4 {
		t.Errorf("after runs: %d free workers, want 4", free)
	}
}

// TestPoolConcurrentRunsBitwiseIdentical multiplexes many concurrent
// jobs onto one shared pool and checks every one reproduces the
// one-shot digest for its mode — the serve daemon's correctness
// contract. Run under -race this also proves the epoch isolation is
// race-clean.
func TestPoolConcurrentRunsBitwiseIdentical(t *testing.T) {
	g := diamondGraph(t)
	const n = 96
	want := map[rts.Mode]string{}
	for _, mode := range allModes() {
		want[mode] = oneShotDigest(t, g, n, rts.RunOpts{Processors: 2, Mode: mode})
	}

	p := NewPool(4)
	defer p.Close()
	const jobs = 24
	errs := make([]error, jobs)
	digests := make([]string, jobs)
	modes := make([]rts.Mode, jobs)
	var wg sync.WaitGroup
	for i := 0; i < jobs; i++ {
		i := i
		modes[i] = allModes()[i%3]
		wg.Add(1)
		go func() {
			defer wg.Done()
			bind, st, err := ArrayKernels(g, n, 1)
			if err != nil {
				errs[i] = err
				return
			}
			if _, err := p.Run(g, rts.BindClosure(bind), rts.RunOpts{Processors: 2, Mode: modes[i]}); err != nil {
				errs[i] = err
				return
			}
			digests[i] = StateDigest(st)
		}()
	}
	wg.Wait()
	for i := 0; i < jobs; i++ {
		if errs[i] != nil {
			t.Fatalf("job %d: %v", i, errs[i])
		}
		if digests[i] != want[modes[i]] {
			t.Errorf("job %d (%v): digest %.12s != one-shot %.12s", i, modes[i], digests[i], want[modes[i]])
		}
	}
	if st := p.Stats(); st.JobsDone != jobs || st.Free != 4 || st.JobsActive != 0 {
		t.Errorf("stats after drain = %+v", st)
	}
}

// TestPoolFaultIsolationBetweenJobs runs a crashing job and a healthy
// job concurrently on one pool, repeatedly: the fault plan must stay
// confined to its own job — both jobs' results remain bitwise correct,
// and the healthy job never observes the neighbor's faults.
func TestPoolFaultIsolationBetweenJobs(t *testing.T) {
	g := diamondGraph(t)
	const n = 96
	want := oneShotDigest(t, g, n, rts.RunOpts{Processors: 2, Mode: rts.ModeTaper})

	plan, err := fault.Parse("crash:0@1")
	if err != nil {
		t.Fatal(err)
	}
	p := NewPool(4)
	defer p.Close()
	for round := 0; round < 5; round++ {
		var wg sync.WaitGroup
		var faultyDig, healthyDig string
		var faultyErr, healthyErr error
		wg.Add(2)
		go func() {
			defer wg.Done()
			bind, st, err := ArrayKernels(g, n, 1)
			if err != nil {
				faultyErr = err
				return
			}
			_, faultyErr = p.Run(g, rts.BindClosure(bind), rts.RunOpts{Processors: 2, Mode: rts.ModeTaper, Fault: plan})
			faultyDig = StateDigest(st)
		}()
		go func() {
			defer wg.Done()
			bind, st, err := ArrayKernels(g, n, 1)
			if err != nil {
				healthyErr = err
				return
			}
			_, healthyErr = p.Run(g, rts.BindClosure(bind), rts.RunOpts{Processors: 2, Mode: rts.ModeTaper})
			healthyDig = StateDigest(st)
		}()
		wg.Wait()
		if faultyErr != nil {
			t.Fatalf("round %d: faulty job: %v", round, faultyErr)
		}
		if healthyErr != nil {
			t.Fatalf("round %d: healthy job: %v", round, healthyErr)
		}
		if healthyDig != want {
			t.Errorf("round %d: healthy job digest %.12s != %.12s (perturbed by neighbor's faults)",
				round, healthyDig, want)
		}
		if faultyDig != want {
			t.Errorf("round %d: faulty job digest %.12s != %.12s (recovery lost or duplicated work)",
				round, faultyDig, want)
		}
	}
}

// TestPoolCancelReleasesWorkers cancels a job mid-run and checks the
// distinguishable error and that the leases come back — the pool stays
// fully usable. The exact moment cancellation lands depends on chunk
// boundaries, so the test retries until a run is actually abandoned.
func TestPoolCancelReleasesWorkers(t *testing.T) {
	// a's single task blocks until the context fires; b's tasks are
	// gated behind a, so at cancel time they are still outstanding.
	g := chainGraph(t, false)
	p := NewPool(2)
	defer p.Close()

	canceledOnce := false
	for attempt := 0; attempt < 20 && !canceledOnce; attempt++ {
		ctx, cancel := context.WithCancel(context.Background())
		started := make(chan struct{})
		var once sync.Once
		bind := func(name string) rts.OpSpec {
			if name == "a" {
				return rts.OpSpec{Op: sched.Op{Name: name, N: 1, Time: func(i int) float64 {
					once.Do(func() { close(started) })
					<-ctx.Done()
					return 1
				}}, Mu: 1}
			}
			return rts.OpSpec{Op: sched.Op{Name: name, N: 400, Time: func(i int) float64 { return 1 }}, Mu: 1}
		}
		errCh := make(chan error, 1)
		go func() {
			_, err := p.Run(g, rts.BindClosure(bind), rts.RunOpts{Processors: 2, Mode: rts.ModeTaper, Ctx: ctx})
			errCh <- err
		}()
		<-started
		cancel()
		err := <-errCh
		if err != nil {
			if !rts.IsCanceled(err) {
				t.Fatalf("attempt %d: error %v does not wrap rts.ErrCanceled", attempt, err)
			}
			canceledOnce = true
		}
		waitFree(t, p, 2)
	}
	if !canceledOnce {
		t.Fatal("no attempt was abandoned on cancellation")
	}

	// The pool must still execute jobs normally after a canceled one.
	g2 := diamondGraph(t)
	want := oneShotDigest(t, g2, 64, rts.RunOpts{Processors: 2, Mode: rts.ModeSplit})
	if got := poolDigest(t, p, g2, 64, rts.RunOpts{Processors: 2, Mode: rts.ModeSplit}); got != want {
		t.Errorf("post-cancel run digest %.12s != %.12s", got, want)
	}
}

// TestPoolCancelWhileQueued cancels a job that is still waiting for
// leases: it must abort with the cancel error without ever running,
// and the job holding the pool must be unaffected.
func TestPoolCancelWhileQueued(t *testing.T) {
	g := chainGraph(t, false)
	p := NewPool(2)
	defer p.Close()

	release := make(chan struct{})
	bind := func(name string) rts.OpSpec {
		return rts.OpSpec{Op: sched.Op{Name: name, N: 1, Time: func(i int) float64 {
			<-release
			return 1
		}}, Mu: 1}
	}
	holdErr := make(chan error, 1)
	go func() {
		_, err := p.Run(g, rts.BindClosure(bind), rts.RunOpts{Processors: 2, Mode: rts.ModeStatic})
		holdErr <- err
	}()
	// Wait until the holder owns both workers.
	deadline := time.Now().Add(5 * time.Second)
	for p.Free() != 0 {
		if time.Now().After(deadline) {
			t.Fatal("holding job never acquired the pool")
		}
		time.Sleep(time.Millisecond)
	}

	ctx, cancel := context.WithCancel(context.Background())
	queuedErr := make(chan error, 1)
	var ran atomic.Bool
	go func() {
		bind2 := func(name string) rts.OpSpec {
			return rts.OpSpec{Op: sched.Op{Name: name, N: 1, Time: func(i int) float64 {
				ran.Store(true)
				return 1
			}}, Mu: 1}
		}
		_, err := p.Run(g, rts.BindClosure(bind2), rts.RunOpts{Processors: 2, Mode: rts.ModeStatic, Ctx: ctx})
		queuedErr <- err
	}()
	// Wait until the second job is queued behind the first.
	for p.Stats().JobsQueued == 0 {
		if time.Now().After(deadline) {
			t.Fatal("second job never queued")
		}
		time.Sleep(time.Millisecond)
	}
	cancel()
	if err := <-queuedErr; !rts.IsCanceled(err) {
		t.Fatalf("queued job error = %v, want one wrapping rts.ErrCanceled", err)
	}
	if ran.Load() {
		t.Error("canceled queued job executed a task")
	}

	close(release)
	if err := <-holdErr; err != nil {
		t.Fatalf("holding job: %v", err)
	}
	waitFree(t, p, 2)
}

// TestPoolCloseStopsWorkers checks Close is idempotent, fails later
// Runs, and leaves no goroutines behind.
func TestPoolCloseStopsWorkers(t *testing.T) {
	runtime.GC()
	base := runtime.NumGoroutine()

	p := NewPool(3)
	g := diamondGraph(t)
	bind, _, err := ArrayKernels(g, 32, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Run(g, rts.BindClosure(bind), rts.RunOpts{Mode: rts.ModeSplit}); err != nil {
		t.Fatal(err)
	}
	p.Close()
	p.Close() // idempotent

	if _, err := p.Run(g, rts.BindClosure(bind), rts.RunOpts{Mode: rts.ModeSplit}); err == nil {
		t.Error("Run on a closed pool succeeded")
	}

	// The persistent goroutines must be gone; allow the runtime a few
	// scheduling rounds to reap them.
	for i := 0; i < 100; i++ {
		runtime.GC()
		if runtime.NumGoroutine() <= base {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Errorf("goroutines: %d before pool, %d after Close", base, runtime.NumGoroutine())
}

// waitFree blocks until the pool reports want free workers.
func waitFree(t *testing.T, p *Pool, want int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for p.Free() != want {
		if time.Now().After(deadline) {
			t.Fatalf("pool free = %d, want %d (leases not released)", p.Free(), want)
		}
		time.Sleep(time.Millisecond)
	}
}
