package native_test

import (
	"testing"

	"orchestra/internal/native"
	"orchestra/internal/rts"
)

// BenchmarkPipelineChain measures the chained split-mode schedule of
// the all-pipelined chain graph; BenchmarkPipelineNoChain is the same
// run on the prefix gate. CI runs both with -benchmem: the chained
// path must not allocate per chunk, and the report makes an
// allocation regression visible next to the wall-clock numbers.
func BenchmarkPipelineChain(b *testing.B) {
	benchmarkPipeline(b, rts.ChainAuto)
}

func BenchmarkPipelineNoChain(b *testing.B) {
	benchmarkPipeline(b, rts.ChainOff)
}

func benchmarkPipeline(b *testing.B, chain rts.ChainPolicy) {
	g := chainGraph(b)
	const n = 1 << 19
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bind, _, err := native.ArrayKernels(g, n, 1)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := (native.Backend{}).Run(g, rts.BindClosure(bind), rts.RunOpts{
			Processors: 4, Mode: rts.ModeSplit, Chain: chain,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// TestChainNoPerChunkAllocs is the allocation gate on the chained hot
// path. Growing the problem 4x grows the chained chunk count 4x (the
// block size is task-count independent); the engine's allocations must
// not grow with it — ledgers, done-marks and arrays are O(1)
// allocations each, merely bigger. A per-chunk allocation anywhere in
// chainCover/chainEnable/drainChain/runChained shows up as a delta of
// at least one alloc per added chunk, far above the gate.
func TestChainNoPerChunkAllocs(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation measurement is wall-clock heavy")
	}
	g := chainGraph(t)
	run := func(n int) float64 {
		return testing.AllocsPerRun(3, func() {
			bind, _, err := native.ArrayKernels(g, n, 1)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := (native.Backend{}).Run(g, rts.BindClosure(bind), rts.RunOpts{
				Processors: 4, Mode: rts.ModeSplit, Chain: rts.ChainAuto,
			}); err != nil {
				t.Fatal(err)
			}
		})
	}
	small := run(1 << 19) // 64 blocks per consumer
	big := run(1 << 21)   // 256 blocks per consumer: +~768 chained chunks
	delta := big - small
	t.Logf("allocs: small=%.0f big=%.0f delta=%.0f", small, big, delta)
	if delta > 300 {
		t.Fatalf("allocations grow with the chained chunk count: %.0f -> %.0f (+%.0f); the chain path allocates per chunk", small, big, delta)
	}
}
