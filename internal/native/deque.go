package native

import "sync"

// segment is a contiguous range [lo, hi) of one operator's tasks, the
// unit of work the scheduler moves between workers. Workers carve
// TAPER-sized chunks off a segment's front and push the remainder
// back, so a segment shrinks as it is consumed.
type segment struct {
	op     int
	lo, hi int
}

func (s segment) len() int { return s.hi - s.lo }

// deque is one worker's double-ended work queue. The owner pushes and
// pops at the bottom (LIFO — the most recently split remainder, still
// cache-warm), while thieves steal at the top (FIFO — the oldest and
// typically largest segment, so a single steal moves a substantial
// amount of work). A mutex guards the buffer: segments are coarse
// (chunks, not tasks), so operations are rare relative to task
// execution and contention on the lock is negligible.
type deque struct {
	mu   sync.Mutex
	head int
	buf  []segment
}

// push adds a segment at the bottom (owner end).
func (d *deque) push(s segment) {
	d.mu.Lock()
	d.buf = append(d.buf, s)
	d.mu.Unlock()
}

// pop removes the bottom segment (owner end, LIFO).
func (d *deque) pop() (segment, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.head == len(d.buf) {
		return segment{}, false
	}
	s := d.buf[len(d.buf)-1]
	d.buf = d.buf[:len(d.buf)-1]
	d.reset()
	return s, true
}

// steal removes the top segment (thief end, FIFO).
func (d *deque) steal() (segment, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.head == len(d.buf) {
		return segment{}, false
	}
	s := d.buf[d.head]
	d.head++
	d.reset()
	return s, true
}

// size reports the number of queued segments.
func (d *deque) size() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.buf) - d.head
}

// reset reclaims the buffer once it empties so a long run does not
// accumulate dead head space. Called with mu held.
func (d *deque) reset() {
	if d.head == len(d.buf) {
		d.head = 0
		d.buf = d.buf[:0]
	}
}
