package native

import (
	"sync/atomic"
)

// segment is a contiguous range [lo, hi) of one operator's tasks, the
// unit of work the scheduler moves between workers. Workers carve
// TAPER-sized chunks off a segment's front and push the remainder
// back, so a segment shrinks as it is consumed.
type segment struct {
	op     int
	lo, hi int
}

func (s segment) len() int { return s.hi - s.lo }

// Deque slots hold segments packed into one uint64 so the buffer can
// be read and written with single atomic operations — the property the
// lock-free protocol depends on (a torn read of a multi-word slot
// would be unrecoverable). The packing budgets 16 bits for the
// operator index and 24 bits for each bound.
const (
	// maxOps bounds the number of operators a graph may have.
	maxOps = 1 << 16
	// maxTasks bounds the task count of one operator, exclusive: the
	// hi bound of a segment is one past the last task, so the largest
	// representable operator has maxTasks-1 tasks.
	maxTasks = 1 << 24
)

func packSegment(s segment) uint64 {
	return uint64(s.op)<<48 | uint64(s.lo)<<24 | uint64(s.hi)
}

func unpackSegment(v uint64) segment {
	return segment{
		op: int(v >> 48),
		lo: int(v >> 24 & (maxTasks - 1)),
		hi: int(v & (maxTasks - 1)),
	}
}

// ring is one immutable-capacity circular buffer generation of a
// deque. Growth allocates a doubled ring and atomically swings the
// deque's buffer pointer; thieves still holding the old generation
// read valid slots, because the owner never overwrites a slot of a
// retired ring.
type ring struct {
	mask  uint64
	slots []atomic.Uint64
}

func newRing(capacity int) *ring {
	return &ring{mask: uint64(capacity - 1), slots: make([]atomic.Uint64, capacity)}
}

// deque is one worker's double-ended work queue: the lock-free
// Chase–Lev work-stealing deque. The owner pushes and pops at the
// bottom (LIFO — the most recently split remainder, still cache-warm);
// thieves steal at the top (FIFO — the oldest and typically largest
// segment, so a single steal moves substantial work). Only the owner
// writes bottom; top advances only by compare-and-swap, which
// arbitrates thief-vs-thief and thief-vs-owner races over the last
// element. Go's sync/atomic operations are sequentially consistent,
// which subsumes the fences of the weak-memory formulation (Lê et al.,
// PPoPP '13); the ordering argument is written out in DESIGN.md.
type deque struct {
	bottom atomic.Int64
	top    atomic.Int64
	buf    atomic.Pointer[ring]
}

// initialDequeCap is the starting ring size; it must be a power of two.
const initialDequeCap = 16

// init sizes the empty deque; it must be called before use, while the
// deque is not yet shared.
func (d *deque) init() {
	d.buf.Store(newRing(initialDequeCap))
}

// reset restores the canonical empty state while keeping the ring
// allocation — the deque half of a pooled worker's arena. Stale slot
// contents are unreachable (every read is bounded by [top, bottom)).
// Must only be called while the deque is not shared: after a job's
// workers have all exited, before the next job's launch.
func (d *deque) reset() {
	d.bottom.Store(0)
	d.top.Store(0)
}

// push adds a segment at the bottom. Only the owning worker may call
// it (single-writer bottom is what makes the fast path fence-free in
// the classic algorithm; here it keeps push CAS-free).
func (d *deque) push(s segment) {
	b := d.bottom.Load()
	t := d.top.Load()
	r := d.buf.Load()
	if b-t >= int64(len(r.slots)) {
		r = d.grow(r, b, t)
	}
	r.slots[uint64(b)&r.mask].Store(packSegment(s))
	d.bottom.Store(b + 1)
}

// grow doubles the ring, copying the live window [t, b). Owner-only.
func (d *deque) grow(old *ring, b, t int64) *ring {
	nr := newRing(2 * len(old.slots))
	for i := t; i < b; i++ {
		nr.slots[uint64(i)&nr.mask].Store(old.slots[uint64(i)&old.mask].Load())
	}
	d.buf.Store(nr)
	return nr
}

// pop removes the bottom segment (owner end, LIFO). Only the owning
// worker may call it. When one element remains the owner races thieves
// for it with a CAS on top; losing means the deque emptied under us.
func (d *deque) pop() (segment, bool) {
	b := d.bottom.Load() - 1
	r := d.buf.Load()
	d.bottom.Store(b)
	t := d.top.Load()
	if t > b {
		// Empty: restore the canonical bottom == top state.
		d.bottom.Store(t)
		return segment{}, false
	}
	v := r.slots[uint64(b)&r.mask].Load()
	if t == b {
		// Last element: win it from any concurrent thief.
		if !d.top.CompareAndSwap(t, t+1) {
			d.bottom.Store(b + 1)
			return segment{}, false
		}
		d.bottom.Store(b + 1)
	}
	return unpackSegment(v), true
}

// steal removes the top segment (thief end, FIFO). Any worker may call
// it. The slot is read before the CAS on top; a successful CAS
// validates the read, because the owner cannot recycle that slot
// until top has moved past it (push requires bottom-top < capacity,
// and a wrapped bottom aliasing slot t implies top advanced first,
// which would fail this CAS).
func (d *deque) steal() (segment, bool) {
	t := d.top.Load()
	b := d.bottom.Load()
	if t >= b {
		return segment{}, false
	}
	r := d.buf.Load()
	v := r.slots[uint64(t)&r.mask].Load()
	if !d.top.CompareAndSwap(t, t+1) {
		return segment{}, false
	}
	return unpackSegment(v), true
}

// size reports the number of queued segments. It is exact for the
// owner between its own operations and a racy approximation for
// anyone else.
func (d *deque) size() int {
	n := d.bottom.Load() - d.top.Load()
	if n < 0 {
		return 0
	}
	return int(n)
}
