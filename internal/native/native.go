// Package native executes compiled Delirium graphs on real hardware.
// Where internal/machine substitutes a discrete-event model for the
// paper's Ncube-2, this package is an actual parallel runtime: a pool
// of worker goroutines (GOMAXPROCS of them by default) runs operator
// tasks through per-worker work-stealing deques, and the orchestration
// decisions the paper makes from modelled costs are made here from
// measured ones —
//
//   - TAPER chunk sizing (internal/sched) is driven by wall-clock task
//     times sampled online into Welford (μ, σ²) accumulators, instead
//     of the simulator's per-task cost hints;
//   - barrier-free DAG execution mirrors rts.ExecuteDAG: operators
//     enable as their dataflow predecessors complete, and pipelined
//     edges deliver producer progress to consumers in granularity
//     batches;
//   - the trace is captured from real clocks: per-worker busy time,
//     wall-clock makespan, chunk/steal/batch counts, reported through
//     the same trace.Result the simulator fills.
//
// The hot paths are engineered to keep orchestration overhead small
// relative to task work (the paper's central requirement): per-worker
// lock-free Chase–Lev deques instead of mutex queues, direct release
// of newly enabled tasks from the completing worker instead of
// per-operator gater goroutines, chunk-amortized clock reads, and a
// futex-style parker (atomic idle count plus per-worker wake channels)
// instead of a global condition variable.
//
// The backend consumes the same rts.Binder the simulator does: an
// operation's Time function is treated as the executable body of task
// i (its return value, the simulated cost, is ignored — the wall clock
// is authoritative here). Kernel bindings whose Time does real array
// work therefore run identically on both backends, which is what the
// sim-vs-native parity tests exploit.
package native

import (
	"context"
	"fmt"
	"runtime"
	"runtime/pprof"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"orchestra/internal/delirium"
	"orchestra/internal/fault"
	"orchestra/internal/obs"
	"orchestra/internal/rts"
	"orchestra/internal/sched"
	"orchestra/internal/split"
	"orchestra/internal/stats"
	"orchestra/internal/trace"
)

// Backend runs Delirium graphs on goroutine workers. It is a stateless
// value: every per-run knob (worker count, mode, TAPER ω, trace sink,
// pinning, pprof labels) arrives in rts.RunOpts, so two concurrent Run
// calls on the same Backend cannot interfere. Each Run spawns its own
// worker goroutines and tears them down when the graph completes; a
// long-lived process serving many runs should execute them on a Pool
// instead, which keeps one set of workers alive across jobs (the
// pool-lifetime/job-lifetime split — see Pool).
type Backend struct{}

// Name implements rts.Backend.
func (Backend) Name() string { return "native" }

// nativeSupported declares the optional RunOpts capabilities of the
// native backend: all of them. Message faults in a plan have no
// native equivalent (the backend exchanges no modelled messages) and
// are trivially satisfied; see newEngine.
var nativeSupported = rts.Supported{Pin: true, Labels: true, Chain: true, Fault: true, Expand: true}

func init() {
	rts.RegisterBackend(rts.BackendInfo{Name: "native", Measured: true},
		func(cfg rts.BackendConfig) (rts.Backend, error) {
			if err := rts.CheckOptions("native", cfg.Options); err != nil {
				return nil, err
			}
			// The worker count is a per-run knob (RunOpts.Processors);
			// cfg.Processors has nothing to size on a stateless backend.
			return Backend{}, nil
		})
}

// Run implements rts.Backend: it runs the graph on opts.Processors
// worker goroutines (GOMAXPROCS when zero) under opts.Mode. The modes
// parallel the simulator's: ModeStatic uses a fixed block decomposition
// with no stealing and no pipelining, ModeTaper adds measured-time
// TAPER chunking and work stealing (operators still gate on fully
// completed predecessors), and ModeSplit additionally overlaps
// pipelined producer/consumer pairs. A non-nil opts.Sink receives the
// run's event trace, timestamped from the wall clock. A non-nil
// opts.Ctx cancels the run cooperatively at chunk boundaries.
func (Backend) Run(g *delirium.Graph, b *rts.Bound, opts rts.RunOpts) (trace.Result, error) {
	if err := opts.CheckSupported("native", nativeSupported); err != nil {
		return trace.Result{}, err
	}
	e, err := newEngine(g, b.Binder(), opts, defaultProcs(opts.Processors))
	if err != nil {
		return trace.Result{}, err
	}
	ws := make([]*worker, e.p)
	for i := range ws {
		ws[i] = newWorker(i)
	}
	e.workers = ws
	// Transient pool-of-one-job: each worker closure runs on a fresh
	// goroutine that exits when the job does.
	return e.execute(opts, func(run func()) { go run() })
}

// defaultProcs resolves a worker-count request against the backend
// default (GOMAXPROCS).
func defaultProcs(req int) int {
	if req > 0 {
		return req
	}
	return runtime.GOMAXPROCS(0)
}

// newEngine validates the graph and options and builds the per-job
// scheduler state for p workers: operator states in topological order,
// dataflow gates, fault-injection state, and the trace recorder. It
// does not create workers or start execution — callers attach a worker
// set (freshly allocated by Backend.Run, leased from an arena by
// Pool.Run) and then call execute.
func newEngine(g *delirium.Graph, bind rts.Binder, opts rts.RunOpts, p int) (*engine, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	order, err := g.TopoOrder()
	if err != nil {
		return nil, err
	}
	if len(order) > maxOps {
		return nil, fmt.Errorf("native: %d operators exceed the deque packing limit %d", len(order), maxOps)
	}
	if p < 1 {
		p = 1
	}
	var fx *fault.Exec
	if opts.Fault != nil {
		if err := opts.Fault.Validate(p); err != nil {
			return nil, err
		}
		// Message faults (delay/loss) have no native equivalent — the
		// backend exchanges no modelled messages — so only worker
		// actions take effect here.
		fx = fault.NewExec(opts.Fault, p)
	}
	e := &engine{p: p, pin: opts.Pin, labels: opts.Labels, fx: fx, graphName: g.Name, mode: opts.Mode}
	e.live.Store(int32(p))
	switch opts.Mode {
	case rts.ModeStatic:
		// fixed blocks, no adaptation
	case rts.ModeTaper:
		e.adaptive, e.steal = true, true
	case rts.ModeSplit:
		e.adaptive, e.steal, e.pipelined = true, true, true
	}
	e.finished = make(chan struct{})
	if fx != nil && opts.Fault.NeedsDetector() {
		e.needsDetector = true
	}
	if opts.Sink != nil {
		names := make([]string, len(order))
		for i, nd := range order {
			names[i] = nd.Name
		}
		rings := p
		if e.needsDetector {
			// The detector emits fault/retry/realloc events from its own
			// goroutine; rings are single-writer, so it gets ring p.
			rings = p + 1
		}
		e.rec = obs.NewRecorder("native", "s", names, rings)
	}

	// Operator states, in topological order.
	e.omega = opts.Omega
	e.opIndex = map[string]int{}
	ops := make([]*opState, 0, len(order))
	total := 0
	for i, nd := range order {
		o, err := e.buildOp(nd, bind(nd.Name), i, 0, -1)
		if err != nil {
			return nil, err
		}
		e.opIndex[nd.Name] = i
		ops = append(ops, o)
		total += o.n
	}
	e.total = total
	e.outstanding.Store(int64(total))
	e.opsA.Store(&ops)

	// Dataflow edges. Pipelined edges get a delivery granularity; in
	// the barriered modes every edge degrades to completion-gated.
	pairs := wireEdges(ops, g.Edges, e.pipelined, p, 0)
	if e.pipelined && opts.Chain == rts.ChainAuto {
		// Cache chaining rides on split mode: convert annotation- or
		// compiler-qualified edges before the doneMark pass below, so
		// producers whose only consumers chain skip prefix tracking.
		e.setupChains(pairs)
	}
	markPrefixTracking(ops)
	return e, nil
}

// buildOp constructs one operator's runtime state from its binding.
// depth and parent place the operator in the expansion tree (0, -1 at
// top level). Shared between newEngine and splice, so statically
// declared and runtime-expanded operators are built identically.
func (e *engine) buildOp(nd *delirium.Node, spec rts.OpSpec, idx, depth, parent int) (*opState, error) {
	o := &opState{idx: idx, name: nd.Name, n: spec.Op.N, body: spec.Op.Time, bodyRange: spec.Op.TimeRange,
		split: spec.Split, bytes: spec.Op.Bytes, depth: depth, parent: parent}
	if o.body == nil {
		o.n = 0
	}
	if nd.Kind == delirium.Exp && spec.Expand == nil {
		return nil, fmt.Errorf("native: operator %s is expandable (kind=exp) but its binding has no Expand rule", nd.Name)
	}
	if nd.Kind != delirium.Exp && spec.Expand != nil {
		return nil, fmt.Errorf("native: binding provides an Expand rule for non-expandable operator %s (kind=%s)", nd.Name, nd.Kind)
	}
	if spec.Expand != nil {
		// An expandable operator contributes exactly one join task of
		// its own: it runs after the materialized sub-graph drains, and
		// its completion is what releases the operator's successors.
		o.expand = spec.Expand
		o.n = 1
		if o.body == nil {
			o.body = func(int) float64 { return 0 }
		}
	}
	// Strict: a segment's hi bound is exclusive, so an operator
	// with exactly maxTasks tasks would pack hi = 1<<24 into a
	// 24-bit field and alias the lo field's low bit.
	if o.n >= maxTasks {
		return nil, fmt.Errorf("native: operator %s has %d tasks, exceeding the deque packing limit %d", nd.Name, o.n, maxTasks)
	}
	o.taper = sched.Taper{UseCostFunction: true, Omega: e.omega}
	o.stats = sched.NewTaskStats(maxInt(o.n, 1))
	o.unsched.Store(int64(o.n))
	return o, nil
}

// wireEdges installs the dataflow edges of g among ops, whose first
// `base` entries are assumed to belong to enclosing scopes (zero for
// the top-level graph; the already-published table length when wiring
// an expansion sub-graph, where index maps name → table index). Edges
// touching an expandable endpoint are always completion-gated: a
// consumer must not start against a not-yet-materialized sub-graph,
// and an expandable producer's join task is its only observable
// progress.
func wireEdges(ops []*opState, edges []*delirium.Edge, pipelined bool, p, base int) []edgePair {
	index := map[string]int{}
	for _, o := range ops[base:] {
		index[o.name] = o.idx
	}
	var pairs []edgePair
	for _, ed := range edges {
		if ed.Carried {
			continue
		}
		f, t := index[ed.From], index[ed.To]
		prod, cons := ops[f], ops[t]
		pip := ed.Pipelined && pipelined && prod.n > 0 &&
			prod.expand == nil && cons.expand == nil
		batch := 1
		if pip {
			batch = batchSize(prod.n, p)
		}
		cons.in = append(cons.in, inEdge{from: f, pipelined: pip, batch: batch})
		prod.out = append(prod.out, &outEdge{to: t, pipelined: pip, batch: batch})
		pairs = append(pairs, edgePair{from: f, to: t,
			inIdx: len(cons.in) - 1, outIdx: len(prod.out) - 1, attr: ed.Chain})
	}
	return pairs
}

// markPrefixTracking allocates doneMark for producers with pipelined
// consumers: pipelined consumers gate on the contiguous completed
// prefix (tasks finish out of order under stealing), so such producers
// track per-task completion marks.
func markPrefixTracking(ops []*opState) {
	for _, o := range ops {
		if o.doneMark != nil {
			continue
		}
		for _, oe := range o.out {
			if oe.pipelined {
				o.doneMark = make([]bool, o.n)
				break
			}
		}
	}
}

// newWorker builds a fresh worker in the ready state for job-local
// id i.
func newWorker(i int) *worker {
	w := &worker{}
	w.dq.init()
	w.pk.init()
	w.reset(i)
	return w
}

// reset re-initializes a worker for a new job under job-local id i:
// the start of the worker's next epoch. Everything observable is
// cleared — deque window, inbox, parker state and any unconsumed wake
// token, fault flags, measured busy time — while the allocations that
// survive (deque ring, inbox backing array, wake scratch) are the
// arena the Pool reuses across jobs. Must only be called while no
// other goroutine can reach the worker.
func (w *worker) reset(i int) {
	w.id = i
	w.rng = stats.NewRNG(uint64(i)*0x9e3779b97f4a7c15 + 0x1d)
	w.dq.reset()
	w.pk.reset()
	w.inbox = w.inbox[:0]
	w.inboxN.Store(0)
	w.busy = 0
	w.hb.Store(0)
	w.deadA.Store(false)
	w.slowF = 0
	w.slowSeen = false
	w.wakeBuf = w.wakeBuf[:0]
	w.labelOp = -1
	w.chainQ = w.chainQ[:0]
	w.crashed = false
}

// execute runs the prepared engine to completion on its attached
// workers. launch starts one worker closure; Backend.Run passes `go`,
// Pool.Run dispatches onto its persistent goroutines. It is the single
// execution path for both, so pool-hosted jobs and one-shot runs are
// behaviorally identical.
func (e *engine) execute(opts rts.RunOpts, launch func(func())) (trace.Result, error) {
	if ctx := opts.Ctx; ctx != nil {
		if err := ctx.Err(); err != nil {
			return trace.Result{}, rts.CancelError("native", ctx)
		}
		if ctx.Done() != nil {
			// The monitor makes cancellation visible to the workers: the
			// canceled flag stops loop-tops, the closed channel unparks
			// sleepers. stop() keeps the callback from outliving the run.
			stop := context.AfterFunc(ctx, func() {
				e.canceled.Store(true)
				e.finishOnce.Do(func() { close(e.finished) })
			})
			defer stop()
		}
	}

	start := time.Now()
	e.start = start
	if e.fx != nil {
		now := start.UnixNano()
		for _, w := range e.workers {
			w.hb.Store(now)
		}
	}
	if e.total == 0 {
		e.finishOnce.Do(func() { close(e.finished) })
	}

	// Initial releases, still single-threaded (the worker goroutines
	// start below, so these plain deque pushes are safely published).
	// Source operators release everything; gated operators take one
	// gate evaluation, which releases ops whose producers are already
	// trivially complete (zero-task operators).
	for oi, o := range e.opsSnap() {
		if o.expand != nil {
			// Expandable sources (and those whose producers are all
			// trivially complete) expand here, single-threaded.
			e.tryRelease(oi, nil)
			continue
		}
		if len(o.in) == 0 {
			if o.n > 0 {
				e.release(nil, oi, 0, o.n)
			}
			continue
		}
		e.tryRelease(oi, nil)
	}

	for _, w := range e.workers {
		e.wg.Add(1)
		w := w
		launch(func() { e.runWorker(w) })
	}
	if e.needsDetector {
		e.detWG.Add(1)
		go e.detector()
	}
	e.wg.Wait()
	wall := time.Since(start).Seconds()
	if e.fx != nil {
		// Workers exit either on finished or by crashing; make sure the
		// detector sees a closed channel even on the stall-error path.
		e.finishOnce.Do(func() { close(e.finished) })
		e.detWG.Wait()
	}

	if err := e.loadFail(); err != nil {
		return trace.Result{}, err
	}
	if e.outstanding.Load() != 0 {
		if e.canceled.Load() {
			return trace.Result{}, rts.CancelError("native", opts.Ctx)
		}
		return trace.Result{}, fmt.Errorf("native: execution stalled with %d tasks outstanding", e.outstanding.Load())
	}
	res := trace.Result{
		Name:       fmt.Sprintf("native-%s/%s", e.mode, e.graphName),
		Processors: e.p,
		Unit:       "s",
		Makespan:   wall,
		Busy:       make([]float64, e.p),
		Chunks:     int(e.chunks.Load()),
		Steals:     int(e.steals.Load()),
		Messages:   int(e.batches.Load()),

		ChainHits:      int(e.chainHits.Load()),
		ChainSpills:    int(e.chainSpills.Load()),
		ChainFallbacks: int(e.chainFB.Load()),
	}
	for i, w := range e.workers {
		res.Busy[i] = w.busy
		res.SeqTime += w.busy
	}
	if opts.Sink != nil {
		return res, opts.Sink.Consume(e.rec.Finish(res))
	}
	return res, nil
}

// inEdge is a dataflow input: the consumer's gate over one producer.
type inEdge struct {
	from      int
	pipelined bool
	batch     int
	// chain marks an edge converted to cache-chain delivery (setupChains):
	// the consumer's tasks are issued by block coverage, not by the gate.
	chain bool
}

// outEdge is a producer's delivery obligation toward one consumer.
// notified, sentFull and coverLeft are guarded by the producer's
// progressMu.
type outEdge struct {
	to        int
	pipelined bool
	batch     int
	notified  int // last batch count delivered
	sentFull  bool
	// chain marks a cache-chain edge; halo widens each consumer block's
	// read span on both sides; coverLeft[b] counts the producer tasks of
	// block b's span still incomplete.
	chain     bool
	halo      int
	coverLeft []int32
	// barrier marks a non-chain in-edge of a chain-managed consumer: the
	// producer's full completion delivers every block at once.
	barrier bool
}

// opState is one operator's runtime state.
type opState struct {
	idx  int
	name string
	n    int
	// body executes task i; the returned simulated cost is ignored.
	body func(i int) float64
	// bodyRange, when non-nil, executes tasks [lo, hi) in one fused
	// call, saving a closure invocation per task on chunk-timed chunks.
	bodyRange func(lo, hi int) float64
	in        []inEdge
	out       []*outEdge
	// split is the kernel's data-access annotation (nil = undeclared).
	split *split.Annotation
	// bytes is the kernel's per-task byte estimate, sizing chain blocks.
	bytes int64
	// chain, when non-nil, marks this operator chain-managed: its tasks
	// are issued as cache-sized blocks by producer coverage instead of
	// through the release gate.
	chain *chainState
	// chainOut caps this producer's TAPER grain at its smallest chain
	// consumer block (0 = no chain out-edges), so one chunk enables
	// about one cache-resident block.
	chainOut int

	// expand, when non-nil, marks the operator expandable (a
	// delirium.Exp node): once its predecessors complete, one worker
	// claims the expansion (expStarted), materializes the returned
	// sub-graph into the operator table, and the operator's own n=1
	// join task releases only when subLeft — the count of not-yet-
	// completed sub-graph tasks — reaches zero. depth is the nesting
	// depth (0 at top level); parent is the index of the expandable
	// operator that materialized this one, or -1.
	expand     rts.ExpandFunc
	depth      int
	parent     int
	expStarted atomic.Bool
	subLeft    atomic.Int64

	// unsched counts tasks not yet taken into any chunk.
	unsched atomic.Int64
	// done counts completed tasks (any order).
	done atomic.Int64
	// prefixA mirrors the contiguous completed prefix for lock-free
	// reads by consumers' gate evaluations.
	prefixA atomic.Int64
	// released counts tasks handed to the worker deques; release
	// ranges are claimed by CAS, so concurrent completing workers
	// never double-release.
	released atomic.Int64

	// statsMu guards stats and taper.
	statsMu sync.Mutex
	stats   *sched.TaskStats
	taper   sched.Taper

	// progressMu guards doneMark, prefix and the out-edges' delivery
	// cursors.
	progressMu sync.Mutex
	doneMark   []bool
	prefix     int
}

// worker is one goroutine of the pool.
type worker struct {
	id  int
	dq  deque
	pk  parker
	rng *stats.RNG
	// inbox receives segments released by other workers: Chase–Lev
	// bottoms are single-writer, so cross-worker releases cannot push
	// into the target's deque directly. The owner drains its inbox
	// into its deque before popping. inboxN allows a lock-free
	// emptiness check on the hot path.
	inboxMu sync.Mutex
	inbox   []segment
	inboxN  atomic.Int32
	// busy accumulates measured task-execution seconds; written only
	// by the owning goroutine, read after the pool joins.
	busy float64
	// hb is the wall-clock heartbeat the fault detector watches, stored
	// at every loop-top when a fault plan is active.
	hb atomic.Int64
	// deadA is set by the detector when this worker is declared dead.
	deadA atomic.Bool
	// slowF is the active slowdown factor (0 or 1 = none); slowSeen
	// dedups the trace event. Owner-only.
	slowF    float64
	slowSeen bool
	// wakeBuf is completion-path scratch for consumer operator indices.
	wakeBuf []int
	// labelOp is the operator currently named in this goroutine's
	// pprof labels, or -1.
	labelOp int
	// chainQ holds consumer blocks this worker enabled and will run
	// depth-first while their inputs are cache-resident. Owner-only.
	chainQ []chainItem
	// crashed is set when a fault crashes this worker mid-chain after
	// its queued blocks were handed to the survivors; the loop-top exits.
	crashed bool
}

// postInbox hands a segment to this worker from another goroutine.
func (w *worker) postInbox(s segment) {
	w.inboxMu.Lock()
	w.inbox = append(w.inbox, s)
	w.inboxMu.Unlock()
	w.inboxN.Add(1)
}

// drainInbox moves posted segments into the worker's own deque.
// Owner-only.
func (w *worker) drainInbox() {
	w.inboxMu.Lock()
	segs := w.inbox
	w.inbox = w.inbox[:0]
	w.inboxN.Add(int32(-len(segs)))
	for _, s := range segs {
		w.dq.push(s)
	}
	w.inboxMu.Unlock()
}

// engine is the per-execution scheduler state: everything whose
// lifetime is one job, as opposed to the workers' goroutines, whose
// lifetime is the pool's when a Pool hosts the job.
type engine struct {
	p                          int
	adaptive, steal, pipelined bool
	pin, labels                bool
	graphName                  string
	mode                       rts.Mode
	total                      int
	needsDetector              bool
	workers                    []*worker

	// opsA publishes the operator table. Runtime expansion appends
	// sub-operators mid-run, so workers read a consistent snapshot
	// through op/opsSnap while splice swaps in a grown copy under
	// expandMu — indices are append-only, so any index a worker holds
	// stays valid in every later snapshot.
	opsA atomic.Pointer[[]*opState]
	// expandMu serializes expansions; opIndex maps every scheduled
	// operator name to its index (expansion sub-graphs must not
	// redeclare names).
	expandMu sync.Mutex
	opIndex  map[string]int
	// omega is the run's TAPER ω override, kept for sub-operator
	// construction at expansion time.
	omega float64

	// failMu guards failErr, the first mid-run failure (expansion
	// errors: depth bound, packing limits, bad sub-graphs). fail()
	// stops the workers; execute returns failErr instead of a result.
	failMu  sync.Mutex
	failErr error

	// canceled is set by the context monitor; workers observe it at
	// their loop-top and abandon queued work.
	canceled atomic.Bool

	// idle counts workers that have published themselves as parked;
	// releasers skip the wake scan entirely while it is zero.
	idle atomic.Int32

	// queued approximates the number of segments across all deques and
	// inboxes; workers park when it reaches zero.
	queued      atomic.Int64
	outstanding atomic.Int64
	finished    chan struct{}
	finishOnce  sync.Once

	rr      atomic.Int64
	chunks  atomic.Int64
	steals  atomic.Int64
	batches atomic.Int64

	// Cache-chain counters: blocks run in place, blocks spilled to the
	// deques at the depth limit, blocks released to survivors on crash.
	chainHits   atomic.Int64
	chainSpills atomic.Int64
	chainFB     atomic.Int64

	// rec, when non-nil, receives the run's event trace; start is the
	// wall-clock origin its timestamps are relative to. Workers emit
	// into per-worker rings, so recording needs no extra locking.
	rec   *obs.Recorder
	start time.Time

	// Fault injection (nil fx = disabled, one branch on the hot paths).
	// live tracks workers not declared dead; anyDead routes releases
	// through the survivor-aware split.
	fx      *fault.Exec
	live    atomic.Int32
	anyDead atomic.Bool
	detWG   sync.WaitGroup

	wg sync.WaitGroup
}

// sampleEach is the chunk size below which tasks are timed one by one
// (true per-task variance); larger chunks are timed as a whole — two
// clock reads per chunk — and folded in via TaskStats.ObserveChunk.
const sampleEach = 16

// batchSize picks the pipelined delivery granularity: a handful of
// batches per worker, so consumers ramp up early without paying a
// release per task. (The simulator derives its granularity from
// modelled message costs — rts.ChoosePairGranularity; natively a
// release costs nanoseconds, so only the pipeline-fill consideration
// survives.)
func batchSize(n, p int) int {
	b := n / (8 * p)
	if b < 1 {
		b = 1
	}
	return b
}

// opsSnap returns the current operator table. The snapshot is
// immutable: expansion publishes a grown copy, never mutates a
// published slice.
func (e *engine) opsSnap() []*opState { return *e.opsA.Load() }

// op returns operator i from the current snapshot.
func (e *engine) op(i int) *opState { return (*e.opsA.Load())[i] }

// fail aborts the run: the first failure wins, the workers stop at
// their next loop-top, and execute returns the error instead of a
// result.
func (e *engine) fail(err error) {
	e.failMu.Lock()
	if e.failErr == nil {
		e.failErr = err
	}
	e.failMu.Unlock()
	e.canceled.Store(true)
	e.finishOnce.Do(func() { close(e.finished) })
}

// loadFail returns the recorded mid-run failure, if any.
func (e *engine) loadFail() error {
	e.failMu.Lock()
	defer e.failMu.Unlock()
	return e.failErr
}

func (e *engine) isFinished() bool {
	select {
	case <-e.finished:
		return true
	default:
		return false
	}
}

// gate computes how many of o's tasks are executable given its
// producers' progress: the minimum over inputs of the enabled prefix,
// exactly the shape of rts.ExecuteDAG's gate — except that pipelined
// enabling reads the producer's *contiguous* completed prefix, making
// it safe for consumers to read producer data up to the mapped index.
func (e *engine) gate(o *opState) int {
	en := o.n
	for _, ie := range o.in {
		prod := e.op(ie.from)
		pn := prod.n
		var v int
		if int(prod.done.Load()) >= pn {
			v = o.n
		} else if ie.pipelined && pn > 0 {
			prefix := int(prod.prefixA.Load())
			delivered := prefix / ie.batch * ie.batch
			v = int(int64(delivered) * int64(o.n) / int64(pn))
		}
		if v < en {
			en = v
		}
	}
	return en
}

// tryRelease advances operator oi's released range to its current
// gate. The CAS on released claims [rel, en) for exactly one caller,
// so completing workers release consumers directly — no gater
// goroutine, no channel hop — yet never double-release a task.
func (e *engine) tryRelease(oi int, w *worker) {
	o := e.op(oi)
	if o.expand != nil {
		// Expandable operators are never gate-released: their join task
		// is held until the materialized sub-graph drains (releaseJoin),
		// and predecessor completion instead triggers the expansion.
		e.tryExpand(o, w)
		return
	}
	for {
		rel := o.released.Load()
		if rel >= int64(o.n) {
			return
		}
		en := int64(e.gate(o))
		if en <= rel {
			return
		}
		if o.released.CompareAndSwap(rel, en) {
			e.release(w, oi, int(rel), int(en))
			return
		}
		// Another completing worker advanced the gate first; re-check
		// whether anything is left for us.
	}
}

// tryExpand materializes an expandable operator's sub-graph once
// every predecessor has fully completed (edges into an expandable
// operator are always completion-gated). Exactly one caller claims
// the expansion; the sub-graph's tasks are spliced into the operator
// table and released into the same deques every other task uses, so
// work-stealing crosses nesting levels. w is the triggering worker,
// or nil during single-threaded setup.
func (e *engine) tryExpand(o *opState, w *worker) {
	for _, ie := range o.in {
		prod := e.op(ie.from)
		if int(prod.done.Load()) < prod.n {
			return
		}
	}
	if !o.expStarted.CompareAndSwap(false, true) {
		return
	}
	exp, err := o.expand(o.depth)
	if err != nil {
		e.fail(fmt.Errorf("native: expanding %s: %w", o.name, err))
		return
	}
	if exp == nil {
		// Base case: the operator degenerates to its join task.
		e.releaseJoin(o, w)
		return
	}
	subs, total, err := e.splice(o, exp)
	if err != nil {
		e.fail(fmt.Errorf("native: expanding %s: %w", o.name, err))
		return
	}
	if total == 0 {
		// Every sub-operator is empty; only the join remains.
		e.releaseJoin(o, w)
		return
	}
	// Release the sub-graph's sources (and operators whose producers
	// are trivially complete). Nested expandable sources recurse here,
	// outside splice's lock, bounded by rts.MaxExpandDepth.
	for _, so := range subs {
		if so.expand != nil || len(so.in) > 0 {
			e.tryRelease(so.idx, w)
		} else if so.n > 0 {
			e.release(w, so.idx, 0, so.n)
		}
	}
}

// splice validates an expansion and appends its operators to the
// published table, returning the new operator states and their total
// task count. The parent's subLeft and the engine's outstanding count
// are advanced before the new table is published, so no sub-task
// completion can be observed with stale accounting. Releases are the
// caller's job — they must happen outside expandMu, because a nested
// source expansion re-enters splice.
func (e *engine) splice(parent *opState, exp *rts.Expansion) ([]*opState, int, error) {
	e.expandMu.Lock()
	defer e.expandMu.Unlock()
	err := rts.ValidateExpansion(parent.name, parent.depth, exp, func(name string) bool {
		_, ok := e.opIndex[name]
		return ok
	})
	if err != nil {
		return nil, 0, err
	}
	order, err := exp.Graph.TopoOrder()
	if err != nil {
		return nil, 0, err
	}
	cur := e.opsSnap()
	base := len(cur)
	if base+len(order) > maxOps {
		return nil, 0, fmt.Errorf("%d operators exceed the deque packing limit %d", base+len(order), maxOps)
	}
	grown := make([]*opState, base, base+len(order))
	copy(grown, cur)
	total := 0
	for i, nd := range order {
		o, err := e.buildOp(nd, exp.Bind(nd.Name), base+i, parent.depth+1, parent.idx)
		if err != nil {
			return nil, 0, err
		}
		grown = append(grown, o)
		total += o.n
	}
	subs := grown[base:]
	wireEdges(grown, exp.Graph.Edges, e.pipelined, e.p, base)
	markPrefixTracking(subs)
	if e.rec != nil {
		// Recorder indices must track engine indices; both append in
		// the same order under expandMu.
		for _, o := range subs {
			e.rec.AddOp(o.name)
		}
	}
	for _, o := range subs {
		e.opIndex[o.name] = o.idx
	}
	// Accounting before publication: once the table is visible, any
	// worker may complete a sub-task, and both counters must already
	// cover it. outstanding is strictly positive throughout (the
	// parent's join task is counted and unreleased), so the grown count
	// cannot race the finished gate.
	parent.subLeft.Store(int64(total))
	e.outstanding.Add(int64(total))
	e.opsA.Store(&grown)
	return subs, total, nil
}

// releaseJoin hands an expandable operator's own join task to the
// workers: the expansion's sub-graph (if any) has fully drained. The
// CAS releases exactly once — subLeft reaching zero and an empty
// expansion cannot both win.
func (e *engine) releaseJoin(o *opState, w *worker) {
	if o.released.CompareAndSwap(0, int64(o.n)) {
		e.release(w, o.idx, 0, o.n)
	}
}

// release hands tasks [lo, hi) of op to the workers: a large range is
// block-split across every worker (the owner-computes decomposition —
// worker j owns block j), while a small pipelined delta stays with the
// releasing worker (cache-warm, lock-free) when stealing can spread
// it, else goes to the next worker round-robin. w is the releasing
// worker, or nil during single-threaded setup (when plain deque
// pushes are safe because the pool has not launched).
func (e *engine) release(w *worker, op, lo, hi int) {
	n := hi - lo
	if n <= 0 {
		return
	}
	if e.fx != nil && e.anyDead.Load() {
		e.releaseFault(w, op, lo, hi)
		return
	}
	if n >= 2*e.p && e.p > 1 {
		for j := 0; j < e.p; j++ {
			a, b := sched.BlockBounds(j, n, e.p)
			if b <= a {
				continue
			}
			s := segment{op: op, lo: lo + a, hi: lo + b}
			if w == nil || j == w.id {
				e.workers[j].dq.push(s)
			} else {
				e.workers[j].postInbox(s)
			}
			e.queued.Add(1)
		}
		if e.steal {
			e.signal(e.p)
		} else {
			for j := 0; j < e.p; j++ {
				e.workers[j].pk.unpark()
			}
		}
		return
	}
	s := segment{op: op, lo: lo, hi: hi}
	if w != nil && e.steal {
		w.dq.push(s)
		e.queued.Add(1)
		e.signal(1)
		return
	}
	j := int(e.rr.Add(1)-1) % e.p
	if w == nil || j == w.id {
		e.workers[j].dq.push(s)
	} else {
		e.workers[j].postInbox(s)
	}
	e.queued.Add(1)
	e.workers[j].pk.unpark()
}

// signal wakes up to n parked workers after work became visible. The
// idle count makes the common no-one-parked case a single atomic load.
func (e *engine) signal(n int) {
	if e.idle.Load() == 0 {
		return
	}
	for i := 0; i < e.p && n > 0; i++ {
		if e.workers[i].pk.unpark() {
			n--
		}
	}
}

// reachableWork reports whether work this worker could run may exist.
// With stealing enabled any queued segment anywhere is reachable;
// without it only the worker's own deque and inbox count (otherwise an
// idle worker would spin on work it is not allowed to take).
func (e *engine) reachableWork(w *worker) bool {
	if e.steal {
		return e.queued.Load() > 0
	}
	return w.dq.size() > 0 || w.inboxN.Load() > 0
}

// idleWait spins briefly and then parks until work this worker could
// run may be available or the run finishes; it reports whether the
// worker should exit. The park protocol publishes the parked state
// before the final work re-check, so a release that lands in the gap
// is never lost (see parker).
func (e *engine) idleWait(w *worker) bool {
	for i := 0; i < parkSpins; i++ {
		if e.isFinished() {
			return true
		}
		if e.reachableWork(w) {
			return false
		}
		spinWait(i)
	}
	w.pk.prepare()
	e.idle.Add(1)
	if e.reachableWork(w) || e.isFinished() {
		if !w.pk.cancel() {
			// A releaser claimed us between prepare and cancel; its
			// token is in flight and must be absorbed.
			w.pk.consume()
		}
		e.idle.Add(-1)
		return e.isFinished()
	}
	w.pk.block(e.finished)
	e.idle.Add(-1)
	return e.isFinished()
}

// stealFrom scans the other workers' deques from a random start and
// takes the first stealable segment.
func (e *engine) stealFrom(w *worker) (segment, bool) {
	if e.p == 1 {
		return segment{}, false
	}
	start := w.rng.Intn(e.p)
	for t := 0; t < e.p; t++ {
		v := (start + t) % e.p
		if v == w.id {
			continue
		}
		if s, ok := e.workers[v].dq.steal(); ok {
			e.steals.Add(1)
			if e.rec != nil {
				e.rec.Steal(w.id, v, s.op, s.lo, s.len(), time.Since(e.start).Seconds())
			}
			return s, true
		}
	}
	return segment{}, false
}

// findWork is the worker's acquisition order: drain the inbox into the
// deque, pop local work, else steal. stolen reports whether the segment
// came off another worker's deque.
func (e *engine) findWork(w *worker) (seg segment, ok, stolen bool) {
	if w.inboxN.Load() > 0 {
		w.drainInbox()
	}
	if s, ok := w.dq.pop(); ok {
		return s, true, false
	}
	if e.steal {
		if s, ok := e.stealFrom(w); ok {
			return s, true, true
		}
		if e.fx != nil {
			if s, ok := e.stealInbox(w); ok {
				return s, true, true
			}
		}
	}
	return segment{}, false, false
}

// runWorker is the worker loop: pop local work, else steal, else park.
func (e *engine) runWorker(w *worker) {
	defer e.wg.Done()
	if e.pin {
		runtime.LockOSThread()
		defer runtime.UnlockOSThread()
	}
	if e.labels {
		defer pprof.SetGoroutineLabels(context.Background())
	}
	for {
		if w.crashed {
			// A fault crashed this worker inside a chain drain; its queued
			// blocks have already been released to the survivors.
			return
		}
		if e.canceled.Load() {
			// Cooperative cancellation: whatever this worker still holds
			// is abandoned (the engine is discarded wholesale), but the
			// chunk that was executing has fully completed.
			return
		}
		if e.fx != nil {
			w.hb.Store(time.Now().UnixNano())
			// A declared-dead worker reaching its loop-top is demonstrably
			// alive (a detector false positive — easy on oversubscribed
			// machines where scheduling delays exceed the deadline):
			// resurrect so deliveries and releases include it again.
			if w.deadA.Load() && !e.fx.Crashed(w.id) && w.deadA.CompareAndSwap(true, false) {
				e.live.Add(1)
			}
		}
		seg, ok, stolen := e.findWork(w)
		if !ok {
			if e.idleWait(w) {
				return
			}
			continue
		}
		e.queued.Add(-1)
		if e.fx != nil && !e.faultPoint(w, seg) {
			return
		}
		e.runSegment(w, seg, stolen)
	}
}

// setLabels tags the goroutine with its worker id and current
// operator, so CPU/heap profiles attribute samples per operator.
// Only called when profiling labels are enabled.
func (e *engine) setLabels(w *worker, op int) {
	w.labelOp = op
	ctx := pprof.WithLabels(context.Background(),
		pprof.Labels("worker", strconv.Itoa(w.id), "op", e.op(op).name))
	pprof.SetGoroutineLabels(ctx)
}

// runSegment executes one chunk off the segment's front and returns
// the remainder to the worker's deque (where thieves can see it while
// the chunk runs).
//
// Clock discipline: a chunk of k ≤ sampleEach tasks is boundary-timed
// (k+1 clock reads give exact per-task durations while chunks are
// small and variance information matters most); a larger chunk costs
// two clock reads total, and its aggregate time is folded into the
// statistics as k observations of the chunk mean via ObserveChunk.
func (e *engine) runSegment(w *worker, seg segment, stolen bool) {
	o := e.op(seg.op)
	k := seg.len()
	if e.adaptive {
		rem := int(o.unsched.Load())
		if rem < 1 {
			rem = k
		}
		o.statsMu.Lock()
		c := o.taper.NextChunk(rem, e.liveP(), o.stats)
		c = o.taper.ScaleChunk(c, seg.lo, o.stats)
		if o.chainOut > 0 && c > o.chainOut {
			// Cache-aware producer chunking: one chunk enables about one
			// consumer block, which then runs on this worker while the
			// chunk's output is still resident.
			c = o.chainOut
		}
		if e.rec != nil {
			e.rec.Taper(w.id, seg.op, rem, c, o.stats.Global.N(),
				o.stats.Global.Mean(), o.stats.Global.StdDev(), time.Since(e.start).Seconds())
		}
		o.statsMu.Unlock()
		if c < k {
			w.dq.push(segment{op: seg.op, lo: seg.lo + c, hi: seg.hi})
			e.queued.Add(1)
			e.signal(1)
			k = c
		}
	}
	hi := seg.lo + k
	o.unsched.Add(-int64(k))
	if e.labels && w.labelOp != seg.op {
		e.setLabels(w, seg.op)
	}

	var chunkEl float64
	if k <= sampleEach {
		var marks [sampleEach + 1]time.Time
		marks[0] = time.Now()
		for i := seg.lo; i < hi; i++ {
			o.body(i)
			marks[i-seg.lo+1] = time.Now()
		}
		chunkEl = marks[k].Sub(marks[0]).Seconds()
		w.busy += chunkEl
		o.statsMu.Lock()
		for i := 0; i < k; i++ {
			o.stats.Observe(seg.lo+i, marks[i+1].Sub(marks[i]).Seconds())
		}
		o.statsMu.Unlock()
		if e.rec != nil {
			e.rec.Chunk(w.id, seg.op, seg.lo, k,
				marks[0].Sub(e.start).Seconds(), marks[k].Sub(e.start).Seconds(), stolen)
		}
	} else {
		begin := time.Now()
		if o.bodyRange != nil {
			o.bodyRange(seg.lo, hi)
		} else {
			for i := seg.lo; i < hi; i++ {
				o.body(i)
			}
		}
		elapsed := time.Since(begin).Seconds()
		chunkEl = elapsed
		w.busy += elapsed
		o.statsMu.Lock()
		o.stats.ObserveChunk(seg.lo, k, elapsed)
		o.statsMu.Unlock()
		if e.rec != nil {
			b := begin.Sub(e.start).Seconds()
			e.rec.Chunk(w.id, seg.op, seg.lo, k, b, b+elapsed, stolen)
		}
	}
	if e.fx != nil && w.slowF > 1 {
		// A slow fault stretches wall time only: the tasks already ran
		// normally, so results are untouched and stats stay honest.
		time.Sleep(time.Duration((w.slowF - 1) * chunkEl * float64(time.Second)))
	}
	e.chunks.Add(1)
	e.complete(w, o, seg.lo, hi, 0)
	if len(w.chainQ) > 0 {
		e.drainChain(w)
	}
}

// complete records the chunk [lo, hi) as done, advances the
// contiguous prefix, and releases newly enabled consumer tasks
// directly from this worker: pipelined edges whenever a new
// granularity batch of the prefix completes, ordinary edges only on
// full completion. Chain edges instead deliver block coverage, and
// blocks the chunk fully enables land on this worker's chain queue at
// depth+1 (drained by the caller).
func (e *engine) complete(w *worker, o *opState, lo, hi int, depth int32) {
	k := hi - lo
	full := int(o.done.Add(int64(k))) == o.n
	wake := w.wakeBuf[:0]
	if len(o.out) > 0 {
		o.progressMu.Lock()
		prefix := o.n
		if o.doneMark != nil {
			old := o.prefix
			for i := lo; i < hi; i++ {
				o.doneMark[i] = true
			}
			for o.prefix < o.n && o.doneMark[o.prefix] {
				o.prefix++
			}
			prefix = o.prefix
			o.prefixA.Store(int64(prefix))
			if e.rec != nil && prefix != old {
				e.rec.Gate(w.id, o.idx, old, prefix, time.Since(e.start).Seconds())
			}
		}
		for _, oe := range o.out {
			if oe.chain {
				e.chainCover(w, o, oe, lo, hi, depth)
				continue
			}
			if oe.barrier {
				if full && !oe.sentFull {
					oe.sentFull = true
					e.chainBarrier(w, oe, depth)
				}
				continue
			}
			trigger := false
			if oe.pipelined {
				if nb := prefix / oe.batch; nb > oe.notified {
					oe.notified = nb
					trigger = true
				}
			}
			if full && !oe.sentFull {
				oe.sentFull = true
				trigger = true
			}
			if trigger {
				wake = append(wake, oe.to)
			}
		}
		o.progressMu.Unlock()
	}
	w.wakeBuf = wake
	for _, ci := range wake {
		e.batches.Add(1)
		e.tryRelease(ci, w)
	}
	if o.parent >= 0 {
		// Cross-level completion: the last sub-graph task to finish
		// releases the parent expansion's join task, whose own
		// completion then releases the parent's successors.
		par := e.op(o.parent)
		if par.subLeft.Add(-int64(k)) == 0 {
			e.releaseJoin(par, w)
		}
	}
	if e.outstanding.Add(-int64(k)) == 0 {
		e.finishOnce.Do(func() { close(e.finished) })
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
