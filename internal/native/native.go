// Package native executes compiled Delirium graphs on real hardware.
// Where internal/machine substitutes a discrete-event model for the
// paper's Ncube-2, this package is an actual parallel runtime: a pool
// of worker goroutines (GOMAXPROCS of them by default) runs operator
// tasks through per-worker work-stealing deques, and the orchestration
// decisions the paper makes from modelled costs are made here from
// measured ones —
//
//   - TAPER chunk sizing (internal/sched) is driven by wall-clock task
//     times sampled online into Welford (μ, σ²) accumulators, instead
//     of the simulator's per-task cost hints;
//   - barrier-free DAG execution mirrors rts.ExecuteDAG: operators
//     enable as their dataflow predecessors complete, and pipelined
//     edges deliver producer progress to consumers in granularity
//     batches over channels;
//   - the trace is captured from real clocks: per-worker busy time,
//     wall-clock makespan, chunk/steal/batch counts, reported through
//     the same trace.Result the simulator fills.
//
// The backend consumes the same rts.Binder the simulator does: an
// operation's Time function is treated as the executable body of task
// i (its return value, the simulated cost, is ignored — the wall clock
// is authoritative here). Kernel bindings whose Time does real array
// work therefore run identically on both backends, which is what the
// sim-vs-native parity tests exploit.
package native

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"orchestra/internal/delirium"
	"orchestra/internal/rts"
	"orchestra/internal/sched"
	"orchestra/internal/stats"
	"orchestra/internal/trace"
)

// Backend runs Delirium graphs on goroutine workers.
type Backend struct {
	// Workers is the default worker count when Execute is called with
	// p <= 0; zero means GOMAXPROCS.
	Workers int
	// Pin locks each worker goroutine to an OS thread, reducing
	// scheduler migration on machines with spare cores.
	Pin bool
}

// Name implements rts.Backend.
func (*Backend) Name() string { return "native" }

// Execute implements rts.Backend: it runs the graph on p worker
// goroutines under the given mode. The modes parallel the simulator's:
// ModeStatic uses a fixed block decomposition with no stealing and no
// pipelining, ModeTaper adds measured-time TAPER chunking and work
// stealing (operators still gate on fully completed predecessors), and
// ModeSplit additionally overlaps pipelined producer/consumer pairs.
func (b *Backend) Execute(g *delirium.Graph, bind rts.Binder, p int, mode rts.Mode) (trace.Result, error) {
	if err := g.Validate(); err != nil {
		return trace.Result{}, err
	}
	order, err := g.TopoOrder()
	if err != nil {
		return trace.Result{}, err
	}
	if p <= 0 {
		p = b.Workers
	}
	if p <= 0 {
		p = runtime.GOMAXPROCS(0)
	}
	e := &engine{p: p, pin: b.Pin}
	switch mode {
	case rts.ModeStatic:
		// fixed blocks, no adaptation
	case rts.ModeTaper:
		e.adaptive, e.steal = true, true
	case rts.ModeSplit:
		e.adaptive, e.steal, e.pipelined = true, true, true
	default:
		return trace.Result{}, fmt.Errorf("native: unknown mode %d", int(mode))
	}
	e.parkCond = sync.NewCond(&e.parkMu)
	e.finished = make(chan struct{})

	// Operator states, in topological order.
	index := map[string]int{}
	total := 0
	for i, nd := range order {
		spec := bind(nd.Name)
		o := &opState{name: nd.Name, n: spec.Op.N, body: spec.Op.Time}
		if o.body == nil {
			o.n = 0
		}
		o.taper = sched.Taper{UseCostFunction: true}
		o.stats = sched.NewTaskStats(maxInt(o.n, 1))
		o.unsched.Store(int64(o.n))
		index[nd.Name] = i
		e.ops = append(e.ops, o)
		total += o.n
	}
	e.outstanding.Store(int64(total))

	// Dataflow edges. Pipelined edges get a delivery granularity; in
	// the barriered modes every edge degrades to completion-gated.
	for _, ed := range g.Edges {
		if ed.Carried {
			continue
		}
		f, t := index[ed.From], index[ed.To]
		pip := ed.Pipelined && e.pipelined && e.ops[f].n > 0
		batch := 1
		if pip {
			batch = batchSize(e.ops[f].n, p)
		}
		e.ops[t].in = append(e.ops[t].in, inEdge{from: f, pipelined: pip, batch: batch})
		e.ops[f].out = append(e.ops[f].out, &outEdge{to: t, pipelined: pip, batch: batch})
	}
	for _, o := range e.ops {
		for _, oe := range o.out {
			if oe.pipelined {
				// Pipelined consumers gate on the contiguous completed
				// prefix (tasks finish out of order under stealing), so
				// the producer tracks per-task completion marks.
				o.doneMark = make([]bool, o.n)
				break
			}
		}
	}

	e.workers = make([]*worker, p)
	for i := range e.workers {
		e.workers[i] = &worker{id: i, rng: stats.NewRNG(uint64(i)*0x9e3779b97f4a7c15 + 0x1d)}
	}

	start := time.Now()
	if total == 0 {
		close(e.finished)
	}

	// Gaters: one goroutine per operator with dataflow inputs. Each
	// consumes batch-progress notifications over its channel and
	// releases the newly enabled task prefix to the worker deques.
	for oi, o := range e.ops {
		if len(o.in) == 0 {
			if o.n > 0 {
				e.release(oi, 0, o.n)
			}
			continue
		}
		o.notify = make(chan struct{}, 1)
		e.wg.Add(1)
		go e.runGater(oi, o)
		// Initial kick so gates that are already open (zero-task or
		// absent producers) release without waiting for an event.
		o.notify <- struct{}{}
	}

	for _, w := range e.workers {
		e.wg.Add(1)
		go e.runWorker(w)
	}
	e.wg.Wait()
	wall := time.Since(start).Seconds()

	if e.outstanding.Load() != 0 {
		return trace.Result{}, fmt.Errorf("native: execution stalled with %d tasks outstanding", e.outstanding.Load())
	}
	res := trace.Result{
		Name:       fmt.Sprintf("native-%s/%s", mode, g.Name),
		Processors: p,
		Unit:       "s",
		Makespan:   wall,
		Busy:       make([]float64, p),
		Chunks:     int(e.chunks.Load()),
		Steals:     int(e.steals.Load()),
		Messages:   int(e.batches.Load()),
	}
	for i, w := range e.workers {
		res.Busy[i] = w.busy
		res.SeqTime += w.busy
	}
	return res, nil
}

// inEdge is a dataflow input: the consumer's gate over one producer.
type inEdge struct {
	from      int
	pipelined bool
	batch     int
}

// outEdge is a producer's delivery obligation toward one consumer.
// notified and sentFull are guarded by the producer's progressMu.
type outEdge struct {
	to        int
	pipelined bool
	batch     int
	notified  int // last batch count delivered
	sentFull  bool
}

// opState is one operator's runtime state.
type opState struct {
	name string
	n    int
	// body executes task i; the returned simulated cost is ignored.
	body func(i int) float64
	in   []inEdge
	out  []*outEdge

	// unsched counts tasks not yet taken into any chunk.
	unsched atomic.Int64
	// done counts completed tasks (any order).
	done atomic.Int64
	// prefixA mirrors the contiguous completed prefix for lock-free
	// reads by consumers' gaters.
	prefixA atomic.Int64

	// statsMu guards stats and taper.
	statsMu sync.Mutex
	stats   *sched.TaskStats
	taper   sched.Taper

	// progressMu guards doneMark, prefix and the out-edges' delivery
	// cursors.
	progressMu sync.Mutex
	doneMark   []bool
	prefix     int

	// notify wakes the operator's gater; nil for source operators.
	notify chan struct{}
}

// worker is one goroutine of the pool.
type worker struct {
	id  int
	dq  deque
	rng *stats.RNG
	// busy accumulates measured task-execution seconds; written only
	// by the owning goroutine, read after the pool joins.
	busy float64
}

// engine is the per-execution scheduler state.
type engine struct {
	p                          int
	adaptive, steal, pipelined bool
	pin                        bool
	ops                        []*opState
	workers                    []*worker

	parkMu   sync.Mutex
	parkCond *sync.Cond
	parked   int

	// queued approximates the number of segments across all deques;
	// workers park when it reaches zero.
	queued      atomic.Int64
	outstanding atomic.Int64
	finished    chan struct{}
	finishOnce  sync.Once

	rr      atomic.Int64
	chunks  atomic.Int64
	steals  atomic.Int64
	batches atomic.Int64

	wg sync.WaitGroup
}

// sampleEach is the chunk size below which tasks are timed one by one
// (true per-task variance); larger chunks are timed as a whole and
// folded in via TaskStats.ObserveChunk.
const sampleEach = 16

// batchSize picks the pipelined delivery granularity: a handful of
// batches per worker, so consumers ramp up early without paying a
// channel notification per task. (The simulator derives its
// granularity from modelled message costs — rts.ChoosePairGranularity;
// natively a notification costs nanoseconds, so only the pipeline-fill
// consideration survives.)
func batchSize(n, p int) int {
	b := n / (8 * p)
	if b < 1 {
		b = 1
	}
	return b
}

func (e *engine) isFinished() bool {
	select {
	case <-e.finished:
		return true
	default:
		return false
	}
}

// gate computes how many of o's tasks are executable given its
// producers' progress: the minimum over inputs of the enabled prefix,
// exactly the shape of rts.ExecuteDAG's gate — except that pipelined
// enabling reads the producer's *contiguous* completed prefix, making
// it safe for consumers to read producer data up to the mapped index.
func (e *engine) gate(o *opState) int {
	en := o.n
	for _, ie := range o.in {
		prod := e.ops[ie.from]
		pn := prod.n
		var v int
		if int(prod.done.Load()) >= pn {
			v = o.n
		} else if ie.pipelined && pn > 0 {
			prefix := int(prod.prefixA.Load())
			delivered := prefix / ie.batch * ie.batch
			v = int(int64(delivered) * int64(o.n) / int64(pn))
		}
		if v < en {
			en = v
		}
	}
	return en
}

// runGater consumes batch notifications for one operator and releases
// newly enabled tasks to the worker deques.
func (e *engine) runGater(oi int, o *opState) {
	defer e.wg.Done()
	released := 0
	for released < o.n {
		select {
		case <-o.notify:
		case <-e.finished:
			return
		}
		if en := e.gate(o); en > released {
			e.release(oi, released, en)
			released = en
		}
	}
}

// release hands tasks [lo, hi) of op to the workers: a large range is
// block-split across every deque (the owner-computes decomposition —
// worker j owns block j), while a small pipelined delta goes whole to
// the next worker round-robin.
func (e *engine) release(op, lo, hi int) {
	n := hi - lo
	if n <= 0 {
		return
	}
	if n >= 2*e.p {
		for j := 0; j < e.p; j++ {
			a, b := sched.BlockBounds(j, n, e.p)
			if b > a {
				e.workers[j].dq.push(segment{op: op, lo: lo + a, hi: lo + b})
				e.queued.Add(1)
			}
		}
	} else {
		j := int(e.rr.Add(1)-1) % e.p
		e.workers[j].dq.push(segment{op: op, lo: lo, hi: hi})
		e.queued.Add(1)
	}
	e.signal()
}

// signal wakes parked workers after work becomes available.
func (e *engine) signal() {
	e.parkMu.Lock()
	if e.parked > 0 {
		e.parkCond.Broadcast()
	}
	e.parkMu.Unlock()
}

// park blocks until work this worker could run may be available or
// the run finishes; it reports whether the worker should exit. With
// stealing enabled any queued segment anywhere is reachable; without
// it only the worker's own deque counts (otherwise an idle worker
// would spin on work it is not allowed to take).
func (e *engine) park(w *worker) bool {
	e.parkMu.Lock()
	e.parked++
	for !e.isFinished() && !e.reachableWork(w) {
		e.parkCond.Wait()
	}
	e.parked--
	e.parkMu.Unlock()
	return e.isFinished()
}

func (e *engine) reachableWork(w *worker) bool {
	if e.steal {
		return e.queued.Load() > 0
	}
	return w.dq.size() > 0
}

// stealFrom scans the other workers' deques from a random start and
// takes the first stealable segment.
func (e *engine) stealFrom(w *worker) (segment, bool) {
	if e.p == 1 {
		return segment{}, false
	}
	start := w.rng.Intn(e.p)
	for t := 0; t < e.p; t++ {
		v := (start + t) % e.p
		if v == w.id {
			continue
		}
		if s, ok := e.workers[v].dq.steal(); ok {
			e.steals.Add(1)
			return s, true
		}
	}
	return segment{}, false
}

// runWorker is the worker loop: pop local work, else steal, else park.
func (e *engine) runWorker(w *worker) {
	defer e.wg.Done()
	if e.pin {
		runtime.LockOSThread()
		defer runtime.UnlockOSThread()
	}
	for {
		seg, ok := w.dq.pop()
		if !ok && e.steal {
			seg, ok = e.stealFrom(w)
		}
		if !ok {
			if e.park(w) {
				return
			}
			continue
		}
		e.queued.Add(-1)
		e.runSegment(w, seg)
	}
}

// runSegment executes one chunk off the segment's front and returns
// the remainder to the worker's deque (where thieves can see it while
// the chunk runs).
func (e *engine) runSegment(w *worker, seg segment) {
	o := e.ops[seg.op]
	k := seg.len()
	if e.adaptive {
		rem := int(o.unsched.Load())
		if rem < 1 {
			rem = k
		}
		o.statsMu.Lock()
		c := o.taper.NextChunk(rem, e.p, o.stats)
		c = o.taper.ScaleChunk(c, seg.lo, o.stats)
		o.statsMu.Unlock()
		if c < k {
			e.workers[w.id].dq.push(segment{op: seg.op, lo: seg.lo + c, hi: seg.hi})
			e.queued.Add(1)
			e.signal()
			k = c
		}
	}
	hi := seg.lo + k
	o.unsched.Add(-int64(k))

	begin := time.Now()
	if k <= sampleEach {
		var times [sampleEach]float64
		for i := seg.lo; i < hi; i++ {
			t0 := time.Now()
			o.body(i)
			times[i-seg.lo] = time.Since(t0).Seconds()
		}
		w.busy += time.Since(begin).Seconds()
		o.statsMu.Lock()
		for i := seg.lo; i < hi; i++ {
			o.stats.Observe(i, times[i-seg.lo])
		}
		o.statsMu.Unlock()
	} else {
		for i := seg.lo; i < hi; i++ {
			o.body(i)
		}
		elapsed := time.Since(begin).Seconds()
		w.busy += elapsed
		o.statsMu.Lock()
		o.stats.ObserveChunk(seg.lo, k, elapsed)
		o.statsMu.Unlock()
	}
	e.chunks.Add(1)
	e.complete(o, seg.lo, hi)
}

// complete records the chunk [lo, hi) as done, advances the
// contiguous prefix, and delivers progress to consumers: pipelined
// edges receive a notification whenever a new granularity batch of the
// prefix completes, ordinary edges only on full completion.
func (e *engine) complete(o *opState, lo, hi int) {
	k := hi - lo
	full := int(o.done.Add(int64(k))) == o.n
	var wake []*opState
	if len(o.out) > 0 {
		o.progressMu.Lock()
		prefix := o.n
		if o.doneMark != nil {
			for i := lo; i < hi; i++ {
				o.doneMark[i] = true
			}
			for o.prefix < o.n && o.doneMark[o.prefix] {
				o.prefix++
			}
			prefix = o.prefix
			o.prefixA.Store(int64(prefix))
		}
		for _, oe := range o.out {
			trigger := false
			if oe.pipelined {
				if nb := prefix / oe.batch; nb > oe.notified {
					oe.notified = nb
					trigger = true
				}
			}
			if full && !oe.sentFull {
				oe.sentFull = true
				trigger = true
			}
			if trigger {
				wake = append(wake, e.ops[oe.to])
			}
		}
		o.progressMu.Unlock()
	}
	for _, c := range wake {
		e.batches.Add(1)
		select {
		case c.notify <- struct{}{}:
		default: // a wake-up is already pending
		}
	}
	if e.outstanding.Add(-int64(k)) == 0 {
		e.finishOnce.Do(func() { close(e.finished) })
		e.parkMu.Lock()
		e.parkCond.Broadcast()
		e.parkMu.Unlock()
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
