package native

import (
	"runtime"
	"testing"
)

// BenchmarkHotpathDequePushPop measures the owner's uncontended
// LIFO path: one push + one pop per iteration, no thieves.
func BenchmarkHotpathDequePushPop(b *testing.B) {
	var d deque
	d.init()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lo := i & 0xffff
		d.push(segment{op: 1, lo: lo, hi: lo + 1})
		if _, ok := d.pop(); !ok {
			b.Fatal("pop failed")
		}
	}
}

// BenchmarkHotpathDequeSteal measures the thief's CAS path against a
// quiescent owner: batches are pushed and then stolen back FIFO.
func BenchmarkHotpathDequeSteal(b *testing.B) {
	var d deque
	d.init()
	b.ReportAllocs()
	b.ResetTimer()
	for done := 0; done < b.N; {
		batch := 1024
		if b.N-done < batch {
			batch = b.N - done
		}
		for j := 0; j < batch; j++ {
			d.push(segment{op: 1, lo: j, hi: j + 1})
		}
		for j := 0; j < batch; j++ {
			if _, ok := d.steal(); !ok {
				b.Fatal("steal failed")
			}
		}
		done += batch
	}
}

// BenchmarkHotpathParkerCancel measures the fast path a worker takes
// when work appears during its final re-check: prepare + self-cancel,
// two uncontended atomic operations.
func BenchmarkHotpathParkerCancel(b *testing.B) {
	var pk parker
	pk.init()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pk.prepare()
		if !pk.cancel() {
			pk.consume()
		}
	}
}

// BenchmarkHotpathParkerPingPong measures a full park/unpark handoff
// between two goroutines: the cost of putting a worker to sleep and
// waking it with a token.
func BenchmarkHotpathParkerPingPong(b *testing.B) {
	var pk parker
	pk.init()
	abort := make(chan struct{})
	go func() {
		for {
			pk.prepare()
			if !pk.block(abort) {
				return
			}
		}
	}()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for !pk.unpark() {
			runtime.Gosched()
		}
	}
	b.StopTimer()
	close(abort)
}
