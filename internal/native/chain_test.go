package native_test

import (
	"testing"

	"orchestra/internal/core"
	"orchestra/internal/delirium"
	"orchestra/internal/fault"
	"orchestra/internal/native"
	"orchestra/internal/rts"
	"orchestra/internal/trace"
)

// chainGraph builds a four-stage pipelined chain a→b→c→d plus a mixed
// consumer e that reads d through a compiler-proved chain edge and a
// through an unordered (strided) edge:
//
//	a ─p→ b ─p→ c ─p→ d ─p,chain→ e
//	a ────────────────────────────→ e
//
// Under ArrayKernels, a..d carry pointwise split annotations (all
// their inputs are pipelined), so every p-edge chains by annotation;
// e's annotation degrades to reads-all because of the strided a-edge,
// so d→e chains only through the edge attribute and a→e becomes a
// barrier delivery. The graph therefore exercises every setupChains
// path: annotation edges, attribute edges, and barrier in-edges.
func chainGraph(t testing.TB) *delirium.Graph {
	t.Helper()
	g := delirium.NewGraph("chainx")
	for _, n := range []string{"a", "b", "c", "d", "e"} {
		if err := g.AddNode(&delirium.Node{Name: n, Kind: delirium.Par, Tasks: "n"}); err != nil {
			t.Fatal(err)
		}
	}
	edges := []*delirium.Edge{
		{From: "a", To: "b", Pipelined: true, Bytes: 8, PerTask: true},
		{From: "b", To: "c", Pipelined: true, Bytes: 8, PerTask: true},
		{From: "c", To: "d", Pipelined: true, Bytes: 8, PerTask: true},
		{From: "d", To: "e", Pipelined: true, Chain: true, Bytes: 8, PerTask: true},
		{From: "a", To: "e", Bytes: 8, PerTask: true},
	}
	for _, e := range edges {
		g.AddEdge(e)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	return g
}

// runChainGraph executes the chain graph natively with fresh kernels
// and returns the result and the final state digest.
func runChainGraph(t *testing.T, g *delirium.Graph, p, n int, mode rts.Mode, chain rts.ChainPolicy) (trace.Result, string) {
	t.Helper()
	bind, st, err := native.ArrayKernels(g, n, 1)
	if err != nil {
		t.Fatal(err)
	}
	r, err := native.Backend{}.Run(g, rts.BindClosure(bind), rts.RunOpts{Processors: p, Mode: mode, Chain: chain})
	if err != nil {
		t.Fatalf("p=%d mode=%v chain=%v: %v", p, mode, chain, err)
	}
	return r, native.StateDigest(st)
}

// TestChainParity is the chain path's bitwise-identity guarantee:
// chained, unchained and barriered executions of the same kernels
// must produce identical memory images at every worker count.
func TestChainParity(t *testing.T) {
	g := chainGraph(t)
	const n = 50000
	_, want := runChainGraph(t, g, 1, n, rts.ModeStatic, rts.ChainOff)
	for _, p := range []int{1, 2, 4, 8} {
		for _, mode := range []rts.Mode{rts.ModeTaper, rts.ModeSplit} {
			for _, chain := range []rts.ChainPolicy{rts.ChainAuto, rts.ChainOff} {
				r, got := runChainGraph(t, g, p, n, mode, chain)
				if got != want {
					t.Fatalf("p=%d mode=%v chain=%v: digest %s, want %s", p, mode, chain, got, want)
				}
				if chain == rts.ChainOff && r.ChainHits+r.ChainSpills+r.ChainFallbacks != 0 {
					t.Fatalf("p=%d mode=%v: ChainOff run reported chain activity %+v", p, mode, r)
				}
				if mode != rts.ModeSplit && r.ChainHits != 0 {
					t.Fatalf("p=%d mode=%v: chaining outside split mode: %+v", p, mode, r)
				}
			}
		}
	}
}

// TestChainEngaged checks the chain path actually fires where it is
// supposed to: a split-mode run of the all-pipelined chain graph must
// execute consumer blocks in place. (Parity alone would also pass if
// chaining silently never engaged.)
func TestChainEngaged(t *testing.T) {
	g := chainGraph(t)
	for _, p := range []int{1, 4} {
		r, _ := runChainGraph(t, g, p, 50000, rts.ModeSplit, rts.ChainAuto)
		if r.ChainHits == 0 {
			t.Errorf("p=%d: split-mode chain run reported 0 chain hits (spills %d, fallbacks %d)",
				p, r.ChainSpills, r.ChainFallbacks)
		}
	}
}

// chainFanGraph builds one producer with two chained consumers:
//
//	a ─p→ b
//	a ─p→ c
//
// A completed producer block enables both consumer blocks in the same
// chainCover pass, so whenever a crash fires on the first chained pop
// the sibling block is still queued — the deterministic way to drive
// drainChain's crash fallback (release-to-survivors) path.
func chainFanGraph(t *testing.T) *delirium.Graph {
	t.Helper()
	g := delirium.NewGraph("chainfan")
	for _, n := range []string{"a", "b", "c"} {
		if err := g.AddNode(&delirium.Node{Name: n, Kind: delirium.Par, Tasks: "n"}); err != nil {
			t.Fatal(err)
		}
	}
	g.AddEdge(&delirium.Edge{From: "a", To: "b", Pipelined: true, Bytes: 8, PerTask: true})
	g.AddEdge(&delirium.Edge{From: "a", To: "c", Pipelined: true, Bytes: 8, PerTask: true})
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	return g
}

// runChainFault executes g natively in split mode with chaining on,
// under a fault plan, and returns the result and final state digest.
func runChainFault(t *testing.T, g *delirium.Graph, p, n int, plan *fault.Plan) (trace.Result, string) {
	t.Helper()
	bind, st, err := native.ArrayKernels(g, n, 1)
	if err != nil {
		t.Fatal(err)
	}
	r, err := native.Backend{}.Run(g, rts.BindClosure(bind), rts.RunOpts{
		Processors: p, Mode: rts.ModeSplit, Chain: rts.ChainAuto, Fault: plan,
	})
	if err != nil {
		t.Fatalf("p=%d plan=%v: %v", p, plan, err)
	}
	return r, native.StateDigest(st)
}

// TestChainFaultBitwise: a worker crashing mid-chain must neither lose
// nor duplicate consumer blocks. The crashed pop's block is handed to
// a survivor by faultPoint; everything still queued behind it goes
// through drainChain's fallback release. Every faulted run must stay
// bitwise identical to the fault-free reference, and across the plans
// the fallback path must actually fire (ChainFallbacks > 0) — parity
// alone would also pass if crashes never landed inside a drain.
func TestChainFaultBitwise(t *testing.T) {
	lin := chainGraph(t)
	fan := chainFanGraph(t)
	const n = 50000
	_, wantLin := runChainGraph(t, lin, 1, n, rts.ModeStatic, rts.ChainOff)
	_, wantFan := runChainGraph(t, fan, 1, n, rts.ModeStatic, rts.ChainOff)

	var hits, fallbacks int
	run := func(g *delirium.Graph, want, spec string) {
		t.Helper()
		r, got := runChainFault(t, g, 4, n, mustPlan(t, spec))
		if got != want {
			t.Fatalf("%s under %q: digest %s, want %s", g.Name, spec, got, want)
		}
		hits += r.ChainHits
		fallbacks += r.ChainFallbacks
	}
	for _, spec := range []string{
		"crash:0@1,deadline:0.002",
		"crash:0@2,deadline:0.002",
		"crash:1@1,crash:2@3,deadline:0.002",
		"stall:1@1:0.01,crash:0@2,deadline:0.002",
	} {
		run(lin, wantLin, spec)
		run(fan, wantFan, spec)
	}
	if hits == 0 {
		t.Fatal("no chained chunk ran under fault injection")
	}
	if fallbacks == 0 {
		t.Fatal("no crash landed mid-drain: the chain fallback path never fired")
	}
}

// TestChainQuickstartParity runs the compiled quickstart program —
// realistic split-produced concurrency — chained against unchained on
// the native backend and against the simulator reference.
func TestChainQuickstartParity(t *testing.T) {
	out, err := core.CompileSource(quickstartProgram, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	const n = 3000
	ref := runKernels(t, out, "sim", 1, rts.ModeStatic, n, 1)
	for _, p := range []int{1, 8} {
		bind, st, err := native.ArrayKernels(out.Graph, n, 1)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := (native.Backend{}).Run(out.Graph, rts.BindClosure(bind), rts.RunOpts{Processors: p, Mode: rts.ModeSplit, Chain: rts.ChainAuto}); err != nil {
			t.Fatal(err)
		}
		for name, want := range ref {
			g := st.Arrays[name]
			for i := range want {
				if g[i] != want[i] {
					t.Fatalf("p=%d: %s[%d] = %v, want %v", p, name, i, g[i], want[i])
				}
			}
		}
	}
}
