package native

import (
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"orchestra/internal/delirium"
	"orchestra/internal/obs"
	"orchestra/internal/rts"
	"orchestra/internal/sched"
)

// chainGraph builds a -> b (optionally pipelined).
func chainGraph(t *testing.T, pipelined bool) *delirium.Graph {
	t.Helper()
	g := delirium.NewGraph("chain")
	for _, n := range []string{"a", "b"} {
		if err := g.AddNode(&delirium.Node{Name: n, Kind: delirium.Par}); err != nil {
			t.Fatal(err)
		}
	}
	g.AddEdge(&delirium.Edge{From: "a", To: "b", Bytes: 8, Pipelined: pipelined})
	return g
}

// countBinder binds every node to n no-op tasks that count executions.
func countBinder(n int, counts map[string]*atomic.Int64) rts.Binder {
	return func(name string) rts.OpSpec {
		c := counts[name]
		return rts.OpSpec{Op: sched.Op{
			Name: name,
			N:    n,
			Time: func(i int) float64 {
				c.Add(1)
				return 1
			},
		}, Mu: 1}
	}
}

func allModes() []rts.Mode {
	return []rts.Mode{rts.ModeStatic, rts.ModeTaper, rts.ModeSplit}
}

// TestExecuteRunsEveryTaskOnce checks that each mode executes each
// task of each operator exactly once and fills the trace.
func TestExecuteRunsEveryTaskOnce(t *testing.T) {
	const n = 500
	for _, mode := range allModes() {
		for _, workers := range []int{1, 4} {
			counts := map[string]*atomic.Int64{"a": {}, "b": {}}
			r, err := (Backend{}).Run(chainGraph(t, true), rts.BindClosure(countBinder(n, counts)),
				rts.RunOpts{Processors: workers, Mode: mode})
			if err != nil {
				t.Fatalf("%v/p=%d: %v", mode, workers, err)
			}
			for name, c := range counts {
				if c.Load() != n {
					t.Errorf("%v/p=%d: op %s executed %d tasks, want %d", mode, workers, name, c.Load(), n)
				}
			}
			if r.Processors != workers || r.Unit != "s" {
				t.Errorf("%v: result metadata = p%d unit %q", mode, r.Processors, r.Unit)
			}
			if r.Makespan <= 0 || r.Chunks <= 0 {
				t.Errorf("%v: makespan %v chunks %d, want positive", mode, r.Makespan, r.Chunks)
			}
			if len(r.Busy) != workers {
				t.Errorf("%v: len(Busy) = %d, want %d", mode, len(r.Busy), workers)
			}
		}
	}
}

// TestDependencyGating checks that with a non-pipelined edge no task
// of the consumer starts before the producer fully completes.
func TestDependencyGating(t *testing.T) {
	const n = 300
	for _, mode := range allModes() {
		var aDone atomic.Int64
		var violations atomic.Int64
		bind := func(name string) rts.OpSpec {
			var body func(i int) float64
			if name == "a" {
				body = func(i int) float64 { aDone.Add(1); return 1 }
			} else {
				body = func(i int) float64 {
					if aDone.Load() != n {
						violations.Add(1)
					}
					return 1
				}
			}
			return rts.OpSpec{Op: sched.Op{Name: name, N: n, Time: body}, Mu: 1}
		}
		if _, err := (Backend{}).Run(chainGraph(t, false), rts.BindClosure(bind), rts.RunOpts{Processors: 4, Mode: mode}); err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		if v := violations.Load(); v != 0 {
			t.Errorf("%v: %d consumer tasks ran before the producer finished", mode, v)
		}
		aDone.Store(0)
	}
}

// TestPipelinedPrefixSafety checks the ModeSplit contract: consumer
// task i may run only once producer tasks 0..i are all complete (the
// contiguous-prefix gate), while the consumer is allowed to start
// before the producer fully finishes (overlap).
func TestPipelinedPrefixSafety(t *testing.T) {
	const n = 2000
	prodDone := make([]atomic.Bool, n)
	var overlap atomic.Int64  // consumer tasks started before producer finished
	var prodLeft atomic.Int64 // producer tasks remaining
	var violations atomic.Int64
	prodLeft.Store(n)
	bind := func(name string) rts.OpSpec {
		var body func(i int) float64
		if name == "a" {
			body = func(i int) float64 {
				prodDone[i].Store(true)
				prodLeft.Add(-1)
				return 1
			}
		} else {
			body = func(i int) float64 {
				if prodLeft.Load() > 0 {
					overlap.Add(1)
				}
				for j := 0; j <= i; j++ {
					if !prodDone[j].Load() {
						violations.Add(1)
						break
					}
				}
				return 1
			}
		}
		return rts.OpSpec{Op: sched.Op{Name: name, N: n, Time: body}, Mu: 1}
	}
	if _, err := (Backend{}).Run(chainGraph(t, true), rts.BindClosure(bind), rts.RunOpts{Processors: 4, Mode: rts.ModeSplit}); err != nil {
		t.Fatal(err)
	}
	if v := violations.Load(); v != 0 {
		t.Errorf("%d consumer tasks read an incomplete producer prefix", v)
	}
	if overlap.Load() == 0 {
		t.Log("no producer/consumer overlap observed (legal, but the pipeline did not engage)")
	}
}

// TestStealsUnderImbalance gives one worker's block all the expensive
// tasks and checks that other workers steal from it.
func TestStealsUnderImbalance(t *testing.T) {
	const n = 256
	g := delirium.NewGraph("one")
	if err := g.AddNode(&delirium.Node{Name: "a", Kind: delirium.Par}); err != nil {
		t.Fatal(err)
	}
	bind := func(name string) rts.OpSpec {
		return rts.OpSpec{Op: sched.Op{
			Name: name,
			N:    n,
			Time: func(i int) float64 {
				if i < n/4 { // worker 0's initial block is slow
					time.Sleep(500 * time.Microsecond)
				}
				return 1
			},
		}, Mu: 1}
	}
	r, err := (Backend{}).Run(g, rts.BindClosure(bind), rts.RunOpts{Processors: 4, Mode: rts.ModeTaper})
	if err != nil {
		t.Fatal(err)
	}
	if r.Steals == 0 {
		t.Error("expected steals under a 4x-imbalanced block decomposition, got none")
	}
}

// TestNoGoroutineLeak brackets Execute with goroutine counts: workers
// and gaters must all exit, including when tasks are still in flight
// at the moment the last chunk completes.
func TestNoGoroutineLeak(t *testing.T) {
	before := runtime.NumGoroutine()
	for _, mode := range allModes() {
		counts := map[string]*atomic.Int64{"a": {}, "b": {}}
		if _, err := (Backend{}).Run(chainGraph(t, true), rts.BindClosure(countBinder(400, counts)), rts.RunOpts{Processors: 8, Mode: mode}); err != nil {
			t.Fatal(err)
		}
	}
	// Allow exiting goroutines to unwind.
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if after := runtime.NumGoroutine(); after > before {
		t.Errorf("goroutines leaked: %d before, %d after", before, after)
	}
}

// TestShutdownWithInFlightTasks uses sleeping tasks so that chunks are
// genuinely concurrent at completion time, and checks that Execute
// returns only after every task has run and the busy accounting is
// consistent.
func TestShutdownWithInFlightTasks(t *testing.T) {
	const n = 64
	var ran atomic.Int64
	bind := func(name string) rts.OpSpec {
		return rts.OpSpec{Op: sched.Op{
			Name: name,
			N:    n,
			Time: func(i int) float64 {
				time.Sleep(200 * time.Microsecond)
				ran.Add(1)
				return 1
			},
		}, Mu: 1}
	}
	r, err := (Backend{}).Run(chainGraph(t, true), rts.BindClosure(bind), rts.RunOpts{Processors: 8, Mode: rts.ModeSplit})
	if err != nil {
		t.Fatal(err)
	}
	if ran.Load() != 2*n {
		t.Fatalf("Execute returned with %d/%d tasks run", ran.Load(), 2*n)
	}
	if r.SeqTime < float64(2*n)*150e-6 {
		t.Errorf("measured SeqTime %v too small for %d sleeping tasks", r.SeqTime, 2*n)
	}
}

// TestZeroTaskOperator checks that an empty operator completes
// immediately and unblocks its consumers.
func TestZeroTaskOperator(t *testing.T) {
	g := chainGraph(t, false)
	var bRan atomic.Int64
	bind := func(name string) rts.OpSpec {
		if name == "a" {
			return rts.OpSpec{Op: sched.Op{Name: name, N: 0}}
		}
		return rts.OpSpec{Op: sched.Op{Name: name, N: 10, Time: func(int) float64 { bRan.Add(1); return 1 }}, Mu: 1}
	}
	done := make(chan error, 1)
	go func() {
		_, err := (Backend{}).Run(g, rts.BindClosure(bind), rts.RunOpts{Processors: 2, Mode: rts.ModeSplit})
		done <- err
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Execute hung on a zero-task producer")
	}
	if bRan.Load() != 10 {
		t.Fatalf("consumer ran %d tasks, want 10", bRan.Load())
	}
}

// TestUnknownMode checks the error path.
func TestUnknownMode(t *testing.T) {
	counts := map[string]*atomic.Int64{"a": {}, "b": {}}
	_, err := (Backend{}).Run(chainGraph(t, false), rts.BindClosure(countBinder(4, counts)), rts.RunOpts{Processors: 2, Mode: rts.Mode(99)})
	if err == nil {
		t.Fatal("expected an error for an unknown mode")
	}
}

// TestAdaptiveChunking checks that the adaptive modes schedule more,
// smaller chunks than one block per worker, i.e. measured-time TAPER
// is actually engaged.
func TestAdaptiveChunking(t *testing.T) {
	const n, workers = 4000, 4
	counts := map[string]*atomic.Int64{"a": {}, "b": {}}
	rStatic, err := (Backend{}).Run(chainGraph(t, false), rts.BindClosure(countBinder(n, counts)), rts.RunOpts{Processors: workers, Mode: rts.ModeStatic})
	if err != nil {
		t.Fatal(err)
	}
	counts = map[string]*atomic.Int64{"a": {}, "b": {}}
	rTaper, err := (Backend{}).Run(chainGraph(t, false), rts.BindClosure(countBinder(n, counts)), rts.RunOpts{Processors: workers, Mode: rts.ModeTaper})
	if err != nil {
		t.Fatal(err)
	}
	if rStatic.Chunks != 2*workers {
		t.Errorf("static mode scheduled %d chunks, want %d (one block per worker per op)", rStatic.Chunks, 2*workers)
	}
	if rTaper.Chunks <= rStatic.Chunks {
		t.Errorf("TAPER mode scheduled %d chunks, want more than static's %d", rTaper.Chunks, rStatic.Chunks)
	}
}

// TestTraceCollection runs each mode with a trace sink and checks the
// recorded timeline is structurally sound: chunk spans cover every
// task exactly once per operator, taper decisions appear in the
// adaptive modes, and gate advances appear for the pipelined edge.
// Under -race this also stresses the per-worker ring discipline.
func TestTraceCollection(t *testing.T) {
	const n = 600
	for _, mode := range allModes() {
		counts := map[string]*atomic.Int64{"a": {}, "b": {}}
		var col obs.Collector
		r, err := (Backend{}).Run(chainGraph(t, true), rts.BindClosure(countBinder(n, counts)),
			rts.RunOpts{Processors: 4, Mode: mode, Sink: &col})
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		tr := col.Trace
		if tr == nil {
			t.Fatalf("%v: sink never received a trace", mode)
		}
		if tr.Backend != "native" || tr.Unit != "s" || tr.Workers != 4 {
			t.Fatalf("%v: trace metadata %q/%q/%d", mode, tr.Backend, tr.Unit, tr.Workers)
		}
		covered := map[int32]map[int32]bool{}
		var chunks, tapers, gates int
		for _, e := range tr.Events {
			switch e.Kind {
			case obs.KindChunk:
				chunks++
				if e.T1 < e.T0 {
					t.Fatalf("%v: chunk span ends (%v) before it starts (%v)", mode, e.T1, e.T0)
				}
				m := covered[e.Op]
				if m == nil {
					m = map[int32]bool{}
					covered[e.Op] = m
				}
				for i := e.Lo; i < e.Lo+e.N; i++ {
					if m[i] {
						t.Fatalf("%v: task %d of op %s traced twice", mode, i, tr.OpName(e.Op))
					}
					m[i] = true
				}
			case obs.KindTaper:
				tapers++
			case obs.KindGate:
				gates++
			}
		}
		if chunks != r.Chunks {
			t.Errorf("%v: %d chunk spans, result counted %d", mode, chunks, r.Chunks)
		}
		for op, m := range covered {
			if len(m) != n {
				t.Errorf("%v: op %s has %d traced tasks, want %d", mode, tr.OpName(op), len(m), n)
			}
		}
		if mode != rts.ModeStatic && tapers == 0 {
			t.Errorf("%v: no taper decisions traced", mode)
		}
		if mode == rts.ModeSplit && gates == 0 {
			t.Errorf("split: no gate advances traced for the pipelined edge")
		}
	}
}
