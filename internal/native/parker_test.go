package native

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestParkerTokenAccounting checks the CAS arbitration invariants
// sequentially: a claim succeeds exactly once per park, and a token is
// in flight if and only if a claim was made.
func TestParkerTokenAccounting(t *testing.T) {
	var pk parker
	pk.init()
	if pk.unpark() {
		t.Fatal("unpark claimed an active worker")
	}
	pk.prepare()
	if !pk.unpark() {
		t.Fatal("unpark failed to claim a parked worker")
	}
	if pk.unpark() {
		t.Fatal("second unpark claimed the same park")
	}
	// The claim's token is waiting, so block returns immediately.
	if !pk.block(nil) {
		t.Fatal("block did not receive the claim's token")
	}
	// Owner-side cancel wins the state back; no token may follow.
	pk.prepare()
	if !pk.cancel() {
		t.Fatal("uncontended cancel lost")
	}
	if pk.unpark() {
		t.Fatal("unpark claimed a cancelled park")
	}
}

// TestParkerNoLostWakeups drives thousands of release/park cycles
// through the full publish-then-recheck protocol with one worker and
// one releaser racing. If a wakeup were ever lost the worker would
// block forever with work outstanding and the test would time out.
// Run with -race: the atomics make every handoff a synchronization.
func TestParkerNoLostWakeups(t *testing.T) {
	const rounds = 20000
	var pk parker
	pk.init()
	var work atomic.Int64
	var consumed atomic.Int64
	abort := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		for consumed.Load() < rounds {
			if work.Load() > 0 {
				work.Add(-1)
				consumed.Add(1)
				continue
			}
			pk.prepare()
			if work.Load() > 0 {
				if !pk.cancel() {
					pk.consume()
				}
				continue
			}
			if !pk.block(abort) {
				return
			}
		}
	}()
	for i := 0; i < rounds; i++ {
		work.Add(1)
		pk.unpark()
	}
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		close(abort)
		t.Fatalf("worker stalled at %d/%d rounds: lost wakeup", consumed.Load(), rounds)
	}
	if got := consumed.Load(); got != rounds {
		t.Fatalf("consumed %d work items, want %d", got, rounds)
	}
}

// TestParkerConcurrentReleasers repeats the no-lost-wakeup check with
// several releasers hammering one parker concurrently, so claim CASes
// race each other as well as the owner's cancel.
func TestParkerConcurrentReleasers(t *testing.T) {
	const (
		releasers   = 4
		perReleaser = 5000
	)
	const total = releasers * perReleaser
	var pk parker
	pk.init()
	var work atomic.Int64
	var consumed atomic.Int64
	abort := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		for consumed.Load() < total {
			if work.Load() > 0 {
				work.Add(-1)
				consumed.Add(1)
				continue
			}
			pk.prepare()
			if work.Load() > 0 {
				if !pk.cancel() {
					pk.consume()
				}
				continue
			}
			if !pk.block(abort) {
				return
			}
		}
	}()
	var wg sync.WaitGroup
	for r := 0; r < releasers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perReleaser; i++ {
				work.Add(1)
				pk.unpark()
			}
		}()
	}
	wg.Wait()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		close(abort)
		t.Fatalf("worker stalled at %d/%d rounds: lost wakeup", consumed.Load(), total)
	}
	if got := consumed.Load(); got != total {
		t.Fatalf("consumed %d work items, want %d", got, total)
	}
}
