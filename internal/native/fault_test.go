package native_test

import (
	"math"
	"runtime"
	"testing"

	"orchestra/internal/core"
	"orchestra/internal/fault"
	"orchestra/internal/native"
	"orchestra/internal/obs"
	"orchestra/internal/rts"
)

func mustPlan(t *testing.T, spec string) *fault.Plan {
	t.Helper()
	p, err := fault.Parse(spec)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// runNativeFault executes the quickstart graph on the native backend
// with fresh array kernels under a fault plan and returns the final
// arrays.
func runNativeFault(t *testing.T, out *core.Output, p int, mode rts.Mode, n, work int, plan *fault.Plan, sink obs.Sink) map[string][]float64 {
	t.Helper()
	bind, st, err := native.ArrayKernels(out.Graph, n, work)
	if err != nil {
		t.Fatal(err)
	}
	_, err = native.Backend{}.Run(out.Graph, rts.BindClosure(bind), rts.RunOpts{
		Processors: p, Mode: mode, Fault: plan, Sink: sink,
	})
	if err != nil {
		t.Fatalf("native/%v/%v: %v", mode, plan, err)
	}
	return st.Arrays
}

func checkBitwise(t *testing.T, label string, got, ref map[string][]float64) {
	t.Helper()
	if len(got) != len(ref) {
		t.Fatalf("%s: %d arrays, want %d", label, len(got), len(ref))
	}
	for name, want := range ref {
		g := got[name]
		for i := range want {
			if math.Float64bits(g[i]) != math.Float64bits(want[i]) {
				t.Fatalf("%s: %s[%d] = %v, want %v (bitwise)", label, name, i, g[i], want[i])
			}
		}
	}
}

// TestNativeFaultBitwise is the tentpole acceptance test: under every
// survivable fault plan the native backend's results must be bitwise
// identical to a fault-free sequential run. Faults are injected at
// chunk boundaries and recovered work is re-issued to survivors, so
// every task still runs exactly once.
func TestNativeFaultBitwise(t *testing.T) {
	out, err := core.CompileSource(quickstartProgram, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	const n = 3000
	ref := runKernels(t, out, "sim", 1, rts.ModeStatic, n, 1)
	cases := []struct {
		mode rts.Mode
		plan string
	}{
		// Static workers pop their whole block as one segment, so only
		// @0 triggers fire; recovery goes through the detector inboxes.
		{rts.ModeStatic, "crash:0@0,deadline:0.002"},
		{rts.ModeStatic, "slow:1@0:4,deadline:0.002"},
		{rts.ModeTaper, "crash:0@1,deadline:0.002"},
		{rts.ModeTaper, "crash:0@0,crash:2@3,deadline:0.002"},
		{rts.ModeTaper, "stall:1@1:0.02,deadline:0.002"},
		{rts.ModeSplit, "crash:0@2,deadline:0.002"},
		{rts.ModeSplit, "crash:0@1,stall:1@2:0.01,slow:2@0:6,deadline:0.002"},
		{rts.ModeSplit, "slow:3@1:8,deadline:0.002"},
	}
	for _, c := range cases {
		got := runNativeFault(t, out, 4, c.mode, n, 1, mustPlan(t, c.plan), nil)
		checkBitwise(t, c.mode.String()+"/"+c.plan, got, ref)
	}
}

// TestNativeFaultRandom replays generator-produced survivable plans —
// the same generator the fuzzer and the CI campaign use.
func TestNativeFaultRandom(t *testing.T) {
	out, err := core.CompileSource(quickstartProgram, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	const n = 2000
	ref := runKernels(t, out, "sim", 1, rts.ModeStatic, n, 1)
	for seed := uint64(1); seed <= 6; seed++ {
		plan := fault.Random(seed, 4)
		plan.Deadline = 0.002
		got := runNativeFault(t, out, 4, rts.ModeSplit, n, 1, plan, nil)
		checkBitwise(t, "random/"+plan.String(), got, ref)
	}
}

// TestNativeFaultEvents checks the recovery machinery leaves a trace:
// an early crash in a run with downstream releases must surface the
// self-reported fault, the detector's declared-dead escalation, retry
// events for the recovered segments, and a reallocation over the
// survivors. Whether the detector or a survivor's steal wins the race
// to the dead worker's holdings is a genuine scheduling race (on a
// single-CPU machine with GOMAXPROCS=1 the survivors always win), so
// the test forces real goroutine interleaving and retries the run a
// bounded number of times until the detector path is exercised.
func TestNativeFaultEvents(t *testing.T) {
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)
	out, err := core.CompileSource(quickstartProgram, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	const attempts = 25
	var faults, retries, reallocs int
	for attempt := 0; attempt < attempts; attempt++ {
		var col obs.Collector
		runNativeFault(t, out, 4, rts.ModeSplit, 4000, 60,
			mustPlan(t, "crash:0@1,deadline:0.001"), &col)
		tr := col.Trace
		if tr == nil {
			t.Fatal("no trace collected")
		}
		if tr.Workers != 5 {
			t.Fatalf("Workers = %d, want 4 workers + 1 detector ring", tr.Workers)
		}
		faults, retries, reallocs = 0, 0, 0
		for _, e := range tr.Events {
			switch e.Kind {
			case obs.KindFault:
				faults++
			case obs.KindRetry:
				retries++
			case obs.KindRealloc:
				reallocs++
			}
		}
		if faults == 0 {
			t.Fatal("crash left no fault event")
		}
		if reallocs > 0 && retries > 0 {
			return
		}
	}
	t.Fatalf("retries=%d reallocs=%d after %d attempts: the detector never recovered the dead worker",
		retries, reallocs, attempts)
}

// TestNativeFaultRejections: a plan that leaves no survivor must be
// refused up front, against the resolved worker count.
func TestNativeFaultRejections(t *testing.T) {
	out, err := core.CompileSource(quickstartProgram, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	bind, _, err := native.ArrayKernels(out.Graph, 64, 1)
	if err != nil {
		t.Fatal(err)
	}
	_, err = native.Backend{}.Run(out.Graph, rts.BindClosure(bind), rts.RunOpts{
		Processors: 2, Mode: rts.ModeTaper,
		Fault: mustPlan(t, "crash:0@0,stall:1@0:1"),
	})
	if err == nil {
		t.Fatal("plan leaving no crash/stall-free worker accepted")
	}
}

// BenchmarkHotpathFaultDisabled measures a full native run with the
// fault machinery compiled in but no plan injected — the cost the
// nil-plan branches add to the scheduling hot path. The end-to-end
// bound is the 2% regression guard on BENCH_hotpath.json; this
// benchmark localizes a violation to the fault gates.
func BenchmarkHotpathFaultDisabled(b *testing.B) {
	out, err := core.CompileSource(quickstartProgram, core.DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bind, _, err := native.ArrayKernels(out.Graph, 2000, 1)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := (native.Backend{}).Run(out.Graph, rts.BindClosure(bind), rts.RunOpts{
			Processors: 4, Mode: rts.ModeSplit,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkHotpathFaultCrash is the same run with a crash plan — the
// price of one worker loss including detection, recovery and
// reallocation, for eyeballing against the disabled baseline.
func BenchmarkHotpathFaultCrash(b *testing.B) {
	out, err := core.CompileSource(quickstartProgram, core.DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	plan, err := fault.Parse("crash:0@1,deadline:0.002")
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bind, _, err := native.ArrayKernels(out.Graph, 2000, 1)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := (native.Backend{}).Run(out.Graph, rts.BindClosure(bind), rts.RunOpts{
			Processors: 4, Mode: rts.ModeSplit, Fault: plan,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// TestNativeFaultStress hammers recovery under contention: repeated
// runs with crashes, stalls and slowdowns on a graph large enough that
// detection, re-issue and completion all overlap. Primarily a -race
// target.
func TestNativeFaultStress(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test")
	}
	out, err := core.CompileSource(quickstartProgram, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	const n = 4000
	ref := runKernels(t, out, "sim", 1, rts.ModeStatic, n, 1)
	plans := []string{
		"crash:0@0,crash:1@2,stall:2@1:0.005,deadline:0.001",
		"crash:5@1,slow:1@0:10,stall:3@0:0.01,deadline:0.001",
		"crash:0@3,crash:2@0,crash:4@1,deadline:0.001",
	}
	for round := 0; round < 3; round++ {
		for _, spec := range plans {
			got := runNativeFault(t, out, 8, rts.ModeSplit, n, 1, mustPlan(t, spec), nil)
			checkBitwise(t, spec, got, ref)
		}
	}
}
