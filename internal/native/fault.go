package native

import (
	"time"

	"orchestra/internal/fault"
	"orchestra/internal/machine"
	"orchestra/internal/rts"
	"orchestra/internal/sched"
)

// Fault-tolerant execution. Injected faults are cooperative: the fault
// plan is consulted at chunk boundaries only (faultPoint), before the
// popped segment executes, so no chunk is ever lost mid-flight and
// every task still runs exactly once — faulted results are bitwise
// identical to fault-free ones by construction. Recovery of the work a
// dead worker holds (deque segments, inbox posts) is the detector's
// job: a single goroutine that watches per-worker heartbeats and
// steal-drains unresponsive workers.
//
// False positives are safe everywhere. A worker declared dead that is
// merely slow keeps running: it executes whatever it holds in its
// hands, its deque steals race it through the lock-free Chase–Lev
// protocol (each segment moves exactly once), and its inbox drains
// under the mutex — the worker only loses cross-posted work and
// locality, never correctness. The detector keeps draining declared-
// dead workers on every tick, so a segment posted to a dead inbox
// after its last drain is always recovered on the next one.

// deadTicks is how many consecutive stale detector ticks escalate a
// suspect worker to declared-dead (suspicion alone already recovers
// its queued work; declaration shrinks the live set).
const deadTicks = 3

// liveP is the worker count scheduling decisions are computed against:
// the surviving set under fault injection, the whole pool otherwise.
func (e *engine) liveP() int {
	if e.fx == nil {
		return e.p
	}
	if l := int(e.live.Load()); l > 0 {
		return l
	}
	return 1
}

// faultPoint consults the fault plan at a chunk boundary, holding the
// popped segment. It reports false when the worker crashes — the
// segment has then been handed to a survivor and the caller must exit.
// A stall sleeps in place (the detector recovers the worker's queued
// segments meanwhile) and re-consults the plan; a slowdown records the
// factor for runSegment to pad wall time with.
func (e *engine) faultPoint(w *worker, seg segment) bool {
	for {
		d := e.fx.Begin(w.id)
		if d.Stall > 0 {
			if e.rec != nil {
				e.rec.Fault(w.id, w.id, int(fault.Stall), time.Since(e.start).Seconds())
			}
			time.Sleep(time.Duration(d.Stall * float64(time.Second)))
			w.hb.Store(time.Now().UnixNano())
			continue
		}
		if d.Crash {
			if e.rec != nil {
				e.rec.Fault(w.id, w.id, int(fault.Crash), time.Since(e.start).Seconds())
			}
			// Self-declare: the worker knows it is dying, so the live set
			// must not count it (deliver would otherwise route recovered
			// work to an exited goroutine while falsely-suspected live
			// workers are excluded — a shuffle livelock on slow machines).
			if w.deadA.CompareAndSwap(false, true) {
				live := int(e.live.Add(-1))
				if e.rec != nil {
					e.rec.Realloc(w.id, live, time.Since(e.start).Seconds())
					e.emitRealloc(live)
				}
			}
			e.anyDead.Store(true)
			// Hand the popped segment to a survivor — never back to our
			// own deque, whose recovery depends on detector timing.
			e.queued.Add(1)
			e.deliver(seg, w.id)
			return false
		}
		w.slowF = d.Slow
		if d.Slow > 0 && !w.slowSeen {
			w.slowSeen = true
			if e.rec != nil {
				e.rec.Fault(w.id, w.id, int(fault.Slow), time.Since(e.start).Seconds())
			}
		}
		return true
	}
}

// deliver posts a segment to a worker that has not been declared dead,
// scanning from exclude+1 so consecutive deliveries spread. The caller
// owns the queued accounting. The fallback (everyone else declared
// dead — transiently possible under false positives) posts to any
// other inbox: the detector drains dead inboxes on every tick, so the
// segment is recovered rather than lost.
func (e *engine) deliver(s segment, exclude int) {
	for off := 1; off < e.p; off++ {
		t := e.workers[(exclude+off)%e.p]
		if t.id == exclude || t.deadA.Load() {
			continue
		}
		t.postInbox(s)
		t.pk.unpark()
		return
	}
	t := e.workers[(exclude+1)%e.p]
	t.postInbox(s)
	t.pk.unpark()
}

// redistribute moves a recovered segment to a survivor. It never
// touches queued: the segment was already counted when released, and
// recovery only relocates it.
func (e *engine) redistribute(s segment, from *worker) {
	if e.rec != nil {
		e.rec.Retry(e.p, from.id, s.op, s.lo, s.len(), time.Since(e.start).Seconds())
	}
	e.deliver(s, from.id)
}

// stealInbox takes one segment posted to another worker's inbox.
// Fault recovery re-posts work to inboxes of workers that may be
// waiting for CPU (or declared dead); without inbox theft such a
// segment is reachable only through its holder's own drain, and on an
// oversubscribed machine the detector can relocate it between inboxes
// faster than any holder gets scheduled — a livelock. Theft makes
// posted work globally reachable: whichever worker actually runs
// executes it. Only consulted under fault injection, after deque
// steals fail; the fault-free hot path never calls it.
func (e *engine) stealInbox(w *worker) (segment, bool) {
	for off := 1; off < e.p; off++ {
		v := e.workers[(w.id+off)%e.p]
		if v.inboxN.Load() == 0 {
			continue
		}
		v.inboxMu.Lock()
		if len(v.inbox) == 0 {
			v.inboxMu.Unlock()
			continue
		}
		s := v.inbox[len(v.inbox)-1]
		v.inbox = v.inbox[:len(v.inbox)-1]
		v.inboxN.Add(-1)
		v.inboxMu.Unlock()
		if e.rec != nil {
			e.rec.Steal(w.id, v.id, s.op, s.lo, s.len(), time.Since(e.start).Seconds())
		}
		return s, true
	}
	return segment{}, false
}

// recoverHoldings steal-drains a worker's deque and empties its inbox,
// re-issuing everything to survivors. Deque steals are safe against a
// concurrently running owner (false positive); the inbox drain holds
// the same mutex posters and the owner use.
func (e *engine) recoverHoldings(w *worker) {
	for {
		s, ok := w.dq.steal()
		if !ok {
			break
		}
		e.redistribute(s, w)
	}
	if w.inboxN.Load() > 0 {
		w.inboxMu.Lock()
		segs := append([]segment(nil), w.inbox...)
		w.inbox = w.inbox[:0]
		w.inboxN.Add(int32(-len(segs)))
		w.inboxMu.Unlock()
		for _, s := range segs {
			e.redistribute(s, w)
		}
	}
}

// declareDead marks a worker dead after persistent unresponsiveness:
// the live set shrinks (chunk sizing and releases adapt), its holdings
// are recovered, and the allocation estimates are re-derived over the
// survivors so the trace's finishing-time story tracks the machine
// that is actually left.
func (e *engine) declareDead(w *worker) {
	// CAS pairs every live decrement with one false→true transition;
	// the owner's resurrection CAS pairs increments with true→false,
	// so the two sides can race without skewing the live count.
	if !w.deadA.CompareAndSwap(false, true) {
		return
	}
	e.anyDead.Store(true)
	live := int(e.live.Add(-1))
	if e.rec != nil {
		t := time.Since(e.start).Seconds()
		e.rec.Fault(e.p, w.id, int(fault.Crash), t)
		e.rec.Realloc(e.p, live, t)
		e.emitRealloc(live)
	}
	e.recoverHoldings(w)
	e.signal(e.p)
}

// emitRealloc re-runs the paper's allocation estimator over the
// surviving worker count using the statistics measured so far,
// emitting fresh AllocEstimate rows next to the KindRealloc event.
// Setup/comm/sched terms use a zero cost model (the native backend has
// no modelled machine); compute and lag come from real measurements.
func (e *engine) emitRealloc(live int) {
	var specs []rts.OpSpec
	var names []string
	for _, o := range e.opsSnap() {
		remaining := o.n - int(o.done.Load())
		if remaining <= 0 {
			continue
		}
		o.statsMu.Lock()
		mu := o.stats.Global.Mean()
		sigma := o.stats.Global.StdDev()
		o.statsMu.Unlock()
		specs = append(specs, rts.OpSpec{Op: sched.Op{Name: o.name, N: remaining}, Mu: mu, Sigma: sigma})
		names = append(names, o.name)
	}
	if len(specs) > 0 {
		rts.ReallocateOnLoss(machine.Config{}, specs, live, e.rec, names...)
	}
}

// detector is the heartbeat watcher, launched only for plans that need
// one (crash or stall actions). A worker is suspected when its
// heartbeat is at least one deadline stale while it holds work —
// parked idle workers hold nothing and are never suspected. deadTicks
// consecutive stale observations escalate to declared-dead (provided
// at least one other worker stays live), and only declaration recovers
// the worker's holdings: draining a merely-suspect worker would steal
// inbox posts from live workers that are just waiting for CPU, and on
// an oversubscribed machine that relocation outruns every owner's own
// drain — a livelock. Dead workers keep being drained every tick, so
// late posts to their inboxes (and TAPER remainders a zombie pushes
// before exiting) are always recovered.
func (e *engine) detector() {
	defer e.detWG.Done()
	deadline := e.fx.Deadline()
	tick := time.Duration(deadline / 2 * float64(time.Second))
	if tick < 100*time.Microsecond {
		tick = 100 * time.Microsecond
	}
	ticker := time.NewTicker(tick)
	defer ticker.Stop()
	lastHB := make([]int64, e.p)
	stale := make([]int, e.p)
	for {
		select {
		case <-e.finished:
			return
		case <-ticker.C:
		}
		now := time.Now().UnixNano()
		for j, w := range e.workers {
			if w.deadA.Load() {
				e.recoverHoldings(w)
				continue
			}
			// Progress-based staleness: an active worker stores a fresh
			// heartbeat every loop iteration, so an unchanged value across
			// ticks — not mere wall-clock age, which any scheduling delay
			// on an oversubscribed machine exceeds — marks it stuck.
			hb := w.hb.Load()
			if hb != lastHB[j] {
				lastHB[j] = hb
				stale[j] = 0
				continue
			}
			holding := w.dq.size() > 0 || w.inboxN.Load() > 0
			if !holding || float64(now-hb)/1e9 < deadline {
				stale[j] = 0
				continue
			}
			stale[j]++
			if stale[j] >= deadTicks && e.live.Load() > 1 {
				e.declareDead(w)
				stale[j] = 0
			}
		}
	}
}

// releaseFault is release's path once any worker has been declared
// dead: ranges are block-split over the surviving workers only, so
// fresh work never lands on (and has to be recovered from) a dead
// inbox. The releasing worker counts as live even if falsely declared
// dead — it is demonstrably running.
func (e *engine) releaseFault(w *worker, op, lo, hi int) {
	n := hi - lo
	if n <= 0 {
		return
	}
	targets := make([]*worker, 0, e.p)
	for _, t := range e.workers {
		if t.deadA.Load() && (w == nil || t.id != w.id) {
			continue
		}
		targets = append(targets, t)
	}
	if len(targets) == 0 {
		targets = append(targets, e.workers[0])
	}
	m := len(targets)
	if n >= 2*m && m > 1 {
		for j := 0; j < m; j++ {
			a, b := sched.BlockBounds(j, n, m)
			if b <= a {
				continue
			}
			s := segment{op: op, lo: lo + a, hi: lo + b}
			if w != nil && targets[j].id == w.id {
				w.dq.push(s)
			} else {
				targets[j].postInbox(s)
			}
			e.queued.Add(1)
		}
		if e.steal {
			e.signal(m)
		} else {
			for _, t := range targets {
				t.pk.unpark()
			}
		}
		return
	}
	s := segment{op: op, lo: lo, hi: hi}
	if w != nil && e.steal {
		w.dq.push(s)
		e.queued.Add(1)
		e.signal(1)
		return
	}
	t := targets[int(e.rr.Add(1)-1)%m]
	if w != nil && t.id == w.id {
		w.dq.push(s)
	} else {
		t.postInbox(s)
	}
	e.queued.Add(1)
	t.pk.unpark()
}
