package native

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"testing"
	"time"

	"orchestra/internal/rts"
	"orchestra/internal/sched"
)

// TestRunPreCanceledContext checks that a one-shot run on an already
// canceled context returns immediately with the distinguishable error
// and executes nothing.
func TestRunPreCanceledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ran := false
	bind := func(name string) rts.OpSpec {
		return rts.OpSpec{Op: sched.Op{Name: name, N: 10, Time: func(i int) float64 {
			ran = true
			return 1
		}}, Mu: 1}
	}
	_, err := (Backend{}).Run(chainGraph(t, false), rts.BindClosure(bind), rts.RunOpts{Processors: 2, Ctx: ctx})
	if !rts.IsCanceled(err) {
		t.Fatalf("error = %v, want one wrapping rts.ErrCanceled", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("error = %v, want it to also wrap context.Canceled", err)
	}
	if ran {
		t.Error("a task executed despite the pre-canceled context")
	}
}

// TestRunDeadlineExceeded checks that an expired deadline surfaces as
// both ErrCanceled and context.DeadlineExceeded.
func TestRunDeadlineExceeded(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), time.Nanosecond)
	defer cancel()
	<-ctx.Done()
	bind := func(name string) rts.OpSpec {
		return rts.OpSpec{Op: sched.Op{Name: name, N: 10, Time: func(i int) float64 { return 1 }}, Mu: 1}
	}
	_, err := (Backend{}).Run(chainGraph(t, false), rts.BindClosure(bind), rts.RunOpts{Processors: 2, Ctx: ctx})
	if !rts.IsCanceled(err) || !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("error = %v, want one wrapping both rts.ErrCanceled and context.DeadlineExceeded", err)
	}
}

// TestRunMidRunCancelReleasesGoroutines cancels a one-shot run while a
// task is executing: the run must abandon the gated downstream work,
// return the cancel error, and join every worker goroutine it spawned.
func TestRunMidRunCancelReleasesGoroutines(t *testing.T) {
	runtime.GC()
	base := runtime.NumGoroutine()

	g := chainGraph(t, false)
	canceledOnce := false
	for attempt := 0; attempt < 20 && !canceledOnce; attempt++ {
		ctx, cancel := context.WithCancel(context.Background())
		started := make(chan struct{})
		var once sync.Once
		bind := func(name string) rts.OpSpec {
			if name == "a" {
				return rts.OpSpec{Op: sched.Op{Name: name, N: 1, Time: func(i int) float64 {
					once.Do(func() { close(started) })
					<-ctx.Done()
					return 1
				}}, Mu: 1}
			}
			return rts.OpSpec{Op: sched.Op{Name: name, N: 400, Time: func(i int) float64 { return 1 }}, Mu: 1}
		}
		errCh := make(chan error, 1)
		go func() {
			_, err := (Backend{}).Run(g, rts.BindClosure(bind), rts.RunOpts{Processors: 2, Mode: rts.ModeTaper, Ctx: ctx})
			errCh <- err
		}()
		<-started
		cancel()
		err := <-errCh
		if err != nil {
			if !rts.IsCanceled(err) {
				t.Fatalf("attempt %d: error %v does not wrap rts.ErrCanceled", attempt, err)
			}
			canceledOnce = true
		}
	}
	if !canceledOnce {
		t.Fatal("no attempt was abandoned on cancellation")
	}

	for i := 0; i < 100; i++ {
		runtime.GC()
		if runtime.NumGoroutine() <= base {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Errorf("goroutines: %d before, %d after canceled runs (worker leak)", base, runtime.NumGoroutine())
}

// TestRunContextFiringAfterCompletion checks a context canceled after
// the last task completes does not turn a successful run into an error.
func TestRunContextFiringAfterCompletion(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	bind := func(name string) rts.OpSpec {
		return rts.OpSpec{Op: sched.Op{Name: name, N: 50, Time: func(i int) float64 { return 1 }}, Mu: 1}
	}
	if _, err := (Backend{}).Run(chainGraph(t, true), rts.BindClosure(bind), rts.RunOpts{Processors: 2, Ctx: ctx}); err != nil {
		t.Fatalf("run with live context: %v", err)
	}
	cancel()
}
