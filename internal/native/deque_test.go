package native

import (
	"sync"
	"sync/atomic"
	"testing"

	"orchestra/internal/delirium"
	"orchestra/internal/rts"
	"orchestra/internal/sched"
)

func TestDequeOwnerLIFOThiefFIFO(t *testing.T) {
	var d deque
	d.init()
	for i := 0; i < 3; i++ {
		d.push(segment{op: i, lo: 0, hi: 1})
	}
	if s, ok := d.steal(); !ok || s.op != 0 {
		t.Fatalf("steal got %+v ok=%v, want oldest (op 0)", s, ok)
	}
	if s, ok := d.pop(); !ok || s.op != 2 {
		t.Fatalf("pop got %+v ok=%v, want newest (op 2)", s, ok)
	}
	if s, ok := d.pop(); !ok || s.op != 1 {
		t.Fatalf("pop got %+v ok=%v, want op 1", s, ok)
	}
	if _, ok := d.pop(); ok {
		t.Fatal("pop on empty deque reported ok")
	}
	if _, ok := d.steal(); ok {
		t.Fatal("steal on empty deque reported ok")
	}
	if d.size() != 0 {
		t.Fatalf("size = %d, want 0", d.size())
	}
}

// TestSegmentPackingBounds pins the packing format at its edges: the
// largest representable operator index and task bounds must round-trip
// exactly. hi is an exclusive bound, so maxTasks-1 is the largest
// value either bound can take (an operator of maxTasks tasks would
// need hi = 1<<24, which does not fit 24 bits — the engine rejects it,
// see TestExecuteRejectsOversizedOp).
func TestSegmentPackingBounds(t *testing.T) {
	cases := []segment{
		{op: 0, lo: 0, hi: 0},
		{op: 0, lo: 0, hi: maxTasks - 1},
		{op: 0, lo: maxTasks - 1, hi: maxTasks - 1},
		{op: maxOps - 1, lo: maxTasks - 2, hi: maxTasks - 1},
		{op: maxOps - 1, lo: 12345, hi: 678910},
	}
	for _, s := range cases {
		if got := unpackSegment(packSegment(s)); got != s {
			t.Errorf("pack/unpack %+v = %+v", s, got)
		}
	}
}

// TestExecuteRejectsOversizedOp checks the guard that keeps an
// operator's task count inside the segment packing budget. maxTasks
// itself must be rejected: hi bounds are exclusive, so it would
// overflow the 24-bit field and alias the lo field (this was a real
// off-by-one — the guard used > instead of >=).
func TestExecuteRejectsOversizedOp(t *testing.T) {
	g := delirium.NewGraph("big")
	if err := g.AddNode(&delirium.Node{Name: "a", Kind: delirium.Par}); err != nil {
		t.Fatal(err)
	}
	bind := func(name string) rts.OpSpec {
		return rts.OpSpec{Op: sched.Op{Name: name, N: maxTasks,
			Time: func(i int) float64 { return 1 }}, Mu: 1}
	}
	if _, err := (Backend{}).Run(g, rts.BindClosure(bind), rts.RunOpts{Processors: 1, Mode: rts.ModeSplit}); err == nil {
		t.Fatalf("Execute accepted an operator with %d tasks", maxTasks)
	}
}

// TestDequeLastElementRace targets the CAS arbitration over a deque's
// final segment: one owner pops while one thief steals, with exactly
// one element present each round. Exactly one side must win every
// round — a double grant corrupts task accounting, a double miss
// loses the segment. Run with -race.
func TestDequeLastElementRace(t *testing.T) {
	const rounds = 20000
	var d deque
	d.init()
	var popWins, stealWins atomic.Int64
	ready := make(chan struct{})
	taken := make(chan bool)
	go func() {
		for range ready {
			_, ok := d.steal()
			if ok {
				stealWins.Add(1)
			}
			taken <- ok
		}
	}()
	for i := 0; i < rounds; i++ {
		d.push(segment{op: 0, lo: i, hi: i + 1})
		ready <- struct{}{}
		_, ok := d.pop()
		if ok {
			popWins.Add(1)
		}
		stole := <-taken
		if ok == stole {
			t.Fatalf("round %d: pop=%v steal=%v, want exactly one winner", i, ok, stole)
		}
	}
	close(ready)
	if popWins.Load()+stealWins.Load() != rounds {
		t.Fatalf("wins %d+%d != %d rounds", popWins.Load(), stealWins.Load(), rounds)
	}
}

// TestDequeGrowthUnderSteal forces repeated ring growth (bursts far
// beyond the initial capacity) while thieves hold references to retired
// ring generations, and checks exact-once consumption. Run with -race:
// the hazard is the owner recycling a slot a thief is still validating.
func TestDequeGrowthUnderSteal(t *testing.T) {
	const (
		thieves = 4
		bursts  = 50
		burst   = 200 // >> initialDequeCap, so every burst grows the ring
	)
	var d deque
	d.init()
	total := bursts * burst
	seen := make([]atomic.Int32, total)
	var consumed atomic.Int64
	record := func(s segment) {
		if n := seen[s.lo].Add(1); n != 1 {
			t.Errorf("segment %d consumed %d times", s.lo, n)
		}
		consumed.Add(1)
	}
	done := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < thieves; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				if s, ok := d.steal(); ok {
					record(s)
					continue
				}
				select {
				case <-done:
					for {
						s, ok := d.steal()
						if !ok {
							return
						}
						record(s)
					}
				default:
				}
			}
		}()
	}
	next := 0
	for b := 0; b < bursts; b++ {
		for i := 0; i < burst; i++ {
			d.push(segment{op: 0, lo: next, hi: next + 1})
			next++
		}
		// A few pops between bursts keep the owner end active while
		// the ring is at its largest.
		for i := 0; i < 8; i++ {
			if s, ok := d.pop(); ok {
				record(s)
			}
		}
	}
	close(done)
	wg.Wait()
	for {
		s, ok := d.pop()
		if !ok {
			break
		}
		record(s)
	}
	if consumed.Load() != int64(total) {
		t.Fatalf("consumed %d segments, want %d", consumed.Load(), total)
	}
}

// TestDequeStealContention hammers one deque from an owner (push+pop)
// and many thieves concurrently and checks that every segment is
// consumed exactly once. Run with -race to check the locking.
func TestDequeStealContention(t *testing.T) {
	const (
		thieves = 8
		items   = 2000
	)
	var d deque
	d.init()
	seen := make([]atomic.Int32, items)
	var consumed atomic.Int64
	record := func(s segment) {
		if n := seen[s.lo].Add(1); n != 1 {
			t.Errorf("segment %d consumed %d times", s.lo, n)
		}
		consumed.Add(1)
	}

	var wg sync.WaitGroup
	done := make(chan struct{})
	for i := 0; i < thieves; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				if s, ok := d.steal(); ok {
					record(s)
					continue
				}
				select {
				case <-done:
					// Drain anything published after the last failed steal.
					for {
						s, ok := d.steal()
						if !ok {
							return
						}
						record(s)
					}
				default:
				}
			}
		}()
	}
	// Owner interleaves pushes with occasional pops.
	for i := 0; i < items; i++ {
		d.push(segment{op: 0, lo: i, hi: i + 1})
		if i%3 == 0 {
			if s, ok := d.pop(); ok {
				record(s)
			}
		}
	}
	close(done)
	wg.Wait()
	// The owner drains whatever the thieves left behind.
	for {
		s, ok := d.pop()
		if !ok {
			break
		}
		record(s)
	}
	if consumed.Load() != items {
		t.Fatalf("consumed %d segments, want %d", consumed.Load(), items)
	}
}
