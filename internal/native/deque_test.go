package native

import (
	"sync"
	"sync/atomic"
	"testing"
)

func TestDequeOwnerLIFOThiefFIFO(t *testing.T) {
	var d deque
	d.init()
	for i := 0; i < 3; i++ {
		d.push(segment{op: i, lo: 0, hi: 1})
	}
	if s, ok := d.steal(); !ok || s.op != 0 {
		t.Fatalf("steal got %+v ok=%v, want oldest (op 0)", s, ok)
	}
	if s, ok := d.pop(); !ok || s.op != 2 {
		t.Fatalf("pop got %+v ok=%v, want newest (op 2)", s, ok)
	}
	if s, ok := d.pop(); !ok || s.op != 1 {
		t.Fatalf("pop got %+v ok=%v, want op 1", s, ok)
	}
	if _, ok := d.pop(); ok {
		t.Fatal("pop on empty deque reported ok")
	}
	if _, ok := d.steal(); ok {
		t.Fatal("steal on empty deque reported ok")
	}
	if d.size() != 0 {
		t.Fatalf("size = %d, want 0", d.size())
	}
}

// TestDequeStealContention hammers one deque from an owner (push+pop)
// and many thieves concurrently and checks that every segment is
// consumed exactly once. Run with -race to check the locking.
func TestDequeStealContention(t *testing.T) {
	const (
		thieves = 8
		items   = 2000
	)
	var d deque
	d.init()
	seen := make([]atomic.Int32, items)
	var consumed atomic.Int64
	record := func(s segment) {
		if n := seen[s.lo].Add(1); n != 1 {
			t.Errorf("segment %d consumed %d times", s.lo, n)
		}
		consumed.Add(1)
	}

	var wg sync.WaitGroup
	done := make(chan struct{})
	for i := 0; i < thieves; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				if s, ok := d.steal(); ok {
					record(s)
					continue
				}
				select {
				case <-done:
					// Drain anything published after the last failed steal.
					for {
						s, ok := d.steal()
						if !ok {
							return
						}
						record(s)
					}
				default:
				}
			}
		}()
	}
	// Owner interleaves pushes with occasional pops.
	for i := 0; i < items; i++ {
		d.push(segment{op: 0, lo: i, hi: i + 1})
		if i%3 == 0 {
			if s, ok := d.pop(); ok {
				record(s)
			}
		}
	}
	close(done)
	wg.Wait()
	// The owner drains whatever the thieves left behind.
	for {
		s, ok := d.pop()
		if !ok {
			break
		}
		record(s)
	}
	if consumed.Load() != items {
		t.Fatalf("consumed %d segments, want %d", consumed.Load(), items)
	}
}
