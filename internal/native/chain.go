package native

import (
	"sync/atomic"
	"time"

	"orchestra/internal/split"
)

// Cache-chain scheduling (ROADMAP open item 2; Palkar & Zaharia's
// split annotations). The prefix gate from PR 3 already lets a
// pipelined consumer start before its producer finishes, but every
// intermediate array still round-trips through main memory: the
// producer streams its whole output to DRAM, and the consumer streams
// it back in. On memory-bound operator chains that doubles (or worse)
// the DRAM traffic per stage. Chaining removes the round trip for
// edges whose kernels declare compatible split annotations — producer
// writes pointwise, consumer reads a bounded neighbourhood — or that
// the compiler proved exactly pointwise (delirium.Edge.Chain):
//
//   - the consumer's task space is divided into fixed cache-sized
//     blocks (chainBlockSize: ~64 KB of producer output per block);
//   - each producer out-edge tracks, per consumer block, how many
//     producer tasks of the block's read span [b·S−halo, (b+1)·S+halo)
//     are still incomplete (coverLeft, guarded by the producer's
//     progressMu, which complete already holds);
//   - when a producer chunk completes the last covering task of a
//     block, and every other in-edge of the consumer has delivered
//     that block too (chainState.left, atomic — producers complete
//     concurrently), the block is enabled exactly once — onto the
//     completing worker's own chain queue;
//   - the worker drains its queue depth-first (LIFO) immediately
//     after the enabling chunk, so A[b] → B[b] → C[b] run
//     back-to-back on one core while block b is still in L2.
//
// Fallback keeps results bitwise identical: blocks past the depth
// limit spill to the worker's deque (stealable, ordinary runSegment
// path), a worker that crashes mid-chain hands its enabled blocks to
// the survivors through the fault-release path, and ChainOff (or a
// missing/incompatible annotation) leaves the edge on the prefix-gate
// path untouched. A chained block runs the same task bodies over the
// same arrays in a schedule the kernel contract already allows, so
// every schedule — chained, spilled, stolen, re-issued — produces the
// same bits.

const (
	// chainTargetBytes sizes a chain block: enough producer output to
	// amortize the per-block bookkeeping, small enough that the block
	// plus its consumer output sit comfortably in a per-core L2.
	chainTargetBytes = 64 << 10
	// minChainBlock keeps blocks from degenerating into per-task
	// bookkeeping on byte-heavy kernels.
	minChainBlock = 64
	// maxChainBlock bounds the coverage arrays on byte-light kernels.
	maxChainBlock = 1 << 16
	// maxChainDepth bounds how deep one worker follows a chain before
	// spilling to the deques: long chains stay depth-first up to this
	// many stages, degenerate graphs cannot recurse the queue
	// unboundedly.
	maxChainDepth = 16
)

// chainState is a chain-managed consumer's issue ledger. Blocks are
// [b·block, (b+1)·block) ∩ [0, n); left[b] counts in-edges (chained
// and barrier alike) that have not yet delivered block b. The
// decrement that takes left[b] to zero enables the block exactly once.
type chainState struct {
	block   int
	nblocks int
	left    []atomic.Int32
}

// chainItem is one enabled consumer block on a worker's chain queue.
type chainItem struct {
	seg   segment
	depth int32
}

// chainBlockSize picks the consumer block size S in tasks for an
// n-task operator whose tasks touch roughly `bytes` bytes each.
func chainBlockSize(n int, bytes int64) int {
	if bytes < 1 {
		bytes = 8
	}
	b := int(chainTargetBytes / bytes)
	if b < minChainBlock {
		b = minChainBlock
	}
	if b > maxChainBlock {
		b = maxChainBlock
	}
	if b > n {
		b = n
	}
	return b
}

// edgePair records one graph edge's endpoints during engine setup, so
// setupChains can revisit the in/out edge structs after all appends
// (taking element pointers mid-append would dangle on reallocation).
type edgePair struct {
	from, to int
	inIdx    int  // index into e.ops[to].in
	outIdx   int  // index into e.ops[from].out
	attr     bool // delirium.Edge.Chain: compiler-proved exact pointwise
}

// setupChains converts eligible edges to chain edges and installs the
// consumers' issue ledgers. Runs single-threaded during newEngine,
// before workers exist. Eligibility per edge: equal non-zero task
// counts and either the compiler's Chain attribute or compatible
// kernel annotations (split.Chainable). A consumer is chain-managed
// only if at least one in-edge is eligible and no pipelined in-edge is
// left behind on the gate (a consumer cannot be half gate-, half
// chain-issued); its remaining non-eligible in-edges become barrier
// edges that deliver every block at the producer's full completion.
func (e *engine) setupChains(pairs []edgePair) {
	eligible := make([]bool, len(pairs))
	halo := make([]int, len(pairs))
	perCons := map[int][]int{}
	for i, pr := range pairs {
		prod, cons := e.op(pr.from), e.op(pr.to)
		perCons[pr.to] = append(perCons[pr.to], i)
		if prod.expand != nil || cons.expand != nil {
			// Never chain across an expandable endpoint: a chained edge
			// would enqueue blocks against a sub-graph that does not
			// exist yet (the consumer's real work only materializes at
			// expansion time), and an expandable producer's join task is
			// its only observable progress. Such edges stay on the
			// completion-gated path — the same barrier conversion mixed
			// consumers get below.
			continue
		}
		if prod.n != cons.n || prod.n == 0 {
			continue
		}
		if split.Chainable(prod.split, cons.split) {
			eligible[i], halo[i] = true, split.ChainHalo(cons.split)
		} else if pr.attr {
			// The compiler's proof is exact-index (halo 0).
			eligible[i], halo[i] = true, 0
		}
	}
	for ci, idxs := range perCons {
		cons := e.op(ci)
		chained := 0
		ok := true
		for _, i := range idxs {
			if eligible[i] {
				chained++
			} else if cons.in[pairs[i].inIdx].pipelined {
				ok = false // would lose the gate's delivery for this edge
			}
		}
		if chained == 0 || !ok {
			continue
		}
		S := chainBlockSize(cons.n, cons.bytes)
		nb := (cons.n + S - 1) / S
		cs := &chainState{block: S, nblocks: nb, left: make([]atomic.Int32, nb)}
		for b := range cs.left {
			cs.left[b].Store(int32(len(idxs)))
		}
		cons.chain = cs
		// Chain-managed consumers are never gate-released: park the
		// release cursor at n so a stray tryRelease is a no-op.
		cons.released.Store(int64(cons.n))
		for _, i := range idxs {
			pr := pairs[i]
			prod := e.op(pr.from)
			ie, oe := &cons.in[pr.inIdx], prod.out[pr.outIdx]
			ie.pipelined, oe.pipelined = false, false
			if !eligible[i] {
				// Barrier in-edge: full producer completion delivers
				// every block at once. A zero-task producer never runs
				// complete, so it delivers here, at setup.
				oe.barrier = true
				if prod.n == 0 {
					oe.sentFull = true
					for b := range cs.left {
						// Setup is single-threaded and no chain edge has
						// delivered yet, so this can never enable a block.
						cs.left[b].Add(-1)
					}
				}
				continue
			}
			ie.chain, oe.chain = true, true
			oe.halo = halo[i]
			oe.coverLeft = make([]int32, nb)
			for b := 0; b < nb; b++ {
				lo, hi := b*S-oe.halo, (b+1)*S+oe.halo
				if lo < 0 {
					lo = 0
				}
				if hi > prod.n {
					hi = prod.n
				}
				oe.coverLeft[b] = int32(hi - lo)
			}
			// Cache-aware producer chunking: cap the producer's TAPER
			// grain near the consumer block, so one chunk enables about
			// one block and its output is still resident when the block
			// runs.
			if prod.chainOut == 0 || S < prod.chainOut {
				prod.chainOut = S
			}
		}
	}
}

// chainCover is complete's delivery hook for one chain out-edge: the
// producer finished tasks [lo, hi); decrement every consumer block
// whose read span those tasks intersect, and enable blocks this edge
// (and every other in-edge) has fully delivered. Caller holds the
// producer's progressMu, which guards coverLeft.
func (e *engine) chainCover(w *worker, o *opState, oe *outEdge, lo, hi int, depth int32) {
	cons := e.op(oe.to)
	cs := cons.chain
	S, h := cs.block, oe.halo
	bLo := 0
	if lo-h > 0 {
		bLo = (lo - h) / S
	}
	bHi := (hi - 1 + h) / S
	if bHi >= cs.nblocks {
		bHi = cs.nblocks - 1
	}
	for b := bLo; b <= bHi; b++ {
		spanLo, spanHi := b*S-h, (b+1)*S+h
		if spanLo < 0 {
			spanLo = 0
		}
		if spanHi > o.n {
			spanHi = o.n
		}
		cutLo, cutHi := lo, hi
		if cutLo < spanLo {
			cutLo = spanLo
		}
		if cutHi > spanHi {
			cutHi = spanHi
		}
		if cutHi <= cutLo {
			continue
		}
		oe.coverLeft[b] -= int32(cutHi - cutLo)
		if oe.coverLeft[b] == 0 {
			e.chainEnable(w, cons, b, depth)
		}
	}
}

// chainBarrier is complete's delivery hook for a barrier edge into a
// chain-managed consumer: the producer fully completed, so every block
// receives this edge's delivery.
func (e *engine) chainBarrier(w *worker, oe *outEdge, depth int32) {
	cons := e.op(oe.to)
	for b := 0; b < cons.chain.nblocks; b++ {
		e.chainEnable(w, cons, b, depth)
	}
}

// chainEnable counts one in-edge delivery of block b; the delivery
// that completes the set enqueues the block on the enabling worker's
// own chain queue. left is atomic because distinct producers complete
// on different workers concurrently; exactly one of them observes
// zero.
func (e *engine) chainEnable(w *worker, cons *opState, b int, depth int32) {
	if cons.chain.left[b].Add(-1) != 0 {
		return
	}
	S := cons.chain.block
	lo := b * S
	hi := lo + S
	if hi > cons.n {
		hi = cons.n
	}
	w.chainQ = append(w.chainQ, chainItem{seg: segment{op: cons.idx, lo: lo, hi: hi}, depth: depth + 1})
}

// drainChain runs the worker's enabled blocks depth-first: LIFO pops
// execute the most recently enabled — cache-hottest — block first,
// and a block's complete may push its own consumers, so a chain
// A[b] → B[b] → C[b] runs back-to-back without touching the deques.
// Blocks past the depth limit spill to the ordinary work-stealing
// path; a crash mid-chain hands everything still queued to the
// survivors (the fault-release path excludes the dying worker).
func (e *engine) drainChain(w *worker) {
	for len(w.chainQ) > 0 {
		it := w.chainQ[len(w.chainQ)-1]
		w.chainQ = w.chainQ[:len(w.chainQ)-1]
		if e.canceled.Load() {
			// The run is abandoned wholesale; enabled blocks are dropped
			// exactly like queued deque segments.
			continue
		}
		if it.depth > maxChainDepth {
			e.spillChain(w, it.seg)
			continue
		}
		if e.fx != nil {
			w.hb.Store(time.Now().UnixNano())
			if !e.faultPoint(w, it.seg) {
				// Crashed: faultPoint delivered it.seg to a survivor. The
				// rest of the queue must outlive this worker too — release
				// through the survivor-aware split (nil: never back to the
				// dying worker's own deque).
				for len(w.chainQ) > 0 {
					s := w.chainQ[len(w.chainQ)-1].seg
					w.chainQ = w.chainQ[:len(w.chainQ)-1]
					e.chainFB.Add(1)
					if e.rec != nil {
						e.rec.Spill(w.id, s.op, s.lo, s.len(), time.Since(e.start).Seconds())
					}
					e.release(nil, s.op, s.lo, s.hi)
				}
				w.crashed = true
				return
			}
		}
		e.runChained(w, it)
	}
}

// spillChain releases an enabled block to the worker's own deque,
// where thieves can see it: the work-stealing fallback that keeps
// load balance when chains run deep.
func (e *engine) spillChain(w *worker, s segment) {
	e.chainSpills.Add(1)
	if e.rec != nil {
		e.rec.Spill(w.id, s.op, s.lo, s.len(), time.Since(e.start).Seconds())
	}
	e.release(w, s.op, s.lo, s.hi)
}

// runChained executes one enabled block as a single chunk. No TAPER
// consultation: the block size was chosen for cache residency at
// setup, and splitting it would forfeit exactly the locality the
// chain exists for. Statistics, busy time, tracing and completion go
// through the same paths as runSegment, so chained chunks are
// indistinguishable downstream except for the KindChain marker.
func (e *engine) runChained(w *worker, it chainItem) {
	seg := it.seg
	o := e.op(seg.op)
	k := seg.len()
	o.unsched.Add(-int64(k))
	if e.labels && w.labelOp != seg.op {
		e.setLabels(w, seg.op)
	}
	begin := time.Now()
	if o.bodyRange != nil {
		o.bodyRange(seg.lo, seg.hi)
	} else {
		for i := seg.lo; i < seg.hi; i++ {
			o.body(i)
		}
	}
	elapsed := time.Since(begin).Seconds()
	w.busy += elapsed
	o.statsMu.Lock()
	o.stats.ObserveChunk(seg.lo, k, elapsed)
	o.statsMu.Unlock()
	if e.rec != nil {
		b := begin.Sub(e.start).Seconds()
		e.rec.Chunk(w.id, seg.op, seg.lo, k, b, b+elapsed, false)
		e.rec.Chain(w.id, seg.op, seg.lo, k, int(it.depth), b)
	}
	if e.fx != nil && w.slowF > 1 {
		time.Sleep(time.Duration((w.slowF - 1) * elapsed * float64(time.Second)))
	}
	e.chunks.Add(1)
	e.chainHits.Add(1)
	e.complete(w, o, seg.lo, seg.hi, it.depth)
}
