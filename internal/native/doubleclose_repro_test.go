package native_test

import (
	"testing"

	"orchestra/internal/core"
	"orchestra/internal/native"
	"orchestra/internal/rts"
)

func TestEmptyGraphWithFaultPlanRepro(t *testing.T) {
	out, err := core.CompileSource(quickstartProgram, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	bind, _, err := native.ArrayKernels(out.Graph, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	plan := mustPlan(t, "crash:1@0")
	var res = rts.RunOpts{Processors: 4, Fault: plan}
	_, err = native.Backend{}.Run(out.Graph, bind, res)
	if err != nil {
		t.Fatal(err)
	}
}
