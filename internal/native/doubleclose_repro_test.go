package native_test

import (
	"testing"

	"orchestra/internal/core"
	"orchestra/internal/native"
	"orchestra/internal/rts"
)

// TestEmptyGraphWithFaultPlanRepro pins the zero-work edge case: a run
// whose operators contribute no tasks finishes immediately, and with a
// fault plan active the detector goroutine also races to observe the
// finish — both paths must agree on closing the finished channel
// exactly once (regression: double close panic).
func TestEmptyGraphWithFaultPlanRepro(t *testing.T) {
	out, err := core.CompileSource(quickstartProgram, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	// A binder with no task bodies: every operator has zero executable
	// tasks, so total work is 0.
	bind := func(string) rts.OpSpec { return rts.OpSpec{} }
	plan := mustPlan(t, "crash:1@0")
	opts := rts.RunOpts{Processors: 4, Fault: plan}
	if _, err := (native.Backend{}.Run(out.Graph, rts.BindClosure(bind), opts)); err != nil {
		t.Fatal(err)
	}
}
