package native

import (
	"runtime"
	"sync/atomic"
)

// parker is one worker's idle-state machine: a futex-style replacement
// for a shared mutex/condvar. A worker that finds no work publishes
// itself as parked (an atomic state word) and then blocks on its own
// wake channel; a releaser that makes work visible claims at most one
// parked worker by CAS and hands it exactly one token. Because state
// transitions are CAS-arbitrated, a token is sent if and only if one
// parker will consume it — no lost wakeups and no stale tokens — and
// because every worker has its own channel, a steal storm of idle
// workers parks and wakes without hammering one lock.
//
// The lost-wakeup-free protocol is the usual publish-then-recheck
// dance: the parker stores "parked" and then re-checks for work; the
// releaser publishes work and then reads the state. Both sides use
// sequentially consistent atomics, so at least one of them observes
// the other and the handoff cannot be missed.
type parker struct {
	// state is pActive or pParked. The owner sets pParked before its
	// final work re-check; whoever transitions it back to pActive
	// (owner on self-cancel, releaser on wake) owns the transition.
	state atomic.Int32
	// wake carries exactly one token per successful releaser claim.
	wake chan struct{}
}

const (
	pActive int32 = iota
	pParked
)

func (pk *parker) init() { pk.wake = make(chan struct{}, 1) }

// reset returns the parker to the active state and drains a wake token
// left in flight by a releaser whose claimed worker exited on the
// finished channel instead of consuming it (harmless within one job,
// but a reused parker must not wake spuriously in the next). Must only
// be called while the parker is not shared.
func (pk *parker) reset() {
	pk.state.Store(pActive)
	select {
	case <-pk.wake:
	default:
	}
}

// prepare publishes intent to park. The caller must re-check for work
// after this call and before block.
func (pk *parker) prepare() { pk.state.Store(pParked) }

// cancel retracts a prepare after the re-check found work. It reports
// whether the owner won the state back; on false a releaser claimed
// this worker concurrently and its token must be consumed (consume).
func (pk *parker) cancel() bool { return pk.state.CompareAndSwap(pParked, pActive) }

// consume absorbs the token of a releaser that won the cancel race.
func (pk *parker) consume() { <-pk.wake }

// block sleeps until a releaser's token or abort. It reports true when
// woken by a token. The caller transitions back to running either way;
// a token left unconsumed on abort is harmless because the worker is
// exiting.
func (pk *parker) block(abort <-chan struct{}) bool {
	select {
	case <-pk.wake:
		return true
	case <-abort:
		return false
	}
}

// unpark claims the worker if it is parked and hands it the wake
// token, reporting whether a claim was made. The send cannot block:
// the CAS guarantees exactly one in-flight token per claim, and the
// channel holds one.
func (pk *parker) unpark() bool {
	if pk.state.Load() != pParked {
		return false
	}
	if !pk.state.CompareAndSwap(pParked, pActive) {
		return false
	}
	pk.wake <- struct{}{}
	return true
}

// parkSpins bounds the spin phase before a worker publishes itself as
// parked: a short burst of yielding re-checks rides out the common
// case where a running worker is about to release more work, without
// burning a core for long on an empty machine.
const parkSpins = 32

// spinWait is one bounded-backoff spin iteration: early iterations
// just yield the OS thread's logical processor politely; later ones
// block in the scheduler, giving releasers cycles on small machines.
func spinWait(i int) {
	if i < 4 {
		for j := 0; j < 8<<uint(i); j++ {
			_ = j
		}
		return
	}
	runtime.Gosched()
}
