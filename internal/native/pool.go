package native

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"orchestra/internal/delirium"
	"orchestra/internal/rts"
	"orchestra/internal/trace"
)

// Pool separates worker lifetime from job lifetime: it owns a fixed
// set of persistent worker goroutines and hosts any number of
// concurrent Run calls on them, so a long-running service executes
// thousands of graphs without respawning a single goroutine.
// Backend.Run builds the same per-job engine but pays a goroutine
// spawn-and-join per worker per run; a Pool pays it once at NewPool.
//
// Each job is an epoch: Run leases n of the pool's goroutines, attaches
// per-job worker states (deques, parkers, inboxes — recycled through an
// arena, so a warm pool's job setup allocates almost nothing), executes
// the engine exactly as a one-shot run would, and returns the leases.
// Per-job state never leaks across epochs: worker arenas are reset
// before reuse, and the engine — operator gates, statistics, fault
// state, trace recorder — is built fresh per job. Concurrent jobs are
// therefore fully isolated: a fault plan injected into one job crashes
// only that job's leased workers, and a trace sink on one job sees only
// that job's events.
//
// Leases are granted FIFO (ticketed), so a job needing many workers is
// never starved by a stream of small jobs arriving behind it.
type Pool struct {
	size  int
	tasks chan func()
	wg    sync.WaitGroup

	mu   sync.Mutex
	cond *sync.Cond
	// free counts unleased worker goroutines; tickets serialize
	// acquisition FIFO. abandoned marks tickets whose acquirer gave up
	// (context canceled), so serving can skip them.
	free      int
	next      uint64
	serving   uint64
	abandoned map[uint64]bool
	closed    bool
	// arena recycles per-job worker states across epochs.
	arena []*worker

	jobsActive atomic.Int64
	jobsDone   atomic.Int64
	jobsQueued atomic.Int64
}

// NewPool starts a pool of n persistent worker goroutines (GOMAXPROCS
// when n <= 0). The caller must Close it to stop them.
func NewPool(n int) *Pool {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	p := &Pool{size: n, free: n, tasks: make(chan func()), abandoned: map[uint64]bool{}}
	p.cond = sync.NewCond(&p.mu)
	for i := 0; i < n; i++ {
		p.wg.Add(1)
		go p.workerLoop()
	}
	return p
}

// workerLoop is one persistent pool goroutine: it hosts one job's
// worker at a time, across the pool's whole lifetime.
func (p *Pool) workerLoop() {
	defer p.wg.Done()
	for run := range p.tasks {
		run()
	}
}

// Size reports the number of persistent workers.
func (p *Pool) Size() int { return p.size }

// Free reports the number of currently unleased workers. It is advisory
// under concurrency: by the time the caller acts, another job may have
// taken leases.
func (p *Pool) Free() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.free
}

// PoolStats is a snapshot of pool occupancy.
type PoolStats struct {
	// Size is the persistent worker count; Busy of them are leased to
	// running jobs right now.
	Size int `json:"size"`
	Busy int `json:"busy"`
	Free int `json:"free"`
	// JobsActive counts jobs currently executing, JobsQueued jobs
	// waiting for leases, JobsDone jobs completed over the pool's
	// lifetime (including failed and canceled ones).
	JobsActive int64 `json:"jobs_active"`
	JobsQueued int64 `json:"jobs_queued"`
	JobsDone   int64 `json:"jobs_done"`
}

// Stats snapshots the pool's occupancy counters.
func (p *Pool) Stats() PoolStats {
	p.mu.Lock()
	free := p.free
	p.mu.Unlock()
	return PoolStats{
		Size: p.size, Busy: p.size - free, Free: free,
		JobsActive: p.jobsActive.Load(),
		JobsQueued: p.jobsQueued.Load(),
		JobsDone:   p.jobsDone.Load(),
	}
}

// Run executes one graph on the pool, implementing the same contract
// as Backend.Run except that opts.Processors is clamped to the pool
// size (zero means the whole pool) and the call blocks until that many
// workers are free. A canceled opts.Ctx abandons the job whether it is
// still waiting for leases or already executing, returning an error
// wrapping rts.ErrCanceled either way. Run is safe to call from any
// number of goroutines; jobs acquire workers FIFO.
func (p *Pool) Run(g *delirium.Graph, b *rts.Bound, opts rts.RunOpts) (trace.Result, error) {
	if err := opts.CheckSupported("native", nativeSupported); err != nil {
		return trace.Result{}, err
	}
	want := opts.Processors
	if want <= 0 || want > p.size {
		want = p.size
	}
	opts.Processors = want
	e, err := newEngine(g, b.Binder(), opts, want)
	if err != nil {
		return trace.Result{}, err
	}
	if err := p.acquire(opts.Ctx, want); err != nil {
		return trace.Result{}, err
	}
	e.workers = p.takeWorkers(want)
	p.jobsActive.Add(1)
	res, rerr := e.execute(opts, func(run func()) { p.tasks <- run })
	p.jobsActive.Add(-1)
	p.jobsDone.Add(1)
	p.putWorkers(e.workers)
	p.release(want)
	return res, rerr
}

// acquire leases n worker goroutines, blocking FIFO behind earlier
// acquirers until they are free. It fails fast on a closed pool and
// aborts (with an error wrapping rts.ErrCanceled) when ctx fires while
// waiting.
func (p *Pool) acquire(ctx context.Context, n int) error {
	if ctx != nil && ctx.Done() != nil {
		// cond.Wait cannot select on a channel; the AfterFunc turns the
		// context firing into a broadcast the wait loop re-checks.
		stop := context.AfterFunc(ctx, func() {
			p.mu.Lock()
			p.cond.Broadcast()
			p.mu.Unlock()
		})
		defer stop()
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	ticket := p.next
	p.next++
	p.jobsQueued.Add(1)
	defer p.jobsQueued.Add(-1)
	for {
		for p.abandoned[p.serving] {
			delete(p.abandoned, p.serving)
			p.serving++
		}
		if p.closed {
			p.giveUp(ticket)
			return fmt.Errorf("native: pool is closed")
		}
		if ctx != nil && ctx.Err() != nil {
			p.giveUp(ticket)
			return rts.CancelError("native", ctx)
		}
		if p.serving == ticket && p.free >= n {
			p.free -= n
			p.serving++
			// Later tickets may be admissible now (or were only waiting
			// for their turn).
			p.cond.Broadcast()
			return nil
		}
		p.cond.Wait()
	}
}

// giveUp retires a ticket without taking leases. Callers hold p.mu.
func (p *Pool) giveUp(ticket uint64) {
	if p.serving == ticket {
		p.serving++
	} else {
		p.abandoned[ticket] = true
	}
	p.cond.Broadcast()
}

// release returns n leases and wakes waiting acquirers.
func (p *Pool) release(n int) {
	p.mu.Lock()
	p.free += n
	p.cond.Broadcast()
	p.mu.Unlock()
}

// takeWorkers prepares n per-job worker states, recycling arena
// entries from previous epochs when available.
func (p *Pool) takeWorkers(n int) []*worker {
	ws := make([]*worker, n)
	p.mu.Lock()
	reuse := len(p.arena)
	if reuse > n {
		reuse = n
	}
	for i := 0; i < reuse; i++ {
		ws[i] = p.arena[len(p.arena)-1]
		p.arena = p.arena[:len(p.arena)-1]
	}
	p.mu.Unlock()
	for i := range ws {
		if ws[i] != nil {
			ws[i].reset(i)
		} else {
			ws[i] = newWorker(i)
		}
	}
	return ws
}

// putWorkers returns a job's worker states to the arena. Safe only
// after the job's engine has fully joined (no goroutine can still
// reach them).
func (p *Pool) putWorkers(ws []*worker) {
	p.mu.Lock()
	p.arena = append(p.arena, ws...)
	p.mu.Unlock()
}

// Close waits for running jobs to finish, fails all waiting acquirers,
// and stops the persistent goroutines. The pool cannot be reused.
func (p *Pool) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	p.cond.Broadcast()
	for p.free != p.size {
		p.cond.Wait()
	}
	p.mu.Unlock()
	close(p.tasks)
	p.wg.Wait()
}

// PooledBackend adapts a Pool to the rts.Backend interface, so code
// written against Backend (the serve daemon, experiments, tests) can
// run on a shared warm pool unchanged.
type PooledBackend struct{ Pool *Pool }

// Name implements rts.Backend.
func (PooledBackend) Name() string { return "native" }

// Run implements rts.Backend via Pool.Run.
func (b PooledBackend) Run(g *delirium.Graph, bound *rts.Bound, opts rts.RunOpts) (trace.Result, error) {
	return b.Pool.Run(g, bound, opts)
}
