// Package xform implements the classical source-to-source loop
// transformations the paper's compilation environment combines with
// split (§3: "Our compilation environment combines split with
// source-to-source transformations like loop fusion [Kuck et al.] and
// loop interchange [Allen & Kennedy] to expose additional
// concurrency"). Legality is decided with the same symbolic data
// descriptors the split transformation uses.
package xform

import (
	"orchestra/internal/analysis"
	"orchestra/internal/descriptor"
	"orchestra/internal/source"
	"orchestra/internal/symbolic"
)

// CanFuse reports whether two adjacent loops may legally fuse: they
// must have identical single-segment iteration ranges (syntactically
// equal bounds after symbolic translation), no where guards, the same
// step, and fusing must not reverse any dependence — iteration i of
// the second loop must not touch data that a LATER iteration j > i of
// the first loop writes (or write data a later iteration reads).
func CanFuse(r *analysis.Result, a, b *source.Do) bool {
	if a.Where != nil || b.Where != nil {
		return false
	}
	if len(a.Ranges) != 1 || len(b.Ranges) != 1 {
		return false
	}
	da, iva := r.DescribeIteration(a)
	db, ivb := r.DescribeIteration(b)
	ia := r.SSA.Defs[iva]
	ib := r.SSA.Defs[ivb]
	if ia == nil || ib == nil || len(ia.Ranges) != 1 || len(ib.Ranges) != 1 {
		return false
	}
	ra, rb := ia.Ranges[0], ib.Ranges[0]
	if !ra.Start.Equal(rb.Start) || !ra.End.Equal(rb.End) || ra.Skip != rb.Skip {
		return false
	}

	// Align the two iteration descriptors on one name and test the
	// fusion-preventing dependence: b's iteration i against a's
	// iteration j with j > i. (Dependences from a's earlier iterations
	// are preserved by fusion; only later-iteration interference
	// reverses direction.)
	later := symbolic.Name(string(iva) + "'later")
	dbAligned := db.Subst(ivb, symbolic.Var(iva))
	daLater := da.Subst(iva, symbolic.Var(later))
	ctx := symbolic.Conj{symbolic.CmpExpr(symbolic.Var(later), symbolic.GT, symbolic.Var(iva))}
	return !descriptor.Interferes(daLater, dbAligned, ctx)
}

// Fuse returns the fused loop (a's body followed by b's body under a's
// induction variable). Callers must have established legality with
// CanFuse. The second loop's induction variable is renamed to the
// first's.
func Fuse(a, b *source.Do) *source.Do {
	fused := source.CloneStmt(a).(*source.Do)
	bodyB := source.CloneStmts(b.Body)
	if b.Var != a.Var {
		renameScalar(bodyB, b.Var, a.Var)
	}
	fused.Body = append(fused.Body, bodyB...)
	return fused
}

// CanInterchange reports whether a perfectly nested loop pair may
// legally interchange: the outer loop's body must be exactly the inner
// loop, neither may carry a where guard, the inner bounds must not use
// the outer induction variable (a rectangular nest), and no dependence
// may have direction (<, >) — tested by checking that iteration (i, j)
// cannot interfere with iteration (i', j') under i < i' and j > j'.
func CanInterchange(r *analysis.Result, outer *source.Do) bool {
	inner, ok := innerLoop(outer)
	if !ok || outer.Where != nil || inner.Where != nil {
		return false
	}
	if len(outer.Ranges) != 1 || len(inner.Ranges) != 1 {
		return false
	}
	_, ivo := r.DescribeIteration(outer)
	dInner, ivi := r.DescribeIteration(inner)
	def := r.SSA.Defs[ivi]
	if def == nil || len(def.Ranges) != 1 {
		return false
	}
	if def.Ranges[0].Uses(ivo) {
		return false // triangular nest
	}

	// The (i, j) iteration's descriptor is the inner iteration
	// descriptor with both induction variables free.
	op, oj := symbolic.Name(string(ivo)+"'"), symbolic.Name(string(ivi)+"'")
	other := dInner.Subst(ivo, symbolic.Var(op)).Subst(ivi, symbolic.Var(oj))
	ctx := symbolic.Conj{
		symbolic.CmpExpr(symbolic.Var(ivo), symbolic.LT, symbolic.Var(op)),
		symbolic.CmpExpr(symbolic.Var(ivi), symbolic.GT, symbolic.Var(oj)),
	}
	return !descriptor.Interferes(dInner, other, ctx)
}

// Interchange returns the nest with the two loops swapped. Callers
// must have established legality with CanInterchange.
func Interchange(outer *source.Do) *source.Do {
	inner := outer.Body[0].(*source.Do)
	newOuter := source.CloneStmt(inner).(*source.Do)
	newInner := source.CloneStmt(outer).(*source.Do)
	newInner.Body = source.CloneStmts(inner.Body)
	newOuter.Body = []source.Stmt{newInner}
	return newOuter
}

// innerLoop reports whether the loop body is exactly one nested loop.
func innerLoop(outer *source.Do) (*source.Do, bool) {
	if len(outer.Body) != 1 {
		return nil, false
	}
	inner, ok := outer.Body[0].(*source.Do)
	return inner, ok
}

// FuseAdjacent fuses runs of legally fusable adjacent loops in a
// statement list, returning the rewritten list and the number of
// fusions performed. The analysis result must describe the ORIGINAL
// program; fused loops are re-checked pairwise left to right.
func FuseAdjacent(r *analysis.Result, stmts []source.Stmt) ([]source.Stmt, int) {
	var out []source.Stmt
	fusions := 0
	for _, s := range stmts {
		cur, isLoop := s.(*source.Do)
		if !isLoop || len(out) == 0 {
			out = append(out, s)
			continue
		}
		prev, prevLoop := out[len(out)-1].(*source.Do)
		// Only fuse ORIGINAL adjacent loops (both must be analyzable);
		// a previously fused loop is not in the analysis tables, so
		// fusion chains re-use the leftmost original loop's records.
		if prevLoop && analyzable(r, prev) && analyzable(r, cur) && CanFuse(r, prev, cur) {
			out[len(out)-1] = Fuse(prev, cur)
			fusions++
			continue
		}
		out = append(out, s)
	}
	return out, fusions
}

// analyzable reports whether the loop belongs to the analyzed program.
func analyzable(r *analysis.Result, d *source.Do) bool {
	_, ok := r.SSA.InsideLoop[d]
	return ok
}

// renameScalar rewrites scalar identifier uses in a statement list.
func renameScalar(ss []source.Stmt, from, to string) {
	var fixExpr func(e source.Expr)
	fixExpr = func(e source.Expr) {
		source.WalkExpr(e, func(x source.Expr) {
			if id, ok := x.(*source.Ident); ok && id.Name == from {
				id.Name = to
			}
		})
	}
	source.WalkStmts(ss, func(s source.Stmt) {
		switch s := s.(type) {
		case *source.Assign:
			fixExpr(s.LHS)
			fixExpr(s.RHS)
		case *source.Do:
			for _, rg := range s.Ranges {
				fixExpr(rg.Lo)
				fixExpr(rg.Hi)
				fixExpr(rg.Step)
			}
			fixExpr(s.Where)
			if s.Var == from {
				s.Var = to
			}
		case *source.If:
			fixExpr(s.Cond)
		case *source.CallStmt:
			for _, a := range s.Args {
				fixExpr(a)
			}
		}
	})
}
