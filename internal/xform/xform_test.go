package xform

import (
	"math"
	"strings"
	"testing"

	"orchestra/internal/analysis"
	"orchestra/internal/interp"
	"orchestra/internal/source"
	"orchestra/internal/stats"
)

func analyze(t *testing.T, src string) *analysis.Result {
	t.Helper()
	p, err := source.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return analysis.Analyze(p)
}

func TestCanFuseIndependent(t *testing.T) {
	r := analyze(t, `
program p
  integer n
  real a(n), b(n)
  do i = 1, n
    a(i) = i
  end do
  do i = 1, n
    b(i) = i * 2
  end do
end
`)
	a := r.Program.Body[0].(*source.Do)
	b := r.Program.Body[1].(*source.Do)
	if !CanFuse(r, a, b) {
		t.Fatal("independent equal-range loops should fuse")
	}
	fused := Fuse(a, b)
	if len(fused.Body) != 2 {
		t.Fatalf("fused body = %d stmts", len(fused.Body))
	}
}

func TestCanFuseForwardDependence(t *testing.T) {
	// b(i) = a(i): iteration i of loop 2 reads what iteration i of
	// loop 1 wrote — a forward (loop-independent) dependence, preserved
	// by fusion.
	r := analyze(t, `
program p
  integer n
  real a(n), b(n)
  do i = 1, n
    a(i) = i
  end do
  do i = 1, n
    b(i) = a(i)
  end do
end
`)
	a := r.Program.Body[0].(*source.Do)
	b := r.Program.Body[1].(*source.Do)
	if !CanFuse(r, a, b) {
		t.Fatal("forward dependence should not prevent fusion")
	}
}

func TestCannotFuseBackwardDependence(t *testing.T) {
	// b(i) = a(i+1): iteration i of loop 2 reads what iteration i+1 of
	// loop 1 writes; fusing would read the value before it is written.
	r := analyze(t, `
program p
  integer n
  real a(n), b(n)
  do i = 1, n
    a(i) = i
  end do
  do i = 1, n
    b(i) = a(i + 1)
  end do
end
`)
	a := r.Program.Body[0].(*source.Do)
	b := r.Program.Body[1].(*source.Do)
	if CanFuse(r, a, b) {
		t.Fatal("fusion-reversing dependence accepted")
	}
}

func TestCannotFuseMismatchedRanges(t *testing.T) {
	r := analyze(t, `
program p
  integer n
  real a(n), b(n)
  do i = 1, n
    a(i) = i
  end do
  do i = 2, n
    b(i) = i
  end do
end
`)
	a := r.Program.Body[0].(*source.Do)
	b := r.Program.Body[1].(*source.Do)
	if CanFuse(r, a, b) {
		t.Fatal("mismatched ranges fused")
	}
}

func TestCannotFuseGuarded(t *testing.T) {
	r := analyze(t, `
program p
  integer n
  integer mask(n)
  real a(n), b(n)
  do i = 1, n where (mask(i) != 0)
    a(i) = i
  end do
  do i = 1, n
    b(i) = i
  end do
end
`)
	a := r.Program.Body[0].(*source.Do)
	b := r.Program.Body[1].(*source.Do)
	if CanFuse(r, a, b) {
		t.Fatal("guarded loop fused")
	}
}

func TestFuseAdjacentChains(t *testing.T) {
	r := analyze(t, `
program p
  integer n
  real a(n), b(n), c(n)
  do i = 1, n
    a(i) = i
  end do
  do i = 1, n
    b(i) = a(i)
  end do
  do j = 1, n
    c(j) = b(j) + 1
  end do
end
`)
	out, fusions := FuseAdjacent(r, r.Program.Body)
	if fusions != 1 {
		// The first two fuse; the result is not in the analysis tables,
		// so the third stays separate (conservative).
		t.Fatalf("fusions = %d, want 1", fusions)
	}
	if len(out) != 2 {
		t.Fatalf("statements = %d", len(out))
	}
}

func TestFuseEquivalence(t *testing.T) {
	srcText := `
program p
  integer n
  real a(n), b(n)
  do i = 1, n
    a(i) = i * 3
  end do
  do k = 1, n
    b(k) = a(k) + k
  end do
end
`
	r := analyze(t, srcText)
	a := r.Program.Body[0].(*source.Do)
	b := r.Program.Body[1].(*source.Do)
	if !CanFuse(r, a, b) {
		t.Fatal("should fuse")
	}
	fused := Fuse(a, b)

	run := func(body []source.Stmt) *interp.State {
		p2 := &source.Program{Name: "p", Decls: r.Program.Decls, Body: body}
		st := interp.NewState()
		st.Scalars["n"] = 10
		st.Alloc("a", 10)
		st.Alloc("b", 10)
		rng := stats.NewRNG(4)
		for i := range st.Arrays["a"] {
			st.Arrays["a"][i] = rng.Float64()
			st.Arrays["b"][i] = rng.Float64()
		}
		if err := interp.Run(p2, st); err != nil {
			t.Fatalf("run: %v", err)
		}
		return st
	}
	st1 := run(r.Program.Body)
	st2 := run([]source.Stmt{fused})
	for i := range st1.Arrays["b"] {
		if math.Abs(st1.Arrays["a"][i]-st2.Arrays["a"][i]) > 1e-12 ||
			math.Abs(st1.Arrays["b"][i]-st2.Arrays["b"][i]) > 1e-12 {
			t.Fatalf("fusion changed semantics at %d", i)
		}
	}
}

func TestCanInterchangeIndependent(t *testing.T) {
	r := analyze(t, `
program p
  integer n
  real x(n, n)
  do i = 1, n
    do j = 1, n
      x(j, i) = i + j
    end do
  end do
end
`)
	outer := r.Program.Body[0].(*source.Do)
	if !CanInterchange(r, outer) {
		t.Fatal("independent nest should interchange")
	}
	sw := Interchange(outer)
	if sw.Var != "j" || sw.Body[0].(*source.Do).Var != "i" {
		t.Fatalf("interchange produced %s/%s", sw.Var, sw.Body[0].(*source.Do).Var)
	}
}

func TestCannotInterchangeAntiDiagonal(t *testing.T) {
	// x(i, j) = x(i-1, j+1): a (<, >) dependence — the classic
	// interchange-preventing direction vector.
	r := analyze(t, `
program p
  integer n
  real x(n, n)
  do i = 2, n
    do j = 1, n - 1
      x(i, j) = x(i - 1, j + 1)
    end do
  end do
end
`)
	outer := r.Program.Body[0].(*source.Do)
	if CanInterchange(r, outer) {
		t.Fatal("(<,>) dependence accepted for interchange")
	}
}

func TestCanInterchangeDiagonalDependence(t *testing.T) {
	// x(i, j) = x(i-1, j-1): direction (<, <) — interchange legal.
	r := analyze(t, `
program p
  integer n
  real x(n, n)
  do i = 2, n
    do j = 2, n
      x(i, j) = x(i - 1, j - 1)
    end do
  end do
end
`)
	outer := r.Program.Body[0].(*source.Do)
	if !CanInterchange(r, outer) {
		t.Fatal("(<,<) dependence should allow interchange")
	}
}

func TestCannotInterchangeTriangular(t *testing.T) {
	r := analyze(t, `
program p
  integer n
  real x(n, n)
  do i = 1, n
    do j = i, n
      x(j, i) = 1
    end do
  end do
end
`)
	outer := r.Program.Body[0].(*source.Do)
	if CanInterchange(r, outer) {
		t.Fatal("triangular nest accepted")
	}
}

func TestCannotInterchangeImperfectNest(t *testing.T) {
	r := analyze(t, `
program p
  integer n, s
  real x(n, n)
  do i = 1, n
    s = i
    do j = 1, n
      x(j, i) = s
    end do
  end do
end
`)
	outer := r.Program.Body[0].(*source.Do)
	if CanInterchange(r, outer) {
		t.Fatal("imperfect nest accepted")
	}
}

func TestInterchangeEquivalence(t *testing.T) {
	srcText := `
program p
  integer n
  real x(n, n)
  do i = 2, n
    do j = 2, n
      x(i, j) = x(i - 1, j - 1) + 1
    end do
  end do
end
`
	r := analyze(t, srcText)
	outer := r.Program.Body[0].(*source.Do)
	if !CanInterchange(r, outer) {
		t.Fatal("should interchange")
	}
	sw := Interchange(outer)

	run := func(body []source.Stmt) *interp.State {
		p2 := &source.Program{Name: "p", Decls: r.Program.Decls, Body: body}
		st := interp.NewState()
		st.Scalars["n"] = 8
		st.Alloc("x", 8, 8)
		rng := stats.NewRNG(9)
		for i := range st.Arrays["x"] {
			st.Arrays["x"][i] = rng.Float64()
		}
		if err := interp.Run(p2, st); err != nil {
			t.Fatalf("run: %v", err)
		}
		return st
	}
	st1 := run(r.Program.Body)
	st2 := run([]source.Stmt{sw})
	for i := range st1.Arrays["x"] {
		if math.Abs(st1.Arrays["x"][i]-st2.Arrays["x"][i]) > 1e-12 {
			t.Fatalf("interchange changed semantics at %d", i)
		}
	}
	// The printed form actually swapped the loops.
	text := source.FormatStmts([]source.Stmt{sw}, 0)
	if !strings.HasPrefix(strings.TrimSpace(text), "do j") {
		t.Fatalf("outer loop not j:\n%s", text)
	}
}
