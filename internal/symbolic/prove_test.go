package symbolic

import (
	"testing"
	"testing/quick"
)

func TestProvesNotEqualConstants(t *testing.T) {
	if !ProvesNotEqual(Const(3), Const(4), nil) {
		t.Fatal("3 != 4 unproven")
	}
	if ProvesNotEqual(Const(3), Const(3), nil) {
		t.Fatal("3 != 3 proven")
	}
}

func TestProvesNotEqualConstantOffset(t *testing.T) {
	// col vs col-1: the pipelining test from Figure 3.
	col := Var("col")
	if !ProvesNotEqual(col, col.AddConst(-1), nil) {
		t.Fatal("col != col-1 unproven")
	}
	if ProvesNotEqual(col, col, nil) {
		t.Fatal("col != col proven")
	}
}

func TestProvesNotEqualFromContext(t *testing.T) {
	i, iP := Var("i"), Var("i'")
	ctx := Conj{CmpExpr(i, NE, iP)}
	if !ProvesNotEqual(i, iP, ctx) {
		t.Fatal("direct context disequality unproven")
	}
	// 3i vs 3i' under i != i'.
	if !ProvesNotEqual(Term("i", 3), Term("i'", 3), ctx) {
		t.Fatal("scaled disequality unproven")
	}
	// i + j vs i' + j under i != i'.
	j := Var("j")
	if !ProvesNotEqual(i.Add(j), iP.Add(j), ctx) {
		t.Fatal("offset disequality unproven")
	}
	// But i+j vs i'+k is not provable.
	if ProvesNotEqual(i.Add(j), iP.Add(Var("k")), ctx) {
		t.Fatal("unsound disequality proven")
	}
	// Without context nothing is provable.
	if ProvesNotEqual(i, iP, nil) {
		t.Fatal("disequality proven without context")
	}
}

func TestProvesNotEqualFromOrdering(t *testing.T) {
	a, b := Var("a"), Var("b")
	ctx := Conj{CmpExpr(a, LT, b)}
	if !ProvesNotEqual(a, b, ctx) {
		t.Fatal("a<b should give a!=b")
	}
}

func TestProvesLess(t *testing.T) {
	if !ProvesLess(Const(2), Const(3), nil) || ProvesLess(Const(3), Const(3), nil) {
		t.Fatal("constant ProvesLess wrong")
	}
	n := Var("n")
	// n-1 < n always (difference -1).
	if !ProvesLess(n.AddConst(-1), n, nil) {
		t.Fatal("n-1 < n unproven")
	}
	if ProvesLess(n, n.AddConst(-1), nil) {
		t.Fatal("n < n-1 proven")
	}
	ctx := Conj{CmpExpr(Var("a"), LT, Var("b"))}
	if !ProvesLess(Var("a"), Var("b"), ctx) {
		t.Fatal("context ProvesLess failed")
	}
}

func TestDisjointRangesConstant(t *testing.T) {
	if !ProvesDisjointRanges(ConstRange(1, 5), ConstRange(6, 10), nil) {
		t.Fatal("1..5 vs 6..10 not disjoint")
	}
	if ProvesDisjointRanges(ConstRange(1, 5), ConstRange(5, 10), nil) {
		t.Fatal("1..5 vs 5..10 disjoint (they share 5)")
	}
	if ProvesDisjointRanges(ConstRange(1, 10), ConstRange(3, 4), nil) {
		t.Fatal("nested ranges disjoint")
	}
}

func TestDisjointRangesSymbolic(t *testing.T) {
	n := Var("n")
	// [1, n] vs [n+1, 2n]: End-Start = n - (n+1) = -1 < 0.
	a := NewRange(Const(1), n)
	b := NewRange(n.AddConst(1), n.Scale(2))
	if !ProvesDisjointRanges(a, b, nil) {
		t.Fatal("1..n vs n+1..2n not disjoint")
	}
	// [1, n] vs [n, 2n] share n.
	c := NewRange(n, n.Scale(2))
	if ProvesDisjointRanges(a, c, nil) {
		t.Fatal("1..n vs n..2n disjoint")
	}
}

func TestDisjointPointVsRange(t *testing.T) {
	aVar := Var("a")
	// Figure 4: column a vs columns 1..a-1 and a+1..n.
	left := NewRange(Const(1), aVar.AddConst(-1))
	right := NewRange(aVar.AddConst(1), Var("n"))
	pt := Point(aVar)
	if !ProvesDisjointRanges(pt, left, nil) {
		t.Fatal("a vs 1..a-1 not disjoint")
	}
	if !ProvesDisjointRanges(pt, right, nil) {
		t.Fatal("a vs a+1..n not disjoint")
	}
	full := NewRange(Const(1), Var("n"))
	if ProvesDisjointRanges(pt, full, nil) {
		t.Fatal("a vs 1..n disjoint")
	}
}

func TestDisjointPointsWithContext(t *testing.T) {
	i, iP := Var("i"), Var("i'")
	ctx := Conj{CmpExpr(i, NE, iP)}
	if !ProvesDisjointRanges(Point(i), Point(iP), ctx) {
		t.Fatal("distinct induction instances not disjoint")
	}
}

func TestDisjointStrided(t *testing.T) {
	// Even vs odd elements.
	even := Range{Start: Const(2), End: Const(100), Skip: 2}
	odd := Range{Start: Const(1), End: Const(99), Skip: 2}
	if !ProvesDisjointRanges(even, odd, nil) {
		t.Fatal("even/odd strides not disjoint")
	}
	evenB := Range{Start: Const(4), End: Const(50), Skip: 2}
	if ProvesDisjointRanges(even, evenB, nil) {
		t.Fatal("overlapping even strides disjoint")
	}
	// Point vs stride lattice.
	if !ProvesDisjointRanges(Point(Const(5)), even, nil) {
		t.Fatal("5 vs even stride not disjoint")
	}
}

func TestProvesContained(t *testing.T) {
	n := Var("n")
	inner := NewRange(Const(2), n.AddConst(-1))
	outer := NewRange(Const(1), n)
	if !ProvesContained(inner, outer, nil) {
		t.Fatal("2..n-1 not contained in 1..n")
	}
	if ProvesContained(outer, inner, nil) {
		t.Fatal("1..n contained in 2..n-1")
	}
}

func TestDisjointSoundnessRandomized(t *testing.T) {
	// Property: whenever the prover claims two constant ranges are
	// disjoint, they really are.
	if err := quick.Check(func(a1, a2, b1, b2 int16, s1, s2 uint8) bool {
		lo1, hi1 := int64(a1), int64(a1)+int64(a2%64)
		lo2, hi2 := int64(b1), int64(b1)+int64(b2%64)
		skip1, skip2 := int64(s1%4)+1, int64(s2%4)+1
		ra := Range{Start: Const(lo1), End: Const(hi1), Skip: skip1}
		rb := Range{Start: Const(lo2), End: Const(hi2), Skip: skip2}
		if !ProvesDisjointRanges(ra, rb, nil) {
			return true // "unknown" is always sound
		}
		for x := lo1; x <= hi1; x += skip1 {
			for y := lo2; y <= hi2; y += skip2 {
				if x == y {
					return false
				}
			}
		}
		return true
	}, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestProvesNotEqualWithOrdering(t *testing.T) {
	i, iP := Var("i"), Var("i'")
	lt := Conj{CmpExpr(i, LT, iP)}
	// i-1 vs i' under i < i': difference (i - i') - 1 <= -2.
	if !ProvesNotEqual(i.AddConst(-1), iP, lt) {
		t.Fatal("i-1 != i' under i < i' unproven")
	}
	// i vs i' directly under ordering.
	if !ProvesNotEqual(i, iP, lt) {
		t.Fatal("i != i' under i < i' unproven")
	}
	// i+1 vs i' is NOT provable under i < i' (i+1 may equal i').
	if ProvesNotEqual(i.AddConst(1), iP, lt) {
		t.Fatal("unsound: i+1 could equal i'")
	}
	// But i+1 vs i' IS provable under i > i'.
	gt := Conj{CmpExpr(i, GT, iP)}
	if !ProvesNotEqual(i.AddConst(1), iP, gt) {
		t.Fatal("i+1 != i' under i > i' unproven")
	}
}

func TestProvesLessWithOrdering(t *testing.T) {
	i, iP := Var("i"), Var("i'")
	lt := Conj{CmpExpr(i, LT, iP)}
	if !ProvesLess(i.AddConst(-1), iP, lt) {
		t.Fatal("i-1 < i' unproven")
	}
	if !ProvesLess(i, iP, lt) {
		t.Fatal("i < i' unproven from itself")
	}
	if ProvesLess(i.AddConst(1), iP, lt) {
		t.Fatal("unsound: i+1 < i' not implied by i < i'")
	}
}
