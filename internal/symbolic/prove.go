package symbolic

// This file implements the conservative prover behind descriptor
// interference (§3.2). Every Proves* function returns true only when the
// property is certain; false means "unknown", and callers must assume
// interference. That is the paper's discipline: "We compute interference
// conservatively; descriptors interfere unless we can prove otherwise."

// ProvesNotEqual reports whether a != b is provable under ctx.
func ProvesNotEqual(a, b Expr, ctx Conj) bool {
	d := a.Sub(b)
	if c, ok := d.IsConst(); ok {
		return c != 0
	}
	// ctx may directly assert the disequality (or an equivalent form).
	if ctx.Implies(CmpExpr(a, NE, b)) {
		return true
	}
	if ctx.Implies(CmpExpr(a, LT, b)) || ctx.Implies(CmpExpr(a, GT, b)) {
		return true
	}
	// d == k*(x - y) with ctx |- x != y and k != 0.
	names := d.Names()
	if len(names) == 2 && d.ConstPart() == 0 {
		x, y := names[0], names[1]
		if d.Coef(x) == -d.Coef(y) && d.Coef(x) != 0 {
			neq := CmpExpr(Var(x), NE, Var(y))
			if ctx.Implies(neq) {
				return true
			}
		}
	}
	// d == (x - y) + c with a known strict ordering of x and y whose
	// sign agrees with c: ctx |- x < y and c <= 0 gives d <= -1, and
	// symmetrically. (This is the loop-interchange legality pattern:
	// subscripts like i-1 vs i' under i < i'.)
	if len(names) == 2 {
		x, y := names[0], names[1]
		if d.Coef(x) == 1 && d.Coef(y) == -1 {
			if signedDifferenceNonzero(x, y, d.ConstPart(), ctx) {
				return true
			}
		}
		if d.Coef(x) == -1 && d.Coef(y) == 1 {
			if signedDifferenceNonzero(y, x, d.ConstPart(), ctx) {
				return true
			}
		}
	}
	return false
}

// signedDifferenceNonzero reports whether (x - y) + c is provably
// nonzero given an ordering of x and y in ctx: x < y makes x-y <= -1,
// so any c <= 0 keeps the sum negative; x > y makes x-y >= 1, so any
// c >= 0 keeps it positive.
func signedDifferenceNonzero(x, y Name, c int64, ctx Conj) bool {
	if c <= 0 && (ctx.Implies(CmpExpr(Var(x), LT, Var(y))) ||
		ctx.Implies(CmpExpr(Var(y), GT, Var(x)))) {
		return true
	}
	if c >= 0 && (ctx.Implies(CmpExpr(Var(x), GT, Var(y))) ||
		ctx.Implies(CmpExpr(Var(y), LT, Var(x)))) {
		return true
	}
	return false
}

// ProvesLess reports whether a < b is provable under ctx.
func ProvesLess(a, b Expr, ctx Conj) bool {
	d := a.Sub(b)
	if c, ok := d.IsConst(); ok {
		return c < 0
	}
	if ctx.Implies(CmpExpr(a, LT, b)) {
		return true
	}
	// d == (x - y) + c with ctx |- x < y and c <= 0 gives d < 0.
	names := d.Names()
	if len(names) == 2 && d.ConstPart() <= 0 {
		x, y := names[0], names[1]
		if d.Coef(x) == 1 && d.Coef(y) == -1 && ctx.Implies(CmpExpr(Var(x), LT, Var(y))) {
			return true
		}
		if d.Coef(x) == -1 && d.Coef(y) == 1 && ctx.Implies(CmpExpr(Var(y), LT, Var(x))) {
			return true
		}
	}
	return false
}

// ProvesLessEq reports whether a <= b is provable under ctx.
func ProvesLessEq(a, b Expr, ctx Conj) bool {
	d := a.Sub(b)
	if c, ok := d.IsConst(); ok {
		return c <= 0
	}
	return ctx.Implies(CmpExpr(a, LE, b))
}

// ProvesDisjointRanges reports whether ranges a and b are provably
// disjoint under ctx. The tests, in order of increasing cost:
//
//  1. one range is provably entirely below the other;
//  2. both are points with provably unequal values;
//  3. a point provably outside the other range;
//  4. equal skips > 1 with a provably non-congruent constant offset.
func ProvesDisjointRanges(a, b Range, ctx Conj) bool {
	if ProvesLess(a.End, b.Start, ctx) || ProvesLess(b.End, a.Start, ctx) {
		return true
	}
	pa, aPoint := a.IsPoint()
	pb, bPoint := b.IsPoint()
	if aPoint && bPoint {
		return ProvesNotEqual(pa, pb, ctx)
	}
	if aPoint && provesOutside(pa, b, ctx) {
		return true
	}
	if bPoint && provesOutside(pb, a, ctx) {
		return true
	}
	// Strided ranges with the same skip: disjoint when the offset of
	// their starts is a constant not divisible by the skip, and the
	// ranges otherwise share the stride lattice.
	if a.Skip == b.Skip && a.Skip > 1 {
		if off, ok := a.Start.Sub(b.Start).IsConst(); ok {
			m := off % a.Skip
			if m < 0 {
				m += a.Skip
			}
			if m != 0 {
				return true
			}
		}
	}
	return false
}

// provesOutside reports whether point p is provably not a member of
// range r under ctx.
func provesOutside(p Expr, r Range, ctx Conj) bool {
	if ProvesLess(p, r.Start, ctx) || ProvesLess(r.End, p, ctx) {
		return true
	}
	// Membership in a strided range requires congruence.
	if r.Skip > 1 {
		if off, ok := p.Sub(r.Start).IsConst(); ok {
			m := off % r.Skip
			if m < 0 {
				m += r.Skip
			}
			if m != 0 {
				return true
			}
		}
	}
	return false
}

// ProvesContained reports whether range inner is provably a subset of
// range outer under ctx (ignoring stride refinement beyond equal or
// unit skips).
func ProvesContained(inner, outer Range, ctx Conj) bool {
	if outer.Skip != 1 && outer.Skip != inner.Skip {
		return false
	}
	return ProvesLessEq(outer.Start, inner.Start, ctx) &&
		ProvesLessEq(inner.End, outer.End, ctx)
}
