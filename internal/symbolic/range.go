package symbolic

import "fmt"

// Range is a symbolic value denoting the arithmetic sequence
// Start, Start+Skip, ..., End (inclusive). The paper: "a range has a
// symbolic expression for both starting and ending values and an
// integer skip."
type Range struct {
	Start Expr
	End   Expr
	Skip  int64 // always >= 1
}

// NewRange builds a range with skip 1.
func NewRange(start, end Expr) Range {
	return Range{Start: start, End: end, Skip: 1}
}

// ConstRange builds [lo, hi] with skip 1.
func ConstRange(lo, hi int64) Range {
	return Range{Start: Const(lo), End: Const(hi), Skip: 1}
}

// Point builds the degenerate range holding exactly e.
func Point(e Expr) Range { return Range{Start: e, End: e, Skip: 1} }

// IsPoint reports whether the range provably holds a single value, and
// if so that value's expression.
func (r Range) IsPoint() (Expr, bool) {
	if r.Start.Equal(r.End) {
		return r.Start, true
	}
	return Expr{}, false
}

// IsConst reports whether both endpoints are constants.
func (r Range) IsConst() (lo, hi int64, ok bool) {
	lo, ok1 := r.Start.IsConst()
	hi, ok2 := r.End.IsConst()
	return lo, hi, ok1 && ok2
}

// Count reports the number of values in the range when both endpoints
// are constant. ok is false for symbolic ranges.
func (r Range) Count() (int64, bool) {
	lo, hi, ok := r.IsConst()
	if !ok {
		return 0, false
	}
	if hi < lo {
		return 0, true
	}
	skip := r.Skip
	if skip < 1 {
		skip = 1
	}
	return (hi-lo)/skip + 1, true
}

// Equal reports structural equality.
func (r Range) Equal(o Range) bool {
	return r.Skip == o.Skip && r.Start.Equal(o.Start) && r.End.Equal(o.End)
}

// Uses reports whether name n appears in either endpoint.
func (r Range) Uses(n Name) bool { return r.Start.Uses(n) || r.End.Uses(n) }

// Subst replaces name n with expression v in both endpoints.
func (r Range) Subst(n Name, v Expr) Range {
	return Range{Start: r.Start.Subst(n, v), End: r.End.Subst(n, v), Skip: r.Skip}
}

// Shift returns the range displaced by delta: [Start+delta, End+delta].
func (r Range) Shift(delta int64) Range {
	return Range{Start: r.Start.AddConst(delta), End: r.End.AddConst(delta), Skip: r.Skip}
}

// Contains reports whether value v is provably a member of r, assuming
// skip divisibility is satisfied (conservative: only constant evidence
// counts). The second result reports whether membership was decidable.
func (r Range) Contains(v Expr) (bool, bool) {
	// v in [Start, End] iff v-Start >= 0 and End-v >= 0.
	lo, ok1 := v.Sub(r.Start).IsConst()
	hi, ok2 := r.End.Sub(v).IsConst()
	if !ok1 || !ok2 {
		return false, false
	}
	if lo < 0 || hi < 0 {
		return false, true
	}
	skip := r.Skip
	if skip < 1 {
		skip = 1
	}
	return lo%skip == 0, true
}

// String renders the range, e.g. "1..n.1" or "2..20:2".
func (r Range) String() string {
	if e, ok := r.IsPoint(); ok {
		return e.String()
	}
	if r.Skip > 1 {
		return fmt.Sprintf("%s..%s:%d", r.Start, r.End, r.Skip)
	}
	return fmt.Sprintf("%s..%s", r.Start, r.End)
}

// Value is a symbolic value: either a single expression or a range.
// The paper: "A symbolic value is either a symbolic expression or a
// range."
type Value struct {
	r       Range
	isRange bool
}

// ExprValue wraps a single expression as a Value.
func ExprValue(e Expr) Value { return Value{r: Point(e)} }

// RangeValue wraps a range as a Value.
func RangeValue(r Range) Value { return Value{r: r, isRange: true} }

// Expr reports the underlying expression when the value is a single
// expression.
func (v Value) Expr() (Expr, bool) {
	if v.isRange {
		return Expr{}, false
	}
	return v.r.Start, true
}

// Range reports the value as a range. Single expressions widen to a
// degenerate point range, so Range is total.
func (v Value) Range() Range { return v.r }

// IsRange reports whether the value is a proper range.
func (v Value) IsRange() bool { return v.isRange }

// String renders the value.
func (v Value) String() string {
	if v.isRange {
		return v.r.String()
	}
	return v.r.Start.String()
}
