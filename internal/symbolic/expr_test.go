package symbolic

import (
	"testing"
	"testing/quick"
)

func TestExprConst(t *testing.T) {
	e := Const(5)
	if c, ok := e.IsConst(); !ok || c != 5 {
		t.Fatalf("Const(5).IsConst() = %v, %v", c, ok)
	}
	if e.String() != "5" {
		t.Fatalf("String = %q", e.String())
	}
}

func TestExprZeroValue(t *testing.T) {
	var e Expr
	if c, ok := e.IsConst(); !ok || c != 0 {
		t.Fatal("zero Expr must be constant 0")
	}
}

func TestExprAddSub(t *testing.T) {
	i, n := Var("i"), Var("n")
	e := i.Add(n).AddConst(3)
	if got := e.String(); got != "i + n + 3" {
		t.Fatalf("String = %q", got)
	}
	d := e.Sub(i).Sub(n)
	if c, ok := d.IsConst(); !ok || c != 3 {
		t.Fatalf("after cancel: %v const=%v", d, ok)
	}
}

func TestExprCancellation(t *testing.T) {
	i := Var("i")
	d := i.Sub(i)
	if c, ok := d.IsConst(); !ok || c != 0 {
		t.Fatalf("i - i = %v (const %v)", d, ok)
	}
	if len(d.Names()) != 0 {
		t.Fatal("cancelled name still present")
	}
}

func TestExprScale(t *testing.T) {
	e := Var("i").AddConst(2).Scale(3)
	if e.Coef("i") != 3 || e.ConstPart() != 6 {
		t.Fatalf("scale: %v", e)
	}
	if z := e.Scale(0); !z.Equal(Const(0)) {
		t.Fatalf("scale by 0: %v", z)
	}
}

func TestExprSubst(t *testing.T) {
	// (2i + j + 1)[i := n - 1]  ==  2n + j - 1
	e := Term("i", 2).Add(Var("j")).AddConst(1)
	s := e.Subst("i", Var("n").AddConst(-1))
	want := Term("n", 2).Add(Var("j")).AddConst(-1)
	if !s.Equal(want) {
		t.Fatalf("subst: %v, want %v", s, want)
	}
	// Substituting an absent name is identity.
	if !e.Subst("zz", Const(9)).Equal(e) {
		t.Fatal("subst of absent name changed expression")
	}
}

func TestExprEval(t *testing.T) {
	e := Term("i", 2).Add(Var("n")).AddConst(-3)
	v, ok := e.Eval(map[Name]int64{"i": 4, "n": 10})
	if !ok || v != 15 {
		t.Fatalf("eval = %v, %v", v, ok)
	}
	if _, ok := e.Eval(map[Name]int64{"i": 4}); ok {
		t.Fatal("eval with unbound name must fail")
	}
}

func TestExprEqualIgnoresOrder(t *testing.T) {
	a := Var("x").Add(Var("y"))
	b := Var("y").Add(Var("x"))
	if !a.Equal(b) {
		t.Fatal("x+y != y+x")
	}
}

func TestExprStringNegatives(t *testing.T) {
	e := Term("i", -1).Add(Term("j", -2)).AddConst(-3)
	if got := e.String(); got != "-i - 2*j - 3" {
		t.Fatalf("String = %q", got)
	}
}

func TestExprAlgebraProperties(t *testing.T) {
	names := []Name{"a", "b", "c"}
	gen := func(seed int64) Expr {
		e := Const(seed % 7)
		for i, n := range names {
			e = e.Add(Term(n, (seed>>uint(4*i))%5-2))
		}
		return e
	}
	if err := quick.Check(func(s1, s2, s3 int64) bool {
		x, y, z := gen(s1), gen(s2), gen(s3)
		// commutativity, associativity, inverse
		return x.Add(y).Equal(y.Add(x)) &&
			x.Add(y.Add(z)).Equal(x.Add(y).Add(z)) &&
			x.Sub(x).Equal(Const(0)) &&
			x.Neg().Neg().Equal(x)
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestExprImmutability(t *testing.T) {
	e := Var("i").AddConst(1)
	_ = e.Add(Var("j"))
	_ = e.Subst("i", Const(5))
	_ = e.Scale(7)
	if e.String() != "i + 1" {
		t.Fatalf("expression mutated: %v", e)
	}
}

func TestRangeBasics(t *testing.T) {
	r := ConstRange(1, 10)
	if n, ok := r.Count(); !ok || n != 10 {
		t.Fatalf("count = %v, %v", n, ok)
	}
	r2 := Range{Start: Const(2), End: Const(20), Skip: 2}
	if n, ok := r2.Count(); !ok || n != 10 {
		t.Fatalf("strided count = %v, %v", n, ok)
	}
	if r2.String() != "2..20:2" {
		t.Fatalf("String = %q", r2.String())
	}
}

func TestRangeEmpty(t *testing.T) {
	r := ConstRange(5, 4)
	if n, ok := r.Count(); !ok || n != 0 {
		t.Fatalf("empty range count = %v, %v", n, ok)
	}
}

func TestRangePoint(t *testing.T) {
	p := Point(Var("a"))
	if e, ok := p.IsPoint(); !ok || !e.Equal(Var("a")) {
		t.Fatal("Point not recognized")
	}
	if p.String() != "a" {
		t.Fatalf("String = %q", p.String())
	}
}

func TestRangeContains(t *testing.T) {
	r := ConstRange(1, 10)
	for _, tc := range []struct {
		v          int64
		in, decide bool
	}{{5, true, true}, {1, true, true}, {10, true, true}, {0, false, true}, {11, false, true}} {
		in, ok := r.Contains(Const(tc.v))
		if in != tc.in || ok != tc.decide {
			t.Errorf("Contains(%d) = %v,%v want %v,%v", tc.v, in, ok, tc.in, tc.decide)
		}
	}
	// Strided: [2..20:2] contains 4 but not 5.
	r2 := Range{Start: Const(2), End: Const(20), Skip: 2}
	if in, ok := r2.Contains(Const(4)); !ok || !in {
		t.Fatal("4 should be in 2..20:2")
	}
	if in, ok := r2.Contains(Const(5)); !ok || in {
		t.Fatal("5 should not be in 2..20:2")
	}
	// Symbolic membership is undecidable.
	if _, ok := r.Contains(Var("k")); ok {
		t.Fatal("symbolic membership must be undecidable")
	}
}

func TestRangeSubstShift(t *testing.T) {
	r := NewRange(Var("i"), Var("i").AddConst(4))
	s := r.Subst("i", Const(3))
	if lo, hi, ok := s.IsConst(); !ok || lo != 3 || hi != 7 {
		t.Fatalf("subst range = %v", s)
	}
	sh := r.Shift(-1)
	if !sh.Start.Equal(Var("i").AddConst(-1)) {
		t.Fatalf("shift = %v", sh)
	}
}

func TestValueKinds(t *testing.T) {
	ev := ExprValue(Const(7))
	if ev.IsRange() {
		t.Fatal("expr value reported as range")
	}
	if e, ok := ev.Expr(); !ok || !e.Equal(Const(7)) {
		t.Fatal("expr value lost")
	}
	rv := RangeValue(ConstRange(1, 3))
	if !rv.IsRange() {
		t.Fatal("range value not reported as range")
	}
	if _, ok := rv.Expr(); ok {
		t.Fatal("range value yielded expr")
	}
	if rv.String() != "1..3" || ev.String() != "7" {
		t.Fatalf("Strings: %q %q", rv.String(), ev.String())
	}
}
