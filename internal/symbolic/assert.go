package symbolic

import "strings"

// Conj is a conjunction of predicates, all assumed to hold
// simultaneously. It doubles as the proof context threaded through the
// descriptor-interference tests.
type Conj []Pred

// And returns the conjunction extended with p (no deduplication beyond
// exact equivalence).
func (c Conj) And(p Pred) Conj {
	for _, q := range c {
		if q.Equivalent(p) {
			return c
		}
	}
	out := make(Conj, len(c), len(c)+1)
	copy(out, c)
	return append(out, p)
}

// Merge returns the conjunction of c and o.
func (c Conj) Merge(o Conj) Conj {
	out := c
	for _, p := range o {
		out = out.And(p)
	}
	return out
}

// ProvesFalse reports whether the conjunction is provably unsatisfiable:
// it contains a constant-false predicate or a contradictory pair.
func (c Conj) ProvesFalse() bool {
	for i, p := range c {
		if truth, ok := p.ConstTruth(); ok && !truth {
			return true
		}
		for _, q := range c[i+1:] {
			if p.Contradicts(q) {
				return true
			}
		}
	}
	return false
}

// Implies conservatively reports whether the conjunction entails p.
func (c Conj) Implies(p Pred) bool {
	if truth, ok := p.ConstTruth(); ok && truth {
		return true
	}
	for _, q := range c {
		if q.Equivalent(p) {
			return true
		}
		if implies(q, p) {
			return true
		}
	}
	// A false context implies everything.
	return c.ProvesFalse()
}

// implies reports simple one-step linear entailments q => p.
func implies(q, p Pred) bool {
	qd, qok := q.diff()
	pd, pok := p.diff()
	if !qok || !pok {
		return false
	}
	delta, ok := pd.Sub(qd).IsConst()
	if !ok {
		return false
	}
	// q: d opQ 0 known; p: (d + delta) opP 0 wanted.
	loQ, hiQ := opInterval(q.Op, 0)
	loP, hiP := opInterval(p.Op, -delta)
	if q.Op == NE || p.Op == NE {
		// d != 0 implies d+delta != delta only (same diff).
		return q.Op == NE && p.Op == NE && delta == 0
	}
	// Interval containment: [loQ,hiQ] ⊆ [loP,hiP].
	if loP != nil && (loQ == nil || *loQ < *loP) {
		return false
	}
	if hiP != nil && (hiQ == nil || *hiQ > *hiP) {
		return false
	}
	return true
}

// Subst replaces name n with expression v across the conjunction.
func (c Conj) Subst(n Name, v Expr) Conj {
	out := make(Conj, len(c))
	for i, p := range c {
		out[i] = p.Subst(n, v)
	}
	return out
}

// Uses reports whether name n appears anywhere in the conjunction.
func (c Conj) Uses(n Name) bool {
	for _, p := range c {
		if p.Uses(n) {
			return true
		}
	}
	return false
}

// String renders the conjunction, e.g. "i >= 1 && i <= n.1".
func (c Conj) String() string {
	if len(c) == 0 {
		return "true"
	}
	parts := make([]string, len(c))
	for i, p := range c {
		parts[i] = p.String()
	}
	return strings.Join(parts, " && ")
}

// Assertion is a disjunction of conjunctions of inequalities (the
// paper's form, §3.1). An empty disjunction is false; a disjunction
// containing an empty conjunction is true.
type Assertion struct {
	disjuncts []Conj
	isTrue    bool
}

// True returns the trivially true assertion.
func True() Assertion { return Assertion{isTrue: true} }

// False returns the trivially false assertion.
func False() Assertion { return Assertion{} }

// FromPred lifts a single predicate.
func FromPred(p Pred) Assertion { return Assertion{disjuncts: []Conj{{p}}} }

// FromConj lifts a conjunction.
func FromConj(c Conj) Assertion {
	if len(c) == 0 {
		return True()
	}
	return Assertion{disjuncts: []Conj{c}}
}

// IsTrue reports whether the assertion is the constant true.
func (a Assertion) IsTrue() bool { return a.isTrue }

// IsFalse reports whether the assertion is provably false.
func (a Assertion) IsFalse() bool {
	if a.isTrue {
		return false
	}
	for _, c := range a.disjuncts {
		if !c.ProvesFalse() {
			return false
		}
	}
	return true
}

// Disjuncts returns the disjuncts (nil when constant true).
func (a Assertion) Disjuncts() []Conj { return a.disjuncts }

// Or returns a ∨ b.
func (a Assertion) Or(b Assertion) Assertion {
	if a.isTrue || b.isTrue {
		return True()
	}
	out := make([]Conj, 0, len(a.disjuncts)+len(b.disjuncts))
	out = append(out, a.disjuncts...)
	out = append(out, b.disjuncts...)
	return Assertion{disjuncts: out}
}

// And returns a ∧ b by distributing.
func (a Assertion) And(b Assertion) Assertion {
	if a.isTrue {
		return b
	}
	if b.isTrue {
		return a
	}
	var out []Conj
	for _, ca := range a.disjuncts {
		for _, cb := range b.disjuncts {
			m := ca.Merge(cb)
			if !m.ProvesFalse() {
				out = append(out, m)
			}
		}
	}
	return Assertion{disjuncts: out}
}

// AndPred returns a ∧ p.
func (a Assertion) AndPred(p Pred) Assertion { return a.And(FromPred(p)) }

// Not negates the assertion. Negation of a DNF can blow up; we apply
// De Morgan and distribute, which is acceptable for the small
// assertions branch analysis produces.
func (a Assertion) Not() Assertion {
	if a.isTrue {
		return False()
	}
	if len(a.disjuncts) == 0 {
		return True()
	}
	// not(OR_i AND_j p_ij) = AND_i OR_j not(p_ij)
	result := True()
	for _, c := range a.disjuncts {
		inner := False()
		for _, p := range c {
			inner = inner.Or(FromPred(p.Negate()))
		}
		result = result.And(inner)
	}
	return result
}

// Implies conservatively reports whether a entails p: every disjunct of
// a must imply p.
func (a Assertion) Implies(p Pred) bool {
	if a.isTrue {
		truth, ok := p.ConstTruth()
		return ok && truth
	}
	if len(a.disjuncts) == 0 {
		return true // false implies anything
	}
	for _, c := range a.disjuncts {
		if !c.Implies(p) {
			return false
		}
	}
	return true
}

// Subst replaces name n with expression v across the assertion.
func (a Assertion) Subst(n Name, v Expr) Assertion {
	if a.isTrue {
		return a
	}
	out := make([]Conj, len(a.disjuncts))
	for i, c := range a.disjuncts {
		out[i] = c.Subst(n, v)
	}
	return Assertion{disjuncts: out}
}

// String renders the assertion.
func (a Assertion) String() string {
	if a.isTrue {
		return "true"
	}
	if len(a.disjuncts) == 0 {
		return "false"
	}
	parts := make([]string, len(a.disjuncts))
	for i, c := range a.disjuncts {
		if len(a.disjuncts) > 1 {
			parts[i] = "(" + c.String() + ")"
		} else {
			parts[i] = c.String()
		}
	}
	return strings.Join(parts, " || ")
}
