// Package symbolic implements the symbolic value domain of the paper's
// analysis (§3.1): linear symbolic expressions over SSA names, ranges
// with symbolic endpoints and integer skip, inequalities, and assertions
// (disjunctions of conjunctions of inequalities). A small conservative
// prover answers the disjointness and equality questions that the
// descriptor-interference test and the split transformation ask.
//
// The paper limits a symbolic expression to "a sum that may include a
// set of SSA names, each with an integer coefficient, and a constant";
// Expr implements exactly that domain. Every operation is total:
// expressions outside the domain are represented by introducing an
// opaque fresh name, which keeps the analysis conservative.
package symbolic

import (
	"fmt"
	"sort"
	"strings"
)

// Name identifies an SSA name. Names are opaque to this package; the
// SSA construction guarantees each has a single defining value.
type Name string

// Expr is a linear symbolic expression: a constant plus a sum of SSA
// names with integer coefficients. The zero value is the constant 0.
// Expr values are immutable; all operations return new expressions.
type Expr struct {
	konst int64
	terms map[Name]int64 // never contains zero coefficients
}

// Const returns the constant expression c.
func Const(c int64) Expr { return Expr{konst: c} }

// Var returns the expression consisting of the single name n.
func Var(n Name) Expr {
	return Expr{terms: map[Name]int64{n: 1}}
}

// Term returns coef*n.
func Term(n Name, coef int64) Expr {
	if coef == 0 {
		return Expr{}
	}
	return Expr{terms: map[Name]int64{n: coef}}
}

// clone returns a deep copy of the term map (nil-safe).
func cloneTerms(m map[Name]int64) map[Name]int64 {
	if len(m) == 0 {
		return nil
	}
	c := make(map[Name]int64, len(m))
	for k, v := range m {
		c[k] = v
	}
	return c
}

// Add returns e + o.
func (e Expr) Add(o Expr) Expr {
	r := Expr{konst: e.konst + o.konst, terms: cloneTerms(e.terms)}
	for n, c := range o.terms {
		nc := r.terms[n] + c
		if r.terms == nil {
			r.terms = make(map[Name]int64)
		}
		if nc == 0 {
			delete(r.terms, n)
		} else {
			r.terms[n] = nc
		}
	}
	if len(r.terms) == 0 {
		r.terms = nil
	}
	return r
}

// Sub returns e - o.
func (e Expr) Sub(o Expr) Expr { return e.Add(o.Neg()) }

// Neg returns -e.
func (e Expr) Neg() Expr { return e.Scale(-1) }

// Scale returns k*e.
func (e Expr) Scale(k int64) Expr {
	if k == 0 {
		return Expr{}
	}
	r := Expr{konst: e.konst * k}
	if len(e.terms) > 0 {
		r.terms = make(map[Name]int64, len(e.terms))
		for n, c := range e.terms {
			r.terms[n] = c * k
		}
	}
	return r
}

// AddConst returns e + c.
func (e Expr) AddConst(c int64) Expr {
	return Expr{konst: e.konst + c, terms: cloneTerms(e.terms)}
}

// IsConst reports whether e has no symbolic terms, and if so its value.
func (e Expr) IsConst() (int64, bool) {
	if len(e.terms) == 0 {
		return e.konst, true
	}
	return 0, false
}

// ConstPart returns the constant component of e.
func (e Expr) ConstPart() int64 { return e.konst }

// Coef returns the coefficient of name n (zero if absent).
func (e Expr) Coef(n Name) int64 { return e.terms[n] }

// Names returns the SSA names appearing in e, sorted.
func (e Expr) Names() []Name {
	ns := make([]Name, 0, len(e.terms))
	for n := range e.terms {
		ns = append(ns, n)
	}
	sort.Slice(ns, func(i, j int) bool { return ns[i] < ns[j] })
	return ns
}

// Uses reports whether name n appears in e with nonzero coefficient.
func (e Expr) Uses(n Name) bool { return e.terms[n] != 0 }

// Equal reports structural equality.
func (e Expr) Equal(o Expr) bool {
	if e.konst != o.konst || len(e.terms) != len(o.terms) {
		return false
	}
	for n, c := range e.terms {
		if o.terms[n] != c {
			return false
		}
	}
	return true
}

// Subst replaces every occurrence of name n with expression v.
func (e Expr) Subst(n Name, v Expr) Expr {
	c, ok := e.terms[n]
	if !ok {
		return e
	}
	r := Expr{konst: e.konst, terms: cloneTerms(e.terms)}
	delete(r.terms, n)
	if len(r.terms) == 0 {
		r.terms = nil
	}
	return r.Add(v.Scale(c))
}

// Eval evaluates e under an environment giving each name an integer
// value. It reports false if any name is unbound.
func (e Expr) Eval(env map[Name]int64) (int64, bool) {
	v := e.konst
	for n, c := range e.terms {
		nv, ok := env[n]
		if !ok {
			return 0, false
		}
		v += c * nv
	}
	return v, true
}

// String renders e deterministically, e.g. "2*n.1 - i.3 + 4".
func (e Expr) String() string {
	if len(e.terms) == 0 {
		return fmt.Sprintf("%d", e.konst)
	}
	var b strings.Builder
	for i, n := range e.Names() {
		c := e.terms[n]
		switch {
		case i == 0 && c == 1:
			b.WriteString(string(n))
		case i == 0 && c == -1:
			b.WriteString("-" + string(n))
		case i == 0:
			fmt.Fprintf(&b, "%d*%s", c, n)
		case c == 1:
			b.WriteString(" + " + string(n))
		case c == -1:
			b.WriteString(" - " + string(n))
		case c > 0:
			fmt.Fprintf(&b, " + %d*%s", c, n)
		default:
			fmt.Fprintf(&b, " - %d*%s", -c, n)
		}
	}
	if e.konst > 0 {
		fmt.Fprintf(&b, " + %d", e.konst)
	} else if e.konst < 0 {
		fmt.Fprintf(&b, " - %d", -e.konst)
	}
	return b.String()
}
